// Pool-safety tests at the scenario level: pools are engine-local, so
// concurrent scenarios must neither race (verified under -race, which CI
// always runs) nor lose determinism to storage reuse.
package ezflow_test

import (
	"sync"
	"testing"

	"ezflow"
	"ezflow/internal/dynamics"
)

// TestPacketPoolParallelScenarios runs the same pooled scenario on many
// goroutines at once. Under -race this proves the per-scenario pools
// share no state; the fingerprint comparison proves recycling does not
// leak one run's packet contents into another's results.
func TestPacketPoolParallelScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	run := func(seed int64) [2]float64 {
		cfg := ezflow.DefaultConfig()
		cfg.Seed = seed
		cfg.Duration = 10 * ezflow.Second
		cfg.Mode = ezflow.ModeEZFlow
		sc := ezflow.NewChain(4, cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: 2e6, Stop: cfg.Duration})
		res := sc.Run()
		return [2]float64{res.Flows[1].MeanThroughputKbps, res.Flows[1].MeanDelaySec}
	}

	const workers = 8
	got := make([][2]float64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = run(int64(1 + i%2)) // two distinct seeds, interleaved
		}(i)
	}
	wg.Wait()

	serial := [2][2]float64{run(1), run(2)}
	for i, g := range got {
		if want := serial[i%2]; g != want {
			t.Errorf("worker %d (seed %d): got %v, want %v — pooling broke run isolation",
				i, 1+i%2, g, want)
		}
	}
}

// TestNeighborIndexParallelScenarios runs random-disk scenarios with an
// active dynamics script (link flap with reroute, node churn with queue
// drop) on many goroutines at once. The PHY neighbor index, its backing
// arenas, and the pooled transmission/reception structures are all
// engine-local; under -race this proves concurrent scenarios share none
// of them, and the fingerprint comparison proves index reuse across
// dynamics mutations does not leak between runs.
func TestNeighborIndexParallelScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	run := func(seed int64) [2]float64 {
		cfg := ezflow.DefaultConfig()
		cfg.Seed = seed
		cfg.Duration = 12 * ezflow.Second
		cfg.Bin = ezflow.Second
		cfg.Mode = ezflow.ModeEZFlow
		sc := ezflow.NewRandom(24, 0, cfg)
		var script dynamics.Script
		a, b := dynamics.MiddleLink(sc.Mesh, 1)
		script.Events = append(script.Events, dynamics.Flap(a, b, 4*ezflow.Second, 7*ezflow.Second, true)...)
		script.Events = append(script.Events, dynamics.Churn(dynamics.MiddleRelay(sc.Mesh, 1), 5*ezflow.Second, 8*ezflow.Second, true, true)...)
		if err := sc.AddDynamics(&script); err != nil {
			t.Error(err)
			return [2]float64{}
		}
		res := sc.Run()
		return [2]float64{res.Flows[1].MeanThroughputKbps, float64(res.Flows[1].Delivered)}
	}

	const workers = 8
	got := make([][2]float64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = run(int64(3 + i%2))
		}(i)
	}
	wg.Wait()

	serial := [2][2]float64{run(3), run(4)}
	for i, g := range got {
		if want := serial[i%2]; g != want {
			t.Errorf("worker %d (seed %d): got %v, want %v — neighbor index broke run isolation",
				i, 3+i%2, g, want)
		}
	}
}
