// Gateway-scale workload generation: expanding a WorkloadSpec into a
// client flow population with precomputed activity schedules, the §7
// many-client regime the paper's conclusion targets. Expansion happens
// at wiring, routes come from the active routing strategy, and all
// schedule randomness is drawn from a dedicated RNG derived from the
// run seed — never the engine RNG — so a workload perturbs nothing
// else and the whole population is a pure function of (spec, seed).
package ezflow

import (
	"fmt"
	"math/rand"

	"ezflow/internal/mesh"
	"ezflow/internal/sim"
	"ezflow/internal/traffic"
)

// Workload kinds accepted by WorkloadSpec.Kind.
const (
	// WorkloadDownlink sends gateway -> client (the default): the
	// internet-access traffic pattern of a real mesh gateway.
	WorkloadDownlink = "downlink"
	// WorkloadUplink sends client -> gateway.
	WorkloadUplink = "uplink"
)

// DefaultWorkloadRateBps is the per-client rate when a spec leaves
// RateBps zero: 200 kb/s, small enough that congestion comes from the
// population size rather than any single flow.
const DefaultWorkloadRateBps = 200e3

// WorkloadSpec describes a gateway-scale client flow population that is
// expanded into concrete flows at wiring. Clients are the mesh's
// non-gateway nodes in ascending id order, reused cyclically when the
// population outnumbers them; flow ids are allocated above every
// explicitly configured flow. Exactly one activity shape applies:
//
//   - neither pair set: every client is always on;
//   - OnMeanSec/OffMeanSec: each client is an exponential on/off bursty
//     source (starting silent);
//   - ArrivalPerSec/HoldMeanSec: each client slot sees Poisson flow
//     arrivals holding for exponential times (an M/G/∞ population
//     member; see traffic.ArrivalSchedule).
type WorkloadSpec struct {
	// Kind is WorkloadDownlink (default when empty) or WorkloadUplink.
	Kind string
	// Clients is the population size (required, > 0).
	Clients int
	// RateBps is the per-client rate while active (default
	// DefaultWorkloadRateBps).
	RateBps float64
	// Bytes is the packet size (default Config.PacketBytes).
	Bytes int
	// Gateway is the gateway node (default 0, every builder's gateway).
	Gateway NodeID
	// OnMeanSec and OffMeanSec select on/off bursty clients: mean burst
	// and mean silence in seconds. Set both or neither.
	OnMeanSec, OffMeanSec float64
	// ArrivalPerSec and HoldMeanSec select a Poisson arrival/departure
	// population: per-slot arrival rate and mean hold in seconds. Set
	// both or neither, and not together with the on/off pair.
	ArrivalPerSec, HoldMeanSec float64
}

// Validate checks the spec's internal consistency — the same check
// wiring applies, exported so the scenario and campaign layers can
// reject bad configurations before building anything.
func (w *WorkloadSpec) Validate() error {
	switch w.Kind {
	case "", WorkloadDownlink, WorkloadUplink:
	default:
		return fmt.Errorf("workload: unknown kind %q (want %q or %q)",
			w.Kind, WorkloadDownlink, WorkloadUplink)
	}
	if w.Clients <= 0 {
		return fmt.Errorf("workload: clients must be > 0, got %d", w.Clients)
	}
	if w.RateBps < 0 || w.Bytes < 0 {
		return fmt.Errorf("workload: negative rate or packet size")
	}
	onOff := w.OnMeanSec != 0 || w.OffMeanSec != 0
	arrival := w.ArrivalPerSec != 0 || w.HoldMeanSec != 0
	if onOff && arrival {
		return fmt.Errorf("workload: on/off and arrival shapes are mutually exclusive")
	}
	if onOff && (w.OnMeanSec <= 0 || w.OffMeanSec <= 0) {
		return fmt.Errorf("workload: on/off shape needs positive OnMeanSec and OffMeanSec")
	}
	if arrival && (w.ArrivalPerSec <= 0 || w.HoldMeanSec <= 0) {
		return fmt.Errorf("workload: arrival shape needs positive ArrivalPerSec and HoldMeanSec")
	}
	return nil
}

// workloadSeed derives the schedule RNG seed from the run seed with a
// splitmix64 finalizer, so workload randomness is decorrelated from
// every other seed-derived stream without consuming any of them.
func workloadSeed(seed int64) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + 0x6A09E667F3BCC909
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// expandWorkload turns cfg.Workload into concrete flows: it allocates
// flow ids above every configured flow, routes each through the active
// routing strategy, installs the routes, and returns the extended spec
// list plus each workload flow's activity schedule (applied in place of
// the plain StartAt/StopAt arming). Called from wire after routing
// resolution, before metering and source creation.
func expandWorkload(cfg *Config, m *mesh.Mesh, flows []FlowSpec) ([]FlowSpec, map[FlowID][]traffic.Segment, error) {
	w := cfg.Workload
	if err := w.Validate(); err != nil {
		return nil, nil, err
	}
	if m.Node(w.Gateway) == nil {
		return nil, nil, fmt.Errorf("workload: gateway %v not in the mesh", w.Gateway)
	}
	var clients []NodeID
	for _, id := range m.Ch.NodeIDs() {
		if id != w.Gateway {
			clients = append(clients, id)
		}
	}
	if len(clients) == 0 {
		return nil, nil, fmt.Errorf("workload: no non-gateway nodes to serve")
	}
	next := FlowID(1)
	for _, f := range m.Flows() {
		if f >= next {
			next = f + 1
		}
	}
	for _, fs := range flows {
		if fs.Flow >= next {
			next = fs.Flow + 1
		}
	}
	rate := w.RateBps
	if rate == 0 {
		rate = DefaultWorkloadRateBps
	}
	rng := rand.New(rand.NewSource(workloadSeed(cfg.Seed)))
	g := m.RoutingGraph(nil)
	s := m.Strategy()
	sched := make(map[FlowID][]traffic.Segment, w.Clients)
	for k := 0; k < w.Clients; k++ {
		fid := next + FlowID(k)
		client := clients[k%len(clients)]
		src, dst := w.Gateway, client
		if w.Kind == WorkloadUplink {
			src, dst = client, w.Gateway
		}
		path, ok := s.Route(g, fid, src, dst)
		if !ok {
			return nil, nil, fmt.Errorf("workload: routing %q found no path %v -> %v for client flow %v",
				s.Name(), src, dst, fid)
		}
		m.SetRoute(fid, path)
		switch {
		case w.OnMeanSec > 0:
			sched[fid] = traffic.OnOffSchedule(rng, cfg.Duration,
				sim.FromSeconds(w.OnMeanSec), sim.FromSeconds(w.OffMeanSec))
		case w.ArrivalPerSec > 0:
			sched[fid] = traffic.ArrivalSchedule(rng, cfg.Duration,
				w.ArrivalPerSec, sim.FromSeconds(w.HoldMeanSec))
		default:
			sched[fid] = []traffic.Segment{{Start: 0, Stop: cfg.Duration}}
		}
		flows = append(flows, FlowSpec{Flow: fid, RateBps: rate, Bytes: w.Bytes})
	}
	return flows, sched, nil
}
