// Routing-registry integration tests: the "bfs" spelling must be
// byte-identical to the pre-registry default (including under dynamics
// repair), quality-aware strategies must be deterministic, unknown names
// must fail at wiring, and every strategy must drive route repair — with
// the EZ-Flow deployment re-extending over repair-created queues.
package ezflow_test

import (
	"fmt"
	"strings"
	"testing"

	"ezflow"
	"ezflow/internal/dynamics"
)

// lossyDynamicsRun builds the repository's hardest determinism workload —
// a 24-node lossy random disk with a mid-run link flap and relay churn,
// both strategy-repaired — and returns a fingerprint of the installed
// route plus every per-flow scalar.
func lossyDynamicsRun(t *testing.T, routing string, seed int64) string {
	t.Helper()
	cfg := ezflow.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 12 * ezflow.Second
	cfg.Bin = ezflow.Second
	cfg.Mode = ezflow.ModeEZFlow
	cfg.Routing = routing
	sc := ezflow.NewRandomLossy(24, 0, 0.35, cfg)
	var script dynamics.Script
	a, b := dynamics.MiddleLink(sc.Mesh, 1)
	script.Events = append(script.Events, dynamics.Flap(a, b, 4*ezflow.Second, 7*ezflow.Second, true)...)
	script.Events = append(script.Events, dynamics.Churn(dynamics.MiddleRelay(sc.Mesh, 1), 5*ezflow.Second, 8*ezflow.Second, true, true)...)
	if err := sc.AddDynamics(&script); err != nil {
		t.Fatal(err)
	}
	wired := fmt.Sprint(sc.Mesh.Route(1))
	res := sc.Run()
	fr := res.Flows[1]
	return fmt.Sprintf("wired=%s final=%v kbps=%v delay=%v delivered=%d agg=%v",
		wired, sc.Mesh.Route(1), fr.MeanThroughputKbps, fr.MeanDelaySec, fr.Delivered, res.AggKbps)
}

// TestRoutingDefaultByteIdentical pins the tentpole acceptance criterion:
// selecting "bfs" explicitly is byte-identical to leaving Routing empty,
// through wiring, a full lossy run, and two strategy-driven repairs.
func TestRoutingDefaultByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	for _, seed := range []int64{1, 11} {
		legacy := lossyDynamicsRun(t, "", seed)
		named := lossyDynamicsRun(t, "bfs", seed)
		if legacy != named {
			t.Errorf("seed %d: Routing \"bfs\" diverges from default:\n  default: %s\n  bfs:     %s", seed, legacy, named)
		}
	}
}

// TestRoutingStrategiesDeterministic checks the quality-aware strategies
// are pure functions of (scenario, seed): identical routes and results
// across rebuilds.
func TestRoutingStrategiesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	for _, name := range []string{"etx", "kshortest"} {
		a := lossyDynamicsRun(t, name, 5)
		b := lossyDynamicsRun(t, name, 5)
		if a != b {
			t.Errorf("%s: rebuild diverged:\n  %s\n  %s", name, a, b)
		}
	}
}

// TestRoutingUnknownPanics checks an unvalidated name fails at wiring
// with the registry listing (CLIs and scenario files validate first, so
// reaching this panic means a programming error).
func TestRoutingUnknownPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unknown routing strategy wired without panic")
		}
		if !strings.Contains(fmt.Sprint(r), "registered") {
			t.Errorf("panic %q does not list the registry", r)
		}
	}()
	cfg := ezflow.DefaultConfig()
	cfg.Routing = "warp-drive"
	ezflow.NewChain(2, cfg)
}

// TestRoutingRepairPerStrategy replays the PR 3 repair scenario under
// every registered strategy: sever the route's middle link mid-run and
// require a valid repaired route through the other relay, with the
// EZ-Flow deployment extended over the repair-created queue.
func TestRoutingRepairPerStrategy(t *testing.T) {
	for _, name := range ezflow.Routings() {
		cfg := ezflow.DefaultConfig()
		cfg.Mode = ezflow.ModeEZFlow
		cfg.Duration = 5 * ezflow.Second
		cfg.Routing = name
		sc := ezflow.NewGrid(2, 2, cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: 4e5},
			ezflow.FlowSpec{Flow: 2, RateBps: 4e5})
		before := sc.Mesh.Route(1)
		if len(before) != 3 {
			t.Fatalf("%s: wired route %v, want 2 hops", name, before)
		}
		relayBefore := before[1]
		ctlsBefore := len(sc.Deployment.Controllers)

		a, b := dynamics.MiddleLink(sc.Mesh, 1)
		script := (&dynamics.Script{}).Add(dynamics.Event{
			At: 1 * ezflow.Second, Kind: dynamics.LinkDown, A: a, B: b, Reroute: true,
		})
		if err := sc.AddDynamics(script); err != nil {
			t.Fatal(err)
		}
		res := sc.Run()

		after := sc.Mesh.Route(1)
		if len(after) != 3 || after[1] == relayBefore {
			t.Errorf("%s: repair route = %v, want the other relay (was via %v)", name, after, relayBefore)
		}
		if err := sc.Mesh.CheckRoutes(); err != nil {
			t.Errorf("%s: repaired mesh invalid: %v", name, err)
		}
		// The repair must never orphan a queue: every strategy keeps the
		// deployment at least as large, and under bfs — where the repaired
		// relay's queues cannot predate the fault — strictly larger.
		// (kshortest pre-creates the alternative's queues at wiring: flow 2
		// already rides the second-ranked path, so its repair is covered.)
		got := len(sc.Deployment.Controllers)
		if got < ctlsBefore {
			t.Errorf("%s: deployment shrank after repair: %d -> %d controllers", name, ctlsBefore, got)
		}
		if name == "bfs" && got <= ctlsBefore {
			t.Errorf("%s: deployment did not extend over the repair-created queue: %d -> %d controllers", name, ctlsBefore, got)
		}
		if res.Flows[1].Delivered == 0 {
			t.Errorf("%s: no packets delivered across the repair", name)
		}
	}
}

// TestRoutingRepairFailureThenRecovery drives a flow into a genuine
// partition (severed link plus churned relay) and out again: the failed
// repair must be counted on the mesh.reroute_failures surface, and the
// returning node must restore a valid route.
func TestRoutingRepairFailureThenRecovery(t *testing.T) {
	cfg := ezflow.DefaultConfig()
	cfg.Mode = ezflow.ModeEZFlow
	cfg.Duration = 5 * ezflow.Second
	sc := ezflow.NewGrid(2, 2, cfg,
		ezflow.FlowSpec{Flow: 1, RateBps: 4e5},
		ezflow.FlowSpec{Flow: 2, RateBps: 4e5})
	script := (&dynamics.Script{}).
		Add(dynamics.Event{At: 1 * ezflow.Second, Kind: dynamics.LinkDown, A: 2, B: 0, Reroute: true}).
		Add(dynamics.Event{At: 2 * ezflow.Second, Kind: dynamics.NodeDown, Node: 1, Drop: true, Reroute: true}).
		Add(dynamics.Event{At: 3 * ezflow.Second, Kind: dynamics.NodeUp, Node: 1, Reroute: true})
	if err := sc.AddDynamics(script); err != nil {
		t.Fatal(err)
	}
	sc.Run()
	if got := sc.Mesh.RerouteFailures(); got == 0 {
		t.Error("partitioned repair was not counted in RerouteFailures")
	}
	if got := sc.Mesh.Route(1); fmt.Sprint(got) != fmt.Sprint([]ezflow.NodeID{3, 1, 0}) {
		t.Errorf("post-recovery route = %v, want [3 1 0]", got)
	}
	if err := sc.Mesh.CheckRoutes(); err != nil {
		t.Errorf("recovered mesh invalid: %v", err)
	}
}

// TestRoutingReExports smoke-tests the root-package registry surface the
// CLIs embed in their usage strings.
func TestRoutingReExports(t *testing.T) {
	names := ezflow.Routings()
	if len(names) < 3 {
		t.Fatalf("Routings() = %v, want at least bfs, etx, kshortest", names)
	}
	for _, want := range []string{"bfs", "etx", "kshortest"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Routings() misses %q: %v", want, names)
		}
	}
	if !strings.Contains(ezflow.RoutingUsage(), "etx") {
		t.Errorf("RoutingUsage() misses etx:\n%s", ezflow.RoutingUsage())
	}
}
