// Hot-path benchmarks guarding the simulator core: BenchmarkChainRun is
// the end-to-end allocation budget for a full scenario run (engine + PHY +
// MAC + mesh + traffic + metering), BenchmarkChainRun80211 isolates the
// controller-free path. internal/sim has the matching micro-benchmark
// (BenchmarkEngine) for the event queue alone. Run with
//
//	go test -bench=ChainRun -benchmem -run=^$ .
//
// and compare B/op and allocs/op against the recorded numbers in
// BENCH_PR2.json before touching the packet or event path.
package ezflow_test

import (
	"fmt"
	"testing"

	"ezflow"
	"ezflow/internal/routing"
)

// chainRun executes one short 4-hop chain scenario in the given mode; the
// 20-simulated-second horizon is long enough for steady-state forwarding
// to dominate setup allocations.
func chainRun(seed int64, mode ezflow.Mode) *ezflow.Result {
	cfg := ezflow.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 20 * ezflow.Second
	cfg.Mode = mode
	sc := ezflow.NewChain(4, cfg,
		ezflow.FlowSpec{Flow: 1, RateBps: 2e6, Stop: cfg.Duration})
	return sc.Run()
}

// BenchmarkChainRun measures a 4-hop EZ-Flow chain run end to end. Its
// allocs/op is the headline number the pooled packet/event path is
// budgeted against.
func BenchmarkChainRun(b *testing.B) {
	b.ReportAllocs()
	var last *ezflow.Result
	for i := 0; i < b.N; i++ {
		last = chainRun(int64(i+1), ezflow.ModeEZFlow)
	}
	b.ReportMetric(last.Flows[1].MeanThroughputKbps, "kbps")
}

// BenchmarkChainRun80211 is the same run without any controller, isolating
// the raw forwarding path.
func BenchmarkChainRun80211(b *testing.B) {
	b.ReportAllocs()
	var last *ezflow.Result
	for i := 0; i < b.N; i++ {
		last = chainRun(int64(i+1), ezflow.Mode80211)
	}
	b.ReportMetric(last.Flows[1].MeanThroughputKbps, "kbps")
}

// largeTopoDuration is the simulated horizon of the large-topology
// benchmarks: long enough that steady-state forwarding dominates the
// topology build, short enough to iterate.
const largeTopoDuration = 5 * ezflow.Second

// gridRun executes one w×h lattice scenario with its default
// gateway-bound flows. The seed is fixed so every iteration performs
// identical work.
func gridRun(w, h int) *ezflow.Result {
	cfg := ezflow.DefaultConfig()
	cfg.Seed = 1
	cfg.Duration = largeTopoDuration
	cfg.Bin = ezflow.Second // bins must fit the short horizon
	cfg.Mode = ezflow.ModeEZFlow
	return ezflow.NewGrid(w, h, cfg).Run()
}

// diskRun executes one n-node random-disk scenario at the default
// (constant-density) radius with its default gateway-bound flow.
func diskRun(n int) *ezflow.Result {
	cfg := ezflow.DefaultConfig()
	cfg.Seed = 1
	cfg.Duration = largeTopoDuration
	cfg.Bin = ezflow.Second // bins must fit the short horizon
	cfg.Mode = ezflow.ModeEZFlow
	return ezflow.NewRandom(n, 0, cfg).Run()
}

// BenchmarkGrid100Run measures a 100-node (10×10) lattice run — the
// large-scenario axis the PHY neighbor index exists for. Most of the 100
// stations only carrier-sense the two routed flows, so per-transmission
// cost is dominated by how many nodes each broadcast event touches.
func BenchmarkGrid100Run(b *testing.B) {
	b.ReportAllocs()
	var last *ezflow.Result
	for i := 0; i < b.N; i++ {
		last = gridRun(10, 10)
	}
	b.ReportMetric(last.AggKbps, "kbps")
}

// BenchmarkRandomDisk200Run measures a 200-node random-disk run: the
// headline large-topology number (ISSUE 4 demands ≥10× over the O(N)
// per-transmission implementation).
func BenchmarkRandomDisk200Run(b *testing.B) {
	b.ReportAllocs()
	var last *ezflow.Result
	for i := 0; i < b.N; i++ {
		last = diskRun(200)
	}
	b.ReportMetric(last.AggKbps, "kbps")
}

// BenchmarkDiskScaling sweeps the node count at constant spatial density.
// With the neighbor-indexed PHY the per-event cost is O(degree), so ns/op
// should grow roughly linearly with n (event count) rather than
// quadratically (event count × per-event node walk).
func BenchmarkDiskScaling(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var last *ezflow.Result
			for i := 0; i < b.N; i++ {
				last = diskRun(n)
			}
			b.ReportMetric(last.AggKbps, "kbps")
		})
	}
}

// routingStrategy materialises a default-configured registry strategy for
// the route-computation microbenchmarks.
func routingStrategy(b *testing.B, name string) routing.Strategy {
	b.Helper()
	info, ok := routing.ByName(name)
	if !ok {
		b.Fatalf("strategy %q not registered", name)
	}
	return info.New(routing.DefaultOptions())
}

// benchRouteBuild measures one strategy's pure route-computation cost on
// a 200-node lossy random disk: the graph is assembled once, then each
// iteration recomputes the rim flow's path — the work a dynamics-driven
// repair performs mid-run.
func benchRouteBuild(b *testing.B, name string) {
	cfg := ezflow.DefaultConfig()
	cfg.Seed = 1
	sc := ezflow.NewRandomLossy(200, 0, 0.5, cfg)
	g := sc.Mesh.RoutingGraph(nil)
	route := sc.Mesh.Route(1)
	src, dst := route[0], route[len(route)-1]
	s := routingStrategy(b, name)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Route(g, 1, src, dst); !ok {
			b.Fatal("no route on a connected disk")
		}
	}
}

// BenchmarkRoutingBFS is the repair-cost baseline: the legacy minimum-hop
// search on a 200-node disk.
func BenchmarkRoutingBFS(b *testing.B) { benchRouteBuild(b, "bfs") }

// BenchmarkRoutingETX measures the O(V²) Dijkstra of the link-quality
// strategy on the same graph.
func BenchmarkRoutingETX(b *testing.B) { benchRouteBuild(b, "etx") }

// BenchmarkRoutingKShortest measures Yen's k-shortest ranking (K=4, each
// spur an inner BFS) on the same graph — the most expensive strategy.
func BenchmarkRoutingKShortest(b *testing.B) { benchRouteBuild(b, "kshortest") }

// lossyDiskRun is diskRun over the edge-of-range loss model with the
// given routing strategy — the workload of the `ezbench -exp routing`
// cross product.
func lossyDiskRun(n int, strategy string) *ezflow.Result {
	cfg := ezflow.DefaultConfig()
	cfg.Seed = 1
	cfg.Duration = largeTopoDuration
	cfg.Bin = ezflow.Second
	cfg.Mode = ezflow.ModeEZFlow
	cfg.Routing = strategy
	return ezflow.NewRandomLossy(n, 0, 0.5, cfg).Run()
}

// BenchmarkDiskScalingRouting reruns the 200-node disk per routing
// strategy on lossy links: end-to-end cost of strategy selection
// (wiring-time recomputation included) plus the throughput each strategy
// extracts, reported as the kbps metric.
func BenchmarkDiskScalingRouting(b *testing.B) {
	for _, s := range []string{"bfs", "etx", "kshortest"} {
		b.Run(s, func(b *testing.B) {
			b.ReportAllocs()
			var last *ezflow.Result
			for i := 0; i < b.N; i++ {
				last = lossyDiskRun(200, s)
			}
			b.ReportMetric(last.AggKbps, "kbps")
		})
	}
}
