// Hot-path benchmarks guarding the simulator core: BenchmarkChainRun is
// the end-to-end allocation budget for a full scenario run (engine + PHY +
// MAC + mesh + traffic + metering), BenchmarkChainRun80211 isolates the
// controller-free path. internal/sim has the matching micro-benchmark
// (BenchmarkEngine) for the event queue alone. Run with
//
//	go test -bench=ChainRun -benchmem -run=^$ .
//
// and compare B/op and allocs/op against the recorded numbers in
// BENCH_PR2.json before touching the packet or event path.
package ezflow_test

import (
	"testing"

	"ezflow"
)

// chainRun executes one short 4-hop chain scenario in the given mode; the
// 20-simulated-second horizon is long enough for steady-state forwarding
// to dominate setup allocations.
func chainRun(seed int64, mode ezflow.Mode) *ezflow.Result {
	cfg := ezflow.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 20 * ezflow.Second
	cfg.Mode = mode
	sc := ezflow.NewChain(4, cfg,
		ezflow.FlowSpec{Flow: 1, RateBps: 2e6, Stop: cfg.Duration})
	return sc.Run()
}

// BenchmarkChainRun measures a 4-hop EZ-Flow chain run end to end. Its
// allocs/op is the headline number the pooled packet/event path is
// budgeted against.
func BenchmarkChainRun(b *testing.B) {
	b.ReportAllocs()
	var last *ezflow.Result
	for i := 0; i < b.N; i++ {
		last = chainRun(int64(i+1), ezflow.ModeEZFlow)
	}
	b.ReportMetric(last.Flows[1].MeanThroughputKbps, "kbps")
}

// BenchmarkChainRun80211 is the same run without any controller, isolating
// the raw forwarding path.
func BenchmarkChainRun80211(b *testing.B) {
	b.ReportAllocs()
	var last *ezflow.Result
	for i := 0; i < b.N; i++ {
		last = chainRun(int64(i+1), ezflow.Mode80211)
	}
	b.ReportMetric(last.Flows[1].MeanThroughputKbps, "kbps")
}
