// Tree downlink: the extension sketched in the paper's conclusion (§7) —
// a gateway fans traffic out to several leaf access points through
// interior nodes that forward to up to four successors, repurposing the
// four 802.11e access-category queues as one queue (one CWmin) per
// successor. EZ-Flow then runs one BOE/CAA controller per successor queue.
package main

import (
	"fmt"
	"sort"

	"ezflow"
)

func main() {
	const branching, depth = 3, 2
	for _, mode := range []ezflow.Mode{ezflow.Mode80211, ezflow.ModeEZFlow} {
		cfg := ezflow.DefaultConfig()
		cfg.Mode = mode
		cfg.Duration = 900 * ezflow.Second

		// One downlink flow per leaf; the default splits a saturating
		// load evenly across the leaves.
		sc := ezflow.NewTree(branching, depth, cfg)
		fmt.Printf("--- %v (tree %d^%d: %d leaves, gateway runs %d per-successor queues) ---\n",
			mode, branching, depth, len(sc.Mesh.Flows()), len(sc.Mesh.Node(0).Queues()))

		res := sc.Run()
		var flows []ezflow.FlowID
		for f := range res.Flows {
			flows = append(flows, f)
		}
		sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
		for _, f := range flows {
			fmt.Printf("  leaf flow %v: %6.1f kb/s (delay %.2fs)\n",
				f, res.Flows[f].MeanThroughputKbps, res.Flows[f].MeanDelaySec)
		}
		fmt.Printf("  aggregate %.1f kb/s, Jain FI %.3f\n", res.AggKbps, res.Fairness)
		if mode == ezflow.ModeEZFlow {
			fmt.Printf("  controllers deployed: %d (one per relay successor)\n",
				len(sc.Deployment.Controllers))
		}
	}
}
