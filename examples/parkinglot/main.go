// Parking lot: the testbed workload of the paper's §4.3 — a long 7-hop
// flow F1 shares its tail with a short 4-hop flow F2. Under plain 802.11
// the short flow's aggressive source starves the long flow almost
// completely; EZ-Flow throttles both sources just enough to stabilise
// their own flows, solving the starvation and raising both the aggregate
// throughput and Jain's fairness index (Table 2 of the paper).
//
// The run reproduces the testbed's hardware quirk too: the MadWifi driver
// ignored CWmin values above 2^10, modelled here with a hardware cap.
package main

import (
	"fmt"

	"ezflow"
)

func main() {
	for _, mode := range []ezflow.Mode{ezflow.Mode80211, ezflow.ModeEZFlow} {
		cfg := ezflow.DefaultConfig()
		cfg.Mode = mode
		cfg.Duration = 1800 * ezflow.Second
		cfg.MAC.HardwareCWCap = 1 << 10 // the MadWifi limitation of §4.1

		sc := ezflow.NewTestbed(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: 2e6}, // 7-hop long flow
			ezflow.FlowSpec{Flow: 2, RateBps: 2e6}, // 4-hop competing flow
		)
		res := sc.Run()

		f1, f2 := res.Flows[1], res.Flows[2]
		fmt.Printf("%-8s  F1 %6.1f±%5.1f kb/s   F2 %6.1f±%5.1f kb/s   aggregate %6.1f   Jain FI %.2f\n",
			mode,
			f1.MeanThroughputKbps, f1.StdThroughputKbps,
			f2.MeanThroughputKbps, f2.StdThroughputKbps,
			res.AggKbps, res.Fairness)
	}
	fmt.Println("\npaper (Table 2): 802.11 starves F1 (7 vs 143 kb/s, FI 0.55);")
	fmt.Println("EZ-flow rebalances to 71 vs 110 kb/s, FI 0.96.")
}
