// Adaptive: a head-to-head of all four control modes on the same 5-hop
// chain — plain 802.11, the static penalty scheme of [9] (which needs the
// topology-dependent factor q chosen offline), a DiffQ-style differential
// backlog controller (which needs message passing), and EZ-Flow (which
// needs neither). The comparison prints throughput, delay, first-relay
// backlog, and control overhead bytes.
package main

import (
	"fmt"

	"ezflow"
)

func main() {
	fmt.Printf("%-10s %12s %10s %14s %12s\n",
		"mode", "kb/s", "delay s", "N1 backlog", "overhead B")
	for _, mode := range []ezflow.Mode{
		ezflow.Mode80211, ezflow.ModePenalty, ezflow.ModeDiffQ, ezflow.ModeEZFlow,
	} {
		cfg := ezflow.DefaultConfig()
		cfg.Mode = mode
		cfg.Duration = 900 * ezflow.Second
		cfg.PenaltyQ = 1.0 / 128 // the hand-tuned value of [9]
		cfg.PenaltyRelayCW = 16

		sc := ezflow.NewChain(5, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
		res := sc.Run()
		fr := res.Flows[1]
		fmt.Printf("%-10v %12.1f %10.2f %14.1f %12d\n",
			mode, fr.MeanThroughputKbps, fr.MeanDelaySec,
			res.MeanQueue[1], res.OverheadBytes)
	}
	fmt.Println("\nEZ-Flow matches the hand-tuned penalty scheme without knowing the")
	fmt.Println("topology, and matches DiffQ's stabilisation without its per-frame")
	fmt.Println("message-passing overhead.")
}
