// Adaptive: a head-to-head of the controller registry on the same 5-hop
// chain. The first table runs the paper's legacy modes — plain 802.11,
// the static penalty scheme of [9] (which needs the topology-dependent
// factor q chosen offline), a DiffQ-style differential backlog controller
// (which needs message passing), and EZ-Flow (which needs neither). The
// second table demonstrates controller switching: the same scenario is
// re-run for every controller registered in the pluggable subsystem
// (ezflow.Controllers()) just by setting cfg.Controller — including the
// backpressure and explicit-feedback competitors — and prints throughput,
// delay, first-relay backlog, and control overhead bytes for each.
package main

import (
	"fmt"

	"ezflow"
)

// run executes the 5-hop chain under one configuration mutation and
// prints a table row for it.
func run(label string, mutate func(*ezflow.Config)) {
	cfg := ezflow.DefaultConfig()
	cfg.Duration = 900 * ezflow.Second
	cfg.PenaltyQ = 1.0 / 128 // the hand-tuned value of [9]
	cfg.PenaltyRelayCW = 16
	mutate(&cfg)

	sc := ezflow.NewChain(5, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
	res := sc.Run()
	fr := res.Flows[1]
	fmt.Printf("%-14s %10.1f %10.2f %14.1f %12d\n",
		label, fr.MeanThroughputKbps, fr.MeanDelaySec,
		res.MeanQueue[1], res.OverheadBytes)
}

func main() {
	header := fmt.Sprintf("%-14s %10s %10s %14s %12s\n",
		"controller", "kb/s", "delay s", "N1 backlog", "overhead B")

	fmt.Println("legacy modes (thin wrappers over the controller registry):")
	fmt.Print(header)
	for _, mode := range []ezflow.Mode{
		ezflow.Mode80211, ezflow.ModePenalty, ezflow.ModeDiffQ, ezflow.ModeEZFlow,
	} {
		m := mode
		run(m.String(), func(cfg *ezflow.Config) { cfg.Mode = m })
	}

	fmt.Println("\ncontroller switching via cfg.Controller (the whole registry):")
	fmt.Print(header)
	run("802.11", func(cfg *ezflow.Config) {}) // no controller: the baseline
	for _, name := range ezflow.Controllers() {
		n := name
		run(n, func(cfg *ezflow.Config) { cfg.Controller = n })
	}

	fmt.Println("\nEZ-Flow matches the hand-tuned penalty scheme without knowing the")
	fmt.Println("topology, and matches the signalling controllers (DiffQ, backpressure,")
	fmt.Println("feedback) without their per-frame message-passing overhead.")
}
