// Quickstart: reproduce the paper's headline phenomenon on a 4-hop chain —
// plain IEEE 802.11 lets the first relay's buffer build up (turbulence),
// while EZ-Flow stabilises the network by adapting CWmin at each relay,
// improving throughput and delay with zero message-passing overhead.
package main

import (
	"fmt"

	"ezflow"
)

func main() {
	for _, mode := range []ezflow.Mode{ezflow.Mode80211, ezflow.ModeEZFlow} {
		cfg := ezflow.DefaultConfig()
		cfg.Mode = mode
		cfg.Duration = 600 * ezflow.Second

		// A saturated 2 Mb/s CBR source over a 4-hop chain (the smallest
		// topology that is unstable under plain 802.11).
		sc := ezflow.NewChain(4, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
		res := sc.Run()

		fr := res.Flows[1]
		fmt.Printf("%-8s  throughput %6.1f kb/s   delay %5.2f s   relay buffers:",
			mode, fr.MeanThroughputKbps, fr.MeanDelaySec)
		for n := ezflow.NodeID(1); n <= 3; n++ {
			fmt.Printf(" N%d=%.1f", n, res.MeanQueue[n])
		}
		fmt.Println()
		if mode == ezflow.ModeEZFlow {
			fmt.Println("          contention windows EZ-Flow discovered:")
			for key, cw := range res.FinalCW {
				fmt.Printf("            %s: %d\n", key, cw)
			}
		}
	}
}
