// Routing-strategy walkthrough: the same 200-node lossy random disk
// under every registered strategy, showing why minimum-hop routing
// collapses at scale and link-quality routing does not.
//
// The scenario is the shipped randomdisk.json — the same format
// `ezsim -scenario file.json` accepts — a constant-density disk whose
// edge-of-range links lose up to half their frames (the regime real
// 802.11 meshes operate in; paper §5 measures throughput collapsing
// as the disk grows). Minimum-hop BFS loves exactly those long lossy
// links, so its rim flow retransmits its way to a fraction of the
// deliverable rate. ETX weighs each link by its expected transmission
// count and detours through shorter, cleaner hops; k-shortest keeps
// the minimum-hop metric but spreads flows over the top-K paths.
//
// Run it:
//
//	go run ./examples/routing
//
// The same experiment from the CLI:
//
//	go run ./cmd/ezsim -scenario examples/routing/randomdisk.json -routing etx
//
// and the full cross product (strategy x mode x disk size):
//
//	go run ./cmd/ezbench -exp routing
package main

import (
	_ "embed"
	"fmt"
	"os"

	"ezflow/internal/scenario"
)

// specJSON is the shipped scenario file itself, embedded so this program
// and `ezsim -scenario examples/routing/randomdisk.json` can never
// drift apart.
//
//go:embed randomdisk.json
var specJSON string

func main() {
	fmt.Println("200-node lossy random disk, one saturating rim flow:")
	for _, routing := range []string{"bfs", "etx", "kshortest"} {
		spec, err := scenario.Parse([]byte(specJSON))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec.Routing = routing
		sc, err := spec.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		hops := len(sc.Mesh.Route(1)) - 1
		res := sc.Run()
		fr := res.Flows[1]
		fmt.Printf("%-10s  %d hops   %7.1f kb/s   delay %6.3fs   delivered %d\n",
			routing, hops, fr.MeanThroughputKbps, fr.MeanDelaySec, fr.Delivered)
	}
	fmt.Println("\nSame disk, same seed, same flow — only the route differs. Sweep")
	fmt.Println("strategies head-to-head across seeds with:")
	fmt.Println("  go run ./cmd/ezcampaign -scenario examples/routing/randomdisk.json \\")
	fmt.Println("      -sweep routing=bfs,etx,kshortest -reps 5")
}
