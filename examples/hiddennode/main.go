// Hidden node: the three-flow scenario of the paper's §5.3 (Figure 9),
// where the source of flow F2 is hidden from the source of F1. Plain
// 802.11 drastically starves F2 (huge delay, trickle throughput); EZ-Flow
// detects the congestion its collisions create downstream and throttles
// the hidden source, rescuing F2's throughput and pushing Jain's fairness
// index toward 1 (Table 3).
package main

import (
	"fmt"

	"ezflow"
)

func main() {
	const (
		f3Start = 1805 * ezflow.Second
		f3Stop  = 3605 * ezflow.Second
		end     = 4500 * ezflow.Second
	)
	for _, mode := range []ezflow.Mode{ezflow.Mode80211, ezflow.ModeEZFlow} {
		cfg := ezflow.DefaultConfig()
		cfg.Mode = mode
		cfg.Duration = end

		sc := ezflow.NewScenario2(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: 2e6, Start: 5 * ezflow.Second, Stop: end},
			ezflow.FlowSpec{Flow: 2, RateBps: 2e6, Start: 5 * ezflow.Second, Stop: f3Stop},
			ezflow.FlowSpec{Flow: 3, RateBps: 2e6, Start: f3Start, Stop: f3Stop},
		)
		res := sc.Run()

		fmt.Printf("--- %v ---\n", mode)
		show := func(name string, from, to ezflow.Time, flows ...ezflow.FlowID) {
			fmt.Printf("  %-12s", name)
			for _, f := range flows {
				mean, _ := res.FlowWindowKbps(f, from, to)
				fmt.Printf("  %v %6.1f kb/s", f, mean)
			}
			if len(flows) > 1 {
				fmt.Printf("   FI %.2f", res.FairnessWindow(from, to, flows...))
			}
			fmt.Println()
		}
		show("F1+F2", 5*ezflow.Second, f3Start, 1, 2)
		show("F1+F2+F3", f3Start, f3Stop, 1, 2, 3)
		show("F1 alone", f3Stop, end, 1)
		if mode == ezflow.ModeEZFlow {
			fmt.Printf("  hidden source N10 throttled to cw %d; F1 relays at cw %d\n",
				res.FinalCW["N10->N11"], res.FinalCW["N4->N5"])
		}
	}
	fmt.Println("\npaper (Table 3): FI 0.75 -> 1.00 (two flows), 0.64 -> 0.80 (three flows),")
	fmt.Println("with the cumulative throughput up 62% and delays down an order of magnitude.")
}
