// Merge: the uplink scenario of the paper's §5.2 (Figure 5) — two 8-hop
// flows merge at a junction and share a 4-hop trunk toward the gateway,
// with one flow joining and leaving mid-run. The example shows EZ-Flow's
// adaptation to a changing traffic matrix: contention windows converge for
// the single-flow regime, re-adapt when the second flow arrives, and fall
// back once it leaves (Figures 6-8).
package main

import (
	"fmt"
	"sort"

	"ezflow"
)

func main() {
	const (
		f2Start = 605 * ezflow.Second
		f2Stop  = 1804 * ezflow.Second
		end     = 2504 * ezflow.Second
	)
	for _, mode := range []ezflow.Mode{ezflow.Mode80211, ezflow.ModeEZFlow} {
		cfg := ezflow.DefaultConfig()
		cfg.Mode = mode
		cfg.Duration = end

		sc := ezflow.NewScenario1(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: 2e6, Start: 5 * ezflow.Second, Stop: end},
			ezflow.FlowSpec{Flow: 2, RateBps: 2e6, Start: f2Start, Stop: f2Stop},
		)
		res := sc.Run()

		fmt.Printf("--- %v ---\n", mode)
		periods := []struct {
			name     string
			from, to ezflow.Time
			flows    []ezflow.FlowID
		}{
			{"F1 alone (warm-up)", 5 * ezflow.Second, f2Start, []ezflow.FlowID{1}},
			{"F1 + F2 merged", f2Start, f2Stop, []ezflow.FlowID{1, 2}},
			{"F1 alone (again)", f2Stop, end, []ezflow.FlowID{1}},
		}
		for _, p := range periods {
			fmt.Printf("  %-20s", p.name)
			for _, f := range p.flows {
				mean, _ := res.FlowWindowKbps(f, p.from, p.to)
				delay := res.FlowWindowDelay(f, p.from, p.to)
				fmt.Printf("  %v %6.1f kb/s (delay %5.2fs)", f, mean, delay)
			}
			fmt.Println()
		}
		if mode == ezflow.ModeEZFlow {
			var keys []string
			for k := range res.FinalCW {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Println("  final contention windows (relays low, sources penalised):")
			for _, k := range keys {
				fmt.Printf("    %-10s %d\n", k, res.FinalCW[k])
			}
		}
	}
	fmt.Println("\npaper: single-flow period 153.2 -> 183.9 kb/s (+20%), delay 4.1s -> 0.2s;")
	fmt.Println("relays converge to cw 2^4, sources rise toward 2^11 — the static stable")
	fmt.Println("solution of [9] discovered distributively.")
}
