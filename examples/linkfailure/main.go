// Link-failure walkthrough: the dynamics subsystem breaks a 4-hop chain
// mid-run and lets each controller fight its way back.
//
// The scenario is the shipped linkfailure.json — the same format
// `ezsim -scenario file.json` accepts — with a dynamics timeline: the
// middle link N1<->N2 fails at t=200s and returns at t=230s. During the
// outage the upstream relay's buffer slams into the 50-packet cap no
// matter who is in charge; the interesting part is afterwards. EZ-Flow
// drains the fault backlog and settles its relays back to a few packets,
// while plain 802.11 — already turbulent on a 4-hop chain (paper Fig. 1)
// — keeps hitting the cap for the rest of the run.
//
// Run it:
//
//	go run ./examples/linkfailure
//
// The same experiment from the CLI, with plots:
//
//	go run ./cmd/ezsim -scenario examples/linkfailure/linkfailure.json -plot
package main

import (
	_ "embed"
	"fmt"
	"os"

	"ezflow/internal/scenario"
)

// specJSON is the shipped scenario file itself, embedded so this program
// and `ezsim -scenario examples/linkfailure/linkfailure.json` can never
// drift apart.
//
//go:embed linkfailure.json
var specJSON string

func main() {
	for _, mode := range []string{"802.11", "ezflow"} {
		spec, err := scenario.Parse([]byte(specJSON))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec.Mode = mode
		sc, err := spec.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := sc.Run()
		st := res.Stability

		rec := "never recovered"
		if r := st.RecoverySec[1]; r >= 0 {
			rec = fmt.Sprintf("recovered in %.0fs", r)
		}
		fmt.Printf("%-8s  pre-fault %6.1f kb/s   %s   excursion %2.0f pkts   tail max %2.0f pkts\n",
			mode, st.PreFaultKbps[1], rec, st.MaxQueueExcursion, st.TailMaxQueuePkts)
	}
	fmt.Println("\nBoth recover their throughput — the flap is transient — but only")
	fmt.Println("EZ-Flow's relays settle afterwards; 802.11 keeps brushing the cap.")
	fmt.Println("Sweep it across modes and seeds with:")
	fmt.Println("  go run ./cmd/ezcampaign -scenario examples/linkfailure/linkfailure.json \\")
	fmt.Println("      -sweep mode=802.11,ezflow -reps 5")
}
