// Mobility walkthrough: the same moving mesh under plain 802.11 and
// EZ-Flow, showing that hop-by-hop flow control keeps helping when the
// topology itself is in motion.
//
// The scenario is the shipped waypoint.json — the same format `ezsim
// -scenario file.json` accepts — a 4x4 grid whose relays roam at 3 m/s
// under the random-waypoint model while the gateway (mains-powered
// street furniture) stays pinned, serving a bursty 8-client downlink
// population. Every position tick re-patches the PHY neighbor index
// incrementally (phy.MoveNode) and, whenever decode-range membership
// changes, repairs every route through the active routing strategy —
// the same repair path scripted link failures use. Runs are
// deterministic: the same file and seed reproduce every move, repair,
// and delivery.
//
// Run it:
//
//	go run ./examples/mobility
//
// The same experiment from the CLI:
//
//	go run ./cmd/ezsim -scenario examples/mobility/waypoint.json
//
// a static control run of the same file:
//
//	go run ./cmd/ezsim -scenario examples/mobility/waypoint.json -mobility off
//
// and the full cross product (controller x mobility x workload):
//
//	go run ./cmd/ezbench -exp mobility
package main

import (
	_ "embed"
	"fmt"
	"os"

	"ezflow/internal/scenario"
)

// specJSON is the shipped scenario file itself, embedded so this program
// and `ezsim -scenario examples/mobility/waypoint.json` can never drift
// apart.
//
//go:embed waypoint.json
var specJSON string

func main() {
	fmt.Println("4x4 grid, 8 bursty downlink clients, relays roaming at 3 m/s:")
	for _, mode := range []string{"802.11", "ezflow"} {
		spec, err := scenario.Parse([]byte(specJSON))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec.Mode = mode
		sc, err := spec.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := sc.Run()
		var agg float64
		var delivered uint64
		for _, fr := range res.Flows {
			agg += fr.MeanThroughputKbps
			delivered += fr.Delivered
		}
		st := res.MobilityStats
		fmt.Printf("%-8s  %7.1f kb/s aggregate   fairness %.3f   delivered %6d   moves %5d   repairs %4d\n",
			mode, agg, res.Fairness, delivered, st.Moves, st.Repairs)
	}
	fmt.Println("\nSame mesh, same commuters, same bursts — only the control plane differs.")
}
