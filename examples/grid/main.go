// Grid walkthrough: two gateway-bound flows crossing a 4x4 lattice — a
// topology beyond the paper's own networks, built with the generated
// topology library.
//
// Flow 1 travels the long way round (top row, then down the left column,
// 6 hops); flow 2 takes the bottom row (3 hops). The two routes share
// only the gateway N0, so unlike the paper's Scenario 1 they never merge
// into one queue — all of their coupling happens over the air, through
// carrier sense and collisions where the paths approach each other. Under
// plain 802.11 the relay feeding the gateway builds a deep standing
// queue; EZ-Flow pushes that backlog upstream toward the sources, the
// same buffer-equalising behaviour the paper shows on chains.
//
// Run it:
//
//	go run ./examples/grid
//
// For a single run with ASCII plots:
//
//	go run ./cmd/ezsim -topology grid -grid-w 4 -grid-h 4 -mode ezflow -plot
package main

import (
	"fmt"

	"ezflow"
)

func main() {
	for _, mode := range []ezflow.Mode{ezflow.Mode80211, ezflow.ModeEZFlow} {
		cfg := ezflow.DefaultConfig()
		cfg.Mode = mode
		cfg.Duration = 300 * ezflow.Second

		// NewGrid installs flow 1 from the far corner N15 and flow 2 from
		// the bottom-right corner N3; both saturate at 2 Mb/s.
		sc := ezflow.NewGrid(4, 4, cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: 2e6},
			ezflow.FlowSpec{Flow: 2, RateBps: 2e6})
		res := sc.Run()

		fmt.Printf("%-8s  F1(6 hops) %6.1f kb/s   F2(3 hops) %6.1f kb/s   Jain FI %.3f\n",
			mode,
			res.Flows[1].MeanThroughputKbps,
			res.Flows[2].MeanThroughputKbps,
			res.Fairness)

		// The relays that buffer each flow: N8 is flow 1's corner turn,
		// N1/N2 carry flow 2 toward the gateway.
		fmt.Printf("          mean queues: N8=%.1f N12=%.1f N1=%.1f N2=%.1f\n",
			res.MeanQueue[8], res.MeanQueue[12], res.MeanQueue[1], res.MeanQueue[2])
	}
	fmt.Println("\nEZ-Flow drains the standing queue at the gateway's feeder relay —")
	fmt.Println("without a single control message. Try -topology random next:")
	fmt.Println("  go run ./cmd/ezsim -topology random -nodes 16 -seed 5 -mode ezflow")
}
