// Ablation benchmarks for the design choices DESIGN.md calls out: the
// passive BOE vs message passing, the next-hop buffer signal vs
// differential backlog, the 50-sample averaging window, the bmin/bmax
// thresholds, sniff-loss robustness, and the hardware CWmin cap.
package ezflow_test

import (
	"fmt"
	"testing"

	root "ezflow"
	ezctl "ezflow/internal/ezflow"
)

// ablationRun executes a 5-hop saturated chain and returns headline
// metrics. The 5-hop chain is used because its instability under plain
// 802.11 is strong, making controller differences visible quickly.
func ablationRun(cfg root.Config) (kbps, delay, q1 float64, overhead uint64) {
	cfg.Duration = 600 * root.Second
	sc := root.NewChain(5, cfg, root.FlowSpec{Flow: 1, RateBps: 2e6})
	res := sc.Run()
	fr := res.Flows[1]
	return fr.MeanThroughputKbps, fr.MeanDelaySec, res.MeanQueue[1], res.OverheadBytes
}

// BenchmarkAblationMessagePassing compares EZ-Flow's passive estimation
// against the DiffQ-style controller that piggybacks queue sizes on data
// frames: similar stabilisation, but only one of them costs header bytes.
func BenchmarkAblationMessagePassing(b *testing.B) {
	var ezK, dqK, ezD, dqD float64
	var dqOver uint64
	for i := 0; i < b.N; i++ {
		cfg := root.DefaultConfig()
		cfg.Seed = int64(i + 1)
		cfg.Mode = root.ModeEZFlow
		ezK, ezD, _, _ = ablationRun(cfg)
		cfg2 := root.DefaultConfig()
		cfg2.Seed = int64(i + 1)
		cfg2.Mode = root.ModeDiffQ
		dqK, dqD, _, dqOver = ablationRun(cfg2)
	}
	b.ReportMetric(ezK, "ezflow-kbps")
	b.ReportMetric(dqK, "diffq-kbps")
	b.ReportMetric(ezD, "ezflow-delay-s")
	b.ReportMetric(dqD, "diffq-delay-s")
	b.ReportMetric(float64(dqOver), "diffq-overhead-B")
	b.ReportMetric(0, "ezflow-overhead-B")
}

// BenchmarkAblationSignal compares the next-hop buffer signal (EZ-Flow)
// against the static penalty scheme of [9] that EZ-Flow is meant to
// rediscover without hand tuning.
func BenchmarkAblationSignal(b *testing.B) {
	var ezQ, pnQ, plQ float64
	for i := 0; i < b.N; i++ {
		cfg := root.DefaultConfig()
		cfg.Seed = int64(i + 1)
		cfg.Mode = root.ModeEZFlow
		_, _, ezQ, _ = ablationRun(cfg)
		cfg.Mode = root.ModePenalty
		_, _, pnQ, _ = ablationRun(cfg)
		cfg.Mode = root.Mode80211
		_, _, plQ, _ = ablationRun(cfg)
	}
	b.ReportMetric(ezQ, "ezflow-q1-pkts")
	b.ReportMetric(pnQ, "penalty-q1-pkts")
	b.ReportMetric(plQ, "80211-q1-pkts")
}

// BenchmarkAblationWindow sweeps the CAA averaging window around the
// paper's 50 samples.
func BenchmarkAblationWindow(b *testing.B) {
	for _, window := range []int{10, 25, 50, 100, 200} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			var kbps, delay float64
			for i := 0; i < b.N; i++ {
				cfg := root.DefaultConfig()
				cfg.Seed = int64(i + 1)
				cfg.Mode = root.ModeEZFlow
				cfg.EZ.CAA.Window = window
				kbps, delay, _, _ = ablationRun(cfg)
			}
			b.ReportMetric(kbps, "kbps")
			b.ReportMetric(delay, "delay-s")
		})
	}
}

// BenchmarkAblationThresholds sweeps bmax (bmin fixed at the paper's 0.05,
// which §3.3 says must stay very small).
func BenchmarkAblationThresholds(b *testing.B) {
	for _, bmax := range []float64{5, 10, 20, 35} {
		b.Run(fmt.Sprintf("bmax=%v", bmax), func(b *testing.B) {
			var kbps, q1 float64
			for i := 0; i < b.N; i++ {
				cfg := root.DefaultConfig()
				cfg.Seed = int64(i + 1)
				cfg.Mode = root.ModeEZFlow
				cfg.EZ.CAA.BMax = bmax
				kbps, _, q1, _ = ablationRun(cfg)
			}
			b.ReportMetric(kbps, "kbps")
			b.ReportMetric(q1, "q1-pkts")
		})
	}
}

// BenchmarkAblationSniffLoss degrades the BOE's monitor mode: §3.2 claims
// EZ-Flow keeps working when most forwarded packets are not overheard.
func BenchmarkAblationSniffLoss(b *testing.B) {
	for _, loss := range []float64{0, 0.5, 0.9, 0.99} {
		b.Run(fmt.Sprintf("loss=%v", loss), func(b *testing.B) {
			var kbps, q1 float64
			for i := 0; i < b.N; i++ {
				cfg := root.DefaultConfig()
				cfg.Seed = int64(i + 1)
				cfg.Mode = root.ModeEZFlow
				cfg.EZ = ezctl.Options{CAA: ezctl.DefaultCAAConfig(), SniffLoss: loss}
				kbps, _, q1, _ = ablationRun(cfg)
			}
			b.ReportMetric(kbps, "kbps")
			b.ReportMetric(q1, "q1-pkts")
		})
	}
}

// BenchmarkAblationCap compares the testbed's 2^10 hardware CWmin cap
// against the unconstrained 2^15 of the simulations (§4.3 attributes the
// residual buffer at N1 to this cap).
func BenchmarkAblationCap(b *testing.B) {
	for _, cap := range []int{1 << 10, 0} {
		name := "cap=1024"
		if cap == 0 {
			name = "cap=none"
		}
		b.Run(name, func(b *testing.B) {
			var kbps, q1 float64
			for i := 0; i < b.N; i++ {
				cfg := root.DefaultConfig()
				cfg.Seed = int64(i + 1)
				cfg.Mode = root.ModeEZFlow
				cfg.MAC.HardwareCWCap = cap
				kbps, _, q1, _ = ablationRun(cfg)
			}
			b.ReportMetric(kbps, "kbps")
			b.ReportMetric(q1, "q1-pkts")
		})
	}
}

// BenchmarkEngineThroughput measures raw simulator speed: simulated
// seconds per wall second on the 4-hop saturated chain.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := root.DefaultConfig()
		cfg.Seed = int64(i + 1)
		cfg.Duration = 60 * root.Second
		sc := root.NewChain(4, cfg, root.FlowSpec{Flow: 1, RateBps: 2e6})
		sc.Run()
	}
	b.ReportMetric(60*float64(b.N)/b.Elapsed().Seconds(), "sim-s/wall-s")
}
