module ezflow

go 1.24
