package routing

import (
	"slices"

	"ezflow/internal/phy"
	"ezflow/internal/pkt"
)

func init() {
	Register(Info{
		Name:    "bfs",
		Summary: "minimum-hop breadth-first search, lowest-id tie-break (the paper's static agent; default)",
		New:     func(Options) Strategy { return BFS{} },
	})
}

// BFS is the minimum-hop strategy: a breadth-first search from the flow's
// source visiting neighbours in ascending id order, so ties always break
// toward the lowest node id. It is the re-homed legacy mesh.RerouteFlow
// search, byte-identical to the pre-registry behaviour, and ignores link
// quality entirely — every usable link costs one hop.
type BFS struct{}

// Name returns "bfs".
func (BFS) Name() string { return "bfs" }

// Route runs the breadth-first search over g's usable links. The flow id
// is ignored: minimum-hop paths are flow-independent.
func (BFS) Route(g *Graph, _ pkt.FlowID, src, dst pkt.NodeID) ([]pkt.NodeID, bool) {
	parent := map[pkt.NodeID]pkt.NodeID{src: src}
	queue := []pkt.NodeID{src}
	found := false
	for len(queue) > 0 && !found {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.IDs {
			if _, seen := parent[v]; seen || !g.Usable(u, v) {
				continue
			}
			parent[v] = u
			if v == dst {
				found = true
				break
			}
			queue = append(queue, v)
		}
	}
	if !found {
		return nil, false
	}
	var rev []pkt.NodeID
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	path := make([]pkt.NodeID, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, true
}

// GatewayTree runs a breadth-first search over the transmission-range
// graph rooted at node 0 (the gateway), visiting neighbours in ascending
// id order so the resulting shortest-path tree is deterministic.
// parent[i] is i's predecessor toward the gateway, or -1 if unreachable.
// Topology builders use it both as a connectivity check and to draw
// initial gateway-bound routes (following the parent chain from a node
// yields its minimum-hop path to the gateway).
//
// Candidates come from the same spatial hash the PHY neighbor index is
// built with, so a connectivity pass is O(N·degree) instead of O(N²);
// sorting each cell-neighborhood batch keeps the visit order — and with
// it the resulting tree — identical to the all-pairs scan.
func GatewayTree(pos []phy.Position, txRange float64) []int {
	n := len(pos)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[0] = 0
	g := phy.NewSpatialGrid(pos, txRange)
	queue := make([]int, 0, n)
	queue = append(queue, 0)
	var cand []int32
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		cand = g.Near(pos[u], cand[:0])
		slices.Sort(cand)
		for _, v32 := range cand {
			v := int(v32)
			if parent[v] < 0 && pos[u].Dist(pos[v]) <= txRange {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// Connected reports whether every node reached the gateway in a
// GatewayTree pass.
func Connected(parent []int) bool {
	for _, p := range parent {
		if p < 0 {
			return false
		}
	}
	return true
}
