package routing

import (
	"ezflow/internal/pkt"
)

func init() {
	Register(Info{
		Name:    "kshortest",
		Summary: "deterministic Yen k-shortest multipath, flows spread over the alternatives round-robin",
		New:     func(opts Options) Strategy { FillDefaults(&opts); return &KShortest{K: opts.K} },
	})
}

// KShortest ranks the K loop-free shortest-hop paths with Yen's algorithm
// (breadth-first search as the inner shortest-path routine, so every spur
// inherits BFS's lowest-id tie-break) and assigns flow f the path at rank
// (f-1) mod |paths|. Flow 1 therefore always gets the plain BFS route,
// and concurrent flows between the same endpoints spread over the
// alternatives instead of piling onto one geodesic — the multipath
// complement of the paper's single-route scenarios.
//
// Determinism: candidate paths are ordered by (hop count, then
// lexicographic node-id sequence), so the ranking — and with it every
// flow's selection — is a pure function of the graph.
type KShortest struct {
	// K is the number of alternative paths ranked (see Options.K).
	K int
}

// Name returns "kshortest".
func (*KShortest) Name() string { return "kshortest" }

// Route ranks the k shortest paths and picks the flow's slot.
func (s *KShortest) Route(g *Graph, flow pkt.FlowID, src, dst pkt.NodeID) ([]pkt.NodeID, bool) {
	paths := s.Paths(g, src, dst)
	if len(paths) == 0 {
		return nil, false
	}
	slot := (int64(flow) - 1) % int64(len(paths))
	if slot < 0 {
		slot += int64(len(paths))
	}
	return paths[slot], true
}

// Paths returns up to K loop-free paths src..dst in deterministic rank
// order (shortest first). An empty result means src and dst are
// disconnected.
func (s *KShortest) Paths(g *Graph, src, dst pkt.NodeID) [][]pkt.NodeID {
	k := s.K
	if k <= 0 {
		k = DefaultOptions().K
	}
	first, ok := BFS{}.Route(g, 0, src, dst)
	if !ok {
		return nil
	}
	found := [][]pkt.NodeID{first}
	var candidates [][]pkt.NodeID

	for len(found) < k {
		prev := found[len(found)-1]
		// Each node of the newest path except the destination is a spur:
		// ban the edges previous paths take out of the shared root, ban
		// the root's interior nodes, and search for a deviation.
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			root := prev[:i+1]
			bannedEdge := make(map[[2]pkt.NodeID]bool)
			for _, p := range found {
				if len(p) > i && samePrefix(p, root) {
					bannedEdge[[2]pkt.NodeID{p[i], p[i+1]}] = true
				}
			}
			bannedNode := make(map[pkt.NodeID]bool)
			for _, u := range root[:len(root)-1] {
				bannedNode[u] = true
			}
			sub := &Graph{
				IDs:      g.IDs,
				LinkLoss: g.LinkLoss,
				Measured: g.Measured,
				Usable: func(a, b pkt.NodeID) bool {
					if bannedNode[a] || bannedNode[b] || bannedEdge[[2]pkt.NodeID{a, b}] {
						return false
					}
					return g.Usable(a, b)
				},
			}
			tail, ok := BFS{}.Route(sub, 0, spur, dst)
			if !ok {
				continue
			}
			cand := append(append([]pkt.NodeID(nil), root[:len(root)-1]...), tail...)
			if !containsPath(found, cand) && !containsPath(candidates, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(candidates); i++ {
			if pathLess(candidates[i], candidates[best]) {
				best = i
			}
		}
		found = append(found, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return found
}

// samePrefix reports whether p starts with the given root path.
func samePrefix(p, root []pkt.NodeID) bool {
	if len(p) < len(root) {
		return false
	}
	for i := range root {
		if p[i] != root[i] {
			return false
		}
	}
	return true
}

// containsPath reports whether the set already holds an identical path.
func containsPath(set [][]pkt.NodeID, p []pkt.NodeID) bool {
	for _, q := range set {
		if samePath(p, q) {
			return true
		}
	}
	return false
}

// samePath reports whether two paths are identical.
func samePath(a, b []pkt.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pathLess is the deterministic candidate order: fewer hops first, then
// the lexicographically smaller node-id sequence.
func pathLess(a, b []pkt.NodeID) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
