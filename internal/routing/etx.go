package routing

import (
	"math"

	"ezflow/internal/pkt"
)

func init() {
	Register(Info{
		Name:    "etx",
		Summary: "minimum expected-transmission-count (ETX) over calibrated loss, measured MAC counters once links carry traffic",
		New:     func(opts Options) Strategy { FillDefaults(&opts); return &ETX{MinAcked: opts.MinAcked} },
	})
}

// ETX is De Couto's expected-transmission-count metric: each link costs
// the expected number of MAC transmissions a delivery needs, and the
// route is the minimum-cost path under Dijkstra. Link cost comes from two
// sources, in priority order:
//
//  1. Measured: once the forwarder's queues toward the next hop have
//     carried at least MinAcked packets, cost = (acked+retries)/acked —
//     the PR 6 per-link observability counters turned into a live link
//     metric, so mid-run route repair avoids links that have proven bad.
//  2. Calibrated: 1/((1-p_fwd)·(1-p_rev)) from the channel's configured
//     erasure probabilities (the paper's Table 1 inputs; data travels
//     forward, the ACK travels back). Loss-free links cost exactly 1, so
//     with no calibration ETX degenerates to minimum hop count.
//
// Determinism: nodes are settled in (cost, then lowest-id) order and
// neighbours relaxed in ascending id order with strict improvement, so
// equal-cost ties always resolve toward the path found first in id order.
type ETX struct {
	// MinAcked is the measured-sample floor (see Options.MinAcked).
	MinAcked uint64
}

// Name returns "etx".
func (*ETX) Name() string { return "etx" }

// LinkCost returns the expected transmission count of the directed link
// a->b under this strategy's measurement rules, or +Inf when either
// direction is certain to erase. It is exported so experiments and tests
// can report the cost of an installed path.
func (e *ETX) LinkCost(g *Graph, a, b pkt.NodeID) float64 {
	if g.Measured != nil {
		if acked, retries, ok := g.Measured(a, b); ok && acked >= e.MinAcked {
			return float64(acked+retries) / float64(acked)
		}
	}
	var pf, pr float64
	if g.LinkLoss != nil {
		pf, pr = g.LinkLoss(a, b), g.LinkLoss(b, a)
	}
	if pf >= 1 || pr >= 1 {
		return math.Inf(1)
	}
	return 1 / ((1 - pf) * (1 - pr))
}

// Route runs Dijkstra over the usable links with ETX link costs. The flow
// id is ignored: the cheapest path is flow-independent.
func (e *ETX) Route(g *Graph, _ pkt.FlowID, src, dst pkt.NodeID) ([]pkt.NodeID, bool) {
	n := len(g.IDs)
	idx := make(map[pkt.NodeID]int, n)
	for i, id := range g.IDs {
		idx[id] = i
	}
	si, ok := idx[src]
	if !ok {
		return nil, false
	}
	di, ok := idx[dst]
	if !ok {
		return nil, false
	}

	const unreached = -1
	dist := make([]float64, n)
	parent := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = unreached
	}
	dist[si] = 0
	parent[si] = si

	// O(V²) selection: scan for the unsettled minimum. Topologies top out
	// in the hundreds of nodes, and the ascending scan doubles as the
	// lowest-id tie-break, which a binary heap would not give for free.
	for {
		u := unreached
		for i := 0; i < n; i++ {
			if !done[i] && parent[i] != unreached && (u == unreached || dist[i] < dist[u]) {
				u = i
			}
		}
		if u == unreached {
			return nil, false
		}
		if u == di {
			break
		}
		done[u] = true
		uid := g.IDs[u]
		for v := 0; v < n; v++ {
			if done[v] || !g.Usable(uid, g.IDs[v]) {
				continue
			}
			c := e.LinkCost(g, uid, g.IDs[v])
			if math.IsInf(c, 1) {
				continue
			}
			if nd := dist[u] + c; nd < dist[v] {
				dist[v] = nd
				parent[v] = u
			}
		}
	}

	var rev []pkt.NodeID
	for v := di; ; v = parent[v] {
		rev = append(rev, g.IDs[v])
		if v == si {
			break
		}
	}
	path := make([]pkt.NodeID, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, true
}

// PathCost sums a path's link costs under this strategy's rules — the
// expected total transmissions one delivery needs end to end.
func (e *ETX) PathCost(g *Graph, path []pkt.NodeID) float64 {
	var sum float64
	for i := 0; i+1 < len(path); i++ {
		sum += e.LinkCost(g, path[i], path[i+1])
	}
	return sum
}
