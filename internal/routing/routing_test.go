package routing

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"ezflow/internal/phy"
	"ezflow/internal/pkt"
)

// testGraph builds a Graph from an undirected edge list with optional
// symmetric per-edge loss, mirroring how mesh assembles the real view:
// ascending ids, a pure usable predicate, calibrated losses.
func testGraph(n int, edges [][2]pkt.NodeID, loss map[[2]pkt.NodeID]float64) *Graph {
	ids := make([]pkt.NodeID, n)
	for i := range ids {
		ids[i] = pkt.NodeID(i)
	}
	adj := make(map[[2]pkt.NodeID]bool)
	for _, e := range edges {
		adj[e] = true
		adj[[2]pkt.NodeID{e[1], e[0]}] = true
	}
	return &Graph{
		IDs:    ids,
		Usable: func(a, b pkt.NodeID) bool { return adj[[2]pkt.NodeID{a, b}] },
		LinkLoss: func(a, b pkt.NodeID) float64 {
			if l, ok := loss[[2]pkt.NodeID{a, b}]; ok {
				return l
			}
			return loss[[2]pkt.NodeID{b, a}]
		},
	}
}

// TestRegistryContents pins the three shipped strategies and the default
// spelling rules every CLI flag and scenario field share.
func TestRegistryContents(t *testing.T) {
	for _, name := range []string{"bfs", "etx", "kshortest"} {
		info, ok := ByName(name)
		if !ok {
			t.Fatalf("strategy %q not registered", name)
		}
		s := info.New(Options{})
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
	if !strings.Contains(NamesList(), "bfs|") {
		t.Errorf("NamesList() = %q", NamesList())
	}
	if Default().Name() != DefaultName {
		t.Errorf("Default().Name() = %q, want %q", Default().Name(), DefaultName)
	}
	for name, want := range map[string]bool{"": true, "bfs": true, "BFS": true, "etx": false, "kshortest": false, "nope": false} {
		if IsDefault(name) != want {
			t.Errorf("IsDefault(%q) = %v, want %v", name, !want, want)
		}
	}
	if !strings.Contains(Usage(), "etx") {
		t.Errorf("Usage() misses etx:\n%s", Usage())
	}
}

// TestRegisterRejectsBadInfo covers the init-time registration contract:
// empty names, nil constructors and duplicates all panic.
func TestRegisterRejectsBadInfo(t *testing.T) {
	mustPanic := func(name string, info Info) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(info)
	}
	newS := func(Options) Strategy { return BFS{} }
	mustPanic("empty name", Info{Name: "", New: newS})
	mustPanic("nil New", Info{Name: "zz-test-nil"})
	mustPanic("duplicate", Info{Name: "bfs", New: newS})
}

// TestBFSRoute covers the re-homed legacy search: shortest hop count,
// lowest-id tie-break, ok=false across partitions.
func TestBFSRoute(t *testing.T) {
	// Diamond 0-1-3 / 0-2-3 plus a long detour 0-4-5-3.
	g := testGraph(6, [][2]pkt.NodeID{{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 4}, {4, 5}, {5, 3}}, nil)
	got, ok := BFS{}.Route(g, 1, 0, 3)
	if !ok || !reflect.DeepEqual(got, []pkt.NodeID{0, 1, 3}) {
		t.Errorf("Route = %v, %v; want [0 1 3] (lowest-id 2-hop path)", got, ok)
	}
	// Severing both 2-hop branches leaves the detour.
	g2 := testGraph(6, [][2]pkt.NodeID{{0, 4}, {4, 5}, {5, 3}}, nil)
	if got, ok := (BFS{}).Route(g2, 1, 0, 3); !ok || len(got) != 4 {
		t.Errorf("detour route = %v, %v; want the 3-hop path", got, ok)
	}
	if _, ok := (BFS{}).Route(g2, 1, 0, 2); ok {
		t.Error("route to an isolated node reported ok")
	}
}

// TestETXPrefersCleanDetour is the metric's reason to exist: a marginal
// direct link costs more expected transmissions than two clean hops, so
// ETX routes around what BFS walks straight through.
func TestETXPrefersCleanDetour(t *testing.T) {
	edges := [][2]pkt.NodeID{{0, 3}, {0, 1}, {1, 3}}
	loss := map[[2]pkt.NodeID]float64{{0, 3}: 0.6} // direct ETX 1/(0.4·0.4) = 6.25 > 2
	g := testGraph(4, edges, loss)
	e := &ETX{MinAcked: 8}
	if got, ok := e.Route(g, 1, 0, 3); !ok || !reflect.DeepEqual(got, []pkt.NodeID{0, 1, 3}) {
		t.Errorf("Route = %v, %v; want the clean 2-hop detour", got, ok)
	}
	if c := e.LinkCost(g, 0, 3); math.Abs(c-6.25) > 1e-9 {
		t.Errorf("LinkCost(0,3) = %g, want 6.25", c)
	}
	if c := e.PathCost(g, []pkt.NodeID{0, 1, 3}); math.Abs(c-2) > 1e-9 {
		t.Errorf("PathCost = %g, want 2", c)
	}
	// BFS on the same graph takes the lossy direct hop.
	if got, _ := (BFS{}).Route(g, 1, 0, 3); !reflect.DeepEqual(got, []pkt.NodeID{0, 3}) {
		t.Errorf("BFS control = %v, want [0 3]", got)
	}
}

// TestETXMeasuredCounters checks the PR 6 observability inputs override
// the calibration once a link has enough samples — and only then.
func TestETXMeasuredCounters(t *testing.T) {
	g := testGraph(4, [][2]pkt.NodeID{{0, 3}, {0, 1}, {1, 3}}, nil)
	acked := uint64(100)
	g.Measured = func(a, b pkt.NodeID) (uint64, uint64, bool) {
		if a == 0 && b == 3 {
			return acked, 300, true // measured ETX 4
		}
		return 0, 0, false
	}
	e := &ETX{MinAcked: 8}
	if c := e.LinkCost(g, 0, 3); math.Abs(c-4) > 1e-9 {
		t.Errorf("measured LinkCost = %g, want 4", c)
	}
	if got, ok := e.Route(g, 1, 0, 3); !ok || !reflect.DeepEqual(got, []pkt.NodeID{0, 1, 3}) {
		t.Errorf("Route = %v, %v; want detour around the measured-bad link", got, ok)
	}
	acked = 4 // below the sample floor: calibration (loss-free, cost 1) wins
	if c := e.LinkCost(g, 0, 3); math.Abs(c-1) > 1e-9 {
		t.Errorf("under-sampled LinkCost = %g, want calibrated 1", c)
	}
	if got, _ := e.Route(g, 1, 0, 3); !reflect.DeepEqual(got, []pkt.NodeID{0, 3}) {
		t.Errorf("under-sampled Route = %v, want the direct hop", got)
	}
}

// TestETXInfiniteLossUnroutable checks certain-erasure links are never
// used: with every path through them, no route exists.
func TestETXInfiniteLossUnroutable(t *testing.T) {
	g := testGraph(3, [][2]pkt.NodeID{{0, 1}, {1, 2}}, map[[2]pkt.NodeID]float64{{1, 2}: 1})
	e := &ETX{MinAcked: 8}
	if !math.IsInf(e.LinkCost(g, 1, 2), 1) {
		t.Errorf("LinkCost of a certain-erasure link = %g, want +Inf", e.LinkCost(g, 1, 2))
	}
	if _, ok := e.Route(g, 1, 0, 2); ok {
		t.Error("routed through a link with loss 1")
	}
}

// TestKShortestSpreadsFlows covers the multipath contract: ranked
// deterministic alternatives, flow 1 pinned to the BFS route, later flows
// round-robined over the rest, every path loop-free.
func TestKShortestSpreadsFlows(t *testing.T) {
	// Diamond plus a 3-hop detour: three distinct loop-free paths 0..3.
	g := testGraph(6, [][2]pkt.NodeID{{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 4}, {4, 5}, {5, 3}}, nil)
	s := &KShortest{K: 4}
	paths := s.Paths(g, 0, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths %v, want 3", len(paths), paths)
	}
	want := [][]pkt.NodeID{{0, 1, 3}, {0, 2, 3}, {0, 4, 5, 3}}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("Paths = %v, want %v", paths, want)
	}
	for _, p := range paths {
		seen := map[pkt.NodeID]bool{}
		for _, u := range p {
			if seen[u] {
				t.Errorf("path %v revisits %v", p, u)
			}
			seen[u] = true
		}
	}
	for flow, wantPath := range map[pkt.FlowID][]pkt.NodeID{
		1: {0, 1, 3}, 2: {0, 2, 3}, 3: {0, 4, 5, 3}, 4: {0, 1, 3}, // wraps
	} {
		if got, ok := s.Route(g, flow, 0, 3); !ok || !reflect.DeepEqual(got, wantPath) {
			t.Errorf("flow %v: Route = %v, %v; want %v", flow, got, ok, wantPath)
		}
	}
	if _, ok := s.Route(g, 1, 0, 9); ok {
		t.Error("route to an absent node reported ok")
	}
}

// TestKShortestDeterministic re-ranks the same graph and expects the
// identical ordering — the property the campaign's worker-count pin
// ultimately rests on.
func TestKShortestDeterministic(t *testing.T) {
	g := testGraph(6, [][2]pkt.NodeID{{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 4}, {4, 5}, {5, 3}}, nil)
	s := &KShortest{K: 4}
	a := s.Paths(g, 0, 3)
	b := s.Paths(g, 0, 3)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("re-ranking diverged: %v vs %v", a, b)
	}
}

// TestGatewayTree pins the hoisted builder helper: a 3-node line yields
// the parent chain toward node 0, and an out-of-range node is reported
// unreachable by Connected.
func TestGatewayTree(t *testing.T) {
	pos := []phy.Position{{X: 0}, {X: 200}, {X: 400}}
	parent := GatewayTree(pos, 250)
	if !reflect.DeepEqual(parent, []int{0, 0, 1}) {
		t.Errorf("parent = %v, want [0 0 1]", parent)
	}
	if !Connected(parent) {
		t.Error("connected line reported disconnected")
	}
	pos = append(pos, phy.Position{X: 5000})
	if Connected(GatewayTree(pos, 250)) {
		t.Error("isolated node reported connected")
	}
}

// TestOptionsDefaults pins the documented zero-value behaviour.
func TestOptionsDefaults(t *testing.T) {
	o := DefaultOptions()
	if o.K != 4 || o.MinAcked != 8 {
		t.Errorf("DefaultOptions() = %+v, want K=4 MinAcked=8", o)
	}
	set := Options{K: 9, MinAcked: 2}
	FillDefaults(&set)
	if set.K != 9 || set.MinAcked != 2 {
		t.Errorf("FillDefaults clobbered caller values: %+v", set)
	}
}
