// Package routing is the route-computation subsystem of the repository:
// pluggable path-selection strategies behind a name registry that exactly
// mirrors internal/ctl's congestion-controller registry. The paper factors
// routing dynamics out of its study with a static NOAH-style agent, and
// until PR 7 that agent was hardcoded breadth-first search inside
// internal/mesh; the PR 6 diagnosis of the DiskScaling collapse (route
// *quality*, not MAC loss, starves long random-disk paths) made route
// selection an experiment axis of its own.
//
// Three strategies are registered:
//
//   - "bfs" — the legacy minimum-hop breadth-first search, byte-identical
//     to the pre-registry behaviour (it is the default everywhere).
//   - "etx" — minimum expected-transmission-count (De Couto's ETX) over
//     the calibrated per-link loss probabilities, switching to measured
//     per-link MAC counters (dequeues and retries, the PR 6 observability
//     inputs) once a link has carried enough traffic.
//   - "kshortest" — deterministic Yen k-shortest multipath with per-flow
//     tie-broken selection, so concurrent flows spread over link-disjoint
//     alternatives instead of piling onto one geodesic.
//
// Strategies compute over a Graph — a read-only view of the mesh carrying
// node ids, a usable-link predicate, calibrated losses and live per-link
// counters — and never mutate the mesh themselves; internal/mesh installs
// whatever path a strategy returns. Every strategy is deterministic: the
// same graph, flow and endpoints always yield the identical path, on any
// worker count and under the race detector, because all iteration is in
// ascending node-id order and every tie has a documented break rule.
package routing

import (
	"fmt"
	"sort"
	"strings"

	"ezflow/internal/pkt"
)

// Graph is the read-only topology view a Strategy computes over. The mesh
// layer assembles it; strategies never see the mesh itself, so they cannot
// perturb simulation state.
type Graph struct {
	// IDs holds every node id in ascending order. Strategies iterate this
	// slice (never a map) so their visit order is deterministic.
	IDs []pkt.NodeID
	// Usable reports whether the directed link a->b can carry traffic
	// right now: both endpoints up, the link not severed, b within a's
	// transmission range. During route repair this is the dynamics
	// engine's connectivity predicate; at build time it is plain
	// transmission range.
	Usable func(a, b pkt.NodeID) bool
	// LinkLoss reports the calibrated erasure probability of the directed
	// link a->b (0 when none is configured) — the a-priori input of
	// link-quality metrics.
	LinkLoss func(a, b pkt.NodeID) float64
	// Measured reports the live per-link MAC counters for traffic a sent
	// toward b: packets that left a's queues to b (acked head-of-line
	// departures) and retransmission attempts. ok is false when a has no
	// queue toward b. Nil when the caller has no MAC state (pure
	// topology-level computations).
	Measured func(a, b pkt.NodeID) (acked, retries uint64, ok bool)
}

// Strategy computes one flow's path over a graph view.
type Strategy interface {
	// Name returns the registry name the strategy was created under.
	Name() string
	// Route computes a loop-free path src..dst over the graph's usable
	// links. It reports ok=false when no path exists; the caller decides
	// what a failed (re)computation means. Implementations must be
	// deterministic and must not mutate the graph.
	Route(g *Graph, flow pkt.FlowID, src, dst pkt.NodeID) ([]pkt.NodeID, bool)
}

// Options carries every strategy family's tunables, mirroring
// ctl.Options: zero values select the documented defaults (FillDefaults),
// and a scenario passes one Options to whichever strategy it selects, so
// sweeping strategies never changes anything but the strategy.
type Options struct {
	// K is the number of alternative paths the kshortest strategy ranks
	// (default 4).
	K int
	// MinAcked is the per-link sample floor below which the etx strategy
	// ignores measured MAC counters and falls back to the calibrated loss
	// (default 8 acked packets — a handful of lucky deliveries must not
	// outvote the calibration).
	MinAcked uint64
}

// DefaultOptions returns every strategy family's defaults.
func DefaultOptions() Options {
	var o Options
	FillDefaults(&o)
	return o
}

// FillDefaults replaces zero values with each family's defaults, leaving
// caller-set fields alone.
func FillDefaults(o *Options) {
	if o.K <= 0 {
		o.K = 4
	}
	if o.MinAcked == 0 {
		o.MinAcked = 8
	}
}

// Info describes one registered routing strategy.
type Info struct {
	// Name is the registry key ("bfs", "etx", "kshortest").
	Name string
	// Summary is the one-line description CLI usage strings embed.
	Summary string
	// New creates a strategy instance. Implementations fill their own
	// Options defaults, so callers may pass a zero Options.
	New func(opts Options) Strategy
}

var registry = map[string]Info{}

// Register adds a strategy to the registry. It panics on an empty name, a
// duplicate, or a nil constructor — registration bugs must fail at init.
func Register(info Info) {
	if info.Name == "" {
		panic("routing: Register with empty name")
	}
	if info.New == nil {
		panic("routing: Register " + info.Name + " with nil New")
	}
	if _, dup := registry[info.Name]; dup {
		panic("routing: duplicate strategy " + info.Name)
	}
	registry[info.Name] = info
}

// ByName looks a strategy up by its registry name.
func ByName(name string) (Info, bool) {
	info, ok := registry[name]
	return info, ok
}

// Names returns every registered strategy name, sorted, so CLI usage
// strings and validation errors enumerate the registry instead of
// hand-maintained lists.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NamesList renders the registry names as "a|b|c" for flag usage strings.
func NamesList() string { return strings.Join(Names(), "|") }

// IsDefault reports whether name selects the default minimum-hop BFS
// behaviour — the empty string or "bfs". The default keeps every
// builder-installed route exactly as constructed (byte-identical to the
// pre-registry simulator); any other strategy recomputes installed routes
// at wiring time. Every CLI flag, sweep axis and scenario field shares
// this predicate so the spellings can never drift apart.
func IsDefault(name string) bool {
	switch strings.ToLower(name) {
	case "", DefaultName:
		return true
	}
	return false
}

// DefaultName is the registry name of the default strategy.
const DefaultName = "bfs"

// Default returns a default-configured instance of the default strategy
// (minimum-hop BFS) — what a mesh routes with when nothing was selected.
func Default() Strategy {
	info, ok := ByName(DefaultName)
	if !ok {
		panic("routing: default strategy " + DefaultName + " is not registered")
	}
	return info.New(DefaultOptions())
}

// Usage renders one "name — summary" line per registered strategy, for
// CLI help text.
func Usage() string {
	var b strings.Builder
	for i, n := range Names() {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  %-12s %s", n, registry[n].Summary)
	}
	return b.String()
}
