// Package traffic provides the source agents that drive the mesh: constant
// bit rate (the paper's 2 Mb/s CBR saturating sources), Poisson arrivals,
// and on/off activity schedules (both simulation scenarios switch flows on
// and off mid-run to exercise EZ-Flow's adaptation to changing traffic
// matrices).
package traffic

import (
	"ezflow/internal/mesh"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Source generates packets for one flow and injects them at its source node.
type Source struct {
	m       *mesh.Mesh
	flow    pkt.FlowID
	src     pkt.NodeID
	dst     pkt.NodeID
	bytes   int
	period  sim.Time // CBR inter-packet gap; 0 disables CBR
	poisson bool
	rateBps float64

	seq    uint64
	active bool
	timer  sim.Timer
	emitFn func() // bound once so rescheduling does not allocate
	// Generated counts every packet created; Injected excludes source
	// queue overflows.
	Generated uint64
	Injected  uint64
}

// NewCBR creates a constant-bit-rate source for flow at rate bits/s with
// the given packet size in bytes. The flow's route must already be
// installed; the source and destination are taken from it.
func NewCBR(m *mesh.Mesh, flow pkt.FlowID, rateBps float64, bytes int) *Source {
	route := m.Route(flow)
	if len(route) < 2 {
		panic("traffic: flow has no route")
	}
	if bytes <= 0 {
		bytes = pkt.DefaultPayloadBytes
	}
	s := &Source{
		m: m, flow: flow,
		src: route[0], dst: route[len(route)-1],
		bytes: bytes, period: cbrGap(bytes, rateBps), rateBps: rateBps,
	}
	s.emitFn = s.emit
	return s
}

// NewPoisson creates a Poisson source with the given mean rate in bits/s.
func NewPoisson(m *mesh.Mesh, flow pkt.FlowID, rateBps float64, bytes int) *Source {
	s := NewCBR(m, flow, rateBps, bytes)
	s.poisson = true
	return s
}

// Flow reports the source's flow id.
func (s *Source) Flow() pkt.FlowID { return s.flow }

// RateBps reports the source's configured rate in bit/s.
func (s *Source) RateBps() float64 { return s.rateBps }

// SetRate changes the source's rate in bit/s — the traffic-dynamics knob
// (rate steps and surges) of the dynamics layer. The new inter-packet gap
// applies from the next emission; an emission already scheduled fires at
// its original time, so a rate change never reorders past events.
func (s *Source) SetRate(rateBps float64) {
	if rateBps <= 0 {
		panic("traffic: SetRate with non-positive rate")
	}
	s.period = cbrGap(s.bytes, rateBps)
	s.rateBps = rateBps
}

// cbrGap is the inter-packet gap that produces rateBps with the given
// packet size, clamped to at least one virtual nanosecond.
func cbrGap(bytes int, rateBps float64) sim.Time {
	gap := sim.Time(float64(bytes*8) / rateBps * float64(sim.Second))
	if gap <= 0 {
		gap = sim.Nanosecond
	}
	return gap
}

// Active reports whether the source is currently generating.
func (s *Source) Active() bool { return s.active }

// StartAt schedules the source to begin at time at.
func (s *Source) StartAt(at sim.Time) {
	s.m.Eng.ScheduleFuncAt(at, s.Start)
}

// StopAt schedules the source to stop at time at.
func (s *Source) StopAt(at sim.Time) {
	s.m.Eng.ScheduleFuncAt(at, s.Stop)
}

// Start begins generation immediately.
func (s *Source) Start() {
	if s.active {
		return
	}
	s.active = true
	s.emit()
}

// Stop halts generation immediately. In-flight packets keep travelling.
func (s *Source) Stop() {
	s.active = false
	s.timer.Cancel()
}

func (s *Source) nextGap() sim.Time {
	if !s.poisson {
		return s.period
	}
	mean := float64(s.period)
	return sim.Time(s.m.Eng.Rand().ExpFloat64() * mean)
}

func (s *Source) emit() {
	if !s.active {
		return
	}
	s.seq++
	p := s.m.Pool().Packet(s.flow, s.seq, s.src, s.dst, s.bytes, s.m.Eng.Now())
	s.Generated++
	if s.m.Inject(p) {
		s.Injected++
	}
	p.Release() // the source queue holds its own reference now
	s.timer = s.m.Eng.Schedule(s.nextGap(), s.emitFn)
}
