// Gateway-scale workload shaping: precomputed activity schedules that
// turn a plain source into an on/off bursty client or a member of a
// Poisson arrival/departure flow population.
//
// Schedules are generated up front from a caller-supplied RNG — never
// the engine RNG — so attaching a workload perturbs no other node's
// event stream, and the whole activity timeline is a pure function of
// the workload seed. All randomness is spent at wiring time; replays and
// sharded campaign executions see identical start/stop events.
package traffic

import (
	"math/rand"

	"ezflow/internal/sim"
)

// Segment is one activity interval: the source generates in
// [Start, Stop).
type Segment struct {
	// Start is when generation begins.
	Start sim.Time
	// Stop is when generation halts.
	Stop sim.Time
}

// ApplySchedule arms the source to run exactly during the given
// segments (ascending, non-overlapping — what the generators below
// produce). The source should be stopped when called.
func (s *Source) ApplySchedule(segs []Segment) {
	for _, seg := range segs {
		s.StartAt(seg.Start)
		s.StopAt(seg.Stop)
	}
}

// OnOffSchedule generates an exponential on/off activity timeline over
// [0, horizon): alternating silent gaps (mean meanOff) and bursts (mean
// meanOn), starting silent. Both means must be positive.
func OnOffSchedule(rng *rand.Rand, horizon, meanOn, meanOff sim.Time) []Segment {
	if meanOn <= 0 || meanOff <= 0 {
		panic("traffic: OnOffSchedule needs positive on/off means")
	}
	var segs []Segment
	t := sim.Time(0)
	for t < horizon {
		start := t + sim.Time(rng.ExpFloat64()*float64(meanOff))
		if start >= horizon {
			break
		}
		stop := start + sim.Time(rng.ExpFloat64()*float64(meanOn))
		if stop > horizon {
			stop = horizon
		}
		if stop > start {
			segs = append(segs, Segment{Start: start, Stop: stop})
		}
		t = stop
	}
	return segs
}

// ArrivalSchedule generates a Poisson flow arrival/departure timeline
// for one population slot over [0, horizon): arrivals at ratePerSec,
// each holding for an exponential time of mean meanHold; an arrival
// while the slot is already active extends the current activity period
// (interval union), which keeps the slot's on-air behaviour equal to an
// M/G/∞ population member. Rate and mean hold must be positive.
func ArrivalSchedule(rng *rand.Rand, horizon sim.Time, ratePerSec float64, meanHold sim.Time) []Segment {
	if ratePerSec <= 0 || meanHold <= 0 {
		panic("traffic: ArrivalSchedule needs positive rate and hold")
	}
	var segs []Segment
	t := sim.Time(0)
	for {
		t += sim.Time(rng.ExpFloat64() / ratePerSec * float64(sim.Second))
		if t >= horizon {
			break
		}
		stop := t + sim.Time(rng.ExpFloat64()*float64(meanHold))
		if stop > horizon {
			stop = horizon
		}
		if n := len(segs); n > 0 && t <= segs[n-1].Stop {
			if stop > segs[n-1].Stop {
				segs[n-1].Stop = stop
			}
		} else if stop > t {
			segs = append(segs, Segment{Start: t, Stop: stop})
		}
	}
	return segs
}
