package traffic

import (
	"testing"

	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/phy"
	"ezflow/internal/sim"
)

func newMesh(t *testing.T) (*sim.Engine, *mesh.Mesh) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := mesh.Chain(eng, 2, phy.DefaultConfig(), mac.DefaultConfig())
	return eng, m
}

func TestCBRRate(t *testing.T) {
	eng, m := newMesh(t)
	// 82.24 kb/s with 1028-byte packets = exactly 10 packets per second.
	s := NewCBR(m, 1, 82240, 1028)
	s.Start()
	eng.Run(10 * sim.Second)
	// First packet at t=0, then one every 100 ms: 101 packets in [0,10].
	if s.Generated < 100 || s.Generated > 101 {
		t.Fatalf("generated %d packets, want ~100", s.Generated)
	}
}

func TestStartStopSchedule(t *testing.T) {
	eng, m := newMesh(t)
	s := NewCBR(m, 1, 82240, 1028)
	s.StartAt(2 * sim.Second)
	s.StopAt(4 * sim.Second)
	eng.Run(10 * sim.Second)
	// Active for 2 s at 10 pkt/s.
	if s.Generated < 19 || s.Generated > 22 {
		t.Fatalf("generated %d packets, want ~20", s.Generated)
	}
	if s.Active() {
		t.Fatal("source still active after StopAt")
	}
}

func TestDoubleStartIdempotent(t *testing.T) {
	eng, m := newMesh(t)
	s := NewCBR(m, 1, 82240, 1028)
	s.Start()
	s.Start()
	eng.Run(sim.Second)
	if s.Generated > 11 {
		t.Fatalf("double start doubled the rate: %d", s.Generated)
	}
}

func TestStopBeforeStart(t *testing.T) {
	eng, m := newMesh(t)
	s := NewCBR(m, 1, 82240, 1028)
	s.Stop() // no-op
	eng.Run(sim.Second)
	if s.Generated != 0 {
		t.Fatal("stopped source generated packets")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	eng, m := newMesh(t)
	s := NewPoisson(m, 1, 82240, 1028) // mean 10 pkt/s
	s.Start()
	eng.Run(100 * sim.Second)
	if s.Generated < 800 || s.Generated > 1200 {
		t.Fatalf("poisson generated %d in 100 s, want ~1000", s.Generated)
	}
	if s.Flow() != 1 {
		t.Fatal("Flow accessor")
	}
}

func TestInjectedTracksOverflow(t *testing.T) {
	eng, m := newMesh(t)
	// Saturating rate: the 50-slot source queue must overflow, and
	// Injected must fall behind Generated.
	s := NewCBR(m, 1, 2e6, 1028)
	s.Start()
	eng.Run(30 * sim.Second)
	if s.Injected >= s.Generated {
		t.Fatalf("injected %d, generated %d: overflow not reflected",
			s.Injected, s.Generated)
	}
}

func TestNoRoutePanics(t *testing.T) {
	_, m := newMesh(t)
	defer func() {
		if recover() == nil {
			t.Fatal("CBR on unrouted flow did not panic")
		}
	}()
	NewCBR(m, 99, 1e6, 1028)
}

func TestDefaultBytes(t *testing.T) {
	_, m := newMesh(t)
	s := NewCBR(m, 1, 1e6, 0)
	if s.bytes != 1028 {
		t.Fatalf("default packet size %d, want 1028", s.bytes)
	}
}
