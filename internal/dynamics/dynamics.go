// Package dynamics is the network-dynamics and fault-injection subsystem:
// an event-driven perturbation engine that schedules timed mutations into
// a running scenario. It turns the repository's frozen-at-t=0 topologies
// into living networks — links flap or fail for good, relays churn (halt
// and restart, draining or dropping their queues), channel quality
// degrades over a region, and traffic surges, steps, arrives and departs
// — which is exactly the regime where the paper's stability claim is
// interesting: EZ-Flow must re-converge after the perturbation without
// any message passing.
//
// Everything is driven by sim.Engine events scheduled when the script is
// attached, so a dynamics-enabled run remains a pure function of
// (scenario, seed): same script, same seed, byte-identical results on any
// worker count. Events that change connectivity can request route repair,
// a deterministic BFS over the surviving links (mesh.RerouteFlow).
//
// The package deliberately depends only on the mesh/phy/mac/traffic
// layers, never on the public ezflow package, so the root package can
// embed a Script in its Config without an import cycle.
package dynamics

import (
	"fmt"
	"sort"

	"ezflow/internal/mesh"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
	"ezflow/internal/traffic"
)

// Kind enumerates the perturbation types the engine can apply.
type Kind int

const (
	// LinkDown severs the link A<->B in both directions.
	LinkDown Kind = iota
	// LinkUp restores a severed link A<->B.
	LinkUp
	// LinkLoss sets the erasure probability of the directed link A->B to
	// Loss (channel-quality degradation of a single link).
	LinkLoss
	// NodeDown halts node Node's radio; Drop additionally discards its
	// queued packets (otherwise they drain after NodeUp).
	NodeDown
	// NodeUp restarts a halted node.
	NodeUp
	// RegionLoss sets erasure probability Loss on every link with an
	// endpoint within Radius metres of Center (an area-wide fade). The
	// previous per-link values are saved for RegionRestore.
	RegionLoss
	// RegionRestore restores every link loss overridden by RegionLoss
	// events so far.
	RegionRestore
	// FlowStart starts flow Flow's traffic source.
	FlowStart
	// FlowStop stops flow Flow's traffic source.
	FlowStop
	// FlowRate sets flow Flow's source rate to RateBps.
	FlowRate
)

// String returns the scenario-file spelling of the kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case LinkLoss:
		return "link-loss"
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	case RegionLoss:
		return "region-loss"
	case RegionRestore:
		return "region-restore"
	case FlowStart:
		return "flow-start"
	case FlowStop:
		return "flow-stop"
	case FlowRate:
		return "flow-rate"
	default:
		return "unknown"
	}
}

// Fault reports whether events of this kind perturb the network — the
// kinds whose first occurrence starts the stability clock that recovery
// metrics are measured against. Restorative events (LinkUp, NodeUp,
// RegionRestore) and traffic schedule events are not faults.
func (k Kind) Fault() bool {
	switch k {
	case LinkDown, NodeDown, RegionLoss, LinkLoss:
		return true
	}
	return false
}

// Event is one timed mutation. Only the fields its Kind names are read.
type Event struct {
	At   sim.Time
	Kind Kind

	A, B pkt.NodeID // link endpoints (LinkDown/LinkUp/LinkLoss)
	Node pkt.NodeID // churned node (NodeDown/NodeUp)
	Flow pkt.FlowID // traffic events

	RateBps float64      // FlowRate
	Loss    float64      // LinkLoss / RegionLoss probability
	Center  phy.Position // RegionLoss centre
	Radius  float64      // RegionLoss radius in metres

	// Drop makes NodeDown discard the node's queued packets instead of
	// letting them drain on restart.
	Drop bool
	// Reroute triggers deterministic BFS route repair for every flow
	// after the event is applied. Only the connectivity-changing kinds
	// (LinkDown, LinkUp, NodeDown, NodeUp) accept it; validation rejects
	// it elsewhere, because repair keys on up/down state, not loss.
	Reroute bool
}

// Script is an ordered timeline of events. The order of same-instant
// events in the slice is preserved (the engine schedules them in slice
// order, and sim.Engine breaks time ties by schedule sequence).
type Script struct {
	Events []Event
}

// Add appends an event and returns the script for chaining.
func (s *Script) Add(ev Event) *Script {
	s.Events = append(s.Events, ev)
	return s
}

// Flap returns the down/up event pair that severs the link a<->b during
// [downAt, upAt), repairing routes at both edges when reroute is set.
func Flap(a, b pkt.NodeID, downAt, upAt sim.Time, reroute bool) []Event {
	return []Event{
		{At: downAt, Kind: LinkDown, A: a, B: b, Reroute: reroute},
		{At: upAt, Kind: LinkUp, A: a, B: b, Reroute: reroute},
	}
}

// Churn returns the event pair that halts node n during [downAt, upAt).
func Churn(n pkt.NodeID, downAt, upAt sim.Time, drop, reroute bool) []Event {
	return []Event{
		{At: downAt, Kind: NodeDown, Node: n, Drop: drop, Reroute: reroute},
		{At: upAt, Kind: NodeUp, Node: n, Reroute: reroute},
	}
}

// MiddleLink returns the middle hop (a, b) of a flow's installed route —
// the canonical fault-injection point of the stability experiments. It
// panics if the flow has no route.
func MiddleLink(m *mesh.Mesh, flow pkt.FlowID) (a, b pkt.NodeID) {
	route := m.Route(flow)
	if len(route) < 2 {
		panic(fmt.Sprintf("dynamics: flow %v has no route", flow))
	}
	mid := len(route) / 2
	return route[mid-1], route[mid]
}

// MiddleRelay returns the relay at the midpoint of a flow's route.
func MiddleRelay(m *mesh.Mesh, flow pkt.FlowID) pkt.NodeID {
	route := m.Route(flow)
	if len(route) < 3 {
		panic(fmt.Sprintf("dynamics: flow %v has no relay to churn", flow))
	}
	return route[len(route)/2]
}

// Applied records one executed event for reports and tests.
type Applied struct {
	At   sim.Time
	Desc string
}

// Engine applies a script to a wired scenario. It tracks which links and
// nodes are currently down so route repair sees the true connectivity,
// and records the instants of fault events for the stability metrics.
type Engine struct {
	m       *mesh.Mesh
	sources map[pkt.FlowID]*traffic.Source

	downLinks map[[2]pkt.NodeID]bool
	downNodes map[pkt.NodeID]bool
	savedLoss map[[2]pkt.NodeID]float64
	relaySeen map[pkt.NodeID]bool

	// FaultTimes lists when each fault-kind event fired, in order.
	FaultTimes []sim.Time
	// Log records every applied event in execution order.
	Log []Applied
	// OnReroute, when non-nil, runs after every route repair pass — the
	// hook the EZ-Flow deployment uses to attach controllers to queues
	// that repair created.
	OnReroute func()
}

// Attach validates the script against the mesh and schedules every event
// on the mesh's engine. It returns an error (and schedules nothing) if an
// event names an unknown node, link endpoint, or flow, or carries an
// out-of-range probability. Sources maps each flow id to its traffic
// source; traffic events for flows absent from it are rejected.
func Attach(m *mesh.Mesh, sources map[pkt.FlowID]*traffic.Source, script *Script) (*Engine, error) {
	e := &Engine{
		m:         m,
		sources:   sources,
		downLinks: make(map[[2]pkt.NodeID]bool),
		downNodes: make(map[pkt.NodeID]bool),
		savedLoss: make(map[[2]pkt.NodeID]float64),
		relaySeen: make(map[pkt.NodeID]bool),
	}
	e.recordRelays()
	if err := e.Append(script); err != nil {
		return nil, err
	}
	return e, nil
}

// recordRelays folds the interior nodes of every current route into the
// set of relays ever seen. Called at attach time and after every route
// repair, so stability metrics cover relays a repair later routed
// around — the abandoned relay is exactly the one holding the fault
// backlog.
func (e *Engine) recordRelays() {
	for _, f := range e.m.Flows() {
		route := e.m.Route(f)
		for i := 1; i < len(route)-1; i++ {
			e.relaySeen[route[i]] = true
		}
	}
}

// RelaysSeen reports every node that relayed for some flow at any point
// of the run (initial routes plus every repaired variant).
func (e *Engine) RelaysSeen() map[pkt.NodeID]bool { return e.relaySeen }

// Append validates and schedules additional events on an attached engine
// (used when a campaign axis layers a fault on top of a scenario file's
// own timeline). Validation is all-or-nothing: on error no event of the
// batch is scheduled.
func (e *Engine) Append(script *Script) error {
	if script == nil {
		return nil
	}
	for i, ev := range script.Events {
		if err := e.validate(ev); err != nil {
			return fmt.Errorf("dynamics: event %d (%v at %v): %w", i, ev.Kind, ev.At, err)
		}
	}
	for _, ev := range script.Events {
		ev := ev
		e.m.Eng.ScheduleFuncAt(ev.At, func() { e.apply(ev) })
	}
	return nil
}

func (e *Engine) validate(ev Event) error {
	node := func(id pkt.NodeID) error {
		if e.m.Node(id) == nil {
			return fmt.Errorf("unknown node %v", id)
		}
		return nil
	}
	switch ev.Kind {
	case LinkDown, LinkUp, NodeDown, NodeUp:
	default:
		if ev.Reroute {
			return fmt.Errorf("reroute is only meaningful on link/node up/down events")
		}
	}
	switch ev.Kind {
	case LinkDown, LinkUp, LinkLoss:
		if err := node(ev.A); err != nil {
			return err
		}
		if err := node(ev.B); err != nil {
			return err
		}
		if ev.A == ev.B {
			return fmt.Errorf("link endpoints are the same node %v", ev.A)
		}
		if ev.Kind == LinkLoss && (ev.Loss < 0 || ev.Loss > 1) {
			return fmt.Errorf("loss probability %g out of [0,1]", ev.Loss)
		}
	case NodeDown, NodeUp:
		return node(ev.Node)
	case RegionLoss:
		if ev.Loss < 0 || ev.Loss > 1 {
			return fmt.Errorf("loss probability %g out of [0,1]", ev.Loss)
		}
		if ev.Radius <= 0 {
			return fmt.Errorf("non-positive region radius %g", ev.Radius)
		}
	case RegionRestore:
	case FlowStart, FlowStop, FlowRate:
		if e.sources[ev.Flow] == nil {
			return fmt.Errorf("unknown flow %v", ev.Flow)
		}
		if ev.Kind == FlowRate && ev.RateBps <= 0 {
			return fmt.Errorf("non-positive rate %g", ev.RateBps)
		}
	default:
		return fmt.Errorf("unknown event kind %d", int(ev.Kind))
	}
	return nil
}

// apply executes one event at its scheduled instant.
func (e *Engine) apply(ev Event) {
	now := e.m.Eng.Now()
	if ev.Kind.Fault() {
		e.FaultTimes = append(e.FaultTimes, now)
	}
	reroute := false
	switch ev.Kind {
	case LinkDown:
		e.setLink(ev.A, ev.B, true)
		reroute = ev.Reroute
	case LinkUp:
		e.setLink(ev.A, ev.B, false)
		reroute = ev.Reroute
	case LinkLoss:
		// A direct set, deliberately outside the region save/restore
		// machinery: a standing link degradation survives RegionRestore,
		// and is undone by another LinkLoss event with the old value. If
		// a region fade currently covers the link, the saved value is
		// updated too, so the later restore lands on this degradation
		// rather than resurrecting the pre-fade state.
		k := [2]pkt.NodeID{ev.A, ev.B}
		if _, covered := e.savedLoss[k]; covered {
			e.savedLoss[k] = ev.Loss
		}
		e.m.Ch.SetLinkLoss(ev.A, ev.B, ev.Loss)
	case NodeDown:
		e.downNodes[ev.Node] = true
		n := e.m.Node(ev.Node)
		n.MAC.SetDown(true)
		if ev.Drop {
			n.MAC.FlushQueues()
		}
		reroute = ev.Reroute
	case NodeUp:
		delete(e.downNodes, ev.Node)
		e.m.Node(ev.Node).MAC.SetDown(false)
		reroute = ev.Reroute
	case RegionLoss:
		e.applyRegion(ev)
	case RegionRestore:
		e.restoreRegion()
	case FlowStart:
		e.sources[ev.Flow].Start()
	case FlowStop:
		e.sources[ev.Flow].Stop()
	case FlowRate:
		e.sources[ev.Flow].SetRate(ev.RateBps)
	}
	e.Log = append(e.Log, Applied{At: now, Desc: e.describe(ev)})
	if reroute {
		e.RerouteAll()
	}
}

func (e *Engine) describe(ev Event) string {
	switch ev.Kind {
	case LinkDown, LinkUp:
		return fmt.Sprintf("%v %v<->%v", ev.Kind, ev.A, ev.B)
	case LinkLoss:
		return fmt.Sprintf("%v %v->%v p=%g", ev.Kind, ev.A, ev.B, ev.Loss)
	case NodeDown:
		if ev.Drop {
			return fmt.Sprintf("%v %v (drop queues)", ev.Kind, ev.Node)
		}
		return fmt.Sprintf("%v %v", ev.Kind, ev.Node)
	case NodeUp:
		return fmt.Sprintf("%v %v", ev.Kind, ev.Node)
	case RegionLoss:
		return fmt.Sprintf("%v (%.0f,%.0f) r=%.0f p=%g", ev.Kind, ev.Center.X, ev.Center.Y, ev.Radius, ev.Loss)
	case RegionRestore:
		return ev.Kind.String()
	case FlowRate:
		return fmt.Sprintf("%v %v %g bit/s", ev.Kind, ev.Flow, ev.RateBps)
	default:
		return fmt.Sprintf("%v %v", ev.Kind, ev.Flow)
	}
}

// setLink severs or restores both directions of a link.
func (e *Engine) setLink(a, b pkt.NodeID, down bool) {
	if down {
		e.downLinks[[2]pkt.NodeID{a, b}] = true
		e.downLinks[[2]pkt.NodeID{b, a}] = true
	} else {
		delete(e.downLinks, [2]pkt.NodeID{a, b})
		delete(e.downLinks, [2]pkt.NodeID{b, a})
	}
	e.m.Ch.SetLinkDown(a, b, down)
	e.m.Ch.SetLinkDown(b, a, down)
}

// saveLoss records a link's pre-override erasure probability once, so
// RegionRestore can put the calibrated value back.
func (e *Engine) saveLoss(a, b pkt.NodeID) {
	k := [2]pkt.NodeID{a, b}
	if _, ok := e.savedLoss[k]; !ok {
		e.savedLoss[k] = e.m.Ch.LinkLoss(a, b)
	}
}

// applyRegion degrades every directed link with an endpoint inside the
// region, iterating node pairs in ascending id order for determinism.
func (e *Engine) applyRegion(ev Event) {
	ids := e.m.Ch.NodeIDs()
	in := make(map[pkt.NodeID]bool, len(ids))
	for _, id := range ids {
		in[id] = e.m.Ch.Position(id).Dist(ev.Center) <= ev.Radius
	}
	for _, a := range ids {
		for _, b := range ids {
			if a == b || (!in[a] && !in[b]) {
				continue
			}
			e.saveLoss(a, b)
			e.m.Ch.SetLinkLoss(a, b, ev.Loss)
		}
	}
}

// restoreRegion restores every loss value overridden so far.
func (e *Engine) restoreRegion() {
	keys := make([][2]pkt.NodeID, 0, len(e.savedLoss))
	for k := range e.savedLoss {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e.m.Ch.SetLinkLoss(k[0], k[1], e.savedLoss[k])
	}
	e.savedLoss = make(map[[2]pkt.NodeID]float64)
}

// Usable reports whether the directed link a->b can carry traffic right
// now: both endpoints up, the link not severed, and b within a's
// transmission range. It is the predicate RerouteAll feeds to the mesh's
// BFS repair.
func (e *Engine) Usable(a, b pkt.NodeID) bool {
	return !e.downNodes[a] && !e.downNodes[b] &&
		!e.downLinks[[2]pkt.NodeID{a, b}] && e.m.Ch.InTxRange(a, b)
}

// RerouteAll repairs every flow's route against the current connectivity
// (flows in ascending id order), then fires OnReroute. Flows with no
// surviving path keep their broken route until connectivity returns.
func (e *Engine) RerouteAll() {
	for _, f := range e.m.Flows() {
		e.m.RerouteFlow(f, e.Usable)
	}
	e.recordRelays()
	if e.OnReroute != nil {
		e.OnReroute()
	}
}

// NodeIsDown reports whether a node is currently halted.
func (e *Engine) NodeIsDown(n pkt.NodeID) bool { return e.downNodes[n] }

// LinkIsDown reports whether the directed link a->b is currently severed.
func (e *Engine) LinkIsDown(a, b pkt.NodeID) bool { return e.downLinks[[2]pkt.NodeID{a, b}] }
