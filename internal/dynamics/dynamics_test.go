package dynamics_test

import (
	"testing"

	"ezflow"
	"ezflow/internal/dynamics"
	"ezflow/internal/mac"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// chainScenario builds a short chain with one moderate-rate flow, small
// enough that every test runs in well under a second.
func chainScenario(t *testing.T, hops int, mode ezflow.Mode, durSec float64) *ezflow.Scenario {
	t.Helper()
	cfg := ezflow.DefaultConfig()
	cfg.Mode = mode
	cfg.Duration = sim.FromSeconds(durSec)
	cfg.Bin = 1 * ezflow.Second
	return ezflow.NewChain(hops, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 4e5})
}

func TestLinkFlapStallsAndRecovers(t *testing.T) {
	sc := chainScenario(t, 2, ezflow.Mode80211, 30)
	script := &dynamics.Script{Events: dynamics.Flap(1, 2, 10*ezflow.Second, 20*ezflow.Second, false)}
	if err := sc.AddDynamics(script); err != nil {
		t.Fatal(err)
	}
	res := sc.Run()

	if len(res.DynamicsLog) != 2 {
		t.Fatalf("dynamics log has %d entries, want 2: %v", len(res.DynamicsLog), res.DynamicsLog)
	}
	if res.Stability == nil {
		t.Fatal("no stability metrics despite a fault")
	}
	if got := res.Stability.FaultAt; got != 10*ezflow.Second {
		t.Errorf("FaultAt = %v, want 10s", got)
	}

	// Per-second bins: traffic flows before the fault, stalls during the
	// outage (after the in-flight head drains), and resumes after.
	var before, during, after float64
	for _, p := range res.Flows[1].Throughput.Points {
		sec := p.T.Seconds()
		switch {
		case sec <= 10:
			before += p.V
		case sec > 12 && sec <= 20: // skip 2 s of queue drain at the break
			during += p.V
		case sec > 22:
			after += p.V
		}
	}
	if before <= 0 {
		t.Error("no pre-fault throughput")
	}
	if during > 0 {
		t.Errorf("delivered %f kb/s-bins across a severed link", during)
	}
	if after <= 0 {
		t.Error("no post-restoration throughput: link did not come back")
	}
	if res.Stability.RecoverySec[1] < 0 {
		t.Error("flow marked unrecovered after a transient flap")
	}
}

func TestNodeChurnDropVsDrain(t *testing.T) {
	halted := map[bool]int{}
	for _, drop := range []bool{false, true} {
		sc := chainScenario(t, 3, ezflow.Mode80211, 20)
		script := &dynamics.Script{Events: dynamics.Churn(1, 8*ezflow.Second, 12*ezflow.Second, drop, false)}
		if err := sc.AddDynamics(script); err != nil {
			t.Fatal(err)
		}
		n := 0
		sc.Mesh.Node(1).MAC.AddDropHook(func(p *pkt.Packet, r mac.DropReason) {
			if r == mac.DropHalted {
				n++
			}
		})
		res := sc.Run()
		halted[drop] = n
		if res.Flows[1].Delivered == 0 {
			t.Errorf("drop=%v: nothing delivered at all", drop)
		}
		if down := sc.Mesh.Node(1).MAC.Down(); down {
			t.Errorf("drop=%v: relay still halted at the end of the run", drop)
		}
	}
	if halted[false] != 0 {
		t.Errorf("drain churn discarded %d packets", halted[false])
	}
	if halted[true] == 0 {
		t.Error("drop churn discarded nothing despite a backlogged relay")
	}
}

// TestRapidChurnMidFlight hammers a saturated relay with sub-frame-time
// halt/restart pairs. Restarting while the node's abandoned frame is
// still on the air must defer channel access to the flight's end (the
// radio is half-duplex) instead of panicking phy with a second
// transmission from the same source.
func TestRapidChurnMidFlight(t *testing.T) {
	cfg := ezflow.DefaultConfig()
	cfg.Duration = 15 * ezflow.Second
	sc := ezflow.NewChain(3, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
	// Pairs are spaced wider than one ~8.7 ms frame flight so the relay
	// is transmitting again by the next halt, and each restart follows
	// its halt within the same flight.
	script := &dynamics.Script{}
	for i := 0; i < 40; i++ {
		at := 5*ezflow.Second + ezflow.Time(i)*9773*sim.Microsecond
		script.Events = append(script.Events,
			dynamics.Churn(1, at, at+41*sim.Microsecond, i%2 == 0, false)...)
	}
	if err := sc.AddDynamics(script); err != nil {
		t.Fatal(err)
	}
	res := sc.Run() // must not panic
	if res.Flows[1].Delivered == 0 {
		t.Error("nothing delivered through the churn storm")
	}
}

func TestEarlyFaultStillGetsBaseline(t *testing.T) {
	cfg := ezflow.DefaultConfig()
	cfg.Duration = 30 * ezflow.Second
	cfg.WarmupSkip = 15 * ezflow.Second
	cfg.Bin = 1 * ezflow.Second
	sc := ezflow.NewChain(2, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 4e5})
	script := &dynamics.Script{Events: dynamics.Flap(1, 2, 10*ezflow.Second, 14*ezflow.Second, false)}
	if err := sc.AddDynamics(script); err != nil {
		t.Fatal(err)
	}
	res := sc.Run()
	st := res.Stability
	// The fault predates the warmup window's end; the baseline must fall
	// back to the pre-fault traffic instead of silently reporting the
	// flow as having nothing to recover.
	if _, ok := st.RecoverySec[1]; !ok {
		t.Fatal("flow omitted from recovery metrics despite pre-fault traffic")
	}
	if st.PreFaultKbps[1] <= 0 {
		t.Errorf("no pre-fault baseline: %v", st.PreFaultKbps)
	}
}

func TestRerouteRepairsPath(t *testing.T) {
	cfg := ezflow.DefaultConfig()
	cfg.Mode = ezflow.ModeEZFlow
	cfg.Duration = 5 * ezflow.Second
	sc := ezflow.NewGrid(2, 2, cfg,
		ezflow.FlowSpec{Flow: 1, RateBps: 4e5},
		ezflow.FlowSpec{Flow: 2, RateBps: 4e5})
	want := []ezflow.NodeID{3, 2, 0}
	if got := sc.Mesh.Route(1); !equalPath(got, want) {
		t.Fatalf("pre-fault route %v, want %v", got, want)
	}
	ctlsBefore := len(sc.Deployment.Controllers)

	script := (&dynamics.Script{}).Add(dynamics.Event{
		At: 1 * ezflow.Second, Kind: dynamics.LinkDown, A: 2, B: 0, Reroute: true,
	})
	if err := sc.AddDynamics(script); err != nil {
		t.Fatal(err)
	}
	sc.Run()

	// BFS repair: N3 -> N1 -> N0 is the only surviving 2-hop path.
	if got := sc.Mesh.Route(1); !equalPath(got, []ezflow.NodeID{3, 1, 0}) {
		t.Errorf("post-fault route %v, want [3 1 0]", got)
	}
	// The repair created a queue toward the new relay N1; the EZ-Flow
	// deployment must have extended itself over it.
	if got := len(sc.Deployment.Controllers); got <= ctlsBefore {
		t.Errorf("deployment did not extend after reroute: %d -> %d controllers", ctlsBefore, got)
	}
	// Stability metrics must keep covering the abandoned relay N2 — it is
	// the node that held the fault backlog — alongside the new relay N1.
	seen := sc.Dyn.RelaysSeen()
	if !seen[2] || !seen[1] {
		t.Errorf("relays seen = %v, want both the pre- and post-repair relay", seen)
	}
}

func TestRerouteKeepsBrokenRouteWhenNoPath(t *testing.T) {
	sc := chainScenario(t, 2, ezflow.Mode80211, 5)
	script := (&dynamics.Script{}).Add(dynamics.Event{
		At: 1 * ezflow.Second, Kind: dynamics.LinkDown, A: 0, B: 1, Reroute: true,
	})
	if err := sc.AddDynamics(script); err != nil {
		t.Fatal(err)
	}
	sc.Run()
	if got := sc.Mesh.Route(1); !equalPath(got, []ezflow.NodeID{0, 1, 2}) {
		t.Errorf("route changed despite no alternative existing: %v", got)
	}
}

func TestRegionLossAndRestore(t *testing.T) {
	cfg := ezflow.DefaultConfig()
	cfg.Duration = 5 * ezflow.Second
	sc := ezflow.NewTestbed(cfg, ezflow.FlowSpec{Flow: 1, RateBps: 4e5})
	orig := sc.Mesh.Ch.LinkLoss(2, 3) // the calibrated bottleneck link

	script := (&dynamics.Script{}).
		Add(dynamics.Event{At: 1 * ezflow.Second, Kind: dynamics.RegionLoss,
			Center: ezflow.Position{X: 2 * 200, Y: 0}, Radius: 250, Loss: 0.9}).
		Add(dynamics.Event{At: 3 * ezflow.Second, Kind: dynamics.RegionRestore})
	if err := sc.AddDynamics(script); err != nil {
		t.Fatal(err)
	}

	// Step to just past the degradation and check the override applied.
	sc.Eng.Run(2 * ezflow.Second)
	if got := sc.Mesh.Ch.LinkLoss(2, 3); got != 0.9 {
		t.Errorf("during region fade: loss(2,3) = %g, want 0.9", got)
	}
	sc.Eng.Run(4 * ezflow.Second)
	if got := sc.Mesh.Ch.LinkLoss(2, 3); got != orig {
		t.Errorf("after restore: loss(2,3) = %g, want calibrated %g", got, orig)
	}
	// A link outside the 250 m region must be untouched throughout.
	if got := sc.Mesh.Ch.LinkLoss(5, 6); got != 0.06 {
		t.Errorf("far link loss(5,6) = %g, want 0.06", got)
	}
}

func TestTrafficEvents(t *testing.T) {
	sc := chainScenario(t, 2, ezflow.Mode80211, 20)
	script := (&dynamics.Script{}).
		Add(dynamics.Event{At: 5 * ezflow.Second, Kind: dynamics.FlowStop, Flow: 1}).
		Add(dynamics.Event{At: 10 * ezflow.Second, Kind: dynamics.FlowRate, Flow: 1, RateBps: 8e5}).
		Add(dynamics.Event{At: 10 * ezflow.Second, Kind: dynamics.FlowStart, Flow: 1})
	if err := sc.AddDynamics(script); err != nil {
		t.Fatal(err)
	}
	res := sc.Run()
	if got := sc.Sources[1].RateBps(); got != 8e5 {
		t.Errorf("source rate after flow-rate event = %g, want 8e5", got)
	}
	var off, onAgain float64
	for _, p := range res.Flows[1].Throughput.Points {
		sec := p.T.Seconds()
		switch {
		case sec > 7 && sec <= 10:
			off += p.V
		case sec > 11:
			onAgain += p.V
		}
	}
	if off > 0 {
		t.Errorf("throughput %f while the source was stopped", off)
	}
	if onAgain <= 0 {
		t.Error("no throughput after flow-start")
	}
}

func TestAttachValidation(t *testing.T) {
	bad := []dynamics.Event{
		{Kind: dynamics.LinkDown, A: 0, B: 99},
		{Kind: dynamics.LinkDown, A: 1, B: 1},
		{Kind: dynamics.NodeDown, Node: 42},
		{Kind: dynamics.LinkLoss, A: 0, B: 1, Loss: 1.5},
		{Kind: dynamics.RegionLoss, Loss: 0.5, Radius: -1},
		{Kind: dynamics.FlowStop, Flow: 9},
		{Kind: dynamics.FlowRate, Flow: 1, RateBps: -1},
		{Kind: dynamics.LinkLoss, A: 0, B: 1, Loss: 0.5, Reroute: true},
		{Kind: dynamics.Kind(99)},
	}
	for _, ev := range bad {
		sc := chainScenario(t, 2, ezflow.Mode80211, 1)
		err := sc.AddDynamics((&dynamics.Script{}).Add(ev))
		if err == nil {
			t.Errorf("event %+v was accepted", ev)
		}
	}
	// Validation is all-or-nothing: a bad event in a batch schedules none.
	sc := chainScenario(t, 2, ezflow.Mode80211, 1)
	err := sc.AddDynamics((&dynamics.Script{}).
		Add(dynamics.Event{At: 0, Kind: dynamics.FlowStop, Flow: 1}).
		Add(dynamics.Event{Kind: dynamics.NodeDown, Node: 42}))
	if err == nil {
		t.Fatal("batch with a bad event was accepted")
	}
	res := sc.Run()
	if len(res.DynamicsLog) != 0 {
		t.Errorf("rejected batch still applied events: %v", res.DynamicsLog)
	}
}

func TestHelpersPickMidpoints(t *testing.T) {
	sc := chainScenario(t, 4, ezflow.Mode80211, 1)
	a, b := dynamics.MiddleLink(sc.Mesh, 1)
	if a != 1 || b != 2 {
		t.Errorf("MiddleLink = %v->%v, want 1->2", a, b)
	}
	if n := dynamics.MiddleRelay(sc.Mesh, 1); n != 2 {
		t.Errorf("MiddleRelay = %v, want 2", n)
	}
}

func equalPath(a, b []ezflow.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
