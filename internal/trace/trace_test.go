package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ezflow/internal/sim"
	"ezflow/internal/stats"
)

func TestWriteSeries(t *testing.T) {
	var s stats.Series
	s.Add(sim.Second, 1.5)
	s.Add(2*sim.Second, 2)
	var b strings.Builder
	if err := WriteSeries(&b, &s); err != nil {
		t.Fatal(err)
	}
	want := "t_seconds,value\n1.000,1.5\n2.000,2\n"
	if b.String() != want {
		t.Fatalf("got %q, want %q", b.String(), want)
	}
}

func TestWriteCW(t *testing.T) {
	var b strings.Builder
	pts := []CWPoint{{sim.Second, 32}, {90 * sim.Second, 64}}
	if err := WriteCW(&b, pts); err != nil {
		t.Fatal(err)
	}
	want := "t_seconds,cw\n1.000,32\n90.000,64\n"
	if b.String() != want {
		t.Fatalf("got %q", b.String())
	}
}

func TestSafeName(t *testing.T) {
	cases := map[string]string{
		"N0->N1":     "N0_to_N1",
		"queue N3":   "queueN3",
		"a/b":        "a_b",
		"throughput": "throughput",
	}
	for in, want := range cases {
		if got := SafeName(in); got != want {
			t.Errorf("SafeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBundleWriteDir(t *testing.T) {
	dir := t.TempDir()
	b := NewBundle()
	var s stats.Series
	s.Add(sim.Second, 7)
	b.Series["queue_N1"] = &s
	b.CW["N0->N1"] = []CWPoint{{0, 32}}
	names, err := b.WriteDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			t.Fatalf("missing exported file %s: %v", n, err)
		}
		if !strings.HasPrefix(string(data), "t_seconds,") {
			t.Fatalf("file %s missing header", n)
		}
	}
	// Sorted output.
	if !(names[0] < names[1]) {
		t.Fatalf("names unsorted: %v", names)
	}
}

func TestBundleWriteDirBadPath(t *testing.T) {
	b := NewBundle()
	if _, err := b.WriteDir("/dev/null/impossible"); err == nil {
		t.Fatal("expected error on impossible directory")
	}
}
