// Batched sample recording: a preallocated ring buffer sits between the
// per-tick probes and the growing time series, so the simulator's hot
// loop appends into fixed storage and the series grows in block-sized
// steps instead of per sample.
package trace

import (
	"ezflow/internal/sim"
	"ezflow/internal/stats"
)

// DefaultRingSize is the number of samples a Ring buffers between
// flushes.
const DefaultRingSize = 256

// Ring is a fixed-capacity sample buffer. Append never allocates; when
// the ring fills, FlushTo drains it into a backing series in one batched
// append.
type Ring struct {
	buf []stats.Point
	n   int
}

// NewRing creates a ring holding size samples (DefaultRingSize if
// size <= 0).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Ring{buf: make([]stats.Point, size)}
}

// Len reports the number of buffered samples.
func (r *Ring) Len() int { return r.n }

// Full reports whether the next Append would overflow.
func (r *Ring) Full() bool { return r.n == len(r.buf) }

// Append adds a sample. The caller must FlushTo before appending to a
// full ring; Append panics otherwise, because silently dropping samples
// would corrupt the exported traces.
func (r *Ring) Append(t sim.Time, v float64) {
	if r.n == len(r.buf) {
		panic("trace: Append to a full Ring")
	}
	r.buf[r.n] = stats.Point{T: t, V: v}
	r.n++
}

// FlushTo drains every buffered sample into s with a single batched
// append and empties the ring.
func (r *Ring) FlushTo(s *stats.Series) {
	if r.n == 0 {
		return
	}
	s.AddBatch(r.buf[:r.n])
	r.n = 0
}

// Recorder periodically samples a float-valued probe into a Series — the
// queue-occupancy traces behind the paper's Figs. 1 and 4 — buffering
// samples in a preallocated Ring and flushing in blocks.
type Recorder struct {
	Series stats.Series
	ring   *Ring
	stop   bool
}

// NewRecorder starts sampling probe every period on eng. Call Stop at the
// end of the run to flush the final partial block.
func NewRecorder(eng *sim.Engine, name string, period sim.Time, probe func() float64) *Recorder {
	r := &Recorder{Series: stats.Series{Name: name}, ring: NewRing(0)}
	var tick func()
	tick = func() {
		if r.stop {
			return
		}
		if r.ring.Full() {
			r.ring.FlushTo(&r.Series)
		}
		r.ring.Append(eng.Now(), probe())
		eng.ScheduleFunc(period, tick)
	}
	eng.ScheduleFunc(period, tick)
	return r
}

// Stop halts sampling and flushes buffered samples into Series.
func (r *Recorder) Stop() {
	r.stop = true
	r.ring.FlushTo(&r.Series)
}
