// Package trace exports simulation results as CSV files for plotting: the
// queue-occupancy, throughput, delay, and contention-window series behind
// every figure of the paper. Writers are deterministic (sorted file sets,
// fixed column order) so exported artefacts diff cleanly across runs.
package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ezflow/internal/sim"
	"ezflow/internal/stats"
)

// WriteSeries writes one time series as "t_seconds,value" CSV.
func WriteSeries(w io.Writer, s *stats.Series) error {
	if _, err := io.WriteString(w, "t_seconds,value\n"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%.3f,%g\n", p.T.Seconds(), p.V); err != nil {
			return err
		}
	}
	return nil
}

// CWPoint mirrors a contention-window trace sample without importing the
// controller package.
type CWPoint struct {
	At sim.Time
	CW int
}

// WriteCW writes a contention-window trace as "t_seconds,cw" CSV.
func WriteCW(w io.Writer, pts []CWPoint) error {
	if _, err := io.WriteString(w, "t_seconds,cw\n"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%.3f,%d\n", p.At.Seconds(), p.CW); err != nil {
			return err
		}
	}
	return nil
}

// SafeName converts a trace key such as "N0->N1" into a filesystem-safe
// fragment.
func SafeName(key string) string {
	return strings.NewReplacer("->", "_to_", " ", "", "/", "_").Replace(key)
}

// Bundle is a set of named series and cw traces to export together.
type Bundle struct {
	Series map[string]*stats.Series
	CW     map[string][]CWPoint
}

// NewBundle creates an empty bundle.
func NewBundle() *Bundle {
	return &Bundle{
		Series: make(map[string]*stats.Series),
		CW:     make(map[string][]CWPoint),
	}
}

// WriteDir writes every entry of the bundle as <dir>/<name>.csv and
// returns the file names written, sorted.
func (b *Bundle) WriteDir(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var names []string
	for name := range b.Series {
		names = append(names, SafeName(name)+".csv")
	}
	for name := range b.CW {
		names = append(names, "cw_"+SafeName(name)+".csv")
	}
	sort.Strings(names)

	for name, s := range b.Series {
		if err := writeFile(filepath.Join(dir, SafeName(name)+".csv"), func(w io.Writer) error {
			return WriteSeries(w, s)
		}); err != nil {
			return nil, err
		}
	}
	for name, pts := range b.CW {
		if err := writeFile(filepath.Join(dir, "cw_"+SafeName(name)+".csv"), func(w io.Writer) error {
			return WriteCW(w, pts)
		}); err != nil {
			return nil, err
		}
	}
	return names, nil
}

func writeFile(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
