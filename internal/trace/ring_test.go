package trace

import (
	"testing"

	"ezflow/internal/sim"
	"ezflow/internal/stats"
)

func TestRingBatchFlush(t *testing.T) {
	r := NewRing(4)
	var s stats.Series
	for i := 0; i < 4; i++ {
		r.Append(sim.Time(i)*sim.Second, float64(i))
	}
	if !r.Full() {
		t.Fatal("ring should be full after cap appends")
	}
	r.FlushTo(&s)
	if r.Len() != 0 || s.Len() != 4 {
		t.Fatalf("after flush: ring %d, series %d; want 0, 4", r.Len(), s.Len())
	}
	r.Append(9*sim.Second, 9)
	r.FlushTo(&s)
	if s.Len() != 5 {
		t.Fatalf("partial flush lost samples: %d", s.Len())
	}
	for i, p := range s.Points[:4] {
		if p.V != float64(i) {
			t.Fatalf("sample order corrupted at %d: %v", i, s.Points)
		}
	}
	if s.Points[4].V != 9 {
		t.Fatalf("late sample wrong: %v", s.Points[4])
	}
}

func TestRingOverflowPanics(t *testing.T) {
	r := NewRing(2)
	r.Append(0, 1)
	r.Append(0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Append past capacity did not panic")
		}
	}()
	r.Append(0, 3)
}

// TestRecorder checks the end-to-end sampling path: samples at every
// period, batched through the ring, fully flushed by Stop, and no samples
// after Stop.
func TestRecorder(t *testing.T) {
	eng := sim.NewEngine(1)
	v := 0.0
	rec := NewRecorder(eng, "probe", sim.Second, func() float64 { v++; return v })
	eng.Run(10 * sim.Second)
	rec.Stop()
	if rec.Series.Len() != 10 {
		t.Fatalf("samples = %d, want 10", rec.Series.Len())
	}
	for i, p := range rec.Series.Points {
		if p.T != sim.Time(i+1)*sim.Second || p.V != float64(i+1) {
			t.Fatalf("sample %d = %+v", i, p)
		}
	}
	eng.Run(20 * sim.Second)
	if rec.Series.Len() != 10 {
		t.Fatal("recorder kept sampling after Stop")
	}
}

// TestRecorderSteadyStateAllocs: appends between flushes are free, and a
// whole run allocates only O(n/ringsize) block growths.
func TestRecorderSteadyStateAllocs(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(eng, "probe", sim.Second, func() float64 { return 1 })
	eng.Run(sim.Time(DefaultRingSize) * sim.Second / 2) // half-fill the ring
	if avg := testing.AllocsPerRun(50, func() {
		eng.Run(eng.Now() + sim.Second)
	}); avg != 0 {
		t.Fatalf("in-ring sampling allocates %.1f objects per tick, want 0", avg)
	}
	rec.Stop()
}
