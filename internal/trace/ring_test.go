package trace

import (
	"testing"

	"ezflow/internal/sim"
	"ezflow/internal/stats"
)

func TestRingBatchFlush(t *testing.T) {
	r := NewRing(4)
	var s stats.Series
	for i := 0; i < 4; i++ {
		r.Append(sim.Time(i)*sim.Second, float64(i))
	}
	if !r.Full() {
		t.Fatal("ring should be full after cap appends")
	}
	r.FlushTo(&s)
	if r.Len() != 0 || s.Len() != 4 {
		t.Fatalf("after flush: ring %d, series %d; want 0, 4", r.Len(), s.Len())
	}
	r.Append(9*sim.Second, 9)
	r.FlushTo(&s)
	if s.Len() != 5 {
		t.Fatalf("partial flush lost samples: %d", s.Len())
	}
	for i, p := range s.Points[:4] {
		if p.V != float64(i) {
			t.Fatalf("sample order corrupted at %d: %v", i, s.Points)
		}
	}
	if s.Points[4].V != 9 {
		t.Fatalf("late sample wrong: %v", s.Points[4])
	}
}

func TestRingOverflowPanics(t *testing.T) {
	r := NewRing(2)
	r.Append(0, 1)
	r.Append(0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Append past capacity did not panic")
		}
	}()
	r.Append(0, 3)
}

// TestRecorder checks the end-to-end sampling path: samples at every
// period, batched through the ring, fully flushed by Stop, and no samples
// after Stop.
func TestRecorder(t *testing.T) {
	eng := sim.NewEngine(1)
	v := 0.0
	rec := NewRecorder(eng, "probe", sim.Second, func() float64 { v++; return v })
	eng.Run(10 * sim.Second)
	rec.Stop()
	if rec.Series.Len() != 10 {
		t.Fatalf("samples = %d, want 10", rec.Series.Len())
	}
	for i, p := range rec.Series.Points {
		if p.T != sim.Time(i+1)*sim.Second || p.V != float64(i+1) {
			t.Fatalf("sample %d = %+v", i, p)
		}
	}
	eng.Run(20 * sim.Second)
	if rec.Series.Len() != 10 {
		t.Fatal("recorder kept sampling after Stop")
	}
}

// TestRecorderStopFlushesPartialRing runs long enough for one full ring
// flush and then stops mid-block: Stop must drain the partial ring, so
// the series holds every sample exactly once, in time order.
func TestRecorderStopFlushesPartialRing(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(eng, "probe", sim.Second, func() float64 { return 1 })
	total := DefaultRingSize + 44 // one in-run flush plus a partial block
	eng.Run(sim.Time(total) * sim.Second)
	if rec.Series.Len() != DefaultRingSize {
		// Exactly one in-run flush: the ring drains lazily when the
		// overflowing append arrives, leaving the 44-sample tail buffered.
		t.Fatalf("pre-Stop samples = %d, want %d", rec.Series.Len(), DefaultRingSize)
	}
	rec.Stop()
	if rec.Series.Len() != total {
		t.Fatalf("post-Stop samples = %d, want %d", rec.Series.Len(), total)
	}
	for i, p := range rec.Series.Points {
		if p.T != sim.Time(i+1)*sim.Second {
			t.Fatalf("sample %d out of order: %+v", i, p)
		}
	}
	rec.Stop() // idempotent: a second Stop must not duplicate samples
	if rec.Series.Len() != total {
		t.Fatalf("second Stop changed the series: %d", rec.Series.Len())
	}
}

// TestRecorderRegisteredAfterStart creates the recorder once the engine
// has already advanced: sampling must begin one period after attachment,
// not at virtual time zero.
func TestRecorderRegisteredAfterStart(t *testing.T) {
	eng := sim.NewEngine(1)
	eng.ScheduleFunc(0, func() {}) // keep the clock event-driven
	eng.Run(5 * sim.Second)
	if eng.Now() != 5*sim.Second {
		t.Fatalf("engine clock = %v, want 5s", eng.Now())
	}
	rec := NewRecorder(eng, "late", sim.Second, func() float64 { return float64(eng.Now() / sim.Second) })
	eng.Run(10 * sim.Second)
	rec.Stop()
	if rec.Series.Len() != 5 {
		t.Fatalf("late recorder samples = %d, want 5", rec.Series.Len())
	}
	for i, p := range rec.Series.Points {
		wantT := sim.Time(6+i) * sim.Second
		if p.T != wantT || p.V != float64(6+i) {
			t.Fatalf("late sample %d = %+v, want t=%v v=%d", i, p, wantT, 6+i)
		}
	}
}

// TestRecorderSteadyStateAllocs: appends between flushes are free, and a
// whole run allocates only O(n/ringsize) block growths.
func TestRecorderSteadyStateAllocs(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(eng, "probe", sim.Second, func() float64 { return 1 })
	eng.Run(sim.Time(DefaultRingSize) * sim.Second / 2) // half-fill the ring
	if avg := testing.AllocsPerRun(50, func() {
		eng.Run(eng.Now() + sim.Second)
	}); avg != 0 {
		t.Fatalf("in-ring sampling allocates %.1f objects per tick, want 0", avg)
	}
	rec.Stop()
}
