package mesh

import (
	"testing"

	"ezflow/internal/mac"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

func TestTreeStructure(t *testing.T) {
	for _, tc := range []struct{ b, depth, nodes, leaves int }{
		{2, 2, 7, 4},
		{2, 3, 15, 8},
		{3, 2, 13, 9},
		{4, 2, 21, 16},
	} {
		eng := sim.NewEngine(1)
		m := Tree(eng, tc.b, tc.depth, phy.DefaultConfig(), mac.DefaultConfig())
		if got := len(m.Nodes()); got != tc.nodes {
			t.Errorf("b=%d depth=%d: %d nodes, want %d", tc.b, tc.depth, got, tc.nodes)
		}
		if got := len(m.Flows()); got != tc.leaves {
			t.Errorf("b=%d depth=%d: %d flows, want %d", tc.b, tc.depth, got, tc.leaves)
		}
		if TreeLeaves(tc.b, tc.depth) != tc.leaves {
			t.Errorf("TreeLeaves(%d,%d)", tc.b, tc.depth)
		}
		// Every route starts at the gateway, ends at a distinct leaf, and
		// every hop is within TX range.
		seen := map[pkt.NodeID]bool{}
		for _, f := range m.Flows() {
			r := m.Route(f)
			if r[0] != 0 {
				t.Errorf("flow %v does not start at the gateway: %v", f, r)
			}
			if len(r) != tc.depth+1 {
				t.Errorf("flow %v has %d hops, want %d", f, len(r)-1, tc.depth)
			}
			leaf := r[len(r)-1]
			if seen[leaf] {
				t.Errorf("leaf %v used twice", leaf)
			}
			seen[leaf] = true
			for i := 0; i < len(r)-1; i++ {
				if !m.Ch.InTxRange(r[i], r[i+1]) {
					t.Errorf("b=%d: link %v-%v out of range (%.0f m)",
						tc.b, r[i], r[i+1],
						m.Ch.Position(r[i]).Dist(m.Ch.Position(r[i+1])))
				}
			}
		}
	}
}

func TestTreeGatewayHasPerSuccessorQueues(t *testing.T) {
	// §7: a node forwarding to up to four successors uses one MAC queue
	// (one CWmin) per successor.
	eng := sim.NewEngine(1)
	m := Tree(eng, 4, 2, phy.DefaultConfig(), mac.DefaultConfig())
	gw := m.Node(0)
	if got := len(gw.Queues()); got != 4 {
		t.Fatalf("gateway has %d queues, want 4 (one per successor)", got)
	}
	// The queues are independently tunable.
	gw.Queues()[0].SetCWmin(64)
	gw.Queues()[1].SetCWmin(256)
	if gw.Queues()[0].CWmin() == gw.Queues()[1].CWmin() {
		t.Fatal("per-successor CWmin not independent")
	}
}

func TestTreeValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, tc := range []struct{ b, d int }{{1, 2}, {5, 2}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Tree(%d,%d) did not panic", tc.b, tc.d)
				}
			}()
			Tree(eng, tc.b, tc.d, phy.DefaultConfig(), mac.DefaultConfig())
		}()
	}
}

func TestTreeTrafficFlows(t *testing.T) {
	eng := sim.NewEngine(1)
	m := Tree(eng, 2, 2, phy.DefaultConfig(), mac.DefaultConfig())
	delivered := map[pkt.FlowID]int{}
	m.AddSink(func(p *pkt.Packet, _ sim.Time) { delivered[p.Flow]++ })
	for _, f := range m.Flows() {
		r := m.Route(f)
		for i := uint64(1); i <= 5; i++ {
			m.Inject(pkt.NewPacket(f, i, r[0], r[len(r)-1], 1028, eng.Now()))
		}
	}
	eng.Run(60 * sim.Second)
	for _, f := range m.Flows() {
		if delivered[f] != 5 {
			t.Errorf("flow %v delivered %d/5", f, delivered[f])
		}
	}
}
