package mesh

import (
	"testing"

	"ezflow/internal/mac"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

func newChain(t *testing.T, hops int) *Mesh {
	t.Helper()
	eng := sim.NewEngine(1)
	return Chain(eng, hops, phy.DefaultConfig(), mac.DefaultConfig())
}

func TestChainTopology(t *testing.T) {
	m := newChain(t, 4)
	if len(m.Nodes()) != 5 {
		t.Fatalf("nodes = %d, want 5", len(m.Nodes()))
	}
	route := m.Route(1)
	if len(route) != 5 || route[0] != 0 || route[4] != 4 {
		t.Fatalf("route = %v", route)
	}
	// Consecutive nodes in TX range, 3-apart nodes hidden.
	for i := 0; i < 4; i++ {
		if !m.Ch.InTxRange(pkt.NodeID(i), pkt.NodeID(i+1)) {
			t.Fatalf("link %d-%d out of range", i, i+1)
		}
	}
	if m.Ch.InCSRange(0, 3) {
		t.Fatal("nodes 3 hops apart should be hidden (outside CS range)")
	}
	if !m.Ch.InCSRange(0, 2) {
		t.Fatal("nodes 2 hops apart should sense each other")
	}
}

func TestNextHop(t *testing.T) {
	m := newChain(t, 3)
	nh, ok := m.NextHop(1, 1)
	if !ok || nh != 2 {
		t.Fatalf("next hop of N1 = %v/%v", nh, ok)
	}
	if _, ok := m.NextHop(1, 3); ok {
		t.Fatal("destination has a next hop")
	}
	if _, ok := m.Successor(1, 99); ok {
		t.Fatal("off-route node has a successor")
	}
}

func TestEndToEndDelivery(t *testing.T) {
	m := newChain(t, 3)
	var sank []*pkt.Packet
	m.AddSink(func(p *pkt.Packet, at sim.Time) { sank = append(sank, p) })
	for i := uint64(1); i <= 10; i++ {
		if !m.Inject(pkt.NewPacket(1, i, 0, 3, 1028, m.Eng.Now())) {
			t.Fatalf("inject %d failed", i)
		}
	}
	m.Eng.Run(30 * sim.Second)
	if len(sank) != 10 {
		t.Fatalf("sank %d packets, want 10", len(sank))
	}
	for i, p := range sank {
		if p.Seq != uint64(i+1) {
			t.Fatalf("out-of-order end-to-end delivery: %v", sank)
		}
	}
}

func TestSourceAndForwardQueuesSeparate(t *testing.T) {
	// A node that is both source of one flow and relay of another keeps
	// two distinct queues toward the same successor (§3.1).
	eng := sim.NewEngine(1)
	m := New(eng, phy.DefaultConfig(), mac.DefaultConfig())
	for i := 0; i <= 3; i++ {
		m.AddNode(pkt.NodeID(i), phy.Position{X: float64(i) * 200})
	}
	m.SetRoute(1, []pkt.NodeID{0, 1, 2, 3}) // N1 relays flow 1
	m.SetRoute(2, []pkt.NodeID{1, 2, 3})    // N1 sources flow 2
	n1 := m.Node(1)
	fq := n1.ForwardQueue(2)
	sq := n1.SourceQueue(2)
	if fq == sq {
		t.Fatal("forward and source queues must be distinct")
	}
	if len(n1.Queues()) != 2 {
		t.Fatalf("N1 has %d queues, want 2", len(n1.Queues()))
	}
	if fq.NextHop() != 2 || sq.NextHop() != 2 {
		t.Fatal("queue next hops")
	}
}

func TestRelayDepth(t *testing.T) {
	m := newChain(t, 3)
	n1 := m.Node(1)
	if n1.RelayDepth() != 0 {
		t.Fatal("fresh relay depth non-zero")
	}
	n1.ForwardQueue(2).Enqueue(pkt.NewPacket(1, 1, 0, 3, 100, 0))
	if n1.RelayDepth() != 1 {
		t.Fatal("relay depth after enqueue")
	}
}

func TestEngineAccessor(t *testing.T) {
	m := newChain(t, 2)
	if m.Node(0).Engine() != m.Eng {
		t.Fatal("node engine accessor")
	}
}

func TestFlowsSorted(t *testing.T) {
	eng := sim.NewEngine(1)
	m := New(eng, phy.DefaultConfig(), mac.DefaultConfig())
	for i := 0; i <= 2; i++ {
		m.AddNode(pkt.NodeID(i), phy.Position{X: float64(i) * 200})
	}
	m.SetRoute(5, []pkt.NodeID{0, 1, 2})
	m.SetRoute(2, []pkt.NodeID{2, 1, 0})
	f := m.Flows()
	if len(f) != 2 || f[0] != 2 || f[1] != 5 {
		t.Fatalf("flows = %v", f)
	}
}

func TestBadRoutePanics(t *testing.T) {
	m := newChain(t, 2)
	for _, path := range [][]pkt.NodeID{
		{0},     // too short
		{0, 99}, // unknown node
		{99, 0}, // unknown source
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetRoute(%v) did not panic", path)
				}
			}()
			m.SetRoute(9, path)
		}()
	}
}

func TestInjectUnknownPanics(t *testing.T) {
	m := newChain(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("inject with no route did not panic")
		}
	}()
	m.Inject(pkt.NewPacket(9, 1, 0, 2, 100, 0))
}

func TestScenario1Topology(t *testing.T) {
	eng := sim.NewEngine(1)
	m := Scenario1(eng, phy.DefaultConfig(), mac.DefaultConfig())
	if len(m.Nodes()) != 13 {
		t.Fatalf("nodes = %d, want 13", len(m.Nodes()))
	}
	r1, r2 := m.Route(1), m.Route(2)
	if len(r1) != 9 || len(r2) != 9 {
		t.Fatalf("route lengths %d/%d, want 8-hop flows", len(r1)-1, len(r2)-1)
	}
	// Both flows merge at N4 and share the trunk to N0.
	if r1[4] != 4 || r2[4] != 4 || r1[8] != 0 || r2[8] != 0 {
		t.Fatalf("merge structure wrong: %v %v", r1, r2)
	}
	// Every consecutive pair must be connected.
	for _, r := range [][]pkt.NodeID{r1, r2} {
		for i := 0; i < len(r)-1; i++ {
			if !m.Ch.InTxRange(r[i], r[i+1]) {
				t.Fatalf("link %v-%v out of range", r[i], r[i+1])
			}
		}
	}
}

func TestScenario2Topology(t *testing.T) {
	eng := sim.NewEngine(1)
	m := Scenario2(eng, phy.DefaultConfig(), mac.DefaultConfig())
	r1, r2, r3 := m.Route(1), m.Route(2), m.Route(3)
	if len(r1) != 10 || len(r2) != 5 || len(r3) != 9 {
		t.Fatalf("route lengths: %d %d %d", len(r1), len(r2), len(r3))
	}
	for _, r := range [][]pkt.NodeID{r1, r2, r3} {
		for i := 0; i < len(r)-1; i++ {
			if !m.Ch.InTxRange(r[i], r[i+1]) {
				t.Fatalf("link %v-%v out of range", r[i], r[i+1])
			}
		}
	}
	// The defining hidden-node property: source of F2 (N10) is hidden
	// from source of F1 (N0).
	if m.Ch.InCSRange(0, 10) {
		t.Fatal("N10 must be hidden from N0 (Figure 9)")
	}
}

func TestTestbedTopology(t *testing.T) {
	eng := sim.NewEngine(1)
	m := Testbed(eng, phy.DefaultConfig(), mac.DefaultConfig())
	r1, r2 := m.Route(1), m.Route(2)
	if len(r1)-1 != 7 {
		t.Fatalf("F1 is %d hops, want 7", len(r1)-1)
	}
	if len(r2)-1 != 4 {
		t.Fatalf("F2 is %d hops, want 4", len(r2)-1)
	}
	// F2 shares F1's tail (parking lot): its second node is N4.
	if r2[1] != 4 {
		t.Fatalf("F2 does not merge at N4: %v", r2)
	}
	// Calibrated losses installed on F1's links, with l2 the worst.
	l2 := m.Ch.LinkLoss(2, 3)
	for i := 0; i < 7; i++ {
		li := m.Ch.LinkLoss(pkt.NodeID(i), pkt.NodeID(i+1))
		if li <= 0 {
			t.Fatalf("link l%d has no loss calibration", i)
		}
		if li > l2 {
			t.Fatalf("l2 must be the bottleneck; l%d=%.2f > l2=%.2f", i, li, l2)
		}
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	m := newChain(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	m.AddNode(0, phy.Position{})
}
