// Package mesh composes PHY and MAC stations into a wireless mesh backhaul:
// node placement, static routing (the NOAH-style agent the paper uses to
// factor routing dynamics out of the study), per-flow paths, and the relay
// forwarding logic with one MAC transmit queue per successor plus a separate
// queue for self-originated traffic, as §3.1 of the paper requires so that
// forwarded traffic is never starved by local traffic.
package mesh

import (
	"fmt"
	"sort"

	"ezflow/internal/mac"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/routing"
	"ezflow/internal/sim"
)

// Node is one mesh station: a MAC plus the network-layer forwarding state.
type Node struct {
	ID  pkt.NodeID
	Pos phy.Position
	MAC *mac.MAC

	mesh *Mesh
	// successor queues: one MAC queue per distinct next hop of forwarded
	// traffic, plus one per next hop for local (source) traffic.
	fwdQ map[pkt.NodeID]*mac.Queue
	srcQ map[pkt.NodeID]*mac.Queue
}

// Engine returns the simulation engine driving this node's mesh.
func (n *Node) Engine() *sim.Engine { return n.mesh.Eng }

// ForwardQueue returns the forwarding queue toward next, creating it if
// needed.
func (n *Node) ForwardQueue(next pkt.NodeID) *mac.Queue {
	q, ok := n.fwdQ[next]
	if !ok {
		q = n.MAC.NewQueue(next)
		n.fwdQ[next] = q
	}
	return q
}

// SourceQueue returns the local-traffic queue toward next, creating it if
// needed. It is distinct from the forwarding queue toward the same
// successor.
func (n *Node) SourceQueue(next pkt.NodeID) *mac.Queue {
	q, ok := n.srcQ[next]
	if !ok {
		q = n.MAC.NewQueue(next)
		n.srcQ[next] = q
	}
	return q
}

// Queues returns every MAC queue of the node.
func (n *Node) Queues() []*mac.Queue { return n.MAC.Queues() }

// RelayDepth reports the total number of packets waiting in forwarding
// queues (the paper's b_k for relay k).
func (n *Node) RelayDepth() int {
	d := 0
	for _, q := range n.fwdQ {
		d += q.Len()
	}
	return d
}

// Mesh is the whole backhaul: channel, nodes, flows, and sinks.
type Mesh struct {
	Eng *sim.Engine
	Ch  *phy.Channel

	nodes map[pkt.NodeID]*Node
	// routes[flow] is the full node path source..destination.
	routes map[pkt.FlowID][]pkt.NodeID
	// nextHop[flow][node] -> successor on that flow.
	nextHop map[pkt.FlowID]map[pkt.NodeID]pkt.NodeID
	sinks   []SinkFunc
	macCfg  mac.Config

	// strategy computes (re)routes; nil selects the registry default
	// (minimum-hop BFS, byte-identical to the pre-registry behaviour).
	strategy routing.Strategy
	// rerouteFailures counts RerouteFlow calls that found no usable path
	// (the flow kept its broken route) — the non-panicking half of the
	// route-validity contract; see CheckRoutes.
	rerouteFailures uint64
}

// SinkFunc observes every packet that reaches its final destination.
type SinkFunc func(p *pkt.Packet, at sim.Time)

// New creates an empty mesh over a fresh channel.
func New(eng *sim.Engine, phyCfg phy.Config, macCfg mac.Config) *Mesh {
	return &Mesh{
		Eng:     eng,
		Ch:      phy.NewChannel(eng, phyCfg),
		nodes:   make(map[pkt.NodeID]*Node),
		routes:  make(map[pkt.FlowID][]pkt.NodeID),
		nextHop: make(map[pkt.FlowID]map[pkt.NodeID]pkt.NodeID),
		macCfg:  macCfg,
	}
}

// AddNode creates a station at pos.
func (m *Mesh) AddNode(id pkt.NodeID, pos phy.Position) *Node {
	if _, dup := m.nodes[id]; dup {
		panic(fmt.Sprintf("mesh: duplicate node %v", id))
	}
	n := &Node{
		ID:   id,
		Pos:  pos,
		MAC:  mac.New(m.Eng, m.Ch, id, pos, m.macCfg),
		mesh: m,
		fwdQ: make(map[pkt.NodeID]*mac.Queue),
		srcQ: make(map[pkt.NodeID]*mac.Queue),
	}
	n.MAC.OnDeliver(func(p *pkt.Packet, from pkt.NodeID) { m.arrive(n, p) })
	m.nodes[id] = n
	return n
}

// Node returns the node with the given id, or nil.
func (m *Mesh) Node(id pkt.NodeID) *Node { return m.nodes[id] }

// MoveNode relocates a node, incrementally patching the PHY neighbor
// index (phy.MoveNode). It reports whether decode-range link membership
// changed — the mobility engine's cue to run route repair. The node must
// not be mid-transmission; callers gate on Ch.Transmitting.
func (m *Mesh) MoveNode(id pkt.NodeID, pos phy.Position) bool {
	n := m.nodes[id]
	if n == nil {
		panic(fmt.Sprintf("mesh: MoveNode for unknown node %v", id))
	}
	n.Pos = pos
	return m.Ch.MoveNode(id, pos)
}

// Pool returns the packet/frame pool shared by the mesh's whole stack.
// Traffic generators draw packets from it and Release their reference
// after Inject; the pool recycles each packet once every queue on the
// path has let go.
func (m *Mesh) Pool() *pkt.Pool { return m.Ch.Pool() }

// Nodes returns all nodes sorted by id.
func (m *Mesh) Nodes() []*Node {
	out := make([]*Node, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddSink registers an observer of packets reaching their destination.
func (m *Mesh) AddSink(s SinkFunc) { m.sinks = append(m.sinks, s) }

// SetRoute installs the static path for a flow. The path must contain at
// least two nodes, all previously added. Queues along the path are created
// eagerly so controllers can attach before traffic starts.
func (m *Mesh) SetRoute(flow pkt.FlowID, path []pkt.NodeID) {
	if len(path) < 2 {
		panic("mesh: route needs at least source and destination")
	}
	hops := make(map[pkt.NodeID]pkt.NodeID, len(path)-1)
	for i := 0; i < len(path)-1; i++ {
		cur, next := path[i], path[i+1]
		n := m.nodes[cur]
		if n == nil {
			panic(fmt.Sprintf("mesh: route through unknown node %v", cur))
		}
		if m.nodes[next] == nil {
			panic(fmt.Sprintf("mesh: route through unknown node %v", next))
		}
		hops[cur] = next
		if i == 0 {
			n.SourceQueue(next)
		} else {
			n.ForwardQueue(next)
		}
	}
	m.routes[flow] = append([]pkt.NodeID(nil), path...)
	m.nextHop[flow] = hops
}

// Route returns the installed path of a flow.
func (m *Mesh) Route(flow pkt.FlowID) []pkt.NodeID { return m.routes[flow] }

// Flows returns all flow ids with installed routes, sorted.
func (m *Mesh) Flows() []pkt.FlowID {
	out := make([]pkt.FlowID, 0, len(m.routes))
	for f := range m.routes {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RelaySet reports the nodes that forward traffic on some flow (appear
// in the interior of an installed route) — the coverage rule every
// controller deployment shares: only queues draining into a relay need
// a controller, because a destination never forwards.
func (m *Mesh) RelaySet() map[pkt.NodeID]bool {
	rs := make(map[pkt.NodeID]bool)
	for _, f := range m.Flows() {
		route := m.routes[f]
		for i := 1; i < len(route)-1; i++ {
			rs[route[i]] = true
		}
	}
	return rs
}

// NextHop reports the successor of node on flow, with ok=false at (or off)
// the destination.
func (m *Mesh) NextHop(flow pkt.FlowID, node pkt.NodeID) (pkt.NodeID, bool) {
	nh, ok := m.nextHop[flow][node]
	return nh, ok
}

// Successor reports the node the given node forwards flow traffic to —
// identical to NextHop but reads naturally at EZ-Flow call sites
// (N_{k+1} of the paper).
func (m *Mesh) Successor(flow pkt.FlowID, node pkt.NodeID) (pkt.NodeID, bool) {
	return m.NextHop(flow, node)
}

// Inject enqueues a freshly generated packet at the source of its flow.
// It reports false if the source queue overflowed.
func (m *Mesh) Inject(p *pkt.Packet) bool {
	n := m.nodes[p.Src]
	if n == nil {
		panic(fmt.Sprintf("mesh: inject at unknown node %v", p.Src))
	}
	next, ok := m.nextHop[p.Flow][p.Src]
	if !ok {
		panic(fmt.Sprintf("mesh: no route for %v at %v", p.Flow, p.Src))
	}
	return n.SourceQueue(next).Enqueue(p)
}

// SetStrategy installs the routing strategy (re)routes are computed
// with. Nil restores the registry default (minimum-hop BFS). It only
// selects the algorithm — installed routes stay untouched until
// RecomputeRoutes or RerouteFlow runs.
func (m *Mesh) SetStrategy(s routing.Strategy) { m.strategy = s }

// Strategy returns the active routing strategy, materialising the
// registry default on first use.
func (m *Mesh) Strategy() routing.Strategy {
	if m.strategy == nil {
		m.strategy = routing.Default()
	}
	return m.strategy
}

// RoutingGraph assembles the read-only topology view routing strategies
// compute over: ascending node ids, the usable-link predicate (plain
// transmission range when usable is nil — the build-time connectivity),
// the channel's calibrated losses, and the live per-link MAC counters.
func (m *Mesh) RoutingGraph(usable func(a, b pkt.NodeID) bool) *routing.Graph {
	ids := make([]pkt.NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if usable == nil {
		usable = m.Ch.InTxRange
	}
	return &routing.Graph{
		IDs:      ids,
		Usable:   usable,
		LinkLoss: m.Ch.LinkLoss,
		Measured: m.linkMeasured,
	}
}

// linkMeasured sums the MAC counters of a's queues draining toward b —
// the measured-cost inputs of the etx strategy. ok is false when a has
// never had a queue toward b (no traffic has crossed the link).
func (m *Mesh) linkMeasured(a, b pkt.NodeID) (acked, retries uint64, ok bool) {
	n := m.nodes[a]
	if n == nil {
		return 0, 0, false
	}
	if q := n.fwdQ[b]; q != nil {
		acked += q.Dequeued
		retries += q.Retries
		ok = true
	}
	if q := n.srcQ[b]; q != nil {
		acked += q.Dequeued
		retries += q.Retries
		ok = true
	}
	return acked, retries, ok
}

// RerouteFlow recomputes the flow's path from its source to its
// destination with the active routing strategy over the links admitted by
// the usable predicate (typically transmission range minus failed links
// and halted nodes) and installs the result. Every strategy is
// deterministic, so repairs are too. It reports whether a path was found;
// when none exists the previous route stays in place and the failure is
// counted (RerouteFailures) — traffic stalls at the break until
// connectivity returns, exactly like a static routing agent that has not
// re-converged. Endpoints are always considered, even when usable
// excludes them as relays of other flows.
func (m *Mesh) RerouteFlow(flow pkt.FlowID, usable func(a, b pkt.NodeID) bool) bool {
	route := m.routes[flow]
	if len(route) < 2 {
		return false
	}
	src, dst := route[0], route[len(route)-1]
	path, ok := m.Strategy().Route(m.RoutingGraph(usable), flow, src, dst)
	if !ok {
		m.rerouteFailures++
		return false
	}
	if samePath(path, route) {
		return true
	}
	m.SetRoute(flow, path)
	return true
}

// RerouteFailures reports how many RerouteFlow calls found no usable
// path. The observability layer exports it as the mesh.reroute_failures
// gauge, so a silently-stalled flow is visible without a debugger.
func (m *Mesh) RerouteFailures() uint64 { return m.rerouteFailures }

// RecomputeRoutes reruns the active strategy over every installed flow
// (ascending id order) at the current connectivity, replacing each route
// that changed. Endpoints are preserved. Wiring calls it when a
// non-default strategy is selected, so builder-installed minimum-hop
// routes become the strategy's choice before traffic starts. It returns
// an error naming the first flow left without a path — impossible on the
// connectivity-validated builders, but a caller-built mesh can be
// disconnected.
func (m *Mesh) RecomputeRoutes() error {
	g := m.RoutingGraph(nil)
	s := m.Strategy()
	for _, f := range m.Flows() {
		route := m.routes[f]
		src, dst := route[0], route[len(route)-1]
		path, ok := s.Route(g, f, src, dst)
		if !ok {
			return fmt.Errorf("mesh: routing %q found no path for flow %v (%v to %v)", s.Name(), f, src, dst)
		}
		if !samePath(path, route) {
			m.SetRoute(f, path)
		}
	}
	return nil
}

// samePath reports whether two routes are identical.
func samePath(a, b []pkt.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// arrive handles a packet delivered by the MAC to node n: sink it at the
// final destination or forward it along the flow's path.
func (m *Mesh) arrive(n *Node, p *pkt.Packet) {
	if p.Dst == n.ID {
		for _, s := range m.sinks {
			s(p, m.Eng.Now())
		}
		return
	}
	next, ok := m.nextHop[p.Flow][n.ID]
	if !ok {
		// Mis-routed packet: no successor here. Drop silently; static
		// routing makes this unreachable in practice.
		return
	}
	n.ForwardQueue(next).Enqueue(p)
}
