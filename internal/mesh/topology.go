// Topology builders for every network the paper evaluates, plus generic
// helpers. Distances are chosen so that consecutive nodes are within the
// 250 m transmission range while nodes three or more hops apart are outside
// the 550 m carrier-sense range — the regime of the paper's ns-2 setup
// (2-hop interference, hidden terminals between nodes 3 hops apart... sensed
// up to 2 hops).
package mesh

import (
	"ezflow/internal/mac"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// DefaultHopDist is the inter-node spacing used by the chain builders:
// 200 m puts 1- and 2-hop neighbours inside carrier sense (200, 400 < 550)
// and 3-hop neighbours outside it (600 > 550), matching the standard 2-hop
// interference model of the paper's analysis.
const DefaultHopDist = 200

// Chain builds a linear K-hop topology N0..NK at DefaultHopDist spacing and
// installs flow 1 along it. It returns the mesh.
func Chain(eng *sim.Engine, hops int, phyCfg phy.Config, macCfg mac.Config) *Mesh {
	m := New(eng, phyCfg, macCfg)
	path := make([]pkt.NodeID, hops+1)
	for i := 0; i <= hops; i++ {
		id := pkt.NodeID(i)
		m.AddNode(id, phy.Position{X: float64(i) * DefaultHopDist})
		path[i] = id
	}
	m.SetRoute(1, path)
	return m
}

// Scenario1 is the 2-flow merge topology of Figure 5: two 8-hop flows that
// share a gateway-bound trunk. Flow F1 runs N12..N0 down one branch; flow F2
// runs N11..N0 down the other; the branches merge at N4 and share links
// N4->N3->N2->N1->N0.
//
// Layout: trunk N0..N4 on the x-axis; two branches fan out from N4 with a
// vertical offset large enough that same-index branch nodes do not decode
// each other but close enough to keep each branch chain connected.
func Scenario1(eng *sim.Engine, phyCfg phy.Config, macCfg mac.Config) *Mesh {
	m := New(eng, phyCfg, macCfg)
	d := float64(DefaultHopDist)
	// Trunk: gateway N0 at the origin, junction N4 at x=4d.
	for i := 0; i <= 4; i++ {
		m.AddNode(pkt.NodeID(i), phy.Position{X: float64(i) * d})
	}
	// Branch A (N6, N8, N10, N12) extends beyond the junction with a +60 m
	// vertical offset; branch B (N5, N7, N9, N11) mirrors it at -60 m.
	for k := 1; k <= 4; k++ {
		x := float64(4+k) * d
		m.AddNode(pkt.NodeID(4+2*k), phy.Position{X: x, Y: 60})  // even: 6,8,10,12
		m.AddNode(pkt.NodeID(3+2*k), phy.Position{X: x, Y: -60}) // odd: 5,7,9,11
	}
	m.SetRoute(1, []pkt.NodeID{12, 10, 8, 6, 4, 3, 2, 1, 0})
	m.SetRoute(2, []pkt.NodeID{11, 9, 7, 5, 4, 3, 2, 1, 0})
	return m
}

// Scenario2 is the 3-flow topology of Figure 9: three flows crossing a
// shared region, with the source of F1 (N0) hidden from the source of F2
// (N10). F1 is a long horizontal 9-hop flow N0->N9; F2 (N10..N14) and F3
// (N19..N27 reversed: source N19) cross it vertically, sharing nodes with
// F1's path region so they compete for the medium on parts of their paths.
//
// The published figure is schematic; this builder reproduces its defining
// properties: F1 is the long flow with the most contention; F2's source is
// hidden from F1's source; F3 joins later and interferes with both.
func Scenario2(eng *sim.Engine, phyCfg phy.Config, macCfg mac.Config) *Mesh {
	m := New(eng, phyCfg, macCfg)
	d := float64(DefaultHopDist)
	// F1: N0..N9 along the x-axis.
	for i := 0; i <= 9; i++ {
		m.AddNode(pkt.NodeID(i), phy.Position{X: float64(i) * d})
	}
	// F2: N10..N14 vertical, crossing F1 near x=2d. N10 sits far above the
	// line (hidden from N0: distance > CS range), descending toward it.
	for j := 0; j <= 4; j++ {
		m.AddNode(pkt.NodeID(10+j), phy.Position{X: 2 * d, Y: float64(4-j)*d + 60})
	}
	// F3: N19..N27 vertical, crossing F1 near x=6d, descending from above.
	for j := 0; j <= 8; j++ {
		m.AddNode(pkt.NodeID(19+j), phy.Position{X: 6 * d, Y: float64(8-j)*d + 60})
	}
	m.SetRoute(1, []pkt.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	m.SetRoute(2, []pkt.NodeID{10, 11, 12, 13, 14})
	m.SetRoute(3, []pkt.NodeID{19, 20, 21, 22, 23, 24, 25, 26, 27})
	return m
}

// TestbedLinkLoss is the per-link erasure calibration that reproduces the
// heterogeneous link capacities of the paper's Table 1 (measured over the
// real 4-building deployment). Loss p on link l makes its saturation
// throughput roughly (1-p)·C of a clean link C; l2 is the bottleneck.
var TestbedLinkLoss = []float64{
	0.02, // l0: 845 kb/s
	0.22, // l1: 672 kb/s
	0.53, // l2: 408 kb/s (bottleneck between N2 and N3)
	0.13, // l3: 748 kb/s
	0.13, // l4: 746 kb/s
	0.06, // l5: 805 kb/s
	0.25, // l6: 648 kb/s
}

// Testbed reproduces the 9-router deployment of Figure 3: flow F1 traverses
// 7 hops N0->N1->N2->N3->N4->N5->N6->dest over links l0..l6, and flow F2 is
// the 4-hop parking-lot flow sharing F1's tail (N0'->N4->N5->N6->dest,
// relabelled here with its own source N10 entering at N3's successor chain).
//
// F2's published path is 4 hops sharing the same path as F1; we route it
// N10 -> N4 -> N5 -> N6 -> N7 so its first relay is N4 as in Figure 4.
func Testbed(eng *sim.Engine, phyCfg phy.Config, macCfg mac.Config) *Mesh {
	m := New(eng, phyCfg, macCfg)
	d := float64(DefaultHopDist)
	// F1's 8 nodes N0..N7 in a chain bent across "4 buildings": the bend
	// only affects geometry, so a straight chain is equivalent under the
	// range model.
	for i := 0; i <= 7; i++ {
		m.AddNode(pkt.NodeID(i), phy.Position{X: float64(i) * d})
	}
	// F2's source N10 sits one hop off N4, below the chain.
	m.AddNode(pkt.NodeID(10), phy.Position{X: 4 * d, Y: -d})
	m.SetRoute(1, []pkt.NodeID{0, 1, 2, 3, 4, 5, 6, 7})
	m.SetRoute(2, []pkt.NodeID{10, 4, 5, 6, 7})
	// Calibrated link quality for F1's links l0..l6.
	for i, p := range TestbedLinkLoss {
		m.Ch.SetLinkLoss(pkt.NodeID(i), pkt.NodeID(i+1), p)
	}
	return m
}
