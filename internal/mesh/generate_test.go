package mesh

import (
	"fmt"
	"testing"

	"ezflow/internal/mac"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

func TestGridLayoutAndRoutes(t *testing.T) {
	eng := sim.NewEngine(1)
	m := Grid(eng, 4, 3, phy.DefaultConfig(), mac.DefaultConfig())
	if got := len(m.Nodes()); got != 12 {
		t.Fatalf("node count = %d, want 12", got)
	}
	// Flow 1: far corner (3,2) = N11 across the top row then down column 0.
	want1 := []pkt.NodeID{11, 10, 9, 8, 4, 0}
	r1 := m.Route(1)
	if fmt.Sprint(r1) != fmt.Sprint(want1) {
		t.Fatalf("flow 1 route = %v, want %v", r1, want1)
	}
	// Flow 2: bottom-right corner along the bottom row.
	want2 := []pkt.NodeID{3, 2, 1, 0}
	if r2 := m.Route(2); fmt.Sprint(r2) != fmt.Sprint(want2) {
		t.Fatalf("flow 2 route = %v, want %v", r2, want2)
	}
	// Every hop within transmission range (ValidateRoutes ran at build).
	for _, f := range m.Flows() {
		route := m.Route(f)
		for i := 0; i < len(route)-1; i++ {
			if !m.Ch.InTxRange(route[i], route[i+1]) {
				t.Fatalf("flow %v hop %v->%v out of range", f, route[i], route[i+1])
			}
		}
	}
}

func TestGridDegenerate(t *testing.T) {
	eng := sim.NewEngine(1)
	m := Grid(eng, 5, 1, phy.DefaultConfig(), mac.DefaultConfig())
	if len(m.Flows()) != 1 {
		t.Fatalf("1-D grid installed %d flows, want 1 (flow 2 would duplicate it)", len(m.Flows()))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("1x1 grid did not panic")
		}
	}()
	Grid(sim.NewEngine(1), 1, 1, phy.DefaultConfig(), mac.DefaultConfig())
}

// fingerprint captures a mesh's geometry and routing for comparison.
func fingerprint(m *Mesh) string {
	s := ""
	for _, n := range m.Nodes() {
		s += fmt.Sprintf("%v(%.3f,%.3f);", n.ID, n.Pos.X, n.Pos.Y)
	}
	for _, f := range m.Flows() {
		s += fmt.Sprintf("%v=%v;", f, m.Route(f))
	}
	return s
}

func TestRandomDiskDeterminism(t *testing.T) {
	build := func(seed int64) string {
		return fingerprint(RandomDisk(sim.NewEngine(1), 16, 0, seed,
			phy.DefaultConfig(), mac.DefaultConfig()))
	}
	if build(7) != build(7) {
		t.Fatal("same seed produced different random-disk topologies")
	}
	if build(7) == build(8) {
		t.Fatal("different seeds produced identical topologies (suspicious)")
	}
}

func TestRandomDiskConnectivity(t *testing.T) {
	cfg := phy.DefaultConfig()
	for seed := int64(1); seed <= 20; seed++ {
		m := RandomDisk(sim.NewEngine(1), 12, 0, seed, cfg, mac.DefaultConfig())
		route := m.Route(1)
		if len(route) < 2 {
			t.Fatalf("seed %d: flow 1 has no multi-hop route", seed)
		}
		if route[len(route)-1] != 0 {
			t.Fatalf("seed %d: route does not end at the gateway", seed)
		}
		for i := 0; i < len(route)-1; i++ {
			if !m.Ch.InTxRange(route[i], route[i+1]) {
				t.Fatalf("seed %d: hop %v->%v exceeds tx range", seed, route[i], route[i+1])
			}
		}
	}
}

func TestValidateRoutesPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	m := New(eng, phy.DefaultConfig(), mac.DefaultConfig())
	m.AddNode(0, phy.Position{})
	m.AddNode(1, phy.Position{X: 1000}) // far outside the 250 m range
	m.SetRoute(1, []pkt.NodeID{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("ValidateRoutes accepted an out-of-range hop")
		}
	}()
	m.ValidateRoutes()
}
