package mesh

import (
	"math/rand"
	"sync"
	"testing"

	"ezflow/internal/mac"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// TestMoveMatchesRebuild is the mobility stress test: it interleaves
// phy.MoveNode, SetLinkDown/SetLinkLoss, node churn (mac.SetDown), and
// route repair through the active routing strategy on one random-disk
// topology — with live traffic pumping through the stack between
// operations — and pins after every operation that the incrementally
// patched neighbor index is identical to a from-scratch rebuild
// (phy.Channel.VerifyIndex is the oracle). Several instances run
// concurrently so `go test -race` interleaves independent engines, the
// way campaign workers do.
func TestMoveMatchesRebuild(t *testing.T) {
	var wg sync.WaitGroup
	for _, seed := range []int64{1, 2, 3, 4} {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			moveMatchesRebuild(t, seed)
		}(seed)
	}
	wg.Wait()
}

func moveMatchesRebuild(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	eng := sim.NewEngine(seed)
	m := RandomDisk(eng, 40, 0, seed, phy.DefaultConfig(), mac.DefaultConfig())
	ids := m.Ch.NodeIDs()
	usable := func(a, b pkt.NodeID) bool {
		return !m.Node(a).MAC.Down() && !m.Node(b).MAC.Down() &&
			!m.Ch.LinkDown(a, b) && m.Ch.InTxRange(a, b)
	}
	// Traffic on the installed rim flow forces the index build and keeps
	// flights, queues, and receptions live across the churn below.
	pump := func() {
		src := m.Route(1)[0]
		p := pkt.NewPacket(1, 1, src, 0, 1028, eng.Now())
		m.Inject(p)
		p.Release()
		eng.Run(eng.Now() + 20*sim.Millisecond)
	}
	pump()

	radius := DefaultDiskRadius(40)
	for step := 0; step < 150; step++ {
		id := ids[rng.Intn(len(ids))]
		switch rng.Intn(8) {
		case 0, 1: // link churn
			b := ids[rng.Intn(len(ids))]
			if b != id {
				m.Ch.SetLinkDown(id, b, rng.Intn(2) == 0)
				m.Ch.SetLinkLoss(id, b, rng.Float64()/2)
			}
		case 2: // node churn: power a non-terminal node off or back on
			if id != 0 && id != m.Route(1)[0] {
				m.Node(id).MAC.SetDown(rng.Intn(2) == 0)
			}
		case 3: // route repair through the active strategy
			m.RerouteFlow(1, usable)
		default: // the common case: a node moves
			if m.Ch.Transmitting(id) {
				break // mobility engine defers these; so does the test
			}
			p := m.Ch.Position(id)
			m.MoveNode(id, phy.Position{
				X: p.X + rng.NormFloat64()*radius/4,
				Y: p.Y + rng.NormFloat64()*radius/4,
			})
		}
		pump()
		if err := m.Ch.VerifyIndex(); err != nil {
			t.Errorf("seed %d step %d: incremental index diverged from rebuild: %v", seed, step, err)
			return
		}
	}
}
