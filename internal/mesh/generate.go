// Generated topologies beyond the paper's own networks: regular grids and
// seeded random-disk deployments. Both builders validate connectivity —
// every installed route hop must be within transmission range — so a bad
// parameter choice fails loudly at build time instead of silently
// delivering nothing.
package mesh

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ezflow/internal/mac"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/routing"
	"ezflow/internal/sim"
)

// Grid builds a w×h lattice at DefaultHopDist spacing with the gateway N0
// at the origin; node (x, y) has id y*w + x. Two gateway-bound flows are
// installed: flow 1 from the far corner (w-1, h-1), walking its row down
// to column 0 and then down the column to the gateway, and — when the
// grid is two-dimensional — flow 2 from corner (w-1, 0) straight along
// the bottom row. The two paths share only the gateway, so they contend
// by radio proximity rather than by queue merging (the complement of the
// paper's Scenario 1).
func Grid(eng *sim.Engine, w, h int, phyCfg phy.Config, macCfg mac.Config) *Mesh {
	if w < 1 || h < 1 || w*h < 2 {
		panic(fmt.Sprintf("mesh: grid %dx%d needs at least 2 nodes", w, h))
	}
	m := New(eng, phyCfg, macCfg)
	d := float64(DefaultHopDist)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m.AddNode(pkt.NodeID(y*w+x), phy.Position{X: float64(x) * d, Y: float64(y) * d})
		}
	}

	// Flow 1: far corner -> along its row to column 0 -> down to N0.
	var p1 []pkt.NodeID
	for x := w - 1; x >= 0; x-- {
		p1 = append(p1, pkt.NodeID((h-1)*w+x))
	}
	for y := h - 2; y >= 0; y-- {
		p1 = append(p1, pkt.NodeID(y*w))
	}
	m.SetRoute(1, p1)

	// Flow 2: bottom-right corner -> along the bottom row to N0. Only in
	// true 2-D grids; in a 1×n or n×1 grid it would duplicate flow 1.
	if w > 1 && h > 1 {
		var p2 []pkt.NodeID
		for x := w - 1; x >= 0; x-- {
			p2 = append(p2, pkt.NodeID(x))
		}
		m.SetRoute(2, p2)
	}
	m.ValidateRoutes()
	return m
}

// DefaultDiskRadius returns the disk radius RandomDisk uses when the
// caller passes radius <= 0: (DefaultHopDist/2)·√n keeps the expected
// node density — and with it the interference regime — constant as n
// grows, and dense enough that a uniform placement is connected at the
// default 250 m transmission range with overwhelming probability.
func DefaultDiskRadius(n int) float64 {
	return DefaultHopDist / 2 * math.Sqrt(float64(n))
}

// randomDiskAttempts bounds the resampling loop before RandomDisk gives
// up on finding a connected placement.
const randomDiskAttempts = 256

// RandomDisk builds an n-node deployment with the gateway N0 at the
// centre of a disk of the given radius (DefaultDiskRadius(n) if <= 0) and
// nodes N1..N(n-1) placed uniformly at random from the given seed. The
// placement is resampled until the transmission-range graph is connected
// (panicking after a bounded number of attempts, which signals that the
// radius is too large for n nodes to bridge). One flow is installed: flow
// 1 from the node farthest from the gateway, routed along a BFS
// shortest-hop path with deterministic (lowest-id) tie-breaking, so a
// fixed (n, radius, seed) triple always produces the identical mesh.
//
// The seed only shapes the topology; it is deliberately drawn from its
// own generator so placement never perturbs the engine's event RNG.
func RandomDisk(eng *sim.Engine, n int, radius float64, seed int64, phyCfg phy.Config, macCfg mac.Config) *Mesh {
	return RandomDiskLossy(eng, n, radius, seed, 0, phyCfg, macCfg)
}

// RandomDiskLossy builds the same deployment as RandomDisk and
// additionally calibrates an edge-of-range loss model over every link
// (ApplyEdgeLoss with the given maximum probability): links near the
// transmission-range limit erase with probability ramping up to edgeLoss,
// the heterogeneous link quality a real deployment measures. edgeLoss 0
// is exactly RandomDisk. The installed route is still the minimum-hop
// gateway path — a link-quality routing strategy (Config.Routing "etx")
// recomputes it against the calibrated losses at wiring.
func RandomDiskLossy(eng *sim.Engine, n int, radius float64, seed int64, edgeLoss float64, phyCfg phy.Config, macCfg mac.Config) *Mesh {
	if n < 2 {
		panic("mesh: random disk needs at least 2 nodes")
	}
	if radius <= 0 {
		radius = DefaultDiskRadius(n)
	}
	rng := rand.New(rand.NewSource(seed))
	var pos []phy.Position
	var far int
	var parent []int
	found := false
	for try := 0; try < randomDiskAttempts; try++ {
		pos = samplePositions(rng, n, radius)
		parent = routing.GatewayTree(pos, phyCfg.TxRange)
		if routing.Connected(parent) {
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("mesh: no connected %d-node placement within radius %.0f m after %d attempts (radius too large for the %g m range?)",
			n, radius, randomDiskAttempts, phyCfg.TxRange))
	}

	m := New(eng, phyCfg, macCfg)
	for i, p := range pos {
		m.AddNode(pkt.NodeID(i), p)
	}
	if edgeLoss > 0 {
		m.ApplyEdgeLoss(edgeLoss)
	}

	// Flow 1: farthest node (lowest id on ties) back to the gateway along
	// the BFS tree.
	far = 0
	for i := 1; i < n; i++ {
		di, df := pos[i].Dist(pos[0]), pos[far].Dist(pos[0])
		if di > df {
			far = i
		}
	}
	var path []pkt.NodeID
	for i := far; ; i = parent[i] {
		path = append(path, pkt.NodeID(i))
		if i == 0 {
			break
		}
	}
	m.SetRoute(1, path)
	m.ValidateRoutes()
	return m
}

// samplePositions draws the gateway at the origin plus n-1 points uniform
// over the disk (r = R·√u gives an area-uniform radius).
func samplePositions(rng *rand.Rand, n int, radius float64) []phy.Position {
	pos := make([]phy.Position, n)
	for i := 1; i < n; i++ {
		r := radius * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		pos[i] = phy.Position{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
	}
	return pos
}

// ApplyEdgeLoss calibrates a deterministic edge-of-range loss model over
// every in-range directed link: a link of length d erases with
// probability maxLoss·((d-R/2)/(R/2))² for d beyond half the transmission
// range R, and 0 below it. Short links stay clean, marginal links near
// the range limit approach maxLoss — the SNR-driven quality gradient real
// deployments measure (the paper's Table 1 testbed losses range 0–43%).
// Node pairs are visited in ascending id order, so the resulting loss
// table is a pure function of the placement.
func (m *Mesh) ApplyEdgeLoss(maxLoss float64) {
	if maxLoss <= 0 {
		return
	}
	ids := m.Ch.NodeIDs()
	r := m.Ch.Config().TxRange
	half := r / 2
	for _, a := range ids {
		pa := m.Ch.Position(a)
		for _, b := range ids {
			if a == b {
				continue
			}
			d := pa.Dist(m.Ch.Position(b))
			if d > r || d <= half {
				continue
			}
			frac := (d - half) / half
			m.Ch.SetLinkLoss(a, b, maxLoss*frac*frac)
		}
	}
}

// CheckRoutes reports the first installed route with a hop outside the
// channel's transmission range, or nil when every route is valid. It is
// the non-panicking half of the route-validity contract: builders assert
// with ValidateRoutes (a bad construction is a programming error), while
// callers probing a mesh mid-run — after repairs kept a broken route in
// place, say — get an error they can handle.
func (m *Mesh) CheckRoutes() error {
	flows := make([]pkt.FlowID, 0, len(m.routes))
	for f := range m.routes {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, f := range flows {
		route := m.routes[f]
		for i := 0; i < len(route)-1; i++ {
			if !m.Ch.InTxRange(route[i], route[i+1]) {
				return fmt.Errorf("mesh: flow %v hop %v->%v exceeds transmission range", f, route[i], route[i+1])
			}
		}
	}
	return nil
}

// ValidateRoutes asserts CheckRoutes, panicking with the offending link.
// Topology builders call it after SetRoute so a disconnected layout fails
// at construction time.
func (m *Mesh) ValidateRoutes() {
	if err := m.CheckRoutes(); err != nil {
		panic(err.Error())
	}
}
