package mesh

import (
	"fmt"
	"strings"
	"testing"

	"ezflow/internal/mac"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/routing"
	"ezflow/internal/sim"
)

// strategyOf pulls a default-configured strategy out of the registry.
func strategyOf(t *testing.T, name string) routing.Strategy {
	t.Helper()
	info, ok := routing.ByName(name)
	if !ok {
		t.Fatalf("strategy %q not registered", name)
	}
	return info.New(routing.DefaultOptions())
}

// TestStrategyLazyDefault checks an untouched mesh routes with the
// registry default and SetStrategy(nil) restores it.
func TestStrategyLazyDefault(t *testing.T) {
	m := newChain(t, 3)
	if got := m.Strategy().Name(); got != routing.DefaultName {
		t.Errorf("default strategy = %q, want %q", got, routing.DefaultName)
	}
	m.SetStrategy(strategyOf(t, "etx"))
	if got := m.Strategy().Name(); got != "etx" {
		t.Errorf("after SetStrategy: %q, want etx", got)
	}
	m.SetStrategy(nil)
	if got := m.Strategy().Name(); got != routing.DefaultName {
		t.Errorf("after SetStrategy(nil): %q, want %q", got, routing.DefaultName)
	}
}

// TestRerouteFlowDelegates pins the repair path to the active strategy:
// the same severed-link repair lands on the strategy's choice, for every
// registered strategy, and BFS reproduces the legacy [3 1 0] repair.
func TestRerouteFlowDelegates(t *testing.T) {
	for _, name := range routing.Names() {
		eng := sim.NewEngine(1)
		m := Grid(eng, 2, 2, phy.DefaultConfig(), mac.DefaultConfig())
		m.SetStrategy(strategyOf(t, name))
		// Sever 2->0 (both directions), the hop flow 1's builder route uses.
		usable := func(a, b pkt.NodeID) bool {
			if (a == 2 && b == 0) || (a == 0 && b == 2) {
				return false
			}
			return m.Ch.InTxRange(a, b)
		}
		if !m.RerouteFlow(1, usable) {
			t.Errorf("%s: repair found no path on a connected grid", name)
			continue
		}
		got := m.Route(1)
		if fmt.Sprint(got) != fmt.Sprint([]pkt.NodeID{3, 1, 0}) {
			t.Errorf("%s: repaired route = %v, want [3 1 0]", name, got)
		}
		if err := m.CheckRoutes(); err != nil {
			t.Errorf("%s: repaired mesh invalid: %v", name, err)
		}
	}
}

// TestRerouteFailureCounted covers the no-path contract: the route stays,
// the call reports false, and the failure is counted for observability.
func TestRerouteFailureCounted(t *testing.T) {
	m := newChain(t, 2)
	before := append([]pkt.NodeID(nil), m.Route(1)...)
	nothing := func(a, b pkt.NodeID) bool { return false }
	if m.RerouteFlow(1, nothing) {
		t.Error("reroute over an empty graph reported success")
	}
	if got := m.RerouteFailures(); got != 1 {
		t.Errorf("RerouteFailures = %d, want 1", got)
	}
	if fmt.Sprint(m.Route(1)) != fmt.Sprint(before) {
		t.Errorf("failed reroute changed the route: %v", m.Route(1))
	}
	// An unknown flow is a no-op, not a counted failure.
	if m.RerouteFlow(99, nothing) {
		t.Error("reroute of an uninstalled flow reported success")
	}
	if got := m.RerouteFailures(); got != 1 {
		t.Errorf("RerouteFailures after unknown flow = %d, want 1", got)
	}
}

// TestRecomputeRoutes covers wiring-time recomputation: a quality-aware
// strategy replaces the builder route when the calibration warrants it,
// and a disconnected flow surfaces as an error naming it.
func TestRecomputeRoutes(t *testing.T) {
	// Line 0-1-2 plus a direct marginal 0-2 shortcut: nodes at 0, 120, 240
	// with 250 m range, so 0-2 is in range but near the limit.
	eng := sim.NewEngine(1)
	m := New(eng, phy.DefaultConfig(), mac.DefaultConfig())
	m.AddNode(0, phy.Position{X: 0})
	m.AddNode(1, phy.Position{X: 120})
	m.AddNode(2, phy.Position{X: 240})
	m.SetRoute(1, []pkt.NodeID{2, 0})
	m.Ch.SetLinkLoss(0, 2, 0.6)
	m.Ch.SetLinkLoss(2, 0, 0.6) // direct ETX 6.25 > 2 clean hops

	m.SetStrategy(strategyOf(t, "etx"))
	if err := m.RecomputeRoutes(); err != nil {
		t.Fatal(err)
	}
	if got := m.Route(1); fmt.Sprint(got) != fmt.Sprint([]pkt.NodeID{2, 1, 0}) {
		t.Errorf("etx recompute = %v, want [2 1 0]", got)
	}

	// BFS restores the minimum-hop direct route.
	m.SetStrategy(strategyOf(t, "bfs"))
	if err := m.RecomputeRoutes(); err != nil {
		t.Fatal(err)
	}
	if got := m.Route(1); fmt.Sprint(got) != fmt.Sprint([]pkt.NodeID{2, 0}) {
		t.Errorf("bfs recompute = %v, want [2 0]", got)
	}

	// A flow whose endpoints cannot reach each other errors, naming it.
	m2 := New(sim.NewEngine(1), phy.DefaultConfig(), mac.DefaultConfig())
	m2.AddNode(0, phy.Position{X: 0})
	m2.AddNode(1, phy.Position{X: 200})
	m2.AddNode(7, phy.Position{X: 5000})
	m2.SetRoute(3, []pkt.NodeID{0, 1})
	m2.routes[3] = []pkt.NodeID{0, 7} // bypass SetRoute to fake a stale route
	err := m2.RecomputeRoutes()
	if err == nil || !strings.Contains(err.Error(), "flow F3") {
		t.Errorf("disconnected recompute: err = %v, want one naming flow F3", err)
	}
}

// TestCheckRoutesVsValidate pins the unified contract: CheckRoutes
// returns the error, ValidateRoutes panics with the same message, and
// both are silent on a valid mesh.
func TestCheckRoutesVsValidate(t *testing.T) {
	m := newChain(t, 3)
	if err := m.CheckRoutes(); err != nil {
		t.Fatalf("valid chain: CheckRoutes = %v", err)
	}
	m.ValidateRoutes() // must not panic

	// Fake a repair that left an out-of-range hop in place.
	m.routes[1] = []pkt.NodeID{0, 3}
	err := m.CheckRoutes()
	if err == nil || !strings.Contains(err.Error(), "exceeds transmission range") {
		t.Fatalf("CheckRoutes = %v, want range error", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ValidateRoutes did not panic on the broken route")
		}
		if fmt.Sprint(r) != err.Error() {
			t.Errorf("panic %q differs from CheckRoutes error %q", r, err)
		}
	}()
	m.ValidateRoutes()
}

// TestApplyEdgeLoss pins the loss model's shape: clean below half range,
// quadratic ramp above it, symmetric, and idempotent.
func TestApplyEdgeLoss(t *testing.T) {
	eng := sim.NewEngine(1)
	m := New(eng, phy.DefaultConfig(), mac.DefaultConfig())
	r := phy.DefaultConfig().TxRange // 250
	m.AddNode(0, phy.Position{X: 0})
	m.AddNode(1, phy.Position{X: 0.4 * r})   // below half range: clean
	m.AddNode(2, phy.Position{X: -0.75 * r}) // frac (0.75-0.5)/0.5 = 0.5
	m.ApplyEdgeLoss(0.4)

	if got := m.Ch.LinkLoss(0, 1); got != 0 {
		t.Errorf("short link loss = %g, want 0", got)
	}
	want := 0.4 * 0.5 * 0.5
	if got := m.Ch.LinkLoss(0, 2); !almost(got, want) {
		t.Errorf("marginal link loss = %g, want %g", got, want)
	}
	if got := m.Ch.LinkLoss(2, 0); !almost(got, want) {
		t.Errorf("reverse loss = %g, want symmetric %g", got, want)
	}
	m.ApplyEdgeLoss(0.4) // reapplying recalibrates to the same values
	if got := m.Ch.LinkLoss(0, 2); !almost(got, want) {
		t.Errorf("after reapply: %g, want %g", got, want)
	}
	m.ApplyEdgeLoss(0) // zero ceiling is a no-op, not an erase
	if got := m.Ch.LinkLoss(0, 2); !almost(got, want) {
		t.Errorf("ApplyEdgeLoss(0) changed losses: %g", got)
	}
}

func almost(got, want float64) bool {
	d := got - want
	return d < 1e-12 && d > -1e-12
}

// TestRandomDiskLossyDeterminism checks the lossy builder is a pure
// function of its arguments and that edgeLoss 0 is exactly RandomDisk.
func TestRandomDiskLossyDeterminism(t *testing.T) {
	build := func(edge float64) *Mesh {
		return RandomDiskLossy(sim.NewEngine(1), 20, 0, 7, edge, phy.DefaultConfig(), mac.DefaultConfig())
	}
	a, b := build(0.5), build(0.5)
	if fingerprint(a) != fingerprint(b) {
		t.Error("same (n, radius, seed, edgeLoss) produced different meshes")
	}
	plain := RandomDisk(sim.NewEngine(1), 20, 0, 7, phy.DefaultConfig(), mac.DefaultConfig())
	if fingerprint(build(0)) != fingerprint(plain) {
		t.Error("edgeLoss 0 diverges from RandomDisk")
	}
	// The calibration touched at least one marginal link.
	var lossy int
	ids := a.Ch.NodeIDs()
	for _, x := range ids {
		for _, y := range ids {
			if x != y && a.Ch.LinkLoss(x, y) > 0 {
				lossy++
			}
		}
	}
	if lossy == 0 {
		t.Error("no link received edge loss on a 20-node disk")
	}
}
