// Tree topology: the downlink counterpart of the backhaul, used for the
// paper's §7 extension. A gateway fans traffic out toward several leaf
// access points; interior nodes forward to up to four successors, one MAC
// queue (hence one CWmin) per successor — the 802.11e-style multi-queue
// deployment the conclusion proposes, where each of the four EDCA queues
// serves one successor.
package mesh

import (
	"fmt"

	"ezflow/internal/mac"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// MaxSuccessors is the number of per-successor MAC queues available when
// repurposing the four 802.11e access categories (§7).
const MaxSuccessors = 4

// Tree builds a complete tree of the given branching factor and depth with
// the gateway N0 at the root, and installs one downlink flow from the
// gateway to every leaf (flow ids 1..#leaves, left to right). Branching
// must be between 2 and MaxSuccessors.
//
// Geometry: level k sits at y = k * DefaultHopDist; siblings are spread
// horizontally so that parent-child links are within TX range while nodes
// of different subtrees at the same level mostly do not decode each other.
func Tree(eng *sim.Engine, branching, depth int, phyCfg phy.Config, macCfg mac.Config) *Mesh {
	if branching < 2 || branching > MaxSuccessors {
		panic(fmt.Sprintf("mesh: tree branching %d outside [2,%d]", branching, MaxSuccessors))
	}
	if depth < 1 {
		panic("mesh: tree depth must be at least 1")
	}
	m := New(eng, phyCfg, macCfg)

	// Number the nodes level by level: node i's children are
	// i*branching+1 .. i*branching+branching.
	total := 0
	levelStart := make([]int, depth+2)
	count := 1
	for l := 0; l <= depth; l++ {
		levelStart[l] = total
		total += count
		count *= branching
	}
	levelStart[depth+1] = total

	// Recursive placement: each child sits one hop deeper with a
	// horizontal offset that shrinks by the branching factor per level,
	// so every parent-child link stays within TX range (offset <= 140 m,
	// hop 200 m => distance <= 244 m) and sibling subtrees never overlap.
	d := float64(DefaultHopDist)
	spread0 := 280.0 / float64(branching-1)
	var place func(id int, level int, x, spread float64)
	place = func(id, level int, x, spread float64) {
		m.AddNode(pkt.NodeID(id), phy.Position{X: x, Y: float64(level) * d})
		if level == depth {
			return
		}
		for j := 0; j < branching; j++ {
			off := (float64(j) - float64(branching-1)/2) * spread
			place(id*branching+1+j, level+1, x+off, spread/float64(branching))
		}
	}
	place(0, 0, 0, spread0)

	// One flow per leaf, routed root -> leaf through the parent chain.
	leaf0 := levelStart[depth]
	flow := pkt.FlowID(1)
	for leaf := leaf0; leaf < levelStart[depth+1]; leaf++ {
		var path []pkt.NodeID
		for i := leaf; ; i = (i - 1) / branching {
			path = append([]pkt.NodeID{pkt.NodeID(i)}, path...)
			if i == 0 {
				break
			}
		}
		m.SetRoute(flow, path)
		flow++
	}
	return m
}

// TreeLeaves reports the number of leaves of a (branching, depth) tree.
func TreeLeaves(branching, depth int) int {
	n := 1
	for i := 0; i < depth; i++ {
		n *= branching
	}
	return n
}
