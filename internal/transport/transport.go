// Package transport implements a minimal reliable, window-based transport
// (cumulative-ACK go-back-N with AIMD congestion control) running over the
// mesh. The paper's §2.3 argues EZ-Flow works both for uni-directional
// traffic (UDP-like, no feedback) and bi-directional traffic (TCP-like,
// where data and acknowledgements share the wireless resource in opposite
// directions); this package provides the bi-directional workload used to
// test that claim.
//
// Data packets travel on the flow's forward route; transport ACKs travel as
// packets of a companion flow on the reversed route, so they contend for
// the same medium hop by hop, exactly like TCP over a mesh backhaul.
package transport

import (
	"ezflow/internal/mesh"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// AckFlowOffset maps a data flow id to its acknowledgement flow id.
const AckFlowOffset = 1000

// AckFlow returns the companion ACK flow of a data flow.
func AckFlow(f pkt.FlowID) pkt.FlowID { return f + AckFlowOffset }

// Config parameterises an AIMD sender.
type Config struct {
	InitWindow float64  // initial congestion window in packets
	MaxWindow  float64  // upper bound on the window
	Bytes      int      // data packet size
	AckBytes   int      // transport ACK packet size
	RTO        sim.Time // retransmission timeout
}

// DefaultConfig returns TCP-flavoured defaults sized for the 1 Mb/s mesh.
func DefaultConfig() Config {
	return Config{
		InitWindow: 2,
		MaxWindow:  64,
		Bytes:      pkt.DefaultPayloadBytes,
		AckBytes:   40,
		RTO:        3 * sim.Second,
	}
}

// Conn is one reliable connection: an AIMD sender at the flow's source and
// a cumulative-ACK receiver at its destination.
type Conn struct {
	m    *mesh.Mesh
	flow pkt.FlowID
	src  pkt.NodeID
	dst  pkt.NodeID
	cfg  Config

	// Sender state.
	cwnd      float64
	nextSeq   uint64 // next sequence to send for the first time
	sendBase  uint64 // oldest unacknowledged sequence
	rtoTimer  sim.Timer
	timeoutFn func() // bound once so arming the RTO does not allocate
	running   bool

	// Receiver state.
	recvNext uint64 // next in-order sequence expected

	// Stats.
	Sent        uint64 // data packets injected (including retransmits)
	Retransmits uint64
	Delivered   uint64 // distinct in-order packets at the receiver
	AcksSent    uint64
	Timeouts    uint64
	// WindowTrace samples (time, cwnd) at every change.
	WindowTrace []WindowPoint
}

// WindowPoint is one congestion-window sample.
type WindowPoint struct {
	At   sim.Time
	Cwnd float64
}

// New creates a connection for the given data flow. Both the forward route
// (flow) and the reverse route (AckFlow(flow)) must already be installed in
// the mesh. The connection registers itself on the mesh sink.
func New(m *mesh.Mesh, flow pkt.FlowID, cfg Config) *Conn {
	route := m.Route(flow)
	if len(route) < 2 {
		panic("transport: data flow has no route")
	}
	back := m.Route(AckFlow(flow))
	if len(back) < 2 {
		panic("transport: ACK flow has no route; install the reversed path first")
	}
	if cfg.InitWindow <= 0 {
		cfg = DefaultConfig()
	}
	c := &Conn{
		m: m, flow: flow,
		src: route[0], dst: route[len(route)-1],
		cfg:      cfg,
		cwnd:     cfg.InitWindow,
		nextSeq:  1,
		sendBase: 1,
		recvNext: 1,
	}
	c.timeoutFn = c.onTimeout
	m.AddSink(c.onSink)
	return c
}

// Flow reports the data flow id.
func (c *Conn) Flow() pkt.FlowID { return c.flow }

// Cwnd reports the current congestion window.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// InFlight reports the number of unacknowledged packets.
func (c *Conn) InFlight() uint64 { return c.nextSeq - c.sendBase }

// Start begins transmission (greedy source: always data to send).
func (c *Conn) Start() {
	if c.running {
		return
	}
	c.running = true
	c.pump()
}

// Stop halts the sender. In-flight packets keep travelling.
func (c *Conn) Stop() {
	c.running = false
	c.rtoTimer.Cancel()
}

// pump injects new data while the window allows.
func (c *Conn) pump() {
	if !c.running {
		return
	}
	for float64(c.InFlight()) < c.cwnd {
		p := c.m.Pool().Packet(c.flow, c.nextSeq, c.src, c.dst, c.cfg.Bytes, c.m.Eng.Now())
		c.nextSeq++
		c.Sent++
		c.m.Inject(p)
		p.Release()
	}
	c.armRTO()
}

func (c *Conn) armRTO() {
	if c.rtoTimer.Pending() {
		return
	}
	if c.InFlight() == 0 {
		return
	}
	c.rtoTimer = c.m.Eng.Schedule(c.cfg.RTO, c.timeoutFn)
}

// onSink handles packets reaching their destination anywhere in the mesh;
// the connection reacts to its data arriving at dst and its ACKs arriving
// back at src.
func (c *Conn) onSink(p *pkt.Packet, _ sim.Time) {
	switch {
	case p.Flow == c.flow && p.Dst == c.dst:
		c.onData(p)
	case p.Flow == AckFlow(c.flow) && p.Dst == c.src:
		c.onAck(p)
	}
}

// onData runs at the receiver: advance the cumulative pointer and send an
// ACK carrying it (go-back-N: out-of-order data re-acknowledges recvNext).
func (c *Conn) onData(p *pkt.Packet) {
	if p.Seq == c.recvNext {
		c.recvNext++
		c.Delivered++
	}
	// Cumulative ACK: Seq carries the highest in-order sequence received.
	ack := c.m.Pool().Packet(AckFlow(c.flow), c.recvNext-1, c.dst, c.src,
		c.cfg.AckBytes, c.m.Eng.Now())
	c.AcksSent++
	c.m.Inject(ack)
	ack.Release()
}

// onAck runs at the sender: slide the window (AIMD additive increase).
func (c *Conn) onAck(p *pkt.Packet) {
	if p.Seq < c.sendBase {
		return // stale
	}
	acked := p.Seq - c.sendBase + 1
	c.sendBase = p.Seq + 1
	c.rtoTimer.Cancel()
	// Additive increase: one packet per window's worth of ACKs.
	c.setCwnd(c.cwnd + float64(acked)/c.cwnd)
	c.pump()
}

// onTimeout halves the window and goes back to the oldest unacked packet.
func (c *Conn) onTimeout() {
	if !c.running {
		return
	}
	c.Timeouts++
	c.setCwnd(c.cwnd / 2)
	// Go-back-N: resend everything outstanding.
	outstanding := c.InFlight()
	c.nextSeq = c.sendBase
	for i := uint64(0); i < outstanding; i++ {
		p := c.m.Pool().Packet(c.flow, c.nextSeq, c.src, c.dst, c.cfg.Bytes, c.m.Eng.Now())
		c.nextSeq++
		c.Sent++
		c.Retransmits++
		c.m.Inject(p)
		p.Release()
	}
	c.armRTO()
}

func (c *Conn) setCwnd(w float64) {
	if w < 1 {
		w = 1
	}
	if w > c.cfg.MaxWindow {
		w = c.cfg.MaxWindow
	}
	c.cwnd = w
	c.WindowTrace = append(c.WindowTrace, WindowPoint{c.m.Eng.Now(), w})
}

// InstallBidirectional installs both the forward route and the reversed
// ACK route for a flow in one call.
func InstallBidirectional(m *mesh.Mesh, flow pkt.FlowID, path []pkt.NodeID) {
	m.SetRoute(flow, path)
	back := make([]pkt.NodeID, len(path))
	for i, n := range path {
		back[len(path)-1-i] = n
	}
	m.SetRoute(AckFlow(flow), back)
}
