package transport

import (
	"testing"

	ez "ezflow/internal/ezflow"
	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

func newChainConn(t *testing.T, hops int, cfg Config) (*sim.Engine, *mesh.Mesh, *Conn) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := mesh.New(eng, phy.DefaultConfig(), mac.DefaultConfig())
	path := make([]pkt.NodeID, hops+1)
	for i := 0; i <= hops; i++ {
		m.AddNode(pkt.NodeID(i), phy.Position{X: float64(i) * mesh.DefaultHopDist})
		path[i] = pkt.NodeID(i)
	}
	InstallBidirectional(m, 1, path)
	return eng, m, New(m, 1, cfg)
}

func TestReliableDeliveryCleanLink(t *testing.T) {
	eng, _, c := newChainConn(t, 1, DefaultConfig())
	c.Start()
	eng.Run(60 * sim.Second)
	if c.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Everything cumulatively acknowledged must have been delivered
	// in order exactly once.
	if c.Delivered != c.recvNext-1 {
		t.Fatalf("delivered %d but recvNext %d", c.Delivered, c.recvNext)
	}
	if c.Retransmits > c.Sent/10 {
		t.Fatalf("%d retransmits of %d sent on a clean link", c.Retransmits, c.Sent)
	}
}

func TestWindowGrowsOnCleanLink(t *testing.T) {
	eng, _, c := newChainConn(t, 1, DefaultConfig())
	c.Start()
	eng.Run(30 * sim.Second)
	if c.Cwnd() <= DefaultConfig().InitWindow {
		t.Fatalf("cwnd %.1f never grew", c.Cwnd())
	}
	if len(c.WindowTrace) == 0 {
		t.Fatal("no window trace")
	}
}

func TestLossTriggersTimeoutAndRecovery(t *testing.T) {
	eng, m, c := newChainConn(t, 2, DefaultConfig())
	// A lossy middle link that the MAC retry limit cannot always mask.
	m.Ch.SetLinkLoss(1, 2, 0.35)
	c.Start()
	eng.Run(300 * sim.Second)
	if c.Delivered == 0 {
		t.Fatal("nothing delivered over the lossy path")
	}
	// In-order invariant must hold regardless of loss.
	if c.Delivered != c.recvNext-1 {
		t.Fatalf("in-order accounting broken: %d vs %d", c.Delivered, c.recvNext-1)
	}
}

func TestStopHaltsSender(t *testing.T) {
	eng, _, c := newChainConn(t, 1, DefaultConfig())
	c.Start()
	eng.Run(10 * sim.Second)
	sent := c.Sent
	c.Stop()
	eng.Run(30 * sim.Second)
	if c.Sent != sent {
		t.Fatalf("sender kept injecting after Stop: %d -> %d", sent, c.Sent)
	}
}

func TestWindowBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWindow = 8
	eng, _, c := newChainConn(t, 1, cfg)
	c.Start()
	eng.Run(120 * sim.Second)
	if c.Cwnd() > 8 {
		t.Fatalf("cwnd %.1f above MaxWindow", c.Cwnd())
	}
	for _, w := range c.WindowTrace {
		if w.Cwnd < 1 || w.Cwnd > 8 {
			t.Fatalf("window excursion to %.2f", w.Cwnd)
		}
	}
}

func TestMissingReverseRoutePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mesh.New(eng, phy.DefaultConfig(), mac.DefaultConfig())
	m.AddNode(0, phy.Position{X: 0})
	m.AddNode(1, phy.Position{X: 200})
	m.SetRoute(1, []pkt.NodeID{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("missing ACK route did not panic")
		}
	}()
	New(m, 1, DefaultConfig())
}

// TestEZFlowUnderBidirectionalTraffic is the §2.3 claim: EZ-Flow improves
// a multi-hop network carrying TCP-like bidirectional traffic, where the
// reverse ACK stream contends with forward data.
func TestEZFlowUnderBidirectionalTraffic(t *testing.T) {
	run := func(withEZ bool) (delivered uint64, meanQ1 float64) {
		eng := sim.NewEngine(1)
		m := mesh.New(eng, phy.DefaultConfig(), mac.DefaultConfig())
		path := make([]pkt.NodeID, 6)
		for i := 0; i <= 5; i++ {
			m.AddNode(pkt.NodeID(i), phy.Position{X: float64(i) * mesh.DefaultHopDist})
			if i > 0 {
				path[i] = pkt.NodeID(i)
			}
		}
		InstallBidirectional(m, 1, path)
		if withEZ {
			ez.Deploy(m, ez.DefaultOptions())
		}
		cfg := DefaultConfig()
		cfg.MaxWindow = 200 // aggressive enough to congest the backhaul
		c := New(m, 1, cfg)
		c.Start()
		var sum, n float64
		probe := m.Node(1)
		var tick func()
		tick = func() {
			sum += float64(probe.MAC.TotalQueued())
			n++
			eng.Schedule(sim.Second, tick)
		}
		eng.Schedule(sim.Second, tick)
		eng.Run(600 * sim.Second)
		return c.Delivered, sum / n
	}
	plainD, plainQ := run(false)
	ezD, ezQ := run(true)
	if plainD == 0 || ezD == 0 {
		t.Fatal("bidirectional runs delivered nothing")
	}
	// EZ-Flow must not collapse goodput and should reduce relay backlog.
	if float64(ezD) < 0.7*float64(plainD) {
		t.Fatalf("EZ-flow collapsed bidirectional goodput: %d vs %d", ezD, plainD)
	}
	if ezQ > plainQ*1.2 {
		t.Fatalf("EZ-flow increased relay backlog under TCP-like load: %.1f vs %.1f", ezQ, plainQ)
	}
}
