package campaign

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"ezflow/internal/scenario"
)

// sinkResult runs one small campaign whose scenario name contains a comma
// and a quote, so the CSV round-trip below exercises real quoting.
func sinkResult(t *testing.T) *Result {
	t.Helper()
	s, err := scenario.Parse([]byte(`{
	  "name": "flap, \"v2\"",
	  "topology": {"kind": "chain", "hops": 2},
	  "duration_sec": 10,
	  "flows": [{"id": 1, "rate_bps": 4e5}],
	  "dynamics": [{"at_sec": 4, "kind": "link-down", "a": 1, "b": 2},
	               {"at_sec": 6, "kind": "link-up", "a": 1, "b": 2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Name:     "sink-roundtrip",
		Scenario: s,
		Axes:     []Axis{{Name: "mode", Values: []string{"802.11", "ezflow"}}},
		Reps:     2,
		BaseSeed: 9,
	}
	res, err := (&Engine{Parallel: 2}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestJSONSinkRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	res := sinkResult(t)
	var buf bytes.Buffer
	if err := (JSONSink{W: &buf}).Emit(res); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON output does not parse back: %v", err)
	}
	if len(back.Points) != len(res.Points) || len(back.Runs) != len(res.Runs) {
		t.Fatalf("round trip lost rows: %d/%d points, %d/%d runs",
			len(back.Points), len(res.Points), len(back.Runs), len(res.Runs))
	}
	for i, p := range back.Points {
		if p.Label != res.Points[i].Label {
			t.Errorf("point %d label %q != %q", i, p.Label, res.Points[i].Label)
		}
		if p.AggKbps != res.Points[i].AggKbps {
			t.Errorf("point %d aggregate changed in round trip", i)
		}
	}
	for i, r := range back.Runs {
		if r.Seed != res.Runs[i].Seed || r.AggKbps != res.Runs[i].AggKbps ||
			r.RecoverySec != res.Runs[i].RecoverySec {
			t.Errorf("run %d changed in round trip: %+v vs %+v", i, r, res.Runs[i])
		}
	}
	if back.Spec.Scenario == nil || back.Spec.Scenario.Name != res.Spec.Scenario.Name {
		t.Error("embedded scenario spec lost in round trip")
	}
}

// csvHeader is the pinned CSV column set: changing it breaks downstream
// tooling, so a change must be deliberate (update this test when it is).
var csvHeader = []string{
	"point", "label", "rep", "seed",
	"agg_kbps", "fairness", "mean_delay_sec", "max_queue_pkts",
	"recovery_sec", "tail_queue_pkts", "flow_kbps", "failed_runs",
}

func TestCSVSinkRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	res := sinkResult(t)
	var buf bytes.Buffer
	if err := (CSVSink{W: &buf}).Emit(res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("CSV output does not parse back: %v", err)
	}
	if len(rows) != 1+len(res.Runs) {
		t.Fatalf("got %d rows, want header + %d runs", len(rows), len(res.Runs))
	}
	if got := strings.Join(rows[0], "|"); got != strings.Join(csvHeader, "|") {
		t.Errorf("header changed:\n got %s\nwant %s", got, strings.Join(csvHeader, "|"))
	}
	for i, run := range res.Runs {
		row := rows[1+i]
		// The label contains a comma and a quote; surviving the parse
		// verbatim proves the writer quoted it.
		if row[1] != run.Label {
			t.Errorf("row %d label %q != %q", i, row[1], run.Label)
		}
		if !strings.Contains(run.Label, `,`) || !strings.Contains(run.Label, `"`) {
			t.Fatalf("test scenario name lost its quoting challenge: %q", run.Label)
		}
		if row[3] != strconv.FormatInt(run.Seed, 10) {
			t.Errorf("row %d seed %s != %d", i, row[3], run.Seed)
		}
		agg, err := strconv.ParseFloat(row[4], 64)
		if err != nil || agg != run.AggKbps {
			t.Errorf("row %d agg %q != %g", i, row[4], run.AggKbps)
		}
		rec, err := strconv.ParseFloat(row[8], 64)
		if err != nil || rec != run.RecoverySec {
			t.Errorf("row %d recovery %q != %g", i, row[8], run.RecoverySec)
		}
	}
}
