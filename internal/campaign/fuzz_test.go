package campaign

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzWorkerFrames drives the coordinator's frame decoder — the same
// json.Decoder loop runShard runs against worker stdout — over
// arbitrary byte streams. A worker compromised by chaos (or a bug) can
// emit anything, so the decode path must surface an error or EOF for
// every input, never panic or spin. The corpus seeds with a genuine
// run + summary exchange and the chaos harness's garbled line.
func FuzzWorkerFrames(f *testing.F) {
	wr := wireFromRun(RunResult{Point: 1, Label: "hops=2", Rep: 0, Seed: 42, AggKbps: 512.5})
	var seed bytes.Buffer
	enc := json.NewEncoder(&seed)
	enc.Encode(workerFrame{Run: &wr})                            //nolint:errcheck // seeding
	enc.Encode(workerFrame{Done: true, Hits: 3, RunsTimeout: 1}) //nolint:errcheck // seeding
	f.Add(seed.Bytes())
	f.Add([]byte("{this is not a frame\n"))
	f.Add([]byte(`{"error":"worker failed"}`))
	f.Add([]byte(`{"run":{"point":0,"rep":0}}{"done":true}`))
	f.Add([]byte(`{"run":null,"done":false}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		for frames := 0; ; frames++ {
			if frames > 10000 {
				t.Fatal("decoder neither errored nor hit EOF")
			}
			var fr workerFrame
			if err := dec.Decode(&fr); err != nil {
				// Both EOF (clean stream end) and a decode error (the
				// coordinator kills the worker) are acceptable terminal
				// states; hanging or panicking are not.
				return
			}
			if fr.Run != nil {
				// The coordinator indexes frames by (Point, Rep); touching
				// them mirrors what the sink does with a decoded frame.
				_ = fr.Run.Point*2 + fr.Run.Rep
			}
		}
	})
}

// FuzzParseChaos pins the chaos-spec grammar: any input either parses
// to a schedule or errors — a typo'd spec must fail loudly rather than
// run a clean campaign that claims to be a chaos test.
func FuzzParseChaos(f *testing.F) {
	f.Add("crash:2,hang:5")
	f.Add("garble:1")
	f.Add("trunc:3,dup:2,earlydone:7")
	f.Add("crash:")
	f.Add(":::")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := parseChaos(s)
		if err != nil {
			return
		}
		if s == "" && spec.active() {
			t.Fatal("empty spec parsed active")
		}
	})
}
