// The chaos harness: deterministic fault injection for shard workers,
// used to prove the supervisor's recovery paths. A worker launched with
// the EZ_CHAOS environment variable set sabotages its own frame stream
// at prescribed points, e.g.
//
//	EZ_CHAOS=crash:2,hang:5
//
// The spec grammar is a comma-separated list of kind:n entries, where n
// is the 1-based index of the result frame the fault fires at (within
// one worker process — replacement workers inherit the variable and
// count their own frames from 1, so a fault with n greater than the
// remaining assignments simply never fires and the incarnation
// completes):
//
//	crash:n     exit(7) instead of emitting the nth frame
//	hang:n      block forever instead of emitting the nth frame (the
//	            coordinator's liveness deadline must reap it)
//	garble:n    emit a line of non-JSON garbage instead of the nth frame
//	trunc:n     emit the first half of the nth frame, then exit(7)
//	dup:n       emit the nth frame twice
//	earlydone:n emit a premature summary frame instead of the nth frame,
//	            then exit(0) — the "done with wrong counts" fault
//
// Faults are deterministic given the worker's frame order; chaos tests
// run workers at parallel 1, where frames follow assignment order.
// Every fault flushes buffered frames first, so "crash at frame n"
// always means "frames 1..n-1 were delivered".
package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// chaosEnv is the environment variable WorkerMain reads the fault spec
// from.
const chaosEnv = "EZ_CHAOS"

// chaosSpec holds the parsed fault schedule; 0 means "never fire".
type chaosSpec struct {
	crash     int
	hang      int
	garble    int
	trunc     int
	dup       int
	earlyDone int
}

// active reports whether any fault is scheduled.
func (c chaosSpec) active() bool {
	return c != chaosSpec{}
}

// parseChaos parses the EZ_CHAOS grammar. An empty spec is valid (no
// faults); a malformed one is an error so typos fail loudly instead of
// silently running a clean campaign that claims to be a chaos test.
func parseChaos(s string) (chaosSpec, error) {
	var c chaosSpec
	if s == "" {
		return c, nil
	}
	for _, part := range strings.Split(s, ",") {
		kind, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return c, fmt.Errorf("campaign: chaos entry %q is not kind:n", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return c, fmt.Errorf("campaign: chaos entry %q needs a positive frame index", part)
		}
		switch kind {
		case "crash":
			c.crash = n
		case "hang":
			c.hang = n
		case "garble":
			c.garble = n
		case "trunc":
			c.trunc = n
		case "dup":
			c.dup = n
		case "earlydone":
			c.earlyDone = n
		default:
			return c, fmt.Errorf("campaign: unknown chaos kind %q (want crash|hang|garble|trunc|dup|earlydone)", kind)
		}
	}
	return c, nil
}

// chaosEmitter wraps the worker's frame encoder and fires the scheduled
// faults. It owns the worker's buffered writer so it can flush delivered
// frames before sabotaging the stream.
type chaosEmitter struct {
	bw    *bufio.Writer
	enc   *json.Encoder
	spec  chaosSpec
	frame int // result frames attempted so far
}

// newChaosEmitter builds the emitter; with an inactive spec it is a
// plain encoder.
func newChaosEmitter(bw *bufio.Writer, spec chaosSpec) *chaosEmitter {
	return &chaosEmitter{bw: bw, enc: json.NewEncoder(bw), spec: spec}
}

// emit writes one frame, or the scheduled fault in its place.
func (c *chaosEmitter) emit(f workerFrame) error {
	if !c.spec.active() {
		return c.enc.Encode(f)
	}
	c.frame++
	switch c.frame {
	case c.spec.crash:
		c.bw.Flush() //nolint:errcheck // sabotage path
		os.Exit(7)
	case c.spec.hang:
		c.bw.Flush() //nolint:errcheck // sabotage path
		select {}    // block forever; the coordinator's liveness deadline reaps us
	case c.spec.garble:
		_, err := io.WriteString(c.bw, "{this is not a frame\n")
		return err
	case c.spec.trunc:
		b, err := json.Marshal(f)
		if err != nil {
			return err
		}
		c.bw.Write(b[:len(b)/2]) //nolint:errcheck // sabotage path
		c.bw.Flush()             //nolint:errcheck // sabotage path
		os.Exit(7)
	case c.spec.dup:
		if err := c.enc.Encode(f); err != nil {
			return err
		}
		return c.enc.Encode(f)
	case c.spec.earlyDone:
		if err := c.enc.Encode(workerFrame{Done: true}); err != nil {
			return err
		}
		c.bw.Flush() //nolint:errcheck // sabotage path
		os.Exit(0)
	}
	return c.enc.Encode(f)
}
