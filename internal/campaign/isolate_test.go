package campaign

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ezflow/internal/fabric"
)

// isolateSpec is a 1-point, 2-rep grid for the isolation tests — small
// enough that a stubbed runReplication dominates the runtime.
func isolateSpec() Spec {
	return Spec{
		Name:        "isolate-test",
		Axes:        []Axis{{Name: "hops", Values: []string{"2"}}},
		Reps:        2,
		BaseSeed:    5,
		DurationSec: 5,
	}
}

// stubRuns swaps the simulation entry point for the test's double and
// restores it on cleanup. Tests using it must not run in parallel.
func stubRuns(t *testing.T, fn func(Spec, Point, int, float64) RunResult) {
	t.Helper()
	orig := runReplication
	runReplication = fn
	t.Cleanup(func() { runReplication = orig })
}

// TestRunPanicRecovered pins panic containment: a replication that
// panics becomes a structured failed run; its sibling still completes
// and still aggregates.
func TestRunPanicRecovered(t *testing.T) {
	stubRuns(t, func(spec Spec, p Point, rep int, durSec float64) RunResult {
		if rep == 0 {
			panic("injected: simulator blew up")
		}
		return RunResult{Point: p.Index, Label: p.Label, Rep: rep,
			Seed: DeriveSeed(spec.BaseSeed, p.Label, rep), AggKbps: 100, RecoverySec: -1}
	})
	var shared FaultCounters
	eng := Engine{Parallel: 1, Faults: &shared}
	res, err := eng.Run(isolateSpec())
	if err != nil {
		t.Fatal(err)
	}
	bad, good := res.Runs[0], res.Runs[1]
	if !bad.Failed || !strings.Contains(bad.Error, "panic: injected") {
		t.Errorf("rep 0 = %+v, want a recovered-panic failure", bad)
	}
	if bad.Seed != DeriveSeed(5, bad.Label, 0) {
		t.Errorf("failed run seed = %d, want the derived seed", bad.Seed)
	}
	if good.Failed || good.AggKbps != 100 {
		t.Errorf("rep 1 = %+v, want the healthy run", good)
	}
	agg := res.Points[0]
	if agg.FailedRuns != 1 || agg.AggKbps.N != 1 || agg.AggKbps.Mean != 100 {
		t.Errorf("aggregate = %+v, want 1 failed run excluded from stats", agg)
	}
	for _, fs := range []FaultStats{eng.FaultStats(), shared.Snapshot()} {
		if fs.RunsPanicked != 1 || fs.RunsFailed != 1 {
			t.Errorf("fault stats = %+v, want 1 panic / 1 failed", fs)
		}
	}
}

// TestRunTimeout pins the wall-clock cap: a hanging replication is
// abandoned at RunTimeout and recorded as a timeout failure instead of
// wedging the campaign.
func TestRunTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	stubRuns(t, func(spec Spec, p Point, rep int, durSec float64) RunResult {
		if rep == 0 {
			<-release // hang until the test tears down
		}
		return RunResult{Point: p.Index, Label: p.Label, Rep: rep,
			Seed: DeriveSeed(spec.BaseSeed, p.Label, rep), AggKbps: 100, RecoverySec: -1}
	})
	eng := Engine{Parallel: 1, RunTimeout: 50 * time.Millisecond}
	res, err := eng.Run(isolateSpec())
	if err != nil {
		t.Fatal(err)
	}
	bad := res.Runs[0]
	if !bad.Failed || !strings.Contains(bad.Error, "wall-clock timeout") {
		t.Errorf("rep 0 = %+v, want a timeout failure", bad)
	}
	if res.Runs[1].Failed {
		t.Errorf("rep 1 failed: %+v", res.Runs[1])
	}
	if fs := eng.FaultStats(); fs.RunsTimeout != 1 || fs.RunsFailed != 1 {
		t.Errorf("fault stats = %+v, want 1 timeout / 1 failed", fs)
	}
}

// TestFailedRunsNeverCached pins the cache-poisoning guard: a failed
// replication must not enter the fabric store, so a fixed binary (or a
// roomier timeout) re-executes it instead of replaying the failure
// forever.
func TestFailedRunsNeverCached(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	store, err := fabric.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stubRuns(t, func(spec Spec, p Point, rep int, durSec float64) RunResult {
		if rep == 0 {
			panic("injected: transient")
		}
		return RunResult{Point: p.Index, Label: p.Label, Rep: rep,
			Seed: DeriveSeed(spec.BaseSeed, p.Label, rep), AggKbps: 100, RecoverySec: -1}
	})
	eng := Engine{Parallel: 1, Cache: store}
	if _, err := eng.Run(isolateSpec()); err != nil {
		t.Fatal(err)
	}
	if n := store.Len(); n != 1 {
		t.Fatalf("store holds %d entries after 1 failed + 1 healthy run, want 1", n)
	}

	// With the "bug" fixed, the failed slot re-executes (a miss, then a
	// put); the healthy slot replays (a hit).
	stubRuns(t, func(spec Spec, p Point, rep int, durSec float64) RunResult {
		return RunResult{Point: p.Index, Label: p.Label, Rep: rep,
			Seed: DeriveSeed(spec.BaseSeed, p.Label, rep), AggKbps: 100, RecoverySec: -1}
	})
	eng2 := Engine{Parallel: 1, Cache: store}
	res, err := eng2.Run(isolateSpec())
	if err != nil {
		t.Fatal(err)
	}
	if cs := eng2.CacheStats(); cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("retry cache stats = %+v, want 1 hit / 1 miss", cs)
	}
	if res.Runs[0].Failed {
		t.Error("retry still failed: the failure was served from cache")
	}
}
