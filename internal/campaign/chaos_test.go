package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestParseChaos(t *testing.T) {
	cases := []struct {
		in      string
		want    chaosSpec
		wantErr string
	}{
		{in: "", want: chaosSpec{}},
		{in: "crash:2", want: chaosSpec{crash: 2}},
		{in: "crash:1,hang:3, garble:2", want: chaosSpec{crash: 1, hang: 3, garble: 2}},
		{in: "trunc:4,dup:1,earlydone:9", want: chaosSpec{trunc: 4, dup: 1, earlyDone: 9}},
		{in: "crash", wantErr: "not kind:n"},
		{in: "crash:0", wantErr: "positive frame index"},
		{in: "crash:-1", wantErr: "positive frame index"},
		{in: "crash:x", wantErr: "positive frame index"},
		{in: "fire:2", wantErr: "unknown chaos kind"},
	}
	for _, c := range cases {
		got, err := parseChaos(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("parseChaos(%q) err = %v, want %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseChaos(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseChaos(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestChaosRecovery is the supervision pin: for every injected fault
// kind — a worker crash, a truncated frame, garbage on the stream, a
// duplicated run frame, a premature summary, a hang — the supervisor
// kills and replaces workers until the campaign completes, and the
// merged JSON/CSV output is byte-identical to a clean single-process
// -parallel 1 run. Workers run at parallel 1 so chaos frame indices are
// deterministic; a shared cache makes each retry replay finished work.
func TestChaosRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations in subprocesses")
	}
	spec := fabricSpec()
	base := Engine{Parallel: 1}
	baseRes, err := base.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantCSV := emit(t, baseRes)
	cmd, env := workerCommand(t)

	cases := []struct {
		chaos    string
		liveness time.Duration
	}{
		{chaos: "crash:2"},
		{chaos: "trunc:2"},
		{chaos: "garble:2"},
		{chaos: "dup:2"},
		{chaos: "earlydone:2"},
		{chaos: "hang:2", liveness: time.Second},
		{chaos: "crash:2,garble:4"},
	}
	for _, c := range cases {
		t.Run(c.chaos, func(t *testing.T) {
			var faults FaultCounters
			res, _, err := RunSharded(spec, ShardOptions{
				Shards:   1,
				Command:  cmd,
				Env:      append(env, "EZ_CHAOS="+c.chaos),
				CacheDir: t.TempDir(),
				Parallel: 1,
				Liveness: c.liveness,
				Backoff:  time.Millisecond,
				Faults:   &faults,
			})
			if err != nil {
				t.Fatalf("campaign did not survive %s: %v", c.chaos, err)
			}
			js, csv := emit(t, res)
			if !bytes.Equal(js, wantJSON) {
				t.Error("chaos-recovered JSON diverges from the clean run")
			}
			if !bytes.Equal(csv, wantCSV) {
				t.Error("chaos-recovered CSV diverges from the clean run")
			}
			fs := faults.Snapshot()
			if fs.WorkerFailures == 0 || fs.WorkerRestarts == 0 {
				t.Errorf("faults = %+v, want observed failures and restarts under %s", fs, c.chaos)
			}
			if fs.RunsRetried == 0 {
				t.Errorf("faults = %+v, want re-dealt assignments under %s", fs, c.chaos)
			}
			if fs.RunsFailed != 0 {
				t.Errorf("faults = %+v: a recoverable fault must not fail runs", fs)
			}
		})
	}
}

// TestChaosDegradesGracefully pins the degradation policy: a worker
// that dies before emitting anything (crash at frame 1) can never make
// progress, so after MaxRetries consecutive failures each assignment is
// marked failed — and the campaign still completes, with every run
// carrying a structured error, every aggregate counting its failed
// replications, and nothing poisoning the cache.
func TestChaosDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses")
	}
	spec := fabricSpec()
	cmd, env := workerCommand(t)
	var faults FaultCounters
	res, _, err := RunSharded(spec, ShardOptions{
		Shards:     1,
		Command:    cmd,
		Env:        append(env, "EZ_CHAOS=crash:1"),
		Parallel:   1,
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		Faults:     &faults,
	})
	if err != nil {
		t.Fatalf("degradation aborted the campaign: %v", err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("got %d runs, want the full 4-slot grid", len(res.Runs))
	}
	for _, r := range res.Runs {
		if !r.Failed {
			t.Errorf("run (point %d, rep %d) not marked failed under crash:1", r.Point, r.Rep)
		}
		if !strings.Contains(r.Error, "abandoned after 2 consecutive worker failures") {
			t.Errorf("run error = %q, want the abandonment report", r.Error)
		}
		if r.Seed == 0 {
			t.Errorf("failed run (point %d, rep %d) lost its derived seed", r.Point, r.Rep)
		}
	}
	for _, a := range res.Points {
		if a.FailedRuns != 2 {
			t.Errorf("point %q failed_runs = %d, want 2", a.Label, a.FailedRuns)
		}
		if a.AggKbps.N != 0 {
			t.Errorf("point %q aggregated %d failed runs", a.Label, a.AggKbps.N)
		}
	}
	fs := faults.Snapshot()
	if fs.RunsFailed != 4 {
		t.Errorf("runs_failed = %d, want 4", fs.RunsFailed)
	}
	if fs.WorkerFailures != 8 {
		// 4 assignments x MaxRetries(2) consecutive failures each.
		t.Errorf("worker_failures = %d, want 8", fs.WorkerFailures)
	}

	// The degraded result must flow through the sinks: failed/error in
	// JSON, the failed_runs CSV column, the FAILED report line.
	js, csv := emit(t, res)
	if !bytes.Contains(js, []byte(`"failed": true`)) {
		t.Error("JSON output lacks the failed marker")
	}
	if !strings.Contains(string(csv), ",1\n") {
		t.Error("CSV output lacks failed_runs=1 rows")
	}
	var report bytes.Buffer
	if err := (ReportSink{W: &report}).Emit(res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "FAILED 2/2 runs") {
		t.Errorf("report lacks the FAILED line:\n%s", report.String())
	}
}

// TestChaosPartialPoison pins the done-with-wrong-counts path: a worker
// that exits cleanly while claiming completion with assignments still
// unfinished (earlydone:1 — it claims done before its first run) is a
// retryable protocol violation, not a success, and with no progress
// possible the assignments eventually degrade through the same
// abandonment policy as crashes.
func TestChaosPartialPoison(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses")
	}
	spec := fabricSpec()
	cmd, env := workerCommand(t)
	var faults FaultCounters
	res, _, err := RunSharded(spec, ShardOptions{
		Shards:     1,
		Command:    cmd,
		Env:        append(env, "EZ_CHAOS=earlydone:1"),
		Parallel:   1,
		MaxRetries: 1,
		Backoff:    time.Millisecond,
		Faults:     &faults,
	})
	if err != nil {
		t.Fatalf("campaign aborted: %v", err)
	}
	for _, r := range res.Runs {
		if !r.Failed {
			t.Fatalf("run (point %d, rep %d) not failed under earlydone:1", r.Point, r.Rep)
		}
		if !strings.Contains(r.Error, "unfinished") {
			t.Errorf("run error = %q, want the done-with-wrong-counts report", r.Error)
		}
	}
}

// TestShardWorkerStderrInError pins the stderr capture: when a worker
// dies without speaking the protocol, its last stderr bytes ride the
// failure into the degraded runs' error strings, so shard failures are
// diagnosable without re-running.
func TestShardWorkerStderrInError(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses")
	}
	spec := fabricSpec()
	res, _, err := RunSharded(spec, ShardOptions{
		Shards:     1,
		Command:    []string{"/bin/sh", "-c", "echo shard-worker-boom >&2; exit 3"},
		MaxRetries: 1,
		Backoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatalf("campaign aborted: %v", err)
	}
	for _, r := range res.Runs {
		if !r.Failed {
			t.Fatal("runs must degrade when the worker always dies")
		}
		if !strings.Contains(r.Error, "worker stderr: shard-worker-boom") {
			t.Errorf("run error = %q, want the captured stderr tail", r.Error)
		}
		if !strings.Contains(r.Error, "exit status 3") {
			t.Errorf("run error = %q, want the exit status", r.Error)
		}
	}
}

// TestTailBuffer pins the stderr ring: only the last max bytes survive.
func TestTailBuffer(t *testing.T) {
	tb := newTailBuffer(8)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(tb, "line%d\n", i)
	}
	if got := tb.String(); got != "3\nline4" {
		t.Errorf("tail = %q, want the final 8 bytes trimmed", got)
	}
}
