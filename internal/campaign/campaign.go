// Package campaign is the experiment-orchestration layer of the
// repository: it fans independent ezflow.Scenario runs out across a pool
// of workers and aggregates replications into the statistics the paper's
// evaluation grid needs (mean, standard deviation, 95% confidence
// intervals, Jain-index distributions).
//
// The package has two layers. The generic layer — RunAll — executes a
// slice of independent jobs on up to GOMAXPROCS goroutines and returns
// results in submission order; internal/exp routes every figure/table
// experiment through it. The declarative layer — Spec, Engine, Sink —
// describes a parameter sweep (topology × mode × rate × hops × CW cap)
// with per-point seed replications, runs the whole grid, and emits the
// outcome through pluggable sinks (human-readable report, JSON, CSV).
// The controller axis additionally sweeps the congestion-controller
// registry (internal/ctl), so head-to-head controller comparisons are one
// sweep away; the routing axis does the same for the routing-strategy
// registry (internal/routing).
//
// Determinism: every run's seed is derived purely from (base seed, point
// label, replication index) by DeriveSeed, and results are collected by
// grid position rather than completion order, so a campaign's output is
// byte-identical no matter how many workers execute it.
package campaign

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ezflow"
	"ezflow/internal/ctl"
	"ezflow/internal/dynamics"
	"ezflow/internal/fabric"
	"ezflow/internal/mobility"
	"ezflow/internal/obs"
	"ezflow/internal/routing"
	"ezflow/internal/scenario"
	"ezflow/internal/stats"
)

// Spec declares a campaign: an ordered list of swept axes, the number of
// seed replications per grid point, and the shared run parameters.
type Spec struct {
	Name string `json:"name"`
	// Axes are the swept parameters, in sweep order. The grid is their
	// cartesian product; with no axes the campaign is a single point.
	Axes []Axis `json:"axes,omitempty"`
	// Reps is the number of independently seeded replications per point
	// (default 1).
	Reps int `json:"reps"`
	// BaseSeed feeds DeriveSeed; two campaigns with different base seeds
	// draw disjoint replication streams.
	BaseSeed int64 `json:"base_seed"`
	// DurationSec is the simulated duration of each run (default 600 s,
	// the paper's standard horizon).
	DurationSec float64 `json:"duration_sec"`
	// RateBps is the per-flow CBR rate when "rate" is not swept
	// (default 2 Mb/s, the paper's saturating source).
	RateBps float64 `json:"rate_bps"`
	// Scenario, when non-nil, is a declarative scenario file that
	// replaces the built-in topology/flow grid: every run builds from it
	// (its dynamics timeline included), and only the mode, rate, cap,
	// flap, and churn axes may be swept — topology-shaped axes conflict
	// and are rejected. The file's duration wins over DurationSec unless
	// the file leaves it unset.
	Scenario *scenario.Spec `json:"scenario,omitempty"`
	// Obs attaches the observability layer (metrics + flight recorder;
	// see internal/obs) to every run. It is excluded from serialization
	// on purpose: observability never perturbs a run, so campaign output
	// — the spec echo included — must stay byte-identical with it on or
	// off (golden tests pin this).
	Obs bool `json:"-"`
}

// sweeps reports whether the named axis is swept by this spec.
func (s Spec) sweeps(name string) bool {
	for _, ax := range s.Axes {
		if ax.Name == name {
			return true
		}
	}
	return false
}

// Axis is one swept parameter. Known names: "topology"
// (chain|testbed|scenario1|scenario2|tree|grid|random), "mode"
// (802.11|ezflow|penalty|diffq), "controller" (any registered congestion
// controller — see ctl.Names() — plus 802.11|off|none for the raw
// baseline; mutually exclusive with the mode axis), "routing" (any
// registered routing strategy — see routing.Names()), "hops" (chain
// length; also the side of a grid topology, clamped to >= 2), "rate"
// (bit/s), "cap" (hardware CWmin cap, 0 = none), "nodes" (node count of
// the random topology, whose placement is seeded per replication), the
// fault-injection axes "flap" and "churn" (0|1): flap=1 severs the first
// flow's middle link for a tenth of the run starting at 40%, churn=1
// halts its middle relay over the same window, both with BFS route
// repair — and the mobility/workload axes: "mobility" (off or any
// registered model — see mobility.Names()), "speed" and "pause"
// (waypoint m/s and dwell seconds; they override the mobility axis or
// the scenario file's mobility block, one of which must be present),
// and "clients" (gateway-workload population size, overriding the
// scenario file's workload block or synthesizing an always-on downlink
// population when the campaign has none).
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// ParseSweep parses the CLI sweep syntax "axis=v1,v2,..." into an Axis.
// Integer ranges expand: "hops=2..8" is hops 2,3,...,8.
func ParseSweep(s string) (Axis, error) {
	name, vals, ok := strings.Cut(s, "=")
	if !ok || vals == "" {
		return Axis{}, fmt.Errorf("campaign: sweep %q is not axis=v1,v2,...", s)
	}
	name = strings.ToLower(strings.TrimSpace(name))
	switch name {
	case "topology", "mode", "controller", "routing", "hops", "rate", "cap", "nodes", "flap", "churn",
		"mobility", "speed", "pause", "clients":
	default:
		return Axis{}, fmt.Errorf("campaign: unknown sweep axis %q (want topology|mode|controller|routing|hops|rate|cap|nodes|flap|churn|mobility|speed|pause|clients)", name)
	}
	var out []string
	for _, v := range strings.Split(vals, ",") {
		v = strings.TrimSpace(v)
		if lo, hi, isRange := strings.Cut(v, ".."); isRange {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b {
				return Axis{}, fmt.Errorf("campaign: bad range %q in sweep %q", v, s)
			}
			for i := a; i <= b; i++ {
				out = append(out, strconv.Itoa(i))
			}
			continue
		}
		if v != "" {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return Axis{}, fmt.Errorf("campaign: sweep %q has no values", s)
	}
	return Axis{Name: name, Values: out}, nil
}

// ParseMode maps the CLI spellings of the four control modes. It shares
// scenario.ParseMode's spelling table so campaigns and scenario files
// can never disagree.
func ParseMode(s string) (ezflow.Mode, error) {
	return scenario.ParseMode(s)
}

// Point is one fully resolved grid point of a campaign.
type Point struct {
	Index    int         `json:"index"`
	Label    string      `json:"label"`
	Topology string      `json:"topology"`
	Mode     ezflow.Mode `json:"mode"`
	Hops     int         `json:"hops"`
	RateBps  float64     `json:"rate_bps"`
	CWCap    int         `json:"cw_cap"`
	Nodes    int         `json:"nodes"`
	// Controller is the registry controller deployed at this point; empty
	// derives the control plane from Mode, "802.11" pins the raw baseline.
	Controller string `json:"controller,omitempty"`
	// Routing is the registry routing strategy at this point; empty keeps
	// the topology builder's minimum-hop routes (the "bfs" default).
	Routing string `json:"routing,omitempty"`
	// Flap and Churn are the fault-injection axes.
	Flap  bool `json:"flap,omitempty"`
	Churn bool `json:"churn,omitempty"`
	// Mobility is the mobility model at this point: empty means the
	// point adds none (a scenario file's block still applies), "off"
	// pins the topology static even over such a block. All four
	// mobility/workload fields are omitempty on purpose: points that
	// predate them keep their serialized form, so historical cache keys
	// and campaign goldens are unchanged.
	Mobility string `json:"mobility,omitempty"`
	// SpeedMps and PauseSec override the waypoint parameters when > 0.
	SpeedMps float64 `json:"speed_mps,omitempty"`
	PauseSec float64 `json:"pause_sec,omitempty"`
	// Clients overrides (or synthesizes) the workload population size.
	Clients int `json:"clients,omitempty"`
	// Scenario is the scenario file's name when the campaign runs from
	// one (Spec.Scenario), replacing the topology fields above.
	Scenario string `json:"scenario,omitempty"`
}

func (p *Point) set(axis, value string) error {
	switch axis {
	case "topology":
		switch value {
		case "chain", "testbed", "scenario1", "scenario2", "tree", "grid", "random":
			p.Topology = value
		default:
			return fmt.Errorf("campaign: unknown topology %q", value)
		}
	case "mode":
		m, err := ParseMode(value)
		if err != nil {
			return err
		}
		p.Mode = m
	case "controller":
		v := strings.ToLower(value)
		if ctl.IsNone(v) {
			p.Controller = "802.11"
		} else {
			if _, ok := ctl.ByName(v); !ok {
				return fmt.Errorf("campaign: unknown controller %q (registered: %s, or 802.11 for none)", value, ctl.NamesList())
			}
			p.Controller = v
		}
	case "routing":
		v := strings.ToLower(value)
		if _, ok := routing.ByName(v); !ok {
			return fmt.Errorf("campaign: unknown routing strategy %q (registered: %s)", value, routing.NamesList())
		}
		p.Routing = v
	case "hops":
		n, err := strconv.Atoi(value)
		if err != nil || n < 1 {
			return fmt.Errorf("campaign: bad hop count %q", value)
		}
		p.Hops = n
	case "rate":
		r, err := strconv.ParseFloat(value, 64)
		if err != nil || r <= 0 {
			return fmt.Errorf("campaign: bad rate %q", value)
		}
		p.RateBps = r
	case "cap":
		c, err := strconv.Atoi(value)
		if err != nil || c < 0 {
			return fmt.Errorf("campaign: bad cw cap %q", value)
		}
		p.CWCap = c
	case "nodes":
		n, err := strconv.Atoi(value)
		if err != nil || n < 2 {
			return fmt.Errorf("campaign: bad node count %q", value)
		}
		p.Nodes = n
	case "mobility":
		v := strings.ToLower(value)
		if mobility.IsOff(v) {
			p.Mobility = "off"
		} else {
			if _, ok := mobility.ByName(v); !ok {
				return fmt.Errorf("campaign: unknown mobility model %q (registered: %s, or off for static)", value, mobility.NamesList())
			}
			p.Mobility = v
		}
	case "speed":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("campaign: bad speed %q (want m/s > 0)", value)
		}
		p.SpeedMps = v
	case "pause":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("campaign: bad pause %q (want seconds > 0)", value)
		}
		p.PauseSec = v
	case "clients":
		n, err := strconv.Atoi(value)
		if err != nil || n < 1 {
			return fmt.Errorf("campaign: bad client count %q", value)
		}
		p.Clients = n
	case "flap":
		b, err := parseBool01(value)
		if err != nil {
			return fmt.Errorf("campaign: bad flap value %q (want 0|1)", value)
		}
		p.Flap = b
	case "churn":
		b, err := parseBool01(value)
		if err != nil {
			return fmt.Errorf("campaign: bad churn value %q (want 0|1)", value)
		}
		p.Churn = b
	default:
		return fmt.Errorf("campaign: unknown axis %q", axis)
	}
	return nil
}

// parseBool01 parses the 0|1 (or false|true) axis values.
func parseBool01(v string) (bool, error) {
	switch strings.ToLower(v) {
	case "0", "false", "off":
		return false, nil
	case "1", "true", "on":
		return true, nil
	}
	return false, fmt.Errorf("not a boolean")
}

// gridSide maps the hops axis to the side of a grid topology, clamped to
// 2 (a 1×1 "grid" has no route to install). Label and scenario builder
// share this so the report can never disagree with the run.
func (p Point) gridSide() int {
	if p.Hops < 2 {
		return 2
	}
	return p.Hops
}

func (p Point) makeLabel() string {
	var b string
	if p.Scenario != "" {
		b = fmt.Sprintf("scenario=%s mode=%v", p.Scenario, p.Mode)
		if p.Controller != "" {
			b = fmt.Sprintf("scenario=%s ctl=%s", p.Scenario, p.Controller)
		}
		if p.RateBps > 0 { // only set when the rate axis is swept
			b += fmt.Sprintf(" rate=%g", p.RateBps)
		}
	} else {
		b = fmt.Sprintf("topology=%s mode=%v", p.Topology, p.Mode)
		if p.Controller != "" {
			b = fmt.Sprintf("topology=%s ctl=%s", p.Topology, p.Controller)
		}
		switch p.Topology {
		case "chain":
			b += fmt.Sprintf(" hops=%d", p.Hops)
		case "grid":
			b += fmt.Sprintf(" side=%d", p.gridSide())
		case "random":
			b += fmt.Sprintf(" nodes=%d", p.Nodes)
		}
		b += fmt.Sprintf(" rate=%g", p.RateBps)
	}
	if p.Routing != "" {
		// Only an explicitly swept/filed strategy reaches the label (and
		// with it DeriveSeed) — points without one keep their pre-routing
		// labels, so historical campaign seeds are unchanged.
		b += fmt.Sprintf(" routing=%s", p.Routing)
	}
	// Like routing above, the mobility/workload fragments append only
	// when a point sets them, so pre-mobility labels (and with them
	// DeriveSeed streams and cache keys) are untouched.
	if p.Mobility != "" {
		b += fmt.Sprintf(" mobility=%s", p.Mobility)
	}
	if p.SpeedMps > 0 {
		b += fmt.Sprintf(" speed=%g", p.SpeedMps)
	}
	if p.PauseSec > 0 {
		b += fmt.Sprintf(" pause=%g", p.PauseSec)
	}
	if p.Clients > 0 {
		b += fmt.Sprintf(" clients=%d", p.Clients)
	}
	if p.CWCap > 0 {
		b += fmt.Sprintf(" cap=%d", p.CWCap)
	}
	if p.Flap {
		b += " flap=1"
	}
	if p.Churn {
		b += " churn=1"
	}
	return b
}

// Enumerate expands the spec's axes into the cartesian grid of points,
// in deterministic axis-major order. With a scenario file attached, the
// base point mirrors the file (its name, mode and per-flow rates) and
// topology-shaped axes are rejected.
func (s Spec) Enumerate() ([]Point, error) {
	base := Point{Topology: "chain", Mode: ezflow.Mode80211, Hops: 4, RateBps: s.RateBps, Nodes: 12}
	if base.RateBps <= 0 {
		base.RateBps = 2e6
	}
	if s.sweeps("mode") && s.sweeps("controller") {
		return nil, fmt.Errorf("campaign: the mode and controller axes are mutually exclusive (controller subsumes mode)")
	}
	if s.sweeps("speed") || s.sweeps("pause") {
		fileMobile := s.Scenario != nil && s.Scenario.Mobility != nil && !mobility.IsOff(s.Scenario.Mobility.Model)
		if !s.sweeps("mobility") && !fileMobile {
			return nil, fmt.Errorf("campaign: the speed/pause axes need a mobility model (sweep mobility, or attach a scenario file with a mobility block)")
		}
	}
	if s.Scenario != nil {
		if err := s.Scenario.Validate(); err != nil {
			return nil, err
		}
		// Trial-build once (no run): dynamics events naming nodes absent
		// from the topology only surface at build time, and surfacing
		// them here as an error beats a raw panic inside a pool worker.
		if _, err := s.Scenario.Build(); err != nil {
			return nil, err
		}
		// The file's own Validate checks events against the file's
		// duration; when the file leaves duration unset, the campaign's
		// applies instead, and events scheduled past it would silently
		// never fire — reject that here, where it can still be an error.
		if s.Scenario.DurationSec <= 0 {
			eff := s.DurationSec
			if eff <= 0 {
				eff = ezflow.DefaultDuration.Seconds()
			}
			for i, ev := range s.Scenario.Dynamics {
				if ev.AtSec > eff {
					return nil, fmt.Errorf("campaign: scenario dynamics[%d] at_sec %g is beyond the campaign duration %gs (the file sets no duration_sec)", i, ev.AtSec, eff)
				}
			}
		}
		for _, ax := range s.Axes {
			switch ax.Name {
			case "topology", "hops", "nodes":
				return nil, fmt.Errorf("campaign: axis %q conflicts with the scenario file (its topology is fixed)", ax.Name)
			case "rate":
				// The rate axis rewrites the file's declared flows; with
				// none declared, the topology's built-in defaults would
				// run instead and every rate point would be a silent lie.
				if len(s.Scenario.Flows) == 0 {
					return nil, fmt.Errorf("campaign: the rate axis needs the scenario file to declare flows explicitly")
				}
			}
		}
		name := s.Scenario.Name
		if name == "" {
			name = s.Scenario.Topology.Kind
		}
		mode, err := ParseMode(s.Scenario.Mode)
		if err != nil {
			return nil, err
		}
		if s.Scenario.Controller != "" && s.sweeps("mode") {
			return nil, fmt.Errorf("campaign: the mode axis conflicts with the scenario file's controller %q (sweep controller instead)", s.Scenario.Controller)
		}
		// RateBps 0 marks "rates come from the file" until the rate axis
		// overrides it.
		base = Point{Scenario: name, Mode: mode, Controller: s.Scenario.Controller, Routing: s.Scenario.Routing, CWCap: s.Scenario.CWCap}
	}
	points := []Point{base}
	for _, ax := range s.Axes {
		next := make([]Point, 0, len(points)*len(ax.Values))
		for _, p := range points {
			for _, v := range ax.Values {
				q := p
				if err := q.set(ax.Name, v); err != nil {
					return nil, err
				}
				next = append(next, q)
			}
		}
		points = next
	}
	for i := range points {
		points[i].Index = i
		points[i].Label = points[i].makeLabel()
	}
	return points, nil
}

// DeriveSeed maps (campaign base seed, point label, replication index)
// to one run's seed. It is a pure function of its arguments — an FNV-1a
// hash of the label mixed with the base and replication through a
// splitmix64 finaliser — so a campaign's runs are seeded identically
// regardless of worker count or completion order, and different
// replications of the same point get well-separated streams.
func DeriveSeed(base int64, label string, rep int) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	x := h.Sum64() + uint64(base)*0x9E3779B97F4A7C15 + uint64(rep)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	s := int64(x)
	if s == 0 {
		s = 1
	}
	return s
}

// RunResult is the scalar outcome of one replication.
type RunResult struct {
	Point int    `json:"point"`
	Label string `json:"label"`
	Rep   int    `json:"rep"`
	Seed  int64  `json:"seed"`
	// AggKbps is the cumulative mean goodput across flows.
	AggKbps float64 `json:"agg_kbps"`
	// Fairness is Jain's index over per-flow mean throughputs.
	Fairness float64 `json:"fairness"`
	// MeanDelaySec averages the per-flow mean end-to-end delays.
	MeanDelaySec float64 `json:"mean_delay_sec"`
	// MaxQueuePkts is the largest sampled MAC backlog at any node.
	MaxQueuePkts float64 `json:"max_queue_pkts"`
	// RecoverySec is the slowest flow's fault-recovery time in seconds:
	// -1 when the run had no fault, -2 when some flow never recovered
	// (see ezflow.StabilityResult).
	RecoverySec float64 `json:"recovery_sec"`
	// TailQueuePkts is the largest relay backlog over the run's final
	// third after a fault (0 when the run had no fault) — the divergence
	// indicator of the stability experiments.
	TailQueuePkts float64 `json:"tail_queue_pkts"`
	// Failed marks a replication that produced no result: it panicked,
	// exceeded the per-run wall-clock timeout, or its assignment kept
	// killing workers until the supervisor gave up on it. Failed runs are
	// excluded from aggregation (Aggregate.FailedRuns counts them) and
	// never cached. Both fields are empty on healthy runs, so campaign
	// output without failures is byte-identical to pre-failure-model
	// output.
	Failed bool `json:"failed,omitempty"`
	// Error describes why the run failed; empty when Failed is false.
	Error string `json:"error,omitempty"`
	// FlowKbps is each flow's mean goodput.
	FlowKbps map[ezflow.FlowID]float64 `json:"flow_kbps"`

	// binKbps accumulates the run's per-bin throughput samples across
	// flows; the engine Merges these across replications into the pooled
	// bin statistics of Aggregate.BinKbps.
	binKbps stats.Welford
}

// Aggregate summarises one grid point across its replications.
type Aggregate struct {
	Point
	Reps         int           `json:"n_reps"`
	AggKbps      stats.Summary `json:"agg_kbps"`
	Fairness     stats.Summary `json:"fairness"`
	MeanDelaySec stats.Summary `json:"mean_delay_sec"`
	MaxQueuePkts stats.Summary `json:"max_queue_pkts"`
	// BinKbps pools every replication's per-bin throughput samples (a
	// Welford merge), capturing within-run variability on top of the
	// across-replication statistics above.
	BinKbps stats.Summary `json:"bin_kbps"`
	// RecoverySec summarises fault-recovery times across the
	// replications that recovered (N < Reps means some never did; N = 0
	// on fault-free points).
	RecoverySec stats.Summary `json:"recovery_sec"`
	// TailQueuePkts summarises the post-fault tail relay backlog across
	// replications of faulted runs.
	TailQueuePkts stats.Summary `json:"tail_queue_pkts"`
	// FailedRuns counts replications of this point that ended marked
	// failed (and are therefore absent from every summary above). A
	// non-zero count is the graceful-degradation marker: the campaign
	// completed, but this cell is partial.
	FailedRuns int `json:"failed_runs,omitempty"`
}

// Result is a completed campaign: per-point aggregates plus every
// individual replication, both in deterministic grid order. Elapsed is
// wall-clock time and deliberately excluded from serialisation so that
// JSON output is reproducible.
type Result struct {
	Spec    Spec          `json:"spec"`
	Points  []Aggregate   `json:"points"`
	Runs    []RunResult   `json:"runs"`
	Elapsed time.Duration `json:"-"`
}

// Engine executes campaigns on a worker pool.
type Engine struct {
	// Parallel is the maximum number of runs in flight; 0 selects
	// GOMAXPROCS. Results do not depend on it.
	Parallel int
	// Progress, when non-nil, is called after every completed run with
	// the number finished so far. Calls are serialised but arrive in
	// completion order, not grid order.
	Progress func(done, total int)
	// Cache, when non-nil, is consulted before every replication and
	// filled (atomically, via the store's write-temp-rename) as each
	// completes, so repeated sweeps only pay for new points and an
	// interrupted campaign resumes from its completed runs. Cache hits
	// return results byte-identical to the runs they replace — the
	// warm-cache golden tests pin this.
	Cache *fabric.Store
	// Interrupt, when non-nil, requests a graceful stop when closed: no
	// new replications start, in-flight ones finish (and reach the
	// cache), and Run returns ErrInterrupted.
	Interrupt <-chan struct{}
	// RunActive, when non-nil, is incremented for the duration of every
	// replication that actually simulates — cache hits never touch it.
	// It is the worker-utilization probe of cmd/ezserve.
	RunActive *atomic.Int64
	// RunTimeout, when positive, caps each replication's wall-clock time:
	// a run still simulating past the deadline is abandoned and recorded
	// as a structured per-run failure instead of hanging the campaign.
	// The abandoned goroutine keeps running until its simulation returns
	// (in-process isolation cannot kill it — use -shards for hard
	// isolation); its late result is discarded. 0 disables the timeout,
	// which is the default because a timeout makes output timing-
	// dependent and therefore non-reproducible on pathological runs.
	RunTimeout time.Duration
	// Faults, when non-nil, additionally receives this engine's fault
	// events — the aggregation hook for callers running many engines
	// (cmd/ezserve's /metrics gauges). The engine always tracks its own
	// per-campaign counters too; read them with FaultStats.
	Faults *FaultCounters

	hits, misses atomic.Uint64
	faults       FaultCounters
}

// CacheStats reports the engine's cumulative cache traffic across its
// Run calls (both zero when no Cache is attached). Safe to call
// concurrently with Run — ezserve polls it for live status.
func (e *Engine) CacheStats() CacheStats {
	return CacheStats{Hits: e.hits.Load(), Misses: e.misses.Load()}
}

// FaultStats reports the engine's cumulative fault-handling events
// (timeouts, recovered panics, failed runs). Safe to call concurrently
// with Run — ezserve polls it for live status.
func (e *Engine) FaultStats() FaultStats {
	return e.faults.Snapshot()
}

// ErrInterrupted is returned by Engine.Run when its Interrupt channel
// closed before the grid completed. Every replication finished by then
// has reached the cache, so rerunning the same spec resumes where the
// interrupted campaign stopped.
var ErrInterrupted = errors.New("campaign: interrupted before completion")

// effective resolves the spec's defaulted execution parameters: the
// replication count and the per-run simulated duration in seconds.
func (s Spec) effective() (reps int, durSec float64) {
	reps = s.Reps
	if reps <= 0 {
		reps = 1
	}
	durSec = s.DurationSec
	if durSec <= 0 {
		durSec = ezflow.DefaultDuration.Seconds()
	}
	return reps, durSec
}

// Run executes the campaign and returns the aggregated result.
func (e *Engine) Run(spec Spec) (*Result, error) {
	points, err := spec.Enumerate()
	if err != nil {
		return nil, err
	}
	reps, durSec := spec.effective()
	parallel := e.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}

	jobs := make([]func() RunResult, 0, len(points)*reps)
	for _, p := range points {
		for rep := 0; rep < reps; rep++ {
			p, rep := p, rep
			jobs = append(jobs, func() RunResult { return e.exec(spec, p, rep, durSec) })
		}
	}
	start := time.Now()
	runs, interrupted := runAllCancel(parallel, jobs, e.Progress, e.Interrupt)
	if interrupted {
		return nil, ErrInterrupted
	}
	res := assemble(spec, points, reps, runs)
	res.Elapsed = time.Since(start)
	return res, nil
}

// exec satisfies one replication: from the cache when possible,
// otherwise by simulating and (best-effort) caching the outcome. Cache
// write failures never fail a run — the result is simply recomputed
// next time. Failed runs (timeout, panic) are never cached: a timeout
// is environment-dependent and a panic may be fixed by the next code
// version, so both must re-execute on retry.
func (e *Engine) exec(spec Spec, p Point, rep int, durSec float64) RunResult {
	if e.Cache == nil {
		return e.simulate(spec, p, rep, durSec)
	}
	key, err := runKey(spec, p, rep, durSec)
	if err != nil {
		return e.simulate(spec, p, rep, durSec)
	}
	var w wireRun
	if e.Cache.Get(key, &w) {
		e.hits.Add(1)
		return w.run(p, rep)
	}
	e.misses.Add(1)
	rr := e.simulate(spec, p, rep, durSec)
	if !rr.Failed {
		e.Cache.Put(key, wireFromRun(rr)) //nolint:errcheck // cache writes are best-effort
	}
	return rr
}

// simulate runs one replication under the engine's isolation policy
// (panic recovery, optional wall-clock timeout), tracking worker
// utilization.
func (e *Engine) simulate(spec Spec, p Point, rep int, durSec float64) RunResult {
	if e.RunActive != nil {
		e.RunActive.Add(1)
		defer e.RunActive.Add(-1)
	}
	return e.runIsolated(spec, p, rep, durSec)
}

// assemble aggregates the grid's replications (in grid order: the run
// for (point i, rep r) sits at runs[i*reps+r]) into the campaign
// result. It is shared by the in-process engine and the sharded
// coordinator, which is what makes shard-merged output byte-identical
// to a single-process run. Failed replications are counted per point
// and excluded from every accumulator — a degraded cell reports the
// statistics of its surviving runs.
func assemble(spec Spec, points []Point, reps int, runs []RunResult) *Result {
	res := &Result{Spec: spec, Runs: runs}
	for i, p := range points {
		agg := Aggregate{Point: p, Reps: reps}
		var aggW, fairW, delayW, queueW, binW, recW, tailW stats.Welford
		for rep := 0; rep < reps; rep++ {
			r := runs[i*reps+rep]
			if r.Failed {
				agg.FailedRuns++
				continue
			}
			aggW.Add(r.AggKbps)
			fairW.Add(r.Fairness)
			delayW.Add(r.MeanDelaySec)
			queueW.Add(r.MaxQueuePkts)
			binW.Merge(r.binKbps)
			if r.RecoverySec >= 0 {
				recW.Add(r.RecoverySec)
			}
			if r.RecoverySec != -1 { // the run had a fault
				tailW.Add(r.TailQueuePkts)
			}
		}
		agg.AggKbps = aggW.Summarize()
		agg.Fairness = fairW.Summarize()
		agg.MeanDelaySec = delayW.Summarize()
		agg.MaxQueuePkts = queueW.Summarize()
		agg.BinKbps = binW.Summarize()
		agg.RecoverySec = recW.Summarize()
		agg.TailQueuePkts = tailW.Summarize()
		res.Points = append(res.Points, agg)
	}
	return res
}

func runOne(spec Spec, p Point, rep int, durSec float64) RunResult {
	seed := DeriveSeed(spec.BaseSeed, p.Label, rep)
	cfg := ezflow.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = ezflow.Time(durSec * float64(ezflow.Second))
	cfg.Mode = p.Mode
	cfg.MAC.HardwareCWCap = p.CWCap
	switch p.Controller {
	case "":
		// Mode drives the control plane (the legacy wrappers).
	case "802.11":
		cfg.Mode = ezflow.Mode80211 // the raw baseline, pinned explicitly
	default:
		cfg.Controller = p.Controller
	}
	if p.Routing != "" {
		cfg.Routing = p.Routing
	}
	applyMobilityWorkload(spec, p, &cfg)

	sc := buildScenario(spec, p, cfg)
	applyAxisFaults(sc, p)
	if spec.Obs {
		sc.EnableObs(obs.Config{Metrics: true, FlightRecorder: 4096})
	}
	res := sc.Run()
	rr := RunResult{
		Point: p.Index, Label: p.Label, Rep: rep, Seed: seed,
		AggKbps:     res.AggKbps,
		Fairness:    res.Fairness,
		RecoverySec: -1,
		FlowKbps:    make(map[ezflow.FlowID]float64, len(res.Flows)),
	}
	if st := res.Stability; st != nil {
		if st.Recovered {
			rr.RecoverySec = st.MaxRecoverySec
		} else {
			rr.RecoverySec = -2
		}
		rr.TailQueuePkts = st.TailMaxQueuePkts
	}
	// Iterate flows in sorted order: float accumulation order must not
	// depend on map iteration, or multi-flow results lose bit-for-bit
	// reproducibility.
	flowIDs := make([]ezflow.FlowID, 0, len(res.Flows))
	for f := range res.Flows {
		flowIDs = append(flowIDs, f)
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	var delaySum float64
	for _, f := range flowIDs {
		fr := res.Flows[f]
		rr.FlowKbps[f] = fr.MeanThroughputKbps
		delaySum += fr.MeanDelaySec
		for _, pt := range fr.Throughput.Points {
			rr.binKbps.Add(pt.V)
		}
	}
	if len(res.Flows) > 0 {
		rr.MeanDelaySec = delaySum / float64(len(res.Flows))
	}
	for _, tr := range res.QueueTraces {
		if m := tr.Max(); m > rr.MaxQueuePkts {
			rr.MaxQueuePkts = m
		}
	}
	return rr
}

func buildScenario(spec Spec, p Point, cfg ezflow.Config) *ezflow.Scenario {
	if spec.Scenario != nil {
		s := spec.Scenario
		// The scenario file is the experiment definition: its duration
		// wins over the campaign-level default when it sets one.
		if s.DurationSec > 0 {
			cfg.Duration = ezflow.Time(s.DurationSec * float64(ezflow.Second))
		}
		cfg.WarmupSkip = ezflow.Time(s.WarmupSec * float64(ezflow.Second))
		cfg.RecoveryTolerance = s.RecoveryTolerance
		// cfg.MAC.HardwareCWCap already carries the file's cap: Enumerate
		// seeded the base point from s.CWCap, and the cap axis overrides it.
		flows := s.FlowSpecs()
		if spec.sweeps("rate") {
			for i := range flows {
				flows[i].RateBps = p.RateBps
			}
		}
		sc, err := s.BuildWith(cfg, flows)
		if err != nil {
			panic(err)
		}
		return sc
	}
	rate := p.RateBps
	switch p.Topology {
	case "testbed":
		return ezflow.NewTestbed(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: rate},
			ezflow.FlowSpec{Flow: 2, RateBps: rate})
	case "scenario1":
		return ezflow.NewScenario1(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: rate},
			ezflow.FlowSpec{Flow: 2, RateBps: rate})
	case "scenario2":
		return ezflow.NewScenario2(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: rate},
			ezflow.FlowSpec{Flow: 2, RateBps: rate},
			ezflow.FlowSpec{Flow: 3, RateBps: rate})
	case "tree":
		return ezflow.NewTree(3, 2, cfg)
	case "grid":
		side := p.gridSide()
		return ezflow.NewGrid(side, side, cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: rate},
			ezflow.FlowSpec{Flow: 2, RateBps: rate})
	case "random":
		// Placement is seeded by the replication's run seed (already in
		// cfg.Seed), so each replication samples a fresh connected
		// deployment while staying fully reproducible.
		return ezflow.NewRandom(p.Nodes, 0, cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: rate})
	default:
		return ezflow.NewChain(p.Hops, cfg, ezflow.FlowSpec{Flow: 1, RateBps: rate})
	}
}

// applyMobilityWorkload resolves the mobility/workload axes into the
// run config. A point's model wins over the scenario file's mobility
// block ("off" suppresses it outright); speed/pause overrides apply to
// whichever base is active; a clients override rewrites the file's
// workload population, or synthesizes an always-on downlink one for
// campaigns without a file. Points setting none of the fields leave the
// config untouched — the file's blocks flow through BuildWith exactly
// as before the axes existed.
func applyMobilityWorkload(spec Spec, p Point, cfg *ezflow.Config) {
	// fileBase resolves the scenario file's mobility block once: a swept
	// model inherits the file's tuned options (speed, pause, tick, pins)
	// rather than resetting them to model defaults. Enumerate vetted the
	// block, so an error here cannot happen outside a hand-built Spec;
	// the run isolation layer turns the panic into a failed run.
	fileBase := func() *mobility.Config {
		if spec.Scenario == nil {
			return nil
		}
		mc, err := spec.Scenario.MobilityConfig()
		if err != nil {
			panic(err)
		}
		return mc
	}
	var base *mobility.Config
	switch {
	case p.Mobility == "off":
		cfg.Mobility = &mobility.Config{Model: "off"}
	case p.Mobility != "":
		base = fileBase()
		if base == nil {
			base = &mobility.Config{}
		}
		base.Model = p.Mobility
	case p.SpeedMps > 0 || p.PauseSec > 0:
		base = fileBase()
	}
	if base != nil {
		if p.SpeedMps > 0 {
			base.Opts.SpeedMps = p.SpeedMps
		}
		if p.PauseSec > 0 {
			base.Opts.PauseSec = p.PauseSec
		}
		cfg.Mobility = base
	}
	if p.Clients > 0 {
		w := &ezflow.WorkloadSpec{Clients: p.Clients}
		if spec.Scenario != nil && spec.Scenario.Workload != nil {
			w = spec.Scenario.WorkloadSpec()
			w.Clients = p.Clients
		}
		cfg.Workload = w
	}
}

// applyAxisFaults layers the flap/churn axes' perturbations onto a built
// scenario: the first flow's middle link is severed (flap) and/or its
// middle relay halted (churn) from 40% to 50% of the run, with BFS route
// repair at both edges. Points whose first flow has no relay (1-hop
// routes) skip churn rather than fail.
func applyAxisFaults(sc *ezflow.Scenario, p Point) {
	if !p.Flap && !p.Churn {
		return
	}
	flows := sc.Mesh.Flows()
	if len(flows) == 0 {
		return
	}
	f := flows[0]
	dur := sc.Cfg.Duration
	downAt, upAt := dur/5*2, dur/2
	script := &dynamics.Script{}
	if p.Flap {
		a, b := dynamics.MiddleLink(sc.Mesh, f)
		script.Events = append(script.Events, dynamics.Flap(a, b, downAt, upAt, true)...)
	}
	if p.Churn && len(sc.Mesh.Route(f)) >= 3 {
		n := dynamics.MiddleRelay(sc.Mesh, f)
		script.Events = append(script.Events, dynamics.Churn(n, downAt, upAt, false, true)...)
	}
	if len(script.Events) == 0 {
		return
	}
	if err := sc.AddDynamics(script); err != nil {
		panic(err)
	}
}
