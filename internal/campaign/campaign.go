// Package campaign is the experiment-orchestration layer of the
// repository: it fans independent ezflow.Scenario runs out across a pool
// of workers and aggregates replications into the statistics the paper's
// evaluation grid needs (mean, standard deviation, 95% confidence
// intervals, Jain-index distributions).
//
// The package has two layers. The generic layer — RunAll — executes a
// slice of independent jobs on up to GOMAXPROCS goroutines and returns
// results in submission order; internal/exp routes every figure/table
// experiment through it. The declarative layer — Spec, Engine, Sink —
// describes a parameter sweep (topology × mode × rate × hops × CW cap)
// with per-point seed replications, runs the whole grid, and emits the
// outcome through pluggable sinks (human-readable report, JSON, CSV).
//
// Determinism: every run's seed is derived purely from (base seed, point
// label, replication index) by DeriveSeed, and results are collected by
// grid position rather than completion order, so a campaign's output is
// byte-identical no matter how many workers execute it.
package campaign

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"ezflow"
	"ezflow/internal/stats"
)

// Spec declares a campaign: an ordered list of swept axes, the number of
// seed replications per grid point, and the shared run parameters.
type Spec struct {
	Name string `json:"name"`
	// Axes are the swept parameters, in sweep order. The grid is their
	// cartesian product; with no axes the campaign is a single point.
	Axes []Axis `json:"axes,omitempty"`
	// Reps is the number of independently seeded replications per point
	// (default 1).
	Reps int `json:"reps"`
	// BaseSeed feeds DeriveSeed; two campaigns with different base seeds
	// draw disjoint replication streams.
	BaseSeed int64 `json:"base_seed"`
	// DurationSec is the simulated duration of each run (default 600 s,
	// the paper's standard horizon).
	DurationSec float64 `json:"duration_sec"`
	// RateBps is the per-flow CBR rate when "rate" is not swept
	// (default 2 Mb/s, the paper's saturating source).
	RateBps float64 `json:"rate_bps"`
}

// Axis is one swept parameter. Known names: "topology"
// (chain|testbed|scenario1|scenario2|tree|grid|random), "mode"
// (802.11|ezflow|penalty|diffq), "hops" (chain length; also the side of a
// grid topology, clamped to >= 2), "rate" (bit/s), "cap" (hardware CWmin
// cap, 0 = none), and "nodes" (node count of the random topology, whose
// placement is seeded per replication).
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// ParseSweep parses the CLI sweep syntax "axis=v1,v2,..." into an Axis.
// Integer ranges expand: "hops=2..8" is hops 2,3,...,8.
func ParseSweep(s string) (Axis, error) {
	name, vals, ok := strings.Cut(s, "=")
	if !ok || vals == "" {
		return Axis{}, fmt.Errorf("campaign: sweep %q is not axis=v1,v2,...", s)
	}
	name = strings.ToLower(strings.TrimSpace(name))
	switch name {
	case "topology", "mode", "hops", "rate", "cap", "nodes":
	default:
		return Axis{}, fmt.Errorf("campaign: unknown sweep axis %q (want topology|mode|hops|rate|cap|nodes)", name)
	}
	var out []string
	for _, v := range strings.Split(vals, ",") {
		v = strings.TrimSpace(v)
		if lo, hi, isRange := strings.Cut(v, ".."); isRange {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b {
				return Axis{}, fmt.Errorf("campaign: bad range %q in sweep %q", v, s)
			}
			for i := a; i <= b; i++ {
				out = append(out, strconv.Itoa(i))
			}
			continue
		}
		if v != "" {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return Axis{}, fmt.Errorf("campaign: sweep %q has no values", s)
	}
	return Axis{Name: name, Values: out}, nil
}

// ParseMode maps the CLI spellings of the four control modes.
func ParseMode(s string) (ezflow.Mode, error) {
	switch strings.ToLower(s) {
	case "802.11", "80211", "plain":
		return ezflow.Mode80211, nil
	case "ezflow", "ez-flow":
		return ezflow.ModeEZFlow, nil
	case "penalty":
		return ezflow.ModePenalty, nil
	case "diffq":
		return ezflow.ModeDiffQ, nil
	}
	return 0, fmt.Errorf("campaign: unknown mode %q (want 802.11|ezflow|penalty|diffq)", s)
}

// Point is one fully resolved grid point of a campaign.
type Point struct {
	Index    int         `json:"index"`
	Label    string      `json:"label"`
	Topology string      `json:"topology"`
	Mode     ezflow.Mode `json:"mode"`
	Hops     int         `json:"hops"`
	RateBps  float64     `json:"rate_bps"`
	CWCap    int         `json:"cw_cap"`
	Nodes    int         `json:"nodes"`
}

func (p *Point) set(axis, value string) error {
	switch axis {
	case "topology":
		switch value {
		case "chain", "testbed", "scenario1", "scenario2", "tree", "grid", "random":
			p.Topology = value
		default:
			return fmt.Errorf("campaign: unknown topology %q", value)
		}
	case "mode":
		m, err := ParseMode(value)
		if err != nil {
			return err
		}
		p.Mode = m
	case "hops":
		n, err := strconv.Atoi(value)
		if err != nil || n < 1 {
			return fmt.Errorf("campaign: bad hop count %q", value)
		}
		p.Hops = n
	case "rate":
		r, err := strconv.ParseFloat(value, 64)
		if err != nil || r <= 0 {
			return fmt.Errorf("campaign: bad rate %q", value)
		}
		p.RateBps = r
	case "cap":
		c, err := strconv.Atoi(value)
		if err != nil || c < 0 {
			return fmt.Errorf("campaign: bad cw cap %q", value)
		}
		p.CWCap = c
	case "nodes":
		n, err := strconv.Atoi(value)
		if err != nil || n < 2 {
			return fmt.Errorf("campaign: bad node count %q", value)
		}
		p.Nodes = n
	default:
		return fmt.Errorf("campaign: unknown axis %q", axis)
	}
	return nil
}

// gridSide maps the hops axis to the side of a grid topology, clamped to
// 2 (a 1×1 "grid" has no route to install). Label and scenario builder
// share this so the report can never disagree with the run.
func (p Point) gridSide() int {
	if p.Hops < 2 {
		return 2
	}
	return p.Hops
}

func (p Point) makeLabel() string {
	b := fmt.Sprintf("topology=%s mode=%v", p.Topology, p.Mode)
	switch p.Topology {
	case "chain":
		b += fmt.Sprintf(" hops=%d", p.Hops)
	case "grid":
		b += fmt.Sprintf(" side=%d", p.gridSide())
	case "random":
		b += fmt.Sprintf(" nodes=%d", p.Nodes)
	}
	b += fmt.Sprintf(" rate=%g", p.RateBps)
	if p.CWCap > 0 {
		b += fmt.Sprintf(" cap=%d", p.CWCap)
	}
	return b
}

// Enumerate expands the spec's axes into the cartesian grid of points,
// in deterministic axis-major order.
func (s Spec) Enumerate() ([]Point, error) {
	base := Point{Topology: "chain", Mode: ezflow.Mode80211, Hops: 4, RateBps: s.RateBps, Nodes: 12}
	if base.RateBps <= 0 {
		base.RateBps = 2e6
	}
	points := []Point{base}
	for _, ax := range s.Axes {
		next := make([]Point, 0, len(points)*len(ax.Values))
		for _, p := range points {
			for _, v := range ax.Values {
				q := p
				if err := q.set(ax.Name, v); err != nil {
					return nil, err
				}
				next = append(next, q)
			}
		}
		points = next
	}
	for i := range points {
		points[i].Index = i
		points[i].Label = points[i].makeLabel()
	}
	return points, nil
}

// DeriveSeed maps (campaign base seed, point label, replication index)
// to one run's seed. It is a pure function of its arguments — an FNV-1a
// hash of the label mixed with the base and replication through a
// splitmix64 finaliser — so a campaign's runs are seeded identically
// regardless of worker count or completion order, and different
// replications of the same point get well-separated streams.
func DeriveSeed(base int64, label string, rep int) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	x := h.Sum64() + uint64(base)*0x9E3779B97F4A7C15 + uint64(rep)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	s := int64(x)
	if s == 0 {
		s = 1
	}
	return s
}

// RunResult is the scalar outcome of one replication.
type RunResult struct {
	Point int    `json:"point"`
	Label string `json:"label"`
	Rep   int    `json:"rep"`
	Seed  int64  `json:"seed"`
	// AggKbps is the cumulative mean goodput across flows.
	AggKbps float64 `json:"agg_kbps"`
	// Fairness is Jain's index over per-flow mean throughputs.
	Fairness float64 `json:"fairness"`
	// MeanDelaySec averages the per-flow mean end-to-end delays.
	MeanDelaySec float64 `json:"mean_delay_sec"`
	// MaxQueuePkts is the largest sampled MAC backlog at any node.
	MaxQueuePkts float64 `json:"max_queue_pkts"`
	// FlowKbps is each flow's mean goodput.
	FlowKbps map[ezflow.FlowID]float64 `json:"flow_kbps"`

	// binKbps accumulates the run's per-bin throughput samples across
	// flows; the engine Merges these across replications into the pooled
	// bin statistics of Aggregate.BinKbps.
	binKbps stats.Welford
}

// Aggregate summarises one grid point across its replications.
type Aggregate struct {
	Point
	Reps         int           `json:"n_reps"`
	AggKbps      stats.Summary `json:"agg_kbps"`
	Fairness     stats.Summary `json:"fairness"`
	MeanDelaySec stats.Summary `json:"mean_delay_sec"`
	MaxQueuePkts stats.Summary `json:"max_queue_pkts"`
	// BinKbps pools every replication's per-bin throughput samples (a
	// Welford merge), capturing within-run variability on top of the
	// across-replication statistics above.
	BinKbps stats.Summary `json:"bin_kbps"`
}

// Result is a completed campaign: per-point aggregates plus every
// individual replication, both in deterministic grid order. Elapsed is
// wall-clock time and deliberately excluded from serialisation so that
// JSON output is reproducible.
type Result struct {
	Spec    Spec          `json:"spec"`
	Points  []Aggregate   `json:"points"`
	Runs    []RunResult   `json:"runs"`
	Elapsed time.Duration `json:"-"`
}

// Engine executes campaigns on a worker pool.
type Engine struct {
	// Parallel is the maximum number of runs in flight; 0 selects
	// GOMAXPROCS. Results do not depend on it.
	Parallel int
	// Progress, when non-nil, is called after every completed run with
	// the number finished so far. Calls are serialised but arrive in
	// completion order, not grid order.
	Progress func(done, total int)
}

// Run executes the campaign and returns the aggregated result.
func (e *Engine) Run(spec Spec) (*Result, error) {
	points, err := spec.Enumerate()
	if err != nil {
		return nil, err
	}
	reps := spec.Reps
	if reps <= 0 {
		reps = 1
	}
	durSec := spec.DurationSec
	if durSec <= 0 {
		durSec = 600
	}
	parallel := e.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}

	jobs := make([]func() RunResult, 0, len(points)*reps)
	for _, p := range points {
		for rep := 0; rep < reps; rep++ {
			p, rep := p, rep
			jobs = append(jobs, func() RunResult { return runOne(spec, p, rep, durSec) })
		}
	}
	start := time.Now()
	runs := runAll(parallel, jobs, e.Progress)
	res := &Result{Spec: spec, Runs: runs, Elapsed: time.Since(start)}

	for i, p := range points {
		agg := Aggregate{Point: p, Reps: reps}
		var aggW, fairW, delayW, queueW, binW stats.Welford
		for rep := 0; rep < reps; rep++ {
			r := runs[i*reps+rep]
			aggW.Add(r.AggKbps)
			fairW.Add(r.Fairness)
			delayW.Add(r.MeanDelaySec)
			queueW.Add(r.MaxQueuePkts)
			binW.Merge(r.binKbps)
		}
		agg.AggKbps = aggW.Summarize()
		agg.Fairness = fairW.Summarize()
		agg.MeanDelaySec = delayW.Summarize()
		agg.MaxQueuePkts = queueW.Summarize()
		agg.BinKbps = binW.Summarize()
		res.Points = append(res.Points, agg)
	}
	return res, nil
}

func runOne(spec Spec, p Point, rep int, durSec float64) RunResult {
	seed := DeriveSeed(spec.BaseSeed, p.Label, rep)
	cfg := ezflow.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = ezflow.Time(durSec * float64(ezflow.Second))
	cfg.Mode = p.Mode
	cfg.MAC.HardwareCWCap = p.CWCap

	res := buildScenario(p, cfg).Run()
	rr := RunResult{
		Point: p.Index, Label: p.Label, Rep: rep, Seed: seed,
		AggKbps:  res.AggKbps,
		Fairness: res.Fairness,
		FlowKbps: make(map[ezflow.FlowID]float64, len(res.Flows)),
	}
	// Iterate flows in sorted order: float accumulation order must not
	// depend on map iteration, or multi-flow results lose bit-for-bit
	// reproducibility.
	flowIDs := make([]ezflow.FlowID, 0, len(res.Flows))
	for f := range res.Flows {
		flowIDs = append(flowIDs, f)
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	var delaySum float64
	for _, f := range flowIDs {
		fr := res.Flows[f]
		rr.FlowKbps[f] = fr.MeanThroughputKbps
		delaySum += fr.MeanDelaySec
		for _, pt := range fr.Throughput.Points {
			rr.binKbps.Add(pt.V)
		}
	}
	if len(res.Flows) > 0 {
		rr.MeanDelaySec = delaySum / float64(len(res.Flows))
	}
	for _, tr := range res.QueueTraces {
		if m := tr.Max(); m > rr.MaxQueuePkts {
			rr.MaxQueuePkts = m
		}
	}
	return rr
}

func buildScenario(p Point, cfg ezflow.Config) *ezflow.Scenario {
	rate := p.RateBps
	switch p.Topology {
	case "testbed":
		return ezflow.NewTestbed(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: rate},
			ezflow.FlowSpec{Flow: 2, RateBps: rate})
	case "scenario1":
		return ezflow.NewScenario1(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: rate},
			ezflow.FlowSpec{Flow: 2, RateBps: rate})
	case "scenario2":
		return ezflow.NewScenario2(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: rate},
			ezflow.FlowSpec{Flow: 2, RateBps: rate},
			ezflow.FlowSpec{Flow: 3, RateBps: rate})
	case "tree":
		return ezflow.NewTree(3, 2, cfg)
	case "grid":
		side := p.gridSide()
		return ezflow.NewGrid(side, side, cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: rate},
			ezflow.FlowSpec{Flow: 2, RateBps: rate})
	case "random":
		// Placement is seeded by the replication's run seed (already in
		// cfg.Seed), so each replication samples a fresh connected
		// deployment while staying fully reproducible.
		return ezflow.NewRandom(p.Nodes, 0, cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: rate})
	default:
		return ezflow.NewChain(p.Hops, cfg, ezflow.FlowSpec{Flow: 1, RateBps: rate})
	}
}
