package campaign

import (
	"bytes"
	"strings"
	"testing"
)

// routingSpec sweeps the whole routing registry over the random-disk
// topology in both control planes with two replications — the
// determinism workload of the routing subsystem.
func routingSpec() Spec {
	return Spec{
		Name: "routing-determinism",
		Axes: []Axis{
			{Name: "topology", Values: []string{"random"}},
			{Name: "routing", Values: []string{"bfs", "etx", "kshortest"}},
			{Name: "mode", Values: []string{"802.11", "ezflow"}},
		},
		Reps:        2,
		BaseSeed:    7,
		DurationSec: 20,
	}
}

// TestRoutingCampaignDeterminism pins the routing axis to byte-identical
// JSON and CSV output for any worker count — every strategy runs
// concurrently with every other at parallel 4 and 7, so under -race this
// doubles as the strategy-isolation test.
func TestRoutingCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	emit := func(parallel int) (string, string) {
		eng := Engine{Parallel: parallel}
		res, err := eng.Run(routingSpec())
		if err != nil {
			t.Fatal(err)
		}
		var jb, cb bytes.Buffer
		if err := (JSONSink{W: &jb}).Emit(res); err != nil {
			t.Fatal(err)
		}
		if err := (CSVSink{W: &cb}).Emit(res); err != nil {
			t.Fatal(err)
		}
		return jb.String(), cb.String()
	}
	wantJSON, wantCSV := emit(1)
	if !strings.Contains(wantJSON, "routing=etx") {
		t.Fatalf("labels missing routing fragment:\n%.400s", wantJSON)
	}
	for _, parallel := range []int{4, 7} {
		js, cs := emit(parallel)
		if js != wantJSON {
			t.Errorf("parallel=%d: JSON diverges from parallel=1", parallel)
		}
		if cs != wantCSV {
			t.Errorf("parallel=%d: CSV diverges from parallel=1", parallel)
		}
	}
}

// TestRoutingAxisValidation covers the strict-validation satellite:
// unknown strategies fail at enumeration with the registry listing.
func TestRoutingAxisValidation(t *testing.T) {
	if _, err := ParseSweep("routing=bfs,etx,kshortest"); err != nil {
		t.Errorf("valid routing sweep rejected: %v", err)
	}
	ax, err := ParseSweep("routing=warp-drive")
	if err != nil {
		t.Fatalf("ParseSweep rejects values eagerly: %v", err)
	}
	s := Spec{Axes: []Axis{ax}}
	if _, err := s.Enumerate(); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Errorf("unknown strategy: got %v, want error listing the registry", err)
	}
	if _, err := ParseSweep("route=bfs"); err == nil {
		t.Error("misspelled axis name accepted")
	}
}

// TestRoutingPointSemantics checks names reach the point lowercased and
// the label only grows a routing fragment when one is set — historical
// labels (and with them DeriveSeed streams) must stay untouched.
func TestRoutingPointSemantics(t *testing.T) {
	var p Point
	if err := p.set("routing", "ETX"); err != nil {
		t.Fatal(err)
	}
	if p.Routing != "etx" {
		t.Errorf("routing = %q, want lowercased etx", p.Routing)
	}
	if err := p.set("routing", "nope"); err == nil {
		t.Error("unknown strategy accepted")
	}

	spec := Spec{Axes: []Axis{{Name: "mode", Values: []string{"802.11"}}}}
	points, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(points[0].Label, "routing=") {
		t.Errorf("unswept point grew a routing fragment: %q", points[0].Label)
	}
	spec.Axes = append(spec.Axes, Axis{Name: "routing", Values: []string{"kshortest"}})
	points, err = spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(points[0].Label, "routing=kshortest") {
		t.Errorf("swept point label misses the fragment: %q", points[0].Label)
	}
}
