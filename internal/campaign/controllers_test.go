package campaign

import (
	"bytes"
	"strings"
	"testing"

	"ezflow"
)

// controllerSpec sweeps the whole controller registry (plus the raw
// 802.11 baseline) over a 4-hop chain, statically and under the flap
// fault, with two replications — the determinism workload of the
// controller subsystem.
func controllerSpec() Spec {
	return Spec{
		Name: "controller-determinism",
		Axes: []Axis{
			{Name: "controller", Values: []string{"802.11", "staticcap", "backpressure", "feedback", "ezflow", "penalty", "diffq"}},
			{Name: "flap", Values: []string{"0", "1"}},
		},
		Reps:        2,
		BaseSeed:    5,
		DurationSec: 20,
	}
}

// TestControllerCampaignDeterminism pins the controller axis to
// byte-identical JSON and CSV output for any worker count — every
// controller family runs concurrently with every other at parallel 4 and
// 7, so under -race this doubles as the controller-isolation test.
func TestControllerCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	emit := func(parallel int) (string, string) {
		eng := Engine{Parallel: parallel}
		res, err := eng.Run(controllerSpec())
		if err != nil {
			t.Fatal(err)
		}
		var jb, cb bytes.Buffer
		if err := (JSONSink{W: &jb}).Emit(res); err != nil {
			t.Fatal(err)
		}
		if err := (CSVSink{W: &cb}).Emit(res); err != nil {
			t.Fatal(err)
		}
		return jb.String(), cb.String()
	}
	wantJSON, wantCSV := emit(1)
	if !strings.Contains(wantJSON, "ctl=backpressure") {
		t.Fatalf("labels missing controller fragment:\n%.400s", wantJSON)
	}
	for _, parallel := range []int{4, 7} {
		js, cs := emit(parallel)
		if js != wantJSON {
			t.Errorf("parallel=%d: JSON diverges from parallel=1", parallel)
		}
		if cs != wantCSV {
			t.Errorf("parallel=%d: CSV diverges from parallel=1", parallel)
		}
	}
}

// TestControllerAxisValidation covers the strict-validation satellite:
// unknown controllers fail, and the mode and controller axes are mutually
// exclusive.
func TestControllerAxisValidation(t *testing.T) {
	if _, err := ParseSweep("controller=ezflow,backpressure"); err != nil {
		t.Errorf("valid controller sweep rejected: %v", err)
	}
	ax, err := ParseSweep("controller=bogus")
	if err != nil {
		t.Fatalf("ParseSweep rejects values eagerly: %v", err)
	}
	s := Spec{Axes: []Axis{ax}}
	if _, err := s.Enumerate(); err == nil {
		t.Error("unknown controller enumerated without error")
	}
	s = Spec{Axes: []Axis{
		{Name: "mode", Values: []string{"802.11", "ezflow"}},
		{Name: "controller", Values: []string{"ezflow"}},
	}}
	if _, err := s.Enumerate(); err == nil {
		t.Error("mode+controller axes enumerated without error")
	}
}

// TestControllerPointSemantics checks the 802.11 spelling pins the raw
// baseline and registry names reach the config.
func TestControllerPointSemantics(t *testing.T) {
	var p Point
	p.Mode = ezflow.ModeEZFlow
	if err := p.set("controller", "off"); err != nil {
		t.Fatal(err)
	}
	if p.Controller != "802.11" {
		t.Errorf("off canonicalised to %q, want 802.11", p.Controller)
	}
	if err := p.set("controller", "feedback"); err != nil {
		t.Fatal(err)
	}
	if p.Controller != "feedback" {
		t.Errorf("controller = %q, want feedback", p.Controller)
	}
	if err := p.set("controller", "nope"); err == nil {
		t.Error("unknown controller accepted")
	}
}
