package campaign

import (
	"bytes"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"ezflow/internal/fabric"
)

// fabricSpec is the small grid the cache tests sweep: 2 points × 2 reps
// of a short chain run — enough to exercise aggregation (including the
// pooled bin statistics a lossy cache round trip would corrupt) while
// staying fast.
func fabricSpec() Spec {
	return Spec{
		Name:        "fabric-test",
		Axes:        []Axis{{Name: "hops", Values: []string{"2", "3"}}},
		Reps:        2,
		BaseSeed:    5,
		DurationSec: 5,
	}
}

// emit renders a result through both sinks, the byte-identity yardstick
// of every test below.
func emit(t *testing.T, res *Result) (js, cs []byte) {
	t.Helper()
	var jb, cb bytes.Buffer
	if err := (JSONSink{W: &jb}).Emit(res); err != nil {
		t.Fatal(err)
	}
	if err := (CSVSink{W: &cb}).Emit(res); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestRunKeyGolden pins the cache key of a fixed replication. Drift
// here means every deployed fabric store goes cold on upgrade — legal
// only as a deliberate schema bump, with this pin updated alongside.
func TestRunKeyGolden(t *testing.T) {
	defer SetCacheVersionForTest("golden-test-v1")()
	spec := Spec{Name: "pin", BaseSeed: 7, Reps: 2, DurationSec: 60}
	points, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	k, err := runKey(spec, points[0], 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	const want = "5dbe350149bf6001ac3c713529a95c6e9f700dfc010a9af372a7ab07e89112b8"
	if k.ID() != want {
		t.Errorf("run key drifted:\n got %s\nwant %s", k.ID(), want)
	}
	if k.Version() != "golden-test-v1" {
		t.Errorf("key version = %q", k.Version())
	}
	// The key is position-independent: the same point at another grid
	// index must hash identically, or extending a sweep misses old work.
	moved := points[0]
	moved.Index = 42
	k2, err := runKey(spec, moved, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if k2.ID() != k.ID() {
		t.Error("grid index leaked into the cache key")
	}
}

// TestWarmCacheReplay is the tentpole acceptance test: a warm-cache
// campaign performs zero simulations and emits JSON and CSV
// byte-identical to an uncached run.
func TestWarmCacheReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := fabricSpec()
	baseEng := Engine{Parallel: 1}
	baseRes, err := baseEng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantCSV := emit(t, baseRes)

	store, err := fabric.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}

	cold := Engine{Parallel: 1, Cache: store}
	coldRes, err := cold.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	js, cs := emit(t, coldRes)
	if !bytes.Equal(js, wantJSON) || !bytes.Equal(cs, wantCSV) {
		t.Error("cold cached run diverges from the uncached run")
	}
	if st := cold.CacheStats(); st.Hits != 0 || st.Misses != 4 {
		t.Errorf("cold stats = %+v, want 0 hits / 4 misses", st)
	}
	if st := store.Stats(); st.Puts != 4 {
		t.Errorf("store puts = %d, want 4", st.Puts)
	}

	var active atomic.Int64
	warm := Engine{Parallel: 1, Cache: store, RunActive: &active}
	warmRes, err := warm.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	js, cs = emit(t, warmRes)
	if !bytes.Equal(js, wantJSON) {
		t.Error("warm-cache JSON diverges from the uncached run")
	}
	if !bytes.Equal(cs, wantCSV) {
		t.Error("warm-cache CSV diverges from the uncached run")
	}
	if st := warm.CacheStats(); st.Hits != 4 || st.Misses != 0 {
		t.Errorf("warm stats = %+v, want 4 hits / 0 misses (zero simulations)", st)
	}
	if active.Load() != 0 {
		t.Errorf("RunActive = %d after the run", active.Load())
	}
}

// TestCacheVersionBumpInvalidates simulates a release: entries written
// under one code version must be recomputed — and garbage-collected —
// under the next.
func TestCacheVersionBumpInvalidates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	defer SetCacheVersionForTest("fabric-test-v1")()
	spec := fabricSpec()
	store, err := fabric.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	cold := Engine{Parallel: 1, Cache: store}
	if _, err := cold.Run(spec); err != nil {
		t.Fatal(err)
	}

	SetCacheVersionForTest("fabric-test-v2")
	bumped := Engine{Parallel: 1, Cache: store}
	if _, err := bumped.Run(spec); err != nil {
		t.Fatal(err)
	}
	if st := bumped.CacheStats(); st.Hits != 0 || st.Misses != 4 {
		t.Errorf("post-bump stats = %+v, want 0 hits / 4 misses", st)
	}
	if st := store.Stats(); st.Evictions != 4 {
		t.Errorf("store evictions = %d, want 4 (stale entries must be collected)", st.Evictions)
	}
	if store.Len() != 4 {
		t.Errorf("store has %d entries, want 4 fresh ones", store.Len())
	}

	// Same version again: everything hits.
	warm := Engine{Parallel: 1, Cache: store}
	if _, err := warm.Run(spec); err != nil {
		t.Fatal(err)
	}
	if st := warm.CacheStats(); st.Hits != 4 || st.Misses != 0 {
		t.Errorf("post-bump warm stats = %+v, want 4 hits / 0 misses", st)
	}
}

// TestInterruptResume pins the graceful-interrupt contract: an
// interrupted campaign returns ErrInterrupted, its completed
// replications are in the cache, and rerunning the same spec resumes —
// paying only for the runs the interruption cut off.
func TestInterruptResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := fabricSpec()
	store, err := fabric.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	interrupt := make(chan struct{})
	var once sync.Once
	eng := Engine{Parallel: 1, Cache: store, Interrupt: interrupt}
	eng.Progress = func(done, total int) {
		if done == 2 {
			once.Do(func() { close(interrupt) })
		}
	}
	res, err := eng.Run(spec)
	if err != ErrInterrupted {
		t.Fatalf("Run returned %v, want ErrInterrupted", err)
	}
	if res != nil {
		t.Fatal("interrupted Run returned a partial result")
	}
	// Serial pool: exactly the two finished runs are cached.
	if st := eng.CacheStats(); st.Misses != 2 {
		t.Errorf("interrupted stats = %+v, want 2 misses", st)
	}

	resume := Engine{Parallel: 1, Cache: store}
	resumeRes, err := resume.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := resume.CacheStats(); st.Hits != 2 || st.Misses != 2 {
		t.Errorf("resume stats = %+v, want 2 hits / 2 misses", st)
	}

	// And the resumed result matches an uncached run byte-for-byte.
	base := Engine{Parallel: 1}
	baseRes, err := base.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantCSV := emit(t, baseRes)
	js, cs := emit(t, resumeRes)
	if !bytes.Equal(js, wantJSON) || !bytes.Equal(cs, wantCSV) {
		t.Error("resumed campaign diverges from an uninterrupted run")
	}
}
