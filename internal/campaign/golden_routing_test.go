package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ezflow/internal/scenario"
)

// goldenRoutingSpec is the routing golden campaign: every registered
// strategy crossed with both control planes over a 16-node lossy random
// disk whose dynamics timeline forces two strategy-driven repairs (a
// link flap and a node churn, both with reroute). The bfs column pins
// the registry default byte-for-byte against the pre-registry simulator;
// etx and kshortest pin the quality-aware strategies' full output.
func goldenRoutingSpec(t *testing.T) Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden_routing_scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Name:     "golden-routing",
		Scenario: s,
		Axes: []Axis{
			{Name: "routing", Values: []string{"bfs", "etx", "kshortest"}},
			{Name: "mode", Values: []string{"802.11", "ezflow"}},
		},
		Reps:     2,
		BaseSeed: 13,
	}
}

// runGoldenRouting executes the routing golden campaign at the given
// worker count and returns the JSON and CSV sink outputs.
func runGoldenRouting(t *testing.T, parallel int) (js, cs []byte) {
	t.Helper()
	eng := Engine{Parallel: parallel}
	res, err := eng.Run(goldenRoutingSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	var jb, cb bytes.Buffer
	if err := (JSONSink{W: &jb}).Emit(res); err != nil {
		t.Fatal(err)
	}
	if err := (CSVSink{W: &cb}).Emit(res); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestGoldenRoutingCampaigns pins the routing axis byte-for-byte against
// committed goldens at several worker counts, mirroring
// TestGoldenDynamicsCampaigns. It is the acceptance test of the routing
// registry: a single changed hop in any strategy's path — at wiring or
// during a dynamics repair — changes delivered counts and fails this
// test.
//
// Regenerate (only after an intentional behaviour change) with
//
//	EZFLOW_UPDATE_GOLDEN=1 go test ./internal/campaign -run GoldenRouting
func TestGoldenRoutingCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	update := os.Getenv("EZFLOW_UPDATE_GOLDEN") != ""
	jsonPath := filepath.Join("testdata", "golden_routing.json")
	csvPath := filepath.Join("testdata", "golden_routing.csv")
	if update {
		js, cs := runGoldenRouting(t, 1)
		if err := os.WriteFile(jsonPath, js, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(csvPath, cs, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("updated routing goldens")
	}
	wantJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 4, 7} {
		name := fmt.Sprintf("parallel=%d", parallel)
		js, cs := runGoldenRouting(t, parallel)
		if !bytes.Equal(js, wantJSON) {
			t.Errorf("%s: JSON diverges from golden %s", name, jsonPath)
		}
		if !bytes.Equal(cs, wantCSV) {
			t.Errorf("%s: CSV diverges from golden %s", name, csvPath)
		}
	}
}
