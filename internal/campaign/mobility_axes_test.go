package campaign

import (
	"strings"
	"testing"

	"ezflow"
	"ezflow/internal/scenario"
)

// mobileAxisScenario is a minimal mobile scenario file for axis tests:
// a waypoint block with tuned (non-default) options and a bursty
// downlink workload, so inheritance through the axes is observable.
const mobileAxisScenario = `{
  "topology": {"kind": "grid", "width": 3, "height": 3},
  "duration_sec": 10,
  "mobility": {"model": "waypoint", "speed_mps": 9, "pause_sec": 3, "tick_sec": 0.25},
  "workload": {"kind": "uplink", "clients": 4, "rate_bps": 5e4, "on_mean_sec": 2, "off_mean_sec": 2}
}`

func parseMobileAxisScenario(t *testing.T) *scenario.Spec {
	t.Helper()
	s, err := scenario.Parse([]byte(mobileAxisScenario))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseSweepMobilityAxes(t *testing.T) {
	for _, good := range []string{"mobility=off,waypoint", "speed=2,8", "pause=0.5,2", "clients=4,16"} {
		if _, err := ParseSweep(good); err != nil {
			t.Errorf("ParseSweep(%q): %v", good, err)
		}
	}
	// Axis values are validated at enumeration, not parse: a bad model,
	// a non-positive speed, or a zero client count must fail Enumerate.
	for _, bad := range [][2]string{
		{"mobility", "teleport"},
		{"speed", "0"},
		{"speed", "-3"},
		{"pause", "x"},
		{"clients", "0"},
	} {
		ax := Axis{Name: bad[0], Values: []string{bad[1]}}
		spec := Spec{Axes: []Axis{{Name: "mobility", Values: []string{"waypoint"}}, ax}}
		if _, err := spec.Enumerate(); err == nil {
			t.Errorf("Enumerate with %s=%s did not fail", bad[0], bad[1])
		}
	}
}

// TestMobilityLabelsStable pins the label-compatibility contract: points
// that set no mobility/workload field keep their exact pre-mobility
// labels (and with them DeriveSeed streams and fabric cache keys), while
// points that do set them grow deterministic fragments.
func TestMobilityLabelsStable(t *testing.T) {
	plain := Spec{Axes: []Axis{{Name: "mode", Values: []string{"802.11", "ezflow"}}}}
	pts, err := plain.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		for _, frag := range []string{"mobility=", "speed=", "pause=", "clients="} {
			if strings.Contains(p.Label, frag) {
				t.Errorf("axis-free point grew fragment %q: %q", frag, p.Label)
			}
		}
	}
	if pts[0].Label != "topology=chain mode=802.11 hops=4 rate=2e+06" {
		t.Errorf("historical label changed: %q", pts[0].Label)
	}

	swept := Spec{Axes: []Axis{
		{Name: "mobility", Values: []string{"waypoint"}},
		{Name: "speed", Values: []string{"6"}},
		{Name: "pause", Values: []string{"1.5"}},
		{Name: "clients", Values: []string{"12"}},
	}}
	pts, err = swept.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	want := "mobility=waypoint speed=6 pause=1.5 clients=12"
	if !strings.Contains(pts[0].Label, want) {
		t.Errorf("label %q missing %q", pts[0].Label, want)
	}
}

func TestEnumerateSpeedNeedsMobility(t *testing.T) {
	speed := Axis{Name: "speed", Values: []string{"4"}}
	if _, err := (Spec{Axes: []Axis{speed}}).Enumerate(); err == nil {
		t.Error("speed axis without a mobility model did not fail")
	}
	withAxis := Spec{Axes: []Axis{{Name: "mobility", Values: []string{"waypoint"}}, speed}}
	if _, err := withAxis.Enumerate(); err != nil {
		t.Errorf("speed + mobility axis: %v", err)
	}
	withFile := Spec{Scenario: parseMobileAxisScenario(t), Axes: []Axis{speed}}
	if _, err := withFile.Enumerate(); err != nil {
		t.Errorf("speed + mobile scenario file: %v", err)
	}
}

// TestApplyMobilityWorkload exercises the axis-resolution semantics
// directly: off suppresses the file block, a swept model inherits the
// file's tuned options, speed/pause patch whichever base is active, and
// a clients override rewrites the file workload (or synthesizes one).
func TestApplyMobilityWorkload(t *testing.T) {
	file := parseMobileAxisScenario(t)

	t.Run("untouched", func(t *testing.T) {
		var cfg ezflow.Config
		applyMobilityWorkload(Spec{Scenario: file}, Point{}, &cfg)
		if cfg.Mobility != nil || cfg.Workload != nil {
			t.Error("axis-free point touched the config; the file block must flow through BuildWith")
		}
	})
	t.Run("off-suppresses-file", func(t *testing.T) {
		var cfg ezflow.Config
		applyMobilityWorkload(Spec{Scenario: file}, Point{Mobility: "off"}, &cfg)
		if cfg.Mobility == nil || cfg.Mobility.Model != "off" {
			t.Errorf("off point got %+v", cfg.Mobility)
		}
	})
	t.Run("model-inherits-file-opts", func(t *testing.T) {
		var cfg ezflow.Config
		applyMobilityWorkload(Spec{Scenario: file}, Point{Mobility: "waypoint"}, &cfg)
		if cfg.Mobility == nil || cfg.Mobility.Opts.SpeedMps != 9 || cfg.Mobility.Opts.PauseSec != 3 {
			t.Errorf("swept model lost the file's tuned opts: %+v", cfg.Mobility)
		}
	})
	t.Run("speed-overrides-file", func(t *testing.T) {
		var cfg ezflow.Config
		applyMobilityWorkload(Spec{Scenario: file}, Point{SpeedMps: 2, PauseSec: 0.5}, &cfg)
		if cfg.Mobility == nil || cfg.Mobility.Opts.SpeedMps != 2 || cfg.Mobility.Opts.PauseSec != 0.5 {
			t.Errorf("speed/pause override: %+v", cfg.Mobility)
		}
		if cfg.Mobility.Model != "waypoint" {
			t.Errorf("override changed the file's model: %q", cfg.Mobility.Model)
		}
	})
	t.Run("clients-rewrites-file-workload", func(t *testing.T) {
		var cfg ezflow.Config
		applyMobilityWorkload(Spec{Scenario: file}, Point{Clients: 7}, &cfg)
		if cfg.Workload == nil || cfg.Workload.Clients != 7 {
			t.Fatalf("clients override: %+v", cfg.Workload)
		}
		if cfg.Workload.Kind != ezflow.WorkloadUplink || cfg.Workload.OnMeanSec != 2 {
			t.Errorf("clients override dropped the file's workload shape: %+v", cfg.Workload)
		}
	})
	t.Run("clients-synthesizes-without-file", func(t *testing.T) {
		var cfg ezflow.Config
		applyMobilityWorkload(Spec{}, Point{Clients: 5}, &cfg)
		if cfg.Workload == nil || cfg.Workload.Clients != 5 || cfg.Workload.Kind != "" {
			t.Errorf("synthesized workload: %+v", cfg.Workload)
		}
	})
}
