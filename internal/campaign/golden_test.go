package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ezflow/internal/scenario"
)

// goldenTopologies names the scenario fixtures the golden campaigns run
// over: one grid and one random-disk deployment, each with a full
// dynamics timeline (link flap with reroute, node churn with queue drop,
// region-wide loss with save/restore) so every PHY mutation path — link
// severing, loss override and restore, halt/restart, repair-created
// links — is exercised under the byte-identity pin.
var goldenTopologies = []string{"grid", "random"}

func goldenSpec(t *testing.T, topo string) Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden_"+topo+"_scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Name:     "golden-" + topo,
		Scenario: s,
		Axes: []Axis{
			{Name: "mode", Values: []string{"802.11", "ezflow"}},
		},
		Reps:     2,
		BaseSeed: 11,
	}
}

// runGolden executes the golden campaign for one topology at the given
// worker count and returns the JSON and CSV sink outputs.
func runGolden(t *testing.T, topo string, parallel int) (js, cs []byte) {
	t.Helper()
	eng := Engine{Parallel: parallel}
	res, err := eng.Run(goldenSpec(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	var jb, cb bytes.Buffer
	if err := (JSONSink{W: &jb}).Emit(res); err != nil {
		t.Fatal(err)
	}
	if err := (CSVSink{W: &cb}).Emit(res); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestGoldenDynamicsCampaigns pins campaign output byte-for-byte against
// the committed goldens, for grid and random topologies with an active
// dynamics script, at several worker counts. It is the acceptance test
// of the PHY neighbor-index refactor: the indexed hot path must consume
// the RNG stream in exactly the order the O(N) implementation did, so a
// single changed erasure draw fails this test.
//
// Regenerate (only after an intentional behaviour change) with
//
//	EZFLOW_UPDATE_GOLDEN=1 go test ./internal/campaign -run Golden
func TestGoldenDynamicsCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	update := os.Getenv("EZFLOW_UPDATE_GOLDEN") != ""
	for _, topo := range goldenTopologies {
		jsonPath := filepath.Join("testdata", "golden_"+topo+".json")
		csvPath := filepath.Join("testdata", "golden_"+topo+".csv")
		if update {
			js, cs := runGolden(t, topo, 1)
			if err := os.WriteFile(jsonPath, js, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(csvPath, cs, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("updated %s goldens", topo)
		}
		wantJSON, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		wantCSV, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, parallel := range []int{1, 4, 7} {
			name := fmt.Sprintf("%s/parallel=%d", topo, parallel)
			js, cs := runGolden(t, topo, parallel)
			if !bytes.Equal(js, wantJSON) {
				t.Errorf("%s: JSON diverges from golden %s", name, jsonPath)
			}
			if !bytes.Equal(cs, wantCSV) {
				t.Errorf("%s: CSV diverges from golden %s", name, csvPath)
			}
		}
	}
}
