package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ezflow/internal/fabric"
)

// TestMain doubles the test binary as a shard worker: RunSharded tests
// point opts.Command at the binary itself with this variable set, so
// the worker protocol is exercised against real subprocesses without
// building ezcampaign first.
func TestMain(m *testing.M) {
	if os.Getenv("EZCAMPAIGN_TEST_WORKER") == "1" {
		if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workerCommand returns ShardOptions fields that re-exec this test
// binary in worker mode.
func workerCommand(t *testing.T) (cmd, env []string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return []string{exe}, []string{"EZCAMPAIGN_TEST_WORKER=1"}
}

// TestShardedMatchesInProcess is the shard-merge determinism pin: the
// same campaign, run in 1, 2, and 4 worker subprocesses, must emit
// JSON and CSV byte-identical to a single-process -parallel 1 run.
func TestShardedMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations in subprocesses")
	}
	spec := fabricSpec()
	base := Engine{Parallel: 1}
	baseRes, err := base.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantCSV := emit(t, baseRes)
	cmd, env := workerCommand(t)

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var progressed int
			res, cs, err := RunSharded(spec, ShardOptions{
				Shards:   shards,
				Command:  cmd,
				Env:      env,
				Parallel: 2,
				Progress: func(done, total int) { progressed = done },
			})
			if err != nil {
				t.Fatal(err)
			}
			js, csv := emit(t, res)
			if !bytes.Equal(js, wantJSON) {
				t.Error("sharded JSON diverges from the single-process run")
			}
			if !bytes.Equal(csv, wantCSV) {
				t.Error("sharded CSV diverges from the single-process run")
			}
			if cs.Hits != 0 || cs.Misses != 0 {
				t.Errorf("cache stats %+v without a cache dir", cs)
			}
			if progressed != len(baseRes.Runs) {
				t.Errorf("progress reached %d, want %d", progressed, len(baseRes.Runs))
			}
		})
	}
}

// TestShardedSharesCache checks workers populate and reuse one fabric
// directory: a cold sharded run misses everywhere, a second (at a
// different shard count) replays entirely from cache — byte-identical.
func TestShardedSharesCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations in subprocesses")
	}
	spec := fabricSpec()
	dir := filepath.Join(t.TempDir(), "cache")
	cmd, env := workerCommand(t)

	cold, coldStats, err := RunSharded(spec, ShardOptions{
		Shards: 2, Command: cmd, Env: env, CacheDir: dir, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Hits != 0 || coldStats.Misses != 4 {
		t.Errorf("cold stats = %+v, want 0 hits / 4 misses", coldStats)
	}

	warm, warmStats, err := RunSharded(spec, ShardOptions{
		Shards: 4, Command: cmd, Env: env, CacheDir: dir, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Hits != 4 || warmStats.Misses != 0 {
		t.Errorf("warm stats = %+v, want 4 hits / 0 misses", warmStats)
	}
	coldJSON, coldCSV := emit(t, cold)
	warmJSON, warmCSV := emit(t, warm)
	if !bytes.Equal(coldJSON, warmJSON) || !bytes.Equal(coldCSV, warmCSV) {
		t.Error("warm sharded replay diverges from the cold run")
	}
}

// TestWorkerRejectsBadAssignment checks a worker reports out-of-grid
// assignments as an error frame instead of running garbage.
func TestWorkerRejectsBadAssignment(t *testing.T) {
	in := workerInput{Spec: fabricSpec(), Assignments: []fabric.Assignment{{Point: 99, Rep: 0}}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := WorkerMain(bytes.NewReader(b), &out); err == nil {
		t.Fatal("WorkerMain accepted an out-of-grid assignment")
	}
	var f workerFrame
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatalf("worker wrote a non-frame response: %q", out.String())
	}
	if !strings.Contains(f.Error, "outside") {
		t.Errorf("error frame = %q, want an out-of-grid report", f.Error)
	}
}

// TestRunShardedNeedsCommand pins the configuration error path.
func TestRunShardedNeedsCommand(t *testing.T) {
	if _, _, err := RunSharded(fabricSpec(), ShardOptions{Shards: 2}); err == nil {
		t.Fatal("RunSharded ran without a worker command")
	}
}
