// Sharded multi-process execution: a campaign grid split across worker
// subprocesses speaking a line-oriented JSON protocol over stdio.
//
// The coordinator (RunSharded) enumerates the grid once, deals the
// (point, rep) replication jobs across shards with fabric.PlanShards,
// and launches one worker subprocess per shard. Each worker receives a
// single JSON document on stdin — the full campaign spec plus its
// assignment list — re-enumerates the grid (Enumerate is deterministic,
// so point indices agree by construction), executes its assignments on
// an in-process Engine (cache included, when a directory is shared),
// and streams one NDJSON frame per completed replication back on
// stdout, closing with a summary frame.
//
// Determinism argument: every replication's seed comes from
// DeriveSeed(base, label, rep) — a pure function — and the coordinator
// places each returned run at its grid position (point*reps + rep)
// rather than in arrival order. Partitioning and completion order are
// therefore invisible to the merged result, and assemble() produces
// output byte-identical to a single-process -parallel 1 run. The golden
// shard tests pin this at shard counts 1, 2, and 4.
package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"ezflow/internal/fabric"
)

// workerInput is the single JSON document a coordinator writes to a
// worker's stdin.
type workerInput struct {
	Spec        Spec                `json:"spec"`
	Assignments []fabric.Assignment `json:"assignments"`
	// CacheDir, when set, has the worker open (or create) the shared
	// fabric store there.
	CacheDir string `json:"cache_dir,omitempty"`
	// Parallel bounds the worker's in-process run concurrency.
	Parallel int `json:"parallel,omitempty"`
}

// workerFrame is one NDJSON message a worker writes to stdout: a
// completed replication, or the closing summary.
type workerFrame struct {
	Run *wireRun `json:"run,omitempty"`
	// Done marks the summary frame, carrying the worker's cache traffic.
	Done   bool   `json:"done,omitempty"`
	Hits   uint64 `json:"cache_hits,omitempty"`
	Misses uint64 `json:"cache_misses,omitempty"`
	// Error reports a worker-side failure (bad input, unknown point).
	Error string `json:"error,omitempty"`
}

// WorkerMain is the entry point of `ezcampaign -worker`: it decodes one
// workerInput document from r, executes the assigned replications, and
// streams result frames to w. It never writes anything but protocol
// frames to w — human diagnostics belong on stderr.
func WorkerMain(r io.Reader, w io.Writer) error {
	var in workerInput
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("campaign: worker reading input: %w", err)
	}
	bw := bufio.NewWriter(w)
	err := runWorker(in, bw)
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	return err
}

// runWorker executes one worker's assignments and streams frames to w.
func runWorker(in workerInput, w io.Writer) error {
	points, err := in.Spec.Enumerate()
	if err != nil {
		return writeWorkerError(w, err)
	}
	reps, durSec := in.Spec.effective()
	for _, a := range in.Assignments {
		if a.Point < 0 || a.Point >= len(points) || a.Rep < 0 || a.Rep >= reps {
			return writeWorkerError(w, fmt.Errorf("campaign: assignment (point %d, rep %d) outside the %dx%d grid", a.Point, a.Rep, len(points), reps))
		}
	}
	eng := &Engine{Parallel: in.Parallel}
	if in.CacheDir != "" {
		store, err := fabric.Open(in.CacheDir)
		if err != nil {
			return writeWorkerError(w, err)
		}
		eng.Cache = store
	}

	// Workers stream frames in completion order under a lock; the
	// coordinator reorders by grid position, so interleaving is free.
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	var encErr error
	jobs := make([]func() struct{}, len(in.Assignments))
	for i, a := range in.Assignments {
		a := a
		jobs[i] = func() struct{} {
			rr := eng.exec(in.Spec, points[a.Point], a.Rep, durSec)
			wr := wireFromRun(rr)
			mu.Lock()
			if err := enc.Encode(workerFrame{Run: &wr}); err != nil && encErr == nil {
				encErr = err
			}
			mu.Unlock()
			return struct{}{}
		}
	}
	runAll(in.Parallel, jobs, nil)
	if encErr != nil {
		return encErr
	}
	cs := eng.CacheStats()
	return enc.Encode(workerFrame{Done: true, Hits: cs.Hits, Misses: cs.Misses})
}

// writeWorkerError reports a worker-side failure as a protocol frame
// (so the coordinator sees the cause, not just a dead pipe) and as the
// worker's exit error.
func writeWorkerError(w io.Writer, err error) error {
	json.NewEncoder(w).Encode(workerFrame{Error: err.Error()}) //nolint:errcheck // the returned error already carries the cause
	return err
}

// ShardOptions configures a sharded campaign execution.
type ShardOptions struct {
	// Shards is the number of worker subprocesses (values < 1 mean 1).
	Shards int
	// Command is the argv launching one worker — typically
	// {os.Executable(), "-worker"}. The subprocess must read a
	// workerInput document on stdin and speak the frame protocol on
	// stdout; pointing this at an ssh wrapper shards across machines.
	Command []string
	// Env entries are appended to the inherited environment of every
	// worker.
	Env []string
	// CacheDir, when set, is the fabric store directory every worker
	// shares (atomic entry writes make concurrent access safe).
	CacheDir string
	// Parallel bounds each worker's in-process run concurrency; 0 lets
	// the worker pick GOMAXPROCS.
	Parallel int
	// Progress, when non-nil, is called after every completed
	// replication with the number finished so far, across all shards.
	Progress func(done, total int)
}

// RunSharded executes the campaign across worker subprocesses and
// returns the aggregated result plus the workers' combined cache
// traffic. The merged result is byte-identical to Engine.Run on the
// same spec (any Parallel): see the package comment for the argument.
func RunSharded(spec Spec, opts ShardOptions) (*Result, CacheStats, error) {
	var cs CacheStats
	points, err := spec.Enumerate()
	if err != nil {
		return nil, cs, err
	}
	if len(opts.Command) == 0 {
		return nil, cs, fmt.Errorf("campaign: RunSharded needs a worker command")
	}
	reps, _ := spec.effective()
	plan := fabric.PlanShards(len(points), reps, opts.Shards)
	total := len(points) * reps

	var (
		mu   sync.Mutex
		runs = make([]RunResult, total)
		got  = make([]bool, total)
		done int
	)
	start := time.Now()
	errs := make(chan error, len(plan))
	for shard, assignments := range plan {
		shard, assignments := shard, assignments
		go func() {
			errs <- runShard(spec, opts, assignments, func(f workerFrame) error {
				mu.Lock()
				defer mu.Unlock()
				if f.Done {
					cs.Hits += f.Hits
					cs.Misses += f.Misses
					return nil
				}
				r := f.Run
				if r.Point < 0 || r.Point >= len(points) || r.Rep < 0 || r.Rep >= reps {
					return fmt.Errorf("campaign: shard %d returned a run outside the grid (point %d, rep %d)", shard, r.Point, r.Rep)
				}
				i := r.Point*reps + r.Rep
				if got[i] {
					return fmt.Errorf("campaign: shard %d returned (point %d, rep %d) twice", shard, r.Point, r.Rep)
				}
				runs[i] = r.run(points[r.Point], r.Rep)
				got[i] = true
				done++
				if opts.Progress != nil {
					opts.Progress(done, total)
				}
				return nil
			})
		}()
	}
	for range plan {
		if e := <-errs; e != nil && err == nil {
			err = e
		}
	}
	if err != nil {
		return nil, cs, err
	}
	for i, ok := range got {
		if !ok {
			return nil, cs, fmt.Errorf("campaign: no shard returned (point %d, rep %d)", i/reps, i%reps)
		}
	}
	res := assemble(spec, points, reps, runs)
	res.Elapsed = time.Since(start)
	return res, cs, nil
}

// runShard launches one worker subprocess, feeds it its assignments,
// and forwards every frame it emits to sink.
func runShard(spec Spec, opts ShardOptions, assignments []fabric.Assignment, sink func(workerFrame) error) error {
	cmd := exec.Command(opts.Command[0], opts.Command[1:]...)
	cmd.Env = append(os.Environ(), opts.Env...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("campaign: starting worker %q: %w", opts.Command[0], err)
	}
	in := workerInput{Spec: spec, Assignments: assignments, CacheDir: opts.CacheDir, Parallel: opts.Parallel}
	encErr := json.NewEncoder(stdin).Encode(in)
	stdin.Close() //nolint:errcheck // best-effort; the worker sees EOF either way

	var frameErr error
	sawDone := false
	dec := json.NewDecoder(stdout)
	for {
		var f workerFrame
		if err := dec.Decode(&f); err != nil {
			if err != io.EOF && frameErr == nil {
				frameErr = fmt.Errorf("campaign: reading worker frames: %w", err)
			}
			break
		}
		if f.Error != "" {
			frameErr = fmt.Errorf("campaign: worker failed: %s", f.Error)
			break
		}
		if f.Run == nil && !f.Done {
			continue
		}
		if f.Done {
			sawDone = true
		}
		if err := sink(f); err != nil && frameErr == nil {
			frameErr = err
		}
	}
	// Drain whatever the worker still writes so it can never block on a
	// full pipe between our last read and its exit.
	io.Copy(io.Discard, stdout) //nolint:errcheck // draining only
	waitErr := cmd.Wait()
	switch {
	case frameErr != nil:
		return frameErr
	case encErr != nil:
		return fmt.Errorf("campaign: writing worker input: %w", encErr)
	case waitErr != nil:
		return fmt.Errorf("campaign: worker exited: %w", waitErr)
	case !sawDone:
		return fmt.Errorf("campaign: worker stream ended before its summary frame")
	}
	return nil
}
