// Sharded multi-process execution: a campaign grid split across worker
// subprocesses speaking a line-oriented JSON protocol over stdio, under
// a per-shard supervisor that survives worker failures.
//
// The coordinator (RunSharded) enumerates the grid once, deals the
// (point, rep) replication jobs across shards with fabric.PlanShards,
// and launches one supervisor per shard. Each supervisor runs a worker
// subprocess on the shard's unfinished assignments: the worker receives
// a single JSON document on stdin — the full campaign spec plus its
// assignment list — re-enumerates the grid (Enumerate is deterministic,
// so point indices agree by construction), executes its assignments on
// an in-process Engine (cache included, when a directory is shared),
// and streams one NDJSON frame per completed replication back on
// stdout, closing with a summary frame.
//
// Supervision: a worker that crashes, stalls past the liveness deadline,
// or emits a corrupt or protocol-violating stream (a truncated frame, a
// duplicate or out-of-assignment run, a premature summary) is killed and
// replaced, with only its unfinished assignments re-dealt to the
// replacement under capped exponential backoff — when a cache directory
// is shared, the replacement replays already-completed runs as hits, so
// retries re-simulate nothing. A shard that fails maxRetries consecutive
// times without completing a single new replication gives up on the
// first unfinished assignment: that run is recorded as a structured
// failure (RunResult.Failed) and the campaign completes degraded instead
// of aborting. Worker stderr is captured (last 4 KiB) and threaded into
// every failure report.
//
// Determinism argument: every replication's seed comes from
// DeriveSeed(base, label, rep) — a pure function — and the coordinator
// places each returned run at its grid position (point*reps + rep)
// rather than in arrival order. Partitioning, completion order, worker
// deaths, and reassignment are therefore invisible to the merged result,
// and assemble() produces output byte-identical to a single-process
// -parallel 1 run under any recoverable failure pattern. The golden
// shard tests pin this at shard counts 1, 2, and 4, and the chaos tests
// re-pin it under injected crash/hang/garble faults.
package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"ezflow/internal/fabric"
)

// workerInput is the single JSON document a coordinator writes to a
// worker's stdin.
type workerInput struct {
	Spec        Spec                `json:"spec"`
	Assignments []fabric.Assignment `json:"assignments"`
	// CacheDir, when set, has the worker open (or create) the shared
	// fabric store there.
	CacheDir string `json:"cache_dir,omitempty"`
	// Parallel bounds the worker's in-process run concurrency.
	Parallel int `json:"parallel,omitempty"`
	// RunTimeoutSec, when positive, caps each replication's wall-clock
	// seconds inside the worker (Engine.RunTimeout).
	RunTimeoutSec float64 `json:"run_timeout_sec,omitempty"`
}

// workerFrame is one NDJSON message a worker writes to stdout: a
// completed replication, or the closing summary.
type workerFrame struct {
	Run *wireRun `json:"run,omitempty"`
	// Done marks the summary frame, carrying the worker's cache traffic
	// and run-isolation tallies.
	Done   bool   `json:"done,omitempty"`
	Hits   uint64 `json:"cache_hits,omitempty"`
	Misses uint64 `json:"cache_misses,omitempty"`
	// RunsTimeout / RunsPanicked report the worker engine's isolation
	// events so the coordinator's fault counters see worker-side faults.
	RunsTimeout  uint64 `json:"runs_timeout,omitempty"`
	RunsPanicked uint64 `json:"runs_panicked,omitempty"`
	// Error reports a worker-side failure (bad input, unknown point).
	Error string `json:"error,omitempty"`
}

// WorkerMain is the entry point of `ezcampaign -worker`: it decodes one
// workerInput document from r, executes the assigned replications, and
// streams result frames to w. It never writes anything but protocol
// frames to w — human diagnostics belong on stderr. When the EZ_CHAOS
// environment variable is set, the worker sabotages its own stream at
// the prescribed frames (see chaos.go) — the test harness for the
// coordinator's supervision paths.
func WorkerMain(r io.Reader, w io.Writer) error {
	var in workerInput
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("campaign: worker reading input: %w", err)
	}
	chaos, err := parseChaos(os.Getenv(chaosEnv))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	err = runWorker(in, newChaosEmitter(bw, chaos))
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	return err
}

// runWorker executes one worker's assignments and streams frames
// through the emitter.
func runWorker(in workerInput, out *chaosEmitter) error {
	points, err := in.Spec.Enumerate()
	if err != nil {
		return writeWorkerError(out, err)
	}
	reps, durSec := in.Spec.effective()
	for _, a := range in.Assignments {
		if a.Point < 0 || a.Point >= len(points) || a.Rep < 0 || a.Rep >= reps {
			return writeWorkerError(out, fmt.Errorf("campaign: assignment (point %d, rep %d) outside the %dx%d grid", a.Point, a.Rep, len(points), reps))
		}
	}
	eng := &Engine{
		Parallel:   in.Parallel,
		RunTimeout: time.Duration(in.RunTimeoutSec * float64(time.Second)),
	}
	if in.CacheDir != "" {
		store, err := fabric.Open(in.CacheDir)
		if err != nil {
			return writeWorkerError(out, err)
		}
		eng.Cache = store
	}

	// Workers stream frames in completion order under a lock; the
	// coordinator reorders by grid position, so interleaving is free.
	var mu sync.Mutex
	var emitErr error
	jobs := make([]func() struct{}, len(in.Assignments))
	for i, a := range in.Assignments {
		a := a
		jobs[i] = func() struct{} {
			rr := eng.exec(in.Spec, points[a.Point], a.Rep, durSec)
			wr := wireFromRun(rr)
			mu.Lock()
			if err := out.emit(workerFrame{Run: &wr}); err != nil && emitErr == nil {
				emitErr = err
			}
			mu.Unlock()
			return struct{}{}
		}
	}
	runAll(in.Parallel, jobs, nil)
	if emitErr != nil {
		return emitErr
	}
	cs := eng.CacheStats()
	fs := eng.FaultStats()
	return out.emit(workerFrame{
		Done: true, Hits: cs.Hits, Misses: cs.Misses,
		RunsTimeout: fs.RunsTimeout, RunsPanicked: fs.RunsPanicked,
	})
}

// writeWorkerError reports a worker-side failure as a protocol frame
// (so the coordinator sees the cause, not just a dead pipe) and as the
// worker's exit error.
func writeWorkerError(out *chaosEmitter, err error) error {
	out.emit(workerFrame{Error: err.Error()}) //nolint:errcheck // the returned error already carries the cause
	return err
}

// ShardOptions configures a sharded campaign execution.
type ShardOptions struct {
	// Shards is the number of worker subprocesses (values < 1 mean 1).
	Shards int
	// Command is the argv launching one worker — typically
	// {os.Executable(), "-worker"}. The subprocess must read a
	// workerInput document on stdin and speak the frame protocol on
	// stdout; pointing this at an ssh wrapper shards across machines.
	Command []string
	// Env entries are appended to the inherited environment of every
	// worker.
	Env []string
	// CacheDir, when set, is the fabric store directory every worker
	// shares (atomic entry writes make concurrent access safe). A shared
	// cache is what makes supervision cheap: a replacement worker replays
	// its predecessor's completed runs as hits.
	CacheDir string
	// Parallel bounds each worker's in-process run concurrency; 0 lets
	// the worker pick GOMAXPROCS.
	Parallel int
	// RunTimeout, when positive, caps each replication's wall-clock time
	// inside every worker (see Engine.RunTimeout).
	RunTimeout time.Duration
	// Liveness is the longest a worker may go without emitting a frame
	// before the supervisor declares it hung, kills it, and re-deals its
	// unfinished assignments. It must comfortably exceed the slowest
	// single replication's wall time. 0 disables the deadline (a hung
	// worker then hangs its shard).
	Liveness time.Duration
	// MaxRetries is the number of consecutive worker failures without a
	// single newly completed replication the supervisor tolerates before
	// it gives up on the shard's first unfinished assignment and records
	// it as failed (default 3). Any completed replication resets the
	// count, so a worker that fails on every Nth run still finishes
	// everything else.
	MaxRetries int
	// Backoff is the base delay before relaunching a failed worker,
	// growing exponentially with consecutive no-progress failures and
	// capped at 64x (default 100ms, cap 6.4s).
	Backoff time.Duration
	// Faults, when non-nil, receives the coordinator's fault events
	// (worker failures/restarts, re-dealt and failed runs) plus the
	// isolation tallies workers report in their summary frames.
	Faults *FaultCounters
	// Progress, when non-nil, is called after every completed
	// replication with the number finished so far, across all shards.
	Progress func(done, total int)
}

// maxRetries resolves the consecutive-failure budget.
func (o ShardOptions) maxRetries() int {
	if o.MaxRetries <= 0 {
		return 3
	}
	return o.MaxRetries
}

// backoff resolves the relaunch delay after n consecutive no-progress
// failures (n >= 1).
func (o ShardOptions) backoff(n int) time.Duration {
	base := o.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	shift := n - 1
	if shift > 6 {
		shift = 6
	}
	return base << shift
}

// errShardFatal wraps worker errors that retrying cannot fix — a worker
// that read its input and rejected it (bad spec, out-of-grid
// assignment) is deterministic, so the supervisor aborts instead of
// burning its retry budget.
type errShardFatal struct{ err error }

func (e errShardFatal) Error() string { return e.err.Error() }
func (e errShardFatal) Unwrap() error { return e.err }

// shardMerge is the coordinator's shared grid bookkeeping: supervisors
// place completed replications at their grid position under one lock.
type shardMerge struct {
	points []Point
	reps   int

	mu   sync.Mutex
	runs []RunResult
	got  []bool
	done int
	cs   CacheStats
}

// record places one worker-reported run, validating it against the
// supervisor's pending set semantics: the caller guarantees (point,
// rep) was pending, so a duplicate here means two shards were dealt the
// same job — a planner bug worth crashing on.
func (m *shardMerge) record(r RunResult, progress func(done, total int)) error {
	i := r.Point*m.reps + r.Rep
	m.mu.Lock()
	if m.got[i] {
		m.mu.Unlock()
		return errShardFatal{fmt.Errorf("campaign: (point %d, rep %d) merged twice — shard plan overlap", r.Point, r.Rep)}
	}
	m.runs[i] = r
	m.got[i] = true
	m.done++
	done, total := m.done, len(m.runs)
	m.mu.Unlock()
	if progress != nil {
		progress(done, total)
	}
	return nil
}

// addCacheStats merges one worker summary frame's cache traffic.
func (m *shardMerge) addCacheStats(hits, misses uint64) {
	m.mu.Lock()
	m.cs.Hits += hits
	m.cs.Misses += misses
	m.mu.Unlock()
}

// RunSharded executes the campaign across supervised worker
// subprocesses and returns the aggregated result plus the workers'
// combined cache traffic. The merged result is byte-identical to
// Engine.Run on the same spec (any Parallel) under any recoverable
// worker-failure pattern: see the package comment for the argument.
// Assignments that keep killing workers degrade to failed runs
// (RunResult.Failed, Aggregate.FailedRuns) rather than aborting the
// campaign.
func RunSharded(spec Spec, opts ShardOptions) (*Result, CacheStats, error) {
	points, err := spec.Enumerate()
	if err != nil {
		return nil, CacheStats{}, err
	}
	if len(opts.Command) == 0 {
		return nil, CacheStats{}, fmt.Errorf("campaign: RunSharded needs a worker command")
	}
	reps, _ := spec.effective()
	plan := fabric.PlanShards(len(points), reps, opts.Shards)
	total := len(points) * reps
	m := &shardMerge{
		points: points,
		reps:   reps,
		runs:   make([]RunResult, total),
		got:    make([]bool, total),
	}
	start := time.Now()
	errs := make(chan error, len(plan))
	for shard, assignments := range plan {
		shard, assignments := shard, assignments
		go func() {
			errs <- superviseShard(spec, opts, shard, assignments, m)
		}()
	}
	for range plan {
		if e := <-errs; e != nil && err == nil {
			err = e
		}
	}
	if err != nil {
		return nil, m.cs, err
	}
	for i, ok := range m.got {
		if !ok {
			return nil, m.cs, fmt.Errorf("campaign: no shard returned (point %d, rep %d)", i/reps, i%reps)
		}
	}
	res := assemble(spec, points, reps, m.runs)
	res.Elapsed = time.Since(start)
	return res, m.cs, nil
}

// superviseShard owns one shard's assignment list until every entry is
// either merged or marked failed. Each iteration runs one worker on the
// still-pending assignments; on failure it re-deals the remainder to a
// replacement with capped exponential backoff, and after maxRetries
// consecutive failures without progress it records the first pending
// assignment as failed and moves on — the graceful-degradation policy.
// (With Parallel > 1 inside the worker, the first pending assignment is
// the most likely poison but not provably the one that killed the
// worker; degradation still terminates, because every round either
// completes a replication or retires an assignment.)
func superviseShard(spec Spec, opts ShardOptions, shard int, pending []fabric.Assignment, m *shardMerge) error {
	noProgress := 0
	for len(pending) > 0 {
		before := len(pending)
		err := runShard(spec, opts, pending, func(f workerFrame) error {
			if f.Done {
				m.addCacheStats(f.Hits, f.Misses)
				opts.Faults.addTimeouts(f.RunsTimeout)
				opts.Faults.addPanics(f.RunsPanicked)
				return nil
			}
			i := pendingIndex(pending, f.Run.Point, f.Run.Rep)
			if i < 0 {
				return fmt.Errorf("campaign: shard %d worker sent (point %d, rep %d), which is not among its pending assignments", shard, f.Run.Point, f.Run.Rep)
			}
			rr := f.Run.run(m.points[f.Run.Point], f.Run.Rep)
			if rr.Failed {
				opts.Faults.addRunFailed()
			}
			if err := m.record(rr, opts.Progress); err != nil {
				return err
			}
			pending = append(pending[:i], pending[i+1:]...)
			return nil
		})
		if err == nil && len(pending) > 0 {
			// Clean exit with work left: the "done frame with wrong
			// counts" fault. Retryable — the replacement re-deals the rest.
			err = fmt.Errorf("campaign: shard %d worker reported done with %d assignments unfinished", shard, len(pending))
		}
		if len(pending) == 0 {
			// All replications merged; a late stream error can only lose
			// summary accounting, never data.
			return nil
		}
		if err == nil {
			return nil
		}
		var fatal errShardFatal
		if errors.As(err, &fatal) {
			return err
		}
		opts.Faults.addWorkerFailure()
		if len(pending) < before {
			noProgress = 0
		} else {
			noProgress++
		}
		if noProgress >= opts.maxRetries() {
			// The head assignment has now outlived maxRetries workers
			// without the shard completing anything: give up on it and
			// degrade, instead of aborting the whole campaign.
			head := pending[0]
			pending = pending[1:]
			p := m.points[head.Point]
			opts.Faults.addRunFailed()
			rr := RunResult{
				Point: p.Index, Label: p.Label, Rep: head.Rep,
				Seed:        DeriveSeed(spec.BaseSeed, p.Label, head.Rep),
				RecoverySec: -1,
				Failed:      true,
				Error:       fmt.Sprintf("abandoned after %d consecutive worker failures; last: %v", opts.maxRetries(), err),
			}
			if merr := m.record(rr, opts.Progress); merr != nil {
				return merr
			}
			noProgress = 0
			if len(pending) == 0 {
				return nil
			}
		}
		opts.Faults.addWorkerRestart()
		opts.Faults.addRunsRetried(len(pending))
		time.Sleep(opts.backoff(noProgress + 1))
	}
	return nil
}

// pendingIndex finds an assignment in the pending list (-1 when absent
// — a duplicate or fabricated frame).
func pendingIndex(pending []fabric.Assignment, point, rep int) int {
	for i, a := range pending {
		if a.Point == point && a.Rep == rep {
			return i
		}
	}
	return -1
}

// tailBuffer is an io.Writer keeping only the last max bytes written —
// how worker stderr is captured without letting a log-spewing worker
// consume coordinator memory.
type tailBuffer struct {
	mu  sync.Mutex
	max int
	buf []byte
}

func newTailBuffer(max int) *tailBuffer { return &tailBuffer{max: max} }

// Write appends p, discarding the oldest bytes beyond the cap.
func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.max {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-t.max:]...)
	}
	return len(p), nil
}

// String returns the captured tail, trimmed for error embedding.
func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return strings.TrimSpace(string(t.buf))
}

// frameMsg carries one decoded frame (or the stream's terminal decode
// error) from the reader goroutine to the supervisor's select loop.
type frameMsg struct {
	f   workerFrame
	err error
}

// runShard launches one worker subprocess, feeds it its assignments,
// and forwards every frame it emits to sink. It returns nil only for a
// clean protocol exchange: valid frames, a summary frame, exit status
// 0. Any other outcome — a sink-detected protocol violation, a corrupt
// frame, liveness-deadline silence, or a non-zero exit — kills the
// worker (when still alive) and returns an error carrying the last
// 4 KiB of its stderr, so shard failures are diagnosable from ezserve
// logs without re-running.
func runShard(spec Spec, opts ShardOptions, assignments []fabric.Assignment, sink func(workerFrame) error) error {
	cmd := exec.Command(opts.Command[0], opts.Command[1:]...)
	cmd.Env = append(os.Environ(), opts.Env...)
	stderr := newTailBuffer(4096)
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return errShardFatal{fmt.Errorf("campaign: starting worker %q: %w", opts.Command[0], err)}
	}
	in := workerInput{
		Spec: spec, Assignments: assignments,
		CacheDir: opts.CacheDir, Parallel: opts.Parallel,
		RunTimeoutSec: opts.RunTimeout.Seconds(),
	}
	encErr := json.NewEncoder(stdin).Encode(in)
	stdin.Close() //nolint:errcheck // best-effort; the worker sees EOF either way

	// Frames are decoded on their own goroutine so the supervisor can
	// race every read against the liveness deadline.
	frames := make(chan frameMsg)
	go func() {
		dec := json.NewDecoder(stdout)
		for {
			var f workerFrame
			if err := dec.Decode(&f); err != nil {
				if err != io.EOF {
					frames <- frameMsg{err: err}
				}
				close(frames)
				return
			}
			frames <- frameMsg{f: f}
		}
	}()

	var liveness <-chan time.Time
	var timer *time.Timer
	if opts.Liveness > 0 {
		timer = time.NewTimer(opts.Liveness)
		defer timer.Stop()
		liveness = timer.C
	}

	var frameErr error
	sawDone := false
loop:
	for {
		select {
		case msg, ok := <-frames:
			if !ok {
				break loop
			}
			if msg.err != nil {
				frameErr = fmt.Errorf("campaign: reading worker frames: %w", msg.err)
				break loop
			}
			if timer != nil {
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(opts.Liveness)
			}
			f := msg.f
			if f.Error != "" {
				// The worker read its input and rejected it; that is
				// deterministic, so retrying cannot help.
				frameErr = errShardFatal{fmt.Errorf("campaign: worker failed: %s", f.Error)}
				break loop
			}
			if f.Run == nil && !f.Done {
				continue
			}
			if f.Done {
				sawDone = true
			}
			if err := sink(f); err != nil {
				frameErr = err
				break loop
			}
			if f.Done {
				break loop
			}
		case <-liveness:
			frameErr = fmt.Errorf("campaign: worker emitted no frame for %v — declared hung", opts.Liveness)
			break loop
		}
	}
	// Reap the worker: kill it if the exchange broke early, drain the
	// decoder goroutine (it must finish before Wait closes the pipe),
	// then collect the exit status.
	if frameErr != nil || !sawDone {
		cmd.Process.Kill() //nolint:errcheck // already exited is fine
	}
	for range frames { //nolint:revive // draining until the decoder closes the channel
	}
	waitErr := cmd.Wait()
	// A worker that died early also broke the stdin pipe, so the exit
	// status is reported ahead of the (consequent) encode error.
	switch {
	case frameErr != nil:
		return withStderr(frameErr, stderr)
	case waitErr != nil:
		return withStderr(fmt.Errorf("campaign: worker exited: %w", waitErr), stderr)
	case encErr != nil:
		return withStderr(fmt.Errorf("campaign: writing worker input: %w", encErr), stderr)
	case !sawDone:
		return withStderr(fmt.Errorf("campaign: worker stream ended before its summary frame"), stderr)
	}
	return nil
}

// withStderr appends the worker's captured stderr tail to a failure,
// preserving errShardFatal wrapping.
func withStderr(err error, tail *tailBuffer) error {
	s := tail.String()
	if s == "" {
		return err
	}
	wrapped := fmt.Errorf("%w; worker stderr: %s", err, s)
	var fatal errShardFatal
	if errors.As(err, &fatal) {
		return errShardFatal{wrapped}
	}
	return wrapped
}
