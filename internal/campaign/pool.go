package campaign

import "sync"

// RunAll executes every job on a pool of at most parallel workers and
// returns the results in submission order, regardless of completion
// order. parallel <= 1 (or a single job) degenerates to a plain serial
// loop with no goroutines, so callers can thread a user-facing
// -parallel flag straight through.
//
// Jobs must be independent: they may not share mutable state. Every
// scenario in this repository owns its own sim.Engine, so ezflow runs
// satisfy this by construction.
func RunAll[T any](parallel int, jobs []func() T) []T {
	return runAll(parallel, jobs, nil)
}

func runAll[T any](parallel int, jobs []func() T, progress func(done, total int)) []T {
	out, _ := runAllCancel(parallel, jobs, progress, nil)
	return out
}

// runAllCancel is RunAll with graceful cancellation: when cancel (which
// may be nil) is closed, no further jobs are dispatched, jobs already
// running finish normally, and the call reports interrupted=true. The
// returned slice always has len(jobs) entries; on interruption the
// undispatched ones hold zero values.
func runAllCancel[T any](parallel int, jobs []func() T, progress func(done, total int), cancel <-chan struct{}) (out []T, interrupted bool) {
	out = make([]T, len(jobs))
	cancelled := func() bool {
		select {
		case <-cancel:
			return true
		default:
			return false
		}
	}
	if parallel <= 1 || len(jobs) <= 1 {
		for i, job := range jobs {
			if cancel != nil && cancelled() {
				return out, true
			}
			out[i] = job()
			if progress != nil {
				progress(i+1, len(jobs))
			}
		}
		return out, false
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
		idx  = make(chan int)
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = jobs[i]()
				if progress != nil {
					mu.Lock()
					done++
					d := done
					mu.Unlock()
					progress(d, len(jobs))
				}
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-cancel:
			interrupted = true
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out, interrupted
}
