package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ezflow"
	"ezflow/internal/obs"
)

// TestGoldenObsInvariance is the acceptance test of the observability
// layer's second invariant: enabling observability never perturbs a run.
// It re-executes the golden dynamics campaigns with Spec.Obs set — full
// metric catalog plus a live flight recorder in every worker — and
// requires the JSON and CSV output to stay byte-identical to the
// committed obs-off goldens, at several worker counts. A single extra
// RNG draw, reordered event, or serialized spec difference fails it.
func TestGoldenObsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	for _, topo := range goldenTopologies {
		wantJSON, err := os.ReadFile(filepath.Join("testdata", "golden_"+topo+".json"))
		if err != nil {
			t.Fatal(err)
		}
		wantCSV, err := os.ReadFile(filepath.Join("testdata", "golden_"+topo+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		for _, parallel := range []int{1, 4, 7} {
			name := fmt.Sprintf("%s/obs/parallel=%d", topo, parallel)
			spec := goldenSpec(t, topo)
			spec.Obs = true
			eng := Engine{Parallel: parallel}
			res, err := eng.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			var jb, cb bytes.Buffer
			if err := (JSONSink{W: &jb}).Emit(res); err != nil {
				t.Fatal(err)
			}
			if err := (CSVSink{W: &cb}).Emit(res); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jb.Bytes(), wantJSON) {
				t.Errorf("%s: JSON diverges from obs-off golden", name)
			}
			if !bytes.Equal(cb.Bytes(), wantCSV) {
				t.Errorf("%s: CSV diverges from obs-off golden", name)
			}
		}
	}
}

// obsChainRun executes one observed chain scenario and returns its final
// metrics snapshot, serialized. Used to compare snapshots across worker
// counts.
func obsChainRun(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := ezflow.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 20 * ezflow.Second
	sc := ezflow.NewChain(3, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 200e3})
	sc.EnableObs(obs.Config{Metrics: true, FlightRecorder: 1024})
	res := sc.Run()
	if res.Obs == nil {
		t.Fatal("observed run returned nil snapshot")
	}
	if v, ok := res.Obs.Get("sim.events_fired"); !ok || v <= 0 {
		t.Fatalf("snapshot missing live sim.events_fired (got %v, %v)", v, ok)
	}
	b, err := json.Marshal(res.Obs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestObsSnapshotDeterminism pins snapshot ordering and content under
// concurrent campaign workers: the same seeded scenarios, run serially
// and run on a 4-worker pool, must produce byte-identical serialized
// snapshots. Snapshot emission sorts by metric name, so registration
// order and goroutine interleaving must not leak into the output.
func TestObsSnapshotDeterminism(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	jobs := make([]func() []byte, len(seeds))
	for i, s := range seeds {
		s := s
		jobs[i] = func() []byte { return obsChainRun(t, s) }
	}
	serial := RunAll(1, jobs)
	pooled := RunAll(4, jobs)
	for i := range seeds {
		if !bytes.Equal(serial[i], pooled[i]) {
			t.Errorf("seed %d: snapshot differs between serial and 4-worker runs", seeds[i])
		}
	}
	// And the same seed twice on the pool: identical.
	again := RunAll(4, jobs)
	for i := range seeds {
		if !bytes.Equal(pooled[i], again[i]) {
			t.Errorf("seed %d: snapshot not reproducible across pooled runs", seeds[i])
		}
	}
}
