package campaign

// SetCacheVersionForTest overrides the code-version string attached to
// cache entries and returns a restore func — how the invalidation tests
// simulate a release bump without rebuilding.
func SetCacheVersionForTest(v string) (restore func()) {
	old := cacheVersion
	cacheVersion = v
	return func() { cacheVersion = old }
}
