package campaign

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"ezflow"
)

func TestRunAllOrderAndParallel(t *testing.T) {
	for _, parallel := range []int{0, 1, 3, 16} {
		var inFlight, peak atomic.Int32
		jobs := make([]func() int, 20)
		for i := range jobs {
			i := i
			jobs[i] = func() int {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				defer inFlight.Add(-1)
				return i * i
			}
		}
		out := RunAll(parallel, jobs)
		for i, v := range out {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
		if parallel <= 1 && peak.Load() > 1 {
			t.Errorf("parallel=%d ran %d jobs concurrently", parallel, peak.Load())
		}
	}
}

func TestParseSweep(t *testing.T) {
	ax, err := ParseSweep("hops=2..5")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "hops" || len(ax.Values) != 4 || ax.Values[0] != "2" || ax.Values[3] != "5" {
		t.Errorf("range expansion: %+v", ax)
	}
	ax, err = ParseSweep("mode=802.11,ezflow, penalty")
	if err != nil {
		t.Fatal(err)
	}
	if len(ax.Values) != 3 || ax.Values[2] != "penalty" {
		t.Errorf("list parse: %+v", ax)
	}
	for _, bad := range []string{"hops", "bogus=1", "hops=8..2", "mode="} {
		if _, err := ParseSweep(bad); err == nil {
			t.Errorf("ParseSweep(%q) did not fail", bad)
		}
	}
}

func TestEnumerateGrid(t *testing.T) {
	spec := Spec{Axes: []Axis{
		{Name: "mode", Values: []string{"802.11", "ezflow"}},
		{Name: "hops", Values: []string{"3", "4", "5"}},
	}}
	pts, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("grid size %d, want 6", len(pts))
	}
	// Axis-major order: mode varies slowest.
	if pts[0].Mode != ezflow.Mode80211 || pts[0].Hops != 3 ||
		pts[3].Mode != ezflow.ModeEZFlow || pts[5].Hops != 5 {
		t.Errorf("enumeration order wrong: %+v", pts)
	}
	for i, p := range pts {
		if p.Index != i || p.Label == "" {
			t.Errorf("point %d missing index/label: %+v", i, p)
		}
	}
	if _, err := (Spec{Axes: []Axis{{Name: "mode", Values: []string{"nope"}}}}).Enumerate(); err == nil {
		t.Error("bad mode value did not fail")
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	seen := map[int64]string{}
	for _, base := range []int64{1, 2} {
		for _, label := range []string{"a", "b"} {
			for rep := 0; rep < 50; rep++ {
				s := DeriveSeed(base, label, rep)
				key := fmt.Sprintf("%d/%s/%d", base, label, rep)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s -> %d", prev, key, s)
				}
				seen[s] = key
				if s != DeriveSeed(base, label, rep) {
					t.Fatal("DeriveSeed not deterministic")
				}
			}
		}
	}
}

func testSpec() Spec {
	// The topology axis includes a multi-flow topology (testbed) so the
	// test covers float-accumulation ordering across flows, not just the
	// single-flow chain path.
	return Spec{
		Name: "determinism",
		Axes: []Axis{
			{Name: "topology", Values: []string{"chain", "testbed"}},
			{Name: "mode", Values: []string{"802.11", "ezflow"}},
		},
		Reps:        2,
		BaseSeed:    7,
		DurationSec: 12,
	}
}

// TestCampaignDeterminism is the acceptance test of the subsystem: the
// same spec must produce byte-identical JSON (and CSV) whether the runs
// execute on one worker or many, in whatever completion order.
func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	var outputs [][]byte
	for _, parallel := range []int{1, 8} {
		eng := Engine{Parallel: parallel}
		res, err := eng.Run(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		var js, cs bytes.Buffer
		if err := (JSONSink{W: &js}).Emit(res); err != nil {
			t.Fatal(err)
		}
		if err := (CSVSink{W: &cs}).Emit(res); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, js.Bytes(), cs.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[2]) {
		t.Error("JSON differs between 1 and 8 workers")
	}
	if !bytes.Equal(outputs[1], outputs[3]) {
		t.Error("CSV differs between 1 and 8 workers")
	}
	if len(outputs[0]) == 0 || len(outputs[1]) == 0 {
		t.Error("empty sink output")
	}
}

func TestCampaignAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := Spec{
		Name:        "agg",
		Axes:        []Axis{{Name: "mode", Values: []string{"802.11"}}},
		Reps:        3,
		BaseSeed:    1,
		DurationSec: 12,
	}
	var progressed atomic.Int32
	eng := Engine{Parallel: 4, Progress: func(done, total int) {
		progressed.Add(1)
		if total != 3 || done < 1 || done > total {
			t.Errorf("bad progress %d/%d", done, total)
		}
	}}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if progressed.Load() != 3 {
		t.Errorf("progress called %d times, want 3", progressed.Load())
	}
	if len(res.Points) != 1 || len(res.Runs) != 3 {
		t.Fatalf("points/runs = %d/%d, want 1/3", len(res.Points), len(res.Runs))
	}
	agg := res.Points[0]
	if agg.AggKbps.N != 3 || agg.AggKbps.Mean <= 0 {
		t.Errorf("aggregate throughput summary wrong: %+v", agg.AggKbps)
	}
	if agg.AggKbps.Std > 0 && agg.AggKbps.CI95 <= 0 {
		t.Errorf("CI95 missing: %+v", agg.AggKbps)
	}
	if agg.BinKbps.N == 0 {
		t.Error("pooled bin statistics empty")
	}
	// Replications must actually differ (distinct derived seeds).
	if res.Runs[0].Seed == res.Runs[1].Seed {
		t.Error("replications share a seed")
	}
	var report bytes.Buffer
	if err := (ReportSink{W: &report}).Emit(res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(report.Bytes(), []byte("1 points x 3 reps")) {
		t.Errorf("report header wrong:\n%s", report.String())
	}
}
