package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ezflow"
)

// Sink consumes a completed campaign. Sinks receive the result after
// every run has finished, with points and runs in deterministic grid
// order, so implementations need no synchronisation.
type Sink interface {
	Emit(*Result) error
}

// ReportSink renders the human-readable per-point summary table.
type ReportSink struct {
	W io.Writer
}

// Emit writes the report.
func (s ReportSink) Emit(r *Result) error {
	name := r.Spec.Name
	if name == "" {
		name = "campaign"
	}
	reps := r.Spec.Reps
	if reps <= 0 {
		reps = 1
	}
	if _, err := fmt.Fprintf(s.W, "=== %s ===\n%d points x %d reps = %d runs",
		name, len(r.Points), reps, len(r.Runs)); err != nil {
		return err
	}
	if r.Elapsed > 0 {
		fmt.Fprintf(s.W, " in %.1fs wall clock", r.Elapsed.Seconds())
	}
	fmt.Fprintln(s.W)
	for _, a := range r.Points {
		fmt.Fprintf(s.W, "%s\n", a.Label)
		fmt.Fprintf(s.W, "  agg %8.1f ± %5.1f kb/s (std %5.1f)   FI %.3f ± %.3f\n",
			a.AggKbps.Mean, a.AggKbps.CI95, a.AggKbps.Std,
			a.Fairness.Mean, a.Fairness.CI95)
		fmt.Fprintf(s.W, "  delay %6.2f ± %.2fs   max queue %5.1f ± %4.1f pkts   bins %6.1f ± %5.1f kb/s\n",
			a.MeanDelaySec.Mean, a.MeanDelaySec.CI95,
			a.MaxQueuePkts.Mean, a.MaxQueuePkts.CI95,
			a.BinKbps.Mean, a.BinKbps.CI95)
		if a.TailQueuePkts.N > 0 {
			fmt.Fprintf(s.W, "  recovery %5.1f ± %4.1fs (%d/%d recovered)   tail queue %5.1f ± %4.1f pkts\n",
				a.RecoverySec.Mean, a.RecoverySec.CI95,
				a.RecoverySec.N, a.TailQueuePkts.N,
				a.TailQueuePkts.Mean, a.TailQueuePkts.CI95)
		}
		if a.FailedRuns > 0 {
			fmt.Fprintf(s.W, "  FAILED %d/%d runs (excluded from aggregates)\n",
				a.FailedRuns, reps)
		}
	}
	return nil
}

// JSONSink serialises the full result (spec, aggregates, replications)
// as indented JSON. Output contains no wall-clock data, so it is
// byte-identical across worker counts and re-runs.
type JSONSink struct {
	W io.Writer
}

// Emit writes the JSON document.
func (s JSONSink) Emit(r *Result) error {
	enc := json.NewEncoder(s.W)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CSVSink writes one row per replication — the long-format table that
// feeds external plotting and statistics tooling.
type CSVSink struct {
	W io.Writer
}

// Emit writes the CSV table.
func (s CSVSink) Emit(r *Result) error {
	w := csv.NewWriter(s.W)
	if err := w.Write([]string{
		"point", "label", "rep", "seed",
		"agg_kbps", "fairness", "mean_delay_sec", "max_queue_pkts",
		"recovery_sec", "tail_queue_pkts", "flow_kbps", "failed_runs",
	}); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, run := range r.Runs {
		var flows []int
		for f := range run.FlowKbps {
			flows = append(flows, int(f))
		}
		sort.Ints(flows)
		flowCol := ""
		for i, f := range flows {
			if i > 0 {
				flowCol += ";"
			}
			flowCol += fmt.Sprintf("%d=%s", f, g(run.FlowKbps[ezflow.FlowID(f)]))
		}
		failed := "0"
		if run.Failed {
			failed = "1"
		}
		if err := w.Write([]string{
			strconv.Itoa(run.Point), run.Label, strconv.Itoa(run.Rep),
			strconv.FormatInt(run.Seed, 10),
			g(run.AggKbps), g(run.Fairness), g(run.MeanDelaySec), g(run.MaxQueuePkts),
			g(run.RecoverySec), g(run.TailQueuePkts),
			flowCol, failed,
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
