package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ezflow/internal/scenario"
)

// goldenMobilitySpec is the mobility golden campaign: a 3x3 grid
// serving a bursty 3-client downlink population, with the mobility axis
// crossing a pinned-static topology against the file's 8 m/s waypoint
// commuters, under both control planes. The off column pins that a
// mobile-capable campaign run with mobility off stays byte-identical
// over time; the waypoint column pins every move, incremental re-index,
// and strategy-driven repair of a mobile run.
func goldenMobilitySpec(t *testing.T) Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden_mobility_scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Name:     "golden-mobility",
		Scenario: s,
		Axes: []Axis{
			{Name: "mobility", Values: []string{"off", "waypoint"}},
			{Name: "mode", Values: []string{"802.11", "ezflow"}},
		},
		Reps:     2,
		BaseSeed: 17,
	}
}

// runGoldenMobility executes the mobility golden campaign at the given
// worker count and returns the JSON and CSV sink outputs.
func runGoldenMobility(t *testing.T, parallel int) (js, cs []byte) {
	t.Helper()
	eng := Engine{Parallel: parallel}
	res, err := eng.Run(goldenMobilitySpec(t))
	if err != nil {
		t.Fatal(err)
	}
	var jb, cb bytes.Buffer
	if err := (JSONSink{W: &jb}).Emit(res); err != nil {
		t.Fatal(err)
	}
	if err := (CSVSink{W: &cb}).Emit(res); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestGoldenMobilityCampaigns pins the mobility subsystem byte-for-byte
// against committed goldens at several worker counts AND shard counts —
// the acceptance test of the mobility tentpole. A single extra RNG
// draw, a reordered position tick, or one link patched differently by
// the incremental re-indexer changes delivered counts and fails this
// test at every concurrency level.
//
// Regenerate (only after an intentional behaviour change) with
//
//	EZFLOW_UPDATE_GOLDEN=1 go test ./internal/campaign -run GoldenMobility
func TestGoldenMobilityCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	update := os.Getenv("EZFLOW_UPDATE_GOLDEN") != ""
	jsonPath := filepath.Join("testdata", "golden_mobility.json")
	csvPath := filepath.Join("testdata", "golden_mobility.csv")
	if update {
		js, cs := runGoldenMobility(t, 1)
		if err := os.WriteFile(jsonPath, js, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(csvPath, cs, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("updated mobility goldens")
	}
	wantJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 4, 7} {
		name := fmt.Sprintf("parallel=%d", parallel)
		js, cs := runGoldenMobility(t, parallel)
		if !bytes.Equal(js, wantJSON) {
			t.Errorf("%s: JSON diverges from golden %s", name, jsonPath)
		}
		if !bytes.Equal(cs, wantCSV) {
			t.Errorf("%s: CSV diverges from golden %s", name, csvPath)
		}
	}

	// Sharded execution: the same campaign dealt to 1, 2, and 4 worker
	// subprocesses must merge to the same bytes.
	cmd, env := workerCommand(t)
	spec := goldenMobilitySpec(t)
	for _, shards := range []int{1, 2, 4} {
		name := fmt.Sprintf("shards=%d", shards)
		res, _, err := RunSharded(spec, ShardOptions{
			Shards:   shards,
			Command:  cmd,
			Env:      env,
			Parallel: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var jb, cb bytes.Buffer
		if err := (JSONSink{W: &jb}).Emit(res); err != nil {
			t.Fatal(err)
		}
		if err := (CSVSink{W: &cb}).Emit(res); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jb.Bytes(), wantJSON) {
			t.Errorf("%s: JSON diverges from golden %s", name, jsonPath)
		}
		if !bytes.Equal(cb.Bytes(), wantCSV) {
			t.Errorf("%s: CSV diverges from golden %s", name, csvPath)
		}
	}
}
