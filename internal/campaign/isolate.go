// Run-level isolation: the layer between the worker pool and one
// simulation that turns a diverging or crashing replication into a
// structured per-run failure instead of a dead campaign.
//
// Two faults are contained here. A panic anywhere inside a replication
// (scenario build, simulation, metric extraction) is recovered and
// recorded as a failed RunResult — each run owns its entire simulator
// state, so a recovered panic cannot corrupt its siblings. A run that
// exceeds Engine.RunTimeout wall-clock seconds is abandoned: the
// replication's goroutine keeps simulating (goroutines cannot be
// killed), but its eventual result is discarded and the campaign moves
// on with a timeout failure in that grid slot. Hard isolation — where a
// runaway simulation's CPU is actually reclaimed — is what `-shards`
// process workers plus the coordinator's liveness deadline provide.
package campaign

import (
	"fmt"
	"time"
)

// runReplication is the simulation entry point, indirected so isolation
// tests can substitute a hanging or panicking run without needing a
// pathological scenario.
var runReplication = runOne

// runIsolated executes one replication under the engine's isolation
// policy. Without a timeout it stays on the caller's goroutine (the
// common path allocates nothing extra); with one it races the guarded
// run against the deadline.
func (e *Engine) runIsolated(spec Spec, p Point, rep int, durSec float64) RunResult {
	if e.RunTimeout <= 0 {
		return e.runGuarded(spec, p, rep, durSec)
	}
	done := make(chan RunResult, 1)
	go func() { done <- e.runGuarded(spec, p, rep, durSec) }()
	timer := time.NewTimer(e.RunTimeout)
	defer timer.Stop()
	select {
	case rr := <-done:
		return rr
	case <-timer.C:
		e.countFault((*FaultCounters).addRunTimeout)
		return e.failRun(spec, p, rep,
			fmt.Sprintf("run exceeded the %v wall-clock timeout", e.RunTimeout))
	}
}

// runGuarded runs one replication with panic containment.
func (e *Engine) runGuarded(spec Spec, p Point, rep int, durSec float64) (rr RunResult) {
	defer func() {
		if r := recover(); r != nil {
			e.countFault((*FaultCounters).addRunPanic)
			rr = e.failRun(spec, p, rep, fmt.Sprintf("panic: %v", r))
		}
	}()
	return runReplication(spec, p, rep, durSec)
}

// failRun builds the structured failure result for one replication and
// counts it. RecoverySec keeps the no-fault sentinel so downstream
// consumers that ignore Failed still read consistent sentinels.
func (e *Engine) failRun(spec Spec, p Point, rep int, msg string) RunResult {
	e.countFault((*FaultCounters).addRunFailed)
	return RunResult{
		Point: p.Index, Label: p.Label, Rep: rep,
		Seed:        DeriveSeed(spec.BaseSeed, p.Label, rep),
		RecoverySec: -1,
		Failed:      true,
		Error:       msg,
	}
}

// countFault applies one fault event to the engine's own counters and,
// when configured, to the shared aggregation counters.
func (e *Engine) countFault(f func(*FaultCounters)) {
	f(&e.faults)
	if e.Faults != nil {
		f(e.Faults)
	}
}
