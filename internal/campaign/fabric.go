// Cache integration: how a campaign replication becomes a
// content-addressed fabric entry. The key material canonically captures
// everything that determines a run's outcome — the normalized grid
// point (position-independent: its index is zeroed), the derived seed,
// the effective duration, whether the rate axis rewrites scenario-file
// flows, and the scenario file's entire content — and the producing
// code version rides alongside (checked, not hashed, by fabric.Store).
// The payload is the replication's RunResult plus the exact state of
// its pooled bin-throughput accumulator, so a cache hit merges into
// aggregates bit-identically to the run it replaced.
package campaign

import (
	"ezflow/internal/buildinfo"
	"ezflow/internal/fabric"
	"ezflow/internal/scenario"
	"ezflow/internal/stats"
)

// cacheSchema versions the key material layout below. Bump it whenever
// the material's shape or semantics change, so entries keyed under the
// old layout can never be misread as current.
const cacheSchema = 1

// cacheVersion is the code-version string attached to every cache entry.
// It is the invalidation lever: any simulator behaviour change bumps
// buildinfo.Release, which orphans (and garbage-collects) every prior
// entry. A package variable so tests can pin or bump it.
var cacheVersion = buildinfo.Release

// runKeyMaterial is the canonical description of one replication. Field
// order is the serialisation order; the golden-hash pin test fails
// loudly on any accidental drift.
type runKeyMaterial struct {
	Schema      int            `json:"schema"`
	Kind        string         `json:"kind"`
	Label       string         `json:"label"`
	Seed        int64          `json:"seed"`
	Rep         int            `json:"rep"`
	DurationSec float64        `json:"duration_sec"`
	Point       Point          `json:"point"`
	RateSwept   bool           `json:"rate_swept,omitempty"`
	Scenario    *scenario.Spec `json:"scenario,omitempty"`
}

// runKey builds the fabric key for one replication of a campaign.
func runKey(spec Spec, p Point, rep int, durSec float64) (fabric.Key, error) {
	// The point's grid index is positional bookkeeping, not physics: the
	// same configuration must hash identically wherever it lands in a
	// sweep, so extending a campaign still hits every prior point.
	p.Index = 0
	return fabric.NewKey(cacheVersion, runKeyMaterial{
		Schema:      cacheSchema,
		Kind:        "campaign.run",
		Label:       p.Label,
		Seed:        DeriveSeed(spec.BaseSeed, p.Label, rep),
		Rep:         rep,
		DurationSec: durSec,
		Point:       p,
		RateSwept:   spec.sweeps("rate"),
		Scenario:    spec.Scenario,
	})
}

// wireRun is the serialisable form of a RunResult, used for both cache
// payloads and worker-process frames: the public scalar fields plus the
// exact Welford state of the pooled bin-throughput accumulator.
type wireRun struct {
	RunResult
	BinState stats.WelfordState `json:"bin_state"`
}

// wireFromRun captures a completed replication for the wire.
func wireFromRun(r RunResult) wireRun {
	return wireRun{RunResult: r, BinState: r.binKbps.State()}
}

// run restores the replication, rebinding its positional fields to the
// caller's grid (a cached point may have been produced under a
// different sweep whose grid indexed it elsewhere).
func (w wireRun) run(p Point, rep int) RunResult {
	r := w.RunResult
	r.binKbps.SetState(w.BinState)
	r.Point = p.Index
	r.Label = p.Label
	r.Rep = rep
	return r
}

// CacheStats reports how a campaign's replications were satisfied.
type CacheStats struct {
	// Hits is the number of replications answered from the fabric store.
	Hits uint64 `json:"hits"`
	// Misses is the number that had to simulate.
	Misses uint64 `json:"misses"`
}
