// Fault accounting: the counters behind the campaign fabric's
// failure-handling layer. Every recovery action — a worker process
// declared dead, a replacement launched, an assignment re-dealt, a run
// cut off by its wall-clock timeout or rescued from a panic — increments
// exactly one counter here, so "how unhealthy was that campaign?" is
// always answerable from /stats, /metrics, or the ezcampaign summary
// line without grepping logs.
//
// Counters are cumulative and atomic. An Engine always tracks its own
// FaultCounters (per-campaign numbers for ezserve's /status); callers
// that aggregate across campaigns — ezserve's /metrics gauges, the
// ezcampaign CLI summary — additionally share one FaultCounters between
// engines and shard coordinators via Engine.Faults / ShardOptions.Faults.
package campaign

import "sync/atomic"

// FaultCounters accumulates fault-handling events. All methods are safe
// for concurrent use and all are no-ops on a nil receiver, so optional
// shared counters cost one branch when absent.
type FaultCounters struct {
	workerFailures atomic.Uint64
	workerRestarts atomic.Uint64
	runsRetried    atomic.Uint64
	runsTimeout    atomic.Uint64
	runsPanicked   atomic.Uint64
	runsFailed     atomic.Uint64
}

// FaultStats is a point-in-time snapshot of a FaultCounters.
type FaultStats struct {
	// WorkerFailures counts worker processes declared dead: crashed,
	// stalled past the liveness deadline, or emitting a corrupt stream.
	WorkerFailures uint64 `json:"worker_failures"`
	// WorkerRestarts counts replacement workers launched after a failure.
	WorkerRestarts uint64 `json:"worker_restarts"`
	// RunsRetried counts assignments re-dealt to a replacement worker
	// (completed runs replay from cache, so retries are nearly free).
	RunsRetried uint64 `json:"runs_retried"`
	// RunsTimeout counts replications cut off by the per-run wall-clock
	// timeout.
	RunsTimeout uint64 `json:"runs_timeout"`
	// RunsPanicked counts replications that panicked and were converted
	// into structured per-run failures.
	RunsPanicked uint64 `json:"runs_panicked"`
	// RunsFailed counts replications that ended marked failed, whatever
	// the cause (timeout, panic, or a persistently failing assignment).
	RunsFailed uint64 `json:"runs_failed"`
}

// Snapshot reads the counters atomically (zero on a nil receiver).
func (c *FaultCounters) Snapshot() FaultStats {
	if c == nil {
		return FaultStats{}
	}
	return FaultStats{
		WorkerFailures: c.workerFailures.Load(),
		WorkerRestarts: c.workerRestarts.Load(),
		RunsRetried:    c.runsRetried.Load(),
		RunsTimeout:    c.runsTimeout.Load(),
		RunsPanicked:   c.runsPanicked.Load(),
		RunsFailed:     c.runsFailed.Load(),
	}
}

// addWorkerFailure records one dead worker. No-op on nil.
func (c *FaultCounters) addWorkerFailure() {
	if c != nil {
		c.workerFailures.Add(1)
	}
}

// addWorkerRestart records one replacement worker launch. No-op on nil.
func (c *FaultCounters) addWorkerRestart() {
	if c != nil {
		c.workerRestarts.Add(1)
	}
}

// addRunsRetried records n assignments re-dealt after a worker failure.
// No-op on nil.
func (c *FaultCounters) addRunsRetried(n int) {
	if c != nil && n > 0 {
		c.runsRetried.Add(uint64(n))
	}
}

// addRunTimeout records one run cut off by the wall-clock timeout.
// No-op on nil.
func (c *FaultCounters) addRunTimeout() {
	if c != nil {
		c.runsTimeout.Add(1)
	}
}

// addRunPanic records one recovered run panic. No-op on nil.
func (c *FaultCounters) addRunPanic() {
	if c != nil {
		c.runsPanicked.Add(1)
	}
}

// addRunFailed records one replication that ended marked failed. No-op
// on nil.
func (c *FaultCounters) addRunFailed() {
	if c != nil {
		c.runsFailed.Add(1)
	}
}

// addTimeouts merges n run timeouts reported by a worker's summary
// frame. No-op on nil.
func (c *FaultCounters) addTimeouts(n uint64) {
	if c != nil && n > 0 {
		c.runsTimeout.Add(n)
	}
}

// addPanics merges n recovered panics reported by a worker's summary
// frame. No-op on nil.
func (c *FaultCounters) addPanics(n uint64) {
	if c != nil && n > 0 {
		c.runsPanicked.Add(n)
	}
}
