package campaign

import (
	"bytes"
	"strings"
	"testing"

	"ezflow/internal/scenario"
)

const flapScenarioJSON = `{
  "name": "chain3-flap",
  "topology": {"kind": "chain", "hops": 3},
  "mode": "ezflow",
  "duration_sec": 20,
  "flows": [{"id": 1, "rate_bps": 4e5}],
  "dynamics": [
    {"at_sec": 7, "kind": "link-down", "a": 1, "b": 2, "reroute": true},
    {"at_sec": 11, "kind": "link-up", "a": 1, "b": 2, "reroute": true}
  ]
}`

func flapSpec(t *testing.T) Spec {
	t.Helper()
	s, err := scenario.Parse([]byte(flapScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Name:     "dynamics-determinism",
		Scenario: s,
		Axes: []Axis{
			{Name: "mode", Values: []string{"802.11", "ezflow"}},
			{Name: "churn", Values: []string{"0", "1"}},
		},
		Reps:     2,
		BaseSeed: 5,
	}
}

// TestDynamicsCampaignDeterminism is the acceptance pin of the dynamics
// subsystem: a campaign over a scenario JSON with a fault timeline (plus
// a layered churn axis) emits byte-identical JSON and CSV for any worker
// count.
func TestDynamicsCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	var outputs [][]byte
	for _, parallel := range []int{1, 8} {
		eng := Engine{Parallel: parallel}
		res, err := eng.Run(flapSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		var js, cs bytes.Buffer
		if err := (JSONSink{W: &js}).Emit(res); err != nil {
			t.Fatal(err)
		}
		if err := (CSVSink{W: &cs}).Emit(res); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, js.Bytes(), cs.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[2]) {
		t.Error("JSON differs between 1 and 8 workers")
	}
	if !bytes.Equal(outputs[1], outputs[3]) {
		t.Error("CSV differs between 1 and 8 workers")
	}
	if !bytes.Contains(outputs[0], []byte(`"recovery_sec"`)) {
		t.Error("JSON carries no recovery metrics")
	}
}

func TestScenarioCampaignShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	res, err := (&Engine{Parallel: 4}).Run(flapSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 || len(res.Runs) != 8 {
		t.Fatalf("points/runs = %d/%d, want 4/8", len(res.Points), len(res.Runs))
	}
	for _, a := range res.Points {
		if !strings.HasPrefix(a.Label, "scenario=chain3-flap mode=") {
			t.Errorf("label %q does not name the scenario file", a.Label)
		}
		// Every point carries the file's fault, so recovery statistics
		// must be populated (even where churn=0).
		if a.TailQueuePkts.N == 0 {
			t.Errorf("%s: no tail-queue statistics", a.Label)
		}
	}
	for _, r := range res.Runs {
		if r.RecoverySec == -1 {
			t.Errorf("%s rep %d: no fault recorded despite the scenario timeline", r.Label, r.Rep)
		}
	}
}

func TestScenarioEventsBeyondCampaignDuration(t *testing.T) {
	// A file without duration_sec runs at the campaign duration; events
	// scheduled past it would silently never fire, so Enumerate rejects
	// the combination.
	s, err := scenario.Parse([]byte(`{
	  "topology": {"kind": "chain", "hops": 3},
	  "dynamics": [{"at_sec": 200, "kind": "link-down", "a": 1, "b": 2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Scenario: s, DurationSec: 120}
	if _, err := spec.Enumerate(); err == nil {
		t.Error("event at 200s accepted into a 120s campaign")
	}
	spec.DurationSec = 300
	if _, err := spec.Enumerate(); err != nil {
		t.Errorf("event at 200s rejected from a 300s campaign: %v", err)
	}
}

func TestScenarioRejectsTopologyAxes(t *testing.T) {
	s, err := scenario.Parse([]byte(flapScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, axis := range []string{"topology", "hops", "nodes"} {
		spec := Spec{Scenario: s, Axes: []Axis{{Name: axis, Values: []string{"2"}}}}
		if _, err := spec.Enumerate(); err == nil {
			t.Errorf("axis %q accepted alongside a scenario file", axis)
		}
	}
}

func TestFaultAxesEnumerate(t *testing.T) {
	spec := Spec{Axes: []Axis{
		{Name: "flap", Values: []string{"0", "1"}},
		{Name: "churn", Values: []string{"0", "1"}},
	}}
	pts, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	if !pts[3].Flap || !pts[3].Churn {
		t.Errorf("last point should flap+churn: %+v", pts[3])
	}
	if pts[0].Label == pts[1].Label || pts[1].Label == pts[2].Label {
		t.Error("fault axes not reflected in labels")
	}
	bad := Spec{Axes: []Axis{{Name: "flap", Values: []string{"2"}}}}
	if _, err := bad.Enumerate(); err == nil {
		t.Error("flap=2 accepted")
	}
}
