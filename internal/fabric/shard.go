// The shard planner: how a campaign grid's replications are dealt
// across worker processes. Planning is pure arithmetic — which is the
// point: because every replication's seed is derived from (base seed,
// point label, rep) rather than from execution order, any partition of
// the (point, rep) job list produces the same per-run results, and the
// coordinator can merge shard output by grid position into a result
// byte-identical to a single-process run.
package fabric

// Assignment names one replication of a campaign grid: the point's index
// in enumeration order and the replication number within that point.
type Assignment struct {
	Point int `json:"point"`
	Rep   int `json:"rep"`
}

// PlanShards deals the nPoints x reps replication jobs round-robin (in
// point-major job order) across at most shards workers. Round-robin
// keeps shard loads within one job of each other even when the grid is
// small, and the deal is deterministic: shard i always receives jobs
// i, i+shards, i+2*shards, ... Empty shards are trimmed, so the result
// may have fewer than shards entries.
func PlanShards(nPoints, reps, shards int) [][]Assignment {
	if nPoints <= 0 || reps <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	total := nPoints * reps
	if shards > total {
		shards = total
	}
	plan := make([][]Assignment, shards)
	for job := 0; job < total; job++ {
		w := job % shards
		plan[w] = append(plan[w], Assignment{Point: job / reps, Rep: job % reps})
	}
	return plan
}
