package fabric

import (
	"fmt"
	"path/filepath"
	"testing"
)

// benchMaterial approximates a real campaign key: the scalar fields of
// a grid point plus label and seed, the size class runKey hashes.
type benchMaterial struct {
	Schema      int     `json:"schema"`
	Kind        string  `json:"kind"`
	Label       string  `json:"label"`
	Seed        int64   `json:"seed"`
	Rep         int     `json:"rep"`
	DurationSec float64 `json:"duration_sec"`
	Topology    string  `json:"topology"`
	Mode        int     `json:"mode"`
	Hops        int     `json:"hops"`
	RateBps     float64 `json:"rate_bps"`
}

// BenchmarkCacheKey measures key derivation (canonical JSON + SHA-256),
// paid once per replication on the cached path.
func BenchmarkCacheKey(b *testing.B) {
	m := benchMaterial{
		Schema: 1, Kind: "campaign.run",
		Label: "topology=chain mode=802.11 hops=4 rate=2e+06",
		Seed:  987654321, Rep: 3, DurationSec: 600,
		Topology: "chain", Mode: 0, Hops: 4, RateBps: 2e6,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Rep = i
		if _, err := NewKey("bench-v1", m); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPayload approximates a cached RunResult: a dozen scalars plus a
// small map.
type benchPayload struct {
	AggKbps  float64         `json:"agg_kbps"`
	Fairness float64         `json:"fairness"`
	Delay    float64         `json:"delay"`
	Queue    float64         `json:"queue"`
	Flows    map[int]float64 `json:"flows"`
}

// BenchmarkStoreRoundTrip measures one Put plus one Get — the full disk
// cost a cache hit saves a simulation against.
func BenchmarkStoreRoundTrip(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "cache"))
	if err != nil {
		b.Fatal(err)
	}
	p := benchPayload{AggKbps: 812.5, Fairness: 0.97, Delay: 0.042, Queue: 17,
		Flows: map[int]float64{1: 420.25, 2: 392.25}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k, err := NewKey("bench-v1", fmt.Sprintf("round-trip-%d", i%256))
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Put(k, p); err != nil {
			b.Fatal(err)
		}
		var got benchPayload
		if !s.Get(k, &got) {
			b.Fatal("miss on a just-written entry")
		}
	}
}
