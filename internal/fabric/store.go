// The persistent store: a directory of content-addressed JSON entries
// with atomic writes, tolerant reads, and age-ordered pruning.
package fabric

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// entrySchema versions the on-disk envelope format. An entry whose
// schema differs is treated exactly like a corrupt one: removed and
// reported as a miss.
const entrySchema = 1

// entry is the on-disk envelope around one cached payload.
type entry struct {
	Schema  int             `json:"schema"`
	Key     string          `json:"key"`
	Version string          `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

// Stats is a point-in-time snapshot of a store's traffic counters.
// Counters are cumulative since Open and safe to read concurrently.
type Stats struct {
	// Hits counts Gets that returned a payload.
	Hits uint64 `json:"hits"`
	// Misses counts Gets that found nothing usable (absent, corrupt, or
	// stale-version entries all count here).
	Misses uint64 `json:"misses"`
	// Puts counts successfully written entries.
	Puts uint64 `json:"puts"`
	// Evictions counts entries removed by Prune plus corrupt or
	// stale-version files deleted during Get.
	Evictions uint64 `json:"evictions"`
}

// Store is a content-addressed result cache backed by a directory of
// JSON files, one per entry, sharded into 256 subdirectories by the
// first hash byte. All methods are safe for concurrent use from multiple
// goroutines and multiple processes: writes are temp-file-plus-rename
// atomic, and readers either see a complete entry or none.
type Store struct {
	dir string

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	evictions atomic.Uint64
}

// Open creates (if necessary) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("fabric: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its entry file.
func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.hash[:2], k.hash+".json")
}

// Get looks the key up and, on a hit, unmarshals the stored payload into
// out (which must be a pointer). It returns false on any kind of miss:
// no entry, an entry written by a different code version, or a corrupt /
// truncated file — the latter two are deleted on the way out so the next
// Put starts clean. Get never fails a campaign: I/O errors degrade to
// misses.
func (s *Store) Get(k Key, out any) bool {
	if s == nil || !k.valid() {
		return false
	}
	path := s.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Schema != entrySchema || e.Key != k.hash {
		s.discard(path)
		s.misses.Add(1)
		return false
	}
	if e.Version != k.version {
		// A different code version produced this result; the simulator's
		// behaviour may have changed, so the entry is unusable. Deleting
		// it here is what makes a version bump a one-shot invalidation
		// instead of a slow disk leak.
		s.discard(path)
		s.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(e.Payload, out); err != nil {
		s.discard(path)
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// discard removes a corrupt or stale entry file, counting an eviction.
func (s *Store) discard(path string) {
	if os.Remove(path) == nil {
		s.evictions.Add(1)
	}
}

// Put stores payload under the key, atomically: the entry is marshalled
// to a temporary file in the destination directory and renamed into
// place, so concurrent readers and writers (including other processes
// sharing the directory) never observe a partial entry. A concurrent Put
// of the same key is harmless — both writers produce identical bytes by
// the determinism contract, and the last rename wins.
func (s *Store) Put(k Key, payload any) error {
	if s == nil {
		return nil
	}
	if !k.valid() {
		return fmt.Errorf("fabric: Put with zero key")
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("fabric: marshalling payload: %w", err)
	}
	data, err := json.Marshal(entry{Schema: entrySchema, Key: k.hash, Version: k.version, Payload: raw})
	if err != nil {
		return fmt.Errorf("fabric: marshalling entry: %w", err)
	}
	dir := filepath.Dir(s.path(k))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: writing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: closing entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: committing entry: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// Stats snapshots the store's cumulative traffic counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Evictions: s.evictions.Load(),
	}
}

// Len counts the entries currently on disk (a directory walk; intended
// for stats endpoints and tests, not hot paths).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	return len(s.list())
}

// storedEntry pairs an entry file with its modification time for
// age-ordered pruning.
type storedEntry struct {
	path string
	mod  int64
}

// list walks the store and returns every entry file.
func (s *Store) list() []storedEntry {
	var out []storedEntry
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error { //nolint:errcheck // walk errors degrade to an incomplete listing
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		out = append(out, storedEntry{path: path, mod: info.ModTime().UnixNano()})
		return nil
	})
	return out
}

// Prune evicts the oldest entries (by file modification time, ties
// broken by path for determinism) until at most max remain, returning
// the number removed. max <= 0 clears the store.
func (s *Store) Prune(max int) int {
	if s == nil {
		return 0
	}
	entries := s.list()
	if max < 0 {
		max = 0
	}
	if len(entries) <= max {
		return 0
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mod != entries[j].mod {
			return entries[i].mod < entries[j].mod
		}
		return entries[i].path < entries[j].path
	})
	removed := 0
	for _, e := range entries[:len(entries)-max] {
		if os.Remove(e.path) == nil {
			removed++
			s.evictions.Add(1)
		}
	}
	return removed
}
