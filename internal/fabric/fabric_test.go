package fabric

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// keyMaterial is a fixed fixture; its canonical JSON (and therefore its
// hash) must never drift, or every cache in the field silently cools.
type keyMaterial struct {
	Kind  string `json:"kind"`
	Label string `json:"label"`
	Seed  int64  `json:"seed"`
}

var fixedMaterial = keyMaterial{Kind: "test.run", Label: "topology=chain hops=4", Seed: 12345}

// TestKeyGolden pins the content hash of a fixed key material. If this
// fails, key derivation changed: every existing cache entry becomes
// unreachable, which must be a deliberate decision (bump the material
// schema and update the pin), never an accident.
func TestKeyGolden(t *testing.T) {
	k, err := NewKey("v-test", fixedMaterial)
	if err != nil {
		t.Fatal(err)
	}
	const want = "5a88a84c7c298f6d26d81b640fee3be1157c450c153d6a8e549a902c0a48d29c"
	if k.ID() != want {
		t.Errorf("key hash drifted:\n got %s\nwant %s", k.ID(), want)
	}
	if k.Version() != "v-test" {
		t.Errorf("version = %q, want v-test", k.Version())
	}
}

// TestKeyDeterminism checks the same material always yields the same
// key, and different material a different one.
func TestKeyDeterminism(t *testing.T) {
	a, _ := NewKey("v1", fixedMaterial)
	b, _ := NewKey("v1", fixedMaterial)
	if a.ID() != b.ID() {
		t.Errorf("identical material hashed differently: %s vs %s", a.ID(), b.ID())
	}
	m := fixedMaterial
	m.Seed++
	c, _ := NewKey("v1", m)
	if c.ID() == a.ID() {
		t.Error("different material collided")
	}
}

type payload struct {
	Kbps float64 `json:"kbps"`
	N    int     `json:"n"`
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := openStore(t)
	k, _ := NewKey("v1", fixedMaterial)

	var got payload
	if s.Get(k, &got) {
		t.Fatal("Get hit on an empty store")
	}
	want := payload{Kbps: 512.25, N: 7}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	if !s.Get(k, &got) {
		t.Fatal("Get missed a just-written entry")
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put / 0 evictions", st)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

// entryPath mirrors Store.path for white-box corruption tests.
func entryPath(s *Store, k Key) string {
	return filepath.Join(s.Dir(), k.ID()[:2], k.ID()+".json")
}

// TestStoreCorruptEntry checks that unreadable entries degrade to a
// miss and are garbage-collected, never surfaced as errors.
func TestStoreCorruptEntry(t *testing.T) {
	cases := map[string]func(path string){
		"garbage":   func(p string) { os.WriteFile(p, []byte("not json at all"), 0o644) },
		"truncated": func(p string) { data, _ := os.ReadFile(p); os.WriteFile(p, data[:len(data)/2], 0o644) },
		"schema": func(p string) {
			os.WriteFile(p, []byte(`{"schema":999,"key":"x","version":"v1","payload":{}}`), 0o644)
		},
		"wrong-key": func(p string) {
			os.WriteFile(p, []byte(`{"schema":1,"key":"deadbeef","version":"v1","payload":{}}`), 0o644)
		},
		"bad-payload": func(p string) {
			os.WriteFile(p, []byte(`{"schema":1,"key":"KEY","version":"v1","payload":["not","a","payload"]}`), 0o644)
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			s := openStore(t)
			k, _ := NewKey("v1", fixedMaterial)
			if err := s.Put(k, payload{Kbps: 1}); err != nil {
				t.Fatal(err)
			}
			path := entryPath(s, k)
			if name == "bad-payload" {
				// Patch the real key in so only the payload is at fault.
				data := []byte(`{"schema":1,"key":"` + k.ID() + `","version":"v1","payload":["not","a","payload"]}`)
				os.WriteFile(path, data, 0o644)
			} else {
				corrupt(path)
			}
			var got payload
			if s.Get(k, &got) {
				t.Fatal("Get hit on a corrupt entry")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry was not garbage-collected")
			}
			if st := s.Stats(); st.Evictions != 1 || st.Misses != 1 {
				t.Errorf("stats = %+v, want 1 eviction / 1 miss", st)
			}
			// The slot is clean again: a fresh Put+Get works.
			if err := s.Put(k, payload{Kbps: 2}); err != nil {
				t.Fatal(err)
			}
			if !s.Get(k, &got) || got.Kbps != 2 {
				t.Error("store did not recover after corruption")
			}
		})
	}
}

// TestStoreVersionInvalidation checks the invalidation lever: an entry
// written by one code version is a miss for another, and the stale file
// is deleted in place.
func TestStoreVersionInvalidation(t *testing.T) {
	s := openStore(t)
	k1, _ := NewKey("v1", fixedMaterial)
	if err := s.Put(k1, payload{Kbps: 1}); err != nil {
		t.Fatal(err)
	}
	k2, _ := NewKey("v2", fixedMaterial)
	if k1.ID() != k2.ID() {
		t.Fatal("version leaked into the hash — bumps would orphan entries instead of invalidating them")
	}
	var got payload
	if s.Get(k2, &got) {
		t.Fatal("v2 Get hit a v1 entry")
	}
	if _, err := os.Stat(entryPath(s, k1)); !os.IsNotExist(err) {
		t.Error("stale-version entry was not garbage-collected")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// The new version repopulates the same address.
	if err := s.Put(k2, payload{Kbps: 2}); err != nil {
		t.Fatal(err)
	}
	if !s.Get(k2, &got) || got.Kbps != 2 {
		t.Error("post-bump Put/Get failed")
	}
}

func TestStorePrune(t *testing.T) {
	s := openStore(t)
	keys := make([]Key, 5)
	base := time.Now().Add(-time.Hour)
	for i := range keys {
		m := fixedMaterial
		m.Seed = int64(i)
		keys[i], _ = NewKey("v1", m)
		if err := s.Put(keys[i], payload{N: i}); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes, oldest first, so eviction order is fixed.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(entryPath(s, keys[i]), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Prune(10); n != 0 {
		t.Errorf("Prune under the limit removed %d", n)
	}
	if n := s.Prune(2); n != 3 {
		t.Errorf("Prune(2) removed %d, want 3", n)
	}
	if s.Len() != 2 {
		t.Errorf("Len after prune = %d, want 2", s.Len())
	}
	var got payload
	for i, k := range keys {
		hit := s.Get(k, &got)
		if wantHit := i >= 3; hit != wantHit {
			t.Errorf("entry %d: hit=%v, want %v (oldest must go first)", i, hit, wantHit)
		}
	}
}

// TestStoreNil checks every method is a safe no-op on a nil store, so
// call sites never need cache-enabled branches.
func TestStoreNil(t *testing.T) {
	var s *Store
	k, _ := NewKey("v1", fixedMaterial)
	var got payload
	if s.Get(k, &got) {
		t.Error("nil Get hit")
	}
	if err := s.Put(k, payload{}); err != nil {
		t.Error(err)
	}
	if s.Len() != 0 || s.Prune(0) != 0 || (s.Stats() != Stats{}) {
		t.Error("nil store reported non-zero state")
	}
}

// TestStatsJSON pins the stats wire names the /stats endpoint exposes.
func TestStatsJSON(t *testing.T) {
	b, err := json.Marshal(Stats{Hits: 1, Misses: 2, Puts: 3, Evictions: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"hits":1,"misses":2,"puts":3,"evictions":4}`
	if string(b) != want {
		t.Errorf("stats JSON = %s, want %s", b, want)
	}
}

func TestPlanShards(t *testing.T) {
	t.Run("coverage", func(t *testing.T) {
		for _, tc := range []struct{ points, reps, shards int }{
			{1, 1, 1}, {3, 2, 2}, {5, 3, 4}, {2, 2, 16},
		} {
			plans := PlanShards(tc.points, tc.reps, tc.shards)
			seen := map[Assignment]bool{}
			total := 0
			for _, plan := range plans {
				for _, a := range plan {
					if seen[a] {
						t.Errorf("%+v: duplicate assignment %+v", tc, a)
					}
					seen[a] = true
					if a.Point < 0 || a.Point >= tc.points || a.Rep < 0 || a.Rep >= tc.reps {
						t.Errorf("%+v: out-of-grid assignment %+v", tc, a)
					}
					total++
				}
			}
			if total != tc.points*tc.reps {
				t.Errorf("%+v: %d assignments, want %d", tc, total, tc.points*tc.reps)
			}
			if len(plans) > tc.points*tc.reps {
				t.Errorf("%+v: %d shards for %d jobs (empty shards planned)", tc, len(plans), tc.points*tc.reps)
			}
			// Balance: shard sizes differ by at most one.
			min, max := total, 0
			for _, plan := range plans {
				if len(plan) < min {
					min = len(plan)
				}
				if len(plan) > max {
					max = len(plan)
				}
			}
			if max-min > 1 {
				t.Errorf("%+v: unbalanced shards (sizes %d..%d)", tc, min, max)
			}
		}
	})
	t.Run("deterministic", func(t *testing.T) {
		a := PlanShards(4, 3, 3)
		b := PlanShards(4, 3, 3)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatal("PlanShards is not deterministic")
				}
			}
		}
	})
}
