// Package fabric is the campaign-execution fabric: the content-addressed
// result store and the shard bookkeeping that let the repository's
// perfectly deterministic campaigns scale beyond one process and one
// run. Every replication of a campaign is a pure function of its inputs
// — internal/campaign derives each run's seed from (base seed, point
// label, rep) and the simulator guarantees byte-identical results for a
// given (scenario, seed) — so a result computed once is correct forever,
// until the simulator's behaviour itself changes.
//
// The package has two halves. Key is a content address: a SHA-256 hash
// of a canonical JSON rendering of everything that determines a run's
// outcome (the normalized point, the derived seed, the scenario file's
// full content, the effective duration), paired with a code-version
// string that is checked — not hashed — at lookup time, so one version
// bump invalidates every prior entry without orphaning their files.
// Store is a persistent on-disk map from Key to a JSON payload, written
// atomically (temp file + rename in the same directory) so concurrent
// writers — worker subprocesses, parallel campaigns, an ezserve instance
// — can share one directory with no coordination, and read tolerantly
// (a truncated, corrupt, or stale-version entry is a miss that deletes
// the bad file, never an error).
//
// Consumers: campaign.Engine consults the store before every
// replication, cmd/ezcampaign and cmd/ezbench thread -cache/-cache-dir
// through to it, and cmd/ezserve fronts it with the HTTP campaign
// service. The determinism tests in internal/campaign pin the contract
// that a warm-cache replay is byte-identical to a cold run and performs
// zero simulations.
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Key is the content address of one cached result: a SHA-256 over the
// canonical JSON form of the key material, plus the producing code's
// version string. The version is deliberately kept out of the hash and
// checked against the stored entry at Get time instead: a version bump
// then invalidates (and garbage-collects) stale entries in place rather
// than leaving them stranded under never-again-referenced hashes.
type Key struct {
	hash    string
	version string
}

// NewKey builds a key from a version string and any JSON-serialisable
// key material. The material must canonically describe everything that
// determines the cached result — two runs whose material marshals
// identically are asserted to produce identical results. Marshalling is
// deterministic for structs (field order) and maps (sorted keys), so the
// same material always yields the same key.
func NewKey(version string, material any) (Key, error) {
	b, err := json.Marshal(material)
	if err != nil {
		return Key{}, fmt.Errorf("fabric: marshalling key material: %w", err)
	}
	sum := sha256.Sum256(b)
	return Key{hash: hex.EncodeToString(sum[:]), version: version}, nil
}

// ID reports the key's content hash in hex — the on-disk entry name.
func (k Key) ID() string { return k.hash }

// Version reports the code-version string the key was built with.
func (k Key) Version() string { return k.version }

// valid reports whether the key was produced by NewKey (the zero Key is
// not addressable).
func (k Key) valid() bool { return k.hash != "" }
