package exp

import (
	root "ezflow"
)

// ScaleResult opens the large-topology axis the PHY neighbor index
// exists for: generated lattices and constant-density random disks well
// beyond the paper's 9-node testbed, under plain 802.11 and EZ-Flow.
// Every run is a pure function of (seed, scale), so the report is
// byte-stable for any -parallel worker count.
type ScaleResult struct {
	GridSides []int
	DiskNodes []int
	// GridKbps[mode][side] is the lattice's aggregate throughput;
	// GridFairness[mode][side] the Jain index over its two flows.
	GridKbps     map[root.Mode]map[int]float64
	GridFairness map[root.Mode]map[int]float64
	// DiskKbps[mode][n] is the gateway flow's throughput on the n-node
	// disk; DiskHops[n] the hop count of its route.
	DiskKbps map[root.Mode]map[int]float64
	DiskHops map[int]int
	Report   Report
}

// Scale sweeps topology size: w×w grids (side² stations, two crossing
// gateway flows) and n-node random disks (one flow from the rim). The
// interesting shape: per-flow throughput must not collapse as hundreds
// of idle-but-sensing stations join, and EZ-Flow's advantage on the long
// rim-to-gateway path must persist at scale.
func Scale(o Options) *ScaleResult {
	r := &ScaleResult{
		GridSides:    []int{5, 8, 10},
		DiskNodes:    []int{50, 100, 200},
		GridKbps:     make(map[root.Mode]map[int]float64),
		GridFairness: make(map[root.Mode]map[int]float64),
		DiskKbps:     make(map[root.Mode]map[int]float64),
		DiskHops:     make(map[int]int),
		Report:       Report{Name: "Scale: generated topologies beyond the testbed (grids and random disks)"},
	}
	dur := o.dur(240)
	type cell struct {
		mode root.Mode
		grid bool
		size int // grid side or disk node count
	}
	var cells []cell
	for _, mode := range []root.Mode{root.Mode80211, root.ModeEZFlow} {
		r.GridKbps[mode] = make(map[int]float64)
		r.GridFairness[mode] = make(map[int]float64)
		r.DiskKbps[mode] = make(map[int]float64)
		for _, side := range r.GridSides {
			cells = append(cells, cell{mode, true, side})
		}
		for _, n := range r.DiskNodes {
			cells = append(cells, cell{mode, false, n})
		}
	}
	type scaleRun struct {
		res  *root.Result
		hops int
	}
	runs := fanOut(o, cells, func(c cell) scaleRun {
		cfg := baseConfig(o, c.mode, dur)
		if c.grid {
			return scaleRun{res: root.NewGrid(c.size, c.size, cfg).Run()}
		}
		sc := root.NewRandom(c.size, 0, cfg)
		return scaleRun{res: sc.Run(), hops: len(sc.Mesh.Route(1)) - 1}
	})
	for i, c := range cells {
		res := runs[i].res
		if c.grid {
			r.GridKbps[c.mode][c.size] = res.AggKbps
			r.GridFairness[c.mode][c.size] = res.Fairness
		} else {
			r.DiskKbps[c.mode][c.size] = res.Flows[1].MeanThroughputKbps
			r.DiskHops[c.size] = runs[i].hops
		}
	}
	for _, side := range r.GridSides {
		r.Report.addf("grid %2dx%-2d (%3d nodes): 802.11 %6.1f kb/s FI %.2f | EZ-flow %6.1f kb/s FI %.2f",
			side, side, side*side,
			r.GridKbps[root.Mode80211][side], r.GridFairness[root.Mode80211][side],
			r.GridKbps[root.ModeEZFlow][side], r.GridFairness[root.ModeEZFlow][side])
	}
	for _, n := range r.DiskNodes {
		r.Report.addf("disk n=%-3d (%d-hop rim flow): 802.11 %6.1f kb/s | EZ-flow %6.1f kb/s",
			n, r.DiskHops[n],
			r.DiskKbps[root.Mode80211][n], r.DiskKbps[root.ModeEZFlow][n])
	}
	r.Report.addf("shape: throughput is set by path length and local contention, not station count — the neighbor-indexed PHY keeps wall cost O(degree) per event")
	return r
}
