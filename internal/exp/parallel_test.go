package exp

import "testing"

// TestParallelInvariance is the acceptance check for the campaign
// rewiring: an experiment's report must be byte-identical whether its
// runs execute serially or fanned out over workers, because every run is
// independently seeded and results are collected in submission order.
func TestParallelInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	o := Options{Seed: 1, Scale: 0.02}
	serial := Fig1(o).Report.String()
	o.Parallel = 4
	parallel := Fig1(o).Report.String()
	if serial != parallel {
		t.Errorf("Fig1 report differs with -parallel:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}

	o = Options{Seed: 3, Scale: 0.02}
	rs := RTSCTS(o).Report.String()
	o.Parallel = 8
	rp := RTSCTS(o).Report.String()
	if rs != rp {
		t.Errorf("RTSCTS report differs with -parallel:\nserial:\n%s\nparallel:\n%s", rs, rp)
	}
}
