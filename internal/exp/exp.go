// Package exp defines the reproduction of every table and figure in the
// paper's evaluation (§4 experiments, §5 simulations, §6 analysis). Each
// experiment is a pure function of (seed, scale): scale < 1 shrinks the
// simulated durations proportionally so the same harness serves quick
// tests, `go test -bench`, and full paper-duration runs from cmd/ezbench.
//
// Every experiment returns a typed result plus a human-readable report that
// prints the same rows/series the paper reports, side by side with the
// paper's published numbers where applicable.
package exp

import (
	"fmt"
	"strings"

	root "ezflow"
	"ezflow/internal/buildinfo"
	"ezflow/internal/campaign"
	"ezflow/internal/fabric"
	"ezflow/internal/mesh"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Options controls an experiment run.
type Options struct {
	Seed int64
	// Scale multiplies all simulated durations (1.0 = the paper's).
	Scale float64
	// Parallel is the maximum number of scenario runs in flight; 0 or 1
	// runs serially. Every experiment submits its independent runs
	// through the campaign pool and collects them in submission order,
	// so reports are identical for any value.
	Parallel int
	// Cache, when non-nil, is the fabric result store the registry
	// head-to-head experiments (Controllers, Routing) consult before
	// simulating a grid cell and fill afterwards — `ezbench -cache`
	// threads it here, so experiment reruns share the store campaigns
	// use. Cached cells are the scalar summary rows, keyed by
	// (experiment, cell, seed, duration) plus the code version, so a
	// release bump invalidates them exactly like campaign entries.
	Cache *fabric.Store
}

// DefaultOptions runs at 1/4 of the paper durations — long enough for the
// steady-state shapes, short enough for iterative work.
func DefaultOptions() Options { return Options{Seed: 1, Scale: 0.25} }

func (o Options) dur(paperSeconds float64) sim.Time {
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	s := paperSeconds * o.Scale
	if s < 30 {
		s = 30
	}
	return sim.FromSeconds(s)
}

// Report is a formatted experiment report.
type Report struct {
	Name  string
	Lines []string
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	return fmt.Sprintf("=== %s ===\n%s\n", r.Name, strings.Join(r.Lines, "\n"))
}

// saturating is the paper's CBR source rate (2 Mb/s over a 1 Mb/s channel).
const saturating = 2e6

// fanOut runs one job per item on the campaign worker pool and returns
// the results in item order. It is the bridge every experiment uses to
// parallelise its independent scenario runs.
func fanOut[A, T any](o Options, items []A, run func(A) T) []T {
	jobs := make([]func() T, len(items))
	for i, it := range items {
		it := it
		jobs[i] = func() T { return run(it) }
	}
	return campaign.RunAll(o.Parallel, jobs)
}

// cellKeyMaterial is the canonical description of one cached experiment
// grid cell. Cell must be a struct with exported fields that uniquely
// identifies the cell within the experiment.
type cellKeyMaterial struct {
	Schema      int     `json:"schema"`
	Kind        string  `json:"kind"`
	Seed        int64   `json:"seed"`
	DurationSec float64 `json:"duration_sec"`
	Cell        any     `json:"cell"`
}

// cachedCell satisfies one experiment grid cell from o.Cache, or
// computes and stores it. The cached payload is the cell's scalar
// summary row (T must round-trip through JSON), never raw simulator
// state — traces and series are recomputed, summaries are not. With no
// cache attached it degrades to a plain call.
func cachedCell[T any](o Options, kind string, durSec float64, cell any, compute func() T) T {
	if o.Cache == nil {
		return compute()
	}
	key, err := fabric.NewKey(buildinfo.Release, cellKeyMaterial{
		Schema: 1, Kind: kind, Seed: o.Seed, DurationSec: durSec, Cell: cell,
	})
	if err != nil {
		return compute()
	}
	var out T
	if o.Cache.Get(key, &out) {
		return out
	}
	v := compute()
	o.Cache.Put(key, v) //nolint:errcheck // cache writes are best-effort
	return v
}

// baseConfig returns the shared simulation configuration.
func baseConfig(o Options, mode root.Mode, duration sim.Time) root.Config {
	cfg := root.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Mode = mode
	cfg.Duration = duration
	return cfg
}

// --------------------------------------------------------------------------
// Figure 1: buffer evolution of 3-hop vs 4-hop chains under plain 802.11.

// Fig1Result holds per-chain relay queue statistics.
type Fig1Result struct {
	// MeanQueue[hops][node] and MaxQueue[hops][node] for relays 1..hops-1.
	MeanQueue map[int]map[int]float64
	MaxQueue  map[int]map[int]float64
	// ThroughputKbps per chain length.
	ThroughputKbps map[int]float64
	Report         Report
}

// Fig1 reproduces Figure 1: the 3-hop network is stable while the 4-hop
// network is turbulent, with the first relay's buffer building up to
// saturation.
func Fig1(o Options) *Fig1Result {
	r := &Fig1Result{
		MeanQueue:      make(map[int]map[int]float64),
		MaxQueue:       make(map[int]map[int]float64),
		ThroughputKbps: make(map[int]float64),
		Report:         Report{Name: "Figure 1: buffer evolution, 3-hop vs 4-hop, plain 802.11"},
	}
	dur := o.dur(1800)
	chains := []int{3, 4}
	results := fanOut(o, chains, func(hops int) *root.Result {
		cfg := baseConfig(o, root.Mode80211, dur)
		sc := root.NewChain(hops, cfg, root.FlowSpec{Flow: 1, RateBps: saturating})
		return sc.Run()
	})
	for i, hops := range chains {
		res := results[i]
		r.MeanQueue[hops] = make(map[int]float64)
		r.MaxQueue[hops] = make(map[int]float64)
		for i := 1; i < hops; i++ {
			tr := res.QueueTraces[pkt.NodeID(i)]
			r.MeanQueue[hops][i] = tr.Mean()
			r.MaxQueue[hops][i] = tr.Max()
		}
		r.ThroughputKbps[hops] = res.Flows[1].MeanThroughputKbps
		r.Report.addf("%d-hop: throughput %.1f kb/s", hops, r.ThroughputKbps[hops])
		for i := 1; i < hops; i++ {
			r.Report.addf("  node %d buffer: mean %.1f max %.0f pkts",
				i, r.MeanQueue[hops][i], r.MaxQueue[hops][i])
		}
	}
	r.Report.addf("paper shape: 3-hop buffers stay low; 4-hop first relay builds to the 50-pkt cap")
	return r
}

// --------------------------------------------------------------------------
// Table 1: per-link capacities of flow F1 on the testbed.

// Table1Result holds measured single-link saturation throughputs.
type Table1Result struct {
	MeanKbps []float64
	StdKbps  []float64
	Report   Report
}

// PaperTable1Kbps are the published link capacities for l0..l6.
var PaperTable1Kbps = []float64{845, 672, 408, 748, 746, 805, 648}

// Table1 measures each link of F1 in isolation, exactly as the paper's
// Table 1 does over 1200 s.
func Table1(o Options) *Table1Result {
	r := &Table1Result{Report: Report{Name: "Table 1: link capacities of F1 (testbed)"}}
	dur := o.dur(1200)
	links := []int{0, 1, 2, 3, 4, 5, 6}
	results := fanOut(o, links, func(i int) *root.Result {
		cfg := baseConfig(o, root.Mode80211, dur)
		sc := root.NewScenario(cfg, func(eng *sim.Engine) *mesh.Mesh {
			m := mesh.Testbed(eng, cfg.PHY, cfg.MAC)
			// Route a private probe flow over just this link.
			m.SetRoute(99, []pkt.NodeID{pkt.NodeID(i), pkt.NodeID(i + 1)})
			return m
		}, root.FlowSpec{Flow: 99, RateBps: saturating})
		return sc.Run()
	})
	for i, res := range results {
		fr := res.Flows[99]
		r.MeanKbps = append(r.MeanKbps, fr.MeanThroughputKbps)
		r.StdKbps = append(r.StdKbps, fr.StdThroughputKbps)
		r.Report.addf("l%d: measured %6.0f ± %4.0f kb/s   (paper: %4.0f kb/s)",
			i, fr.MeanThroughputKbps, fr.StdThroughputKbps, PaperTable1Kbps[i])
	}
	r.Report.addf("shape check: l2 is the bottleneck in both")
	return r
}

// Bottleneck reports the index of the weakest measured link.
func (t *Table1Result) Bottleneck() int {
	best, idx := -1.0, -1
	for i, v := range t.MeanKbps {
		if idx < 0 || v < best {
			best, idx = v, i
		}
	}
	return idx
}

// --------------------------------------------------------------------------
// Figure 4 + Table 2: testbed measurements with and without EZ-Flow.

// TestbedScenario names the three workloads of §4.3.
type TestbedScenario int

const (
	// F1Alone runs only the 7-hop flow F1.
	F1Alone TestbedScenario = iota
	// F2Alone runs only the 4-hop flow F2.
	F2Alone
	// ParkingLot runs both flows sharing F1's tail (§4.3's third case).
	ParkingLot
)

// String returns the paper's name for the workload.
func (s TestbedScenario) String() string {
	switch s {
	case F1Alone:
		return "F1 alone"
	case F2Alone:
		return "F2 alone"
	default:
		return "F1+F2 parking lot"
	}
}

// TestbedRun is the outcome of one testbed workload under one mode.
type TestbedRun struct {
	Mode      root.Mode
	Scenario  TestbedScenario
	FlowKbps  map[pkt.FlowID]float64
	FlowStd   map[pkt.FlowID]float64
	Fairness  float64
	MeanQueue map[pkt.NodeID]float64
	FinalCW   map[string]int
}

// Fig4Table2Result bundles all six runs.
type Fig4Table2Result struct {
	Runs   []*TestbedRun
	Report Report
}

// Get returns the run for (scenario, mode).
func (r *Fig4Table2Result) Get(s TestbedScenario, m root.Mode) *TestbedRun {
	for _, run := range r.Runs {
		if run.Scenario == s && run.Mode == m {
			return run
		}
	}
	return nil
}

// Fig4Table2 reproduces the testbed evaluation: buffer occupancy traces
// (Figure 4) and the throughput/fairness table (Table 2) for F1 alone, F2
// alone, and the parking-lot combination, with and without EZ-Flow. The
// testbed's MadWifi limitation is reproduced with a 2^10 hardware cap.
func Fig4Table2(o Options) *Fig4Table2Result {
	out := &Fig4Table2Result{Report: Report{Name: "Figure 4 + Table 2: testbed, ±EZ-Flow"}}
	dur := o.dur(1800)
	type cell struct {
		scen TestbedScenario
		mode root.Mode
	}
	var cells []cell
	for _, scen := range []TestbedScenario{F1Alone, F2Alone, ParkingLot} {
		for _, mode := range []root.Mode{root.Mode80211, root.ModeEZFlow} {
			cells = append(cells, cell{scen, mode})
		}
	}
	testbedFlows := func(scen TestbedScenario) []root.FlowSpec {
		var flows []root.FlowSpec
		if scen == F1Alone || scen == ParkingLot {
			flows = append(flows, root.FlowSpec{Flow: 1, RateBps: saturating})
		}
		if scen == F2Alone || scen == ParkingLot {
			flows = append(flows, root.FlowSpec{Flow: 2, RateBps: saturating})
		}
		return flows
	}
	results := fanOut(o, cells, func(c cell) *root.Result {
		cfg := baseConfig(o, c.mode, dur)
		cfg.MAC.HardwareCWCap = 1 << 10 // MadWifi constraint (§4.1)
		sc := root.NewTestbed(cfg, testbedFlows(c.scen)...)
		return sc.Run()
	})
	for i, c := range cells {
		res := results[i]
		flows := testbedFlows(c.scen)
		run := &TestbedRun{
			Mode: c.mode, Scenario: c.scen,
			FlowKbps:  make(map[pkt.FlowID]float64),
			FlowStd:   make(map[pkt.FlowID]float64),
			Fairness:  res.Fairness,
			MeanQueue: res.MeanQueue,
			FinalCW:   res.FinalCW,
		}
		for _, fs := range flows {
			fr := res.Flows[fs.Flow]
			run.FlowKbps[fs.Flow] = fr.MeanThroughputKbps
			run.FlowStd[fs.Flow] = fr.StdThroughputKbps
		}
		out.Runs = append(out.Runs, run)
		line := fmt.Sprintf("%-18s %-8s:", c.scen, c.mode)
		for _, fs := range flows {
			line += fmt.Sprintf("  %v %6.1f±%5.1f kb/s", fs.Flow,
				run.FlowKbps[fs.Flow], run.FlowStd[fs.Flow])
		}
		if c.scen == ParkingLot {
			line += fmt.Sprintf("  FI=%.2f", run.Fairness)
		}
		out.Report.addf("%s", line)
	}
	out.Report.addf("paper: F1 119->148, F2 157->185; parking lot FI 0.55->0.96 with EZ-flow")
	// Figure 4 view: first-relay buffers.
	for _, scen := range []TestbedScenario{F1Alone, F2Alone} {
		plain := out.Get(scen, root.Mode80211)
		ezr := out.Get(scen, root.ModeEZFlow)
		var nodes []pkt.NodeID
		if scen == F1Alone {
			nodes = []pkt.NodeID{1, 2, 3}
		} else {
			nodes = []pkt.NodeID{4, 5, 6}
		}
		for _, n := range nodes {
			out.Report.addf("Fig4 %-9s N%-2d mean buffer: 802.11 %5.1f -> EZ-flow %5.1f",
				scen, n, plain.MeanQueue[n], ezr.MeanQueue[n])
		}
	}
	return out
}
