package exp

import (
	root "ezflow"
	"ezflow/internal/routing"
)

// --------------------------------------------------------------------------
// Routing × control-plane cross product: what the strategy registry buys
// on lossy topologies. The paper routes every flow along minimum-hop
// paths; on a loss-free disk that is optimal, but with the edge-of-range
// loss model calibrated (links near the transmission-range limit erase
// with realistic probability — the paper's own Table 1 measures testbed
// losses up to 43%), minimum hop count deliberately picks the longest,
// most marginal links. This experiment reruns the DiskScaling sweep with
// every registered routing strategy under both plain 802.11 and EZ-Flow,
// reporting throughput, hop count, and the path's expected transmission
// count (ETX) — the shape to look for is "etx" trading a hop or two of
// path length for clean links and recovering the throughput that
// collapses under "bfs" at n=200.

// RoutingStrategies is the head-to-head set, in report order: the
// minimum-hop default first, then the two quality-aware strategies.
var RoutingStrategies = []string{"bfs", "etx", "kshortest"}

// RoutingEdgeLoss is the edge-of-range loss ceiling the experiment
// calibrates (mesh.ApplyEdgeLoss): marginal links erase up to 50% of
// frames, squarely inside the paper's measured testbed loss range.
const RoutingEdgeLoss = 0.5

// RoutingRun is one (strategy, mode, disk size) cell.
type RoutingRun struct {
	Strategy string
	Mode     root.Mode
	Nodes    int
	// Hops is the installed rim-flow route length in hops.
	Hops int
	// PathETX is the route's expected total transmission count under the
	// calibrated losses — the cost "etx" minimises; "bfs" pays it blindly.
	PathETX float64
	// Kbps is the rim flow's mean goodput.
	Kbps float64
}

// RoutingResult bundles the full cross product.
type RoutingResult struct {
	DiskNodes []int
	Runs      []*RoutingRun
	Report    Report
}

// Get returns the cell for (strategy, mode, nodes), or nil.
func (r *RoutingResult) Get(strategy string, mode root.Mode, nodes int) *RoutingRun {
	for _, run := range r.Runs {
		if run.Strategy == strategy && run.Mode == mode && run.Nodes == nodes {
			return run
		}
	}
	return nil
}

// routingCell identifies one run of the cross product.
type routingCell struct {
	strategy string
	mode     root.Mode
	nodes    int
}

// Routing runs the strategy head-to-head over constant-density lossy
// random disks at n = 100, 200, 400 with a saturating rim-to-gateway
// flow, under plain 802.11 and EZ-Flow. All runs fan out over the
// campaign worker pool; output is identical for any Parallel.
func Routing(o Options) *RoutingResult {
	out := &RoutingResult{
		DiskNodes: []int{100, 200, 400},
		Report:    Report{Name: "Routing strategies: bfs vs etx vs kshortest on lossy random disks"},
	}
	dur := o.dur(240)

	var cells []routingCell
	for _, n := range out.DiskNodes {
		for _, mode := range []root.Mode{root.Mode80211, root.ModeEZFlow} {
			for _, s := range RoutingStrategies {
				cells = append(cells, routingCell{s, mode, n})
			}
		}
	}
	// Each cell caches its scalar summary row in the fabric store when
	// one is attached, so experiment reruns skip the simulations.
	outcomes := fanOut(o, cells, func(c routingCell) RoutingRun {
		cellID := struct {
			Strategy string    `json:"strategy"`
			Mode     root.Mode `json:"mode"`
			Nodes    int       `json:"nodes"`
			EdgeLoss float64   `json:"edge_loss"`
		}{c.strategy, c.mode, c.nodes, RoutingEdgeLoss}
		return cachedCell(o, "exp.routing", dur.Seconds(), cellID, func() RoutingRun {
			cfg := baseConfig(o, c.mode, dur)
			cfg.Routing = c.strategy
			sc := root.NewRandomLossy(c.nodes, 0, RoutingEdgeLoss, cfg,
				root.FlowSpec{Flow: 1, RateBps: saturating})
			// Score the installed route before the run: counters are all zero
			// here, so PathCost reports the calibrated (not measured) ETX and
			// every strategy is judged against the same yardstick.
			path := sc.Mesh.Route(1)
			metric := &routing.ETX{MinAcked: routing.DefaultOptions().MinAcked}
			cost := metric.PathCost(sc.Mesh.RoutingGraph(nil), path)
			res := sc.Run()
			return RoutingRun{
				Strategy: c.strategy,
				Mode:     c.mode,
				Nodes:    c.nodes,
				Hops:     len(path) - 1,
				PathETX:  cost,
				Kbps:     res.Flows[1].MeanThroughputKbps,
			}
		})
	})

	for i := range cells {
		run := outcomes[i]
		out.Runs = append(out.Runs, &run)
	}

	out.Report.addf("constant-density disks, edge-of-range loss ceiling %.0f%% (mesh.ApplyEdgeLoss), saturating rim flow", RoutingEdgeLoss*100)
	for _, n := range out.DiskNodes {
		out.Report.addf("disk n=%d:", n)
		for _, s := range RoutingStrategies {
			r80 := out.Get(s, root.Mode80211, n)
			rez := out.Get(s, root.ModeEZFlow, n)
			out.Report.addf("  %-10s %d hops, path ETX %5.2f: 802.11 %6.1f kb/s | EZ-flow %6.1f kb/s",
				s, r80.Hops, r80.PathETX, r80.Kbps, rez.Kbps)
		}
	}
	out.Report.addf("shape: bfs minimises hops over marginal links and pays for it in retries;")
	out.Report.addf("etx takes extra hops on clean links, cutting path ETX and recovering the n=200 collapse")
	return out
}
