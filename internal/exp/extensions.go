package exp

import (
	root "ezflow"
	"ezflow/internal/mesh"
)

// HopSweepResult extends Figure 1 across chain lengths: per-hop-count
// throughput and first-relay backlog for plain 802.11 and EZ-Flow. It is
// the quantitative form of the paper's claim that networks longer than
// three hops are intrinsically unstable and that EZ-Flow repairs them.
type HopSweepResult struct {
	Hops []int
	// Throughput[mode][hops], FirstRelayQueue[mode][hops].
	Throughput      map[root.Mode]map[int]float64
	FirstRelayQueue map[root.Mode]map[int]float64
	Report          Report
}

// HopSweep measures chains of 2..7 hops under both modes.
func HopSweep(o Options) *HopSweepResult {
	r := &HopSweepResult{
		Hops:            []int{2, 3, 4, 5, 6, 7},
		Throughput:      make(map[root.Mode]map[int]float64),
		FirstRelayQueue: make(map[root.Mode]map[int]float64),
		Report:          Report{Name: "Hop sweep: throughput and first-relay backlog vs chain length"},
	}
	dur := o.dur(1200)
	type cell struct {
		mode root.Mode
		hops int
	}
	var cells []cell
	for _, mode := range []root.Mode{root.Mode80211, root.ModeEZFlow} {
		r.Throughput[mode] = make(map[int]float64)
		r.FirstRelayQueue[mode] = make(map[int]float64)
		for _, hops := range r.Hops {
			cells = append(cells, cell{mode, hops})
		}
	}
	results := fanOut(o, cells, func(c cell) *root.Result {
		cfg := baseConfig(o, c.mode, dur)
		sc := root.NewChain(c.hops, cfg, root.FlowSpec{Flow: 1, RateBps: saturating})
		return sc.Run()
	})
	for i, c := range cells {
		r.Throughput[c.mode][c.hops] = results[i].Flows[1].MeanThroughputKbps
		r.FirstRelayQueue[c.mode][c.hops] = results[i].MeanQueue[1]
	}
	for _, hops := range r.Hops {
		r.Report.addf("%d hops: 802.11 %6.1f kb/s (q1 %4.1f) | EZ-flow %6.1f kb/s (q1 %4.1f)",
			hops,
			r.Throughput[root.Mode80211][hops], r.FirstRelayQueue[root.Mode80211][hops],
			r.Throughput[root.ModeEZFlow][hops], r.FirstRelayQueue[root.ModeEZFlow][hops])
	}
	r.Report.addf("shape: <=3 hops stable either way; beyond, 802.11 queues blow up and EZ-flow holds them down")
	return r
}

// TreeResult exercises the §7 downlink extension: EZ-Flow with one
// controller per successor queue on a branching tree.
type TreeResult struct {
	Branching, Depth int
	// AggKbps and Fairness per mode.
	AggKbps  map[root.Mode]float64
	Fairness map[root.Mode]float64
	// GatewayQueues is the number of per-successor queues at the gateway.
	GatewayQueues int
	Report        Report
}

// TreeDownlink runs a (branching, depth) tree with one downlink flow per
// leaf under both modes.
func TreeDownlink(o Options, branching, depth int) *TreeResult {
	r := &TreeResult{
		Branching: branching, Depth: depth,
		AggKbps:  make(map[root.Mode]float64),
		Fairness: make(map[root.Mode]float64),
		Report:   Report{Name: "Tree downlink (§7 extension): per-successor queues"},
	}
	dur := o.dur(1200)
	type treeRun struct {
		res    *root.Result
		queues int
	}
	modes := []root.Mode{root.Mode80211, root.ModeEZFlow}
	runs := fanOut(o, modes, func(mode root.Mode) treeRun {
		cfg := baseConfig(o, mode, dur)
		sc := root.NewTree(branching, depth, cfg)
		queues := len(sc.Mesh.Node(0).Queues())
		return treeRun{res: sc.Run(), queues: queues}
	})
	for i, mode := range modes {
		res := runs[i].res
		if mode == root.Mode80211 {
			r.GatewayQueues = runs[i].queues
		}
		r.AggKbps[mode] = res.AggKbps
		r.Fairness[mode] = res.Fairness
		r.Report.addf("%-8s aggregate %6.1f kb/s  FI %.2f", mode, res.AggKbps, res.Fairness)
	}
	r.Report.addf("gateway runs %d per-successor queues (802.11e-style, <= %d)",
		r.GatewayQueues, mesh.MaxSuccessors)
	return r
}

// RTSCTSResult quantifies the paper's §5.1 argument for disabling RTS/CTS:
// with a 550 m sensing range covering more than the 2x250 m the handshake
// protects, RTS/CTS adds overhead without preventing the relevant
// collisions.
type RTSCTSResult struct {
	// ThroughputKbps[useRTSCTS]
	ThroughputKbps map[bool]float64
	DelaySec       map[bool]float64
	Report         Report
}

// RTSCTS compares the 4-hop chain with and without the handshake.
func RTSCTS(o Options) *RTSCTSResult {
	r := &RTSCTSResult{
		ThroughputKbps: make(map[bool]float64),
		DelaySec:       make(map[bool]float64),
		Report:         Report{Name: "RTS/CTS ablation (§5.1: the handshake is useless at these ranges)"},
	}
	dur := o.dur(1200)
	variants := []bool{false, true}
	results := fanOut(o, variants, func(use bool) *root.Result {
		cfg := baseConfig(o, root.Mode80211, dur)
		cfg.MAC.UseRTSCTS = use
		sc := root.NewChain(4, cfg, root.FlowSpec{Flow: 1, RateBps: saturating})
		return sc.Run()
	})
	for i, use := range variants {
		res := results[i]
		r.ThroughputKbps[use] = res.Flows[1].MeanThroughputKbps
		r.DelaySec[use] = res.Flows[1].MeanDelaySec
		label := "off"
		if use {
			label = "on"
		}
		r.Report.addf("RTS/CTS %-3s: %6.1f kb/s, delay %.2fs", label,
			r.ThroughputKbps[use], r.DelaySec[use])
	}
	return r
}
