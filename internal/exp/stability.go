package exp

import (
	root "ezflow"
	"ezflow/internal/dynamics"
	"ezflow/internal/sim"
)

// --------------------------------------------------------------------------
// Stability under fault injection: recovery from a mid-run link failure.
// This experiment goes beyond the paper's frozen topologies — it probes
// the claim the whole paper rests on (EZ-Flow restores stability without
// message passing) under the perturbation regime of the dynamics
// subsystem: the middle link of a 4-hop chain fails mid-run and returns
// shortly after. The paper's Figure 1 already shows plain 802.11 is
// turbulent on this chain; the question here is what happens on top of
// that when the network breaks and heals.

// StabilityRun is one mode's outcome in the stability experiment.
type StabilityRun struct {
	Mode root.Mode
	// ThroughputKbps is the whole-run mean goodput.
	ThroughputKbps float64
	// PreFaultKbps is the mean goodput before the failure.
	PreFaultKbps float64
	// RecoverySec is the time from failure until goodput returned to
	// within the tolerance of pre-fault (includes the outage; < 0 means
	// never).
	RecoverySec float64
	// MaxExcursionPkts is the largest relay backlog from the failure on.
	MaxExcursionPkts float64
	// TailMaxQueuePkts is the largest relay backlog over the final third
	// of the run — at the buffer cap for a controller that stayed
	// turbulent, small for one that restabilised.
	TailMaxQueuePkts float64
	// Recovered reports whether the flow recovered.
	Recovered bool
}

// StabilityResult bundles the three modes' runs.
type StabilityResult struct {
	Hops   int
	Runs   []*StabilityRun
	Report Report
}

// Get returns the run for a mode, or nil.
func (r *StabilityResult) Get(m root.Mode) *StabilityRun {
	for _, run := range r.Runs {
		if run.Mode == m {
			return run
		}
	}
	return nil
}

// Stability reproduces the link-failure recovery experiment: a saturating
// flow over a 4-hop chain, the middle link severed at one third of the
// run and restored a twentieth of the run later, under plain 802.11,
// EZ-Flow, and DiffQ. EZ-Flow recovers — finite recovery time and relay
// buffers back to small values by the final third — while 802.11's first
// relay keeps hitting the 50-packet cap (the turbulence of Figure 1,
// which the fault's backlog seeds immediately rather than eventually).
func Stability(o Options) *StabilityResult {
	const hops = 4
	out := &StabilityResult{
		Hops:   hops,
		Report: Report{Name: "Stability: recovery from a mid-run link failure (4-hop chain)"},
	}
	dur := o.dur(600)
	downAt := dur / 3
	upAt := downAt + dur/20
	modes := []root.Mode{root.Mode80211, root.ModeEZFlow, root.ModeDiffQ}
	results := fanOut(o, modes, func(mode root.Mode) *root.Result {
		cfg := baseConfig(o, mode, dur)
		cfg.WarmupSkip = dur / 10
		sc := root.NewChain(hops, cfg, root.FlowSpec{Flow: 1, RateBps: saturating})
		a, b := dynamics.MiddleLink(sc.Mesh, 1)
		script := &dynamics.Script{Events: dynamics.Flap(a, b, downAt, upAt, true)}
		if err := sc.AddDynamics(script); err != nil {
			panic(err)
		}
		return sc.Run()
	})
	out.Report.addf("link N1<->N2 down at %v, up at %v (run %v)",
		downAt, upAt, dur)
	for i, mode := range modes {
		res := results[i]
		st := res.Stability
		run := &StabilityRun{
			Mode:             mode,
			ThroughputKbps:   res.Flows[1].MeanThroughputKbps,
			PreFaultKbps:     st.PreFaultKbps[1],
			RecoverySec:      st.RecoverySec[1],
			MaxExcursionPkts: st.MaxQueueExcursion,
			TailMaxQueuePkts: st.TailMaxQueuePkts,
			Recovered:        st.Recovered,
		}
		out.Runs = append(out.Runs, run)
		verdict := "stable after repair"
		if run.TailMaxQueuePkts >= 45 {
			verdict = "queues still hit the cap"
		}
		rec := "never"
		if run.RecoverySec >= 0 {
			rec = sim.FromSeconds(run.RecoverySec).String()
		}
		out.Report.addf("%-9s pre-fault %6.1f kb/s  recovery %-10s excursion %4.0f pkts  tail max %4.0f pkts  (%s)",
			mode.String()+":", run.PreFaultKbps, rec, run.MaxExcursionPkts, run.TailMaxQueuePkts, verdict)
	}
	out.Report.addf("expected shape: EZ-flow drains the fault backlog and settles; 802.11 stays turbulent at the cap")
	return out
}
