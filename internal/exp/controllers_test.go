package exp

import (
	"testing"

	root "ezflow"
)

// tinyControllers runs the head-to-head at the shortest duration with the
// given worker count.
func tinyControllers(parallel int) *ControllersResult {
	return Controllers(Options{Seed: 1, Scale: 0.01, Parallel: parallel})
}

// TestControllersMatrix checks the head-to-head covers the full grid —
// every competitor controller on both topologies under all three dynamics
// regimes — and that the signalling schemes (and only they) pay control
// bytes.
func TestControllersMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	res := tinyControllers(4)
	want := len(CompetitorControllers) * 2 * len(ControllerDynamics)
	if len(res.Runs) != want {
		t.Fatalf("got %d runs, want %d", len(res.Runs), want)
	}
	for _, topo := range []string{"chain4", "parking-lot"} {
		for _, dyn := range ControllerDynamics {
			for _, ctrl := range CompetitorControllers {
				run := res.Get(ctrl, topo, dyn)
				if run == nil {
					t.Fatalf("missing cell (%s, %s, %s)", ctrl, topo, dyn)
				}
				if run.AggKbps <= 0 {
					t.Errorf("(%s, %s, %s): no goodput", ctrl, topo, dyn)
				}
				switch ctrl {
				case "backpressure", "feedback":
					if run.OverheadBytes == 0 {
						t.Errorf("(%s, %s, %s): signalling scheme reported zero overhead", ctrl, topo, dyn)
					}
				case "staticcap", "ezflow":
					if run.OverheadBytes != 0 {
						t.Errorf("(%s, %s, %s): message-free scheme reported overhead %d", ctrl, topo, dyn, run.OverheadBytes)
					}
				}
				if dyn == "static" {
					if run.RecoverySec != -1 || !run.Recovered {
						t.Errorf("(%s, %s, %s): static cell carries fault metrics", ctrl, topo, dyn)
					}
				}
			}
		}
	}
}

// TestControllersParallelInvariance pins the report to identical output
// for any worker count.
func TestControllersParallelInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	a := tinyControllers(1).Report.String()
	b := tinyControllers(7).Report.String()
	if a != b {
		t.Errorf("reports diverge between parallel=1 and parallel=7:\n%s\nvs\n%s", a, b)
	}
}

// TestControllersSelectable checks the config path the experiment relies
// on: an unknown controller name must panic at wiring, not run silently
// uncontrolled.
func TestControllersSelectable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown controller wired without panic")
		}
	}()
	cfg := root.DefaultConfig()
	cfg.Duration = root.Second
	cfg.Controller = "definitely-not-registered"
	root.NewChain(2, cfg, root.FlowSpec{Flow: 1, RateBps: 1e5})
}
