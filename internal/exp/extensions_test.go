package exp

import (
	"testing"

	root "ezflow"
)

func TestHopSweepShape(t *testing.T) {
	r := HopSweep(quick)
	// Throughput under plain 802.11 decreases with hop count (2 and 3 may
	// be close; 4+ must fall).
	p := r.Throughput[root.Mode80211]
	if !(p[3] > p[4] && p[4] >= p[5]*0.95) {
		t.Errorf("802.11 throughput not degrading with hops: %v", p)
	}
	// The 3-hop chain is the paper's stable case. (2 hops is critically
	// loaded — source and relay split the channel exactly — so its queue
	// legitimately random-walks high; the stability claim starts at 3.)
	if r.FirstRelayQueue[root.Mode80211][3] > 10 {
		t.Errorf("3-hop chain unstable under 802.11: q1=%.1f",
			r.FirstRelayQueue[root.Mode80211][3])
	}
	// Long chains: EZ-Flow keeps the first relay well below plain 802.11.
	for _, hops := range []int{5, 6, 7} {
		plain := r.FirstRelayQueue[root.Mode80211][hops]
		with := r.FirstRelayQueue[root.ModeEZFlow][hops]
		if with > plain/2 {
			t.Errorf("%d hops: EZ-flow q1 %.1f not well below 802.11 %.1f",
				hops, with, plain)
		}
	}
}

func TestTreeDownlinkShape(t *testing.T) {
	r := TreeDownlink(quick, 3, 2)
	if r.GatewayQueues != 3 {
		t.Fatalf("gateway queues = %d, want 3 (one per successor)", r.GatewayQueues)
	}
	for _, mode := range []root.Mode{root.Mode80211, root.ModeEZFlow} {
		if r.AggKbps[mode] <= 0 {
			t.Fatalf("%v delivered nothing", mode)
		}
	}
	// The downlink tree is CAA-controlled per successor; EZ-Flow must not
	// collapse aggregate throughput nor fairness.
	if r.AggKbps[root.ModeEZFlow] < 0.7*r.AggKbps[root.Mode80211] {
		t.Errorf("EZ-flow collapsed tree throughput: %.1f vs %.1f",
			r.AggKbps[root.ModeEZFlow], r.AggKbps[root.Mode80211])
	}
	if r.Fairness[root.ModeEZFlow] < r.Fairness[root.Mode80211]-0.1 {
		t.Errorf("EZ-flow hurt tree fairness: %.2f vs %.2f",
			r.Fairness[root.ModeEZFlow], r.Fairness[root.Mode80211])
	}
}

func TestRTSCTSShape(t *testing.T) {
	r := RTSCTS(quick)
	// §5.1: the handshake cannot help (sensing already covers its
	// footprint) and costs airtime, so throughput with RTS/CTS must not
	// be better.
	if r.ThroughputKbps[true] > r.ThroughputKbps[false]*1.02 {
		t.Errorf("RTS/CTS improved throughput (%.1f vs %.1f), contradicting §5.1",
			r.ThroughputKbps[true], r.ThroughputKbps[false])
	}
	if r.ThroughputKbps[true] <= 0 {
		t.Error("RTS/CTS mode delivered nothing")
	}
}

func TestBidirectionalShape(t *testing.T) {
	r := Bidirectional(quick)
	if r.Delivered["802.11"] == 0 || r.Delivered["EZ-flow"] == 0 {
		t.Fatal("a bidirectional variant delivered nothing")
	}
	// EZ-Flow must preserve reasonable goodput under TCP-like load and
	// must not inflate the relay backlog.
	if float64(r.Delivered["EZ-flow"]) < 0.6*float64(r.Delivered["802.11"]) {
		t.Errorf("EZ-flow collapsed bidirectional goodput: %d vs %d",
			r.Delivered["EZ-flow"], r.Delivered["802.11"])
	}
	if r.RelayQ["EZ-flow"] > r.RelayQ["802.11"]*1.3 {
		t.Errorf("EZ-flow inflated relay backlog: %.1f vs %.1f",
			r.RelayQ["EZ-flow"], r.RelayQ["802.11"])
	}
}
