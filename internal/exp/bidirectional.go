package exp

import (
	ez "ezflow/internal/ezflow"
	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
	"ezflow/internal/transport"
)

// BidirectionalResult tests the §2.3 claim that EZ-Flow handles
// bi-directional (TCP-like) traffic, where transport acknowledgements
// travel the reverse path and contend with data hop by hop — unlike
// rate-control schemes that assume end-to-end feedback is free.
type BidirectionalResult struct {
	// Per variant ("802.11", "EZ-flow"): delivered packets, mean relay
	// backlog at the first relay, retransmission fraction.
	Delivered   map[string]uint64
	RelayQ      map[string]float64
	RetransFrac map[string]float64
	Report      Report
}

// Bidirectional runs an AIMD go-back-N connection over a 5-hop chain with
// and without EZ-Flow.
func Bidirectional(o Options) *BidirectionalResult {
	r := &BidirectionalResult{
		Delivered:   make(map[string]uint64),
		RelayQ:      make(map[string]float64),
		RetransFrac: make(map[string]float64),
		Report:      Report{Name: "Bidirectional TCP-like traffic (§2.3 claim)"},
	}
	dur := o.dur(1200)
	type bidirRun struct {
		delivered   uint64
		relayQ      float64
		retransFrac float64
	}
	variants := []bool{false, true}
	runs := fanOut(o, variants, func(withEZ bool) bidirRun {
		eng := sim.NewEngine(o.Seed)
		m := mesh.New(eng, phy.DefaultConfig(), mac.DefaultConfig())
		path := make([]pkt.NodeID, 6)
		for i := 0; i <= 5; i++ {
			m.AddNode(pkt.NodeID(i), phy.Position{X: float64(i) * mesh.DefaultHopDist})
			path[i] = pkt.NodeID(i)
		}
		transport.InstallBidirectional(m, 1, path)
		if withEZ {
			ez.Deploy(m, ez.DefaultOptions())
		}
		cfg := transport.DefaultConfig()
		cfg.MaxWindow = 200
		conn := transport.New(m, 1, cfg)
		conn.Start()

		var sum, n float64
		probe := m.Node(1)
		var tick func()
		tick = func() {
			sum += float64(probe.MAC.TotalQueued())
			n++
			eng.Schedule(sim.Second, tick)
		}
		eng.Schedule(sim.Second, tick)
		eng.Run(dur)

		out := bidirRun{delivered: conn.Delivered, relayQ: sum / n}
		if conn.Sent > 0 {
			out.retransFrac = float64(conn.Retransmits) / float64(conn.Sent)
		}
		return out
	})
	for i, withEZ := range variants {
		name := "802.11"
		if withEZ {
			name = "EZ-flow"
		}
		r.Delivered[name] = runs[i].delivered
		r.RelayQ[name] = runs[i].relayQ
		r.RetransFrac[name] = runs[i].retransFrac
		r.Report.addf("%-8s delivered %6d pkts, N1 backlog %5.1f, retransmit fraction %.3f",
			name, r.Delivered[name], r.RelayQ[name], r.RetransFrac[name])
	}
	r.Report.addf("claim: EZ-flow handles TCP-like flows whose ACKs contend on the reverse path")
	return r
}
