package exp

import (
	"strings"
	"testing"

	root "ezflow"
)

// TestMobilityShape runs the mobility cross product at the minimum
// duration and checks every cell is populated, the static column never
// moves a node, and the waypoint column both moves and repairs.
func TestMobilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	r := Mobility(Options{Seed: 1, Scale: 0.05, Parallel: 8})
	for _, model := range MobilityModels {
		for _, w := range MobilityWorkloads {
			for _, mode := range []root.Mode{root.Mode80211, root.ModeEZFlow} {
				run := r.Get(mode, model, w)
				if run == nil {
					t.Fatalf("missing cell %v/%s/%s", mode, model, w)
				}
				if run.AggKbps <= 0 {
					t.Errorf("%v/%s/%s: no throughput", mode, model, w)
				}
				if model == "off" && (run.Moves != 0 || run.Repairs != 0) {
					t.Errorf("%v/%s/%s: static cell moved (%d moves, %d repairs)",
						mode, model, w, run.Moves, run.Repairs)
				}
				if model == "waypoint" && run.Moves == 0 {
					t.Errorf("%v/%s/%s: mobile cell never moved", mode, model, w)
				}
			}
		}
	}
	if !strings.Contains(r.Report.String(), "waypoint") {
		t.Error("report misses the waypoint block")
	}
}

// TestMobilityDeterministicAcrossWorkers pins the experiment's report to
// be identical for any parallelism (the repository-wide campaign rule).
func TestMobilityDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	serial := Mobility(Options{Seed: 3, Scale: 0.05, Parallel: 1}).Report.String()
	fanned := Mobility(Options{Seed: 3, Scale: 0.05, Parallel: 8}).Report.String()
	if serial != fanned {
		t.Error("mobility report differs between 1 and 8 workers")
	}
}
