package exp

import (
	"testing"

	root "ezflow"
)

// TestStabilityExperiment is the paper-facing acceptance check of the
// dynamics subsystem: after a mid-run failure of the chain's middle link,
// EZ-Flow recovers — finite recovery time, relay buffers back off the cap
// by the final third — while plain 802.11's relays keep hitting the
// 50-packet cap.
func TestStabilityExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	r := Stability(Options{Seed: 1, Scale: 0.25, Parallel: 4})
	ez := r.Get(root.ModeEZFlow)
	plain := r.Get(root.Mode80211)
	if ez == nil || plain == nil {
		t.Fatalf("missing modes in %+v", r.Runs)
	}

	if !ez.Recovered || ez.RecoverySec < 0 {
		t.Errorf("EZ-Flow did not recover: %+v", ez)
	}
	if ez.RecoverySec > 120 {
		t.Errorf("EZ-Flow recovery took %.0fs — not a finite, prompt recovery", ez.RecoverySec)
	}
	// The outage itself fills the upstream relay regardless of mode; the
	// controllers differ in what happens afterwards.
	if ez.TailMaxQueuePkts >= 25 {
		t.Errorf("EZ-Flow tail queue %0.f pkts — did not restabilise", ez.TailMaxQueuePkts)
	}
	if plain.TailMaxQueuePkts < 40 {
		t.Errorf("802.11 tail queue %.0f pkts — expected divergence at the cap", plain.TailMaxQueuePkts)
	}
	if ez.PreFaultKbps <= 0 || plain.PreFaultKbps <= 0 {
		t.Error("missing pre-fault throughput")
	}

	// The report must carry one line per mode plus the fault header.
	if len(r.Report.Lines) < 4 {
		t.Errorf("report too short:\n%s", r.Report.String())
	}
}
