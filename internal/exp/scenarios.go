package exp

import (
	"fmt"
	"sort"

	root "ezflow"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Period is a time window during which a fixed set of flows is active.
type Period struct {
	Name     string
	From, To sim.Time
	Flows    []pkt.FlowID
}

// PeriodStats summarises one flow in one period under one mode.
type PeriodStats struct {
	MeanKbps, StdKbps float64
	MeanDelaySec      float64
}

// ScenarioResult is the outcome of one §5 simulation scenario under both
// modes.
type ScenarioResult struct {
	Periods []Period
	// Stats[mode][period][flow]
	Stats map[root.Mode]map[string]map[pkt.FlowID]PeriodStats
	// Fairness[mode][period]
	Fairness map[root.Mode]map[string]float64
	// FinalCW and CWTraces from the EZ-Flow run.
	FinalCW  map[string]int
	CWTraces map[string][]struct {
		AtSec float64
		CW    int
	}
	Report Report
}

func newScenarioResult(name string, periods []Period) *ScenarioResult {
	return &ScenarioResult{
		Periods:  periods,
		Stats:    make(map[root.Mode]map[string]map[pkt.FlowID]PeriodStats),
		Fairness: make(map[root.Mode]map[string]float64),
		FinalCW:  make(map[string]int),
		CWTraces: make(map[string][]struct {
			AtSec float64
			CW    int
		}),
		Report: Report{Name: name},
	}
}

// runScenario executes one topology under both modes and collects the
// per-period statistics of Figures 6/7/10 and Tables 2/3.
func runScenario(o Options, build func(root.Config, ...root.FlowSpec) *root.Scenario,
	flows []root.FlowSpec, periods []Period, res *ScenarioResult) {
	total := sim.Time(0)
	for _, p := range periods {
		if p.To > total {
			total = p.To
		}
	}
	modes := []root.Mode{root.Mode80211, root.ModeEZFlow}
	runs := fanOut(o, modes, func(mode root.Mode) *root.Result {
		cfg := baseConfig(o, mode, total)
		return build(cfg, flows...).Run()
	})
	for i, mode := range modes {
		r := runs[i]
		res.Stats[mode] = make(map[string]map[pkt.FlowID]PeriodStats)
		res.Fairness[mode] = make(map[string]float64)
		for _, p := range periods {
			res.Stats[mode][p.Name] = make(map[pkt.FlowID]PeriodStats)
			for _, f := range p.Flows {
				mean, std := r.FlowWindowKbps(f, p.From, p.To)
				res.Stats[mode][p.Name][f] = PeriodStats{
					MeanKbps:     mean,
					StdKbps:      std,
					MeanDelaySec: r.FlowWindowDelay(f, p.From, p.To),
				}
			}
			res.Fairness[mode][p.Name] = r.FairnessWindow(p.From, p.To, p.Flows...)
		}
		if mode == root.ModeEZFlow {
			res.FinalCW = r.FinalCW
			for key, tr := range r.CWTraces {
				for _, pt := range tr {
					res.CWTraces[key] = append(res.CWTraces[key], struct {
						AtSec float64
						CW    int
					}{pt.At.Seconds(), pt.CW})
				}
			}
		}
	}
	// Render the report: one block per period.
	for _, p := range periods {
		res.Report.addf("period %-12s [%4.0f, %4.0f)s:", p.Name, p.From.Seconds(), p.To.Seconds())
		for _, f := range p.Flows {
			a := res.Stats[root.Mode80211][p.Name][f]
			b := res.Stats[root.ModeEZFlow][p.Name][f]
			res.Report.addf("  %v: 802.11 %6.1f±%5.1f kb/s delay %6.2fs | EZ-flow %6.1f±%5.1f kb/s delay %6.2fs",
				f, a.MeanKbps, a.StdKbps, a.MeanDelaySec, b.MeanKbps, b.StdKbps, b.MeanDelaySec)
		}
		if len(p.Flows) > 1 {
			res.Report.addf("  FI: 802.11 %.2f | EZ-flow %.2f",
				res.Fairness[root.Mode80211][p.Name], res.Fairness[root.ModeEZFlow][p.Name])
		}
	}
	var keys []string
	for k := range res.FinalCW {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	line := "final cw (EZ-flow):"
	for _, k := range keys {
		line += fmt.Sprintf(" %s=%d", k, res.FinalCW[k])
	}
	res.Report.addf("%s", line)
}

// Scenario1 reproduces §5.2 (Figures 6, 7 and 8): the two-flow merge
// topology with F1 active throughout and F2 joining mid-run.
//
// Paper schedule: F1 from 5 s to 2504 s; F2 from 605 s to 1804 s. The
// scale option shrinks all of these proportionally.
func Scenario1(o Options) *ScenarioResult {
	s := o.Scale
	if s <= 0 {
		s = 0.25
	}
	t := func(paper float64) sim.Time { return sim.FromSeconds(paper * s) }
	periods := []Period{
		{Name: "F1-alone-1", From: t(5), To: t(605), Flows: []pkt.FlowID{1}},
		{Name: "F1+F2", From: t(605), To: t(1805), Flows: []pkt.FlowID{1, 2}},
		{Name: "F1-alone-2", From: t(1805), To: t(2504), Flows: []pkt.FlowID{1}},
	}
	flows := []root.FlowSpec{
		{Flow: 1, RateBps: saturating, Start: t(5), Stop: t(2504)},
		{Flow: 2, RateBps: saturating, Start: t(605), Stop: t(1804)},
	}
	res := newScenarioResult("Scenario 1 (Figs 6-8): 2 merging 8-hop flows", periods)
	runScenario(o, root.NewScenario1, flows, periods, res)
	res.Report.addf("paper: F1 alone 153.2 -> 183.9 kb/s (+20%%), delay 4.1s -> 0.2s;")
	res.Report.addf("       both flows 76.5 -> 82.1 kb/s avg; relays at cw 2^4, sources up to 2^11")
	return res
}

// Scenario2 reproduces §5.3 (Figures 10, 11 and Table 3): the three-flow
// topology with a hidden-node pair, flows joining and leaving.
//
// Paper schedule: F1 and F2 from 5 s; F3 joins at 1805 s; F2 and F3 leave
// at 3605 s; run ends at 4500 s.
func Scenario2(o Options) *ScenarioResult {
	s := o.Scale
	if s <= 0 {
		s = 0.25
	}
	t := func(paper float64) sim.Time { return sim.FromSeconds(paper * s) }
	periods := []Period{
		{Name: "F1+F2", From: t(5), To: t(1805), Flows: []pkt.FlowID{1, 2}},
		{Name: "F1+F2+F3", From: t(1805), To: t(3605), Flows: []pkt.FlowID{1, 2, 3}},
		{Name: "F1-alone", From: t(3605), To: t(4500), Flows: []pkt.FlowID{1}},
	}
	flows := []root.FlowSpec{
		{Flow: 1, RateBps: saturating, Start: t(5), Stop: t(4500)},
		{Flow: 2, RateBps: saturating, Start: t(5), Stop: t(3605)},
		{Flow: 3, RateBps: saturating, Start: t(1805), Stop: t(3605)},
	}
	res := newScenarioResult("Scenario 2 (Figs 10-11, Table 3): 3 flows, hidden sources", periods)
	runScenario(o, root.NewScenario2, flows, periods, res)
	res.Report.addf("paper Table 3: (F1,F2) 145.6/39.9 FI 0.75 -> 89.9/100.3 FI 1.00;")
	res.Report.addf("  three flows 129.9/31.0/27.3 FI 0.64 -> 29.5/139.7/135.4 FI 0.80 (+62%% cumulative);")
	res.Report.addf("  F1 alone 150.0 -> 179.9 kb/s")
	return res
}

// CumulativeKbps sums a period's mean throughputs under one mode.
func (r *ScenarioResult) CumulativeKbps(mode root.Mode, period string) float64 {
	var sum float64
	for _, st := range r.Stats[mode][period] {
		sum += st.MeanKbps
	}
	return sum
}

// MeanDelay averages a period's per-flow delays under one mode.
func (r *ScenarioResult) MeanDelay(mode root.Mode, period string) float64 {
	var sum float64
	n := 0
	for _, st := range r.Stats[mode][period] {
		sum += st.MeanDelaySec
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
