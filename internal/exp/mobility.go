package exp

import (
	root "ezflow"
	"ezflow/internal/mobility"
)

// --------------------------------------------------------------------------
// Mobility × control-plane × workload cross product: does hop-by-hop
// flow control keep helping when the topology itself is in motion and
// the traffic is a gateway-scale client population rather than a few
// long-lived CBR flows? The paper's testbed is static and CBR; this
// experiment roams a 4x4 grid's relays under the random-waypoint model
// (gateway pinned — it is mains-powered street furniture), serves a
// downlink client population in two shapes (steady CBR and bursty
// on/off), and reruns the whole thing statically as the control column.
// Every position tick re-patches the PHY neighbor index incrementally
// (phy.MoveNode) and repairs routes through the active routing
// strategy — the same repair path scripted link failures use.

// MobilitySpeedMps is the roaming speed: 3 m/s, a brisk pedestrian —
// vehicular speeds shred a 200 m-spaced grid faster than any control
// plane can react, which is a radio problem, not a scheduling one.
const MobilitySpeedMps = 3

// MobilityClients is the downlink population size per gateway.
const MobilityClients = 8

// MobilityModels is the head-to-head set, static control column first.
var MobilityModels = []string{"off", "waypoint"}

// MobilityWorkloads is the traffic-shape axis: steady per-client CBR
// against bursty on/off (exponential 5 s on, 5 s off — each client
// averages half its peak demand but peaks collide).
var MobilityWorkloads = []string{"steady", "bursty"}

// MobilityRun is one (mode, model, workload) cell.
type MobilityRun struct {
	Mode     root.Mode
	Mobility string
	Workload string
	// AggKbps is the aggregate goodput over backbone flows and clients.
	AggKbps  float64
	Fairness float64
	// Moves and Repairs count position updates applied and
	// route-repair rounds triggered (zero in the static column).
	Moves   uint64
	Repairs uint64
}

// MobilityResult bundles the full cross product.
type MobilityResult struct {
	Runs   []*MobilityRun
	Report Report
}

// Get returns the cell for (mode, model, workload), or nil.
func (r *MobilityResult) Get(mode root.Mode, model, workload string) *MobilityRun {
	for _, run := range r.Runs {
		if run.Mode == mode && run.Mobility == model && run.Workload == workload {
			return run
		}
	}
	return nil
}

// mobilityCell identifies one run of the cross product.
type mobilityCell struct {
	mode     root.Mode
	model    string
	workload string
}

// Mobility runs the mobility head-to-head: {static, waypoint} × {steady,
// bursty} client workloads on a 4x4 grid under plain 802.11 and EZ-Flow.
// All runs fan out over the campaign worker pool; output is identical
// for any Parallel.
func Mobility(o Options) *MobilityResult {
	out := &MobilityResult{
		Report: Report{Name: "Mobility: static vs waypoint commuters under gateway client workloads"},
	}
	dur := o.dur(120)

	var cells []mobilityCell
	for _, model := range MobilityModels {
		for _, w := range MobilityWorkloads {
			for _, mode := range []root.Mode{root.Mode80211, root.ModeEZFlow} {
				cells = append(cells, mobilityCell{mode, model, w})
			}
		}
	}
	outcomes := fanOut(o, cells, func(c mobilityCell) MobilityRun {
		cellID := struct {
			Mode     root.Mode `json:"mode"`
			Model    string    `json:"model"`
			Workload string    `json:"workload"`
			SpeedMps float64   `json:"speed_mps"`
			Clients  int       `json:"clients"`
		}{c.mode, c.model, c.workload, MobilitySpeedMps, MobilityClients}
		return cachedCell(o, "exp.mobility", dur.Seconds(), cellID, func() MobilityRun {
			cfg := baseConfig(o, c.mode, dur)
			if c.model != "off" {
				cfg.Mobility = &mobility.Config{
					Model: c.model,
					Opts:  mobility.Options{SpeedMps: MobilitySpeedMps, PauseSec: 2},
				}
			}
			wl := &root.WorkloadSpec{Clients: MobilityClients, RateBps: 2e5}
			if c.workload == "bursty" {
				wl.OnMeanSec = 5
				wl.OffMeanSec = 5
			}
			cfg.Workload = wl
			sc := root.NewGrid(4, 4, cfg,
				root.FlowSpec{Flow: 1, RateBps: 3e5},
				root.FlowSpec{Flow: 2, RateBps: 3e5})
			res := sc.Run()
			run := MobilityRun{
				Mode:     c.mode,
				Mobility: c.model,
				Workload: c.workload,
				AggKbps:  res.AggKbps,
				Fairness: res.Fairness,
			}
			if st := res.MobilityStats; st != nil {
				run.Moves = st.Moves
				run.Repairs = st.Repairs
			}
			return run
		})
	})

	for i := range cells {
		run := outcomes[i]
		out.Runs = append(out.Runs, &run)
	}

	out.Report.addf("4x4 grid, %d downlink clients per gateway, relays roaming at %g m/s (waypoint, gateway pinned)",
		MobilityClients, float64(MobilitySpeedMps))
	for _, model := range MobilityModels {
		for _, w := range MobilityWorkloads {
			r80 := out.Get(root.Mode80211, model, w)
			rez := out.Get(root.ModeEZFlow, model, w)
			out.Report.addf("  %-8s %-6s: 802.11 %6.1f kb/s FI %.3f | EZ-flow %6.1f kb/s FI %.3f | %d moves, %d repairs",
				model, w, r80.AggKbps, r80.Fairness, rez.AggKbps, rez.Fairness, rez.Moves, rez.Repairs)
		}
	}
	out.Report.addf("shape: mobility costs throughput in both columns (routes churn, marginal links appear),")
	out.Report.addf("but EZ-flow's gradient survives motion — hop-by-hop control re-forms on repaired routes")
	return out
}
