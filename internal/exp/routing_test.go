package exp

import (
	"strings"
	"testing"

	root "ezflow"
)

// TestRoutingShape runs the routing cross product at the minimum duration
// and checks every cell is populated and the headline ordering holds: on
// a lossy disk, etx must never pay a higher calibrated path cost than
// bfs (it minimises exactly that metric over the same graph).
func TestRoutingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	r := Routing(Options{Seed: 1, Scale: 0.01, Parallel: 8})
	for _, n := range r.DiskNodes {
		for _, s := range RoutingStrategies {
			for _, mode := range []root.Mode{root.Mode80211, root.ModeEZFlow} {
				run := r.Get(s, mode, n)
				if run == nil {
					t.Fatalf("missing cell %s/%v/n=%d", s, mode, n)
				}
				if run.Kbps <= 0 {
					t.Errorf("%s/%v/n=%d: no throughput", s, mode, n)
				}
				if run.Hops < 2 || run.PathETX < float64(run.Hops) {
					t.Errorf("%s/%v/n=%d: hops=%d pathETX=%.2f inconsistent", s, mode, n, run.Hops, run.PathETX)
				}
			}
		}
		bfs := r.Get("bfs", root.Mode80211, n)
		etx := r.Get("etx", root.Mode80211, n)
		if etx.PathETX > bfs.PathETX+1e-9 {
			t.Errorf("n=%d: etx path cost %.2f exceeds bfs %.2f — it minimises this metric", n, etx.PathETX, bfs.PathETX)
		}
	}
	if !strings.Contains(r.Report.String(), "disk n=200") {
		t.Error("report misses the 200-node disk block")
	}
}

// TestRoutingDeterministicAcrossWorkers pins the experiment's report to
// be identical for any parallelism (the repository-wide campaign rule).
func TestRoutingDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	serial := Routing(Options{Seed: 3, Scale: 0.01, Parallel: 1}).Report.String()
	fanned := Routing(Options{Seed: 3, Scale: 0.01, Parallel: 8}).Report.String()
	if serial != fanned {
		t.Error("routing report differs between 1 and 8 workers")
	}
}
