package exp

import (
	"fmt"

	root "ezflow"
	"ezflow/internal/dynamics"
	"ezflow/internal/sim"
)

// --------------------------------------------------------------------------
// Controller head-to-head: the evaluation matrix the paper argues against.
// The paper's claim is that EZ-Flow's passive, message-free estimation
// matches hop-by-hop schemes that rely on explicit signalling. This
// experiment runs the four controller families of internal/ctl — the
// degenerate static per-hop window, queue-differential backpressure
// (piggybacked backlogs), explicit per-hop rate feedback (injected
// control frames), and EZ-Flow itself — over the paper's chain and
// parking-lot scenarios, statically and under the dynamics subsystem's
// flap and churn perturbations, and reports throughput, Jain fairness,
// tail queue, recovery time, and the control bytes each scheme paid.

// CompetitorControllers is the head-to-head set, in report order: the
// degenerate control first, then the two explicit-signalling schemes,
// then the paper's message-free controller.
var CompetitorControllers = []string{"staticcap", "backpressure", "feedback", "ezflow"}

// ControllerDynamics names the perturbation regimes of the head-to-head:
// a frozen topology, a mid-run link flap, and a mid-run relay churn (both
// from 40% to 50% of the run, with BFS route repair — the PR-3 dynamics
// timelines).
var ControllerDynamics = []string{"static", "flap", "churn"}

// ControllerRun is one (controller, topology, dynamics) cell.
type ControllerRun struct {
	Controller string
	Topology   string // "chain4" or "parking-lot"
	Dynamics   string // "static", "flap" or "churn"
	// AggKbps is the cumulative mean goodput across flows.
	AggKbps float64
	// Fairness is Jain's index over per-flow mean throughputs.
	Fairness float64
	// TailQueuePkts is the largest relay backlog over the final third of
	// a perturbed run (0 on static cells) — the divergence indicator.
	TailQueuePkts float64
	// RecoverySec is the slowest flow's recovery time: -1 on static
	// cells, -2 when some flow never recovered.
	RecoverySec float64
	// Recovered reports whether every flow recovered (true on static
	// cells).
	Recovered bool
	// OverheadBytes is the control traffic the scheme put on the air.
	OverheadBytes uint64
}

// ControllersResult bundles the full matrix.
type ControllersResult struct {
	Runs   []*ControllerRun
	Report Report
}

// Get returns the cell for (controller, topology, dynamics), or nil.
func (r *ControllersResult) Get(ctrl, topo, dyn string) *ControllerRun {
	for _, run := range r.Runs {
		if run.Controller == ctrl && run.Topology == topo && run.Dynamics == dyn {
			return run
		}
	}
	return nil
}

// controllerCell identifies one run of the head-to-head grid.
type controllerCell struct {
	ctrl, topo, dyn string
}

// Controllers runs the head-to-head matrix: every competitor controller
// over the 4-hop chain and the testbed parking lot (F1+F2 sharing F1's
// tail, under the MadWifi 2^10 cap), each frozen, with a mid-run link
// flap, and with a mid-run relay churn. All runs fan out over the
// campaign worker pool; output is identical for any Parallel.
func Controllers(o Options) *ControllersResult {
	out := &ControllersResult{
		Report: Report{Name: "Controller head-to-head: staticcap vs backpressure vs feedback vs EZ-flow"},
	}
	dur := o.dur(600)
	downAt, upAt := dur/5*2, dur/2

	var cells []controllerCell
	for _, topo := range []string{"chain4", "parking-lot"} {
		for _, dyn := range ControllerDynamics {
			for _, ctrl := range CompetitorControllers {
				cells = append(cells, controllerCell{ctrl, topo, dyn})
			}
		}
	}
	// Each cell's cached value is its scalar summary row, so a warm
	// fabric store replays the whole matrix without simulating.
	results := fanOut(o, cells, func(c controllerCell) ControllerRun {
		cellID := struct {
			Controller string `json:"controller"`
			Topology   string `json:"topology"`
			Dynamics   string `json:"dynamics"`
		}{c.ctrl, c.topo, c.dyn}
		return cachedCell(o, "exp.controllers", dur.Seconds(), cellID, func() ControllerRun {
			cfg := baseConfig(o, root.Mode80211, dur)
			cfg.Controller = c.ctrl
			cfg.WarmupSkip = dur / 10
			var sc *root.Scenario
			if c.topo == "chain4" {
				sc = root.NewChain(4, cfg, root.FlowSpec{Flow: 1, RateBps: saturating})
			} else {
				cfg.MAC.HardwareCWCap = 1 << 10 // MadWifi constraint (§4.1)
				sc = root.NewTestbed(cfg,
					root.FlowSpec{Flow: 1, RateBps: saturating},
					root.FlowSpec{Flow: 2, RateBps: saturating})
			}
			script := &dynamics.Script{}
			switch c.dyn {
			case "flap":
				a, b := dynamics.MiddleLink(sc.Mesh, 1)
				script.Events = dynamics.Flap(a, b, downAt, upAt, true)
			case "churn":
				n := dynamics.MiddleRelay(sc.Mesh, 1)
				script.Events = dynamics.Churn(n, downAt, upAt, false, true)
			}
			if len(script.Events) > 0 {
				if err := sc.AddDynamics(script); err != nil {
					panic(err)
				}
			}
			res := sc.Run()
			run := ControllerRun{
				Controller:    c.ctrl,
				Topology:      c.topo,
				Dynamics:      c.dyn,
				AggKbps:       res.AggKbps,
				Fairness:      res.Fairness,
				RecoverySec:   -1,
				Recovered:     true,
				OverheadBytes: res.OverheadBytes,
			}
			if st := res.Stability; st != nil {
				run.TailQueuePkts = st.TailMaxQueuePkts
				run.Recovered = st.Recovered
				if st.Recovered {
					run.RecoverySec = st.MaxRecoverySec
				} else {
					run.RecoverySec = -2
				}
			}
			return run
		})
	})

	for i := range cells {
		run := results[i]
		out.Runs = append(out.Runs, &run)
	}

	out.Report.addf("chain4: saturating flow over a 4-hop chain; parking-lot: testbed F1+F2 (cap 2^10)")
	out.Report.addf("flap: middle link of F1 down %v..%v; churn: middle relay halted (BFS repair)", downAt, upAt)
	for _, topo := range []string{"chain4", "parking-lot"} {
		for _, dyn := range ControllerDynamics {
			out.Report.addf("%s / %s:", topo, dyn)
			for _, ctrl := range CompetitorControllers {
				run := out.Get(ctrl, topo, dyn)
				line := fmt.Sprintf("  %-12s agg %7.1f kb/s  FI %.3f", ctrl, run.AggKbps, run.Fairness)
				if dyn != "static" {
					rec := "never"
					if run.RecoverySec >= 0 {
						rec = sim.FromSeconds(run.RecoverySec).String()
					}
					line += fmt.Sprintf("  recovery %-10s tail %4.0f pkts", rec, run.TailQueuePkts)
				}
				if run.OverheadBytes > 0 {
					line += fmt.Sprintf("  overhead %d B", run.OverheadBytes)
				} else {
					line += "  overhead 0 B (message-free)"
				}
				out.Report.addf("%s", line)
			}
		}
	}
	out.Report.addf("expected shape: EZ-flow matches the explicit-signalling schemes at zero control bytes;")
	out.Report.addf("staticcap only survives where its offline window happens to fit")
	return out
}
