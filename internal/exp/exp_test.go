package exp

import (
	"strings"
	"testing"

	root "ezflow"
)

// quick is the scale used by the experiment shape tests: long enough for
// the qualitative claims, short enough for CI.
var quick = Options{Seed: 1, Scale: 0.08}

func TestFig1Shape(t *testing.T) {
	r := Fig1(quick)
	// 3-hop stable: every relay's mean buffer far below the 50-pkt cap.
	for node, mean := range r.MeanQueue[3] {
		if mean > 10 {
			t.Errorf("3-hop node %d mean buffer %.1f: should be stable", node, mean)
		}
	}
	// 4-hop turbulent: the first relay's buffer approaches the cap.
	if r.MaxQueue[4][1] < 35 {
		t.Errorf("4-hop N1 max buffer %.0f: expected buildup toward 50", r.MaxQueue[4][1])
	}
	if r.MeanQueue[4][1] < 3*r.MeanQueue[3][1] {
		t.Errorf("4-hop N1 mean %.1f not clearly above 3-hop N1 mean %.1f",
			r.MeanQueue[4][1], r.MeanQueue[3][1])
	}
	// Throughput degrades with the fourth hop.
	if r.ThroughputKbps[4] >= r.ThroughputKbps[3] {
		t.Errorf("4-hop throughput %.1f not below 3-hop %.1f",
			r.ThroughputKbps[4], r.ThroughputKbps[3])
	}
	if !strings.Contains(r.Report.String(), "3-hop") {
		t.Error("report missing content")
	}
}

func TestTable1Shape(t *testing.T) {
	r := Table1(quick)
	if len(r.MeanKbps) != 7 {
		t.Fatalf("measured %d links, want 7", len(r.MeanKbps))
	}
	if r.Bottleneck() != 2 {
		t.Errorf("bottleneck is l%d, paper says l2", r.Bottleneck())
	}
	// Every link within 15% of the paper's capacity (the calibration
	// contract of mesh.TestbedLinkLoss).
	for i, got := range r.MeanKbps {
		want := PaperTable1Kbps[i]
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("l%d capacity %.0f kb/s outside 15%% of paper's %.0f", i, got, want)
		}
	}
}

func TestFig4Table2Shape(t *testing.T) {
	r := Fig4Table2(quick)
	if len(r.Runs) != 6 {
		t.Fatalf("runs = %d, want 6", len(r.Runs))
	}
	// EZ-Flow improves each single-flow throughput.
	for _, scen := range []TestbedScenario{F1Alone, F2Alone} {
		f := root.FlowID(1)
		if scen == F2Alone {
			f = 2
		}
		plain := r.Get(scen, root.Mode80211).FlowKbps[f]
		with := r.Get(scen, root.ModeEZFlow).FlowKbps[f]
		if with <= plain {
			t.Errorf("%v: EZ-flow %.1f kb/s not above 802.11 %.1f", scen, with, plain)
		}
	}
	// Parking lot: 802.11 starves the long flow; EZ-Flow improves both
	// the fairness index and the aggregate.
	plain := r.Get(ParkingLot, root.Mode80211)
	with := r.Get(ParkingLot, root.ModeEZFlow)
	if plain.FlowKbps[1] > 0.3*plain.FlowKbps[2] {
		t.Errorf("802.11 parking lot does not starve F1: %v", plain.FlowKbps)
	}
	if with.Fairness <= plain.Fairness {
		t.Errorf("fairness did not improve: %.2f -> %.2f", plain.Fairness, with.Fairness)
	}
	if with.FlowKbps[1] <= plain.FlowKbps[1] {
		t.Errorf("starved flow not helped: %.1f -> %.1f", plain.FlowKbps[1], with.FlowKbps[1])
	}
	// Figure 4: EZ-Flow drains the first relay of F2 (N4).
	if with.MeanQueue[4] >= plain.MeanQueue[4] {
		// N4 is F2's first relay only in the F2Alone runs.
		p2, w2 := r.Get(F2Alone, root.Mode80211), r.Get(F2Alone, root.ModeEZFlow)
		if w2.MeanQueue[4] >= p2.MeanQueue[4] {
			t.Errorf("EZ-flow did not drain N4: %.1f -> %.1f",
				p2.MeanQueue[4], w2.MeanQueue[4])
		}
	}
}

func TestScenario1Shape(t *testing.T) {
	r := Scenario1(quick)
	// Single-flow period: EZ-Flow at least matches plain throughput and
	// improves delay.
	p := "F1-alone-1"
	plain := r.Stats[root.Mode80211][p][1]
	with := r.Stats[root.ModeEZFlow][p][1]
	if with.MeanKbps < plain.MeanKbps*0.95 {
		t.Errorf("%s: EZ-flow %.1f kb/s well below 802.11 %.1f", p, with.MeanKbps, plain.MeanKbps)
	}
	if with.MeanDelaySec >= plain.MeanDelaySec {
		t.Errorf("%s: delay not improved: %.2f -> %.2f", p, plain.MeanDelaySec, with.MeanDelaySec)
	}
	// The relays near the gateway converge to the minimum window while
	// the sources are penalised (the distributed rediscovery of [9]).
	if cw := r.FinalCW["N12->N10"]; cw <= r.FinalCW["N2->N1"] {
		t.Errorf("source cw %d not above trunk relay cw %d", cw, r.FinalCW["N2->N1"])
	}
	// Two-flow period: both flows must get non-trivial service under
	// EZ-Flow.
	for _, f := range []root.FlowID{1, 2} {
		if st := r.Stats[root.ModeEZFlow]["F1+F2"][f]; st.MeanKbps < 20 {
			t.Errorf("EZ-flow starves %v in the merge period: %.1f kb/s", f, st.MeanKbps)
		}
	}
}

func TestScenario2Shape(t *testing.T) {
	// Scenario 2 needs more wall time to converge; still scaled well
	// below the paper's durations.
	o := Options{Seed: 1, Scale: 0.2}
	r := Scenario2(o)
	// 802.11 starves the hidden-source flow F2.
	plainF2 := r.Stats[root.Mode80211]["F1+F2"][2]
	withF2 := r.Stats[root.ModeEZFlow]["F1+F2"][2]
	if plainF2.MeanKbps > 30 {
		t.Errorf("802.11 did not starve F2: %.1f kb/s", plainF2.MeanKbps)
	}
	if withF2.MeanKbps < 3*plainF2.MeanKbps {
		t.Errorf("EZ-flow did not rescue F2: %.1f -> %.1f kb/s",
			plainF2.MeanKbps, withF2.MeanKbps)
	}
	// Fairness improves in both multi-flow periods.
	for _, p := range []string{"F1+F2", "F1+F2+F3"} {
		if r.Fairness[root.ModeEZFlow][p] <= r.Fairness[root.Mode80211][p] {
			t.Errorf("%s: FI not improved: %.2f -> %.2f", p,
				r.Fairness[root.Mode80211][p], r.Fairness[root.ModeEZFlow][p])
		}
	}
	// The hidden source N10 must have been throttled hard.
	if r.FinalCW["N10->N11"] < 256 {
		t.Errorf("hidden source cw = %d, expected strong penalty", r.FinalCW["N10->N11"])
	}
	// Helpers.
	if r.CumulativeKbps(root.ModeEZFlow, "F1+F2+F3") <= 0 {
		t.Error("CumulativeKbps")
	}
	if r.MeanDelay(root.Mode80211, "F1+F2") <= 0 {
		t.Error("MeanDelay")
	}
}

func TestTheorem1Shape(t *testing.T) {
	r := Theorem1(Options{Seed: 1, Scale: 0.05})
	if r.FixedMax < 5*r.EZMax {
		t.Errorf("fixed-cw walk max %.0f not clearly above EZ-flow max %.0f",
			r.FixedMax, r.EZMax)
	}
	for region, d := range r.DriftByRegion {
		if d >= 0 {
			t.Errorf("Foster drift in region %s = %+.4f, want negative", region, d)
		}
	}
	total := uint64(0)
	for _, v := range r.RegionVisits {
		total += v
	}
	if total == 0 {
		t.Error("no region visits recorded")
	}
}

func TestOptionsDurFloor(t *testing.T) {
	o := Options{Scale: 0.0001}
	if o.dur(1800).Seconds() < 30 {
		t.Error("duration floor not applied")
	}
	if (Options{}).dur(100).Seconds() != 25+5 {
		// 100 * default 0.25 = 25 -> floored to 30.
		t.Error("zero scale should default and floor")
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Name: "x"}
	r.addf("line %d", 1)
	if !strings.Contains(r.String(), "=== x ===") || !strings.Contains(r.String(), "line 1") {
		t.Error("report formatting")
	}
}
