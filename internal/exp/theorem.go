package exp

import (
	"math/rand"
	"sort"

	"ezflow/internal/markov"
)

// Theorem1Result is the numerical companion to the paper's §6 analysis:
// the random walk of Figure 12 run with fixed contention windows (the
// unstable chain of [9]) and with the EZ-Flow dynamics of Eq. (2), plus a
// Monte-Carlo check of Foster's condition (6) with the proof's
// region-dependent k.
type Theorem1Result struct {
	FixedMax, FixedMean float64
	EZMax, EZMean       float64
	EZFinalCW           []int
	RegionVisits        map[string]uint64
	// DriftByRegion is the k(region)-step expected Lyapunov drift from a
	// representative state of each region under the stabilising windows.
	DriftByRegion map[string]float64
	Report        Report
}

// Theorem1 runs the discrete-time 4-hop model of §6.
func Theorem1(o Options) *Theorem1Result {
	steps := int(400000 * o.Scale)
	if steps < 20000 {
		steps = 20000
	}
	r := &Theorem1Result{
		DriftByRegion: make(map[string]float64),
		Report:        Report{Name: "Theorem 1 (§6): 4-hop random walk, Lyapunov stability"},
	}

	// The fixed-window walk (the unstable chain of [9]) and the EZ-Flow
	// walk of Theorem 1 draw from independent seeded generators, so they
	// fan out through the campaign pool like any pair of scenario runs.
	walks := fanOut(o, []bool{false, true}, func(ezEnabled bool) *markov.RunStats {
		cfg := markov.DefaultConfig()
		cfg.EZEnabled = ezEnabled
		seed := o.Seed
		if ezEnabled {
			seed++
		}
		rng := rand.New(rand.NewSource(seed))
		st := markov.NewWalk(cfg, rng.Float64).Run(steps)
		return &st
	})
	st, st2 := walks[0], walks[1]
	r.FixedMax, r.FixedMean = float64(st.MaxBacklog), st.MeanBacklog
	r.EZMax, r.EZMean = float64(st2.MaxBacklog), st2.MeanBacklog
	r.EZFinalCW = st2.FinalCW
	r.RegionVisits = st2.RegionVisits

	// Foster condition (6) with the proof's per-region k, under the
	// stabilising window vector EZ-Flow discovers. Regions are evaluated
	// in sorted order with independently seeded generators: the Monte
	// Carlo estimates are a pure function of (seed, region), so the
	// per-region jobs fan out like any other run.
	reps := int(20000 * o.Scale)
	if reps < 2000 {
		reps = 2000
	}
	var fosterRegions []string
	for region := range markov.FosterK {
		fosterRegions = append(fosterRegions, region)
	}
	sort.Strings(fosterRegions)
	regionIdx := make([]int, len(fosterRegions))
	for i := range regionIdx {
		regionIdx[i] = i
	}
	drifts := fanOut(o, regionIdx, func(i int) float64 {
		region := fosterRegions[i]
		rng := rand.New(rand.NewSource(o.Seed + 2 + int64(i)))
		w := markov.NewWalk(markov.Config{
			K: 4, InitCW: 32, EZEnabled: false,
			BMin: 0.05, BMax: 20, MinCW: 16, MaxCW: 1 << 15,
		}, rng.Float64)
		copy(w.CW, []int{1 << 11, 16, 16, 16})
		setRegionState(w, region)
		return w.DriftK(markov.FosterK[region], reps, rng.Float64)
	})
	for i, region := range fosterRegions {
		r.DriftByRegion[region] = drifts[i]
	}

	r.Report.addf("fixed cw=32 walk over %d slots: max backlog %.0f, mean %.1f (unstable, grows)",
		steps, r.FixedMax, r.FixedMean)
	r.Report.addf("EZ-flow walk over %d slots:   max backlog %.0f, mean %.1f (stable, bounded)",
		steps, r.EZMax, r.EZMean)
	r.Report.addf("EZ-flow final cw: %v (source penalised, relays aggressive)", r.EZFinalCW)
	var regions []string
	for reg := range r.DriftByRegion {
		regions = append(regions, reg)
	}
	sort.Strings(regions)
	for _, reg := range regions {
		r.Report.addf("Foster drift, region %s (k=%d): %+.4f", reg,
			markov.FosterK[reg], r.DriftByRegion[reg])
	}
	return r
}

func setRegionState(w *markov.Walk, region string) {
	switch region {
	case "B":
		w.B[1], w.B[2], w.B[3] = 2, 0, 0
	case "C":
		w.B[1], w.B[2], w.B[3] = 0, 2, 0
	case "D":
		w.B[1], w.B[2], w.B[3] = 0, 0, 2
	case "E":
		w.B[1], w.B[2], w.B[3] = 2, 2, 0
	case "F":
		w.B[1], w.B[2], w.B[3] = 2, 0, 2
	case "G":
		w.B[1], w.B[2], w.B[3] = 0, 2, 2
	case "H":
		w.B[1], w.B[2], w.B[3] = 2, 2, 2
	}
}
