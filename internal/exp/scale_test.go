package exp

import (
	"strings"
	"testing"

	root "ezflow"
)

// TestScaleShape runs the scale sweep at the minimum duration and checks
// every cell is populated: each topology size has a positive throughput
// in both modes (the large-topology axis must actually carry traffic).
func TestScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	r := Scale(Options{Seed: 1, Scale: 0.01, Parallel: 4})
	for _, mode := range []root.Mode{root.Mode80211, root.ModeEZFlow} {
		for _, side := range r.GridSides {
			if r.GridKbps[mode][side] <= 0 {
				t.Errorf("%v grid side=%d: no throughput", mode, side)
			}
		}
		for _, n := range r.DiskNodes {
			if r.DiskKbps[mode][n] <= 0 {
				t.Errorf("%v disk n=%d: no throughput", mode, n)
			}
			if r.DiskHops[n] < 2 {
				t.Errorf("disk n=%d: rim flow has only %d hops", n, r.DiskHops[n])
			}
		}
	}
	if len(r.Report.Lines) != len(r.GridSides)+len(r.DiskNodes)+1 {
		t.Errorf("report has %d lines", len(r.Report.Lines))
	}
	if !strings.Contains(r.Report.String(), "disk n=200") {
		t.Error("report misses the 200-node disk row")
	}
}

// TestScaleDeterministicAcrossWorkers pins the experiment's report to be
// identical for any parallelism (the repository-wide campaign rule).
func TestScaleDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	serial := Scale(Options{Seed: 3, Scale: 0.01, Parallel: 1}).Report.String()
	fanned := Scale(Options{Seed: 3, Scale: 0.01, Parallel: 8}).Report.String()
	if serial != fanned {
		t.Error("scale report differs between 1 and 8 workers")
	}
}
