package pkt

import "testing"

func TestPacketPoolReuse(t *testing.T) {
	pl := NewPool()
	p1 := pl.Packet(1, 7, 0, 4, 1000, 0)
	if p1.Refs() != 1 {
		t.Fatalf("fresh packet refs = %d, want 1", p1.Refs())
	}
	sum1 := p1.Checksum16()
	p1.Release()
	p2 := pl.Packet(2, 9, 1, 5, 1028, 100)
	if p2 != p1 {
		t.Fatal("pool did not reuse the released packet")
	}
	if p2.Flow != 2 || p2.Seq != 9 || p2.Src != 1 || p2.Dst != 5 || p2.Bytes != 1028 || p2.Created != 100 {
		t.Fatalf("reused packet not fully reset: %+v", p2)
	}
	if p2.Checksum16() == sum1 {
		t.Fatal("checksum not recomputed on reuse")
	}
	if pl.Stats.PacketReuses != 1 || pl.Stats.PacketNews != 1 {
		t.Fatalf("stats = %+v, want 1 new + 1 reuse", pl.Stats)
	}
}

func TestPacketRefCounting(t *testing.T) {
	pl := NewPool()
	p := pl.Packet(1, 1, 0, 2, 1000, 0)
	p.Retain() // a queue takes ownership
	p.Release()
	if got := pl.Packet(3, 3, 0, 2, 1000, 0); got == p {
		t.Fatal("packet recycled while a reference was outstanding")
	}
	p.Release() // the queue lets go -> now recyclable
	if got := pl.Packet(4, 4, 0, 2, 1000, 0); got != p {
		t.Fatal("packet not recycled after the last release")
	}
}

func TestReleaseBelowZeroPanics(t *testing.T) {
	p := NewPool().Packet(1, 1, 0, 2, 1000, 0)
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Release()
}

func TestUnpooledPacketSafe(t *testing.T) {
	p := NewPacket(1, 1, 0, 2, 1000, 0)
	p.Retain()
	p.Release()
	p.Release() // back to zero references: must not panic or pool
}

func TestFramePool(t *testing.T) {
	pl := NewPool()
	f := pl.Frame()
	f.Type, f.TxSrc, f.TxDst, f.QueueTag, f.Retry = FrameData, 1, 2, 9, true
	pl.PutFrame(f)
	pl.PutFrame(f) // double put is a no-op
	g := pl.Frame()
	if g != f {
		t.Fatal("pool did not reuse the frame")
	}
	if g.Type != 0 || g.TxSrc != 0 || g.TxDst != 0 || g.QueueTag != 0 || g.Retry || g.Payload != nil {
		t.Fatalf("reused frame not zeroed: %+v", g)
	}
	if pl.Frame() == f {
		t.Fatal("double PutFrame handed the same frame out twice")
	}

	manual := &Frame{Type: FrameAck}
	pl.PutFrame(manual) // hand-built frames pass through unharmed
	if pl.Frame() == manual {
		t.Fatal("pool captured a frame it did not hand out")
	}
	pl.PutFrame(nil) // must not panic
}

// TestPoolSteadyStateAllocs: once warm, the get/release cycle for both
// packets and frames is allocation-free.
func TestPoolSteadyStateAllocs(t *testing.T) {
	pl := NewPool()
	pl.Packet(1, 1, 0, 2, 1000, 0).Release()
	pl.PutFrame(pl.Frame())
	if avg := testing.AllocsPerRun(200, func() {
		pl.Packet(1, 2, 0, 2, 1000, 0).Release()
	}); avg != 0 {
		t.Fatalf("packet get/release allocates %.1f objects, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		pl.PutFrame(pl.Frame())
	}); avg != 0 {
		t.Fatalf("frame get/put allocates %.1f objects, want 0", avg)
	}
}
