// Node-index plumbing: a compact dense index over a set of NodeIDs.
//
// NodeIDs are arbitrary integers chosen by topology builders, so runtime
// state keyed by node wants a translation to dense slots 0..N-1 — then
// per-node state lives in flat slices instead of maps, and broadcast
// iteration in slot order is identical to iteration in ascending id
// order (the repository's determinism convention). The PHY channel keys
// its station table and neighbor index on a NodeIndex; lookups are
// branch-predictable binary searches with no hashing and no allocation.
package pkt

import "slices"

// NodeIndex maps a sorted set of NodeIDs to dense slots 0..Len()-1 and
// back. The zero value is an empty, usable index. Slots are assigned in
// ascending id order, so iterating slots 0..Len()-1 visits nodes in the
// same order as iterating sorted ids — inserting a new id therefore
// shifts the slots of every larger id (Add returns the insertion slot so
// callers can keep parallel slices aligned).
type NodeIndex struct {
	ids []NodeID
}

// Len reports the number of indexed ids.
func (x *NodeIndex) Len() int { return len(x.ids) }

// IDs returns the backing sorted id slice. Callers must not modify it.
func (x *NodeIndex) IDs() []NodeID { return x.ids }

// ID returns the id at the given slot.
func (x *NodeIndex) ID(slot int) NodeID { return x.ids[slot] }

// Slot returns the dense slot of id, or ok=false if id is not indexed.
func (x *NodeIndex) Slot(id NodeID) (slot int, ok bool) {
	return slices.BinarySearch(x.ids, id)
}

// Add inserts id, keeping the set sorted, and returns the slot it was
// assigned (every previously indexed id >= id moves up one slot). It
// reports ok=false — without inserting — if id is already present.
func (x *NodeIndex) Add(id NodeID) (slot int, ok bool) {
	at, present := slices.BinarySearch(x.ids, id)
	if present {
		return at, false
	}
	x.ids = slices.Insert(x.ids, at, id)
	return at, true
}
