package pkt

import (
	"math/rand"
	"sort"
	"testing"
)

func TestNodeIndexAddSlotOrder(t *testing.T) {
	var x NodeIndex
	for _, id := range []NodeID{7, 2, 9, 4} {
		if _, ok := x.Add(id); !ok {
			t.Fatalf("Add(%v) rejected", id)
		}
	}
	if _, ok := x.Add(4); ok {
		t.Error("duplicate Add(4) accepted")
	}
	if x.Len() != 4 {
		t.Fatalf("Len = %d, want 4", x.Len())
	}
	want := []NodeID{2, 4, 7, 9}
	for slot, id := range want {
		if got := x.ID(slot); got != id {
			t.Errorf("ID(%d) = %v, want %v", slot, got, id)
		}
		if got, ok := x.Slot(id); !ok || got != slot {
			t.Errorf("Slot(%v) = %d,%v, want %d,true", id, got, ok, slot)
		}
	}
	if _, ok := x.Slot(5); ok {
		t.Error("Slot(5) found an absent id")
	}
}

func TestNodeIndexAddReturnsInsertionSlot(t *testing.T) {
	var x NodeIndex
	if slot, _ := x.Add(10); slot != 0 {
		t.Errorf("first Add slot = %d, want 0", slot)
	}
	if slot, _ := x.Add(5); slot != 0 {
		t.Errorf("Add(5) slot = %d, want 0", slot)
	}
	if slot, _ := x.Add(7); slot != 1 {
		t.Errorf("Add(7) slot = %d, want 1", slot)
	}
	if slot, _ := x.Add(20); slot != 3 {
		t.Errorf("Add(20) slot = %d, want 3", slot)
	}
}

func TestNodeIndexRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var x NodeIndex
	seen := map[NodeID]bool{}
	for i := 0; i < 500; i++ {
		id := NodeID(rng.Intn(200))
		_, ok := x.Add(id)
		if ok == seen[id] {
			t.Fatalf("Add(%v) ok=%v with seen=%v", id, ok, seen[id])
		}
		seen[id] = true
	}
	ids := x.IDs()
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatal("ids not sorted")
	}
	if len(ids) != len(seen) {
		t.Fatalf("Len = %d, want %d", len(ids), len(seen))
	}
	for slot, id := range ids {
		if got, ok := x.Slot(id); !ok || got != slot {
			t.Errorf("Slot(%v) = %d,%v, want %d,true", id, got, ok, slot)
		}
	}
}
