// Packet and frame pooling for the zero-allocation forwarding path.
//
// A Pool recycles Packets and Frames within one simulation run. Packets
// are reference-counted because ownership overlaps during multi-hop
// forwarding: the upstream MAC keeps the packet at its queue head until
// the ACK arrives, while the downstream node has already enqueued the same
// pointer for its own hop — and on a retry-limit drop both may hold it at
// once. The channel additionally holds a reference for the duration of an
// in-flight data frame, so a transmitter that abandons the packet mid-air
// (dynamics halting a node and flushing its queues) cannot strand the
// frame's payload pointer in recycled storage. Frames have exactly one
// owner (the in-flight transmission), so they are returned to the pool
// unconditionally when their flight ends.
//
// Pools are engine-local, like everything in a scenario: one Pool per
// channel, touched only from that scenario's single-threaded event loop,
// so no locking is needed and concurrent scenarios (the campaign layer)
// never share one.
package pkt

import "ezflow/internal/sim"

// Pool recycles packets and frames of one simulation run. The zero value
// is not useful; use NewPool.
type Pool struct {
	packets []*Packet
	frames  []*Frame

	// Stats count pool traffic (reuses/news) for tests and tuning.
	Stats PoolStats
}

// PoolStats aggregates pool counters.
type PoolStats struct {
	PacketNews   uint64
	PacketReuses uint64
	FrameNews    uint64
	FrameReuses  uint64
}

// NewPool creates an empty pool.
func NewPool() *Pool { return &Pool{} }

// Packet returns an initialised packet with reference count 1. The caller
// owns that reference and must Release it once it has handed the packet
// off (queues take their own reference via Retain).
func (pl *Pool) Packet(flow FlowID, seq uint64, src, dst NodeID, bytes int, created sim.Time) *Packet {
	var p *Packet
	if n := len(pl.packets); n > 0 {
		p = pl.packets[n-1]
		pl.packets[n-1] = nil
		pl.packets = pl.packets[:n-1]
		pl.Stats.PacketReuses++
	} else {
		p = &Packet{pool: pl}
		pl.Stats.PacketNews++
	}
	p.Flow, p.Seq, p.Src, p.Dst, p.Bytes, p.Created = flow, seq, src, dst, bytes, created
	p.checks = p.computeChecksum()
	p.hasSum = true
	p.refs = 1
	return p
}

// Frame returns a zeroed frame owned by the caller. It must be returned
// with PutFrame exactly once, by whoever ends its life (the PHY when the
// flight completes, or the MAC when it gives up on an unsent control
// response).
func (pl *Pool) Frame() *Frame {
	if n := len(pl.frames); n > 0 {
		f := pl.frames[n-1]
		pl.frames[n-1] = nil
		pl.frames = pl.frames[:n-1]
		pl.Stats.FrameReuses++
		f.pooled = true
		return f
	}
	pl.Stats.FrameNews++
	return &Frame{pooled: true}
}

// PutFrame recycles a frame obtained from Frame. Frames built by hand
// (tests, tools) pass through unharmed, and double-puts are no-ops, so
// the PHY can call this unconditionally on every completed flight.
func (pl *Pool) PutFrame(f *Frame) {
	if f == nil || !f.pooled {
		return
	}
	*f = Frame{} // clears pooled until Frame() hands it out again
	pl.frames = append(pl.frames, f)
}

// Retain takes an additional reference on p. Each queue that accepts the
// packet holds one reference for as long as the packet sits in its buffer.
func (p *Packet) Retain() { p.refs++ }

// Release drops one reference. When the count reaches zero a pooled packet
// returns to its pool; a hand-built packet (NewPacket) is left to the
// garbage collector. Releasing below zero panics: it means an ownership
// bug that would otherwise surface as silent packet aliasing.
func (p *Packet) Release() {
	p.refs--
	if p.refs > 0 {
		return
	}
	if p.refs < 0 {
		panic("pkt: Release below zero references")
	}
	if p.pool != nil {
		p.pool.packets = append(p.pool.packets, p)
	}
}

// Refs reports the current reference count (for tests).
func (p *Packet) Refs() int32 { return p.refs }
