package pkt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ezflow/internal/sim"
)

func TestChecksumDeterministic(t *testing.T) {
	a := NewPacket(1, 42, 0, 5, 1028, 0)
	b := NewPacket(1, 42, 0, 5, 1028, 7*sim.Second)
	if a.Checksum16() != b.Checksum16() {
		t.Fatal("checksum must not depend on creation time")
	}
	c := NewPacket(1, 43, 0, 5, 1028, 0)
	if a.Checksum16() == c.Checksum16() {
		t.Fatal("consecutive sequence numbers should differ in checksum")
	}
}

func TestChecksumLazy(t *testing.T) {
	p := &Packet{Flow: 2, Seq: 9, Src: 1, Dst: 3, Bytes: 100}
	want := NewPacket(2, 9, 1, 3, 100, 0).Checksum16()
	if p.Checksum16() != want {
		t.Fatal("lazy checksum differs from precomputed")
	}
}

// Property: the checksum is a pure function of the header fields and stays
// within 16 bits (trivially true by type, but exercise the folding).
func TestPropertyChecksumPure(t *testing.T) {
	f := func(flow uint8, seq uint32, src, dst uint8, size uint16) bool {
		p1 := NewPacket(FlowID(flow), uint64(seq), NodeID(src), NodeID(dst), int(size), 0)
		p2 := NewPacket(FlowID(flow), uint64(seq), NodeID(src), NodeID(dst), int(size), 123)
		return p1.Checksum16() == p2.Checksum16()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// The 16-bit identifier space must exhibit collisions across distinct
// packets — the BOE is designed to tolerate them, and the test suite relies
// on them existing to exercise that path.
func TestChecksumCollisionsExist(t *testing.T) {
	seen := make(map[uint16]uint64)
	collisions := 0
	for seq := uint64(0); seq < 200000; seq++ {
		ck := NewPacket(1, seq, 0, 9, 1028, 0).Checksum16()
		if _, dup := seen[ck]; dup {
			collisions++
		}
		seen[ck] = seq
	}
	if collisions == 0 {
		t.Fatal("no identifier collisions in 200k packets; 16-bit space should alias")
	}
}

func TestFrameBytes(t *testing.T) {
	p := NewPacket(1, 1, 0, 2, 1028, 0)
	cases := []struct {
		f    Frame
		want int
	}{
		{Frame{Type: FrameData, Payload: p}, MACHeaderBytes + 1028},
		{Frame{Type: FrameData}, MACHeaderBytes},
		{Frame{Type: FrameAck}, AckBytes},
		{Frame{Type: FrameRTS}, RTSBytes},
		{Frame{Type: FrameCTS}, CTSBytes},
	}
	for _, c := range cases {
		if got := c.f.Bytes(); got != c.want {
			t.Errorf("%v: bytes = %d, want %d", c.f.Type, got, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if Broadcast.String() != "bcast" {
		t.Error("broadcast stringer")
	}
	if NodeID(3).String() != "N3" {
		t.Error("node stringer")
	}
	if FlowID(2).String() != "F2" {
		t.Error("flow stringer")
	}
	for ft, want := range map[FrameType]string{
		FrameData: "DATA", FrameAck: "ACK", FrameRTS: "RTS", FrameCTS: "CTS",
	} {
		if ft.String() != want {
			t.Errorf("frame type stringer %v", ft)
		}
	}
	p := NewPacket(1, 7, 0, 4, 1028, 0)
	f := Frame{Type: FrameData, TxSrc: 0, TxDst: 1, Payload: p}
	if f.String() == "" || p.String() == "" {
		t.Error("empty stringer output")
	}
}
