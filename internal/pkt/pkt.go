// Package pkt defines the packet and frame model shared by the PHY, MAC,
// mesh, and EZ-Flow layers.
//
// The design borrows the layering idea of gopacket: a MAC Frame carries a
// network-layer Packet as payload, each layer knows its own wire size, and a
// CaptureInfo records how a frame was observed by a promiscuous tap. The
// network packet exposes the 16-bit transport checksum that EZ-Flow's Buffer
// Occupancy Estimator uses as its packet identifier — computed as a real
// one's-complement sum over the synthetic header so that identifier
// collisions are possible, exactly as with real TCP/UDP checksums.
package pkt

import (
	"fmt"

	"ezflow/internal/sim"
)

// NodeID identifies a node in the mesh. The broadcast address is Broadcast.
type NodeID int

// Broadcast is the MAC broadcast address.
const Broadcast NodeID = -1

// String formats the node id as N<k> (or "bcast").
func (n NodeID) String() string {
	if n == Broadcast {
		return "bcast"
	}
	return fmt.Sprintf("N%d", int(n))
}

// FlowID identifies an end-to-end flow.
type FlowID int

// String formats the flow id as F<k>.
func (f FlowID) String() string { return fmt.Sprintf("F%d", int(f)) }

// FrameType enumerates the 802.11 frame types the simulator models.
type FrameType uint8

const (
	// FrameData carries a network-layer packet.
	FrameData FrameType = iota
	// FrameAck is the positive acknowledgement of a data frame.
	FrameAck
	// FrameRTS requests the medium ahead of a data frame (optional).
	FrameRTS
	// FrameCTS grants an RTS and reserves the medium via its NAV.
	FrameCTS
)

// String returns the 802.11 frame-type mnemonic.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "DATA"
	case FrameAck:
		return "ACK"
	case FrameRTS:
		return "RTS"
	case FrameCTS:
		return "CTS"
	default:
		return "?"
	}
}

// Sizes of the fixed parts of frames, in bytes, following IEEE 802.11b.
const (
	MACHeaderBytes = 34 // data frame MAC header + FCS
	AckBytes       = 14
	RTSBytes       = 20
	CTSBytes       = 14
	// BPHeaderBytes is the optional backpressure header a
	// queue-differential controller prepends to data frames (one 16-bit
	// backlog field). Unlike QueueTag it is charged on the air: frames
	// carrying it really are BPHeaderBytes longer.
	BPHeaderBytes = 2
	// DefaultPayloadBytes is the network packet size used throughout the
	// paper's experiments (1000-byte application payload + IP/UDP headers).
	DefaultPayloadBytes = 1028
)

// Packet is a network-layer packet travelling along a multi-hop flow.
// Packets are immutable once created; relays hand around the same pointer.
// Pooled packets (see Pool) are reference-counted via Retain/Release so
// the pool knows when every queue along the path has let go.
type Packet struct {
	Flow    FlowID
	Seq     uint64   // per-flow sequence number, assigned by the source
	Src     NodeID   // originating node
	Dst     NodeID   // final destination node
	Bytes   int      // network-layer size in bytes (headers included)
	Created sim.Time // when the source generated it
	checks  uint16   // cached 16-bit identifier
	hasSum  bool     // whether checks is valid
	refs    int32    // reference count (queues + creator)
	pool    *Pool    // owning pool, nil for hand-built packets
}

// NewPacket builds a stand-alone (unpooled) packet and precomputes its
// checksum identifier. The traffic and transport layers use Pool.Packet
// instead so steady-state forwarding does not allocate.
func NewPacket(flow FlowID, seq uint64, src, dst NodeID, bytes int, created sim.Time) *Packet {
	p := &Packet{Flow: flow, Seq: seq, Src: src, Dst: dst, Bytes: bytes, Created: created, refs: 1}
	p.checks = p.computeChecksum()
	p.hasSum = true
	return p
}

// Checksum16 returns the packet's 16-bit transport-style identifier: the
// one's-complement sum of the 16-bit words of a synthetic UDP-like header
// (source, destination, flow, length, and sequence split in two words).
// Distinct packets can share an identifier — the BOE must tolerate that.
func (p *Packet) Checksum16() uint16 {
	if !p.hasSum {
		p.checks = p.computeChecksum()
		p.hasSum = true
	}
	return p.checks
}

func (p *Packet) computeChecksum() uint16 {
	words := [6]uint16{
		uint16(p.Src), uint16(p.Dst), uint16(p.Flow),
		uint16(p.Bytes), uint16(p.Seq >> 16), uint16(p.Seq),
	}
	var sum uint32
	for _, w := range words {
		sum += uint32(w)
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// String formats the packet's flow, sequence, endpoints and size.
func (p *Packet) String() string {
	return fmt.Sprintf("%v#%d %v->%v %dB", p.Flow, p.Seq, p.Src, p.Dst, p.Bytes)
}

// Frame is a MAC-layer frame. Data frames carry a Packet payload; control
// frames (ACK/RTS/CTS) carry none.
type Frame struct {
	Type FrameType
	// TxSrc and TxDst are the per-hop (MAC) transmitter and receiver. For
	// control frames TxDst addresses the peer of the exchange.
	TxSrc, TxDst NodeID
	Payload      *Packet
	// Duration of the NAV reservation carried by RTS/CTS, if used.
	NAV sim.Time
	// QueueTag carries optional piggybacked information (used only by the
	// DiffQ baseline, which does modify the packet structure — EZ-Flow
	// never reads it).
	QueueTag int
	// HasBP marks a data frame carrying the optional backpressure header:
	// BPLen is then the transmitter's backlog toward TxDst in packets, and
	// the frame is BPHeaderBytes longer on the air. Only the backpressure
	// controller (internal/ctl) sets it; EZ-Flow never reads it.
	HasBP bool
	// BPLen is the piggybacked queue length carried when HasBP is set.
	BPLen int
	// Retry marks a retransmission, mirroring the 802.11 retry bit.
	Retry bool
	// pooled marks frames obtained from a Pool, so PutFrame recycles only
	// what it handed out.
	pooled bool
}

// Bytes reports the frame's on-air size in bytes.
func (f *Frame) Bytes() int {
	switch f.Type {
	case FrameData:
		n := MACHeaderBytes
		if f.Payload != nil {
			n += f.Payload.Bytes
		}
		if f.HasBP {
			n += BPHeaderBytes
		}
		return n
	case FrameAck:
		return AckBytes
	case FrameRTS:
		return RTSBytes
	case FrameCTS:
		return CTSBytes
	default:
		return MACHeaderBytes
	}
}

// String formats the frame's type, hop endpoints and payload, if any.
func (f *Frame) String() string {
	if f.Type == FrameData && f.Payload != nil {
		return fmt.Sprintf("%v %v->%v [%v]", f.Type, f.TxSrc, f.TxDst, f.Payload)
	}
	return fmt.Sprintf("%v %v->%v", f.Type, f.TxSrc, f.TxDst)
}

// CaptureInfo describes how a frame was overheard by a promiscuous tap, in
// the spirit of gopacket's CaptureInfo.
type CaptureInfo struct {
	At       sim.Time // when reception completed
	Listener NodeID   // the node whose radio captured the frame
	// OnAir reports that the capture happened at the physical layer (a
	// frame that was really transmitted), as opposed to a local loopback
	// capture before the MAC — the distinction §4.1 draws for the sniffer
	// constraint. The simulator always captures on air.
	OnAir bool
}
