package scenario

import (
	"strings"
	"testing"
)

// TestRoutingField covers the spec's routing selection: valid names reach
// the config and survive a build, unknown names are rejected with the
// registry listing, and the strict decoder rejects misspelled keys.
func TestRoutingField(t *testing.T) {
	spec, err := Parse([]byte(`{
		"topology": {"kind": "random", "nodes": 16, "edge_loss": 0.4},
		"routing": "etx",
		"duration_sec": 30,
		"flows": [{"id": 1, "rate_bps": 4e5}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg := spec.Config(); cfg.Routing != "etx" {
		t.Errorf("Config().Routing = %q, want etx", cfg.Routing)
	}
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Mesh.Route(1)) < 2 {
		t.Errorf("built scenario has no installed route: %v", sc.Mesh.Route(1))
	}

	if _, err := Parse([]byte(`{
		"topology": {"kind": "chain"},
		"routing": "warp-drive"
	}`)); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Errorf("unknown routing: got %v, want error listing the registry", err)
	}

	// Strict decoding: a typo'd key must fail loudly, not silently fall
	// back to the default strategy.
	if _, err := Parse([]byte(`{
		"topology": {"kind": "chain"},
		"routeing": "etx"
	}`)); err == nil {
		t.Error("misspelled routing key accepted silently")
	}
}

// TestEdgeLossValidation pins the topology field's guard rails: only the
// random topology takes it, and only probabilities in [0,1).
func TestEdgeLossValidation(t *testing.T) {
	if _, err := Parse([]byte(`{
		"topology": {"kind": "chain", "hops": 4, "edge_loss": 0.3}
	}`)); err == nil || !strings.Contains(err.Error(), "edge_loss") {
		t.Errorf("edge_loss on chain: got %v, want rejection", err)
	}
	for _, bad := range []string{"-0.1", "1", "1.5"} {
		if _, err := Parse([]byte(`{
			"topology": {"kind": "random", "nodes": 12, "edge_loss": ` + bad + `}
		}`)); err == nil {
			t.Errorf("edge_loss %s accepted", bad)
		}
	}
	if _, err := Parse([]byte(`{
		"topology": {"kind": "random", "nodes": 12, "edge_loss": 0.9}
	}`)); err != nil {
		t.Errorf("valid edge_loss rejected: %v", err)
	}
}
