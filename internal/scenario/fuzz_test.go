package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse hammers the scenario JSON loader with arbitrary bytes: it
// must reject garbage with an error, never panic, and anything it
// accepts must be stable under a second Validate. The corpus seeds from
// the repository's example scenarios plus the minimal valid documents,
// so mutation starts from realistic structure.
func FuzzParse(f *testing.F) {
	for _, p := range []string{
		filepath.Join("..", "..", "examples", "linkfailure", "linkfailure.json"),
		filepath.Join("..", "..", "examples", "routing", "randomdisk.json"),
		filepath.Join("..", "..", "examples", "mobility", "waypoint.json"),
	} {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{"topology":{"kind":"chain","n":4}}`))
	f.Add([]byte(`{"topology":{"kind":"grid"},"mobility":{"model":"waypoint","speed_mps":10},"workload":{"clients":5,"on_mean_sec":2,"off_mean_sec":3}}`))
	f.Add([]byte(`{"topology":{"kind":"grid"},"mode":"ezflow","duration_sec":10}`))
	f.Add([]byte(`{"topology":{"kind":"random","n":9},"flows":[{"src":0,"dst":5}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("Parse returned nil spec with nil error")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails re-validation: %v", err)
		}
	})
}
