package scenario_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"ezflow"
	"ezflow/internal/scenario"
)

const flapSpec = `{
  "name": "chain3-flap",
  "topology": {"kind": "chain", "hops": 3},
  "mode": "ezflow",
  "seed": 3,
  "duration_sec": 24,
  "flows": [{"id": 1, "rate_bps": 4e5}],
  "dynamics": [
    {"at_sec": 8, "kind": "link-down", "a": 1, "b": 2, "reroute": true},
    {"at_sec": 14, "kind": "link-up", "a": 1, "b": 2, "reroute": true}
  ]
}`

func TestParseAndBuild(t *testing.T) {
	spec, err := scenario.Parse([]byte(flapSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "chain3-flap" || spec.Topology.Hops != 3 || len(spec.Dynamics) != 2 {
		t.Fatalf("parsed spec wrong: %+v", spec)
	}
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cfg.Mode != ezflow.ModeEZFlow || sc.Cfg.Seed != 3 {
		t.Errorf("config not applied: mode=%v seed=%d", sc.Cfg.Mode, sc.Cfg.Seed)
	}
	if sc.Dyn == nil {
		t.Fatal("dynamics not attached")
	}
	res := sc.Run()
	if res.Stability == nil {
		t.Fatal("no stability metrics from a faulted scenario")
	}
	if res.Flows[1].Delivered == 0 {
		t.Error("nothing delivered")
	}
}

// TestScenarioRunDeterminism pins the tentpole guarantee at the scenario
// level: the same JSON and seed produce an identical result, packet for
// packet, run after run.
func TestScenarioRunDeterminism(t *testing.T) {
	var results []*ezflow.Result
	for i := 0; i < 2; i++ {
		spec, err := scenario.Parse([]byte(flapSpec))
		if err != nil {
			t.Fatal(err)
		}
		sc, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, sc.Run())
	}
	a, b := results[0], results[1]
	if a.Flows[1].Delivered != b.Flows[1].Delivered {
		t.Errorf("delivered differs: %d vs %d", a.Flows[1].Delivered, b.Flows[1].Delivered)
	}
	if !reflect.DeepEqual(a.Flows[1].Throughput.Points, b.Flows[1].Throughput.Points) {
		t.Error("throughput series differ between identical runs")
	}
	if !reflect.DeepEqual(a.DynamicsLog, b.DynamicsLog) {
		t.Error("dynamics logs differ between identical runs")
	}
	if !reflect.DeepEqual(a.Stability, b.Stability) {
		t.Error("stability metrics differ between identical runs")
	}
}

func TestBuildAllTopologyKinds(t *testing.T) {
	for _, kind := range []string{"chain", "testbed", "scenario1", "scenario2", "tree", "grid", "random"} {
		spec := &scenario.Spec{Topology: scenario.Topology{Kind: kind}, DurationSec: 1}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		sc, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(sc.Mesh.Flows()) == 0 {
			t.Errorf("%s: no default flows installed", kind)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"topology": {"kind": "chain"}, "bogus": 1}`,
		"no kind":       `{"topology": {"hops": 3}}`,
		"bad kind":      `{"topology": {"kind": "torus"}}`,
		"bad mode":      `{"topology": {"kind": "chain"}, "mode": "tcp"}`,
		"dup flow":      `{"topology": {"kind": "chain"}, "flows": [{"id": 1}, {"id": 1}]}`,
		"zero flow id":  `{"topology": {"kind": "chain"}, "flows": [{"id": 0}]}`,
		"bad event":     `{"topology": {"kind": "chain"}, "dynamics": [{"at_sec": 1, "kind": "meteor"}]}`,
		"late event":    `{"topology": {"kind": "chain"}, "duration_sec": 10, "dynamics": [{"at_sec": 20, "kind": "link-up"}]}`,
	}
	for name, src := range cases {
		if _, err := scenario.Parse([]byte(src)); err == nil {
			t.Errorf("%s: accepted %s", name, src)
		}
	}
}

func TestBuildRejectsUnknownDynamicsNode(t *testing.T) {
	src := `{
	  "topology": {"kind": "chain", "hops": 2},
	  "dynamics": [{"at_sec": 1, "kind": "node-down", "node": 77}]
	}`
	spec, err := scenario.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Build(); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Errorf("Build error = %v, want unknown-node", err)
	}
}

const mobileSpec = `{
  "name": "grid-waypoint-downlink",
  "topology": {"kind": "grid", "width": 3, "height": 3},
  "mode": "ezflow",
  "seed": 5,
  "duration_sec": 20,
  "mobility": {"model": "waypoint", "speed_mps": 12, "pause_sec": 1, "tick_sec": 0.25},
  "workload": {"kind": "downlink", "clients": 4, "rate_bps": 1e5, "on_mean_sec": 3, "off_mean_sec": 3}
}`

// TestParseAndBuildMobileWorkload drives the new blocks end to end: the
// spec parses, the engine attaches with the file's parameters, the
// population is expanded, and the run moves nodes.
func TestParseAndBuildMobileWorkload(t *testing.T) {
	spec, err := scenario.Parse([]byte(mobileSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mobility.SpeedMps != 12 || spec.Workload.Clients != 4 {
		t.Fatalf("parsed blocks wrong: %+v %+v", spec.Mobility, spec.Workload)
	}
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mob == nil {
		t.Fatal("mobility engine not attached")
	}
	if len(sc.Sources) != 6 { // grid's flows 1-2 + 4 clients
		t.Fatalf("sources = %d, want 6", len(sc.Sources))
	}
	res := sc.Run()
	if res.MobilityStats == nil || res.MobilityStats.Moves == 0 {
		t.Fatalf("no movement: %+v", res.MobilityStats)
	}
}

// TestTraceFileRoundTrip writes a trace file, references it from a spec,
// and checks the trace-driven model reproduces it through the full
// scenario stack.
func TestTraceFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "walk.json")
	trace := `{"nodes": [{"id": 2, "waypoints": [
	  {"at_sec": 0, "x": 200, "y": 0},
	  {"at_sec": 10, "x": 200, "y": 180}
	]}]}`
	if err := os.WriteFile(tracePath, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `{
	  "topology": {"kind": "grid", "width": 3, "height": 3},
	  "duration_sec": 12,
	  "mobility": {"model": "trace", "trace_file": ` + strconv.Quote(tracePath) + `}
	}`
	spec, err := scenario.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc.Run()
	got := sc.Mesh.Ch.Position(2)
	if got.X != 200 || got.Y != 180 {
		t.Fatalf("traced node ended at %v, want (200, 180)", got)
	}
	// A missing trace file is a Build error, not a panic.
	bad := `{"topology": {"kind": "grid"},
	  "mobility": {"model": "trace", "trace_file": "/nonexistent/trace.json"}}`
	spec, err = scenario.Parse([]byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Build(); err == nil {
		t.Fatal("missing trace file must fail Build")
	}
}

// TestParseErrorsMobility pins strict rejection of malformed mobility
// and workload blocks.
func TestParseErrorsMobility(t *testing.T) {
	cases := map[string]string{
		"unknown mobility field": `{"topology": {"kind": "grid"}, "mobility": {"model": "waypoint", "teleport": true}}`,
		"unknown workload field": `{"topology": {"kind": "grid"}, "workload": {"clients": 3, "priority": 7}}`,
		"unknown mobility model": `{"topology": {"kind": "grid"}, "mobility": {"model": "brownian"}}`,
		"negative speed":         `{"topology": {"kind": "grid"}, "mobility": {"model": "waypoint", "speed_mps": -3}}`,
		"min above max":          `{"topology": {"kind": "grid"}, "mobility": {"model": "waypoint", "speed_mps": 1, "speed_min_mps": 2}}`,
		"trace without file":     `{"topology": {"kind": "grid"}, "mobility": {"model": "trace"}}`,
		"file without trace":     `{"topology": {"kind": "grid"}, "mobility": {"model": "waypoint", "trace_file": "x.json"}}`,
		"off with params":        `{"topology": {"kind": "grid"}, "mobility": {"model": "off", "speed_mps": 3}}`,
		"negative fixed id":      `{"topology": {"kind": "grid"}, "mobility": {"model": "waypoint", "fixed": [-1]}}`,
		"zero clients":           `{"topology": {"kind": "grid"}, "workload": {"clients": 0}}`,
		"bad workload kind":      `{"topology": {"kind": "grid"}, "workload": {"clients": 3, "kind": "sideways"}}`,
		"half an on/off pair":    `{"topology": {"kind": "grid"}, "workload": {"clients": 3, "on_mean_sec": 2}}`,
		"both activity shapes":   `{"topology": {"kind": "grid"}, "workload": {"clients": 3, "on_mean_sec": 2, "off_mean_sec": 2, "arrival_per_sec": 1, "hold_mean_sec": 1}}`,
		"negative gateway":       `{"topology": {"kind": "grid"}, "workload": {"clients": 3, "gateway": -2}}`,
	}
	for name, src := range cases {
		if _, err := scenario.Parse([]byte(src)); err == nil {
			t.Errorf("%s: accepted %s", name, src)
		}
	}
}
