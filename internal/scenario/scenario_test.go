package scenario_test

import (
	"reflect"
	"strings"
	"testing"

	"ezflow"
	"ezflow/internal/scenario"
)

const flapSpec = `{
  "name": "chain3-flap",
  "topology": {"kind": "chain", "hops": 3},
  "mode": "ezflow",
  "seed": 3,
  "duration_sec": 24,
  "flows": [{"id": 1, "rate_bps": 4e5}],
  "dynamics": [
    {"at_sec": 8, "kind": "link-down", "a": 1, "b": 2, "reroute": true},
    {"at_sec": 14, "kind": "link-up", "a": 1, "b": 2, "reroute": true}
  ]
}`

func TestParseAndBuild(t *testing.T) {
	spec, err := scenario.Parse([]byte(flapSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "chain3-flap" || spec.Topology.Hops != 3 || len(spec.Dynamics) != 2 {
		t.Fatalf("parsed spec wrong: %+v", spec)
	}
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cfg.Mode != ezflow.ModeEZFlow || sc.Cfg.Seed != 3 {
		t.Errorf("config not applied: mode=%v seed=%d", sc.Cfg.Mode, sc.Cfg.Seed)
	}
	if sc.Dyn == nil {
		t.Fatal("dynamics not attached")
	}
	res := sc.Run()
	if res.Stability == nil {
		t.Fatal("no stability metrics from a faulted scenario")
	}
	if res.Flows[1].Delivered == 0 {
		t.Error("nothing delivered")
	}
}

// TestScenarioRunDeterminism pins the tentpole guarantee at the scenario
// level: the same JSON and seed produce an identical result, packet for
// packet, run after run.
func TestScenarioRunDeterminism(t *testing.T) {
	var results []*ezflow.Result
	for i := 0; i < 2; i++ {
		spec, err := scenario.Parse([]byte(flapSpec))
		if err != nil {
			t.Fatal(err)
		}
		sc, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, sc.Run())
	}
	a, b := results[0], results[1]
	if a.Flows[1].Delivered != b.Flows[1].Delivered {
		t.Errorf("delivered differs: %d vs %d", a.Flows[1].Delivered, b.Flows[1].Delivered)
	}
	if !reflect.DeepEqual(a.Flows[1].Throughput.Points, b.Flows[1].Throughput.Points) {
		t.Error("throughput series differ between identical runs")
	}
	if !reflect.DeepEqual(a.DynamicsLog, b.DynamicsLog) {
		t.Error("dynamics logs differ between identical runs")
	}
	if !reflect.DeepEqual(a.Stability, b.Stability) {
		t.Error("stability metrics differ between identical runs")
	}
}

func TestBuildAllTopologyKinds(t *testing.T) {
	for _, kind := range []string{"chain", "testbed", "scenario1", "scenario2", "tree", "grid", "random"} {
		spec := &scenario.Spec{Topology: scenario.Topology{Kind: kind}, DurationSec: 1}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		sc, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(sc.Mesh.Flows()) == 0 {
			t.Errorf("%s: no default flows installed", kind)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"topology": {"kind": "chain"}, "bogus": 1}`,
		"no kind":       `{"topology": {"hops": 3}}`,
		"bad kind":      `{"topology": {"kind": "torus"}}`,
		"bad mode":      `{"topology": {"kind": "chain"}, "mode": "tcp"}`,
		"dup flow":      `{"topology": {"kind": "chain"}, "flows": [{"id": 1}, {"id": 1}]}`,
		"zero flow id":  `{"topology": {"kind": "chain"}, "flows": [{"id": 0}]}`,
		"bad event":     `{"topology": {"kind": "chain"}, "dynamics": [{"at_sec": 1, "kind": "meteor"}]}`,
		"late event":    `{"topology": {"kind": "chain"}, "duration_sec": 10, "dynamics": [{"at_sec": 20, "kind": "link-up"}]}`,
	}
	for name, src := range cases {
		if _, err := scenario.Parse([]byte(src)); err == nil {
			t.Errorf("%s: accepted %s", name, src)
		}
	}
}

func TestBuildRejectsUnknownDynamicsNode(t *testing.T) {
	src := `{
	  "topology": {"kind": "chain", "hops": 2},
	  "dynamics": [{"at_sec": 1, "kind": "node-down", "node": 77}]
	}`
	spec, err := scenario.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Build(); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Errorf("Build error = %v, want unknown-node", err)
	}
}
