package scenario

import (
	"strings"
	"testing"
)

// TestControllerField covers the spec's controller selection: valid names
// reach the config, unknown names and mode+controller combinations are
// rejected with actionable errors.
func TestControllerField(t *testing.T) {
	spec, err := Parse([]byte(`{
		"topology": {"kind": "chain", "hops": 4},
		"controller": "backpressure",
		"duration_sec": 30,
		"flows": [{"id": 1, "rate_bps": 2e6}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg := spec.Config(); cfg.Controller != "backpressure" {
		t.Errorf("Config().Controller = %q, want backpressure", cfg.Controller)
	}
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Ctl == nil {
		t.Error("built scenario deployed no controller")
	}

	if _, err := Parse([]byte(`{
		"topology": {"kind": "chain"},
		"controller": "warp-drive"
	}`)); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Errorf("unknown controller: got %v, want error listing the registry", err)
	}

	if _, err := Parse([]byte(`{
		"topology": {"kind": "chain"},
		"mode": "ezflow",
		"controller": "ezflow"
	}`)); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("mode+controller: got %v, want mutual-exclusion error", err)
	}
}
