// Package scenario loads declarative experiment descriptions from JSON:
// a topology, a set of flows, the control mode under test, and a dynamics
// timeline of timed perturbations. It is the bridge between "as many
// scenarios as you can imagine" and the Go constructors — `ezsim
// -scenario file.json` and campaign specs describe perturbed experiments
// without writing code.
//
// A minimal spec:
//
//	{
//	  "name": "chain4-linkfailure",
//	  "topology": {"kind": "chain", "hops": 4},
//	  "mode": "ezflow",
//	  "duration_sec": 600,
//	  "flows": [{"id": 1, "rate_bps": 2e6}],
//	  "dynamics": [
//	    {"at_sec": 200, "kind": "link-down", "a": 1, "b": 2},
//	    {"at_sec": 230, "kind": "link-up", "a": 1, "b": 2}
//	  ]
//	}
//
// Build wires the spec into a runnable ezflow.Scenario. Runs are
// deterministic: the same spec and seed produce byte-identical results.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"ezflow"
	"ezflow/internal/ctl"
	"ezflow/internal/dynamics"
	"ezflow/internal/mobility"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/routing"
	"ezflow/internal/sim"
)

// Spec is a complete declarative scenario.
type Spec struct {
	// Name labels reports; optional.
	Name string `json:"name,omitempty"`
	// Topology selects and parameterises the network.
	Topology Topology `json:"topology"`
	// Mode is the control mechanism: 802.11 | ezflow | penalty | diffq
	// (default 802.11).
	Mode string `json:"mode,omitempty"`
	// Controller selects a congestion controller from the internal/ctl
	// registry by name (ezflow | backpressure | feedback | staticcap |
	// penalty | diffq — see ctl.Names()). It is mutually exclusive with
	// Mode: a spec sets one or the other, so a file can never claim two
	// control planes at once.
	Controller string `json:"controller,omitempty"`
	// Routing selects a routing strategy from the internal/routing
	// registry by name (bfs | etx | kshortest — see routing.Names()).
	// Empty or "bfs" keeps the default minimum-hop routes exactly as the
	// topology builder installed them; any other strategy recomputes every
	// route at wiring (see ezflow.Config.Routing).
	Routing string `json:"routing,omitempty"`
	// Seed is the run's random seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DurationSec is the simulated horizon in seconds (default 600).
	DurationSec float64 `json:"duration_sec,omitempty"`
	// WarmupSec excludes an initial interval from summary statistics.
	WarmupSec float64 `json:"warmup_sec,omitempty"`
	// CWCap is the hardware CWmin cap (0 = none).
	CWCap int `json:"cw_cap,omitempty"`
	// RecoveryTolerance is the stability metric's threshold fraction
	// (default 0.2).
	RecoveryTolerance float64 `json:"recovery_tolerance,omitempty"`
	// Flows lists the traffic sources; empty selects each topology's
	// default flows at 2 Mb/s.
	Flows []Flow `json:"flows,omitempty"`
	// Mobility selects node movement from the internal/mobility registry;
	// absent (or an off model) keeps the topology static, byte-identical
	// to files written before the block existed.
	Mobility *Mobility `json:"mobility,omitempty"`
	// Workload expands a gateway-scale client flow population in addition
	// to Flows; see ezflow.WorkloadSpec.
	Workload *Workload `json:"workload,omitempty"`
	// Dynamics is the perturbation timeline, in any order (events are
	// scheduled by their at_sec).
	Dynamics []Event `json:"dynamics,omitempty"`
}

// Mobility is the declarative form of a mobility configuration.
type Mobility struct {
	// Model: waypoint | trace, or an off spelling (off | static).
	Model string `json:"model"`
	// SpeedMps and SpeedMinMps bound waypoint leg speeds (defaults
	// 1.5 m/s and a quarter of the maximum).
	SpeedMps    float64 `json:"speed_mps,omitempty"`
	SpeedMinMps float64 `json:"speed_min_mps,omitempty"`
	// PauseSec is the waypoint dwell time (default 5 s).
	PauseSec float64 `json:"pause_sec,omitempty"`
	// TickSec is the position-update interval (default 0.5 s).
	TickSec float64 `json:"tick_sec,omitempty"`
	// Fixed pins nodes in place; absent pins the gateway (node 0), an
	// empty list pins nothing.
	Fixed []int `json:"fixed,omitempty"`
	// TraceFile names the JSON waypoint trace of the trace model,
	// resolved relative to the working directory.
	TraceFile string `json:"trace_file,omitempty"`
	// Seed overrides the run seed for trajectory generation.
	Seed int64 `json:"seed,omitempty"`
}

// Workload is the declarative form of ezflow.WorkloadSpec.
type Workload struct {
	// Kind: downlink (default) | uplink.
	Kind string `json:"kind,omitempty"`
	// Clients is the population size (required, > 0).
	Clients int `json:"clients"`
	// RateBps is the per-client rate while active (default 200 kb/s).
	RateBps float64 `json:"rate_bps,omitempty"`
	// Bytes is the packet size (default 1028).
	Bytes int `json:"bytes,omitempty"`
	// Gateway is the gateway node id (default 0).
	Gateway int `json:"gateway,omitempty"`
	// OnMeanSec/OffMeanSec select exponential on/off bursty clients.
	OnMeanSec  float64 `json:"on_mean_sec,omitempty"`
	OffMeanSec float64 `json:"off_mean_sec,omitempty"`
	// ArrivalPerSec/HoldMeanSec select a Poisson arrival/departure
	// population.
	ArrivalPerSec float64 `json:"arrival_per_sec,omitempty"`
	HoldMeanSec   float64 `json:"hold_mean_sec,omitempty"`
}

// Topology selects one of the repository's network builders.
type Topology struct {
	// Kind: chain | testbed | scenario1 | scenario2 | tree | grid | random.
	Kind string `json:"kind"`
	// Hops is the chain length (default 4).
	Hops int `json:"hops,omitempty"`
	// Branching and Depth shape the tree topology (defaults 3 and 2).
	Branching int `json:"branching,omitempty"`
	Depth     int `json:"depth,omitempty"`
	// Width and Height shape the grid topology (defaults 4 and 4).
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// Nodes is the random-disk node count (default 12).
	Nodes int `json:"nodes,omitempty"`
	// Radius is the random-disk radius in metres (0 = auto).
	Radius float64 `json:"radius,omitempty"`
	// EdgeLoss, for the random topology only, calibrates the
	// edge-of-range loss model: links near the transmission-range limit
	// erase with probability ramping quadratically up to this value (see
	// mesh.ApplyEdgeLoss). 0 keeps every link loss-free.
	EdgeLoss float64 `json:"edge_loss,omitempty"`
}

// Flow describes one traffic source.
type Flow struct {
	ID int `json:"id"`
	// RateBps is the source rate in bit/s (default 2e6).
	RateBps float64 `json:"rate_bps,omitempty"`
	// Bytes is the packet size (default 1028).
	Bytes int `json:"bytes,omitempty"`
	// StartSec/StopSec bound the source's activity (StopSec 0 = whole run).
	StartSec float64 `json:"start_sec,omitempty"`
	StopSec  float64 `json:"stop_sec,omitempty"`
	// Poisson selects Poisson arrivals instead of CBR.
	Poisson bool `json:"poisson,omitempty"`
}

// Event is one timed perturbation. Kind selects which fields are read;
// see internal/dynamics for the semantics of each kind.
type Event struct {
	AtSec float64 `json:"at_sec"`
	// Kind: link-down | link-up | link-loss | node-down | node-up |
	// region-loss | region-restore | flow-start | flow-stop | flow-rate.
	Kind string `json:"kind"`
	// A and B are the link endpoints of link-* events.
	A int `json:"a,omitempty"`
	B int `json:"b,omitempty"`
	// Node is the station of node-* events.
	Node int `json:"node,omitempty"`
	// Flow is the flow id of flow-* events.
	Flow int `json:"flow,omitempty"`
	// RateBps is the new rate of flow-rate events.
	RateBps float64 `json:"rate_bps,omitempty"`
	// Loss is the erasure probability of link-loss / region-loss events.
	Loss float64 `json:"loss,omitempty"`
	// X, Y and Radius define the region of region-loss events.
	X      float64 `json:"x,omitempty"`
	Y      float64 `json:"y,omitempty"`
	Radius float64 `json:"radius,omitempty"`
	// Drop makes node-down discard queued packets instead of draining
	// them on restart.
	Drop bool `json:"drop,omitempty"`
	// Reroute triggers BFS route repair after the event applies. Only
	// link-down/link-up/node-down/node-up accept it.
	Reroute bool `json:"reroute,omitempty"`
}

// eventKinds maps scenario-file spellings to dynamics kinds.
var eventKinds = map[string]dynamics.Kind{
	"link-down":      dynamics.LinkDown,
	"link-up":        dynamics.LinkUp,
	"link-loss":      dynamics.LinkLoss,
	"node-down":      dynamics.NodeDown,
	"node-up":        dynamics.NodeUp,
	"region-loss":    dynamics.RegionLoss,
	"region-restore": dynamics.RegionRestore,
	"flow-start":     dynamics.FlowStart,
	"flow-stop":      dynamics.FlowStop,
	"flow-rate":      dynamics.FlowRate,
}

// ParseMode maps the scenario-file and CLI spellings of the four control
// modes; the empty string selects plain 802.11 (the default). It is the
// single spelling table — campaign.ParseMode delegates here, so a
// scenario file can never parse under one CLI and be rejected by the
// other.
func ParseMode(s string) (ezflow.Mode, error) {
	switch strings.ToLower(s) {
	case "", "802.11", "80211", "plain":
		return ezflow.Mode80211, nil
	case "ezflow", "ez-flow":
		return ezflow.ModeEZFlow, nil
	case "penalty":
		return ezflow.ModePenalty, nil
	case "diffq":
		return ezflow.ModeDiffQ, nil
	}
	return 0, fmt.Errorf("scenario: unknown mode %q (want 802.11|ezflow|penalty|diffq)", s)
}

// Load reads and parses a scenario file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates a JSON scenario spec. Unknown fields are
// rejected so typos fail loudly instead of silently configuring nothing.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks everything that can be checked without building the
// mesh (node-id existence is validated at Build time by the dynamics
// engine, which knows the topology).
func (s *Spec) Validate() error {
	switch s.Topology.Kind {
	case "chain", "testbed", "scenario1", "scenario2", "tree", "grid", "random":
	case "":
		return fmt.Errorf("scenario: topology.kind is required")
	default:
		return fmt.Errorf("scenario: unknown topology kind %q", s.Topology.Kind)
	}
	if _, err := ParseMode(s.Mode); err != nil {
		return err
	}
	if s.Controller != "" {
		if s.Mode != "" {
			return fmt.Errorf("scenario: mode %q and controller %q are mutually exclusive (set one)", s.Mode, s.Controller)
		}
		if _, ok := ctl.ByName(s.Controller); !ok {
			return fmt.Errorf("scenario: unknown controller %q (registered: %s)", s.Controller, ctl.NamesList())
		}
	}
	if s.Routing != "" {
		if _, ok := routing.ByName(s.Routing); !ok {
			return fmt.Errorf("scenario: unknown routing strategy %q (registered: %s)", s.Routing, routing.NamesList())
		}
	}
	if s.Topology.EdgeLoss != 0 {
		if s.Topology.Kind != "random" {
			return fmt.Errorf("scenario: edge_loss only applies to the random topology (kind %q)", s.Topology.Kind)
		}
		if s.Topology.EdgeLoss < 0 || s.Topology.EdgeLoss >= 1 {
			return fmt.Errorf("scenario: edge_loss %g out of [0,1)", s.Topology.EdgeLoss)
		}
	}
	if s.DurationSec < 0 {
		return fmt.Errorf("scenario: negative duration_sec %g", s.DurationSec)
	}
	seen := map[int]bool{}
	for i, f := range s.Flows {
		if f.ID <= 0 {
			return fmt.Errorf("scenario: flow %d: id must be positive", i)
		}
		if seen[f.ID] {
			return fmt.Errorf("scenario: duplicate flow id %d", f.ID)
		}
		seen[f.ID] = true
		if f.RateBps < 0 {
			return fmt.Errorf("scenario: flow %d: negative rate_bps", f.ID)
		}
	}
	if m := s.Mobility; m != nil && !mobility.IsOff(m.Model) {
		if _, ok := mobility.ByName(m.Model); !ok {
			return fmt.Errorf("scenario: unknown mobility model %q (registered: %s)", m.Model, mobility.NamesList())
		}
		if m.SpeedMps < 0 || m.SpeedMinMps < 0 || m.PauseSec < 0 || m.TickSec < 0 {
			return fmt.Errorf("scenario: mobility speeds, pause and tick must be >= 0")
		}
		if m.SpeedMps > 0 && m.SpeedMinMps > m.SpeedMps {
			return fmt.Errorf("scenario: mobility speed_min_mps %g above speed_mps %g", m.SpeedMinMps, m.SpeedMps)
		}
		for _, id := range m.Fixed {
			if id < 0 {
				return fmt.Errorf("scenario: mobility fixed id %d is negative", id)
			}
		}
		if (m.Model == "trace") != (m.TraceFile != "") {
			return fmt.Errorf("scenario: trace_file is required by the trace model and meaningless elsewhere")
		}
	} else if m != nil && (m.TraceFile != "" || m.SpeedMps != 0) {
		return fmt.Errorf("scenario: mobility model %q is off but sets model parameters", m.Model)
	}
	if w := s.Workload; w != nil {
		if w.Gateway < 0 {
			return fmt.Errorf("scenario: workload gateway %d is negative", w.Gateway)
		}
		if err := w.spec().Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	dur := s.DurationSec
	if dur <= 0 {
		dur = ezflow.DefaultDuration.Seconds()
	}
	for i, ev := range s.Dynamics {
		if _, ok := eventKinds[ev.Kind]; !ok {
			return fmt.Errorf("scenario: dynamics[%d]: unknown kind %q", i, ev.Kind)
		}
		if ev.AtSec < 0 {
			return fmt.Errorf("scenario: dynamics[%d]: negative at_sec", i)
		}
		if ev.AtSec > dur {
			return fmt.Errorf("scenario: dynamics[%d]: at_sec %g beyond duration %g", i, ev.AtSec, dur)
		}
	}
	return nil
}

// Script converts the spec's dynamics timeline into a dynamics script.
func (s *Spec) Script() *dynamics.Script {
	if len(s.Dynamics) == 0 {
		return nil
	}
	sc := &dynamics.Script{}
	for _, ev := range s.Dynamics {
		sc.Add(dynamics.Event{
			At:      sim.FromSeconds(ev.AtSec),
			Kind:    eventKinds[ev.Kind],
			A:       pkt.NodeID(ev.A),
			B:       pkt.NodeID(ev.B),
			Node:    pkt.NodeID(ev.Node),
			Flow:    pkt.FlowID(ev.Flow),
			RateBps: ev.RateBps,
			Loss:    ev.Loss,
			Center:  phy.Position{X: ev.X, Y: ev.Y},
			Radius:  ev.Radius,
			Drop:    ev.Drop,
			Reroute: ev.Reroute,
		})
	}
	return sc
}

// spec converts the declarative workload block into the ezflow form.
func (w *Workload) spec() *ezflow.WorkloadSpec {
	return &ezflow.WorkloadSpec{
		Kind:          w.Kind,
		Clients:       w.Clients,
		RateBps:       w.RateBps,
		Bytes:         w.Bytes,
		Gateway:       ezflow.NodeID(w.Gateway),
		OnMeanSec:     w.OnMeanSec,
		OffMeanSec:    w.OffMeanSec,
		ArrivalPerSec: w.ArrivalPerSec,
		HoldMeanSec:   w.HoldMeanSec,
	}
}

// WorkloadSpec resolves the spec's workload block, nil when absent.
func (s *Spec) WorkloadSpec() *ezflow.WorkloadSpec {
	if s.Workload == nil {
		return nil
	}
	return s.Workload.spec()
}

// MobilityConfig resolves the spec's mobility block into a runnable
// configuration, loading the trace file when the trace model is
// selected. It returns nil for a static spec. Build and BuildWith call
// it whenever the caller's config leaves Mobility nil, mirroring the
// dynamics timeline.
func (s *Spec) MobilityConfig() (*mobility.Config, error) {
	m := s.Mobility
	if m == nil || mobility.IsOff(m.Model) {
		return nil, nil
	}
	cfg := &mobility.Config{
		Model: m.Model,
		Opts: mobility.Options{
			SpeedMps:    m.SpeedMps,
			SpeedMinMps: m.SpeedMinMps,
			PauseSec:    m.PauseSec,
		},
		TickSec: m.TickSec,
		Seed:    m.Seed,
	}
	if m.Fixed != nil {
		cfg.Fixed = make([]pkt.NodeID, len(m.Fixed))
		for i, id := range m.Fixed {
			cfg.Fixed[i] = pkt.NodeID(id)
		}
	}
	if m.TraceFile != "" {
		tr, err := mobility.LoadTrace(m.TraceFile)
		if err != nil {
			return nil, fmt.Errorf("scenario: mobility trace: %w", err)
		}
		cfg.Opts.Trace = tr
	}
	return cfg, nil
}

// Config resolves the spec's shared run parameters into an ezflow.Config.
// The mobility and workload blocks are NOT resolved here — Build and
// BuildWith attach them (trace-file loading can fail, and the campaign
// layer assembles its own config) — so callers composing a config by
// hand should go through BuildWith.
func (s *Spec) Config() ezflow.Config {
	cfg := ezflow.DefaultConfig()
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.DurationSec > 0 {
		cfg.Duration = sim.FromSeconds(s.DurationSec)
	}
	cfg.Mode, _ = ParseMode(s.Mode) // Validate vetted the spelling
	cfg.Controller = s.Controller
	cfg.Routing = s.Routing
	cfg.MAC.HardwareCWCap = s.CWCap
	cfg.WarmupSkip = sim.FromSeconds(s.WarmupSec)
	cfg.RecoveryTolerance = s.RecoveryTolerance
	cfg.Dynamics = s.Script()
	return cfg
}

// FlowSpecs converts the spec's flows into ezflow flow specs.
func (s *Spec) FlowSpecs() []ezflow.FlowSpec {
	out := make([]ezflow.FlowSpec, 0, len(s.Flows))
	for _, f := range s.Flows {
		rate := f.RateBps
		if rate == 0 {
			rate = 2e6
		}
		out = append(out, ezflow.FlowSpec{
			Flow:    ezflow.FlowID(f.ID),
			RateBps: rate,
			Bytes:   f.Bytes,
			Start:   sim.FromSeconds(f.StartSec),
			Stop:    sim.FromSeconds(f.StopSec),
			Poisson: f.Poisson,
		})
	}
	return out
}

// Build wires the spec into a runnable scenario. Topology construction
// panics (disconnected placements, routes through unknown nodes, dynamics
// events naming absent nodes) are converted into errors.
func (s *Spec) Build() (*ezflow.Scenario, error) {
	return s.BuildWith(s.Config(), s.FlowSpecs())
}

// BuildWith wires the spec's topology around a caller-resolved config and
// flow list — the campaign layer uses it to sweep mode/rate/cap/seed axes
// over one scenario file. The spec's own mode/seed/duration fields are
// ignored in favour of cfg; its dynamics timeline still applies whenever
// the caller left cfg.Dynamics nil.
func (s *Spec) BuildWith(cfg ezflow.Config, flows []ezflow.FlowSpec) (sc *ezflow.Scenario, err error) {
	defer func() {
		if r := recover(); r != nil {
			sc, err = nil, fmt.Errorf("scenario: building %q: %v", s.Topology.Kind, r)
		}
	}()
	if cfg.Dynamics == nil {
		cfg.Dynamics = s.Script()
	}
	if cfg.Mobility == nil {
		mc, merr := s.MobilityConfig()
		if merr != nil {
			return nil, merr
		}
		cfg.Mobility = mc
	}
	if cfg.Workload == nil {
		cfg.Workload = s.WorkloadSpec()
	}
	t := s.Topology
	switch t.Kind {
	case "chain":
		hops := t.Hops
		if hops <= 0 {
			hops = 4
		}
		if len(flows) == 0 {
			flows = []ezflow.FlowSpec{{Flow: 1, RateBps: 2e6}}
		}
		sc = ezflow.NewChain(hops, cfg, flows...)
	case "testbed":
		if len(flows) == 0 {
			flows = []ezflow.FlowSpec{{Flow: 1, RateBps: 2e6}, {Flow: 2, RateBps: 2e6}}
		}
		sc = ezflow.NewTestbed(cfg, flows...)
	case "scenario1":
		if len(flows) == 0 {
			flows = []ezflow.FlowSpec{{Flow: 1, RateBps: 2e6}, {Flow: 2, RateBps: 2e6}}
		}
		sc = ezflow.NewScenario1(cfg, flows...)
	case "scenario2":
		if len(flows) == 0 {
			flows = []ezflow.FlowSpec{{Flow: 1, RateBps: 2e6}, {Flow: 2, RateBps: 2e6}, {Flow: 3, RateBps: 2e6}}
		}
		sc = ezflow.NewScenario2(cfg, flows...)
	case "tree":
		b, d := t.Branching, t.Depth
		if b <= 0 {
			b = 3
		}
		if d <= 0 {
			d = 2
		}
		sc = ezflow.NewTree(b, d, cfg, flows...)
	case "grid":
		w, h := t.Width, t.Height
		if w <= 0 {
			w = 4
		}
		if h <= 0 {
			h = 4
		}
		sc = ezflow.NewGrid(w, h, cfg, flows...)
	case "random":
		n := t.Nodes
		if n <= 0 {
			n = 12
		}
		sc = ezflow.NewRandomLossy(n, t.Radius, t.EdgeLoss, cfg, flows...)
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
	return sc, nil
}
