package ezflow

import (
	"math"

	"ezflow/internal/sim"
)

// Default CAA parameters — the values the paper's simulations use
// (§5.1: bmin = 0.05, bmax = 20, maxcw = 2^15) with mincw = 2^4, the value
// relay nodes converge to in the stable regime.
const (
	DefaultBMin   = 0.05
	DefaultBMax   = 20
	DefaultMinCW  = 1 << 4
	DefaultMaxCW  = 1 << 15
	DefaultWindow = 50 // samples averaged before each decision
)

// CAAConfig parameterises the Channel Access Adaptation module.
type CAAConfig struct {
	BMin   float64 // lower buffer threshold (underutilisation)
	BMax   float64 // upper buffer threshold (overutilisation)
	MinCW  int     // smallest contention window (power of two)
	MaxCW  int     // largest contention window (power of two)
	Window int     // number of BOE samples per decision
}

// DefaultCAAConfig returns the paper's parameters.
func DefaultCAAConfig() CAAConfig {
	return CAAConfig{
		BMin:   DefaultBMin,
		BMax:   DefaultBMax,
		MinCW:  DefaultMinCW,
		MaxCW:  DefaultMaxCW,
		Window: DefaultWindow,
	}
}

// CWSetter is the single control surface the CAA drives: the MAC queue's
// minimum contention window (mac.Queue satisfies it).
type CWSetter interface {
	CWmin() int
	SetCWmin(int)
}

// Decision records one CAA decision, for traces and tests.
type Decision struct {
	At      sim.Time
	Avg     float64 // averaged b_{k+1} over the window
	CW      int     // cw after the decision
	Changed bool
}

// CAA implements the Channel Access Adaptation policy of Algorithm 1:
// every Window samples it averages the BOE estimates and
//
//   - if avg > BMax it counts an overutilisation signal; after
//     countup >= log2(cw) consecutive signals it doubles cw;
//   - if avg < BMin it counts an underutilisation signal; after
//     countdown >= 15 - log2(cw) consecutive signals it halves cw;
//   - otherwise both counters reset and cw is kept.
//
// Tying the reaction thresholds to log2(cw) gives the inter-flow fairness
// property of §3.3: nodes with a large cw react faster to underutilisation
// and slower to overutilisation than nodes with a small cw.
type CAA struct {
	cfg CAAConfig
	cw  CWSetter

	samples   []int
	countUp   int
	countDown int

	// Trace of every decision; OnDecision is invoked per decision too.
	Decisions  []Decision
	OnDecision func(Decision)
	now        func() sim.Time
}

// NewCAA creates a CAA driving the given queue knob. The queue's current
// CWmin is clamped into [MinCW, MaxCW] at creation.
func NewCAA(cfg CAAConfig, cw CWSetter, now func() sim.Time) *CAA {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MinCW <= 0 {
		cfg.MinCW = DefaultMinCW
	}
	if cfg.MaxCW < cfg.MinCW {
		cfg.MaxCW = DefaultMaxCW
	}
	c := &CAA{cfg: cfg, cw: cw, now: now}
	v := cw.CWmin()
	if v < cfg.MinCW {
		cw.SetCWmin(cfg.MinCW)
	} else if v > cfg.MaxCW {
		cw.SetCWmin(cfg.MaxCW)
	}
	return c
}

// Config returns the CAA parameters.
func (c *CAA) Config() CAAConfig { return c.cfg }

// Pending reports how many samples are waiting for the next decision.
func (c *CAA) Pending() int { return len(c.samples) }

// OnSample feeds one BOE estimate; every Window samples a decision fires.
func (c *CAA) OnSample(s Sample) {
	c.samples = append(c.samples, s.Value)
	if len(c.samples) < c.cfg.Window {
		return
	}
	sum := 0
	for _, v := range c.samples {
		sum += v
	}
	avg := float64(sum) / float64(len(c.samples))
	c.samples = c.samples[:0]
	c.decide(avg)
}

// log2cw returns log2 of the current contention window, the quantity the
// hysteresis thresholds are tied to.
func (c *CAA) log2cw() int {
	return int(math.Round(math.Log2(float64(c.cw.CWmin()))))
}

func (c *CAA) decide(avg float64) {
	cw := c.cw.CWmin()
	changed := false
	switch {
	case avg > c.cfg.BMax:
		c.countDown = 0
		c.countUp++
		if c.countUp >= c.log2cw() {
			next := cw * 2
			if next > c.cfg.MaxCW {
				next = c.cfg.MaxCW
			}
			if next != cw {
				c.cw.SetCWmin(next)
				changed = true
			}
			c.countUp = 0
		}
	case avg < c.cfg.BMin:
		c.countUp = 0
		c.countDown++
		if c.countDown >= 15-c.log2cw() {
			next := cw / 2
			if next < c.cfg.MinCW {
				next = c.cfg.MinCW
			}
			if next != cw {
				c.cw.SetCWmin(next)
				changed = true
			}
			c.countDown = 0
		}
	default:
		c.countUp = 0
		c.countDown = 0
	}
	d := Decision{At: c.now(), Avg: avg, CW: c.cw.CWmin(), Changed: changed}
	c.Decisions = append(c.Decisions, d)
	if c.OnDecision != nil {
		c.OnDecision(d)
	}
}
