package ezflow

import (
	"math/rand"
	"testing"

	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

func newTestAggBOE(succs ...pkt.NodeID) (*AggregateBOE, *[]Sample) {
	var got []Sample
	b := NewAggregateBOE(succs, func() sim.Time { return 0 }, func(s Sample) { got = append(got, s) })
	return b, &got
}

func TestAggBOEExactUnderFIFO(t *testing.T) {
	// With a single successor forwarding in FIFO order, the aggregate
	// estimator must agree with the plain BOE: estimate == true backlog.
	b, got := newTestAggBOE(1)
	var fifo []*pkt.Packet
	seq := uint64(0)
	for round := 0; round < 300; round++ {
		for i := 0; i < 2; i++ {
			seq++
			p := pkt.NewPacket(1, seq, 0, 5, 1028, 0)
			b.RecordSent(p.Checksum16())
			fifo = append(fifo, p)
		}
		p := fifo[0]
		fifo = fifo[1:]
		before := len(*got)
		b.OnSniff(sniffFrom(1, p))
		if len(*got) != before+1 {
			t.Fatalf("round %d: no estimate", round)
		}
		if est := (*got)[len(*got)-1].Value; est != len(fifo) {
			t.Fatalf("round %d: estimate %d, true %d", round, est, len(fifo))
		}
	}
}

func TestAggBOETwoSuccessorsSplit(t *testing.T) {
	// Packets alternate between two successors (ExOR-style anycast). The
	// aggregate estimate after each overhear must equal the total number
	// of packets still waiting across both successors.
	b, got := newTestAggBOE(1, 2)
	var q1, q2 []*pkt.Packet
	seq := uint64(0)
	send := func() {
		seq++
		p := pkt.NewPacket(1, seq, 0, 5, 1028, 0)
		b.RecordSent(p.Checksum16())
		if seq%2 == 0 {
			q1 = append(q1, p)
		} else {
			q2 = append(q2, p)
		}
	}
	forward := func(q *[]*pkt.Packet, succ pkt.NodeID) {
		if len(*q) == 0 {
			return
		}
		p := (*q)[0]
		*q = (*q)[1:]
		b.OnSniff(sniffFrom(succ, p))
	}
	for i := 0; i < 20; i++ {
		send()
	}
	forward(&q1, 1)
	forward(&q2, 2)
	forward(&q1, 1)
	if len(*got) != 3 {
		t.Fatalf("estimates = %d, want 3", len(*got))
	}
	// After each overhear the true total waiting is len(q1)+len(q2) plus
	// the packets sent after the overheard one that were also forwarded —
	// with FIFO-per-successor interleave the estimate is within ±1 of the
	// truth; check the final one tightly.
	final := (*got)[2].Value
	truth := len(q1) + len(q2)
	if final < truth-2 || final > truth+2 {
		t.Fatalf("aggregate estimate %d, truth %d", final, truth)
	}
}

func TestAggBOEIgnoresUnknownSuccessor(t *testing.T) {
	b, got := newTestAggBOE(1, 2)
	p := pkt.NewPacket(1, 1, 0, 5, 1028, 0)
	b.RecordSent(p.Checksum16())
	b.OnSniff(sniffFrom(7, p))
	if len(*got) != 0 {
		t.Fatal("estimate from unwatched successor")
	}
	if len(b.Successors()) != 2 {
		t.Fatal("Successors accessor")
	}
}

// TestAggBOENonFIFONoise is the §2.3 robustness claim: with reordered
// (non-FIFO) forwarding the individual samples are noisy, but their
// windowed average tracks the true backlog closely enough for the CAA.
func TestAggBOENonFIFONoise(t *testing.T) {
	b, got := newTestAggBOE(1)
	rng := rand.New(rand.NewSource(3))
	var waiting []*pkt.Packet
	seq := uint64(0)
	var errSum, errN float64
	for round := 0; round < 5000; round++ {
		// Keep roughly 12 packets outstanding.
		for len(waiting) < 12 {
			seq++
			p := pkt.NewPacket(1, seq, 0, 5, 1028, 0)
			b.RecordSent(p.Checksum16())
			waiting = append(waiting, p)
		}
		// Forward a random waiting packet (non-FIFO!).
		i := rng.Intn(len(waiting))
		p := waiting[i]
		waiting = append(waiting[:i], waiting[i+1:]...)
		before := len(*got)
		b.OnSniff(sniffFrom(1, p))
		if len(*got) > before {
			est := (*got)[len(*got)-1].Value
			errSum += float64(est - len(waiting))
			errN++
		}
	}
	if errN == 0 {
		t.Fatal("no estimates under non-FIFO forwarding")
	}
	bias := errSum / errN
	// The mean error must be small relative to the backlog of 12 — the
	// averaging CAA sees an essentially unbiased signal.
	if bias > 6 || bias < -6 {
		t.Fatalf("non-FIFO estimator bias %.2f too large", bias)
	}
}

func TestAggBOERingRecycling(t *testing.T) {
	b, got := newTestAggBOE(1)
	packets := make([]*pkt.Packet, HistorySize+50)
	for i := range packets {
		packets[i] = pkt.NewPacket(1, uint64(i+1), 0, 5, 1028, 0)
		b.RecordSent(packets[i].Checksum16())
	}
	// Most recent packet: estimate 0.
	b.OnSniff(sniffFrom(1, packets[len(packets)-1]))
	if len(*got) == 0 {
		t.Fatal("no estimate for freshest packet")
	}
	if est := (*got)[len(*got)-1].Value; est != 0 {
		t.Fatalf("estimate %d, want 0", est)
	}
	// Internal maps must not leak beyond the ring size.
	if len(b.fwdIdx) > HistorySize {
		t.Fatalf("fwdIdx grew to %d", len(b.fwdIdx))
	}
	total := 0
	for _, xs := range b.pos {
		total += len(xs)
	}
	if total != HistorySize {
		t.Fatalf("pos index holds %d entries, want %d", total, HistorySize)
	}
}
