package ezflow

import (
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// AggregateBOE is the §2.3 extension of the estimator for opportunistic
// (ExOR-style) forwarding, where packets handed to the medium may be
// relayed by any of several successors and the per-successor forwarding
// order is no longer strictly FIFO. The paper's observation: for
// congestion control a node "just needs to keep to a low value the total
// number of packets that are waiting to be forwarded at all of its
// successors" — and with a larger averaging period the noisier signal is
// still useful.
//
// AggregateBOE therefore keeps one shared send history and matches
// overheard forwards from *any* registered successor against it, emitting
// the estimated total backlog across the successor set: the packets sent
// after the overheard one, minus those among them already observed
// forwarded by some successor. Under non-FIFO forwarding individual
// samples are noisy; the CAA's averaging absorbs the noise (verified in
// tests).
type AggregateBOE struct {
	succs map[pkt.NodeID]bool

	ring  []uint16
	pos   map[uint16][]int
	head  int
	count int
	last  int
	// fwdIdx marks ring slots whose packet has been seen forwarded.
	fwdIdx map[int]bool

	Sent      uint64
	Overheard uint64
	Matched   uint64
	Estimates uint64

	emit func(Sample)
	now  func() sim.Time
}

// NewAggregateBOE creates an estimator over the given successor set.
func NewAggregateBOE(succs []pkt.NodeID, now func() sim.Time, emit func(Sample)) *AggregateBOE {
	set := make(map[pkt.NodeID]bool, len(succs))
	for _, s := range succs {
		set[s] = true
	}
	return &AggregateBOE{
		succs:  set,
		ring:   make([]uint16, HistorySize),
		pos:    make(map[uint16][]int),
		last:   -1,
		fwdIdx: make(map[int]bool),
		emit:   emit,
		now:    now,
	}
}

// Successors reports the watched successor set.
func (b *AggregateBOE) Successors() []pkt.NodeID {
	out := make([]pkt.NodeID, 0, len(b.succs))
	for s := range b.succs {
		out = append(out, s)
	}
	return out
}

// RecordSent stores the identifier of a packet handed to the successor
// set.
func (b *AggregateBOE) RecordSent(id uint16) {
	b.Sent++
	if b.count == len(b.ring) {
		b.dropIndex(b.ring[b.head], b.head)
		delete(b.fwdIdx, b.head)
	} else {
		b.count++
	}
	b.ring[b.head] = id
	b.pos[id] = append(b.pos[id], b.head)
	b.last = b.head
	b.head = (b.head + 1) % len(b.ring)
}

func (b *AggregateBOE) dropIndex(id uint16, idx int) {
	xs := b.pos[id]
	for i, x := range xs {
		if x == idx {
			xs = append(xs[:i], xs[i+1:]...)
			break
		}
	}
	if len(xs) == 0 {
		delete(b.pos, id)
	} else {
		b.pos[id] = xs
	}
}

// dist is the circular distance from idx forward to last: the number of
// packets sent strictly after the slot idx.
func (b *AggregateBOE) dist(idx int) int {
	return (b.last - idx + len(b.ring)) % len(b.ring)
}

// OnSniff processes an overheard frame from any watched successor and, on
// a match, emits the estimated aggregate backlog.
func (b *AggregateBOE) OnSniff(f *pkt.Frame) {
	if f.Type != pkt.FrameData || f.Payload == nil || !b.succs[f.TxSrc] {
		return
	}
	b.Overheard++
	if b.last < 0 {
		return
	}
	id := f.Payload.Checksum16()
	idxs, ok := b.pos[id]
	if !ok {
		return
	}
	b.Matched++
	// Among ring slots holding this identifier, prefer the most recent
	// not-yet-forwarded instance; fall back to the most recent one.
	best := -1
	bestDist := len(b.ring) + 1
	for _, idx := range idxs {
		if b.fwdIdx[idx] {
			continue
		}
		if d := b.dist(idx); d < bestDist {
			bestDist = d
			best = idx
		}
	}
	if best < 0 {
		for _, idx := range idxs {
			if d := b.dist(idx); d < bestDist {
				bestDist = d
				best = idx
			}
		}
	}
	// Waiting = sent after the overheard packet, minus those among them
	// already observed forwarded.
	already := 0
	for idx := range b.fwdIdx {
		if d := b.dist(idx); d < bestDist {
			already++
		}
	}
	est := bestDist - already
	if est < 0 {
		est = 0
	}
	b.fwdIdx[best] = true
	b.Estimates++
	if b.emit != nil {
		b.emit(Sample{At: b.now(), Value: est})
	}
}
