package ezflow

import (
	"sort"

	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Controller is one EZ-Flow instance: the BOE/CAA pair a node runs for one
// of its successors. It wires itself to the node's MAC through exactly two
// attachment points — the transmit-notification hook (to record sent
// identifiers on the air, resolving the sniffer constraint of §4.1 the way
// the paper's two-interface deployment does) and the promiscuous tap (to
// overhear the successor's forwards). Its only actuator is the MAC queue's
// CWmin.
type Controller struct {
	Node      pkt.NodeID
	Successor pkt.NodeID
	BOE       *BOE
	CAA       *CAA
	Queue     *mac.Queue

	// CWTrace records (time, cw) after every change, for Figs. 8 and 11.
	CWTrace []CWPoint
}

// CWPoint is one contention-window trace sample.
type CWPoint struct {
	At sim.Time
	CW int
}

// SniffLossyTap wraps a tap function so that each overheard frame is
// dropped with probability p before reaching the BOE — the ablation knob
// for §3.2's claim that EZ-Flow tolerates missing most overheard frames.
type SniffLossyTap struct {
	P    float64
	Rand func() float64
}

// Options configures deployment of EZ-Flow over a mesh.
type Options struct {
	CAA CAAConfig
	// SniffLoss drops each overheard frame at the BOE with this
	// probability (0 = perfect monitor mode within radio constraints).
	SniffLoss float64
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{CAA: DefaultCAAConfig()}
}

// Attach creates and wires a Controller at node n for the queue q feeding
// successor succ.
func Attach(n *mesh.Node, q *mac.Queue, opts Options) *Controller {
	succ := q.NextHop()
	eng := n.Engine()
	ctl := &Controller{Node: n.ID, Successor: succ, Queue: q}
	ctl.CAA = NewCAA(opts.CAA, q, eng.Now)
	ctl.CAA.OnDecision = func(d Decision) {
		if d.Changed {
			ctl.CWTrace = append(ctl.CWTrace, CWPoint{d.At, d.CW})
		}
	}
	ctl.BOE = NewBOE(succ, eng.Now, ctl.CAA.OnSample)
	ctl.CWTrace = append(ctl.CWTrace, CWPoint{eng.Now(), q.CWmin()})

	// Record identifiers when frames toward succ truly go on the air.
	n.MAC.AddTxNotify(func(f *pkt.Frame) {
		if f.TxDst == succ && f.Payload != nil {
			ctl.BOE.RecordSent(f.Payload.Checksum16())
		}
	})
	// Overhear the successor's forwards (monitor mode).
	rng := eng.Rand()
	n.MAC.AddTap(func(f *pkt.Frame, _ pkt.CaptureInfo) {
		if opts.SniffLoss > 0 && rng.Float64() < opts.SniffLoss {
			return
		}
		ctl.BOE.OnSniff(f)
	})
	return ctl
}

// Deployment is the set of controllers installed over a mesh.
type Deployment struct {
	Controllers []*Controller
	byNode      map[pkt.NodeID][]*Controller
	opts        Options
	attached    map[*mac.Queue]bool
}

// Deploy installs EZ-Flow on every node that transmits toward a successor
// which is not the final destination of all its traffic — i.e. every queue
// whose next hop is itself a relay. Queues draining directly into a flow's
// destination have no downstream buffer to protect, so they keep their
// CWmin (their successor never forwards, hence the BOE would never hear
// anything — exactly the paper's situation where the last hop needs no
// control).
func Deploy(m *mesh.Mesh, opts Options) *Deployment {
	dep := &Deployment{
		byNode:   make(map[pkt.NodeID][]*Controller),
		opts:     opts,
		attached: make(map[*mac.Queue]bool),
	}
	dep.Extend(m)
	return dep
}

// Extend attaches controllers to queues that appeared after the previous
// Deploy/Extend pass — mid-run route repair (dynamics BFS rerouting)
// creates fresh per-successor queues that would otherwise run
// uncontrolled. Queues that already carry a controller are untouched, so
// their BOE state and contention-window trajectory survive the repair.
// The Controllers slice stays sorted by (node, successor).
func (d *Deployment) Extend(m *mesh.Mesh) {
	relays := m.RelaySet()
	for _, n := range m.Nodes() {
		for _, q := range n.Queues() {
			if d.attached[q] || !relays[q.NextHop()] {
				continue
			}
			ctl := Attach(n, q, d.opts)
			d.attached[q] = true
			d.Controllers = append(d.Controllers, ctl)
			d.byNode[n.ID] = append(d.byNode[n.ID], ctl)
		}
	}
	sort.Slice(d.Controllers, func(i, j int) bool {
		a, b := d.Controllers[i], d.Controllers[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Successor < b.Successor
	})
}

// At returns the controllers installed at a node.
func (d *Deployment) At(n pkt.NodeID) []*Controller { return d.byNode[n] }

// Controller returns the controller at node n watching successor s, or nil.
func (d *Deployment) Controller(n, s pkt.NodeID) *Controller {
	for _, c := range d.byNode[n] {
		if c.Successor == s {
			return c
		}
	}
	return nil
}
