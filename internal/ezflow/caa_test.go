package ezflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ezflow/internal/sim"
)

// fakeCW is a CWSetter backed by a plain int.
type fakeCW struct{ cw int }

func (f *fakeCW) CWmin() int     { return f.cw }
func (f *fakeCW) SetCWmin(v int) { f.cw = v }

func newTestCAA(initCW int) (*CAA, *fakeCW) {
	cw := &fakeCW{cw: initCW}
	c := NewCAA(DefaultCAAConfig(), cw, func() sim.Time { return 0 })
	return c, cw
}

// feed sends one full decision window of identical samples.
func feed(c *CAA, value int) {
	for i := 0; i < c.Config().Window; i++ {
		c.OnSample(Sample{Value: value})
	}
}

func TestCAANoDecisionBeforeWindow(t *testing.T) {
	c, cw := newTestCAA(32)
	for i := 0; i < DefaultWindow-1; i++ {
		c.OnSample(Sample{Value: 100})
	}
	if len(c.Decisions) != 0 || cw.cw != 32 {
		t.Fatal("decision fired before 50 samples accumulated")
	}
	c.OnSample(Sample{Value: 100})
	if len(c.Decisions) != 1 {
		t.Fatal("50th sample did not trigger a decision")
	}
}

func TestCAADoubleAfterLog2CWSignals(t *testing.T) {
	// cw = 32 → log2 = 5: the 5th consecutive overutilisation decision
	// doubles cw; earlier ones must not.
	c, cw := newTestCAA(32)
	for i := 1; i <= 4; i++ {
		feed(c, 100)
		if cw.cw != 32 {
			t.Fatalf("cw changed after %d signals, needs 5", i)
		}
	}
	feed(c, 100)
	if cw.cw != 64 {
		t.Fatalf("cw = %d after 5 overutilisation signals, want 64", cw.cw)
	}
}

func TestCAAHalveAfter15MinusLog2Signals(t *testing.T) {
	// cw = 1024 → log2 = 10: the (15-10)=5th consecutive underutilisation
	// decision halves cw.
	c, cw := newTestCAA(1024)
	for i := 1; i <= 4; i++ {
		feed(c, 0)
		if cw.cw != 1024 {
			t.Fatalf("cw changed after %d signals, needs 5", i)
		}
	}
	feed(c, 0)
	if cw.cw != 512 {
		t.Fatalf("cw = %d after 5 underutilisation signals, want 512", cw.cw)
	}
}

func TestCAAFairnessAsymmetry(t *testing.T) {
	// §3.3: a node with high cw reacts quicker to underutilisation and
	// slower to overutilisation than a node with low cw.
	decisionsToHalve := func(init int) int {
		c, cw := newTestCAA(init)
		n := 0
		for cw.cw == init {
			feed(c, 0)
			n++
			if n > 20 {
				break
			}
		}
		return n
	}
	decisionsToDouble := func(init int) int {
		c, cw := newTestCAA(init)
		n := 0
		for cw.cw == init {
			feed(c, 100)
			n++
			if n > 20 {
				break
			}
		}
		return n
	}
	if !(decisionsToHalve(1024) < decisionsToHalve(32)) {
		t.Fatal("high-cw node should react faster to underutilisation")
	}
	if !(decisionsToDouble(1024) > decisionsToDouble(32)) {
		t.Fatal("high-cw node should react slower to overutilisation")
	}
}

func TestCAAMiddleBandResetsCounters(t *testing.T) {
	c, cw := newTestCAA(32)
	// Four overutilisation signals, then one in-band decision, then four
	// more: cw must never double (counter was reset).
	for i := 0; i < 4; i++ {
		feed(c, 100)
	}
	feed(c, 5) // bmin < 5 < bmax: desired band
	for i := 0; i < 4; i++ {
		feed(c, 100)
	}
	if cw.cw != 32 {
		t.Fatalf("cw = %d: counters not reset by in-band decision", cw.cw)
	}
}

func TestCAAOppositeSignalResetsCounter(t *testing.T) {
	c, cw := newTestCAA(32)
	for i := 0; i < 4; i++ {
		feed(c, 100)
	}
	feed(c, 0) // underutilisation resets countup
	for i := 0; i < 4; i++ {
		feed(c, 100)
	}
	if cw.cw != 32 {
		t.Fatalf("cw = %d: countup survived an underutilisation signal", cw.cw)
	}
}

func TestCAABounds(t *testing.T) {
	c, cw := newTestCAA(DefaultMinCW)
	// Hammer underutilisation: cw must stay at MinCW.
	for i := 0; i < 50; i++ {
		feed(c, 0)
	}
	if cw.cw != DefaultMinCW {
		t.Fatalf("cw = %d below MinCW", cw.cw)
	}
	// Hammer overutilisation: cw must cap at MaxCW.
	for i := 0; i < 500; i++ {
		feed(c, 100)
	}
	if cw.cw != DefaultMaxCW {
		t.Fatalf("cw = %d, want MaxCW %d", cw.cw, DefaultMaxCW)
	}
}

func TestCAAInitialClamp(t *testing.T) {
	low := &fakeCW{cw: 2}
	NewCAA(DefaultCAAConfig(), low, func() sim.Time { return 0 })
	if low.cw != DefaultMinCW {
		t.Fatalf("initial cw %d not clamped up to MinCW", low.cw)
	}
	high := &fakeCW{cw: 1 << 20}
	NewCAA(DefaultCAAConfig(), high, func() sim.Time { return 0 })
	if high.cw != DefaultMaxCW {
		t.Fatalf("initial cw %d not clamped down to MaxCW", high.cw)
	}
}

func TestCAADecisionTrace(t *testing.T) {
	c, _ := newTestCAA(32)
	var cb []Decision
	c.OnDecision = func(d Decision) { cb = append(cb, d) }
	feed(c, 7)
	if len(c.Decisions) != 1 || len(cb) != 1 {
		t.Fatal("decision not recorded")
	}
	d := c.Decisions[0]
	if d.Avg != 7 || d.CW != 32 || d.Changed {
		t.Fatalf("decision = %+v", d)
	}
	if c.Pending() != 0 {
		t.Fatal("samples not flushed after decision")
	}
}

func TestCAAAveragingNotMedian(t *testing.T) {
	// 49 samples of 0 and one of 5000: average 100 > bmax even though
	// most samples are low — the CAA works on the mean, as Algorithm 1
	// specifies.
	c, _ := newTestCAA(32)
	for i := 0; i < 49; i++ {
		c.OnSample(Sample{Value: 0})
	}
	c.OnSample(Sample{Value: 5000})
	if len(c.Decisions) != 1 {
		t.Fatal("no decision")
	}
	if c.Decisions[0].Avg != 100 {
		t.Fatalf("avg = %v, want 100", c.Decisions[0].Avg)
	}
}

// Property: under any sample stream, cw remains a power of two within
// [MinCW, MaxCW].
func TestPropertyCAAInvariants(t *testing.T) {
	isPow2 := func(v int) bool { return v > 0 && v&(v-1) == 0 }
	f := func(samples []uint8) bool {
		c, cw := newTestCAA(32)
		for _, s := range samples {
			c.OnSample(Sample{Value: int(s)})
			if cw.cw < DefaultMinCW || cw.cw > DefaultMaxCW || !isPow2(cw.cw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}
