package ezflow

import (
	"testing"

	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
	"ezflow/internal/traffic"
)

// TestDeployTreePerSuccessorControllers exercises the §7 extension: on a
// downlink tree, every interior node gets one controller per successor
// queue, each watching its own successor, and the controllers act
// independently.
func TestDeployTreePerSuccessorControllers(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mesh.Tree(eng, 3, 2, phy.DefaultConfig(), mac.DefaultConfig())
	dep := Deploy(m, DefaultOptions())

	// Gateway N0 forwards to relays N1, N2, N3 (all interior): three
	// controllers at N0, one per successor.
	if got := len(dep.At(0)); got != 3 {
		t.Fatalf("gateway controllers = %d, want 3", got)
	}
	succs := map[pkt.NodeID]bool{}
	for _, c := range dep.At(0) {
		succs[c.Successor] = true
		if c.Queue.NextHop() != c.Successor {
			t.Fatalf("controller %v->%v bound to queue toward %v",
				c.Node, c.Successor, c.Queue.NextHop())
		}
	}
	if !succs[1] || !succs[2] || !succs[3] {
		t.Fatalf("gateway successors watched: %v", succs)
	}
	// Interior nodes forward only to leaves: no controllers there.
	if len(dep.At(1)) != 0 {
		t.Fatalf("interior-to-leaf node has %d controllers, want 0", len(dep.At(1)))
	}
}

// TestTreeControllersActIndependently overloads one branch only and
// verifies that only that branch's controller reacts while the others keep
// their windows.
func TestTreeControllersActIndependently(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mesh.Tree(eng, 3, 2, phy.DefaultConfig(), mac.DefaultConfig())
	dep := Deploy(m, DefaultOptions())

	// Flows 1..3 descend through N1, 4..6 through N2, 7..9 through N3.
	// Saturate only the flows of the first branch.
	for _, f := range []pkt.FlowID{1, 2, 3} {
		src := traffic.NewCBR(m, f, 7e5, 1028)
		src.Start()
	}
	// A trickle on one other-branch flow to keep its BOE sampled.
	trickle := traffic.NewCBR(m, 7, 2e4, 1028)
	trickle.Start()

	eng.Run(900 * sim.Second)

	hot := dep.Controller(0, 1)
	cold := dep.Controller(0, 3)
	if hot == nil || cold == nil {
		t.Fatal("missing controllers")
	}
	if hot.BOE.Estimates == 0 {
		t.Fatal("hot branch BOE produced no estimates")
	}
	if hot.Queue.CWmin() <= cold.Queue.CWmin() {
		t.Fatalf("hot branch cw %d not above cold branch cw %d",
			hot.Queue.CWmin(), cold.Queue.CWmin())
	}
}
