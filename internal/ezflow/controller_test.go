package ezflow

import (
	"testing"

	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
	"ezflow/internal/traffic"
)

func chainWithEZ(t *testing.T, hops int, opts Options) (*sim.Engine, *mesh.Mesh, *Deployment) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := mesh.Chain(eng, hops, phy.DefaultConfig(), mac.DefaultConfig())
	dep := Deploy(m, opts)
	return eng, m, dep
}

func TestDeployPlacesControllers(t *testing.T) {
	_, _, dep := chainWithEZ(t, 4, DefaultOptions())
	// Relays of the 4-hop chain are N1, N2, N3. Controllers watch
	// successors that relay: N0 watches N1, N1 watches N2, N2 watches N3.
	// N3's successor is the destination (never forwards), so no
	// controller there.
	if len(dep.Controllers) != 3 {
		t.Fatalf("controllers = %d, want 3", len(dep.Controllers))
	}
	if c := dep.Controller(0, 1); c == nil || c.Queue == nil {
		t.Fatal("missing controller N0->N1")
	}
	if dep.Controller(3, 4) != nil {
		t.Fatal("controller watching the destination")
	}
	if got := len(dep.At(1)); got != 1 {
		t.Fatalf("controllers at N1 = %d", got)
	}
}

func TestControllerEndToEnd(t *testing.T) {
	// Saturate a 5-hop chain and verify the EZ-Flow feedback loop closes:
	// estimates flow, decisions fire, the source's cw rises above the
	// relays' cw, and relay queues stay low on average.
	eng, m, dep := chainWithEZ(t, 5, DefaultOptions())
	src := traffic.NewCBR(m, 1, 2e6, 1028)
	src.Start()
	eng.Run(600 * sim.Second)

	c01 := dep.Controller(0, 1)
	if c01.BOE.Estimates == 0 {
		t.Fatal("BOE produced no estimates")
	}
	if len(c01.CAA.Decisions) == 0 {
		t.Fatal("CAA made no decisions")
	}
	cwSource := c01.Queue.CWmin()
	cwRelay := dep.Controller(2, 3).Queue.CWmin()
	if cwSource <= cwRelay {
		t.Fatalf("source cw %d not above relay cw %d (no penalty discovered)",
			cwSource, cwRelay)
	}
	if peak := dep.Controller(1, 2).Queue.PeakDepth; peak == 0 {
		t.Fatal("relay never buffered anything (no traffic flowed?)")
	}
	// The stabilisation claim: the first relay must not end the run with
	// a saturated buffer.
	if got := m.Node(1).RelayDepth(); got > 45 {
		t.Fatalf("relay N1 ends the run nearly saturated: %d", got)
	}
}

func TestControllerCWTraceMonotoneTimes(t *testing.T) {
	eng, m, dep := chainWithEZ(t, 4, DefaultOptions())
	src := traffic.NewCBR(m, 1, 2e6, 1028)
	src.Start()
	eng.Run(300 * sim.Second)
	for _, c := range dep.Controllers {
		for i := 1; i < len(c.CWTrace); i++ {
			if c.CWTrace[i].At < c.CWTrace[i-1].At {
				t.Fatalf("cw trace times not monotone at %v", c.Node)
			}
		}
	}
}

func TestSniffLossDegradesGracefully(t *testing.T) {
	// §3.2's robustness claim: with 90% of overheard frames dropped the
	// controller still collects estimates and still stabilises, only
	// more slowly.
	opts := DefaultOptions()
	opts.SniffLoss = 0.9
	eng, m, dep := chainWithEZ(t, 4, opts)
	src := traffic.NewCBR(m, 1, 2e6, 1028)
	src.Start()
	eng.Run(600 * sim.Second)
	c := dep.Controller(0, 1)
	if c.BOE.Estimates == 0 {
		t.Fatal("no estimates at all under 90% sniff loss")
	}
	full, _, _ := func() (*Deployment, *mesh.Mesh, *sim.Engine) {
		e2, m2, d2 := chainWithEZ(t, 4, DefaultOptions())
		s2 := traffic.NewCBR(m2, 1, 2e6, 1028)
		s2.Start()
		e2.Run(600 * sim.Second)
		return d2, m2, e2
	}()
	if c.BOE.Estimates >= full.Controller(0, 1).BOE.Estimates {
		t.Fatal("sniff loss did not reduce the estimate rate")
	}
}

func TestDeployMultiFlowSharedRelay(t *testing.T) {
	// Scenario-1-style merge: the junction node's queue gets exactly one
	// controller per successor, and source nodes of both flows get one.
	eng := sim.NewEngine(1)
	m := mesh.Scenario1(eng, phy.DefaultConfig(), mac.DefaultConfig())
	dep := Deploy(m, DefaultOptions())
	// Each relay along the shared trunk N4->N3->N2->N1 watches one
	// successor; N1's successor N0 is the gateway destination (no
	// controller).
	for _, nd := range []struct {
		node, succ pkt.NodeID
	}{{4, 3}, {3, 2}, {2, 1}, {12, 10}, {11, 9}, {10, 8}, {9, 7}} {
		if dep.Controller(nd.node, nd.succ) == nil {
			t.Errorf("missing controller %v->%v", nd.node, nd.succ)
		}
	}
	if dep.Controller(1, 0) != nil {
		t.Error("controller toward the gateway destination")
	}
}

func TestAttachSingleQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mesh.Chain(eng, 3, phy.DefaultConfig(), mac.DefaultConfig())
	n0 := m.Node(0)
	q := n0.SourceQueue(1)
	ctl := Attach(n0, q, DefaultOptions())
	if ctl.Node != 0 || ctl.Successor != 1 {
		t.Fatalf("controller identity: %+v", ctl)
	}
	if len(ctl.CWTrace) != 1 {
		t.Fatal("initial cw trace point missing")
	}
	if ctl.CAA == nil || ctl.BOE == nil {
		t.Fatal("modules not wired")
	}
}
