// Package ezflow implements the paper's contribution: the EZ-Flow
// distributed flow-control mechanism, composed of a Buffer Occupancy
// Estimator (BOE) and a Channel Access Adaptation (CAA) module, wired to
// the MAC only through the per-queue CWmin knob and the promiscuous tap —
// never through message passing.
//
// One Controller runs per (node, successor) pair, exactly as the paper
// deploys one EZ-Flow program per relay with per-successor state.
package ezflow

import (
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// HistorySize is the number of recently sent packet identifiers the BOE
// remembers (the paper's "list of the identifiers of the last 1000
// packets").
const HistorySize = 1000

// Sample is one buffer-occupancy estimate produced by the BOE.
type Sample struct {
	At    sim.Time
	Value int // estimated b_{k+1}
}

// BOE passively estimates the buffer occupancy of the successor node
// b_{k+1} from two pieces of local information: the identifiers of packets
// this node sent to the successor, and the identifiers of packets the
// successor is overheard forwarding to its own successor. Because the
// successor's buffer is FIFO, the number of identifiers between the
// overheard packet and the most recently sent one equals the packets still
// queued there (Algorithm 1 of the paper).
type BOE struct {
	succ pkt.NodeID // N_{k+1}

	// ring of the last HistorySize sent identifiers, oldest overwritten.
	ring  []uint16
	pos   map[uint16][]int // identifier -> ring indexes holding it
	head  int              // next slot to overwrite
	count int              // number of valid entries
	last  int              // ring index of LastPktSent (-1 before first send)

	// Stats
	Sent      uint64 // identifiers recorded
	Overheard uint64 // successor forwards overheard
	Matched   uint64 // overhears that matched a recorded identifier
	Estimates uint64 // samples emitted

	emit func(Sample)
	now  func() sim.Time
}

// NewBOE creates an estimator for the successor node succ. emit receives
// each buffer estimate; now supplies virtual time.
func NewBOE(succ pkt.NodeID, now func() sim.Time, emit func(Sample)) *BOE {
	return &BOE{
		succ: succ,
		ring: make([]uint16, HistorySize),
		pos:  make(map[uint16][]int),
		last: -1,
		emit: emit,
		now:  now,
	}
}

// Successor reports which node this BOE watches.
func (b *BOE) Successor() pkt.NodeID { return b.succ }

// RecordSent stores the identifier of a packet just transmitted to the
// successor ("Store checksum of p in PktSent[]; LastPktSent = checksum").
func (b *BOE) RecordSent(id uint16) {
	b.Sent++
	// Overwrite the oldest entry if the ring is full.
	if b.count == len(b.ring) {
		old := b.ring[b.head]
		b.dropIndex(old, b.head)
	} else {
		b.count++
	}
	b.ring[b.head] = id
	b.pos[id] = append(b.pos[id], b.head)
	b.last = b.head
	b.head = (b.head + 1) % len(b.ring)
}

func (b *BOE) dropIndex(id uint16, idx int) {
	xs := b.pos[id]
	for i, x := range xs {
		if x == idx {
			xs = append(xs[:i], xs[i+1:]...)
			break
		}
	}
	// Keep the (possibly empty) slice in the map: once the ring has cycled
	// through an identifier, its slot capacity is reused forever, so
	// steady-state RecordSent stops allocating.
	b.pos[id] = xs
}

// OnSniff processes a frame overheard on the air. Only data frames
// transmitted *by the successor* to some third node count: they reveal
// which packet the successor just forwarded. If the identifier matches the
// sent history, the distance (in packets) from it to LastPktSent is the
// successor's current buffer occupancy, and a sample is emitted.
func (b *BOE) OnSniff(f *pkt.Frame) {
	if f.Type != pkt.FrameData || f.TxSrc != b.succ || f.Payload == nil {
		return
	}
	b.Overheard++
	if b.last < 0 {
		return
	}
	id := f.Payload.Checksum16()
	idxs := b.pos[id]
	if len(idxs) == 0 {
		return
	}
	b.Matched++
	// With identifier collisions several ring slots may hold id; take the
	// one closest behind LastPktSent (the most recently sent instance),
	// which is the FIFO-consistent interpretation.
	best := -1
	bestDist := len(b.ring) + 1
	for _, idx := range idxs {
		d := b.distance(idx)
		if d < bestDist {
			bestDist = d
			best = idx
		}
	}
	if best < 0 {
		return
	}
	b.Estimates++
	if b.emit != nil {
		b.emit(Sample{At: b.now(), Value: bestDist})
	}
}

// distance counts packets sent strictly after ring index idx up to and
// including LastPktSent — the packets that must still sit in the
// successor's FIFO buffer when the packet at idx is being forwarded.
func (b *BOE) distance(idx int) int {
	n := len(b.ring)
	d := (b.last - idx + n) % n
	return d
}
