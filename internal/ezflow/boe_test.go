package ezflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// sniffFrom builds the data frame node succ would be overheard forwarding.
func sniffFrom(succ pkt.NodeID, p *pkt.Packet) *pkt.Frame {
	return &pkt.Frame{Type: pkt.FrameData, TxSrc: succ, TxDst: succ + 1, Payload: p}
}

func newTestBOE(succ pkt.NodeID) (*BOE, *[]Sample) {
	var got []Sample
	b := NewBOE(succ, func() sim.Time { return 0 }, func(s Sample) { got = append(got, s) })
	return b, &got
}

// simulateFIFO drives a BOE against an explicitly simulated successor FIFO
// and checks every estimate equals the true occupancy at overhear time.
func TestBOEExactUnderFIFO(t *testing.T) {
	b, got := newTestBOE(1)
	var fifo []*pkt.Packet
	seq := uint64(0)
	send := func() {
		seq++
		p := pkt.NewPacket(1, seq, 0, 5, 1028, 0)
		b.RecordSent(p.Checksum16())
		fifo = append(fifo, p)
	}
	forward := func() *pkt.Packet {
		p := fifo[0]
		fifo = fifo[1:]
		return p
	}
	// Interleave sends and forwards in a fixed pattern.
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			send()
		}
		for i := 0; i < 2; i++ {
			p := forward()
			before := len(*got)
			b.OnSniff(sniffFrom(1, p))
			if len(*got) != before+1 {
				t.Fatalf("round %d: sniff produced no estimate", round)
			}
			est := (*got)[len(*got)-1].Value
			if est != len(fifo) {
				t.Fatalf("round %d: estimate %d, true occupancy %d", round, est, len(fifo))
			}
		}
	}
	if b.Matched != b.Overheard {
		t.Fatalf("matched %d of %d overheard under loss-free FIFO", b.Matched, b.Overheard)
	}
}

func TestBOEIgnoresIrrelevantFrames(t *testing.T) {
	b, got := newTestBOE(1)
	p := pkt.NewPacket(1, 1, 0, 5, 1028, 0)
	b.RecordSent(p.Checksum16())
	// Wrong source: a frame from node 7, not the successor.
	b.OnSniff(&pkt.Frame{Type: pkt.FrameData, TxSrc: 7, TxDst: 8, Payload: p})
	// Control frame from the successor.
	b.OnSniff(&pkt.Frame{Type: pkt.FrameAck, TxSrc: 1, TxDst: 0})
	// Data frame without payload.
	b.OnSniff(&pkt.Frame{Type: pkt.FrameData, TxSrc: 1, TxDst: 2})
	if len(*got) != 0 {
		t.Fatalf("irrelevant frames produced %d estimates", len(*got))
	}
}

func TestBOEUnknownIdentifierNoEstimate(t *testing.T) {
	b, got := newTestBOE(1)
	sent := pkt.NewPacket(1, 1, 0, 5, 1028, 0)
	b.RecordSent(sent.Checksum16())
	// The successor forwards a packet we never sent (e.g. cross traffic
	// from another predecessor).
	other := pkt.NewPacket(9, 77, 3, 5, 999, 0)
	if other.Checksum16() == sent.Checksum16() {
		t.Skip("identifier collision in test vector")
	}
	b.OnSniff(sniffFrom(1, other))
	if len(*got) != 0 {
		t.Fatal("estimate produced for an unknown identifier")
	}
	if b.Overheard != 1 || b.Matched != 0 {
		t.Fatalf("counters: overheard=%d matched=%d", b.Overheard, b.Matched)
	}
}

func TestBOESniffBeforeAnySend(t *testing.T) {
	b, got := newTestBOE(1)
	b.OnSniff(sniffFrom(1, pkt.NewPacket(1, 1, 0, 5, 1028, 0)))
	if len(*got) != 0 {
		t.Fatal("estimate produced before any send was recorded")
	}
}

func TestBOERingOverwrite(t *testing.T) {
	b, got := newTestBOE(1)
	// Send HistorySize+100 packets; the first 100 identifiers must be
	// forgotten.
	packets := make([]*pkt.Packet, HistorySize+100)
	for i := range packets {
		packets[i] = pkt.NewPacket(1, uint64(i+1), 0, 5, 1028, 0)
		b.RecordSent(packets[i].Checksum16())
	}
	// Overhear the very first packet: its slot has been overwritten, so
	// unless its 16-bit identifier happens to alias a live entry there is
	// no estimate; if it does alias, the estimate is still bounded by the
	// ring size.
	before := len(*got)
	b.OnSniff(sniffFrom(1, packets[0]))
	if len(*got) > before {
		est := (*got)[len(*got)-1].Value
		if est < 0 || est >= HistorySize {
			t.Fatalf("aliased estimate out of bounds: %d", est)
		}
	}
	// The most recent packet must still be tracked exactly: estimate 0.
	b.OnSniff(sniffFrom(1, packets[len(packets)-1]))
	if len(*got) == before {
		t.Fatal("no estimate for the most recent packet")
	}
	if est := (*got)[len(*got)-1].Value; est != 0 {
		t.Fatalf("estimate for last-sent packet = %d, want 0", est)
	}
}

func TestBOEIdentifierCollisionPicksNearest(t *testing.T) {
	// Two distinct ring slots holding the same identifier: the estimate
	// must use the most recently sent instance (smallest distance), which
	// is the FIFO-consistent reading.
	b, got := newTestBOE(1)
	p := pkt.NewPacket(1, 42, 0, 5, 1028, 0)
	b.RecordSent(p.Checksum16()) // old instance
	for i := 0; i < 10; i++ {
		b.RecordSent(pkt.NewPacket(1, uint64(100+i), 0, 5, 1028, 0).Checksum16())
	}
	b.RecordSent(p.Checksum16()) // fresh instance (same identifier)
	b.RecordSent(pkt.NewPacket(1, 200, 0, 5, 1028, 0).Checksum16())
	b.OnSniff(sniffFrom(1, p))
	if len(*got) != 1 {
		t.Fatal("no estimate")
	}
	if est := (*got)[0].Value; est != 1 {
		t.Fatalf("estimate %d, want 1 (nearest instance)", est)
	}
}

func TestBOELossySniffStillConsistent(t *testing.T) {
	// §3.2: the BOE need not overhear every forwarded packet. Drop 70% of
	// sniffs; every estimate that does fire must still be exact.
	b, got := newTestBOE(1)
	rng := rand.New(rand.NewSource(7))
	var fifo []*pkt.Packet
	seq := uint64(0)
	for round := 0; round < 2000; round++ {
		if rng.Intn(2) == 0 || len(fifo) == 0 {
			seq++
			p := pkt.NewPacket(1, seq, 0, 5, 1028, 0)
			b.RecordSent(p.Checksum16())
			fifo = append(fifo, p)
		} else {
			p := fifo[0]
			fifo = fifo[1:]
			if rng.Float64() < 0.7 {
				continue // sniff lost
			}
			before := len(*got)
			b.OnSniff(sniffFrom(1, p))
			if len(*got) > before {
				if est := (*got)[len(*got)-1].Value; est != len(fifo) {
					t.Fatalf("lossy sniff estimate %d, true %d", est, len(fifo))
				}
			}
		}
	}
	if len(*got) == 0 {
		t.Fatal("no estimates at all under 70% sniff loss")
	}
}

func TestBOESuccessorAccessor(t *testing.T) {
	b, _ := newTestBOE(3)
	if b.Successor() != 3 {
		t.Fatal("Successor")
	}
}

// Property: for any interleaving of sends and FIFO forwards (no loss), the
// BOE estimate equals the true successor queue length. This is the paper's
// core inference claim.
func TestPropertyBOEMatchesFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		b, got := newTestBOE(1)
		var fifo []*pkt.Packet
		seq := uint64(0)
		for _, isSend := range ops {
			if isSend || len(fifo) == 0 {
				seq++
				p := pkt.NewPacket(1, seq, 0, 5, 1028, 0)
				b.RecordSent(p.Checksum16())
				fifo = append(fifo, p)
			} else {
				p := fifo[0]
				fifo = fifo[1:]
				before := len(*got)
				b.OnSniff(sniffFrom(1, p))
				if len(*got) != before+1 {
					return false
				}
				if (*got)[len(*got)-1].Value != len(fifo) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}
