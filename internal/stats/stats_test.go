package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ezflow/internal/sim"
)

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatal("N")
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v, want %v", w.Var(), 32.0/7)
	}
	if math.Abs(w.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatal("std")
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 {
		t.Fatal("empty accumulator must be zero")
	}
	w.Add(3)
	if w.Var() != 0 {
		t.Fatal("single-sample variance must be zero")
	}
}

func TestJainIndex(t *testing.T) {
	cases := []struct {
		x    []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{100, 100}, 1},
		{nil, 1},
		{[]float64{0, 0}, 1},
	}
	for _, c := range cases {
		if got := JainIndex(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// Property: Jain's index lies in (0, 1] for any non-negative input with at
// least one positive entry, and equals 1 iff all positive entries are equal
// and there are no zeros.
func TestPropertyJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		pos := false
		for i, v := range raw {
			x[i] = float64(v)
			if v > 0 {
				pos = true
			}
		}
		fi := JainIndex(x)
		if !pos {
			return fi == 1
		}
		return fi > 0 && fi <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i)*sim.Second, float64(i))
	}
	if s.Len() != 10 {
		t.Fatal("len")
	}
	if s.Mean() != 4.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 9 {
		t.Fatal("max")
	}
	w := s.Window(2*sim.Second, 5*sim.Second)
	if w.Len() != 3 || w.Points[0].V != 2 || w.Points[2].V != 4 {
		t.Fatalf("window: %+v", w.Points)
	}
	if (&Series{}).Mean() != 0 || (&Series{}).Max() != 0 || (&Series{}).Std() != 0 {
		t.Fatal("empty series stats must be zero")
	}
}

func TestSeriesStd(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(0, v)
	}
	if math.Abs(s.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std = %v", s.Std())
	}
}

func TestSeriesPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(0, float64(i))
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
	if p := s.Percentile(50); math.Abs(p-50.5) > 1e-9 {
		t.Fatalf("p50 = %v", p)
	}
	if (&Series{}).Percentile(50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestFlowMeterBinning(t *testing.T) {
	fm := NewFlowMeter(1 * sim.Second)
	// 10 packets of 1000 B in second 0, none in second 1, 5 in second 2.
	for i := 0; i < 10; i++ {
		fm.OnDeliver(sim.Time(i)*100*sim.Millisecond, 0, 1000)
	}
	for i := 0; i < 5; i++ {
		fm.OnDeliver(2*sim.Second+sim.Time(i)*100*sim.Millisecond, 2*sim.Second, 1000)
	}
	fm.Close(3 * sim.Second)
	pts := fm.Throughput.Points
	if len(pts) != 3 {
		t.Fatalf("bins = %d, want 3", len(pts))
	}
	if math.Abs(pts[0].V-80) > 1e-9 { // 10*1000*8 bits / 1 s / 1000 = 80 kb/s
		t.Fatalf("bin0 = %v, want 80", pts[0].V)
	}
	if pts[1].V != 0 {
		t.Fatalf("bin1 = %v, want 0", pts[1].V)
	}
	if math.Abs(pts[2].V-40) > 1e-9 {
		t.Fatalf("bin2 = %v, want 40", pts[2].V)
	}
	if fm.Delivered != 15 || fm.BytesTotal != 15000 {
		t.Fatal("totals")
	}
}

func TestFlowMeterDelay(t *testing.T) {
	fm := NewFlowMeter(sim.Second)
	fm.OnDeliver(5*sim.Second, 2*sim.Second, 1000)
	if len(fm.Delay.Points) != 1 || fm.Delay.Points[0].V != 3 {
		t.Fatalf("delay series: %+v", fm.Delay.Points)
	}
}

func TestFlowMeterDefaultBin(t *testing.T) {
	fm := NewFlowMeter(0)
	if fm.bin != 10*sim.Second {
		t.Fatal("default bin")
	}
}

// Property: Welford mean/std agree with the naive two-pass computation.
func TestPropertyWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var sq float64
		for _, v := range raw {
			d := float64(v) - mean
			sq += d * d
		}
		naiveVar := sq / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-naiveVar) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: FlowMeter conserves bytes — the sum over bins equals the total
// delivered bytes, for any arrival pattern.
func TestPropertyFlowMeterConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		fm := NewFlowMeter(sim.Second)
		var total float64
		at := sim.Time(0)
		for _, v := range raw {
			at += sim.Time(v) * sim.Microsecond * 100
			fm.OnDeliver(at, 0, 1000)
			total += 1000 * 8
		}
		fm.Close(at + sim.Second)
		var binned float64
		for _, p := range fm.Throughput.Points {
			binned += p.V * 1000 // kb/s * 1 s = kilobits
		}
		return math.Abs(binned-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// TestWelfordMergeIdentity checks the parallel-merge contract: splitting
// a stream at any cut point and merging the two partial accumulators
// reproduces the single-stream moments exactly (up to float rounding).
func TestWelfordMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.NormFloat64()*17 + 3
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	for _, cut := range []int{0, 1, 128, 256, len(xs)} {
		var a, b Welford
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("cut %d: N = %d, want %d", cut, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
			t.Errorf("cut %d: mean %v, want %v", cut, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Var()-whole.Var()) > 1e-9*whole.Var() {
			t.Errorf("cut %d: var %v, want %v", cut, a.Var(), whole.Var())
		}
	}
}

func TestWelfordMergeManyShards(t *testing.T) {
	// Merging k single-sample shards must equal streaming Add, the way
	// the campaign engine pools per-replication bin statistics.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var whole, merged Welford
	for _, x := range xs {
		whole.Add(x)
		var shard Welford
		shard.Add(x)
		merged.Merge(shard)
	}
	if merged.N() != whole.N() || math.Abs(merged.Var()-whole.Var()) > 1e-12 {
		t.Fatalf("sharded merge: n=%d var=%v, want n=%d var=%v",
			merged.N(), merged.Var(), whole.N(), whole.Var())
	}
	// Identity element: merging a zero accumulator changes nothing.
	before := merged
	merged.Merge(Welford{})
	if merged != before {
		t.Error("merging the zero Welford is not the identity")
	}
	var zero Welford
	zero.Merge(whole)
	if zero != whole {
		t.Error("merging into the zero Welford must copy")
	}
}

func TestSummarize(t *testing.T) {
	var w Welford
	if s := w.Summarize(); s.N != 0 || s.CI95 != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	s := w.Summarize()
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary moments: %+v", s)
	}
	// df = 7 -> t = 2.365.
	want := 2.365 * s.Std / math.Sqrt(8)
	if math.Abs(s.CI95-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", s.CI95, want)
	}
	// Large samples converge to the normal critical value.
	var big Welford
	for i := 0; i < 1000; i++ {
		big.Add(float64(i % 10))
	}
	bs := big.Summarize()
	want = 1.96 * bs.Std / math.Sqrt(1000)
	if math.Abs(bs.CI95-want) > 1e-9 {
		t.Errorf("large-sample CI95 = %v, want %v", bs.CI95, want)
	}
}
