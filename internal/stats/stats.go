// Package stats collects and summarises the metrics the paper reports:
// per-flow throughput (mean and standard deviation over time bins),
// end-to-end delay series, queue-occupancy traces, and Jain's fairness
// index (Eq. 1 of the paper).
package stats

import (
	"math"
	"sort"

	"ezflow/internal/sim"
)

// Welford accumulates mean and variance in a single pass.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports the sample count.
func (w *Welford) N() uint64 { return w.n }

// Mean reports the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var reports the sample variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std reports the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Merge folds another accumulator into w using the parallel-combination
// rule of Chan et al., so that partial statistics computed on separate
// workers combine into exactly the moments a single-stream Add sequence
// would have produced. The zero Welford is a valid identity element.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// WelfordState is the serialisable form of a Welford accumulator: the
// exact running moments, bit for bit. It exists for the campaign fabric
// — a replication's pooled bin statistics travel through cache entries
// and worker-process frames as a WelfordState, and because JSON
// round-trips float64 exactly (Go emits the shortest representation
// that parses back to the same value), an accumulator restored with
// SetState merges identically to the live original.
type WelfordState struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// State snapshots w's exact internal moments.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2}
}

// SetState restores the exact moments captured by State, replacing w.
func (w *Welford) SetState(s WelfordState) {
	w.n, w.mean, w.m2 = s.N, s.Mean, s.M2
}

// Summary is a serialisable snapshot of a Welford accumulator with the
// 95% confidence half-width the campaign reports attach to every metric.
type Summary struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	// CI95 is the half-width of the two-sided 95% confidence interval of
	// the mean (Student t for small samples, 0 with fewer than 2 samples).
	CI95 float64 `json:"ci95"`
}

// Summarize snapshots w into a Summary.
func (w *Welford) Summarize() Summary {
	s := Summary{N: w.n, Mean: w.Mean(), Std: w.Std()}
	if w.n >= 2 {
		s.CI95 = tCrit95(w.n-1) * s.Std / math.Sqrt(float64(w.n))
	}
	return s
}

// t95 holds two-sided 95% Student-t critical values for df 1..30; beyond
// that the normal approximation 1.96 is within half a percent.
var t95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCrit95(df uint64) float64 {
	if df == 0 {
		return 0
	}
	if df <= uint64(len(t95)) {
		return t95[df-1]
	}
	return 1.96
}

// JainIndex computes Jain's fairness index over per-flow throughputs:
// (Σx)² / (n·Σx²). It returns 1 for an empty input by convention and is
// always in (0, 1] for non-negative, not-all-zero inputs.
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 1
	}
	var sum, sq float64
	for _, v := range x {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(x)) * sq)
}

// Point is one sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) { s.Points = append(s.Points, Point{t, v}) }

// AddBatch appends a block of samples in one grow-and-copy step — the
// flush path of trace.Ring.
func (s *Series) AddBatch(pts []Point) { s.Points = append(s.Points, pts...) }

// Len reports the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Mean reports the mean of the values.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Std reports the sample standard deviation of the values.
func (s *Series) Std() float64 {
	n := len(s.Points)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var sq float64
	for _, p := range s.Points {
		d := p.V - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(n-1))
}

// Max reports the maximum value (0 if empty).
func (s *Series) Max() float64 {
	var mx float64
	for i, p := range s.Points {
		if i == 0 || p.V > mx {
			mx = p.V
		}
	}
	return mx
}

// Window returns the sub-series with from <= T < to.
func (s *Series) Window(from, to sim.Time) *Series {
	out := &Series{Name: s.Name}
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of the values, or 0 if
// the series is empty.
func (s *Series) Percentile(p float64) float64 {
	n := len(s.Points)
	if n == 0 {
		return 0
	}
	vals := make([]float64, n)
	for i, pt := range s.Points {
		vals[i] = pt.V
	}
	sort.Float64s(vals)
	if p <= 0 {
		return vals[0]
	}
	if p >= 100 {
		return vals[n-1]
	}
	idx := p / 100 * float64(n-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= n {
		return vals[n-1]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// FlowMeter bins packet arrivals at a flow's destination into fixed windows
// and produces the throughput time series the paper plots, plus a delay
// series of per-packet end-to-end latencies.
type FlowMeter struct {
	bin        sim.Time
	curStart   sim.Time
	curBytes   int
	Throughput Series // kb/s per bin
	Delay      Series // seconds per delivered packet
	Delivered  uint64
	BytesTotal uint64
}

// NewFlowMeter creates a meter with the given bin width (the paper uses
// 10-second bins for its throughput plots).
func NewFlowMeter(bin sim.Time) *FlowMeter {
	if bin <= 0 {
		bin = 10 * sim.Second
	}
	return &FlowMeter{bin: bin}
}

// OnDeliver records a packet of the flow reaching its destination at time
// now, created at created, carrying bytes payload bytes.
func (f *FlowMeter) OnDeliver(now, created sim.Time, bytes int) {
	f.Delivered++
	f.BytesTotal += uint64(bytes)
	f.Delay.Add(now, (now - created).Seconds())
	for now >= f.curStart+f.bin {
		f.flushBin()
	}
	f.curBytes += bytes
}

func (f *FlowMeter) flushBin() {
	kbps := float64(f.curBytes*8) / f.bin.Seconds() / 1000
	f.Throughput.Add(f.curStart+f.bin, kbps)
	f.curStart += f.bin
	f.curBytes = 0
}

// Close flushes the current partial bin.
func (f *FlowMeter) Close(now sim.Time) {
	for f.curStart+f.bin <= now {
		f.flushBin()
	}
}

// MeanThroughputKbps reports the average goodput in kb/s between from and
// to, computed from totals rather than bins for accuracy.
func (f *FlowMeter) MeanThroughputKbps(from, to sim.Time) float64 {
	w := f.Throughput.Window(from, to)
	return w.Mean()
}

// Periodic probe sampling lives in internal/trace (Recorder), which
// batches samples through a preallocated ring before they reach a
// Series; the paper's queue-occupancy traces (Figs. 1 and 4) are built
// that way.
