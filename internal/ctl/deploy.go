package ctl

import (
	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Deployment wires one hook-based Controller over a mesh: one Relay per
// queue whose next hop is a relay of some flow (the same coverage rule as
// the EZ-Flow deployment — queues draining straight into a destination
// have no downstream buffer to protect). It implements Instance.
type Deployment struct {
	// Ctrl is the deployed controller.
	Ctrl Controller
	// Relays lists every attached relay in deterministic (node, queue
	// creation) order.
	Relays []*Relay

	opts     Options
	tick     sim.Time
	attached map[*mac.Queue]bool
	// own marks queues created by the controller itself (ControlQueue);
	// Extend never attaches a controller to them, so control traffic is
	// never recursively controlled.
	own      map[*mac.Queue]bool
	ctlQ     map[ctlQKey]*mac.Queue
	overhead uint64
}

// ctlQKey identifies one node's control queue toward a peer.
type ctlQKey struct {
	from, to pkt.NodeID
}

// Deploy installs ctrl over the mesh with a per-relay tick period (0 = no
// ticks) and returns the deployment handle.
func Deploy(m *mesh.Mesh, ctrl Controller, tick sim.Time, opts Options) *Deployment {
	d := &Deployment{
		Ctrl:     ctrl,
		opts:     opts,
		tick:     tick,
		attached: make(map[*mac.Queue]bool),
		own:      make(map[*mac.Queue]bool),
		ctlQ:     make(map[ctlQKey]*mac.Queue),
	}
	d.Extend(m)
	return d
}

// Extend implements Instance: it attaches the controller to queues that
// appeared since the previous pass (deployment, then after every route
// repair). Already-controlled queues keep their state and hooks.
func (d *Deployment) Extend(m *mesh.Mesh) {
	relays := m.RelaySet()
	for _, n := range m.Nodes() {
		for _, q := range n.Queues() {
			if d.attached[q] || d.own[q] || !relays[q.NextHop()] {
				continue
			}
			d.attached[q] = true
			r := &Relay{
				Node:      n.ID,
				Successor: q.NextHop(),
				Caps:      NewCaps(q),
				Eng:       n.Engine(),
				MAC:       n.MAC,
				Pool:      m.Pool(),
				Mesh:      m,
				Dep:       d,
			}
			d.Relays = append(d.Relays, r)
			d.Ctrl.Attach(r)
			d.wire(r, q)
		}
	}
}

// wire binds the relay's hooks to its MAC and queue. Closures are built
// once per relay; the per-event path through them allocates nothing.
func (d *Deployment) wire(r *Relay, q *mac.Queue) {
	ctrl := d.Ctrl
	q.SetHooks(
		func(p *pkt.Packet) { ctrl.OnEnqueue(r, p) },
		func(p *pkt.Packet) { ctrl.OnDequeue(r, p) },
	)
	r.MAC.AddTxStamp(func(f *pkt.Frame) { ctrl.OnTransmit(r, f) })
	r.MAC.AddTap(func(f *pkt.Frame, ci pkt.CaptureInfo) { ctrl.OnOverhear(r, f, ci) })
	if d.tick > 0 {
		var fire func()
		fire = func() {
			ctrl.OnTick(r)
			r.Eng.Schedule(d.tick, fire)
		}
		r.Eng.Schedule(d.tick, fire)
	}
}

// OverheadBytes implements Instance.
func (d *Deployment) OverheadBytes() uint64 { return d.overhead }

// AddOverhead counts control bytes put (or scheduled) on the air.
func (d *Deployment) AddOverhead(n int) { d.overhead += uint64(n) }

// ControlQueue returns the node's dedicated control-frame queue toward
// peer, creating (and claiming) it on first use. Claimed queues are never
// attached to a controller, and one queue is shared by every relay of the
// node, so repeated calls are idempotent.
func (d *Deployment) ControlQueue(m *mac.MAC, peer pkt.NodeID) *mac.Queue {
	key := ctlQKey{m.ID(), peer}
	if q, ok := d.ctlQ[key]; ok {
		return q
	}
	q := m.NewQueue(peer)
	d.ctlQ[key] = q
	d.own[q] = true
	return q
}
