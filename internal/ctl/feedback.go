package ctl

import (
	"sort"

	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// FeedbackFlow is the reserved flow id of injected rate-feedback control
// frames. No real flow can use it (scenario flows are positive), and the
// metering layer ignores packets of unknown flows, so control traffic is
// visible only as airtime and overhead bytes.
const FeedbackFlow = pkt.FlowID(-1)

// FeedbackConfig parameterises the explicit rate-feedback controller.
type FeedbackConfig struct {
	// Period is the feedback interval: every Period each relay advertises
	// the admission window its upstream hops should use (default 250 ms).
	Period sim.Time
	// TargetQueue is the backlog the relay regulates toward, in packets
	// (default 8): above it the advertised window doubles, at or below
	// half of it the window halves.
	TargetQueue int
	// PayloadBytes is the network-layer size of one feedback message
	// (default 16) — charged on the air like any data packet, plus the
	// MAC header and the ACK it elicits.
	PayloadBytes int
	// MinWindow and MaxWindow bound the advertised window
	// (defaults 16 and 8192). The window rides in a 16-bit field of the
	// control frame, so MaxWindow is clamped to the MAC's absolute bound
	// 2^15, which fits.
	MinWindow int
	// MaxWindow bounds how far upstream hops can be throttled.
	MaxWindow int
}

func (c *FeedbackConfig) fillDefaults() {
	if c.Period <= 0 {
		c.Period = 250 * sim.Millisecond
	}
	if c.TargetQueue <= 0 {
		c.TargetQueue = 8
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 16
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 16
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 8192
	}
	// The on-air encoding is 16-bit; the MAC clamps windows to 2^15
	// anyway, so clamping here loses nothing and can never truncate.
	if c.MaxWindow > mac.AbsoluteCWmax {
		c.MaxWindow = mac.AbsoluteCWmax
	}
	if c.MinWindow > c.MaxWindow {
		c.MinWindow = c.MaxWindow
	}
}

// feedback implements explicit per-hop rate feedback — the
// message-passing end of the design space the paper argues against. Every
// Period each relay compares its backlog to the target and unicasts the
// resulting admission window to each upstream hop as an injected control
// frame (a real data frame on a dedicated control queue: it contends,
// consumes airtime, and is ACKed). Upstream relays overhear feedback
// addressed to them and set their admission window accordingly. All
// coordination costs bytes on the air; OverheadBytes reports them.
type feedback struct {
	NopHooks
	cfg FeedbackConfig
}

// fbState is the per-relay state: the window currently advertised
// upstream, the control-frame sequence counter, and the control queues
// toward each upstream hop.
type fbState struct {
	window int
	seq    uint64
	preds  []*mac.Queue
}

// Name implements Controller.
func (fb *feedback) Name() string { return "feedback" }

// Attach computes the relay's upstream hops from the installed routes
// (nodes whose traffic transits this relay's controlled queue) and creates
// one control queue toward each.
func (fb *feedback) Attach(r *Relay) {
	st := &fbState{window: mac.DefaultCWmin}
	r.State = st
	fb.refreshPreds(r, st)
}

// refreshPreds rebuilds the upstream-hop list; Attach runs it per relay,
// and FBInstance.Extend re-runs it for every surviving relay after route
// repair, so feedback follows the repaired routes instead of advertising
// to a predecessor that is no longer (or no longer the only one)
// upstream.
func (fb *feedback) refreshPreds(r *Relay, st *fbState) {
	seen := map[pkt.NodeID]bool{}
	var preds []pkt.NodeID
	for _, f := range r.Mesh.Flows() {
		route := r.Mesh.Route(f)
		for i := 1; i < len(route)-1; i++ {
			if route[i] != r.Node || route[i+1] != r.Successor {
				continue
			}
			if p := route[i-1]; !seen[p] {
				seen[p] = true
				preds = append(preds, p)
			}
		}
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	st.preds = st.preds[:0]
	for _, p := range preds {
		st.preds = append(st.preds, r.Dep.ControlQueue(r.MAC, p))
	}
}

// OnTick adapts the advertised window multiplicatively against the target
// backlog and unicasts it to every upstream hop. A control queue already
// holding two unsent advertisements is skipped — stale feedback is
// superseded, not queued.
func (fb *feedback) OnTick(r *Relay) {
	st := r.State.(*fbState)
	qlen := r.Caps.Len()
	switch {
	case qlen > fb.cfg.TargetQueue:
		if st.window *= 2; st.window > fb.cfg.MaxWindow {
			st.window = fb.cfg.MaxWindow
		}
	case qlen*2 <= fb.cfg.TargetQueue:
		if st.window /= 2; st.window < fb.cfg.MinWindow {
			st.window = fb.cfg.MinWindow
		}
	}
	now := r.Eng.Now()
	for _, q := range st.preds {
		if q.Len() >= 2 {
			continue
		}
		st.seq++
		p := r.Pool.Packet(FeedbackFlow, st.seq<<16|uint64(st.window),
			r.Node, q.NextHop(), fb.cfg.PayloadBytes, now)
		q.Enqueue(p)
		p.Release()
		r.Dep.AddOverhead(pkt.MACHeaderBytes + fb.cfg.PayloadBytes + pkt.AckBytes)
	}
}

// OnOverhear applies feedback advertised by the relay's successor: the
// window rides in the low 16 bits of the control packet's sequence number.
// Zero allocations.
func (fb *feedback) OnOverhear(r *Relay, f *pkt.Frame, _ pkt.CaptureInfo) {
	if f.Type != pkt.FrameData || f.TxSrc != r.Successor {
		return
	}
	p := f.Payload
	if p == nil || p.Flow != FeedbackFlow || p.Dst != r.Node {
		return
	}
	r.Caps.SetWindow(int(p.Seq & 0xffff))
}

// FBInstance is the deployed feedback controller: the generic relay
// deployment plus post-repair refresh of every relay's upstream-hop list.
type FBInstance struct {
	*Deployment
	fb *feedback
}

// Extend implements Instance: attach new relay queues, then recompute
// which upstream hops each relay advertises to — route repair can change
// a surviving relay's predecessors without touching its queue.
func (i *FBInstance) Extend(m *mesh.Mesh) {
	i.Deployment.Extend(m)
	for _, r := range i.Relays {
		i.fb.refreshPreds(r, r.State.(*fbState))
	}
}

func init() {
	Register(Info{
		Name:    "feedback",
		Summary: "explicit per-hop rate feedback via injected control frames",
		Deploy: func(m *mesh.Mesh, opts Options) Instance {
			cfg := opts.Feedback
			cfg.fillDefaults()
			fb := &feedback{cfg: cfg}
			return &FBInstance{Deployment: Deploy(m, fb, cfg.Period, opts), fb: fb}
		},
	})
}
