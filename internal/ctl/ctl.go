// Package ctl is the pluggable congestion-controller subsystem: it turns
// the simulator's control plane from a hardcoded mode switch into an
// extension point. A Controller is a per-relay control algorithm driven by
// five hooks (enqueue, dequeue, transmit, overhear, tick) whose only
// actuator is the Caps handle — the MAC admission window (CWmin) of the
// queue it controls, the same single knob EZ-Flow restricts itself to.
//
// Controllers register themselves by name (Register/ByName) and every
// layer above — ezflow.Config.Controller, scenario JSON files, the
// campaign "controller" sweep axis, and the ezsim/ezcampaign/ezbench CLIs
// — selects them from the registry, so adding a controller is one file
// plus an init function.
//
// Four families ship with the repository, completing the evaluation
// matrix the paper argues against (hop-by-hop schemes that rely on
// explicit signalling, vs EZ-Flow's passive estimation):
//
//   - ezflow: the paper's BOE+CAA pair, message-free (internal/ezflow);
//   - backpressure: queue-differential scheduling that piggybacks real
//     queue lengths on data frames (a 2-byte header charged on the air);
//   - feedback: explicit per-hop rate-feedback control frames, injected
//     into the MAC and consuming airtime like any data frame;
//   - staticcap: a fixed per-hop admission window, the degenerate control;
//
// plus the legacy baselines (penalty, diffq) re-homed onto the registry so
// the historical ezflow.Mode values are thin wrappers over it.
//
// Determinism contract: controllers run inside one scenario's
// single-threaded event loop. They must derive randomness only from the
// scenario engine, must not iterate Go maps when the order reaches any
// actuator, and may inject control frames only through
// Deployment.ControlQueue so deployment never attaches a controller to a
// controller's own traffic.
package ctl

import (
	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Caps is the control surface a controller may actuate: the MAC admission
// window of exactly one relay queue. It is the ctl-layer spelling of the
// paper's constraint that the contention window is the only MAC-level
// knob a deployable controller can turn.
type Caps struct {
	q *mac.Queue
}

// NewCaps wraps a MAC queue as a control surface.
func NewCaps(q *mac.Queue) Caps { return Caps{q: q} }

// Window reports the queue's current admission window (CWmin).
func (c Caps) Window() int { return c.q.CWmin() }

// SetWindow sets the queue's admission window; the MAC clamps it to the
// hardware cap and the absolute 2^15 bound.
func (c Caps) SetWindow(w int) { c.q.SetCWmin(w) }

// Len reports the instantaneous backlog of the controlled queue.
func (c Caps) Len() int { return c.q.Len() }

// NextHop reports the queue's MAC next hop (the successor under control).
func (c Caps) NextHop() pkt.NodeID { return c.q.NextHop() }

// Queue exposes the underlying MAC queue for instrumentation (traces,
// tests). Controllers themselves should stick to Window/SetWindow/Len.
func (c Caps) Queue() *mac.Queue { return c.q }

// Relay is one controlled queue: the (node, successor) pair the paper
// deploys one EZ-Flow program per, generalised to any controller. The
// deployment builds one Relay per qualifying queue and passes it to every
// hook, so controllers keep per-relay state in State (set once in Attach;
// a pointer, so steady-state hooks never allocate).
type Relay struct {
	// Node is the station running the controller.
	Node pkt.NodeID
	// Successor is the next hop whose buffer is being protected.
	Successor pkt.NodeID
	// Caps is the admission-window actuator for the controlled queue.
	Caps Caps
	// Eng is the scenario's engine (virtual time, deterministic RNG).
	Eng *sim.Engine
	// MAC is the node's MAC instance (read-only backlog queries).
	MAC *mac.MAC
	// Pool is the scenario's packet pool, for injected control frames.
	Pool *pkt.Pool
	// Mesh is the backhaul the relay belongs to (read-only route queries,
	// e.g. to find upstream hops).
	Mesh *mesh.Mesh
	// Dep is the deployment that owns this relay (overhead accounting,
	// control-queue creation).
	Dep *Deployment
	// State is controller-private per-relay state, set in Attach.
	State any
}

// Controller is a pluggable congestion-control algorithm. One instance is
// created per scenario (by its registry factory) and attached to every
// relay queue; hooks receive the Relay they fire for. OnOverhear and
// OnDequeue are on the forwarding hot path and must not allocate — the
// bench gate pins them at zero allocs/op.
type Controller interface {
	// Name reports the registry name.
	Name() string
	// Attach binds the controller to one relay queue. It runs once per
	// queue at deployment, and again for queues that route repair creates
	// mid-run. Attach may allocate (state, control queues, tickers).
	Attach(r *Relay)
	// OnEnqueue observes a packet accepted into the controlled queue.
	OnEnqueue(r *Relay, p *pkt.Packet)
	// OnDequeue observes a packet leaving the controlled queue through the
	// MAC (acknowledged or dropped at the retry limit). Queue flushes from
	// node churn bypass it.
	OnDequeue(r *Relay, p *pkt.Packet)
	// OnTransmit runs on every outgoing data frame of the relay's node —
	// every attempt, before air time is computed — so the controller may
	// piggyback header fields (Frame.HasBP/BPLen). Check f.Retry for
	// first-attempt-only semantics.
	OnTransmit(r *Relay, f *pkt.Frame)
	// OnOverhear observes every frame the relay's node decodes in monitor
	// mode (its own unicast traffic included).
	OnOverhear(r *Relay, f *pkt.Frame, ci pkt.CaptureInfo)
	// OnTick fires every Deployment tick period (0 = never).
	OnTick(r *Relay)
}

// NopHooks is an embeddable base supplying no-op implementations of every
// Controller hook, so a controller only spells out the hooks it uses.
type NopHooks struct{}

// Attach implements Controller with a no-op.
func (NopHooks) Attach(*Relay) {}

// OnEnqueue implements Controller with a no-op.
func (NopHooks) OnEnqueue(*Relay, *pkt.Packet) {}

// OnDequeue implements Controller with a no-op.
func (NopHooks) OnDequeue(*Relay, *pkt.Packet) {}

// OnTransmit implements Controller with a no-op.
func (NopHooks) OnTransmit(*Relay, *pkt.Frame) {}

// OnOverhear implements Controller with a no-op.
func (NopHooks) OnOverhear(*Relay, *pkt.Frame, pkt.CaptureInfo) {}

// OnTick implements Controller with a no-op.
func (NopHooks) OnTick(*Relay) {}
