package ctl

import (
	ez "ezflow/internal/ezflow"
	"ezflow/internal/mesh"
)

// EZFlow is the registry instance of the paper's controller: the BOE+CAA
// pair of internal/ezflow, deployed exactly as ezflow's Deploy always has
// so routing the mode through the registry is byte-identical to the
// pre-registry code path (the campaign golden tests pin this).
type EZFlow struct {
	dep *ez.Deployment
}

// Extend implements Instance by re-extending the BOE/CAA deployment over
// repair-created queues.
func (e *EZFlow) Extend(m *mesh.Mesh) { e.dep.Extend(m) }

// OverheadBytes implements Instance: EZ-Flow is message-free.
func (e *EZFlow) OverheadBytes() uint64 { return 0 }

// EZ implements EZInstance, exposing the deployment for contention-window
// traces.
func (e *EZFlow) EZ() *ez.Deployment { return e.dep }

func init() {
	Register(Info{
		Name:    "ezflow",
		Summary: "the paper's BOE+CAA: passive buffer estimation, message-free (default)",
		Deploy: func(m *mesh.Mesh, opts Options) Instance {
			return &EZFlow{dep: ez.Deploy(m, opts.EZ)}
		},
	})
}
