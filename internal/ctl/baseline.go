package ctl

import (
	"ezflow/internal/baseline"
	"ezflow/internal/mesh"
)

// penaltyInstance re-homes the static penalty scheme of [9] onto the
// registry. Extend re-applies the source/relay windows, which is exactly
// what the pre-registry reroute hook did after route repair.
type penaltyInstance struct {
	cfg PenaltyConfig
}

func (p *penaltyInstance) Extend(m *mesh.Mesh)   { baseline.ApplyPenalty(m, p.cfg.Q, p.cfg.RelayCW) }
func (p *penaltyInstance) OverheadBytes() uint64 { return 0 }

// diffqInstance re-homes the DiffQ baseline onto the registry. Its
// per-frame remap already walks every queue, so Extend after deployment is
// a no-op — matching the pre-registry behaviour, which installed no
// reroute hook for DiffQ.
type diffqInstance struct {
	dep      *baseline.DiffQDeployment
	deployed bool
}

func (d *diffqInstance) Extend(m *mesh.Mesh) {
	if d.deployed {
		return
	}
	d.deployed = true
	d.dep = baseline.DeployDiffQ(m)
}

func (d *diffqInstance) OverheadBytes() uint64 { return d.dep.OverheadBytes }

// DiffQ exposes the underlying deployment for instrumentation.
func (d *diffqInstance) DiffQ() *baseline.DiffQDeployment { return d.dep }

// DiffQInstance is implemented by the diffq instance so the scenario layer
// can keep exporting its deployment.
type DiffQInstance interface {
	// DiffQ returns the underlying DiffQ deployment.
	DiffQ() *baseline.DiffQDeployment
}

func init() {
	Register(Info{
		Name:    "penalty",
		Summary: "static penalty scheme of [9]: offline topology-tuned source throttling",
		Deploy: func(m *mesh.Mesh, opts Options) Instance {
			cfg := opts.Penalty
			if cfg.Q <= 0 || cfg.Q > 1 {
				cfg.Q = 1.0 / 128
			}
			if cfg.RelayCW <= 0 {
				cfg.RelayCW = 16
			}
			p := &penaltyInstance{cfg: cfg}
			p.Extend(m)
			return p
		},
	})
	Register(Info{
		Name:    "diffq",
		Summary: "DiffQ-style four-class differential backlog (piggybacked totals)",
		Deploy: func(m *mesh.Mesh, opts Options) Instance {
			d := &diffqInstance{}
			d.Extend(m)
			return d
		},
	})
}
