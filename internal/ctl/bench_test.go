package ctl_test

import (
	"testing"

	"ezflow"
	"ezflow/internal/ctl"
	"ezflow/internal/pkt"
)

// hotSetup builds a controlled chain scenario and returns the deployment
// plus a middle relay, leaving the scenario un-run so hooks can be driven
// directly.
func hotSetup(b *testing.B, name string) (*ctl.Deployment, *ctl.Relay) {
	b.Helper()
	cfg := ezflow.DefaultConfig()
	cfg.Duration = 5 * ezflow.Second
	cfg.Controller = name
	sc := ezflow.NewChain(4, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
	dep := depOf(b, sc.Ctl)
	if len(dep.Relays) < 2 {
		b.Fatalf("%s attached %d relays", name, len(dep.Relays))
	}
	return dep, dep.Relays[1]
}

// BenchmarkCtlOnOverhear drives the backpressure controller's overhear
// path — a stamped data frame from the successor — through the Controller
// interface. It must not allocate: the bench gate pins allocs/op at zero.
func BenchmarkCtlOnOverhear(b *testing.B) {
	dep, r := hotSetup(b, "backpressure")
	p := pkt.NewPacket(1, 42, r.Node, 99, 1028, 0)
	f := &pkt.Frame{Type: pkt.FrameData, TxSrc: r.Successor, TxDst: 99, Payload: p, HasBP: true, BPLen: 7}
	ci := pkt.CaptureInfo{Listener: r.Node, OnAir: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.BPLen = i & 15
		dep.Ctrl.OnOverhear(r, f, ci)
	}
}

// BenchmarkCtlOnDequeue drives the backpressure controller's dequeue
// retune. Zero allocs/op, pinned by the bench gate.
func BenchmarkCtlOnDequeue(b *testing.B) {
	dep, r := hotSetup(b, "backpressure")
	p := pkt.NewPacket(1, 42, r.Node, 99, 1028, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep.Ctrl.OnDequeue(r, p)
	}
}

// BenchmarkCtlFeedbackOnOverhear drives the feedback controller's
// overhear path with a rate-feedback control frame from the successor.
// Zero allocs/op, pinned by the bench gate.
func BenchmarkCtlFeedbackOnOverhear(b *testing.B) {
	dep, r := hotSetup(b, "feedback")
	p := pkt.NewPacket(ctl.FeedbackFlow, 3<<16|64, r.Successor, r.Node, 16, 0)
	f := &pkt.Frame{Type: pkt.FrameData, TxSrc: r.Successor, TxDst: r.Node, Payload: p}
	ci := pkt.CaptureInfo{Listener: r.Node, OnAir: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep.Ctrl.OnOverhear(r, f, ci)
	}
}

// TestHotHooksDoNotAllocate is the in-suite version of the bench-gate
// zero-alloc pins, so `go test` alone catches an allocation sneaking into
// the controller hot path.
func TestHotHooksDoNotAllocate(t *testing.T) {
	for _, name := range []string{"backpressure", "feedback", "staticcap"} {
		cfg := ezflow.DefaultConfig()
		cfg.Duration = 5 * ezflow.Second
		cfg.Controller = name
		sc := ezflow.NewChain(4, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
		dep := depOf(t, sc.Ctl)
		r := dep.Relays[1]
		p := pkt.NewPacket(1, 42, r.Node, 99, 1028, 0)
		f := &pkt.Frame{Type: pkt.FrameData, TxSrc: r.Successor, TxDst: 99, Payload: p, HasBP: true, BPLen: 3}
		ci := pkt.CaptureInfo{Listener: r.Node, OnAir: true}
		if n := testing.AllocsPerRun(200, func() {
			dep.Ctrl.OnOverhear(r, f, ci)
			dep.Ctrl.OnDequeue(r, p)
			dep.Ctrl.OnTransmit(r, f)
		}); n != 0 {
			t.Errorf("%s: hot hooks allocate %.1f per call, want 0", name, n)
		}
	}
}
