package ctl

import (
	"ezflow/internal/mesh"
	"ezflow/internal/pkt"
)

// BackpressureConfig parameterises the queue-differential controller.
type BackpressureConfig struct {
	// RefWindow is the admission window at a backlog differential of one
	// packet; the window scales as RefWindow/diff (default 512).
	RefWindow int
	// MinWindow bounds how aggressive a large differential may make the
	// relay (default 16).
	MinWindow int
	// MaxWindow is the hold-back window used when the successor's backlog
	// matches or exceeds ours (default 2048).
	MaxWindow int
}

func (c *BackpressureConfig) fillDefaults() {
	if c.RefWindow <= 0 {
		c.RefWindow = 512
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 16
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 2048
	}
}

// backpressure implements queue-differential (backpressure) scheduling
// with real message passing: every data frame carries the transmitter's
// per-successor backlog in the optional 2-byte BP header (charged on the
// air), and every relay maps the differential between its own backlog
// toward the successor and the successor's advertised backlog to an
// admission window — large positive differential, aggressive window;
// non-positive differential, hold back. It is the continuous-window
// cousin of the DiffQ baseline, at per-successor rather than per-node
// granularity: exactly the class of explicit-signalling scheme the
// paper's EZ-Flow claims to match without any of these bytes.
type backpressure struct {
	NopHooks
	cfg BackpressureConfig
}

// bpState is the per-relay state: the successor's most recently overheard
// backlog advertisement.
type bpState struct {
	succLen int
}

// Name implements Controller.
func (b *backpressure) Name() string { return "backpressure" }

// Attach implements Controller.
func (b *backpressure) Attach(r *Relay) { r.State = &bpState{} }

// OnOverhear learns the successor's backlog from any stamped frame it
// transmits and retunes the admission window. Zero allocations: integer
// state update plus a window write.
func (b *backpressure) OnOverhear(r *Relay, f *pkt.Frame, _ pkt.CaptureInfo) {
	if f.Type != pkt.FrameData || !f.HasBP || f.TxSrc != r.Successor {
		return
	}
	st := r.State.(*bpState)
	st.succLen = f.BPLen
	b.retune(r, st)
}

// OnEnqueue retunes on local backlog growth so a relay reacts to its own
// queue building even while the successor stays silent.
func (b *backpressure) OnEnqueue(r *Relay, _ *pkt.Packet) {
	b.retune(r, r.State.(*bpState))
}

// OnDequeue retunes on local drain for the same reason.
func (b *backpressure) OnDequeue(r *Relay, _ *pkt.Packet) {
	b.retune(r, r.State.(*bpState))
}

// retune maps the backlog differential to the admission window.
func (b *backpressure) retune(r *Relay, st *bpState) {
	diff := r.MAC.QueuedTo(r.Successor) - st.succLen
	w := b.cfg.MaxWindow
	if diff > 0 {
		w = b.cfg.RefWindow / diff
		if w < b.cfg.MinWindow {
			w = b.cfg.MinWindow
		}
		if w > b.cfg.MaxWindow {
			w = b.cfg.MaxWindow
		}
	}
	r.Caps.SetWindow(w)
}

// BPInstance is the deployed backpressure controller: the generic relay
// deployment plus a node-wide advertisement stamp. Advertisement is a
// node property, not a relay property — the scheme modifies the packet
// format everywhere, so even a node that needs no window control (the
// last relay before a destination, whose queue the coverage rule leaves
// alone) still piggybacks its backlog, and its upstream relay is never
// blind at exactly the hop it protects.
type BPInstance struct {
	*Deployment
	stamped map[pkt.NodeID]bool
}

// Extend implements Instance: attach window control to new relay queues,
// then make sure every node (new ones included, after route repair)
// advertises its per-successor backlog on every outgoing data frame.
func (b *BPInstance) Extend(m *mesh.Mesh) {
	b.Deployment.Extend(m)
	for _, n := range m.Nodes() {
		if b.stamped[n.ID] {
			continue
		}
		b.stamped[n.ID] = true
		mc, dep := n.MAC, b.Deployment
		mc.AddTxStamp(func(f *pkt.Frame) {
			if f.Type != pkt.FrameData || f.HasBP || f.Payload == nil {
				return
			}
			f.HasBP = true
			f.BPLen = mc.QueuedTo(f.TxDst)
			dep.AddOverhead(pkt.BPHeaderBytes)
		})
	}
}

func init() {
	Register(Info{
		Name:    "backpressure",
		Summary: "queue-differential scheduling; piggybacks backlogs on data frames",
		Deploy: func(m *mesh.Mesh, opts Options) Instance {
			cfg := opts.Backpressure
			cfg.fillDefaults()
			b := &BPInstance{
				Deployment: Deploy(m, &backpressure{cfg: cfg}, 0, opts),
				stamped:    make(map[pkt.NodeID]bool),
			}
			b.Extend(m)
			return b
		},
	})
}
