package ctl

import "ezflow/internal/mesh"

// StaticConfig parameterises the staticcap controller.
type StaticConfig struct {
	// Window is the fixed admission window applied to every relay queue
	// (default DefaultStaticWindow).
	Window int
}

// DefaultStaticWindow is the fixed per-hop window of the staticcap
// controller: 2^7, between the 802.11 default (2^5) and the stable EZ-Flow
// relay windows of §5.2 (2^11 at the gateway hop), so it visibly throttles
// without starving short chains.
const DefaultStaticWindow = 1 << 7

func (c *StaticConfig) fillDefaults() {
	if c.Window <= 0 {
		c.Window = DefaultStaticWindow
	}
}

// staticCap is the degenerate control: one fixed admission window on every
// relay queue, set at attach time and never adapted. It is the hop-by-hop
// analogue of an offline-tuned rate limit — what every adaptive scheme in
// the head-to-head must beat to justify its machinery.
type staticCap struct {
	NopHooks
	cfg StaticConfig
}

// Name implements Controller.
func (s *staticCap) Name() string { return "staticcap" }

// Attach implements Controller: set the window once.
func (s *staticCap) Attach(r *Relay) { r.Caps.SetWindow(s.cfg.Window) }

func init() {
	Register(Info{
		Name:    "staticcap",
		Summary: "fixed per-hop admission window, no adaptation (degenerate control)",
		Deploy: func(m *mesh.Mesh, opts Options) Instance {
			cfg := opts.Static
			cfg.fillDefaults()
			return Deploy(m, &staticCap{cfg: cfg}, 0, opts)
		},
	})
}
