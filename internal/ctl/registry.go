package ctl

import (
	"fmt"
	"sort"
	"strings"

	ez "ezflow/internal/ezflow"
	"ezflow/internal/mesh"
)

// Options carries every controller family's tunables. Zero values select
// the documented defaults (FillDefaults); a scenario passes one Options to
// whichever controller it deploys, so sweeping controllers never changes
// anything but the controller.
type Options struct {
	// EZ configures the ezflow controller (CAA thresholds, sniff loss).
	EZ ez.Options
	// Penalty configures the static penalty baseline of [9].
	Penalty PenaltyConfig
	// Static configures the staticcap controller.
	Static StaticConfig
	// Backpressure configures the queue-differential controller.
	Backpressure BackpressureConfig
	// Feedback configures the explicit rate-feedback controller.
	Feedback FeedbackConfig
}

// PenaltyConfig parameterises the penalty controller: sources are
// throttled to cwRelay/Q while relays use RelayCW.
type PenaltyConfig struct {
	// Q is the topology-dependent throttling factor in (0, 1].
	Q float64
	// RelayCW is the relay contention window.
	RelayCW int
}

// DefaultOptions returns every family's defaults.
func DefaultOptions() Options {
	var o Options
	FillDefaults(&o)
	return o
}

// FillDefaults replaces zero values with each family's defaults, leaving
// caller-set fields alone.
func FillDefaults(o *Options) {
	if o.EZ.CAA.Window == 0 {
		o.EZ.CAA = ez.DefaultCAAConfig()
	}
	if o.Penalty.Q <= 0 || o.Penalty.Q > 1 {
		o.Penalty.Q = 1.0 / 128
	}
	if o.Penalty.RelayCW <= 0 {
		o.Penalty.RelayCW = 16
	}
	o.Static.fillDefaults()
	o.Backpressure.fillDefaults()
	o.Feedback.fillDefaults()
}

// Instance is a controller installed over one scenario's mesh.
type Instance interface {
	// Extend (re)installs the controller over queues created since the
	// previous call — deployment calls it once up front, and the dynamics
	// layer calls it again after every BFS route repair so repair-created
	// queues come under control.
	Extend(m *mesh.Mesh)
	// OverheadBytes reports the control bytes the instance put (or
	// scheduled) on the air: piggybacked header bytes, injected control
	// frames and their ACKs. Message-free controllers report 0.
	OverheadBytes() uint64
}

// EZInstance is implemented by the ezflow instance so the scenario layer
// can keep exporting contention-window traces.
type EZInstance interface {
	// EZ returns the underlying BOE/CAA deployment.
	EZ() *ez.Deployment
}

// Info describes one registered controller.
type Info struct {
	// Name is the registry key ("ezflow", "backpressure", ...).
	Name string
	// Summary is the one-line description CLI usage strings embed.
	Summary string
	// Deploy installs the controller over a mesh. Implementations fill
	// their own Options defaults, so callers may pass a zero Options.
	Deploy func(m *mesh.Mesh, opts Options) Instance
}

var registry = map[string]Info{}

// Register adds a controller to the registry. It panics on an empty name,
// a duplicate, or a nil Deploy — registration bugs must fail at init.
func Register(info Info) {
	if info.Name == "" {
		panic("ctl: Register with empty name")
	}
	if info.Deploy == nil {
		panic("ctl: Register " + info.Name + " with nil Deploy")
	}
	if _, dup := registry[info.Name]; dup {
		panic("ctl: duplicate controller " + info.Name)
	}
	registry[info.Name] = info
}

// ByName looks a controller up by its registry name.
func ByName(name string) (Info, bool) {
	info, ok := registry[name]
	return info, ok
}

// Names returns every registered controller name, sorted, so CLI usage
// strings and validation errors enumerate the registry instead of
// hand-maintained lists.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NamesList renders the registry names as "a|b|c" for flag usage strings.
func NamesList() string { return strings.Join(Names(), "|") }

// IsNone reports whether name is one of the spellings that select no
// controller at all — the raw 802.11 baseline: "", "802.11", "80211",
// "off", "none", "plain". Every CLI flag, sweep axis and scenario field
// shares this predicate so the spellings can never drift apart.
func IsNone(name string) bool {
	switch strings.ToLower(name) {
	case "", "802.11", "80211", "off", "none", "plain":
		return true
	}
	return false
}

// Usage renders one "name — summary" line per registered controller, for
// CLI help text.
func Usage() string {
	var b strings.Builder
	for i, n := range Names() {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  %-12s %s", n, registry[n].Summary)
	}
	return b.String()
}
