package ctl_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ezflow"
	"ezflow/internal/ctl"
	"ezflow/internal/mac"
	"ezflow/internal/pkt"
)

// TestRegistry checks that every shipped controller is registered, that
// Names is sorted, and that lookups behave.
func TestRegistry(t *testing.T) {
	names := ctl.Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"backpressure", "diffq", "ezflow", "feedback", "penalty", "staticcap"} {
		if _, ok := ctl.ByName(want); !ok {
			t.Errorf("controller %q not registered (have %v)", want, names)
		}
	}
	if _, ok := ctl.ByName("no-such-controller"); ok {
		t.Error("ByName accepted an unknown name")
	}
	if u := ctl.Usage(); !strings.Contains(u, "backpressure") || !strings.Contains(u, "ezflow") {
		t.Errorf("Usage() missing controllers:\n%s", u)
	}
}

// depOf unwraps a controller instance to its generic hook deployment
// (backpressure and feedback wrap it with node stamps / pred refresh).
func depOf(t testing.TB, inst ctl.Instance) *ctl.Deployment {
	t.Helper()
	switch v := inst.(type) {
	case *ctl.Deployment:
		return v
	case *ctl.BPInstance:
		return v.Deployment
	case *ctl.FBInstance:
		return v.Deployment
	}
	t.Fatalf("instance %T carries no generic deployment", inst)
	return nil
}

// chainResult runs a 4-hop chain for 30 simulated seconds with the given
// controller name.
func chainResult(t *testing.T, name string, seed int64) *ezflow.Result {
	t.Helper()
	cfg := ezflow.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 30 * ezflow.Second
	cfg.Controller = name
	sc := ezflow.NewChain(4, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
	return sc.Run()
}

// summarize renders the deterministic fingerprint of a run: per-flow
// delivery and throughput, sorted mean queues, final windows, overhead.
func summarize(res *ezflow.Result) string {
	var b strings.Builder
	var flows []ezflow.FlowID
	for f := range res.Flows {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, f := range flows {
		fr := res.Flows[f]
		fmt.Fprintf(&b, "%v: %d %v %v\n", f, fr.Delivered, fr.MeanThroughputKbps, fr.MeanDelaySec)
	}
	var nodes []ezflow.NodeID
	for n := range res.MeanQueue {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		fmt.Fprintf(&b, "q%v=%v\n", n, res.MeanQueue[n])
	}
	var keys []string
	for k := range res.FinalCW {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "cw %s=%d\n", k, res.FinalCW[k])
	}
	fmt.Fprintf(&b, "overhead=%d\n", res.OverheadBytes)
	return b.String()
}

// TestControllerDeterminism pins every registry controller to identical
// output across repeated runs with the same seed.
func TestControllerDeterminism(t *testing.T) {
	for _, name := range ctl.Names() {
		a := summarize(chainResult(t, name, 7))
		b := summarize(chainResult(t, name, 7))
		if a != b {
			t.Errorf("%s: two identical runs diverged:\n%s\nvs\n%s", name, a, b)
		}
	}
}

// TestStaticcapSetsWindows checks the degenerate control: every relay
// queue carries the fixed window, untouched for the whole run.
func TestStaticcapSetsWindows(t *testing.T) {
	cfg := ezflow.DefaultConfig()
	cfg.Duration = 10 * ezflow.Second
	cfg.Controller = "staticcap"
	sc := ezflow.NewChain(4, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
	dep, ok := sc.Ctl.(*ctl.Deployment)
	if !ok {
		t.Fatalf("staticcap instance is %T, want *ctl.Deployment", sc.Ctl)
	}
	if len(dep.Relays) == 0 {
		t.Fatal("no relays attached")
	}
	sc.Run()
	for _, r := range dep.Relays {
		if got := r.Caps.Window(); got != ctl.DefaultStaticWindow {
			t.Errorf("relay %v->%v window = %d, want %d", r.Node, r.Successor, got, ctl.DefaultStaticWindow)
		}
	}
	if sc.Ctl.OverheadBytes() != 0 {
		t.Errorf("staticcap reported overhead %d, want 0", sc.Ctl.OverheadBytes())
	}
}

// TestBackpressureSignals checks that the queue-differential controller
// really does message passing: frames carry the BP header (charged on the
// air) and the windows adapt away from the defaults.
func TestBackpressureSignals(t *testing.T) {
	res := chainResult(t, "backpressure", 1)
	if res.OverheadBytes == 0 {
		t.Error("backpressure put no control bytes on the air")
	}
	if res.Flows[1].Delivered == 0 {
		t.Error("no packets delivered")
	}
	// Advertisement is node-wide: every data frame on every hop carries
	// the header — including the last relay's, whose queue is not window-
	// controlled but whose backlog its upstream relay steers by. Each
	// delivered packet crossed all 4 hops at least once, so the stamped
	// bytes must cover 4 stamps per delivery; 3 hops' worth would mean
	// the final relay went silent again (the blind-spot regression).
	if min := uint64(res.Flows[1].Delivered) * 4 * pkt.BPHeaderBytes; res.OverheadBytes < min {
		t.Errorf("overhead %d B < %d B: some hop is not advertising its backlog", res.OverheadBytes, min)
	}
}

// TestFeedbackSignals checks the explicit-feedback controller: control
// frames consume airtime (overhead counted) and the upstream admission
// window moves off the 802.11 default.
func TestFeedbackSignals(t *testing.T) {
	cfg := ezflow.DefaultConfig()
	cfg.Duration = 30 * ezflow.Second
	cfg.Controller = "feedback"
	sc := ezflow.NewChain(4, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
	dep := depOf(t, sc.Ctl)
	res := sc.Run()
	if res.OverheadBytes == 0 {
		t.Error("feedback sent no control frames")
	}
	moved := false
	for _, r := range dep.Relays {
		if r.Caps.Window() != mac.DefaultCWmin {
			moved = true
		}
	}
	if !moved {
		t.Error("no admission window ever moved off the 802.11 default")
	}
}

// TestControlQueuesNotControlled pins the recursion guard: the feedback
// controller's own control queues never get a controller attached, even
// though their next hop is a relay.
func TestControlQueuesNotControlled(t *testing.T) {
	cfg := ezflow.DefaultConfig()
	cfg.Duration = 5 * ezflow.Second
	cfg.Controller = "feedback"
	sc := ezflow.NewChain(4, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
	dep := depOf(t, sc.Ctl)
	before := len(dep.Relays)
	sc.Run()
	// Re-extend after the run: control queues now exist; none may be
	// picked up as a relay queue.
	sc.Ctl.Extend(sc.Mesh)
	if after := len(dep.Relays); after != before {
		t.Errorf("Extend attached %d controller(s) to control queues", after-before)
	}
}

// TestModeWrappers pins the satellite contract: the legacy Mode values
// are thin wrappers over the registry, producing identical output to the
// explicit controller names.
func TestModeWrappers(t *testing.T) {
	cases := []struct {
		mode ezflow.Mode
		name string
	}{
		{ezflow.ModeEZFlow, "ezflow"},
		{ezflow.ModePenalty, "penalty"},
		{ezflow.ModeDiffQ, "diffq"},
	}
	for _, c := range cases {
		if got := c.mode.ControllerName(); got != c.name {
			t.Errorf("%v.ControllerName() = %q, want %q", c.mode, got, c.name)
		}
		run := func(useMode bool) string {
			cfg := ezflow.DefaultConfig()
			cfg.Seed = 3
			cfg.Duration = 20 * ezflow.Second
			if useMode {
				cfg.Mode = c.mode
			} else {
				cfg.Controller = c.name
			}
			sc := ezflow.NewChain(4, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
			return summarize(sc.Run())
		}
		if a, b := run(true), run(false); a != b {
			t.Errorf("%v: Mode and Controller %q runs diverge:\n%s\nvs\n%s", c.mode, c.name, a, b)
		}
	}
}

// recordingCtl counts hook invocations, validating the deployment plumbing
// end to end through a real scenario.
type recordingCtl struct {
	ctl.NopHooks
	attach, enq, deq, tx, over, tick int
}

func (c *recordingCtl) Name() string                                       { return "recording" }
func (c *recordingCtl) Attach(*ctl.Relay)                                  { c.attach++ }
func (c *recordingCtl) OnEnqueue(*ctl.Relay, *pkt.Packet)                  { c.enq++ }
func (c *recordingCtl) OnDequeue(*ctl.Relay, *pkt.Packet)                  { c.deq++ }
func (c *recordingCtl) OnTransmit(*ctl.Relay, *pkt.Frame)                  { c.tx++ }
func (c *recordingCtl) OnOverhear(*ctl.Relay, *pkt.Frame, pkt.CaptureInfo) { c.over++ }
func (c *recordingCtl) OnTick(*ctl.Relay)                                  { c.tick++ }

// TestDeploymentHooks wires a recording controller over a plain scenario
// and checks every hook fires.
func TestDeploymentHooks(t *testing.T) {
	cfg := ezflow.DefaultConfig()
	cfg.Duration = 10 * ezflow.Second
	sc := ezflow.NewChain(4, cfg, ezflow.FlowSpec{Flow: 1, RateBps: 2e6})
	rec := &recordingCtl{}
	dep := ctl.Deploy(sc.Mesh, rec, 1*ezflow.Second, ctl.DefaultOptions())
	// A 4-hop chain (N0..N4) controls the queues whose next hop is a
	// relay: N0's source queue toward N1, and the forwarding queues
	// N1->N2 and N2->N3. N3 drains into the destination, so its queue
	// stays uncontrolled.
	if got := len(dep.Relays); got != 3 {
		t.Fatalf("attached %d relays, want 3", got)
	}
	sc.Run()
	if rec.attach != len(dep.Relays) {
		t.Errorf("attach = %d, want %d", rec.attach, len(dep.Relays))
	}
	for name, n := range map[string]int{
		"enqueue": rec.enq, "dequeue": rec.deq, "transmit": rec.tx,
		"overhear": rec.over, "tick": rec.tick,
	} {
		if n == 0 {
			t.Errorf("hook %s never fired", name)
		}
	}
	if rec.deq > rec.enq {
		t.Errorf("dequeues (%d) exceed enqueues (%d)", rec.deq, rec.enq)
	}
}
