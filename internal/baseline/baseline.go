// Package baseline implements the comparators the paper evaluates EZ-Flow
// against:
//
//   - plain IEEE 802.11 (no controller at all — the default mesh);
//   - the static penalty scheme of Aziz et al. [9], which throttles each
//     flow's source by a topology-dependent factor q (the scheme EZ-Flow
//     rediscovers distributively, cf. §5.2 where the stable regime matches
//     q = 2^4/2^11);
//   - a DiffQ-style differential-backlog controller (Warrier et al. [31])
//     that *does* use message passing: each node piggybacks its queue size
//     on outgoing data frames and maps the backlog difference to one of
//     four CWmin classes, mirroring DiffQ's four MAC queues.
package baseline

import (
	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/pkt"
)

// ApplyPenalty installs the static penalty scheme on a mesh: every flow
// source uses cwSource = cwRelay / q (q in (0,1]), relays use cwRelay.
// With q = 1 the scheme degenerates to plain 802.11.
func ApplyPenalty(m *mesh.Mesh, q float64, cwRelay int) {
	if q <= 0 || q > 1 {
		panic("baseline: penalty factor q must be in (0,1]")
	}
	if cwRelay <= 0 {
		cwRelay = mac.DefaultCWmin
	}
	cwSource := int(float64(cwRelay) / q)
	for _, f := range m.Flows() {
		route := m.Route(f)
		src := m.Node(route[0])
		for _, qq := range src.Queues() {
			qq.SetCWmin(cwSource)
		}
		for i := 1; i < len(route)-1; i++ {
			n := m.Node(route[i])
			for _, qq := range n.Queues() {
				qq.SetCWmin(cwRelay)
			}
		}
	}
}

// DiffQ levels: backlog differential thresholds mapped to CWmin classes,
// emulating DiffQ's four 802.11e queues with decreasing aggressiveness.
var diffqCW = [4]int{16, 32, 128, 512}

// DiffQNode is the per-node DiffQ controller state.
type DiffQNode struct {
	node *mesh.Node
	// neighbourBacklog is the queue size most recently advertised by each
	// neighbour — learned from the piggybacked QueueTag, i.e. by message
	// passing (the overhead EZ-Flow avoids).
	neighbourBacklog map[pkt.NodeID]int

	Updates uint64 // backlog advertisements received
}

// DiffQDeployment is DiffQ installed over a mesh.
type DiffQDeployment struct {
	Nodes map[pkt.NodeID]*DiffQNode
	// OverheadBytes counts the extra header bytes DiffQ adds to data
	// frames (4 bytes per frame, its packet-structure modification).
	OverheadBytes uint64
}

// PiggybackBytes is the per-frame header overhead DiffQ adds.
const PiggybackBytes = 4

// DeployDiffQ installs the DiffQ-style controller on every node of the
// mesh. It (a) stamps each outgoing data frame with the node's current
// total backlog via Frame.QueueTag, and (b) on each received or overheard
// stamped frame updates the neighbour's advertised backlog and re-maps
// every transmit queue's CWmin according to the backlog differential
// (own - successor's): large positive differential -> aggressive class.
func DeployDiffQ(m *mesh.Mesh) *DiffQDeployment {
	dep := &DiffQDeployment{Nodes: make(map[pkt.NodeID]*DiffQNode)}
	for _, n := range m.Nodes() {
		dn := &DiffQNode{node: n, neighbourBacklog: make(map[pkt.NodeID]int)}
		dep.Nodes[n.ID] = dn
		nn := n
		// Stamp outgoing frames with our backlog (message passing).
		nn.MAC.AddTxNotify(func(f *pkt.Frame) {
			f.QueueTag = nn.MAC.TotalQueued()
			dep.OverheadBytes += PiggybackBytes
		})
		// Learn neighbour backlogs from any decoded stamped frame.
		nn.MAC.AddTap(func(f *pkt.Frame, _ pkt.CaptureInfo) {
			if f.Type != pkt.FrameData {
				return
			}
			dn.neighbourBacklog[f.TxSrc] = f.QueueTag
			dn.Updates++
			dn.remap()
		})
	}
	return dep
}

// remap assigns each transmit queue a CWmin class from the backlog
// differential toward its next hop.
func (dn *DiffQNode) remap() {
	own := dn.node.MAC.TotalQueued()
	for _, q := range dn.node.Queues() {
		succ := q.NextHop()
		diff := own - dn.neighbourBacklog[succ]
		var cw int
		switch {
		case diff > 20:
			cw = diffqCW[0]
		case diff > 5:
			cw = diffqCW[1]
		case diff > 0:
			cw = diffqCW[2]
		default:
			cw = diffqCW[3]
		}
		q.SetCWmin(cw)
	}
}
