package baseline

import (
	"testing"

	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
	"ezflow/internal/traffic"
)

func newChain(t *testing.T, hops int) (*sim.Engine, *mesh.Mesh) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := mesh.Chain(eng, hops, phy.DefaultConfig(), mac.DefaultConfig())
	return eng, m
}

func TestPenaltySetsWindows(t *testing.T) {
	_, m := newChain(t, 4)
	ApplyPenalty(m, 1.0/8, 16)
	// Source queue cw = 16/(1/8) = 128; relays = 16.
	if cw := m.Node(0).SourceQueue(1).CWmin(); cw != 128 {
		t.Fatalf("source cw = %d, want 128", cw)
	}
	for i := 1; i <= 3; i++ {
		n := m.Node(pkt.NodeID(i))
		for _, q := range n.Queues() {
			if q.CWmin() != 16 {
				t.Fatalf("relay N%d cw = %d, want 16", i, q.CWmin())
			}
		}
	}
}

func TestPenaltyDegeneratesToPlain(t *testing.T) {
	_, m := newChain(t, 3)
	ApplyPenalty(m, 1, 32)
	if cw := m.Node(0).SourceQueue(1).CWmin(); cw != 32 {
		t.Fatalf("q=1 source cw = %d, want 32", cw)
	}
}

func TestPenaltyRejectsBadQ(t *testing.T) {
	_, m := newChain(t, 3)
	for _, q := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ApplyPenalty(%v) did not panic", q)
				}
			}()
			ApplyPenalty(m, q, 16)
		}()
	}
}

func TestPenaltyStabilizesChain(t *testing.T) {
	// The scheme of [9] with a strong penalty must keep the first relay's
	// queue from saturating on a 4-hop chain.
	eng, m := newChain(t, 4)
	ApplyPenalty(m, 1.0/32, 16)
	src := traffic.NewCBR(m, 1, 2e6, 1028)
	src.Start()
	eng.Run(600 * sim.Second)
	if d := m.Node(1).RelayDepth(); d > 40 {
		t.Fatalf("penalty scheme left N1 with %d queued", d)
	}
}

func TestDiffQPiggybacksAndAdapts(t *testing.T) {
	eng, m := newChain(t, 4)
	dep := DeployDiffQ(m)
	src := traffic.NewCBR(m, 1, 2e6, 1028)
	src.Start()
	eng.Run(120 * sim.Second)
	if dep.OverheadBytes == 0 {
		t.Fatal("DiffQ sent no piggybacked bytes (message passing absent)")
	}
	n1 := dep.Nodes[1]
	if n1.Updates == 0 {
		t.Fatal("DiffQ node never learned a neighbour backlog")
	}
	// At least one queue should have left the default CWmin class.
	moved := false
	for _, n := range m.Nodes() {
		for _, q := range n.Queues() {
			if q.CWmin() != mac.DefaultCWmin {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("DiffQ never remapped any CWmin")
	}
}

func TestDiffQOverheadGrowsWithTraffic(t *testing.T) {
	run := func(dur sim.Time) uint64 {
		eng, m := newChain(t, 3)
		dep := DeployDiffQ(m)
		src := traffic.NewCBR(m, 1, 2e6, 1028)
		src.Start()
		eng.Run(dur)
		return dep.OverheadBytes
	}
	short, long := run(30*sim.Second), run(120*sim.Second)
	if long <= short {
		t.Fatalf("overhead did not grow with traffic: %d vs %d", short, long)
	}
}
