// The position-update engine: a self-rescheduling tick on the
// simulation clock that queries the active model for every mobile
// node's position (ascending node id — the repository's deterministic
// iteration convention), applies it through mesh.MoveNode's incremental
// PHY re-indexing, and triggers route repair through the caller's hook
// whenever decode-range link membership changed — the same delegation
// to the active routing strategy that dynamics repair uses.
//
// Tick-ordering determinism: ticks fire at fixed multiples of the tick
// interval, so their (time, sequence) order against every other event
// is reproducible; within a tick, nodes move in ascending id order; a
// node caught mid-transmission is skipped and simply jumps to its
// model position at the next tick (the PHY lags the model by at most
// one tick for that node — a pure function of sim state, so replays
// agree). Moves consume no engine randomness.
package mobility

import (
	"fmt"
	"slices"

	"ezflow/internal/mesh"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// DefaultTickSec is the position-update interval when the scenario does
// not set one: 500 ms keeps pedestrian-speed position error below a
// metre without measurable event-load cost.
const DefaultTickSec = 0.5

// Config selects and parameterizes a mobility run.
type Config struct {
	// Model is the registry name ("waypoint", "trace"); IsOff names
	// (empty, "off", "static") mean no mobility and Attach returns nil.
	Model string
	// Opts parameterizes the model.
	Opts Options
	// TickSec is the position-update interval (default DefaultTickSec).
	TickSec float64
	// Fixed pins nodes in place regardless of the model — typically the
	// gateway, which is mains-powered street furniture, not a commuter.
	Fixed []pkt.NodeID
	// Bounds overrides the roaming area (default: the deployment's
	// bounding box).
	Bounds *Bounds
	// Seed is the run seed the model derives per-node randomness from.
	Seed int64
	// UntilSec is the horizon after which no further ticks are
	// scheduled (normally the scenario duration).
	UntilSec float64
}

// Stats counts what the engine did, for reports and tests.
type Stats struct {
	// Ticks is the number of position-update rounds fired.
	Ticks uint64
	// Moves is the number of MoveNode applications.
	Moves uint64
	// Deferred counts moves skipped because the node was mid-frame.
	Deferred uint64
	// Repairs counts ticks that changed decode-range link membership and
	// invoked the repair hook.
	Repairs uint64
}

// Engine drives one model against one mesh.
type Engine struct {
	m      *mesh.Mesh
	model  Model
	tick   sim.Time
	until  sim.Time
	ids    []pkt.NodeID
	mobile []bool
	tickFn func()

	// Repair is invoked after any tick on which some node's decode-range
	// link membership changed; the wiring layer points it at the same
	// route-repair path dynamics uses (reroute every flow through the
	// active routing strategy, then re-extend controllers). Nil means no
	// repair — routes silently stale, acceptable only in PHY-level tests.
	Repair func()

	// Stats accumulates engine activity.
	Stats Stats
}

// Attach builds cfg's model over the mesh's current deployment and
// schedules the first position tick. It returns (nil, nil) when cfg
// selects no mobility, so callers can attach unconditionally.
func Attach(m *mesh.Mesh, cfg Config) (*Engine, error) {
	if IsOff(cfg.Model) {
		return nil, nil
	}
	tickSec := cfg.TickSec
	if tickSec == 0 {
		tickSec = DefaultTickSec
	}
	if tickSec <= 0 {
		return nil, fmt.Errorf("mobility: tick must be > 0, got %g s", tickSec)
	}
	if cfg.UntilSec <= 0 {
		return nil, fmt.Errorf("mobility: horizon must be > 0, got %g s", cfg.UntilSec)
	}
	model, err := New(cfg.Model, cfg.Opts)
	if err != nil {
		return nil, err
	}
	ids := m.Ch.NodeIDs()
	starts := make([]phy.Position, len(ids))
	for i, id := range ids {
		starts[i] = m.Ch.Position(id)
	}
	bounds := BoundsOf(starts)
	if cfg.Bounds != nil {
		bounds = *cfg.Bounds
	}
	if err := model.Init(ids, starts, bounds, cfg.Seed); err != nil {
		return nil, err
	}
	e := &Engine{
		m:      m,
		model:  model,
		tick:   sim.FromSeconds(tickSec),
		until:  sim.FromSeconds(cfg.UntilSec),
		ids:    ids,
		mobile: make([]bool, len(ids)),
	}
	for i, id := range ids {
		e.mobile[i] = model.Mobile(i) && !slices.Contains(cfg.Fixed, id)
	}
	e.tickFn = e.step
	m.Eng.ScheduleFuncAt(m.Eng.Now()+e.tick, e.tickFn)
	return e, nil
}

// Model returns the attached model.
func (e *Engine) Model() Model { return e.model }

// step is one position-update round (see the package comment for the
// determinism rules).
func (e *Engine) step() {
	now := e.m.Eng.Now()
	changed := false
	for k, id := range e.ids {
		if !e.mobile[k] {
			continue
		}
		p := e.model.At(k, now)
		if e.m.Ch.Transmitting(id) {
			e.Stats.Deferred++
			continue
		}
		e.Stats.Moves++
		if e.m.MoveNode(id, p) {
			changed = true
		}
	}
	e.Stats.Ticks++
	if changed {
		e.Stats.Repairs++
		if e.Repair != nil {
			e.Repair()
		}
	}
	if next := now + e.tick; next <= e.until {
		e.m.Eng.ScheduleFuncAt(next, e.tickFn)
	}
}
