// The random-waypoint model: each node independently repeats
// pause → pick a uniform destination in the bounds and a uniform speed →
// travel there in a straight line. The classic mobile-mesh evaluation
// regime, with the standard fix of bounding the speed away from zero
// (the harmonic-mean pathology that otherwise freezes nodes as the run
// progresses).
package mobility

import (
	"fmt"
	"math/rand"

	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

func init() {
	Register(Info{
		Name:    "waypoint",
		Summary: "random waypoint: pause, pick a uniform destination and speed, travel (per-node RNG)",
		New:     newWaypoint,
	})
}

// waypoint defaults (see Options).
const (
	defaultSpeedMps = 1.5
	defaultPauseSec = 5.0
	// minLegAdvance guards degenerate geometry (zero-area bounds with
	// zero pause): every leg advances the clock by at least this much so
	// the At cursor loop always terminates.
	minLegAdvance = 100 * sim.Millisecond
)

// wpNode is one node's cursor through its leg sequence: paused at `from`
// until depart, then traveling to `to` until arrive.
type wpNode struct {
	rng      *rand.Rand
	from, to phy.Position
	depart   sim.Time
	arrive   sim.Time
}

type waypointModel struct {
	speedMin, speedMax float64
	pause              sim.Time
	bounds             Bounds
	nodes              []wpNode
}

// newWaypoint validates the options and fills defaults.
func newWaypoint(opts Options) (Model, error) {
	w := &waypointModel{}
	w.speedMax = opts.SpeedMps
	if w.speedMax == 0 {
		w.speedMax = defaultSpeedMps
	}
	w.speedMin = opts.SpeedMinMps
	if w.speedMin == 0 {
		w.speedMin = w.speedMax / 4
	}
	if w.speedMax <= 0 || w.speedMin <= 0 || w.speedMin > w.speedMax {
		return nil, fmt.Errorf("mobility: waypoint needs 0 < min speed <= max speed, got [%g, %g] m/s",
			w.speedMin, w.speedMax)
	}
	pause := opts.PauseSec
	if pause == 0 {
		pause = defaultPauseSec
	}
	if pause < 0 {
		return nil, fmt.Errorf("mobility: waypoint pause must be >= 0, got %g s", pause)
	}
	w.pause = sim.FromSeconds(pause)
	return w, nil
}

func (w *waypointModel) Name() string { return "waypoint" }

// Init seeds one RNG per node from the run seed and the node id via a
// splitmix64 finalizer, so every node's trajectory is independent of
// every other's and of the engine RNG stream.
func (w *waypointModel) Init(ids []pkt.NodeID, start []phy.Position, b Bounds, seed int64) error {
	if !b.Valid() {
		return fmt.Errorf("mobility: invalid bounds %+v", b)
	}
	w.bounds = b
	w.nodes = make([]wpNode, len(ids))
	for i := range ids {
		x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(ids[i])*0xBF58476D1CE4E5B9 + 1
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		w.nodes[i] = wpNode{
			rng:  rand.New(rand.NewSource(int64(x))),
			from: start[i],
			to:   start[i],
		}
	}
	return nil
}

// Mobile: every node moves under random waypoint (the engine's Fixed
// list is the way to pin individual nodes such as the gateway).
func (w *waypointModel) Mobile(int) bool { return true }

// At advances node i's leg cursor to time t and interpolates. Monotone
// per-node times make this amortized O(1) per tick.
func (w *waypointModel) At(i int, t sim.Time) phy.Position {
	n := &w.nodes[i]
	for t >= n.arrive {
		prev := n.arrive
		n.from = n.to
		n.depart = prev + w.pause
		n.to = phy.Position{
			X: w.bounds.MinX + n.rng.Float64()*(w.bounds.MaxX-w.bounds.MinX),
			Y: w.bounds.MinY + n.rng.Float64()*(w.bounds.MaxY-w.bounds.MinY),
		}
		speed := w.speedMin + n.rng.Float64()*(w.speedMax-w.speedMin)
		n.arrive = n.depart + sim.FromSeconds(n.from.Dist(n.to)/speed)
		if n.arrive < prev+minLegAdvance {
			n.arrive = prev + minLegAdvance
		}
	}
	if t <= n.depart {
		return n.from
	}
	frac := float64(t-n.depart) / float64(n.arrive-n.depart)
	return phy.Position{
		X: n.from.X + frac*(n.to.X-n.from.X),
		Y: n.from.Y + frac*(n.to.Y-n.from.Y),
	}
}
