package mobility

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

const sampleTrace = `{
  "nodes": [
    {"id": 2, "waypoints": [
      {"at_sec": 0, "x": 0, "y": 0},
      {"at_sec": 10, "x": 100, "y": 0},
      {"at_sec": 20, "x": 100, "y": 50}
    ]},
    {"id": 1, "waypoints": [{"at_sec": 5, "x": 7, "y": 7}]}
  ]
}`

func TestParseTraceRoundTrip(t *testing.T) {
	tr, err := ParseTrace([]byte(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := ParseTrace(out)
	if err != nil {
		t.Fatalf("re-parse of marshalled trace: %v", err)
	}
	if len(tr2.Nodes) != 2 || len(tr2.Nodes[0].Waypoints) != 3 {
		t.Fatalf("round trip mangled the trace: %+v", tr2)
	}
}

func TestLoadTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestParseTraceRejects pins strict parsing: unknown fields, structural
// violations, and non-finite numbers all fail loudly.
func TestParseTraceRejects(t *testing.T) {
	cases := map[string]string{
		"unknown top-level field": `{"nodes": [], "speed": 3}`,
		"unknown node field":      `{"nodes": [{"id": 1, "waypoints": [{"at_sec":0,"x":0,"y":0}], "color": "red"}]}`,
		"unknown waypoint field":  `{"nodes": [{"id": 1, "waypoints": [{"at_sec":0,"x":0,"y":0,"z":5}]}]}`,
		"negative id":             `{"nodes": [{"id": -1, "waypoints": [{"at_sec":0,"x":0,"y":0}]}]}`,
		"duplicate id":            `{"nodes": [{"id": 1, "waypoints": [{"at_sec":0,"x":0,"y":0}]},{"id": 1, "waypoints": [{"at_sec":0,"x":0,"y":0}]}]}`,
		"no waypoints":            `{"nodes": [{"id": 1, "waypoints": []}]}`,
		"negative time":           `{"nodes": [{"id": 1, "waypoints": [{"at_sec":-1,"x":0,"y":0}]}]}`,
		"non-ascending times":     `{"nodes": [{"id": 1, "waypoints": [{"at_sec":5,"x":0,"y":0},{"at_sec":5,"x":1,"y":0}]}]}`,
		"trailing garbage":        `{"nodes": []} {"nodes": []}`,
		"not json":                `waypoints!`,
	}
	for name, body := range cases {
		if _, err := ParseTrace([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}

// TestTraceModelInterpolation pins hold-before/hold-after and the
// piecewise-linear midpoint.
func TestTraceModelInterpolation(t *testing.T) {
	tr, err := ParseTrace([]byte(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New("trace", Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	ids := []pkt.NodeID{0, 1, 2}
	start := []phy.Position{{X: -1}, {X: 7, Y: 7}, {X: 500, Y: 500}}
	if err := m.Init(ids, start, Bounds{}, 0); err != nil {
		t.Fatal(err)
	}
	if m.Mobile(0) {
		t.Fatal("untraced node must be immobile")
	}
	if m.Mobile(1) {
		t.Fatal("single-waypoint node already at its waypoint must be immobile")
	}
	if !m.Mobile(2) {
		t.Fatal("traced node must be mobile")
	}
	if p := m.At(0, sim.FromSeconds(50)); p != start[0] {
		t.Fatalf("untraced node moved to %v", p)
	}
	cases := []struct {
		atSec float64
		want  phy.Position
	}{
		{0, phy.Position{}},               // first waypoint
		{5, phy.Position{X: 50}},          // mid first leg
		{10, phy.Position{X: 100}},        // second waypoint
		{15, phy.Position{X: 100, Y: 25}}, // mid second leg
		{99, phy.Position{X: 100, Y: 50}}, // held at last
	}
	for _, c := range cases {
		if p := m.At(2, sim.FromSeconds(c.atSec)); p != c.want {
			t.Fatalf("At(2, %gs) = %v, want %v", c.atSec, p, c.want)
		}
	}
}

// TestTraceModelUnknownNode: tracing a node absent from the topology is
// an error, not a silent no-op.
func TestTraceModelUnknownNode(t *testing.T) {
	tr, err := ParseTrace([]byte(`{"nodes": [{"id": 40, "waypoints": [{"at_sec":0,"x":0,"y":0}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New("trace", Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init([]pkt.NodeID{0, 1}, []phy.Position{{}, {X: 1}}, Bounds{}, 0); err == nil {
		t.Fatal("trace naming an unknown node must fail Init")
	}
}

// FuzzParseMobilityTrace: the parser must never panic, and anything it
// accepts must survive a marshal/re-parse round trip (Validate is part
// of ParseTrace, so acceptance implies structural soundness).
func FuzzParseMobilityTrace(f *testing.F) {
	f.Add([]byte(sampleTrace))
	f.Add([]byte(`{"nodes": []}`))
	f.Add([]byte(`{"nodes": [{"id": 0, "waypoints": [{"at_sec": 0, "x": -1e300, "y": 1e300}]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseTrace(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(tr)
		if err != nil {
			t.Fatalf("accepted trace failed to marshal: %v", err)
		}
		if _, err := ParseTrace(out); err != nil {
			t.Fatalf("accepted trace failed to re-parse: %v\n%s", err, out)
		}
	})
}
