// Package mobility makes the mesh move: pluggable node-mobility models
// behind a name registry that mirrors internal/ctl's controller registry
// and internal/routing's strategy registry, driven by a position-update
// engine (engine.go) that ticks on the simulation clock and relocates
// stations through mesh.MoveNode / phy.MoveNode's incremental
// neighbor-index patching.
//
// The paper's evaluation world is static relays; the meshes EZ-Flow
// targets move. This package supplies the two standard evaluation
// regimes — "waypoint", the classic random-waypoint model with a
// deterministic per-node RNG, and "trace", deterministic trace-driven
// replay from a JSON waypoint list — and is the extension point for
// richer ones (Gauss-Markov, group mobility, map-constrained walks).
//
// Determinism contract: a model's positions are a pure function of
// (seed, node, time). The waypoint model derives one RNG per node from
// the run seed, so no model ever reads the engine RNG and position
// queries are independent of cross-node evaluation order; runs with
// mobility disabled schedule nothing and consume no randomness, keeping
// them byte-identical to a simulator without this package.
package mobility

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Model produces node positions over time. Implementations are bound to
// one run by Init and must be deterministic: At is a pure function of
// (seed, node index, time) — never of the engine RNG or of the order in
// which different nodes are queried. The engine queries each node with
// non-decreasing times, so models may keep per-node cursors.
type Model interface {
	// Name reports the registry name the model was created under.
	Name() string
	// Init binds the model to a deployment: node ids in ascending order
	// with their t=0 positions, the roaming bounds, and the run seed.
	Init(ids []pkt.NodeID, start []phy.Position, b Bounds, seed int64) error
	// At returns node i's position at time t (i indexes the Init slices).
	At(i int, t sim.Time) phy.Position
	// Mobile reports whether node i ever moves; the engine skips
	// immobile nodes entirely, so they cost nothing per tick.
	Mobile(i int) bool
}

// Bounds is the rectangular roaming area models confine nodes to.
type Bounds struct {
	MinX, MinY, MaxX, MaxY float64
}

// BoundsOf returns the bounding box of a deployment — the default
// roaming area when the scenario does not name one.
func BoundsOf(pos []phy.Position) Bounds {
	if len(pos) == 0 {
		return Bounds{}
	}
	b := Bounds{MinX: pos[0].X, MinY: pos[0].Y, MaxX: pos[0].X, MaxY: pos[0].Y}
	for _, p := range pos[1:] {
		b.MinX, b.MaxX = math.Min(b.MinX, p.X), math.Max(b.MaxX, p.X)
		b.MinY, b.MaxY = math.Min(b.MinY, p.Y), math.Max(b.MaxY, p.Y)
	}
	return b
}

// Valid reports whether the bounds describe a (possibly degenerate)
// rectangle with finite corners.
func (b Bounds) Valid() bool {
	for _, v := range []float64{b.MinX, b.MinY, b.MaxX, b.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return b.MaxX >= b.MinX && b.MaxY >= b.MinY
}

// Options parameterizes model construction. Models fill their own
// defaults, so callers may pass a zero value (except "trace", which
// needs Trace).
type Options struct {
	// SpeedMps is the maximum node speed in m/s (waypoint; default 1.5,
	// pedestrian pace).
	SpeedMps float64
	// SpeedMinMps is the minimum speed in m/s (waypoint; default
	// SpeedMps/4, bounded away from the random-waypoint zero-speed
	// pathology).
	SpeedMinMps float64
	// PauseSec is the dwell time at each waypoint in seconds (waypoint;
	// default 5).
	PauseSec float64
	// Trace is the parsed waypoint list the "trace" model replays.
	Trace *Trace
}

// Info describes one registered mobility model.
type Info struct {
	// Name is the registry key ("waypoint", "trace").
	Name string
	// Summary is the one-line description CLI usage strings embed.
	Summary string
	// New creates a model instance, validating the options.
	New func(opts Options) (Model, error)
}

var registry = map[string]Info{}

// Register adds a model to the registry. It panics on an empty name, a
// nil constructor, or a duplicate registration.
func Register(info Info) {
	if info.Name == "" {
		panic("mobility: Register with empty name")
	}
	if info.New == nil {
		panic("mobility: Register " + info.Name + " with nil New")
	}
	if _, dup := registry[info.Name]; dup {
		panic("mobility: duplicate Register of " + info.Name)
	}
	registry[info.Name] = info
}

// ByName looks a model up by its registry name.
func ByName(name string) (Info, bool) {
	info, ok := registry[name]
	return info, ok
}

// Names returns every registered model name, sorted, so CLI usage
// strings and validation errors enumerate the registry instead of
// hand-maintained lists.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NamesList renders the registry names as "off|a|b" for flag usage
// strings; "off" leads because static is the default.
func NamesList() string { return "off|" + strings.Join(Names(), "|") }

// IsOff reports whether name selects no mobility at all — the empty
// string, "off", or "static". A run with mobility off schedules no tick
// events and consumes no randomness, so it is byte-identical to a
// simulator without the subsystem; every CLI flag, sweep axis, and
// scenario field shares this predicate.
func IsOff(name string) bool {
	switch strings.ToLower(name) {
	case "", "off", "static":
		return true
	}
	return false
}

// New builds a model by registry name, validating the options.
func New(name string, opts Options) (Model, error) {
	info, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("mobility: unknown model %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return info.New(opts)
}

// Usage renders one "name — summary" line per registered model, for CLI
// help text.
func Usage() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-12s %s", "off", "static topology (default; schedules nothing)")
	for _, n := range Names() {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "  %-12s %s", n, registry[n].Summary)
	}
	return b.String()
}
