package mobility

import (
	"math"
	"slices"
	"testing"

	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"waypoint", "trace"} {
		if !slices.Contains(names, want) {
			t.Fatalf("registry %v missing %q", names, want)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName should miss unknown models")
	}
	if _, err := New("nope", Options{}); err == nil {
		t.Fatal("New of an unknown model must error")
	}
	for _, off := range []string{"", "off", "static", "OFF"} {
		if !IsOff(off) {
			t.Fatalf("IsOff(%q) = false", off)
		}
	}
	if IsOff("waypoint") {
		t.Fatal("IsOff(waypoint) = true")
	}
	if Usage() == "" || NamesList() == "" {
		t.Fatal("Usage/NamesList must render")
	}
}

// TestWaypointDeterministicAndIndependent pins the model's determinism
// contract: trajectories are identical across instances with the same
// seed, different across seeds, independent of cross-node query
// interleaving, and confined to the bounds.
func TestWaypointDeterministicAndIndependent(t *testing.T) {
	ids := []pkt.NodeID{0, 1, 2, 3}
	start := []phy.Position{{}, {X: 100}, {Y: 100}, {X: 100, Y: 100}}
	b := Bounds{MaxX: 500, MaxY: 500}
	mk := func(seed int64) Model {
		m, err := New("waypoint", Options{SpeedMps: 10, PauseSec: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Init(ids, start, b, seed); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, c, d := mk(7), mk(7), mk(8)
	// a: node-major sweep; c: time-major sweep. Positions must agree.
	type key struct {
		i int
		t sim.Time
	}
	got := map[key]phy.Position{}
	for i := range ids {
		for step := 1; step <= 40; step++ {
			tm := sim.Time(step) * 500 * sim.Millisecond
			got[key{i, tm}] = a.At(i, tm)
		}
	}
	diverged := false
	for step := 1; step <= 40; step++ {
		tm := sim.Time(step) * 500 * sim.Millisecond
		for i := range ids {
			p := c.At(i, tm)
			if p != got[key{i, tm}] {
				t.Fatalf("query-order dependence at node %d t=%v: %v vs %v", i, tm, p, got[key{i, tm}])
			}
			if p.X < b.MinX || p.X > b.MaxX || p.Y < b.MinY || p.Y > b.MaxY {
				t.Fatalf("node %d escaped bounds: %v", i, p)
			}
			if d.At(i, tm) != p {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestWaypointDegenerateBoundsTerminates guards the zero-area,
// zero-pause corner: At must not spin forever.
func TestWaypointDegenerateBoundsTerminates(t *testing.T) {
	m, err := New("waypoint", Options{SpeedMps: 1, PauseSec: 0.000001})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init([]pkt.NodeID{0}, []phy.Position{{X: 3, Y: 4}}, Bounds{MinX: 3, MaxX: 3, MinY: 4, MaxY: 4}, 1); err != nil {
		t.Fatal(err)
	}
	if p := m.At(0, sim.FromSeconds(3600)); p != (phy.Position{X: 3, Y: 4}) {
		t.Fatalf("degenerate bounds moved the node to %v", p)
	}
}

func TestWaypointOptionValidation(t *testing.T) {
	if _, err := New("waypoint", Options{SpeedMps: -1}); err == nil {
		t.Fatal("negative speed must be rejected")
	}
	if _, err := New("waypoint", Options{SpeedMps: 1, SpeedMinMps: 2}); err == nil {
		t.Fatal("min speed above max must be rejected")
	}
	if _, err := New("waypoint", Options{PauseSec: -1}); err == nil {
		t.Fatal("negative pause must be rejected")
	}
}

func TestBoundsOf(t *testing.T) {
	b := BoundsOf([]phy.Position{{X: -5, Y: 2}, {X: 10, Y: -3}})
	want := Bounds{MinX: -5, MinY: -3, MaxX: 10, MaxY: 2}
	if b != want {
		t.Fatalf("BoundsOf = %+v, want %+v", b, want)
	}
	if !b.Valid() {
		t.Fatal("finite bounds must be valid")
	}
	if (Bounds{MinX: math.NaN()}).Valid() {
		t.Fatal("NaN bounds must be invalid")
	}
	if (Bounds{MinX: 1, MaxX: 0}).Valid() {
		t.Fatal("inverted bounds must be invalid")
	}
}

// buildMesh is a 3x3 grid mesh for engine tests.
func buildMesh() (*sim.Engine, *mesh.Mesh) {
	eng := sim.NewEngine(1)
	return eng, mesh.Grid(eng, 3, 3, phy.DefaultConfig(), mac.DefaultConfig())
}

// TestEngineMovesAndPinsFixed runs the waypoint engine over a grid and
// checks: mobile nodes actually move, Fixed nodes never do, ticks stop
// at the horizon, and the incremental index stays equal to the oracle.
func TestEngineMovesAndPinsFixed(t *testing.T) {
	eng, m := buildMesh()
	gwPos := m.Ch.Position(0)
	e, err := Attach(m, Config{
		Model:    "waypoint",
		Opts:     Options{SpeedMps: 20, PauseSec: 0.5},
		TickSec:  0.25,
		Fixed:    []pkt.NodeID{0},
		Seed:     42,
		UntilSec: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	repairs := 0
	e.Repair = func() { repairs++ }
	eng.Run(sim.FromSeconds(60))
	if m.Ch.Position(0) != gwPos {
		t.Fatalf("fixed gateway moved to %v", m.Ch.Position(0))
	}
	moved := false
	for _, n := range m.Nodes() {
		if n.ID != 0 && n.Pos != (phy.Position{X: float64(n.ID%3) * 200, Y: float64(n.ID/3) * 200}) {
			moved = true
		}
		if n.Pos != m.Ch.Position(n.ID) {
			t.Fatalf("node %d: mesh position %v != channel position %v", n.ID, n.Pos, m.Ch.Position(n.ID))
		}
	}
	if !moved {
		t.Fatal("no node moved at 20 m/s over 30 s")
	}
	if e.Stats.Ticks != 120 { // 30 s horizon / 0.25 s tick
		t.Fatalf("ticks = %d, want 120", e.Stats.Ticks)
	}
	if e.Stats.Moves == 0 {
		t.Fatal("no moves recorded")
	}
	if uint64(repairs) != e.Stats.Repairs {
		t.Fatalf("repair hook fired %d times, stats say %d", repairs, e.Stats.Repairs)
	}
	if repairs == 0 {
		t.Fatal("fast movement on a 200 m grid must change decode membership at least once")
	}
	if err := m.Ch.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineOffIsNil: off-spellings attach nothing and schedule nothing.
func TestEngineOffIsNil(t *testing.T) {
	eng, m := buildMesh()
	before := eng.Scheduled()
	for _, name := range []string{"", "off", "static"} {
		e, err := Attach(m, Config{Model: name, UntilSec: 10})
		if err != nil || e != nil {
			t.Fatalf("Attach(%q) = (%v, %v), want (nil, nil)", name, e, err)
		}
	}
	if eng.Scheduled() != before {
		t.Fatal("mobility-off must not schedule any event")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	_, m := buildMesh()
	if _, err := Attach(m, Config{Model: "waypoint", UntilSec: 0}); err == nil {
		t.Fatal("zero horizon must be rejected")
	}
	if _, err := Attach(m, Config{Model: "waypoint", TickSec: -1, UntilSec: 10}); err == nil {
		t.Fatal("negative tick must be rejected")
	}
	if _, err := Attach(m, Config{Model: "bogus", UntilSec: 10}); err == nil {
		t.Fatal("unknown model must be rejected")
	}
	if _, err := Attach(m, Config{Model: "trace", UntilSec: 10}); err == nil {
		t.Fatal("trace without a trace must be rejected")
	}
}

// TestEngineByteIdenticalReplay pins run-to-run determinism of a mobile
// mesh at the engine level: two identical runs make identical moves.
func TestEngineByteIdenticalReplay(t *testing.T) {
	run := func() ([]phy.Position, Stats) {
		eng, m := buildMesh()
		e, err := Attach(m, Config{
			Model:    "waypoint",
			Opts:     Options{SpeedMps: 15},
			Seed:     9,
			UntilSec: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(sim.FromSeconds(20))
		var out []phy.Position
		for _, id := range m.Ch.NodeIDs() {
			out = append(out, m.Ch.Position(id))
		}
		return out, e.Stats
	}
	p1, s1 := run()
	p2, s2 := run()
	if !slices.Equal(p1, p2) || s1 != s2 {
		t.Fatalf("replay diverged: %v/%+v vs %v/%+v", p1, s1, p2, s2)
	}
}
