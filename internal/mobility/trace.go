// The trace-driven model: nodes replay a JSON waypoint list with
// piecewise-linear interpolation — the regime for reproducing a measured
// deployment (or a regression scenario) move-for-move. Nodes absent from
// the trace stay where the topology builder put them.
package mobility

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

func init() {
	Register(Info{
		Name:    "trace",
		Summary: "deterministic trace replay: piecewise-linear JSON waypoint lists per node",
		New: func(opts Options) (Model, error) {
			if opts.Trace == nil {
				return nil, fmt.Errorf("mobility: trace model needs a trace (scenario trace_file/trace block)")
			}
			if err := opts.Trace.Validate(); err != nil {
				return nil, err
			}
			return &traceModel{trace: opts.Trace}, nil
		},
	})
}

// Trace is a replayable movement script: per-node timestamped waypoint
// lists.
type Trace struct {
	// Nodes holds one waypoint list per moving node; nodes not listed
	// never move.
	Nodes []TraceNode `json:"nodes"`
}

// TraceNode is one node's timestamped path.
type TraceNode struct {
	// ID is the node the waypoints apply to.
	ID pkt.NodeID `json:"id"`
	// Waypoints is the path, strictly ascending in time. Before the
	// first waypoint the node sits at it; after the last it stays there.
	Waypoints []TracePoint `json:"waypoints"`
}

// TracePoint pins a position at a time.
type TracePoint struct {
	// AtSec is the waypoint time in seconds from run start.
	AtSec float64 `json:"at_sec"`
	// X is the x-coordinate in metres.
	X float64 `json:"x"`
	// Y is the y-coordinate in metres.
	Y float64 `json:"y"`
}

// ParseTrace decodes a movement trace, rejecting unknown fields (the
// same strictness as scenario files: a typo fails loudly instead of
// silently not moving anything) and validating it.
func ParseTrace(data []byte) (*Trace, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tr Trace
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("mobility: parse trace: %w", err)
	}
	// Trailing garbage after the JSON document is a malformed file.
	if dec.More() {
		return nil, fmt.Errorf("mobility: parse trace: trailing data after document")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// LoadTrace reads and parses a trace file.
func LoadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mobility: %w", err)
	}
	tr, err := ParseTrace(data)
	if err != nil {
		return nil, fmt.Errorf("mobility: %s: %w", path, err)
	}
	return tr, nil
}

// Validate checks structural soundness: unique non-negative node ids,
// at least one waypoint per listed node, strictly ascending finite
// times, finite coordinates.
func (tr *Trace) Validate() error {
	seen := map[pkt.NodeID]bool{}
	for _, n := range tr.Nodes {
		if n.ID < 0 {
			return fmt.Errorf("mobility: trace node id %d is negative", n.ID)
		}
		if seen[n.ID] {
			return fmt.Errorf("mobility: trace lists node %d twice", n.ID)
		}
		seen[n.ID] = true
		if len(n.Waypoints) == 0 {
			return fmt.Errorf("mobility: trace node %d has no waypoints", n.ID)
		}
		last := math.Inf(-1)
		for i, w := range n.Waypoints {
			if math.IsNaN(w.AtSec) || math.IsInf(w.AtSec, 0) || w.AtSec < 0 {
				return fmt.Errorf("mobility: trace node %d waypoint %d: bad time %g", n.ID, i, w.AtSec)
			}
			if w.AtSec <= last && i > 0 {
				return fmt.Errorf("mobility: trace node %d waypoint %d: times must be strictly ascending", n.ID, i)
			}
			last = w.AtSec
			for _, v := range []float64{w.X, w.Y} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("mobility: trace node %d waypoint %d: non-finite coordinate", n.ID, i)
				}
			}
		}
	}
	return nil
}

type traceModel struct {
	trace *Trace
	// paths[i] is node i's waypoint list (nil: not in the trace);
	// hold[i] is its builder position for untraced nodes.
	paths [][]TracePoint
	hold  []phy.Position
}

func (m *traceModel) Name() string { return "trace" }

// Init resolves trace entries against the deployment. A trace naming an
// unknown node id is an error — a silent skip would make a typoed id
// look like a static node.
func (m *traceModel) Init(ids []pkt.NodeID, start []phy.Position, _ Bounds, _ int64) error {
	at := map[pkt.NodeID]int{}
	for i, id := range ids {
		at[id] = i
	}
	m.paths = make([][]TracePoint, len(ids))
	m.hold = append([]phy.Position(nil), start...)
	for _, n := range m.trace.Nodes {
		i, ok := at[n.ID]
		if !ok {
			return fmt.Errorf("mobility: trace names node %d, which is not in the topology", n.ID)
		}
		m.paths[i] = n.Waypoints
	}
	return nil
}

// Mobile reports whether the trace moves node i at all.
func (m *traceModel) Mobile(i int) bool {
	wps := m.paths[i]
	if len(wps) == 0 {
		return false
	}
	first := phy.Position{X: wps[0].X, Y: wps[0].Y}
	if len(wps) == 1 && first == m.hold[i] {
		return false
	}
	return true
}

// At interpolates node i's position at t: held at the first waypoint
// before it, at the last after it, piecewise-linear between.
func (m *traceModel) At(i int, t sim.Time) phy.Position {
	wps := m.paths[i]
	if len(wps) == 0 {
		return m.hold[i]
	}
	ts := t.Seconds()
	k := sort.Search(len(wps), func(j int) bool { return wps[j].AtSec > ts })
	// wps[k-1].AtSec <= ts < wps[k].AtSec
	if k == 0 {
		return phy.Position{X: wps[0].X, Y: wps[0].Y}
	}
	if k == len(wps) {
		return phy.Position{X: wps[k-1].X, Y: wps[k-1].Y}
	}
	a, b := wps[k-1], wps[k]
	frac := (ts - a.AtSec) / (b.AtSec - a.AtSec)
	return phy.Position{X: a.X + frac*(b.X-a.X), Y: a.Y + frac*(b.Y-a.Y)}
}
