package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	en := NewEngine(1)
	var got []int
	en.Schedule(30*Microsecond, func() { got = append(got, 3) })
	en.Schedule(10*Microsecond, func() { got = append(got, 1) })
	en.Schedule(20*Microsecond, func() { got = append(got, 2) })
	en.Run(Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	en := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		en.Schedule(5*Microsecond, func() { got = append(got, i) })
	}
	en.Run(Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	en := NewEngine(1)
	fired := false
	e := en.Schedule(10*Microsecond, func() { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending")
	}
	e.Cancel()
	if e.Pending() {
		t.Fatal("cancelled event still pending")
	}
	en.Run(Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel is a no-op.
	e.Cancel()
}

func TestCancelFromWithinEvent(t *testing.T) {
	en := NewEngine(1)
	fired := false
	var victim Timer
	en.Schedule(5*Microsecond, func() { victim.Cancel() })
	victim = en.Schedule(10*Microsecond, func() { fired = true })
	en.Run(Second)
	if fired {
		t.Fatal("victim fired despite cancellation")
	}
}

func TestNestedScheduling(t *testing.T) {
	en := NewEngine(1)
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			en.Schedule(Microsecond, recur)
		}
	}
	en.Schedule(0, recur)
	en.Run(Second)
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if en.Fired() != 100 {
		t.Fatalf("fired = %d, want 100", en.Fired())
	}
}

func TestRunHorizon(t *testing.T) {
	en := NewEngine(1)
	fired := false
	en.Schedule(2*Second, func() { fired = true })
	end := en.Run(1 * Second)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != 1*Second {
		t.Fatalf("Run returned %v, want 1s", end)
	}
	if en.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", en.Pending())
	}
	// A later Run picks the event up.
	en.Run(3 * Second)
	if !fired {
		t.Fatal("event did not fire on the second Run")
	}
}

func TestStop(t *testing.T) {
	en := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		en.Schedule(Time(i)*Microsecond, func() {
			count++
			if count == 3 {
				en.Stop()
			}
		})
	}
	en.Run(Second)
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	en := NewEngine(1)
	var at Time
	en.Schedule(10*Microsecond, func() {
		en.ScheduleAt(0, func() { at = en.Now() })
	})
	en.Run(Second)
	if at != 10*Microsecond {
		t.Fatalf("past event ran at %v, want clamped to 10us", at)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		en := NewEngine(seed)
		var out []int
		for i := 0; i < 50; i++ {
			en.Schedule(Time(en.Uniform(1000))*Microsecond, func() {
				out = append(out, en.Uniform(100))
			})
		}
		en.Run(Second)
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("non-deterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestRunStep(t *testing.T) {
	en := NewEngine(1)
	n := 0
	en.Schedule(Microsecond, func() { n++ })
	en.Schedule(2*Microsecond, func() { n++ })
	if !en.RunStep() || n != 1 {
		t.Fatal("first step")
	}
	if !en.RunStep() || n != 2 {
		t.Fatal("second step")
	}
	if en.RunStep() {
		t.Fatal("step on empty queue reported an event")
	}
}

func TestUniformBounds(t *testing.T) {
	en := NewEngine(7)
	for i := 0; i < 10000; i++ {
		v := en.Uniform(32)
		if v < 0 || v >= 32 {
			t.Fatalf("Uniform out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(0) did not panic")
		}
	}()
	en.Uniform(0)
}

func TestChance(t *testing.T) {
	en := NewEngine(7)
	if en.Chance(0) {
		t.Fatal("Chance(0) returned true")
	}
	if !en.Chance(1) {
		t.Fatal("Chance(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if en.Chance(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Chance(0.3) frequency %v", frac)
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatal("FromSeconds")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds")
	}
	if (1500 * Millisecond).String() != "1.500000s" {
		t.Fatalf("String: %s", (1500 * Millisecond).String())
	}
}

// Property: events always fire in non-decreasing time order, regardless of
// insertion order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delaysRaw []uint32) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		if len(delaysRaw) > 500 {
			delaysRaw = delaysRaw[:500]
		}
		en := NewEngine(1)
		var fired []Time
		for _, d := range delaysRaw {
			en.Schedule(Time(d%1e9), func() { fired = append(fired, en.Now()) })
		}
		en.Run(2 * Second)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delaysRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the complement to
// fire.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(mask []bool) bool {
		if len(mask) > 200 {
			mask = mask[:200]
		}
		en := NewEngine(1)
		fired := make([]bool, len(mask))
		events := make([]Timer, len(mask))
		for i := range mask {
			i := i
			events[i] = en.Schedule(Time(i+1)*Microsecond, func() { fired[i] = true })
		}
		for i, cancel := range mask {
			if cancel {
				events[i].Cancel()
			}
		}
		en.Run(Second)
		for i, cancel := range mask {
			if fired[i] == cancel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
