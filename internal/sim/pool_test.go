package sim

import "testing"

// TestPoolNoResurrect is the safety property of the event free list: a
// Timer held past its event's death must not be able to cancel (or see as
// pending) the recycled event's next occupant.
func TestPoolNoResurrect(t *testing.T) {
	en := NewEngine(1)
	fired := 0

	// Cancel path: a's storage is recycled into b.
	a := en.Schedule(10*Microsecond, func() { fired |= 1 })
	a.Cancel()
	b := en.Schedule(20*Microsecond, func() { fired |= 2 })
	if b.ev != a.ev {
		t.Fatalf("free list did not recycle the cancelled event")
	}
	a.Cancel() // stale handle: must not touch b's schedule
	if a.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if !b.Pending() {
		t.Fatal("stale Cancel resurrected onto the new occupant")
	}
	en.Run(Second)
	if fired != 2 {
		t.Fatalf("fired = %b, want only the second callback", fired)
	}

	// Fire path: c fires, its storage is recycled into d.
	fired = 0
	c := en.Schedule(10*Microsecond, func() { fired |= 1 })
	en.Run(en.Now() + Millisecond)
	d := en.Schedule(10*Microsecond, func() { fired |= 2 })
	if d.ev != c.ev {
		t.Fatalf("free list did not recycle the fired event")
	}
	if c.Pending() {
		t.Fatal("handle to a fired event reports pending")
	}
	c.Cancel()
	if !d.Pending() {
		t.Fatal("stale Cancel after fire killed the new occupant")
	}
	en.Run(en.Now() + Millisecond)
	if fired != 3 {
		t.Fatalf("fired = %b, want both callbacks", fired)
	}
}

// TestZeroTimerInert: the zero Timer must be safe to query and cancel.
func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Pending() {
		t.Fatal("zero Timer pending")
	}
	if _, ok := tm.At(); ok {
		t.Fatal("zero Timer has a fire time")
	}
	tm.Cancel() // must not panic
}

// TestCancelInsideOwnCallback: cancelling the currently executing event's
// own handle from inside its callback is a no-op (the event already left
// the queue) and must not corrupt the pool.
func TestCancelInsideOwnCallback(t *testing.T) {
	en := NewEngine(1)
	var self Timer
	ran := false
	self = en.Schedule(Microsecond, func() {
		ran = true
		self.Cancel()
	})
	en.Schedule(2*Microsecond, func() {})
	en.Run(Second)
	if !ran {
		t.Fatal("callback did not run")
	}
	if en.Fired() != 2 {
		t.Fatalf("fired = %d, want 2", en.Fired())
	}
}

// TestTimerAt reports the scheduled fire time while pending.
func TestTimerAt(t *testing.T) {
	en := NewEngine(1)
	tm := en.Schedule(30*Microsecond, func() {})
	at, ok := tm.At()
	if !ok || at != 30*Microsecond {
		t.Fatalf("At() = %v, %v; want 30us, true", at, ok)
	}
	en.Run(Second)
	if _, ok := tm.At(); ok {
		t.Fatal("At() still ok after fire")
	}
}

// TestScheduleSteadyStateAllocs asserts the tentpole property: once the
// event pool is warm, schedule→fire churn performs zero allocations.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	en := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		en.Schedule(Time(i)*Microsecond, fn)
	}
	en.Run(Second)
	if avg := testing.AllocsPerRun(200, func() {
		en.Schedule(Microsecond, fn)
		en.RunStep()
	}); avg != 0 {
		t.Fatalf("steady-state Schedule/fire allocates %.1f objects per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		tm := en.Schedule(Microsecond, fn)
		tm.Cancel()
	}); avg != 0 {
		t.Fatalf("steady-state Schedule/Cancel allocates %.1f objects per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		en.ScheduleFunc(Microsecond, fn)
		en.RunStep()
	}); avg != 0 {
		t.Fatalf("steady-state ScheduleFunc/fire allocates %.1f objects per op, want 0", avg)
	}
}
