package sim

import "testing"

// BenchmarkEngine exercises the event queue's schedule/fire/cancel churn:
// every fired event schedules a successor plus a second timer that is
// immediately cancelled — the pattern the MAC's backoff/ACK timers
// generate. allocs/op must stay at zero once the event pool is warm.
func BenchmarkEngine(b *testing.B) {
	b.ReportAllocs()
	en := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			en.Schedule(Microsecond, tick)
			t := en.Schedule(2*Microsecond, tick)
			t.Cancel()
		}
	}
	en.Schedule(0, tick)
	en.Run(Time(int64(b.N)+10) * Microsecond)
	if n != b.N {
		b.Fatalf("fired %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineDeepQueue measures heap operations with many pending
// events (the regime of dense topologies): push/pop against a queue that
// stays ~1024 entries deep.
func BenchmarkEngineDeepQueue(b *testing.B) {
	b.ReportAllocs()
	en := NewEngine(1)
	const depth = 1024
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N { // refill to keep the queue ~depth entries deep
			en.Schedule(Time(en.Uniform(1000))*Microsecond, tick)
		}
	}
	for i := 0; i < depth; i++ {
		en.Schedule(Time(en.Uniform(1000))*Microsecond, tick)
	}
	b.ResetTimer()
	for en.Pending() > 0 {
		en.RunStep()
	}
}
