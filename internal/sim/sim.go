// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds, schedules callbacks on
// a binary heap ordered by (time, sequence), and exposes a seeded random
// number generator so that every run is a pure function of its inputs.
// All higher layers of the repository (PHY, MAC, traffic sources, EZ-Flow
// controllers) are driven exclusively by this engine: nothing in the
// simulator reads the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, counted in nanoseconds from the start of
// the run. It intentionally mirrors time.Duration arithmetic: Time(x) + Time
// durations compose with ordinary integer addition.
type Time int64

// Common durations, re-exported so call sites do not need to convert between
// time.Duration and Time by hand.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts a float64 number of seconds into a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Event is a scheduled callback. The zero value is inert.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 when not queued
	dead   bool
	engine *Engine
}

// At reports when the event fires.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.dead || e.index < 0 {
		if e != nil {
			e.dead = true
		}
		return
	}
	e.dead = true
	heap.Remove(&e.engine.queue, e.index)
	e.index = -1
}

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.index >= 0 }

// eventQueue implements heap.Interface ordered by (at, seq). The seq
// tie-break guarantees FIFO ordering among events scheduled for the same
// instant, which keeps runs deterministic.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use: the simulated world is single-threaded by design, which is
// what makes runs reproducible.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	halted bool
	fired  uint64
}

// NewEngine returns an engine whose random generator is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (en *Engine) Now() Time { return en.now }

// Rand exposes the engine's deterministic random source.
func (en *Engine) Rand() *rand.Rand { return en.rng }

// Fired reports how many events have executed so far.
func (en *Engine) Fired() uint64 { return en.fired }

// Pending reports how many events are queued.
func (en *Engine) Pending() int { return len(en.queue) }

// Schedule queues fn to run after delay. A negative delay fires "now" (but
// still strictly after the currently executing event returns).
func (en *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return en.ScheduleAt(en.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute time at. Times in the past are
// clamped to the present.
func (en *Engine) ScheduleAt(at Time, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	if at < en.now {
		at = en.now
	}
	en.seq++
	e := &Event{at: at, seq: en.seq, fn: fn, engine: en}
	heap.Push(&en.queue, e)
	return e
}

// Stop halts the run loop after the currently executing event completes.
func (en *Engine) Stop() { en.halted = true }

// Run executes events until the queue is empty, until is reached, or Stop is
// called. It returns the virtual time at which the loop stopped.
func (en *Engine) Run(until Time) Time {
	en.halted = false
	for len(en.queue) > 0 && !en.halted {
		e := en.queue[0]
		if e.at > until {
			break
		}
		heap.Pop(&en.queue)
		if e.dead {
			continue
		}
		en.now = e.at
		e.dead = true
		en.fired++
		e.fn()
	}
	if en.now < until && !en.halted {
		// Advance the clock to the horizon even if the world went idle.
		en.now = until
	}
	return en.now
}

// RunStep executes exactly one event, if any remain, and reports whether an
// event fired. Used by tests that want to single-step the world.
func (en *Engine) RunStep() bool {
	for len(en.queue) > 0 {
		e := heap.Pop(&en.queue).(*Event)
		if e.dead {
			continue
		}
		en.now = e.at
		e.dead = true
		en.fired++
		e.fn()
		return true
	}
	return false
}

// Uniform returns an integer uniform on [0, n). It panics if n <= 0.
func (en *Engine) Uniform(n int) int {
	if n <= 0 {
		panic("sim: Uniform with non-positive bound")
	}
	return en.rng.Intn(n)
}

// Chance returns true with probability p (clamped to [0,1]).
func (en *Engine) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return en.rng.Float64() < p
}
