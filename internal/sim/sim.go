// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds, schedules callbacks
// on an inlined 4-ary heap ordered by (time, sequence), and exposes a
// seeded random number generator so that every run is a pure function of
// its inputs. All higher layers of the repository (PHY, MAC, traffic
// sources, EZ-Flow controllers) are driven exclusively by this engine:
// nothing in the simulator reads the wall clock.
//
// The engine is built for the hot path. Fired and cancelled events are
// recycled through a free list, so steady-state scheduling does not
// allocate; Timer handles carry a generation counter, so a handle kept
// past its event's lifetime can never cancel the event's next occupant.
// Callers that never cancel should prefer the ScheduleFunc/ScheduleFuncAt
// fast paths, which skip handle construction entirely.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, counted in nanoseconds from the start of
// the run. It intentionally mirrors time.Duration arithmetic: Time(x) + Time
// durations compose with ordinary integer addition.
type Time int64

// Common durations, re-exported so call sites do not need to convert between
// time.Duration and Time by hand.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts a float64 number of seconds into a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is the pooled state of one scheduled callback. Events are owned by
// the engine: they move between the heap and the free list and are never
// exposed to callers directly (Timer is the handle). gen distinguishes the
// lifetimes of successive occupants of the same allocation.
type event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int32 // heap index, -1 when not queued
	gen    uint64
	engine *Engine
}

// Timer is a cancellable handle to a scheduled callback. The zero value is
// inert: Cancel is a no-op and Pending reports false. A Timer remains valid
// forever — once its event has fired or been cancelled, the engine may
// recycle the underlying storage for a new event, and the handle's
// generation check guarantees the stale Timer cannot touch the newcomer.
type Timer struct {
	ev  *event
	gen uint64
}

// Pending reports whether the timer's event is still queued to fire.
func (t Timer) Pending() bool {
	e := t.ev
	return e != nil && e.gen == t.gen && e.index >= 0
}

// At reports when the event fires; the second result is false if the event
// already fired or was cancelled.
func (t Timer) At() (Time, bool) {
	if !t.Pending() {
		return 0, false
	}
	return t.ev.at, true
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled — or a zero Timer — is a no-op, even if
// the engine has recycled the event's storage for a newer schedule.
func (t Timer) Cancel() {
	e := t.ev
	if e == nil || e.gen != t.gen || e.index < 0 {
		return
	}
	en := e.engine
	en.queue.remove(int(e.index))
	en.cancelled++
	en.release(e)
}

// eventHeap is an index-tracked 4-ary min-heap of events ordered by
// (at, seq). The seq tie-break guarantees FIFO ordering among events
// scheduled for the same instant, which keeps runs deterministic. A 4-ary
// layout halves the tree depth of a binary heap and keeps siblings on one
// cache line, and the inlined sift loops avoid the interface dispatch of
// container/heap.
type eventHeap []*event

func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e *event) {
	e.index = int32(len(*h))
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *event {
	q := *h
	e := q[0]
	n := len(q) - 1
	if n > 0 {
		q[0] = q[n]
		q[0].index = 0
	}
	q[n] = nil
	*h = q[:n]
	if n > 1 {
		h.siftDown(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at heap position i.
func (h *eventHeap) remove(i int) {
	q := *h
	n := len(q) - 1
	e := q[i]
	if i != n {
		q[i] = q[n]
		q[i].index = int32(i)
	}
	q[n] = nil
	*h = q[:n]
	if i < n {
		h.siftDown(i)
		h.siftUp(i)
	}
	e.index = -1
}

func (h eventHeap) siftUp(i int) {
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = e
	e.index = int32(i)
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	e := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(h[j], h[m]) {
				m = j
			}
		}
		if !less(h[m], e) {
			break
		}
		h[i] = h[m]
		h[i].index = int32(i)
		i = m
	}
	h[i] = e
	e.index = int32(i)
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use: the simulated world is single-threaded by design, which is
// what makes runs reproducible. (Independent engines may run concurrently;
// the campaign layer relies on that.)
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	rng    *rand.Rand
	halted bool
	fired  uint64
	free   []*event // recycled events; Schedule pops here before allocating
	// cancelled sits after the hot fields: only Timer.Cancel and the
	// observability gauges touch it.
	cancelled uint64
}

// NewEngine returns an engine whose random generator is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (en *Engine) Now() Time { return en.now }

// Rand exposes the engine's deterministic random source.
func (en *Engine) Rand() *rand.Rand { return en.rng }

// Fired reports how many events have executed so far.
func (en *Engine) Fired() uint64 { return en.fired }

// Scheduled reports how many events have ever been scheduled (the
// engine's monotone sequence counter).
func (en *Engine) Scheduled() uint64 { return en.seq }

// Cancelled reports how many scheduled events were cancelled before
// firing.
func (en *Engine) Cancelled() uint64 { return en.cancelled }

// Pending reports how many events are queued.
func (en *Engine) Pending() int { return len(en.queue) }

// get recycles an event from the free list, or allocates one.
func (en *Engine) get() *event {
	if n := len(en.free); n > 0 {
		e := en.free[n-1]
		en.free[n-1] = nil
		en.free = en.free[:n-1]
		return e
	}
	return &event{engine: en, index: -1}
}

// release returns a fired or cancelled event to the free list. Bumping gen
// invalidates every outstanding Timer handle to this occupancy.
func (en *Engine) release(e *event) {
	e.fn = nil
	e.index = -1
	e.gen++
	en.free = append(en.free, e)
}

// schedule queues fn at absolute time at (clamped to the present) and
// returns the backing event.
func (en *Engine) schedule(at Time, fn func()) *event {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	if at < en.now {
		at = en.now
	}
	en.seq++
	e := en.get()
	e.at, e.seq, e.fn = at, en.seq, fn
	en.queue.push(e)
	return e
}

// Schedule queues fn to run after delay and returns a cancellable handle.
// A negative delay fires "now" (but still strictly after the currently
// executing event returns).
func (en *Engine) Schedule(delay Time, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return en.ScheduleAt(en.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute time at and returns a cancellable
// handle. Times in the past are clamped to the present.
func (en *Engine) ScheduleAt(at Time, fn func()) Timer {
	e := en.schedule(at, fn)
	return Timer{ev: e, gen: e.gen}
}

// ScheduleFunc queues fn to run after delay without returning a handle —
// the fast path for fire-and-forget callbacks that are never cancelled
// (PHY completions, periodic samplers, source start/stop).
func (en *Engine) ScheduleFunc(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	en.schedule(en.now+delay, fn)
}

// ScheduleFuncAt queues fn to run at absolute time at without returning a
// handle; see ScheduleFunc.
func (en *Engine) ScheduleFuncAt(at Time, fn func()) {
	en.schedule(at, fn)
}

// Stop halts the run loop after the currently executing event completes.
func (en *Engine) Stop() { en.halted = true }

// Run executes events until the queue is empty, until is reached, or Stop is
// called. It returns the virtual time at which the loop stopped.
func (en *Engine) Run(until Time) Time {
	en.halted = false
	for len(en.queue) > 0 && !en.halted {
		e := en.queue[0]
		if e.at > until {
			break
		}
		en.queue.popMin()
		en.now = e.at
		en.fired++
		fn := e.fn
		en.release(e)
		fn()
	}
	if en.now < until && !en.halted {
		// Advance the clock to the horizon even if the world went idle.
		en.now = until
	}
	return en.now
}

// RunStep executes exactly one event, if any remain, and reports whether an
// event fired. Used by tests that want to single-step the world.
func (en *Engine) RunStep() bool {
	if len(en.queue) == 0 {
		return false
	}
	e := en.queue.popMin()
	en.now = e.at
	en.fired++
	fn := e.fn
	en.release(e)
	fn()
	return true
}

// Uniform returns an integer uniform on [0, n). It panics if n <= 0.
func (en *Engine) Uniform(n int) int {
	if n <= 0 {
		panic("sim: Uniform with non-positive bound")
	}
	return en.rng.Intn(n)
}

// Chance returns true with probability p (clamped to [0,1]).
func (en *Engine) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return en.rng.Float64() < p
}
