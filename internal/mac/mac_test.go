package mac

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// pair builds two MACs 200 m apart on a fresh channel.
func pair(t *testing.T, cfg Config) (*sim.Engine, *phy.Channel, *MAC, *MAC) {
	t.Helper()
	eng := sim.NewEngine(1)
	ch := phy.NewChannel(eng, phy.DefaultConfig())
	a := New(eng, ch, 0, phy.Position{X: 0}, cfg)
	b := New(eng, ch, 1, phy.Position{X: 200}, cfg)
	return eng, ch, a, b
}

func packet(seq uint64) *pkt.Packet {
	return pkt.NewPacket(1, seq, 0, 1, 1000, 0)
}

func TestSingleTransfer(t *testing.T) {
	eng, _, a, b := pair(t, DefaultConfig())
	var got []*pkt.Packet
	b.OnDeliver(func(p *pkt.Packet, from pkt.NodeID) {
		if from != 0 {
			t.Errorf("delivered from %v, want N0", from)
		}
		got = append(got, p)
	})
	q := a.NewQueue(1)
	q.Enqueue(packet(1))
	eng.Run(sim.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if a.TxAcked != 1 || q.Len() != 0 {
		t.Fatalf("acked=%d len=%d", a.TxAcked, q.Len())
	}
}

func TestManyTransfersFIFO(t *testing.T) {
	eng, _, a, b := pair(t, DefaultConfig())
	var got []uint64
	b.OnDeliver(func(p *pkt.Packet, _ pkt.NodeID) { got = append(got, p.Seq) })
	q := a.NewQueue(1)
	const n = 30
	for i := uint64(1); i <= n; i++ {
		q.Enqueue(pkt.NewPacket(1, i, 0, 1, 1000, 0))
	}
	eng.Run(10 * sim.Second)
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
}

func TestQueueOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueCap = 5
	eng, _, a, _ := pair(t, cfg)
	var drops int
	a.AddDropHook(func(p *pkt.Packet, r DropReason) {
		if r != DropQueueOverflow {
			t.Errorf("drop reason %v", r)
		}
		drops++
	})
	q := a.NewQueue(1)
	// Stuff the queue synchronously before the simulator runs: only 5 fit.
	ok := 0
	for i := uint64(1); i <= 10; i++ {
		if q.Enqueue(packet(i)) {
			ok++
		}
	}
	if ok != 5 || drops != 5 {
		t.Fatalf("ok=%d drops=%d, want 5/5", ok, drops)
	}
	if q.PeakDepth != 5 {
		t.Fatalf("peak=%d, want 5", q.PeakDepth)
	}
	eng.Run(sim.Second)
}

func TestRetryOnLostAck(t *testing.T) {
	// 100% loss forward: data never arrives; sender must retry up to the
	// limit and then drop with DropRetryExceeded.
	cfg := DefaultConfig()
	eng, ch, a, b := pair(t, cfg)
	ch.SetLinkLoss(0, 1, 1.0)
	delivered := 0
	b.OnDeliver(func(*pkt.Packet, pkt.NodeID) { delivered++ })
	var dropReason DropReason = -1
	a.AddDropHook(func(_ *pkt.Packet, r DropReason) { dropReason = r })
	q := a.NewQueue(1)
	q.Enqueue(packet(1))
	eng.Run(20 * sim.Second)
	if delivered != 0 {
		t.Fatal("packet delivered across dead link")
	}
	if got := int(a.TxData); got != cfg.RetryLimit {
		t.Fatalf("attempts = %d, want %d", got, cfg.RetryLimit)
	}
	if dropReason != DropRetryExceeded {
		t.Fatalf("drop reason = %v, want retry-exceeded", dropReason)
	}
	if q.Len() != 0 {
		t.Fatal("failed packet still queued")
	}
}

func TestRetryRecovers(t *testing.T) {
	// 50% loss: with 7 attempts nearly everything gets through, and the
	// receiver must deduplicate retransmissions caused by lost ACKs.
	eng, ch, a, b := pair(t, DefaultConfig())
	ch.SetLinkLoss(0, 1, 0.5)
	delivered := make(map[uint64]int)
	b.OnDeliver(func(p *pkt.Packet, _ pkt.NodeID) { delivered[p.Seq]++ })
	q := a.NewQueue(1)
	const n = 50
	for i := uint64(1); i <= n; i++ {
		q.Enqueue(pkt.NewPacket(1, i, 0, 1, 1000, 0))
	}
	eng.Run(60 * sim.Second)
	if len(delivered) < n*9/10 {
		t.Fatalf("only %d/%d packets delivered over 50%% loss", len(delivered), n)
	}
	for seq, count := range delivered {
		if count != 1 {
			t.Fatalf("packet %d delivered %d times (dedup broken)", seq, count)
		}
	}
	if a.TxRetries == 0 {
		t.Fatal("no retries over a 50% lossy link")
	}
}

func TestAckLossDuplicateFiltered(t *testing.T) {
	// Loss only on the reverse (ACK) link: data always arrives, ACKs
	// mostly die, so the receiver sees duplicates and must suppress them.
	eng, ch, a, b := pair(t, DefaultConfig())
	ch.SetLinkLoss(1, 0, 0.9)
	delivered := 0
	b.OnDeliver(func(*pkt.Packet, pkt.NodeID) { delivered++ })
	q := a.NewQueue(1)
	for i := uint64(1); i <= 10; i++ {
		q.Enqueue(pkt.NewPacket(1, i, 0, 1, 1000, 0))
	}
	eng.Run(60 * sim.Second)
	if delivered > 10 {
		t.Fatalf("delivered %d > 10: duplicates leaked to upper layer", delivered)
	}
	if b.RxDup == 0 {
		t.Fatal("expected duplicate receptions with 90% ACK loss")
	}
}

func TestCWminClampHardwareCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HardwareCWCap = 1 << 10
	eng, _, a, _ := pair(t, cfg)
	_ = eng
	q := a.NewQueue(1)
	q.SetCWmin(1 << 12)
	if q.CWmin() != 1<<10 {
		t.Fatalf("cw = %d, want hardware cap 1024", q.CWmin())
	}
	q.SetCWmin(0)
	if q.CWmin() != 1 {
		t.Fatalf("cw = %d, want floor 1", q.CWmin())
	}
	q.SetCWmin(1 << 20)
	if q.CWmin() != 1<<10 {
		t.Fatal("absolute clamp then hardware cap not applied")
	}
}

func TestCWminClampAbsolute(t *testing.T) {
	eng, _, a, _ := pair(t, DefaultConfig())
	_ = eng
	q := a.NewQueue(1)
	q.SetCWmin(1 << 20)
	if q.CWmin() != AbsoluteCWmax {
		t.Fatalf("cw = %d, want 2^15", q.CWmin())
	}
}

func TestRoundRobinQueues(t *testing.T) {
	// One sender with two queues toward two receivers: service should
	// alternate rather than starve either queue.
	eng := sim.NewEngine(1)
	ch := phy.NewChannel(eng, phy.DefaultConfig())
	a := New(eng, ch, 0, phy.Position{X: 0}, DefaultConfig())
	b := New(eng, ch, 1, phy.Position{X: 200}, DefaultConfig())
	c := New(eng, ch, 2, phy.Position{X: 0, Y: 200}, DefaultConfig())
	nb, nc := 0, 0
	b.OnDeliver(func(*pkt.Packet, pkt.NodeID) { nb++ })
	c.OnDeliver(func(*pkt.Packet, pkt.NodeID) { nc++ })
	qb := a.NewQueue(1)
	qc := a.NewQueue(2)
	for i := uint64(1); i <= 20; i++ {
		qb.Enqueue(pkt.NewPacket(1, i, 0, 1, 1000, 0))
		qc.Enqueue(pkt.NewPacket(2, i, 0, 2, 1000, 0))
	}
	eng.Run(5 * sim.Second)
	if nb != 20 || nc != 20 {
		t.Fatalf("nb=%d nc=%d, want 20/20", nb, nc)
	}
	if a.QueueTo(1) != qb || a.QueueTo(2) != qc || a.QueueTo(9) != nil {
		t.Fatal("QueueTo lookup")
	}
}

func TestTapSeesAllFrames(t *testing.T) {
	// A third node in range taps both data and ACK frames of an exchange
	// it is not part of.
	eng := sim.NewEngine(1)
	ch := phy.NewChannel(eng, phy.DefaultConfig())
	a := New(eng, ch, 0, phy.Position{X: 0}, DefaultConfig())
	b := New(eng, ch, 1, phy.Position{X: 200}, DefaultConfig())
	w := New(eng, ch, 2, phy.Position{X: 100, Y: 100}, DefaultConfig())
	_ = b
	var data, acks int
	w.AddTap(func(f *pkt.Frame, ci pkt.CaptureInfo) {
		if !ci.OnAir || ci.Listener != 2 {
			t.Errorf("capture info wrong: %+v", ci)
		}
		switch f.Type {
		case pkt.FrameData:
			data++
		case pkt.FrameAck:
			acks++
		}
	})
	q := a.NewQueue(1)
	for i := uint64(1); i <= 5; i++ {
		q.Enqueue(pkt.NewPacket(1, i, 0, 1, 1000, 0))
	}
	eng.Run(5 * sim.Second)
	if data != 5 || acks != 5 {
		t.Fatalf("tap saw data=%d acks=%d, want 5/5", data, acks)
	}
}

func TestTxNotifyFirstAttemptOnly(t *testing.T) {
	eng, ch, a, _ := pair(t, DefaultConfig())
	ch.SetLinkLoss(0, 1, 1.0)
	notifies := 0
	a.AddTxNotify(func(f *pkt.Frame) { notifies++ })
	q := a.NewQueue(1)
	q.Enqueue(packet(1))
	eng.Run(20 * sim.Second)
	if notifies != 1 {
		t.Fatalf("tx notify fired %d times, want 1 (retries excluded)", notifies)
	}
	if a.TxRetries == 0 {
		t.Fatal("expected retries")
	}
}

func TestBackoffContention(t *testing.T) {
	// Two saturated senders toward a common receiver: both must make
	// progress (no starvation, no deadlock) and their shares should be
	// roughly even.
	eng := sim.NewEngine(1)
	ch := phy.NewChannel(eng, phy.DefaultConfig())
	cfg := DefaultConfig()
	cfg.QueueCap = 1000
	a := New(eng, ch, 0, phy.Position{X: 0}, cfg)
	b := New(eng, ch, 1, phy.Position{X: 100, Y: 100}, cfg)
	r := New(eng, ch, 2, phy.Position{X: 100}, cfg)
	got := map[pkt.NodeID]int{}
	r.OnDeliver(func(p *pkt.Packet, from pkt.NodeID) { got[from]++ })
	qa := a.NewQueue(2)
	qb := b.NewQueue(2)
	for i := uint64(1); i <= 400; i++ {
		qa.Enqueue(pkt.NewPacket(1, i, 0, 2, 1000, 0))
		qb.Enqueue(pkt.NewPacket(2, i, 1, 2, 1000, 0))
	}
	eng.Run(60 * sim.Second)
	if got[0] == 0 || got[1] == 0 {
		t.Fatalf("starvation: %v", got)
	}
	ratio := float64(got[0]) / float64(got[1])
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("unfair shares %v (ratio %.2f)", got, ratio)
	}
}

func TestHigherCWGetsLessAccess(t *testing.T) {
	// The control surface EZ-Flow relies on: quadrupling a sender's CWmin
	// must reduce its share of a contended channel.
	eng := sim.NewEngine(1)
	ch := phy.NewChannel(eng, phy.DefaultConfig())
	cfg := DefaultConfig()
	cfg.QueueCap = 20000
	a := New(eng, ch, 0, phy.Position{X: 0}, cfg)
	b := New(eng, ch, 1, phy.Position{X: 100, Y: 100}, cfg)
	r := New(eng, ch, 2, phy.Position{X: 100}, cfg)
	got := map[pkt.NodeID]int{}
	r.OnDeliver(func(p *pkt.Packet, from pkt.NodeID) { got[from]++ })
	qa := a.NewQueue(2)
	qa.SetCWmin(256)
	qb := b.NewQueue(2)
	for i := uint64(1); i <= 20000; i++ {
		qa.Enqueue(pkt.NewPacket(1, i, 0, 2, 1000, 0))
		qb.Enqueue(pkt.NewPacket(2, i, 1, 2, 1000, 0))
	}
	eng.Run(60 * sim.Second)
	if got[0] == 0 {
		t.Fatal("high-CW sender fully starved")
	}
	if float64(got[0]) > 0.7*float64(got[1]) {
		t.Fatalf("CWmin had no effect: %v", got)
	}
}

func TestRTSCTSExchange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseRTSCTS = true
	eng, _, a, b := pair(t, cfg)
	delivered := 0
	b.OnDeliver(func(*pkt.Packet, pkt.NodeID) { delivered++ })
	q := a.NewQueue(1)
	for i := uint64(1); i <= 10; i++ {
		q.Enqueue(pkt.NewPacket(1, i, 0, 1, 1000, 0))
	}
	eng.Run(10 * sim.Second)
	if delivered != 10 {
		t.Fatalf("RTS/CTS mode delivered %d/10", delivered)
	}
}

func TestConfigDefaults(t *testing.T) {
	eng := sim.NewEngine(1)
	ch := phy.NewChannel(eng, phy.DefaultConfig())
	m := New(eng, ch, 0, phy.Position{}, Config{})
	if m.Config().CWmin != DefaultCWmin || m.Config().RetryLimit != DefaultRetryLimit ||
		m.Config().QueueCap != DefaultQueueCap {
		t.Fatalf("zero config not defaulted: %+v", m.Config())
	}
	if m.ID() != 0 {
		t.Fatal("ID")
	}
	if m.String() == "" {
		t.Fatal("String")
	}
}

// Property: for any CWmin request, the effective value is within
// [1, min(AbsoluteCWmax, cap)] — the CAA depends on this clamp.
func TestPropertyCWClamp(t *testing.T) {
	f := func(req int32, capRaw uint16) bool {
		eng := sim.NewEngine(1)
		ch := phy.NewChannel(eng, phy.DefaultConfig())
		cfg := DefaultConfig()
		cap := int(capRaw)
		cfg.HardwareCWCap = cap
		m := New(eng, ch, 0, phy.Position{}, cfg)
		q := m.NewQueue(1)
		q.SetCWmin(int(req))
		got := q.CWmin()
		if got < 1 || got > AbsoluteCWmax {
			return false
		}
		if cap > 0 && got > cap {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: conservation — everything enqueued is either still queued,
// delivered, or dropped (overflow/retry), under random loss.
func TestPropertyPacketConservation(t *testing.T) {
	f := func(lossRaw uint8, nRaw uint8) bool {
		loss := float64(lossRaw%90) / 100
		n := int(nRaw%100) + 1
		eng := sim.NewEngine(int64(lossRaw)*251 + int64(nRaw))
		ch := phy.NewChannel(eng, phy.DefaultConfig())
		a := New(eng, ch, 0, phy.Position{X: 0}, DefaultConfig())
		b := New(eng, ch, 1, phy.Position{X: 200}, DefaultConfig())
		ch.SetLinkLoss(0, 1, loss)
		delivered := 0
		b.OnDeliver(func(*pkt.Packet, pkt.NodeID) { delivered++ })
		drops := 0
		a.AddDropHook(func(*pkt.Packet, DropReason) { drops++ })
		q := a.NewQueue(1)
		accepted := 0
		for i := uint64(1); i <= uint64(n); i++ {
			if q.Enqueue(pkt.NewPacket(1, i, 0, 1, 1000, 0)) {
				accepted++
			}
		}
		eng.Run(120 * sim.Second)
		return accepted+drops == n && delivered+drops+q.Len() == n ||
			// accepted excludes overflow drops, which the hook counts too
			delivered+q.Len()+drops == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

func TestAIFSDefaultsMatchDIFS(t *testing.T) {
	eng, _, a, _ := pair(t, DefaultConfig())
	_ = eng
	q := a.NewQueue(1)
	if q.AIFSSlots() != 2 {
		t.Fatalf("default AIFS %d slots, want 2 (legacy DIFS)", q.AIFSSlots())
	}
	if q.ifs() != DIFS {
		t.Fatalf("default ifs %v, want DIFS %v", q.ifs(), DIFS)
	}
	q.SetAIFSSlots(0)
	if q.AIFSSlots() != 1 {
		t.Fatal("AIFS floor not applied")
	}
}

func TestAIFSDifferentiatesAccess(t *testing.T) {
	// Two saturated senders with equal CWmin but different AIFS: the
	// low-AIFS (high-priority) sender must win a clearly larger share —
	// the 802.11e mechanism behind the paper's §7 multi-queue extension.
	eng := sim.NewEngine(1)
	ch := phy.NewChannel(eng, phy.DefaultConfig())
	cfg := DefaultConfig()
	cfg.QueueCap = 20000
	a := New(eng, ch, 0, phy.Position{X: 0}, cfg)
	b := New(eng, ch, 1, phy.Position{X: 100, Y: 100}, cfg)
	r := New(eng, ch, 2, phy.Position{X: 100}, cfg)
	got := map[pkt.NodeID]int{}
	r.OnDeliver(func(p *pkt.Packet, from pkt.NodeID) { got[from]++ })
	qa := a.NewQueue(2)
	qa.SetAIFSSlots(12) // low priority
	qb := b.NewQueue(2) // default: high priority
	for i := uint64(1); i <= 20000; i++ {
		qa.Enqueue(pkt.NewPacket(1, i, 0, 2, 1000, 0))
		qb.Enqueue(pkt.NewPacket(2, i, 1, 2, 1000, 0))
	}
	eng.Run(60 * sim.Second)
	if got[0] == 0 {
		t.Fatal("low-priority sender fully starved")
	}
	if float64(got[0]) > 0.8*float64(got[1]) {
		t.Fatalf("AIFS had no differentiation effect: %v", got)
	}
}
