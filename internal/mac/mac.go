// Package mac implements the IEEE 802.11 Distributed Coordination Function
// (DCF) over the phy channel: DIFS/SIFS/slot timing, uniform backoff in
// [0, cw-1] with freezing, exponential retry backoff, positive ACKs with a
// retry limit, optional RTS/CTS, and per-node FIFO transmit queues of
// bounded capacity (50 packets by default, the "standard MAC buffer" the
// paper calls out).
//
// Two properties matter to EZ-Flow and are first-class here:
//
//   - Each node can maintain several transmit queues (one per successor
//     plus one for self-originated traffic, as §3.1 of the paper requires),
//     and each queue carries its own CWmin that an external controller may
//     change at any time — the only control surface EZ-Flow uses, mirroring
//     the MadWifi iwconfig knob. An optional hardware cap reproduces the
//     testbed's 2^10 ceiling.
//
//   - Every frame decoded at a node is passed to promiscuous taps
//     (monitor mode), which is how the Buffer Occupancy Estimator overhears
//     the successor's forwarding without message passing.
package mac

import (
	"fmt"

	"ezflow/internal/obs"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Timing constants for IEEE 802.11b (long preamble handled by phy).
const (
	SlotTime = 20 * sim.Microsecond
	SIFS     = 10 * sim.Microsecond
	DIFS     = SIFS + 2*SlotTime // 50 us
)

// Default contention and queueing parameters.
const (
	// DefaultCWmin is the standard 802.11b minimum contention window.
	DefaultCWmin = 32
	// RetryCWmax bounds the exponential retry backoff.
	RetryCWmax = 1024
	// AbsoluteCWmax is the largest value any contention window may take
	// (the paper's maxcw = 2^15).
	AbsoluteCWmax = 1 << 15
	// DefaultRetryLimit is the number of transmission attempts before a
	// frame is dropped.
	DefaultRetryLimit = 7
	// DefaultQueueCap is the standard MAC buffer of 50 packets.
	DefaultQueueCap = 50
)

// Config parameterises a MAC instance.
type Config struct {
	CWmin      int  // initial per-queue CWmin (power of two)
	RetryLimit int  // attempts before dropping
	QueueCap   int  // per-queue capacity in packets
	UseRTSCTS  bool // enable the RTS/CTS exchange (off in the paper)
	// HardwareCWCap, if non-zero, silently clamps any CWmin set on a
	// queue, reproducing the MadWifi 2^10 limitation of §4.1.
	HardwareCWCap int
}

// DefaultConfig returns the paper's MAC settings.
func DefaultConfig() Config {
	return Config{
		CWmin:      DefaultCWmin,
		RetryLimit: DefaultRetryLimit,
		QueueCap:   DefaultQueueCap,
	}
}

// DeliverFunc receives packets whose MAC destination is this node.
type DeliverFunc func(p *pkt.Packet, from pkt.NodeID)

// TapFunc observes every frame decoded at this node (monitor mode).
type TapFunc func(f *pkt.Frame, ci pkt.CaptureInfo)

// TxNotifyFunc observes every data frame this node puts on the air
// (first attempt only, not retries). EZ-Flow's BOE registers one to record
// sent identifiers exactly when they are truly transmitted physically.
type TxNotifyFunc func(f *pkt.Frame)

// TxStampFunc runs on every outgoing data frame — every attempt, retries
// included — before the frame's air time is computed, so it may piggyback
// header fields (Frame.HasBP/BPLen, Frame.QueueTag) that change what goes
// on the air. Controllers register stamps via AddTxStamp; the frame's
// Retry bit is already set when stamps run.
type TxStampFunc func(f *pkt.Frame)

// DropFunc observes packets dropped by this MAC with a reason.
type DropFunc func(p *pkt.Packet, reason DropReason)

// DropReason explains a packet drop.
type DropReason int

const (
	// DropQueueOverflow marks a packet rejected by a full transmit queue.
	DropQueueOverflow DropReason = iota
	// DropRetryExceeded marks a frame abandoned after the retry limit.
	DropRetryExceeded
	// DropHalted marks a packet discarded because its node's radio was
	// powered off with queue flushing (node-churn fault injection).
	DropHalted
)

// String names the drop reason for logs and reports.
func (r DropReason) String() string {
	switch r {
	case DropQueueOverflow:
		return "queue-overflow"
	case DropRetryExceeded:
		return "retry-exceeded"
	case DropHalted:
		return "halted"
	default:
		return "unknown"
	}
}

// cause maps the drop reason to the flight recorder's cause code.
func (r DropReason) cause() obs.Cause {
	switch r {
	case DropQueueOverflow:
		return obs.CauseQueueOverflow
	case DropRetryExceeded:
		return obs.CauseRetryExceeded
	case DropHalted:
		return obs.CauseHalted
	default:
		return obs.CauseNone
	}
}

// Queue is a bounded FIFO transmit queue with its own CWmin and AIFS —
// the two knobs IEEE 802.11e EDCA differentiates access categories by,
// which the paper's §7 extension repurposes as per-successor queues.
type Queue struct {
	mac       *MAC
	id        int
	next      pkt.NodeID // MAC next hop for everything in this queue
	buf       []*pkt.Packet
	cwMin     int
	aifsSlots int // idle slots after SIFS before backoff (2 = legacy DIFS)

	// onEnqueue/onDequeue are the controller hooks of internal/ctl: they
	// observe each packet accepted into the queue and each packet leaving
	// it through the MAC (acknowledged or dropped at the retry limit).
	// Flush bypasses onDequeue: a flushed queue is a halted radio's, not a
	// scheduling event. Nil hooks cost one branch.
	onEnqueue func(*pkt.Packet)
	onDequeue func(*pkt.Packet)

	// Enqueued counts packets accepted into the queue.
	Enqueued uint64
	// Dropped counts packets the queue itself discarded (overflow plus
	// flush; retry-limit drops are the MAC's, see DroppedRetry).
	Dropped uint64
	// Dequeued counts packets that left through the MAC.
	Dequeued uint64
	// PeakDepth is the high-water mark of the queue depth.
	PeakDepth int

	// Per-reason drop counters (observability; Dropped keeps its historic
	// overflow+flush semantics). DroppedRetry counts head packets the MAC
	// abandoned at the retry limit while this queue owned the attempt.
	DroppedOverflow uint64
	// DroppedFlush counts packets discarded by Flush (halted radio).
	DroppedFlush uint64
	// DroppedRetry counts retry-limit drops charged to this queue.
	DroppedRetry uint64
	// Retries counts re-transmission attempts of this queue's head
	// packets — the per-link retry signal of the observability layer.
	Retries uint64
	// CWChanges counts effective SetCWmin changes — how often a
	// controller actually moved this queue's window.
	CWChanges uint64
}

// NextHop reports the queue's MAC next hop.
func (q *Queue) NextHop() pkt.NodeID { return q.next }

// Len reports the instantaneous queue depth (the b_k of the paper).
func (q *Queue) Len() int { return len(q.buf) }

// CWmin reports the queue's current minimum contention window.
func (q *Queue) CWmin() int { return q.cwMin }

// AIFSSlots reports the queue's arbitration inter-frame space in slots
// after SIFS (2 corresponds to the legacy DIFS).
func (q *Queue) AIFSSlots() int { return q.aifsSlots }

// SetAIFSSlots sets the queue's AIFS in slots after SIFS; values below 1
// are clamped to 1 (802.11e forbids shorter-than-PIFS data access).
func (q *Queue) SetAIFSSlots(n int) {
	if n < 1 {
		n = 1
	}
	q.aifsSlots = n
}

// SetHooks registers the queue's enqueue/dequeue observers (either may be
// nil). At most one pair is supported — a second call replaces the first —
// because exactly one controller owns a queue at a time.
func (q *Queue) SetHooks(onEnqueue, onDequeue func(*pkt.Packet)) {
	q.onEnqueue = onEnqueue
	q.onDequeue = onDequeue
}

// ifs is the inter-frame space this queue defers before backoff.
func (q *Queue) ifs() sim.Time {
	return SIFS + sim.Time(q.aifsSlots)*SlotTime
}

// SetCWmin updates the queue's minimum contention window, clamping to the
// hardware cap if one is configured and to the absolute bound 2^15.
// Values below 1 are rejected. This is the only knob EZ-Flow turns.
func (q *Queue) SetCWmin(cw int) {
	if cw < 1 {
		cw = 1
	}
	if cw > AbsoluteCWmax {
		cw = AbsoluteCWmax
	}
	if cap := q.mac.cfg.HardwareCWCap; cap > 0 && cw > cap {
		cw = cap
	}
	if cw != q.cwMin {
		q.CWChanges++
	}
	q.cwMin = cw
}

// Enqueue appends p; it reports false (and counts a drop) on overflow.
// On success the queue takes its own reference on p (released when the
// packet leaves the queue), so callers keep whatever references they hold.
func (q *Queue) Enqueue(p *pkt.Packet) bool {
	if len(q.buf) >= q.mac.cfg.QueueCap {
		q.Dropped++
		q.DroppedOverflow++
		q.mac.record(obs.KindDrop, obs.CauseQueueOverflow, q.next, p)
		q.mac.notifyDrop(p, DropQueueOverflow)
		return false
	}
	p.Retain()
	q.buf = append(q.buf, p)
	q.Enqueued++
	if len(q.buf) > q.PeakDepth {
		q.PeakDepth = len(q.buf)
	}
	q.mac.record(obs.KindEnqueue, obs.CauseNone, q.next, p)
	if q.onEnqueue != nil {
		q.onEnqueue(p)
	}
	q.mac.kick()
	return true
}

// Flush discards every buffered packet, releasing the queue's references
// and notifying drop hooks with DropHalted. It reports how many packets
// were discarded. The dynamics layer uses it for node churn with drop
// semantics; a Flush never runs while one of the queue's packets is the
// MAC's current attempt unless the MAC was halted first.
func (q *Queue) Flush() int {
	n := len(q.buf)
	for i, p := range q.buf {
		q.Dropped++
		q.DroppedFlush++
		q.mac.record(obs.KindDrop, obs.CauseHalted, q.next, p)
		q.mac.notifyDrop(p, DropHalted)
		p.Release()
		q.buf[i] = nil
	}
	q.buf = q.buf[:0]
	return n
}

func (q *Queue) head() *pkt.Packet {
	if len(q.buf) == 0 {
		return nil
	}
	return q.buf[0]
}

func (q *Queue) pop() *pkt.Packet {
	p := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf[len(q.buf)-1] = nil
	q.buf = q.buf[:len(q.buf)-1]
	q.Dequeued++
	if q.onDequeue != nil {
		q.onDequeue(p)
	}
	return p
}

// txState enumerates the transmitter's DCF state.
type txState int

const (
	stIdle      txState = iota // nothing to send
	stDefer                    // waiting for the medium + DIFS + backoff
	stCountdown                // backoff slots actively counting down
	stTxData                   // data (or RTS) frame on the air
	stWaitCTS                  // RTS sent, waiting for CTS
	stWaitAck                  // data sent, waiting for ACK
	stTxCtl                    // sending a control response (ACK/CTS)
)

// MAC is one station's 802.11 DCF instance.
type MAC struct {
	id   pkt.NodeID
	eng  *sim.Engine
	ch   *phy.Channel
	st   *phy.Station // this node's PHY handle; transmissions skip the id lookup
	pool *pkt.Pool
	cfg  Config

	queues  []*Queue
	rr      int // round-robin cursor over queues
	deliver DeliverFunc
	taps    []TapFunc
	txHooks []TxNotifyFunc
	stamps  []TxStampFunc
	drops   []DropFunc

	state      txState
	down       bool     // radio halted (node churn); see SetDown
	txEnd      sim.Time // when this node's latest own transmission leaves the air
	busyMedium bool
	useEIFS    bool     // defer EIFS (not DIFS) after an erroneous reception
	slots      int      // backoff slots remaining
	cntStart   sim.Time // when the current countdown began
	cntIFS     sim.Time // the inter-frame space used by this countdown
	timer      sim.Timer
	cur        *Queue   // queue that owns the current attempt
	attempts   int      // attempts for the head frame of cur
	retryCW    int      // current retry contention window
	navUntil   sim.Time // virtual carrier sense (RTS/CTS)
	pendingCtl *pkt.Frame
	ctlSaved   txState           // state to restore after a control response
	lastSeq    map[dupKey]uint64 // duplicate filter, one flat lookup per decode

	// Bound callbacks, built once in New so the per-frame timers (backoff
	// expiry, ACK timeout, air-time completion, SIFS-deferred responses)
	// schedule without allocating a closure.
	accessWonFn  func()
	ackTimeoutFn func()
	dataEndFn    func()
	rtsEndFn     func()
	sendDataFn   func()
	sendCtlFn    func()
	ctlDoneFn    func()
	kickFn       func()

	// Stats
	TxData    uint64
	TxRetries uint64
	TxAcked   uint64
	TxFailed  uint64
	RxData    uint64
	RxDup     uint64

	// rec is the attached packet flight recorder; nil (the default) costs
	// one branch per lifecycle event. See SetRecorder.
	rec *obs.FlightRecorder
}

// New creates a MAC for node id at pos, registering it on the channel.
func New(eng *sim.Engine, ch *phy.Channel, id pkt.NodeID, pos phy.Position, cfg Config) *MAC {
	if cfg.CWmin <= 0 {
		cfg.CWmin = DefaultCWmin
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = DefaultRetryLimit
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	m := &MAC{
		id:      id,
		eng:     eng,
		ch:      ch,
		pool:    ch.Pool(),
		cfg:     cfg,
		lastSeq: make(map[dupKey]uint64),
	}
	m.accessWonFn = m.accessWon
	m.ackTimeoutFn = m.ackTimeout
	m.dataEndFn = func() {
		if m.state == stTxData {
			m.state = stWaitAck
		}
	}
	m.rtsEndFn = func() {
		if m.state == stTxData {
			m.state = stWaitCTS
		}
	}
	m.sendDataFn = m.sendData
	m.sendCtlFn = m.sendCtl
	m.ctlDoneFn = m.ctlDone
	m.kickFn = m.kick
	m.st = ch.AddNode(id, pos, m)
	return m
}

// dupKey identifies one (transmitter, flow) stream in the duplicate
// filter.
type dupKey struct {
	src  pkt.NodeID
	flow pkt.FlowID
}

// ID reports the node id.
func (m *MAC) ID() pkt.NodeID { return m.id }

// Config returns the MAC configuration.
func (m *MAC) Config() Config { return m.cfg }

// OnDeliver sets the callback for packets MAC-addressed to this node.
func (m *MAC) OnDeliver(f DeliverFunc) { m.deliver = f }

// AddTap registers a promiscuous tap (monitor mode).
func (m *MAC) AddTap(t TapFunc) { m.taps = append(m.taps, t) }

// AddTxNotify registers an on-air transmit observer.
func (m *MAC) AddTxNotify(t TxNotifyFunc) { m.txHooks = append(m.txHooks, t) }

// AddTxStamp registers a per-attempt outgoing-frame stamp (see
// TxStampFunc).
func (m *MAC) AddTxStamp(s TxStampFunc) { m.stamps = append(m.stamps, s) }

// AddDropHook registers a drop observer.
func (m *MAC) AddDropHook(d DropFunc) { m.drops = append(m.drops, d) }

// SetRecorder attaches a packet flight recorder (nil detaches). Every
// queue lifecycle event at this MAC — enqueue, tx-attempt, retry,
// acknowledged dequeue, drop with reason — is recorded. Recording writes
// only into the recorder's ring, so attaching one cannot change the
// simulation's behaviour.
func (m *MAC) SetRecorder(rec *obs.FlightRecorder) { m.rec = rec }

// record writes one flight-recorder event for p at this node. The nil
// check lives here (not in obs) so the disabled path pays a branch and
// no call.
func (m *MAC) record(k obs.Kind, cause obs.Cause, peer pkt.NodeID, p *pkt.Packet) {
	if m.rec != nil {
		m.rec.Record(m.eng.Now(), k, cause, m.id, peer, p.Flow, p.Seq)
	}
}

func (m *MAC) notifyDrop(p *pkt.Packet, r DropReason) {
	for _, d := range m.drops {
		d(p, r)
	}
}

// NewQueue creates a transmit queue toward next with the MAC's default
// CWmin and the legacy DIFS arbitration space. Queues are served in
// round-robin order.
func (m *MAC) NewQueue(next pkt.NodeID) *Queue {
	q := &Queue{mac: m, id: len(m.queues), next: next, cwMin: m.cfg.CWmin, aifsSlots: 2}
	m.queues = append(m.queues, q)
	return q
}

// Queues returns all transmit queues.
func (m *MAC) Queues() []*Queue { return m.queues }

// QueueTo returns the first queue whose next hop is next, or nil.
func (m *MAC) QueueTo(next pkt.NodeID) *Queue {
	for _, q := range m.queues {
		if q.next == next {
			return q
		}
	}
	return nil
}

// QueuedTo reports the packets buffered across every queue whose next hop
// is next — the per-successor backlog a backpressure controller
// advertises. It allocates nothing.
func (m *MAC) QueuedTo(next pkt.NodeID) int {
	n := 0
	for _, q := range m.queues {
		if q.next == next {
			n += len(q.buf)
		}
	}
	return n
}

// SetDown powers the station's radio off (true) or back on (false) — the
// node-churn primitive of the dynamics layer. A halted MAC abandons its
// current access attempt, sends no frames (not even ACKs), and ignores
// everything it would otherwise decode, so neighbours see it exactly as a
// dead station: their retries time out and their frames drop. Queued
// packets are kept by default and drain when the radio returns; callers
// that want a cold restart flush the queues explicitly (FlushQueues).
// A frame already on the air when the radio goes down completes its
// flight — receivers cannot tell, and the engine's event for it is
// already committed; a restart within that flight defers its first
// channel access until the flight ends, since the radio is half-duplex.
func (m *MAC) SetDown(down bool) {
	if m.down == down {
		return
	}
	m.down = down
	if down {
		m.timer.Cancel()
		if m.pendingCtl != nil {
			m.pool.PutFrame(m.pendingCtl)
			m.pendingCtl = nil
		}
		m.cur = nil
		m.attempts = 0
		m.retryCW = 0
		m.state = stIdle
		return
	}
	if m.eng.Now() < m.txEnd {
		m.eng.ScheduleFuncAt(m.txEnd, m.kickFn)
		return
	}
	m.kick()
}

// Down reports whether the radio is currently halted.
func (m *MAC) Down() bool { return m.down }

// FlushQueues discards every buffered packet in every queue, counting
// each as a DropHalted. It returns the number of packets discarded.
func (m *MAC) FlushQueues() int {
	n := 0
	for _, q := range m.queues {
		n += q.Flush()
	}
	return n
}

// TotalQueued reports the number of packets buffered across all queues.
func (m *MAC) TotalQueued() int {
	n := 0
	for _, q := range m.queues {
		n += len(q.buf)
	}
	return n
}

// --- phy.Radio implementation -------------------------------------------

// CarrierBusy implements phy.Radio.
func (m *MAC) CarrierBusy(busy bool) {
	m.busyMedium = busy
	if busy {
		m.freeze()
		return
	}
	m.resume()
}

// Receive implements phy.Radio: frames MAC-addressed to this node.
func (m *MAC) Receive(f *pkt.Frame) {
	if m.down {
		return
	}
	switch f.Type {
	case pkt.FrameData:
		m.rxData(f)
	case pkt.FrameAck:
		m.rxAck(f)
	case pkt.FrameRTS:
		m.rxRTS(f)
	case pkt.FrameCTS:
		m.rxCTS(f)
	}
}

// ReceiveError implements phy.Radio: a decodable frame was destroyed by a
// collision, so the next channel access defers EIFS instead of DIFS.
func (m *MAC) ReceiveError() {
	if m.down {
		return
	}
	m.useEIFS = true
}

// Overhear implements phy.Radio: every decoded frame, for taps and NAV.
func (m *MAC) Overhear(f *pkt.Frame, ci pkt.CaptureInfo) {
	if m.down {
		return
	}
	// A correctly decoded frame resynchronises the station: EIFS no
	// longer applies (IEEE 802.11 §9.2.3.4).
	m.useEIFS = false
	// Virtual carrier sense from overheard RTS/CTS addressed elsewhere.
	if (f.Type == pkt.FrameRTS || f.Type == pkt.FrameCTS) && f.TxDst != m.id {
		if until := m.eng.Now() + f.NAV; until > m.navUntil {
			m.navUntil = until
		}
	}
	for _, t := range m.taps {
		t(f, ci)
	}
}

// --- receive paths --------------------------------------------------------

func (m *MAC) rxData(f *pkt.Frame) {
	// Always acknowledge a correctly decoded unicast data frame, even a
	// duplicate (the original ACK may have been lost).
	ack := m.pool.Frame()
	ack.Type, ack.TxSrc, ack.TxDst = pkt.FrameAck, m.id, f.TxSrc
	m.scheduleCtl(ack)
	p := f.Payload
	if p == nil {
		return
	}
	k := dupKey{f.TxSrc, p.Flow}
	if last, seen := m.lastSeq[k]; seen && last == p.Seq {
		m.RxDup++
		return
	}
	m.lastSeq[k] = p.Seq
	m.RxData++
	if m.deliver != nil {
		m.deliver(p, f.TxSrc)
	}
}

func (m *MAC) rxAck(f *pkt.Frame) {
	if m.state != stWaitAck || m.cur == nil || f.TxSrc != m.cur.next {
		return
	}
	m.timer.Cancel()
	m.TxAcked++
	if m.rec != nil {
		m.record(obs.KindDequeue, obs.CauseAcked, m.cur.next, m.cur.head())
	}
	m.cur.pop().Release()
	m.cur = nil
	m.attempts = 0
	m.retryCW = 0
	m.state = stIdle
	m.kick()
}

func (m *MAC) rxRTS(f *pkt.Frame) {
	if m.eng.Now() < m.navUntil {
		return // our NAV says the medium is reserved; stay silent
	}
	nav := f.NAV - SIFS - m.ch.AirTime(pkt.CTSBytes)
	if nav < 0 {
		nav = 0
	}
	cts := m.pool.Frame()
	cts.Type, cts.TxSrc, cts.TxDst, cts.NAV = pkt.FrameCTS, m.id, f.TxSrc, nav
	m.scheduleCtl(cts)
}

func (m *MAC) rxCTS(f *pkt.Frame) {
	if m.state != stWaitCTS || m.cur == nil || f.TxSrc != m.cur.next {
		return
	}
	m.timer.Cancel()
	// Send the data frame after SIFS.
	m.state = stTxCtl // transiently; sendData moves us to stTxData
	m.eng.ScheduleFunc(SIFS, m.sendDataFn)
}

// scheduleCtl queues a control response (ACK or CTS) to go out after SIFS.
// At most one response is pending at a time; a newer one replaces (and
// recycles) an older response that has not gone out yet.
func (m *MAC) scheduleCtl(f *pkt.Frame) {
	if m.pendingCtl != nil {
		m.pool.PutFrame(m.pendingCtl)
	}
	m.pendingCtl = f
	m.eng.ScheduleFunc(SIFS, m.sendCtlFn)
}

// sendCtl fires SIFS after a control response was queued and puts it on
// the air if the transmitter is free.
func (m *MAC) sendCtl() {
	ctl := m.pendingCtl
	m.pendingCtl = nil
	if ctl == nil {
		return
	}
	if m.state == stTxData || m.state == stTxCtl || m.state == stWaitCTS {
		m.pool.PutFrame(ctl)
		return // transmitter occupied; give up on the response
	}
	// A control response preempts any countdown in progress; the frozen
	// backoff resumes afterwards.
	prev := m.state
	if prev == stCountdown {
		m.freeze()
		m.state = stDefer
	}
	m.ctlSaved = m.state
	m.state = stTxCtl
	end := m.ch.TransmitFrom(m.st, ctl)
	m.txEnd = end
	m.eng.ScheduleFuncAt(end, m.ctlDoneFn)
}

// ctlDone restores the pre-response state once the control frame has left
// the air.
func (m *MAC) ctlDone() {
	if m.state != stTxCtl {
		return
	}
	m.state = m.ctlSaved
	if m.cur != nil || m.anyBacklog() {
		if m.state == stIdle {
			m.kick()
		} else {
			m.resume()
		}
	} else {
		m.state = stIdle
	}
}

// --- transmit path ---------------------------------------------------------

// kick starts an access attempt if the transmitter is idle and traffic is
// waiting.
func (m *MAC) kick() {
	if m.state != stIdle || m.down {
		return
	}
	q := m.selectQueue()
	if q == nil {
		return
	}
	m.cur = q
	m.attempts = 0
	m.retryCW = q.cwMin
	m.beginContention()
}

// selectQueue picks the next non-empty queue in round-robin order.
func (m *MAC) selectQueue() *Queue {
	n := len(m.queues)
	for i := 0; i < n; i++ {
		q := m.queues[(m.rr+i)%n]
		if len(q.buf) > 0 {
			m.rr = (m.rr + i + 1) % n
			return q
		}
	}
	return nil
}

func (m *MAC) anyBacklog() bool {
	for _, q := range m.queues {
		if len(q.buf) > 0 {
			return true
		}
	}
	return false
}

// beginContention draws a fresh backoff and starts deferring.
func (m *MAC) beginContention() {
	cw := m.retryCW
	if cw < 1 {
		cw = 1
	}
	m.slots = m.eng.Uniform(cw)
	m.state = stDefer
	m.resume()
}

// resume (re)starts the DIFS + backoff countdown if the medium allows.
func (m *MAC) resume() {
	if m.state != stDefer && m.state != stCountdown {
		return
	}
	if m.busyMedium {
		m.state = stDefer
		return
	}
	if m.timer.Pending() {
		return
	}
	ifs := DIFS
	if m.cur != nil {
		ifs = m.cur.ifs()
	}
	if m.useEIFS {
		ifs = SIFS + m.ch.AirTime(pkt.AckBytes) + DIFS // EIFS
	}
	wait := ifs + sim.Time(m.slots)*SlotTime
	if nav := m.navUntil - m.eng.Now(); nav > 0 {
		wait += nav
	}
	m.state = stCountdown
	m.cntStart = m.eng.Now()
	m.cntIFS = ifs
	m.timer = m.eng.Schedule(wait, m.accessWonFn)
}

// freeze suspends the countdown, crediting fully elapsed slots.
func (m *MAC) freeze() {
	if m.state != stCountdown {
		return
	}
	m.timer.Cancel()
	elapsed := m.eng.Now() - m.cntStart
	if elapsed > m.cntIFS {
		done := int((elapsed - m.cntIFS) / SlotTime)
		if done > m.slots {
			done = m.slots
		}
		m.slots -= done
	}
	m.state = stDefer
}

// accessWon fires when DIFS+backoff elapsed with an idle medium.
func (m *MAC) accessWon() {
	if m.state != stCountdown {
		return
	}
	m.slots = 0
	if m.cur == nil || m.cur.head() == nil {
		m.state = stIdle
		m.kick()
		return
	}
	if m.cfg.UseRTSCTS {
		m.sendRTS()
		return
	}
	m.sendData()
}

func (m *MAC) sendData() {
	f := m.pool.Frame()
	f.Type = pkt.FrameData
	f.TxSrc = m.id
	f.TxDst = m.cur.next
	f.Payload = m.cur.head()
	f.Retry = m.attempts > 0
	m.attempts++
	m.TxData++
	for _, s := range m.stamps {
		s(f)
	}
	if m.attempts > 1 {
		m.TxRetries++
		m.cur.Retries++
		m.record(obs.KindRetry, obs.CauseNone, m.cur.next, f.Payload)
	} else {
		m.record(obs.KindTxAttempt, obs.CauseNone, m.cur.next, f.Payload)
		for _, h := range m.txHooks {
			h(f)
		}
	}
	m.state = stTxData
	end := m.ch.TransmitFrom(m.st, f)
	m.txEnd = end
	ackTime := m.ch.AirTime(pkt.AckBytes)
	timeout := (end - m.eng.Now()) + SIFS + ackTime + SlotTime
	m.eng.ScheduleFuncAt(end, m.dataEndFn)
	m.timer = m.eng.Schedule(timeout, m.ackTimeoutFn)
}

func (m *MAC) sendRTS() {
	// Stamps may grow the coming data frame by the optional backpressure
	// header, which does not exist yet when the NAV is computed; reserve
	// for it whenever stamps are registered. A stamp that adds no on-air
	// bytes leaves the NAV 2 bytes long — over-reservation is benign,
	// under-reservation would let neighbours contend into the data frame.
	extra := 0
	if len(m.stamps) > 0 {
		extra = pkt.BPHeaderBytes
	}
	dataAir := m.ch.AirTime(m.cur.head().Bytes + pkt.MACHeaderBytes + extra)
	nav := 3*SIFS + m.ch.AirTime(pkt.CTSBytes) + dataAir + m.ch.AirTime(pkt.AckBytes)
	f := m.pool.Frame()
	f.Type, f.TxSrc, f.TxDst, f.NAV = pkt.FrameRTS, m.id, m.cur.next, nav
	m.attempts++
	m.state = stTxData
	end := m.ch.TransmitFrom(m.st, f)
	m.txEnd = end
	timeout := (end - m.eng.Now()) + SIFS + m.ch.AirTime(pkt.CTSBytes) + SlotTime
	m.eng.ScheduleFuncAt(end, m.rtsEndFn)
	m.timer = m.eng.Schedule(timeout, m.ackTimeoutFn)
}

// ackTimeout handles a missing ACK (or CTS): exponential backoff and retry,
// dropping the frame once the retry limit is reached.
func (m *MAC) ackTimeout() {
	if m.state != stWaitAck && m.state != stWaitCTS && m.state != stTxData {
		return
	}
	if m.attempts >= m.cfg.RetryLimit {
		m.TxFailed++
		m.cur.DroppedRetry++
		p := m.cur.pop()
		m.record(obs.KindDrop, obs.CauseRetryExceeded, m.cur.next, p)
		m.notifyDrop(p, DropRetryExceeded)
		p.Release()
		m.cur = nil
		m.attempts = 0
		m.state = stIdle
		m.kick()
		return
	}
	m.retryCW *= 2
	if m.retryCW > RetryCWmax {
		m.retryCW = RetryCWmax
	}
	if base := m.cur.cwMin; m.retryCW < base {
		m.retryCW = base
	}
	m.beginContention()
}

// String summarises the MAC's id, transmitter state and backlog.
func (m *MAC) String() string {
	return fmt.Sprintf("mac(%v state=%d queued=%d)", m.id, m.state, m.TotalQueued())
}
