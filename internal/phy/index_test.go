package phy

import (
	"math"
	"testing"

	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// newIndexedChannel builds a channel over the given positions and forces
// the neighbor index (normally built by the first transmission).
func newIndexedChannel(t *testing.T, pos []Position) *Channel {
	t.Helper()
	eng := sim.NewEngine(1)
	ch := NewChannel(eng, DefaultConfig())
	for i, p := range pos {
		ch.AddNode(pkt.NodeID(i), p, nil)
	}
	ch.buildIndex()
	return ch
}

// TestNeighborIndexMatchesBruteForce checks every cached record of a
// random-disk layout against a direct O(N²) recomputation: membership
// (exactly the pairs within interference range), order (ascending slot),
// and the cached power and range predicates, which must be bit-identical
// to the closed-form model — the hot path substitutes these values for
// live math.Hypot/math.Pow calls.
func TestNeighborIndexMatchesBruteForce(t *testing.T) {
	pos := diskPositions(120, 7)
	ch := newIndexedChannel(t, pos)
	r := ch.cfg.interferenceRange()
	for i, st := range ch.order {
		if st.slot != int32(i) {
			t.Fatalf("station %d has slot %d", i, st.slot)
		}
		want := 0
		prev := int32(-1)
		for j := range ch.order {
			d := pos[i].Dist(pos[j])
			if j == i || d > r {
				if lk := st.neighbor(int32(j)); lk != nil && j != i {
					t.Errorf("N%d lists N%d (d=%.1f) beyond interference range %.1f", i, j, d, r)
				}
				continue
			}
			want++
			lk := st.neighbor(int32(j))
			if lk == nil {
				t.Fatalf("N%d missing neighbor N%d at d=%.1f (range %.1f)", i, j, d, r)
			}
			if lk.power != ch.cfg.power(d) {
				t.Errorf("N%d->N%d cached power %v != %v", i, j, lk.power, ch.cfg.power(d))
			}
			if lk.inCS != (d <= ch.cfg.CSRange) || lk.inTx != (d <= ch.cfg.TxRange) {
				t.Errorf("N%d->N%d range flags inCS=%v inTx=%v at d=%.1f", i, j, lk.inCS, lk.inTx, d)
			}
			if lk.slot <= prev {
				t.Errorf("N%d neighbor list not ascending at slot %d", i, lk.slot)
			}
			prev = lk.slot
		}
		if len(st.nbrs) != want {
			t.Errorf("N%d has %d neighbors, want %d", i, len(st.nbrs), want)
		}
		// csNbrs must index exactly the in-CS subsequence.
		cs := 0
		for k := range st.nbrs {
			if st.nbrs[k].inCS {
				if cs >= len(st.csNbrs) || st.csNbrs[cs] != int32(k) {
					t.Fatalf("N%d csNbrs misses entry %d", i, k)
				}
				cs++
			}
		}
		if cs != len(st.csNbrs) {
			t.Errorf("N%d csNbrs has %d extra entries", i, len(st.csNbrs)-cs)
		}
	}
}

// TestInterferenceRangeCoversCorruption verifies the index radius bound:
// an interferer just inside the radius can still corrupt the weakest
// lockable signal, and one beyond it never can (the condition the hot
// path's "skip non-neighbors" shortcut relies on).
func TestInterferenceRangeCoversCorruption(t *testing.T) {
	cfg := DefaultConfig()
	r := cfg.interferenceRange()
	weakest := cfg.power(cfg.CSRange)
	if p := cfg.power(r * 1.0001); weakest < cfg.CaptureRatio*p {
		t.Errorf("interferer beyond range %v would corrupt: %v < %v", r, weakest, cfg.CaptureRatio*p)
	}
	if p := cfg.power(r * 0.95); weakest >= cfg.CaptureRatio*p {
		t.Errorf("interferer inside range %v cannot corrupt: %v >= %v", r, weakest, cfg.CaptureRatio*p)
	}
	if inf := (Config{CSRange: 550, PathLossExp: 0}).interferenceRange(); !math.IsInf(inf, 1) {
		t.Errorf("degenerate path-loss exponent should disable pruning, got %v", inf)
	}
}

// TestIndexPatchOnLinkMutation checks the invalidation hooks: SetLinkLoss
// and SetLinkDown applied after the index is built must patch the cached
// record in place (the hot path reads only the record), and the maps stay
// authoritative for rebuilds.
func TestIndexPatchOnLinkMutation(t *testing.T) {
	ch := newIndexedChannel(t, chainPositions(6))
	st := ch.station(0)

	ch.SetLinkLoss(0, 1, 0.25)
	if lk := st.neighbor(1); lk.loss != 0.25 {
		t.Errorf("cached loss %v after SetLinkLoss, want 0.25", lk.loss)
	}
	ch.SetLinkDown(0, 1, true)
	if lk := st.neighbor(1); !lk.down {
		t.Error("cached record not severed after SetLinkDown")
	}
	ch.SetLinkDown(0, 1, false)
	if lk := st.neighbor(1); lk.down {
		t.Error("cached record still severed after restore")
	}

	// Mutations targeting pairs beyond interference range only touch the
	// maps (no cached record exists, none is needed for delivery).
	ch.SetLinkLoss(0, 5, 0.5)
	if lk := st.neighbor(5); lk != nil {
		t.Fatalf("N0 unexpectedly lists N5 (1000 m apart, range %.0f)", ch.cfg.interferenceRange())
	}
	if got := ch.LinkLoss(0, 5); got != 0.5 {
		t.Errorf("map loss %v, want 0.5", got)
	}

	// A rebuild (here: forced by a new station) folds the maps back in.
	ch.SetLinkLoss(0, 2, 0.75)
	ch.AddNode(pkt.NodeID(9), Position{X: 900}, nil)
	if ch.indexed {
		t.Fatal("AddNode did not invalidate the index")
	}
	ch.buildIndex()
	if lk := ch.station(0).neighbor(2); lk == nil || lk.loss != 0.75 {
		t.Errorf("rebuild lost the configured loss: %+v", lk)
	}
}

// TestIndexRebuildMigratesEventState pins the slot-state migration: state
// accumulated under one slot assignment (here: an in-flight transmission
// raising carrier sense) must survive a rebuild that renumbers slots.
func TestIndexRebuildMigratesEventState(t *testing.T) {
	eng := sim.NewEngine(1)
	ch := NewChannel(eng, DefaultConfig())
	for i, p := range chainPositions(3) {
		ch.AddNode(pkt.NodeID(i+10), p, nil)
	}
	f := ch.Pool().Frame()
	f.Type, f.TxSrc, f.TxDst = pkt.FrameData, 10, 11
	ch.Transmit(10, f)
	if !ch.Busy(11) {
		t.Fatal("neighbor not busy during flight")
	}
	// Register a smaller id mid-flight: every existing slot shifts up.
	ch.AddNode(pkt.NodeID(1), Position{X: -5000}, nil)
	if !ch.Busy(11) || ch.Busy(1) {
		t.Error("carrier-sense state lost across slot renumbering")
	}
	for eng.RunStep() {
	}
	if ch.Busy(11) {
		t.Error("carrier sense stuck after flight completion")
	}
}

// TestSpatialGridNearSuperset checks the grid's contract: Near must
// return a superset of the positions within the query radius, for probes
// inside and outside the built extent.
func TestSpatialGridNearSuperset(t *testing.T) {
	pos := diskPositions(80, 3)
	const radius = 400.0
	g := NewSpatialGrid(pos, radius)
	probes := append([]Position{{X: 1e5, Y: -1e5}, {X: 0, Y: 0}}, pos[:10]...)
	for _, p := range probes {
		got := map[int32]bool{}
		for _, i := range g.Near(p, nil) {
			got[i] = true
		}
		for i, q := range pos {
			if p.Dist(q) <= radius && !got[int32(i)] {
				t.Fatalf("Near(%v) misses index %d at distance %.1f", p, i, p.Dist(q))
			}
		}
	}
}
