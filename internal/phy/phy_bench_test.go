// Channel-level hot-path benchmarks: one Transmit+finish cycle with no
// MAC attached (nil radios), isolating the per-transmission broadcast
// cost the neighbor index rebuilt — the O(N)-walk-with-math.Pow path
// became an O(degree) walk over cached link records. BenchmarkChannelTransmit200
// is the headline: ns per transmission on a 200-node random-disk layout.
package phy

import (
	"math"
	"math/rand"
	"testing"

	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// diskPositions places a gateway at the origin plus n-1 area-uniform
// points in a disk sized to the constant-density radius the mesh
// package's random topologies use ((200/2)·√n metres).
func diskPositions(n int, seed int64) []Position {
	radius := 100 * math.Sqrt(float64(n))
	rng := rand.New(rand.NewSource(seed))
	pos := make([]Position, n)
	for i := 1; i < n; i++ {
		r := radius * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		pos[i] = Position{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
	}
	return pos
}

// chainPositions places n nodes 200 m apart on a line (the paper's chain
// geometry).
func chainPositions(n int) []Position {
	pos := make([]Position, n)
	for i := range pos {
		pos[i] = Position{X: float64(i) * 200}
	}
	return pos
}

// benchTransmit measures one data-frame Transmit+finish cycle per op,
// rotating the transmitter over every station. Radios are nil, so the
// measurement is pure channel work: carrier-sense bookkeeping, receiver
// locking, interference checks, and delivery resolution.
func benchTransmit(b *testing.B, pos []Position) {
	b.Helper()
	eng := sim.NewEngine(1)
	ch := NewChannel(eng, DefaultConfig())
	sts := make([]*Station, len(pos))
	for i, p := range pos {
		sts[i] = ch.AddNode(pkt.NodeID(i), p, nil)
	}
	send := func(i int) {
		f := ch.Pool().Frame()
		f.Type = pkt.FrameData
		f.TxSrc = pkt.NodeID(i % len(pos))
		f.TxDst = pkt.NodeID((i + 1) % len(pos))
		ch.TransmitFrom(sts[i%len(pos)], f)
		for eng.RunStep() {
		}
	}
	send(0) // warm up: builds the neighbor index, fills the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send(i)
	}
}

// BenchmarkChannelTransmit200 is the large-topology PHY hot-path number:
// ns per transmission on a 200-node random disk at the default density.
func BenchmarkChannelTransmit200(b *testing.B) {
	benchTransmit(b, diskPositions(200, 1))
}

// BenchmarkChannelTransmitChain5 is the small-topology guard (the
// 4-hop/5-node chain of BenchmarkChainRun): the index must also win when
// every station neighbors every other.
func BenchmarkChannelTransmitChain5(b *testing.B) {
	benchTransmit(b, chainPositions(5))
}
