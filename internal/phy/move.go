// Incremental neighbor-index maintenance for moving stations.
//
// MoveNode relocates one station without rebuilding the index: it
// re-buckets the station in the retained spatial grid, recomputes the
// station's own neighbor list from a grid query, and patches the
// reverse direction at exactly the neighbors whose interference-radius
// membership or cached geometry changed — O(degree·log degree) per move
// against the O(N·degree) full rebuild.
//
// Storage discipline: buildIndex packs every list into shared arenas, so
// a list can never grow or shrink in place without trampling the next
// station's records. The first mutation that resizes a station's list
// detaches it (copy-on-write) into station-owned slices with amortized
// spare capacity; once the capacities of the stations along a node's
// path have warmed up, steady-state moves allocate nothing.
//
// Determinism rules (the golden campaigns pin these):
//   - MoveNode never touches the engine RNG, so a move perturbs no other
//     node's event stream.
//   - A station mid-transmission must not move (the in-flight geometry is
//     baked into every receiver's lock); callers check Transmitting and
//     defer the move to the next tick, which depends only on sim state
//     and is therefore reproducible.
//   - A moving receiver's carrier-sense count is recomputed against the
//     in-flight set at the new position; its locked reception survives
//     only while the locked transmitter remains within CS range, and a
//     mover never acquires a new lock mid-flight (the preamble was
//     missed). Both rules are pure functions of sim state.
package phy

import (
	"fmt"
	"slices"

	"ezflow/internal/pkt"
)

// Transmitting reports whether the node currently has a frame on the
// air. The mobility engine consults it before MoveNode and defers the
// move by one tick for stations caught mid-frame.
func (c *Channel) Transmitting(id pkt.NodeID) bool {
	if !c.indexed {
		return false
	}
	st := c.station(id)
	return st != nil && c.busyTx[st.slot]
}

// MoveNode relocates a station and incrementally patches the neighbor
// index: the spatial grid is re-bucketed and per-link cached records are
// updated only where interference-radius membership or geometry actually
// changed. It reports whether decode-range (TxRange) link membership
// changed in either direction — the signal the mobility engine uses to
// trigger route repair. The engine RNG is never consulted.
//
// The station must not be transmitting (see Transmitting); moving it
// mid-frame would falsify the geometry already baked into its listeners'
// locks, so MoveNode panics.
func (c *Channel) MoveNode(id pkt.NodeID, pos Position) bool {
	st := c.station(id)
	if st == nil {
		panic(fmt.Sprintf("phy: MoveNode for unknown node %v", id))
	}
	if !c.indexed {
		// Nothing is cached yet: adopt the position and let the first
		// transmission build the index from it. Report a (conservative)
		// membership change only if decode-range adjacency differs.
		changed := false
		for _, o := range c.order {
			if o == st {
				continue
			}
			wasIn := o.pos.Dist(st.pos) <= c.cfg.TxRange
			isIn := o.pos.Dist(pos) <= c.cfg.TxRange
			if wasIn != isIn {
				changed = true
				break
			}
		}
		st.pos = pos
		return changed
	}
	if c.busyTx[st.slot] {
		panic(fmt.Sprintf("phy: MoveNode of node %v while transmitting", id))
	}
	old := st.pos
	if pos == old {
		return false
	}
	st.pos = pos
	c.grid.Move(st.slot, old, pos)

	// Recompute the mover's own neighbor list from the grid at the new
	// position, into the reusable staging buffer, ascending by slot.
	r := c.cfg.interferenceRange()
	cand := c.grid.Near(pos, c.scratch[:0])
	slices.Sort(cand)
	newL := c.moveBuf[:0]
	for _, j := range cand {
		if j == st.slot {
			continue
		}
		o := c.order[j]
		d := pos.Dist(o.pos)
		if d > r {
			continue
		}
		key := linkKey{st.id, o.id}
		newL = append(newL, link{
			slot:  j,
			inCS:  d <= c.cfg.CSRange,
			inTx:  d <= c.cfg.TxRange,
			down:  c.down[key],
			power: c.cfg.power(d),
			loss:  c.loss[key],
		})
	}
	c.scratch, c.moveBuf = cand, newL

	// Merge-diff the old and new lists (both ascending by slot) and patch
	// the reverse direction at each affected neighbor. Range predicates
	// and received power are symmetric, so the forward record carries
	// everything the reverse one needs except the per-direction loss/down
	// state, which is read from the authoritative maps on insert.
	changed := false
	oldL := st.nbrs
	i, j := 0, 0
	for i < len(oldL) || j < len(newL) {
		switch {
		case j >= len(newL) || (i < len(oldL) && oldL[i].slot < newL[j].slot):
			// Vanished neighbor: drop the reverse record.
			if oldL[i].inTx {
				changed = true
			}
			c.removeNeighbor(c.order[oldL[i].slot], st.slot)
			i++
		case i >= len(oldL) || newL[j].slot < oldL[i].slot:
			// Appeared neighbor: insert the reverse record.
			nl := &newL[j]
			if nl.inTx {
				changed = true
			}
			b := c.order[nl.slot]
			c.insertNeighbor(b, link{
				slot:  st.slot,
				inCS:  nl.inCS,
				inTx:  nl.inTx,
				down:  c.down[linkKey{b.id, st.id}],
				power: nl.power,
				loss:  c.loss[linkKey{b.id, st.id}],
			})
			j++
		default:
			// Kept neighbor: refresh geometry in place, both directions.
			nl, ol := &newL[j], &oldL[i]
			if nl.inTx != ol.inTx {
				changed = true
			}
			b := c.order[nl.slot]
			blk := b.neighbor(st.slot)
			if blk.inCS != nl.inCS {
				blk.inCS, blk.inTx, blk.power = nl.inCS, nl.inTx, nl.power
				b.ensureOwned(len(b.nbrs))
				rebuildCS(b)
			} else {
				blk.inCS, blk.inTx, blk.power = nl.inCS, nl.inTx, nl.power
			}
			i++
			j++
		}
	}

	// Adopt the new forward list into station-owned storage.
	st.ensureOwned(len(newL))
	st.nbrs = append(st.nbrs[:0], newL...)
	st.nbrSlots = st.nbrSlots[:0]
	for k := range newL {
		st.nbrSlots = append(st.nbrSlots, newL[k].slot)
	}
	rebuildCS(st)

	c.moveFlightState(st)
	return changed
}

// moveFlightState reconciles the mover's receiver state with the
// in-flight transmissions at its new position: the carrier-sense count
// is recomputed (finish will decrement once per flight whose transmitter
// now lists the mover in CS range, so the count must match that set
// exactly), a locked reception survives only while its transmitter is
// still within CS range, and no new lock is acquired (missed preamble).
func (c *Channel) moveFlightState(st *Station) {
	wasBusy := c.sensed[st.slot] > 0
	var n int32
	for _, f := range c.flight {
		if f.srcn != st && st.pos.Dist(f.srcn.pos) <= c.cfg.CSRange {
			n++
		}
	}
	c.sensed[st.slot] = n
	if rx := &c.rx[st.slot]; rx.tx != nil {
		if st.pos.Dist(rx.tx.srcn.pos) > c.cfg.CSRange {
			// The locked energy faded out mid-frame: the reception is
			// silently aborted. The transmitter's finish no longer visits
			// this station (it left the CS list), so clearing here is the
			// only bookkeeping.
			*rx = reception{}
		}
	}
	nowBusy := n > 0
	if nowBusy != wasBusy && st.radio != nil {
		st.radio.CarrierBusy(nowBusy)
	}
}

// ensureOwned detaches the station's neighbor storage from the shared
// build arenas into station-owned slices with room for at least capHint
// links (plus amortized headroom), so incremental moves can resize the
// lists without corrupting the neighbors packed after them. A no-op once
// the station is detached with sufficient capacity.
func (s *Station) ensureOwned(capHint int) {
	if s.owned && cap(s.nbrs) >= capHint && cap(s.csNbrs) >= capHint {
		return
	}
	cp := capHint + capHint/2 + 8
	nbrs := make([]link, len(s.nbrs), cp)
	copy(nbrs, s.nbrs)
	slots := make([]int32, len(s.nbrSlots), cp)
	copy(slots, s.nbrSlots)
	cs := make([]int32, len(s.csNbrs), cp)
	copy(cs, s.csNbrs)
	s.nbrs, s.nbrSlots, s.csNbrs = nbrs, slots, cs
	s.owned = true
}

// rebuildCS recomputes the station's carrier-sense subsequence from its
// neighbor list. The caller must have ensured owned storage with
// capacity >= len(nbrs).
func rebuildCS(s *Station) {
	cs := s.csNbrs[:0]
	for i := range s.nbrs {
		if s.nbrs[i].inCS {
			cs = append(cs, int32(i))
		}
	}
	s.csNbrs = cs
}

// insertNeighbor splices a link record into b's lists at its ascending
// slot position, detaching b from the arenas if needed.
func (c *Channel) insertNeighbor(b *Station, lk link) {
	n := len(b.nbrs)
	b.ensureOwned(n + 1)
	pos := lowerBound32(b.nbrSlots, lk.slot)
	b.nbrs = b.nbrs[:n+1]
	copy(b.nbrs[pos+1:], b.nbrs[pos:n])
	b.nbrs[pos] = lk
	b.nbrSlots = b.nbrSlots[:n+1]
	copy(b.nbrSlots[pos+1:], b.nbrSlots[pos:n])
	b.nbrSlots[pos] = lk.slot
	rebuildCS(b)
}

// removeNeighbor deletes the record toward the given slot from b's
// lists, detaching b from the arenas if needed.
func (c *Channel) removeNeighbor(b *Station, slot int32) {
	pos := lowerBound32(b.nbrSlots, slot)
	n := len(b.nbrs)
	if pos >= n || b.nbrSlots[pos] != slot {
		panic("phy: removeNeighbor of absent link")
	}
	b.ensureOwned(n)
	copy(b.nbrs[pos:], b.nbrs[pos+1:])
	b.nbrs = b.nbrs[:n-1]
	copy(b.nbrSlots[pos:], b.nbrSlots[pos+1:])
	b.nbrSlots = b.nbrSlots[:n-1]
	rebuildCS(b)
}

// VerifyIndex checks the incrementally-patched neighbor index against a
// from-scratch recomputation of the same geometry and link state,
// returning a descriptive error on the first divergence (nil when the
// index is not built: there is nothing to verify). It is O(N²) and
// allocates freely — a correctness oracle for tests and stress
// harnesses, not a production path.
func (c *Channel) VerifyIndex() error {
	if !c.indexed {
		return nil
	}
	r := c.cfg.interferenceRange()
	for si, st := range c.order {
		if st.slot != int32(si) {
			return fmt.Errorf("station %v: slot %d, want %d", st.id, st.slot, si)
		}
		if len(st.nbrs) != len(st.nbrSlots) {
			return fmt.Errorf("station %v: %d links vs %d slot keys", st.id, len(st.nbrs), len(st.nbrSlots))
		}
		// Expected neighbor list, straight from geometry and the maps.
		var want []link
		for oi, o := range c.order {
			if oi == si {
				continue
			}
			d := st.pos.Dist(o.pos)
			if d > r {
				continue
			}
			key := linkKey{st.id, o.id}
			want = append(want, link{
				slot:  int32(oi),
				inCS:  d <= c.cfg.CSRange,
				inTx:  d <= c.cfg.TxRange,
				down:  c.down[key],
				power: c.cfg.power(d),
				loss:  c.loss[key],
			})
		}
		if len(want) != len(st.nbrs) {
			return fmt.Errorf("station %v: %d links, want %d", st.id, len(st.nbrs), len(want))
		}
		var cs []int32
		for k := range want {
			if got := st.nbrs[k]; got != want[k] {
				return fmt.Errorf("station %v link %d: got %+v, want %+v", st.id, k, got, want[k])
			}
			if st.nbrSlots[k] != want[k].slot {
				return fmt.Errorf("station %v slot key %d: got %d, want %d", st.id, k, st.nbrSlots[k], want[k].slot)
			}
			if want[k].inCS {
				cs = append(cs, int32(k))
			}
		}
		if !slices.Equal(cs, st.csNbrs) {
			return fmt.Errorf("station %v: csNbrs %v, want %v", st.id, st.csNbrs, cs)
		}
		// The grid must still find the station from its own position.
		found := slices.Contains(c.grid.Near(st.pos, nil), st.slot)
		if !found {
			return fmt.Errorf("station %v: not reachable in its grid neighborhood", st.id)
		}
	}
	return nil
}
