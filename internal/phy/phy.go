// Package phy models the shared wireless channel.
//
// The model is the one ns-2.33 implements for 802.11 at default power with
// two-ray-ground propagation, which is what the paper's simulations use: a
// node decodes a frame if the transmitter is within the transmission range
// (250 m) and no other transmission overlaps the reception at the listener
// within its interference range; a node senses the channel busy whenever any
// transmitter within the carrier-sense range (550 m) is active. Because the
// medium is broadcast, every completed reception is delivered not only to
// the addressed MAC but also to every promiscuous tap in range — this is the
// "free" information EZ-Flow's Buffer Occupancy Estimator lives on.
//
// Per-link erasure probabilities model the heterogeneous link qualities of
// the paper's real testbed (Table 1): a loss applies to one receiver of one
// transmission and does not disturb other listeners.
package phy

import (
	"fmt"
	"math"
	"sort"

	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Position is a node location in metres.
type Position struct{ X, Y float64 }

// Dist returns the Euclidean distance between two positions.
func (p Position) Dist(q Position) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Config holds the channel parameters. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	TxRange    float64  // decode range in metres
	CSRange    float64  // carrier-sense range in metres
	BitRate    float64  // channel bit rate in bit/s
	PreambleNS sim.Time // PLCP preamble+header duration
	// CaptureRatio is the minimum signal-to-interference power ratio for
	// a locked reception to survive an overlapping transmission (ns-2's
	// CPThresh, 10 = 10 dB). Power follows the two-ray-ground d^-4 law,
	// so an interferer twice as far as the signal source is 12 dB down
	// and is captured over, while an interferer at equal distance (the
	// hidden-terminal case) destroys the frame.
	CaptureRatio float64
	// PathLossExp is the path-loss exponent (4 for two-ray ground).
	PathLossExp float64
}

// DefaultConfig mirrors the paper's ns-2 settings: 802.11b at 1 Mb/s,
// 250 m transmission range, 550 m sensing range, long PLCP preamble,
// two-ray-ground propagation with a 10 dB capture threshold.
func DefaultConfig() Config {
	return Config{
		TxRange:      250,
		CSRange:      550,
		BitRate:      1e6,
		PreambleNS:   192 * sim.Microsecond,
		CaptureRatio: 10,
		PathLossExp:  4,
	}
}

// power is the received power (arbitrary units) at distance d.
func (c Config) power(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return math.Pow(d, -c.PathLossExp)
}

// AirTime reports how long a frame of n bytes occupies the medium.
func (c Config) AirTime(bytes int) sim.Time {
	bits := float64(bytes * 8)
	return c.PreambleNS + sim.Time(bits/c.BitRate*float64(sim.Second))
}

// Radio is the interface the MAC layer implements to receive PHY
// indications.
type Radio interface {
	// CarrierBusy is called when the medium transitions busy/idle at this
	// node's position.
	CarrierBusy(busy bool)
	// Receive delivers a frame that was decoded successfully and is
	// MAC-addressed to this node (or broadcast).
	Receive(f *pkt.Frame)
	// Overhear delivers every frame decoded at this node regardless of MAC
	// address — the promiscuous tap. Called after Receive for addressed
	// frames.
	Overhear(f *pkt.Frame, ci pkt.CaptureInfo)
	// ReceiveError reports that a frame strong enough to decode was
	// destroyed by a collision. 802.11 stations react by deferring EIFS
	// instead of DIFS before their next access.
	ReceiveError()
}

// transmission is an in-flight frame. Transmissions are pooled by the
// channel; finishFn is built once per pooled object so completing a flight
// schedules no new closure.
type transmission struct {
	src      pkt.NodeID
	frame    *pkt.Frame
	start    sim.Time
	end      sim.Time
	finishFn func()
}

// node is the PHY-side state of one station.
type node struct {
	id     pkt.NodeID
	pos    Position
	radio  Radio
	sensed int  // number of in-flight transmissions within CS range
	busyTx bool // this node is currently transmitting
	// reception tracking: the candidate frame currently being decoded and
	// whether it has been corrupted by an overlapping transmission.
	rx *reception
}

// reception is the state of a receiver locked onto one frame. ns-2
// semantics: the first frame whose energy reaches a node locks its
// receiver, even if it is too weak to decode (a "noise lock"); later
// overlapping frames either are captured over (signal/interference >=
// CaptureRatio) or corrupt the locked frame. The receiver never switches
// to a later, stronger frame.
type reception struct {
	tx        *transmission
	signal    float64 // received power of the locked frame
	decodable bool    // within TxRange (above the receive threshold)
	corrupted bool
}

// Channel is the shared medium connecting all nodes.
type Channel struct {
	cfg   Config
	eng   *sim.Engine
	nodes map[pkt.NodeID]*node
	// order holds the nodes sorted by id. All broadcast iteration uses it
	// so that same-instant event scheduling is deterministic (map
	// iteration order would make runs diverge).
	order  []*node
	loss   map[linkKey]float64 // per directed link erasure probability
	down   map[linkKey]bool    // severed directed links (dynamics overrides)
	flight []*transmission
	pool   *pkt.Pool       // packet/frame pool shared by the whole stack
	freeTx []*transmission // recycled transmissions
	freeRx []*reception    // recycled receptions

	// Stats counts channel-level events for tests and experiments.
	Stats ChannelStats
}

// ChannelStats aggregates medium-level counters.
type ChannelStats struct {
	Transmissions uint64
	Decoded       uint64
	Collisions    uint64
	Erasures      uint64
}

type linkKey struct{ a, b pkt.NodeID }

// NewChannel creates an empty channel over the given engine.
func NewChannel(eng *sim.Engine, cfg Config) *Channel {
	return &Channel{
		cfg:   cfg,
		eng:   eng,
		nodes: make(map[pkt.NodeID]*node),
		loss:  make(map[linkKey]float64),
		down:  make(map[linkKey]bool),
		pool:  pkt.NewPool(),
	}
}

// Config returns the channel configuration.
func (c *Channel) Config() Config { return c.cfg }

// Pool returns the channel's packet/frame pool. The MAC, traffic, and
// transport layers draw from it so that steady-state forwarding reuses
// storage instead of allocating.
func (c *Channel) Pool() *pkt.Pool { return c.pool }

// getTx recycles (or allocates) a transmission.
func (c *Channel) getTx() *transmission {
	if n := len(c.freeTx); n > 0 {
		tx := c.freeTx[n-1]
		c.freeTx[n-1] = nil
		c.freeTx = c.freeTx[:n-1]
		return tx
	}
	tx := &transmission{}
	tx.finishFn = func() { c.finish(tx) }
	return tx
}

// getRx recycles (or allocates) a reception.
func (c *Channel) getRx() *reception {
	if n := len(c.freeRx); n > 0 {
		rx := c.freeRx[n-1]
		c.freeRx[n-1] = nil
		c.freeRx = c.freeRx[:n-1]
		*rx = reception{}
		return rx
	}
	return &reception{}
}

// AddNode registers a station at pos with its MAC-layer radio. Adding the
// same id twice panics: topologies are static for the lifetime of a run.
func (c *Channel) AddNode(id pkt.NodeID, pos Position, r Radio) {
	if _, dup := c.nodes[id]; dup {
		panic(fmt.Sprintf("phy: duplicate node %v", id))
	}
	n := &node{id: id, pos: pos, radio: r}
	c.nodes[id] = n
	at := sort.Search(len(c.order), func(i int) bool { return c.order[i].id > id })
	c.order = append(c.order, nil)
	copy(c.order[at+1:], c.order[at:])
	c.order[at] = n
}

// SetRadio rebinds the radio of an existing node (used by the MAC package
// which creates the PHY entry before its own state).
func (c *Channel) SetRadio(id pkt.NodeID, r Radio) {
	n := c.nodes[id]
	if n == nil {
		panic(fmt.Sprintf("phy: SetRadio for unknown node %v", id))
	}
	n.radio = r
}

// SetLinkLoss sets the erasure probability for the directed link a->b.
// It models the residual frame error rate of a degraded real-world link.
func (c *Channel) SetLinkLoss(a, b pkt.NodeID, p float64) {
	if p < 0 || p > 1 {
		panic("phy: loss probability out of range")
	}
	c.loss[linkKey{a, b}] = p
}

// LinkLoss reports the configured erasure probability for a->b.
func (c *Channel) LinkLoss(a, b pkt.NodeID) float64 { return c.loss[linkKey{a, b}] }

// SetLinkDown severs (down=true) or restores (down=false) the directed
// link a->b. While severed, no frame from a is ever delivered to b,
// regardless of distance or loss settings; carrier sensing is unaffected,
// because the energy still occupies the medium. A downed link therefore
// models a deep fade or obstruction at the receiver; powering a whole
// station off is mac.SetDown's job. The check consumes no randomness, so
// toggling a link perturbs no other node's event stream.
func (c *Channel) SetLinkDown(a, b pkt.NodeID, down bool) {
	if down {
		c.down[linkKey{a, b}] = true
		return
	}
	delete(c.down, linkKey{a, b})
}

// LinkDown reports whether the directed link a->b is currently severed.
func (c *Channel) LinkDown(a, b pkt.NodeID) bool { return c.down[linkKey{a, b}] }

// Position reports a node's position.
func (c *Channel) Position(id pkt.NodeID) Position { return c.nodes[id].pos }

// InTxRange reports whether b can decode a's transmissions.
func (c *Channel) InTxRange(a, b pkt.NodeID) bool {
	na, nb := c.nodes[a], c.nodes[b]
	return na.pos.Dist(nb.pos) <= c.cfg.TxRange
}

// InCSRange reports whether b senses a's transmissions.
func (c *Channel) InCSRange(a, b pkt.NodeID) bool {
	na, nb := c.nodes[a], c.nodes[b]
	return na.pos.Dist(nb.pos) <= c.cfg.CSRange
}

// Busy reports whether the medium is sensed busy at node id, either because
// a neighbour within carrier-sense range is transmitting or because the node
// itself is.
func (c *Channel) Busy(id pkt.NodeID) bool {
	n := c.nodes[id]
	return n.sensed > 0 || n.busyTx
}

// AirTime exposes the frame air time for the channel's bit rate.
func (c *Channel) AirTime(bytes int) sim.Time { return c.cfg.AirTime(bytes) }

// Transmit puts a frame on the air from src. The caller (MAC) is responsible
// for having respected CSMA rules; the channel faithfully models the
// consequences either way (collisions at receivers). The returned time is
// when the transmission ends.
func (c *Channel) Transmit(src pkt.NodeID, f *pkt.Frame) sim.Time {
	sn := c.nodes[src]
	if sn == nil {
		panic(fmt.Sprintf("phy: transmit from unknown node %v", src))
	}
	if sn.busyTx {
		panic(fmt.Sprintf("phy: node %v already transmitting", src))
	}
	now := c.eng.Now()
	dur := c.AirTime(f.Bytes())
	tx := c.getTx()
	tx.src, tx.frame, tx.start, tx.end = src, f, now, now+dur
	c.flight = append(c.flight, tx)
	c.Stats.Transmissions++
	sn.busyTx = true
	// The channel holds its own reference to a data frame's payload for
	// the duration of the flight: the transmitter may drop the packet
	// mid-air (retry limit, a halted node flushing its queues) and the
	// frame must not dangle into recycled pool storage.
	if f.Payload != nil {
		f.Payload.Retain()
	}

	// Raise carrier sense at every node in CS range; lock idle receivers
	// onto the new frame; apply capture at already-locked receivers.
	for _, n := range c.order {
		if n.id == src {
			continue
		}
		d := sn.pos.Dist(n.pos)
		p := c.cfg.power(d)
		if d <= c.cfg.CSRange {
			n.sensed++
			if n.sensed == 1 && !n.busyTx && n.radio != nil {
				n.radio.CarrierBusy(true)
			}
		}
		switch {
		case n.busyTx:
			// Half-duplex: a transmitting node ignores arrivals.
		case n.rx != nil:
			// Locked on another frame: the new energy is interference.
			// The locked frame survives only if it is CaptureRatio
			// stronger (ns-2 capture); the receiver never re-locks.
			if n.rx.signal < c.cfg.CaptureRatio*p {
				if !n.rx.corrupted && n.rx.decodable {
					c.Stats.Collisions++
				}
				n.rx.corrupted = true
			}
		case d <= c.cfg.CSRange:
			// Idle receiver locks onto the first frame it senses, even
			// one too weak to decode (noise lock). Energy already in
			// flight from other transmitters counts as interference.
			rx := c.getRx()
			rx.tx, rx.signal, rx.decodable = tx, p, d <= c.cfg.TxRange
			for _, other := range c.flight {
				if other == tx {
					continue
				}
				op := c.cfg.power(c.nodes[other.src].pos.Dist(n.pos))
				if rx.signal < c.cfg.CaptureRatio*op {
					rx.corrupted = true
					if rx.decodable {
						c.Stats.Collisions++
					}
					break
				}
			}
			n.rx = rx
		}
	}

	c.eng.ScheduleFuncAt(tx.end, tx.finishFn)
	return tx.end
}

// finish completes a transmission: lowers carrier sense, resolves frame
// delivery at every receiver that had locked onto it.
func (c *Channel) finish(tx *transmission) {
	sn := c.nodes[tx.src]
	sn.busyTx = false

	for _, n := range c.order {
		if n.id == tx.src {
			continue
		}
		d := sn.pos.Dist(n.pos)
		if d <= c.cfg.CSRange {
			n.sensed--
			if n.sensed == 0 && !n.busyTx && n.radio != nil {
				n.radio.CarrierBusy(false)
			}
		}
		if n.rx != nil && n.rx.tx == tx {
			rx := n.rx
			n.rx = nil
			corrupted, decodable := rx.corrupted, rx.decodable
			c.freeRx = append(c.freeRx, rx)
			if corrupted || !decodable {
				if corrupted && decodable && n.radio != nil {
					n.radio.ReceiveError()
				}
				continue
			}
			// A severed link erases deterministically (before the loss
			// draw, so it leaves the RNG stream untouched).
			if c.down[linkKey{tx.src, n.id}] {
				c.Stats.Erasures++
				continue
			}
			// Apply per-link erasures (testbed link quality model).
			if p := c.loss[linkKey{tx.src, n.id}]; p > 0 && c.eng.Chance(p) {
				c.Stats.Erasures++
				continue
			}
			c.deliver(n, tx.frame)
		}
	}

	// Drop tx from the in-flight list, then recycle the frame and the
	// transmission: every receiver has been served synchronously above, so
	// nothing references either beyond this point. The flight's payload
	// reference (taken in Transmit) is dropped with it.
	for i, t := range c.flight {
		if t == tx {
			c.flight = append(c.flight[:i], c.flight[i+1:]...)
			break
		}
	}
	if p := tx.frame.Payload; p != nil {
		p.Release()
	}
	c.pool.PutFrame(tx.frame)
	tx.frame = nil
	c.freeTx = append(c.freeTx, tx)
}

func (c *Channel) deliver(n *node, f *pkt.Frame) {
	c.Stats.Decoded++
	if n.radio == nil {
		return
	}
	if f.TxDst == n.id || f.TxDst == pkt.Broadcast {
		n.radio.Receive(f)
	}
	n.radio.Overhear(f, pkt.CaptureInfo{At: c.eng.Now(), Listener: n.id, OnAir: true})
}

// NodeIDs returns all registered node ids in ascending order.
func (c *Channel) NodeIDs() []pkt.NodeID {
	ids := make([]pkt.NodeID, 0, len(c.nodes))
	for _, n := range c.order {
		ids = append(ids, n.id)
	}
	return ids
}
