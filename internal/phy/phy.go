// Package phy models the shared wireless channel.
//
// The model is the one ns-2.33 implements for 802.11 at default power with
// two-ray-ground propagation, which is what the paper's simulations use: a
// node decodes a frame if the transmitter is within the transmission range
// (250 m) and no other transmission overlaps the reception at the listener
// within its interference range; a node senses the channel busy whenever any
// transmitter within the carrier-sense range (550 m) is active. Because the
// medium is broadcast, every completed reception is delivered not only to
// the addressed MAC but also to every promiscuous tap in range — this is the
// "free" information EZ-Flow's Buffer Occupancy Estimator lives on.
//
// Per-link erasure probabilities model the heterogeneous link qualities of
// the paper's real testbed (Table 1): a loss applies to one receiver of one
// transmission and does not disturb other listeners.
package phy

import (
	"fmt"
	"math"

	"ezflow/internal/obs"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Position is a node location in metres.
type Position struct{ X, Y float64 }

// Dist returns the Euclidean distance between two positions.
func (p Position) Dist(q Position) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Config holds the channel parameters. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	TxRange    float64  // decode range in metres
	CSRange    float64  // carrier-sense range in metres
	BitRate    float64  // channel bit rate in bit/s
	PreambleNS sim.Time // PLCP preamble+header duration
	// CaptureRatio is the minimum signal-to-interference power ratio for
	// a locked reception to survive an overlapping transmission (ns-2's
	// CPThresh, 10 = 10 dB). Power follows the two-ray-ground d^-4 law,
	// so an interferer twice as far as the signal source is 12 dB down
	// and is captured over, while an interferer at equal distance (the
	// hidden-terminal case) destroys the frame.
	CaptureRatio float64
	// PathLossExp is the path-loss exponent (4 for two-ray ground).
	PathLossExp float64
}

// DefaultConfig mirrors the paper's ns-2 settings: 802.11b at 1 Mb/s,
// 250 m transmission range, 550 m sensing range, long PLCP preamble,
// two-ray-ground propagation with a 10 dB capture threshold.
func DefaultConfig() Config {
	return Config{
		TxRange:      250,
		CSRange:      550,
		BitRate:      1e6,
		PreambleNS:   192 * sim.Microsecond,
		CaptureRatio: 10,
		PathLossExp:  4,
	}
}

// power is the received power (arbitrary units) at distance d.
func (c Config) power(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return math.Pow(d, -c.PathLossExp)
}

// AirTime reports how long a frame of n bytes occupies the medium.
func (c Config) AirTime(bytes int) sim.Time {
	bits := float64(bytes * 8)
	return c.PreambleNS + sim.Time(bits/c.BitRate*float64(sim.Second))
}

// Radio is the interface the MAC layer implements to receive PHY
// indications.
type Radio interface {
	// CarrierBusy is called when the medium transitions busy/idle at this
	// node's position.
	CarrierBusy(busy bool)
	// Receive delivers a frame that was decoded successfully and is
	// MAC-addressed to this node (or broadcast).
	Receive(f *pkt.Frame)
	// Overhear delivers every frame decoded at this node regardless of MAC
	// address — the promiscuous tap. Called after Receive for addressed
	// frames.
	Overhear(f *pkt.Frame, ci pkt.CaptureInfo)
	// ReceiveError reports that a frame strong enough to decode was
	// destroyed by a collision. 802.11 stations react by deferring EIFS
	// instead of DIFS before their next access.
	ReceiveError()
}

// transmission is an in-flight frame. Transmissions are pooled by the
// channel; finishFn is built once per pooled object so completing a flight
// schedules no new closure. srcn caches the transmitter's station and
// flightIdx its position in the flight list, so completing a flight does
// neither a map lookup nor a linear scan.
type transmission struct {
	srcn      *Station
	frame     *pkt.Frame
	start     sim.Time
	end       sim.Time
	flightIdx int
	finishFn  func()
}

// Station is the PHY-side identity of one registered node. AddNode
// returns it as an opaque handle; the MAC layer passes it back to
// TransmitFrom so the per-transmission path never resolves a node id
// through a map. Mutable per-event state (carrier-sense counts, busy
// flags, reception tracking) lives in the Channel's dense slot-indexed
// arrays, not here, so the hot-path walks stay within a few
// cache-resident slices.
type Station struct {
	id    pkt.NodeID
	pos   Position
	radio Radio
	slot  int32 // dense index (position in Channel.order); -1 until indexed
	// Neighbor index (built in index.go): nbrs lists every station within
	// interference range ascending by slot; nbrSlots mirrors their slots
	// in a flat array for cache-dense binary search; csNbrs indexes the
	// subsequence of nbrs within carrier-sense range (the only stations
	// finish can owe a sensed-- or a delivery to).
	nbrs     []link
	nbrSlots []int32
	csNbrs   []int32
	// owned marks the three lists as station-private storage rather than
	// arena sub-slices: MoveNode detaches a station (copy-on-write) the
	// first time its list has to grow or shrink, so incremental resizes
	// can never bleed into the neighbor packed after it in the arena. A
	// full rebuild re-points everything at the arenas and clears it.
	owned bool
}

// reception is the state of a receiver locked onto one frame. ns-2
// semantics: the first frame whose energy reaches a node locks its
// receiver, even if it is too weak to decode (a "noise lock"); later
// overlapping frames either are captured over (signal/interference >=
// CaptureRatio) or corrupt the locked frame. The receiver never switches
// to a later, stronger frame. Receptions live by value in the channel's
// slot-indexed rx array (tx == nil means idle), so locking and resolving
// a receiver is a dense array write, not a pool round-trip.
type reception struct {
	tx        *transmission
	signal    float64 // received power of the locked frame
	decodable bool    // within TxRange (above the receive threshold)
	corrupted bool
}

// Channel is the shared medium connecting all nodes.
type Channel struct {
	cfg Config
	eng *sim.Engine
	// idx maps node ids to dense slots; order holds the stations in slot
	// (= ascending id) order. All broadcast iteration follows it so that
	// same-instant event scheduling is deterministic, and per-event code
	// resolves stations by slot instead of hashing a map.
	idx   pkt.NodeIndex
	order []*Station
	// indexed marks the neighbor lists as built; AddNode clears it and
	// the next transmission rebuilds (see index.go).
	indexed bool
	scratch []int32 // candidate buffer reused across index builds
	// grid is the spatial hash the last buildIndex bucketed the stations
	// into, kept alive so MoveNode can re-bucket a moving station without
	// rebuilding; moveBuf is MoveNode's reusable new-list staging buffer.
	grid    *SpatialGrid
	moveBuf []link
	// Arenas backing every station's neighbor lists (sub-sliced by
	// buildIndex); pointer-free, so invisible to the garbage collector.
	linkArena []link
	slotArena []int32
	csArena   []int32
	// Dense per-slot event state: the number of in-flight transmissions
	// each station senses, whether it is itself transmitting, and the
	// reception it is locked onto (rx[slot].tx == nil when idle). For
	// realistic topologies all three fit in L1/L2, so the neighbor walks
	// touch no scattered heap objects.
	sensed []int32
	busyTx []bool
	rx     []reception
	loss   map[linkKey]float64 // per directed link erasure probability
	down   map[linkKey]bool    // severed directed links (dynamics overrides)
	flight []*transmission
	pool   *pkt.Pool       // packet/frame pool shared by the whole stack
	freeTx []*transmission // recycled transmissions

	// Stats counts channel-level events for tests and experiments.
	Stats ChannelStats

	// obs holds the optional per-station counter families; all-nil (the
	// default) costs one branch per increment site. See SetCounters.
	obs Counters
}

// ChannelStats aggregates medium-level counters.
type ChannelStats struct {
	// Transmissions counts frames put on the air.
	Transmissions uint64
	// Decoded counts successful receptions (per receiver).
	Decoded uint64
	// Collisions counts decodable receptions destroyed by interference
	// (per receiver).
	Collisions uint64
	// Erasures counts decodable receptions lost to link loss or a severed
	// link (per receiver).
	Erasures uint64
	// Captures counts decodable locked receptions that survived an
	// overlapping transmission through the capture effect (per receiver,
	// per surviving overlap).
	Captures uint64
}

// Counters bundles the observability layer's per-station counter
// families, each indexed by PHY station slot (ascending node id — the
// order NodeIDs reports). Tx counts at the transmitter's slot;
// Collisions, Captures and Erasures count at the receiver's. Any field
// may be nil; SetCounters with the zero value detaches everything.
type Counters struct {
	// Tx counts transmissions per transmitting station.
	Tx *obs.CounterVec
	// Collisions counts destroyed decodable receptions per receiver.
	Collisions *obs.CounterVec
	// Captures counts capture-effect survivals per receiver.
	Captures *obs.CounterVec
	// Erasures counts link-loss/severed-link erasures per receiver.
	Erasures *obs.CounterVec
}

// SetCounters attaches per-station counter families (see Counters).
// Counting writes only into the families, so attaching them cannot
// change simulation behaviour.
func (c *Channel) SetCounters(k Counters) { c.obs = k }

type linkKey struct{ a, b pkt.NodeID }

// NewChannel creates an empty channel over the given engine.
func NewChannel(eng *sim.Engine, cfg Config) *Channel {
	return &Channel{
		cfg:  cfg,
		eng:  eng,
		loss: make(map[linkKey]float64),
		down: make(map[linkKey]bool),
		pool: pkt.NewPool(),
	}
}

// Config returns the channel configuration.
func (c *Channel) Config() Config { return c.cfg }

// Pool returns the channel's packet/frame pool. The MAC, traffic, and
// transport layers draw from it so that steady-state forwarding reuses
// storage instead of allocating.
func (c *Channel) Pool() *pkt.Pool { return c.pool }

// getTx recycles (or allocates) a transmission.
func (c *Channel) getTx() *transmission {
	if n := len(c.freeTx); n > 0 {
		tx := c.freeTx[n-1]
		c.freeTx[n-1] = nil
		c.freeTx = c.freeTx[:n-1]
		return tx
	}
	tx := &transmission{}
	tx.finishFn = func() { c.finish(tx) }
	return tx
}

// AddNode registers a station at pos with its MAC-layer radio and returns
// its handle for TransmitFrom. Adding the same id twice panics:
// topologies are static for the lifetime of a run. Registering a station
// invalidates the neighbor index; the next transmission rebuilds it.
func (c *Channel) AddNode(id pkt.NodeID, pos Position, r Radio) *Station {
	at, ok := c.idx.Add(id)
	if !ok {
		panic(fmt.Sprintf("phy: duplicate node %v", id))
	}
	st := &Station{id: id, pos: pos, radio: r, slot: -1}
	c.order = append(c.order, nil)
	copy(c.order[at+1:], c.order[at:])
	c.order[at] = st
	c.indexed = false
	return st
}

// SetRadio rebinds the radio of an existing node (used by the MAC package
// which creates the PHY entry before its own state). Neighbor-list
// records reference the station, not the radio, so no invalidation is
// needed.
func (c *Channel) SetRadio(id pkt.NodeID, r Radio) {
	n := c.station(id)
	if n == nil {
		panic(fmt.Sprintf("phy: SetRadio for unknown node %v", id))
	}
	n.radio = r
}

// SetLinkLoss sets the erasure probability for the directed link a->b.
// It models the residual frame error rate of a degraded real-world link.
// The cached neighbor record, if built, is patched in place so the next
// delivery over a->b sees the new probability.
func (c *Channel) SetLinkLoss(a, b pkt.NodeID, p float64) {
	if p < 0 || p > 1 {
		panic("phy: loss probability out of range")
	}
	c.loss[linkKey{a, b}] = p
	if lk := c.cachedLink(a, b); lk != nil {
		lk.loss = p
	}
}

// LinkLoss reports the configured erasure probability for a->b.
func (c *Channel) LinkLoss(a, b pkt.NodeID) float64 { return c.loss[linkKey{a, b}] }

// SetLinkDown severs (down=true) or restores (down=false) the directed
// link a->b. While severed, no frame from a is ever delivered to b,
// regardless of distance or loss settings; carrier sensing is unaffected,
// because the energy still occupies the medium. A downed link therefore
// models a deep fade or obstruction at the receiver; powering a whole
// station off is mac.SetDown's job. The check consumes no randomness, so
// toggling a link perturbs no other node's event stream. The cached
// neighbor record, if built, is patched in place.
func (c *Channel) SetLinkDown(a, b pkt.NodeID, down bool) {
	if down {
		c.down[linkKey{a, b}] = true
	} else {
		delete(c.down, linkKey{a, b})
	}
	if lk := c.cachedLink(a, b); lk != nil {
		lk.down = down
	}
}

// LinkDown reports whether the directed link a->b is currently severed.
func (c *Channel) LinkDown(a, b pkt.NodeID) bool { return c.down[linkKey{a, b}] }

// Position reports a node's position.
func (c *Channel) Position(id pkt.NodeID) Position { return c.station(id).pos }

// InTxRange reports whether b can decode a's transmissions.
func (c *Channel) InTxRange(a, b pkt.NodeID) bool {
	na, nb := c.station(a), c.station(b)
	return na.pos.Dist(nb.pos) <= c.cfg.TxRange
}

// InCSRange reports whether b senses a's transmissions.
func (c *Channel) InCSRange(a, b pkt.NodeID) bool {
	na, nb := c.station(a), c.station(b)
	return na.pos.Dist(nb.pos) <= c.cfg.CSRange
}

// Busy reports whether the medium is sensed busy at node id, either because
// a neighbour within carrier-sense range is transmitting or because the node
// itself is.
func (c *Channel) Busy(id pkt.NodeID) bool {
	if !c.indexed {
		c.buildIndex()
	}
	n := c.station(id)
	return c.sensed[n.slot] > 0 || c.busyTx[n.slot]
}

// AirTime exposes the frame air time for the channel's bit rate.
func (c *Channel) AirTime(bytes int) sim.Time { return c.cfg.AirTime(bytes) }

// Transmit puts a frame on the air from src, resolving the station by
// id. Callers on the per-frame path hold the *Station from AddNode and
// use TransmitFrom directly.
func (c *Channel) Transmit(src pkt.NodeID, f *pkt.Frame) sim.Time {
	sn := c.station(src)
	if sn == nil {
		panic(fmt.Sprintf("phy: transmit from unknown node %v", src))
	}
	return c.TransmitFrom(sn, f)
}

// TransmitFrom puts a frame on the air from the given station. The caller
// (MAC) is responsible for having respected CSMA rules; the channel
// faithfully models the consequences either way (collisions at
// receivers). The returned time is when the transmission ends.
//
// This is the PHY hot path: it walks only the transmitter's neighbor
// list (every station beyond interference range is provably unaffected)
// and does no distance/path-loss math and no map lookups per event.
func (c *Channel) TransmitFrom(sn *Station, f *pkt.Frame) sim.Time {
	if !c.indexed {
		c.buildIndex()
	}
	if c.busyTx[sn.slot] {
		panic(fmt.Sprintf("phy: node %v already transmitting", sn.id))
	}
	now := c.eng.Now()
	dur := c.AirTime(f.Bytes())
	tx := c.getTx()
	tx.srcn, tx.frame, tx.start, tx.end = sn, f, now, now+dur
	tx.flightIdx = len(c.flight)
	c.flight = append(c.flight, tx)
	c.Stats.Transmissions++
	if c.obs.Tx != nil {
		c.obs.Tx.Inc(int(sn.slot))
	}
	c.busyTx[sn.slot] = true
	// The channel holds its own reference to a data frame's payload for
	// the duration of the flight: the transmitter may drop the packet
	// mid-air (retry limit, a halted node flushing its queues) and the
	// frame must not dangle into recycled pool storage.
	if f.Payload != nil {
		f.Payload.Retain()
	}

	// Raise carrier sense at every neighbor in CS range; lock idle
	// receivers onto the new frame; apply capture at already-locked
	// receivers. Neighbor lists ascend by slot (= id), preserving the
	// deterministic iteration order of the old all-stations loop.
	cr := c.cfg.CaptureRatio
	nbrs := sn.nbrs
	for i := range nbrs {
		lk := &nbrs[i]
		slot := lk.slot
		if lk.inCS {
			c.sensed[slot]++
			if c.sensed[slot] == 1 && !c.busyTx[slot] {
				if r := c.order[slot].radio; r != nil {
					r.CarrierBusy(true)
				}
			}
		}
		switch {
		case c.busyTx[slot]:
			// Half-duplex: a transmitting node ignores arrivals.
		case c.rx[slot].tx != nil:
			// Locked on another frame: the new energy is interference.
			// The locked frame survives only if it is CaptureRatio
			// stronger (ns-2 capture); the receiver never re-locks.
			rx := &c.rx[slot]
			if rx.signal < cr*lk.power {
				if !rx.corrupted && rx.decodable {
					c.Stats.Collisions++
					if c.obs.Collisions != nil {
						c.obs.Collisions.Inc(int(slot))
					}
				}
				rx.corrupted = true
			} else if !rx.corrupted && rx.decodable {
				// The locked frame rides out the new interference: the
				// capture effect the paper's ns-2 model (CPThresh) allows.
				c.Stats.Captures++
				if c.obs.Captures != nil {
					c.obs.Captures.Inc(int(slot))
				}
			}
		case lk.inCS:
			// Idle receiver locks onto the first frame it senses, even
			// one too weak to decode (noise lock). Energy already in
			// flight from other transmitters counts as interference.
			rx := &c.rx[slot]
			*rx = reception{tx: tx, signal: lk.power, decodable: lk.inTx}
			nst := c.order[slot]
			for _, other := range c.flight {
				if other == tx {
					continue
				}
				olk := nst.neighbor(other.srcn.slot)
				if olk == nil {
					continue // beyond interference range: cannot corrupt
				}
				if rx.signal < cr*olk.power {
					rx.corrupted = true
					if rx.decodable {
						c.Stats.Collisions++
						if c.obs.Collisions != nil {
							c.obs.Collisions.Inc(int(slot))
						}
					}
					break
				}
				if rx.decodable {
					c.Stats.Captures++
					if c.obs.Captures != nil {
						c.obs.Captures.Inc(int(slot))
					}
				}
			}
		}
	}

	c.eng.ScheduleFuncAt(tx.end, tx.finishFn)
	return tx.end
}

// finish completes a transmission: lowers carrier sense, resolves frame
// delivery at every receiver that had locked onto it. Like TransmitFrom
// it walks only the transmitter's neighbor list — a receiver can only
// have locked within CS range — and reads the severed flag and erasure
// probability from the cached link record instead of the maps.
func (c *Channel) finish(tx *transmission) {
	sn := tx.srcn
	c.busyTx[sn.slot] = false

	// Only carrier-sense-range neighbors can owe a sensed decrement, and
	// only they can have locked onto this frame, so the walk covers the
	// csNbrs subsequence (ascending slot order, like the full list).
	nbrs := sn.nbrs
	for _, k := range sn.csNbrs {
		lk := &nbrs[k]
		slot := lk.slot
		c.sensed[slot]--
		if c.sensed[slot] == 0 && !c.busyTx[slot] {
			if r := c.order[slot].radio; r != nil {
				r.CarrierBusy(false)
			}
		}
		if rx := &c.rx[slot]; rx.tx == tx {
			rx.tx = nil
			corrupted, decodable := rx.corrupted, rx.decodable
			if corrupted || !decodable {
				if corrupted && decodable {
					if r := c.order[slot].radio; r != nil {
						r.ReceiveError()
					}
				}
				continue
			}
			// A severed link erases deterministically (before the loss
			// draw, so it leaves the RNG stream untouched).
			if lk.down {
				c.Stats.Erasures++
				if c.obs.Erasures != nil {
					c.obs.Erasures.Inc(int(slot))
				}
				continue
			}
			// Apply per-link erasures (testbed link quality model).
			if p := lk.loss; p > 0 && c.eng.Chance(p) {
				c.Stats.Erasures++
				if c.obs.Erasures != nil {
					c.obs.Erasures.Inc(int(slot))
				}
				continue
			}
			c.deliver(c.order[slot], tx.frame)
		}
	}

	// Swap-remove tx from the in-flight list (order is irrelevant: the
	// interference scan over flights is order-independent), then recycle
	// the frame and the transmission: every receiver has been served
	// synchronously above, so nothing references either beyond this
	// point. The flight's payload reference (taken in TransmitFrom) is
	// dropped with it.
	last := len(c.flight) - 1
	if i := tx.flightIdx; i != last {
		moved := c.flight[last]
		c.flight[i] = moved
		moved.flightIdx = i
	}
	c.flight[last] = nil
	c.flight = c.flight[:last]
	if p := tx.frame.Payload; p != nil {
		p.Release()
	}
	c.pool.PutFrame(tx.frame)
	tx.frame = nil
	tx.srcn = nil
	c.freeTx = append(c.freeTx, tx)
}

func (c *Channel) deliver(n *Station, f *pkt.Frame) {
	c.Stats.Decoded++
	if n.radio == nil {
		return
	}
	if f.TxDst == n.id || f.TxDst == pkt.Broadcast {
		n.radio.Receive(f)
	}
	n.radio.Overhear(f, pkt.CaptureInfo{At: c.eng.Now(), Listener: n.id, OnAir: true})
}

// NodeIDs returns all registered node ids in ascending order.
func (c *Channel) NodeIDs() []pkt.NodeID {
	return append([]pkt.NodeID(nil), c.idx.IDs()...)
}
