package phy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// fakeRadio records the PHY indications a node receives.
type fakeRadio struct {
	busy      []bool
	received  []*pkt.Frame
	overheard []*pkt.Frame
	errors    int
}

func (r *fakeRadio) CarrierBusy(b bool)   { r.busy = append(r.busy, b) }
func (r *fakeRadio) Receive(f *pkt.Frame) { r.received = append(r.received, f) }
func (r *fakeRadio) ReceiveError()        { r.errors++ }
func (r *fakeRadio) Overhear(f *pkt.Frame, _ pkt.CaptureInfo) {
	r.overheard = append(r.overheard, f)
}

func frame(src, dst pkt.NodeID) *pkt.Frame {
	p := pkt.NewPacket(1, 1, src, dst, 1000, 0)
	return &pkt.Frame{Type: pkt.FrameData, TxSrc: src, TxDst: dst, Payload: p}
}

func setup(t *testing.T, positions ...Position) (*sim.Engine, *Channel, []*fakeRadio) {
	t.Helper()
	eng := sim.NewEngine(1)
	ch := NewChannel(eng, DefaultConfig())
	radios := make([]*fakeRadio, len(positions))
	for i, pos := range positions {
		radios[i] = &fakeRadio{}
		ch.AddNode(pkt.NodeID(i), pos, radios[i])
	}
	return eng, ch, radios
}

func TestAirTime(t *testing.T) {
	cfg := DefaultConfig()
	// 1000 bytes at 1 Mb/s = 8 ms + 192 us preamble.
	want := 192*sim.Microsecond + 8*sim.Millisecond
	if got := cfg.AirTime(1000); got != want {
		t.Fatalf("AirTime(1000) = %v, want %v", got, want)
	}
}

func TestBasicDelivery(t *testing.T) {
	eng, ch, radios := setup(t, Position{X: 0}, Position{X: 200})
	ch.Transmit(0, frame(0, 1))
	eng.Run(sim.Second)
	if len(radios[1].received) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(radios[1].received))
	}
	if len(radios[1].overheard) != 1 {
		t.Fatalf("tap got %d frames, want 1", len(radios[1].overheard))
	}
	if len(radios[0].received) != 0 {
		t.Fatal("transmitter received its own frame")
	}
}

func TestOutOfRangeNoDelivery(t *testing.T) {
	eng, ch, radios := setup(t, Position{X: 0}, Position{X: 300})
	ch.Transmit(0, frame(0, 1))
	eng.Run(sim.Second)
	if len(radios[1].received) != 0 {
		t.Fatal("out-of-range node decoded a frame")
	}
}

func TestOverhearNotAddressed(t *testing.T) {
	// Node 2 is in range of node 0 but the frame is addressed to node 1:
	// node 2 must overhear but not Receive — the broadcast-nature property
	// EZ-Flow is built on.
	eng, ch, radios := setup(t, Position{X: 0}, Position{X: 200}, Position{X: 100, Y: 100})
	ch.Transmit(0, frame(0, 1))
	eng.Run(sim.Second)
	if len(radios[2].received) != 0 {
		t.Fatal("third party Received an addressed frame")
	}
	if len(radios[2].overheard) != 1 {
		t.Fatal("third party did not overhear the frame")
	}
}

func TestCarrierSense(t *testing.T) {
	eng, ch, radios := setup(t, Position{X: 0}, Position{X: 500}, Position{X: 600})
	if ch.Busy(1) {
		t.Fatal("medium busy before any transmission")
	}
	ch.Transmit(0, frame(0, 1))
	if !ch.Busy(1) {
		t.Fatal("node within CS range does not sense the transmission")
	}
	if ch.Busy(2) {
		t.Fatal("node beyond CS range senses the transmission")
	}
	eng.Run(sim.Second)
	if ch.Busy(1) {
		t.Fatal("medium still busy after the transmission ended")
	}
	// Busy/idle indications arrived in pairs.
	if len(radios[1].busy) != 2 || !radios[1].busy[0] || radios[1].busy[1] {
		t.Fatalf("CS indications: %v", radios[1].busy)
	}
	if len(radios[2].busy) != 0 {
		t.Fatal("far node received CS indications")
	}
}

func TestHiddenTerminalCollision(t *testing.T) {
	// 0 and 2 are hidden from each other (600 m apart); 1 sits between
	// them at 200/400 m. Node 2 transmits first, node 1 locks onto its
	// energy (decodable? 400 > 250: noise lock), then node 0's frame
	// arrives 16x stronger — but under lock-first semantics node 1 cannot
	// decode it.
	eng, ch, radios := setup(t, Position{X: 0}, Position{X: 200}, Position{X: 600})
	ch.Transmit(2, frame(2, 1))
	eng.Schedule(sim.Millisecond, func() { ch.Transmit(0, frame(0, 1)) })
	eng.Run(sim.Second)
	if len(radios[1].received) != 0 {
		t.Fatal("frame decoded despite noise lock from a hidden terminal")
	}
}

func TestCaptureStrongerFirst(t *testing.T) {
	// Node 0's frame (200 m) locks node 1 first; node 2's interference
	// from 400 m is 16x weaker (12 dB > 10 dB threshold): captured over.
	eng, ch, radios := setup(t, Position{X: 0}, Position{X: 200}, Position{X: 600})
	ch.Transmit(0, frame(0, 1))
	eng.Schedule(sim.Millisecond, func() { ch.Transmit(2, frame(2, 1)) })
	eng.Run(sim.Second)
	if len(radios[1].received) != 1 {
		t.Fatal("capture failed: stronger first frame was not decoded")
	}
}

func TestEqualPowerCollision(t *testing.T) {
	// Two transmitters both 200 m from the receiver: equal power, no
	// capture, both lost; the receiver reports a receive error (EIFS).
	eng, ch, radios := setup(t,
		Position{X: 0}, Position{X: 200}, Position{X: 400})
	ch.Transmit(0, frame(0, 1))
	eng.Schedule(sim.Millisecond, func() { ch.Transmit(2, frame(2, 1)) })
	eng.Run(sim.Second)
	if len(radios[1].received) != 0 {
		t.Fatal("equal-power collision decoded a frame")
	}
	if radios[1].errors == 0 {
		t.Fatal("collision on a decodable frame did not raise ReceiveError")
	}
	if ch.Stats.Collisions == 0 {
		t.Fatal("collision counter not incremented")
	}
}

func TestHalfDuplex(t *testing.T) {
	eng, ch, radios := setup(t, Position{X: 0}, Position{X: 200})
	ch.Transmit(1, frame(1, 0)) // node 1 is transmitting...
	ch.Transmit(0, frame(0, 1)) // ...so it cannot receive this
	eng.Run(sim.Second)
	if len(radios[1].received) != 0 {
		t.Fatal("half-duplex violation: node received while transmitting")
	}
}

func TestLinkLossErasure(t *testing.T) {
	eng, ch, radios := setup(t, Position{X: 0}, Position{X: 200})
	ch.SetLinkLoss(0, 1, 1.0)
	ch.Transmit(0, frame(0, 1))
	eng.Run(sim.Second)
	if len(radios[1].received) != 0 {
		t.Fatal("frame delivered across a 100%-loss link")
	}
	if ch.Stats.Erasures != 1 {
		t.Fatalf("erasures = %d, want 1", ch.Stats.Erasures)
	}
	if ch.LinkLoss(0, 1) != 1.0 {
		t.Fatal("LinkLoss readback")
	}
}

func TestLinkLossIsDirectional(t *testing.T) {
	eng, ch, radios := setup(t, Position{X: 0}, Position{X: 200})
	ch.SetLinkLoss(0, 1, 1.0)
	ch.Transmit(1, frame(1, 0)) // reverse direction unaffected
	eng.Run(sim.Second)
	if len(radios[0].received) != 1 {
		t.Fatal("reverse direction affected by forward loss")
	}
}

func TestTransmitWhileTransmittingPanics(t *testing.T) {
	_, ch, _ := setup(t, Position{X: 0}, Position{X: 200})
	ch.Transmit(0, frame(0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("double transmit did not panic")
		}
	}()
	ch.Transmit(0, frame(0, 1))
}

func TestDuplicateNodePanics(t *testing.T) {
	_, ch, _ := setup(t, Position{X: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	ch.AddNode(0, Position{X: 1}, &fakeRadio{})
}

func TestRangePredicates(t *testing.T) {
	_, ch, _ := setup(t, Position{X: 0}, Position{X: 200}, Position{X: 400}, Position{X: 600})
	if !ch.InTxRange(0, 1) || ch.InTxRange(0, 2) {
		t.Fatal("InTxRange")
	}
	if !ch.InCSRange(0, 2) || ch.InCSRange(0, 3) {
		t.Fatal("InCSRange")
	}
	if len(ch.NodeIDs()) != 4 {
		t.Fatal("NodeIDs")
	}
	if ch.Position(2).X != 400 {
		t.Fatal("Position")
	}
}

func TestPositionDist(t *testing.T) {
	a, b := Position{X: 0, Y: 0}, Position{X: 3, Y: 4}
	if a.Dist(b) != 5 {
		t.Fatal("Dist(3-4-5)")
	}
}

// Property: delivery is monotone in distance — if a frame is decoded at
// distance d with no interference, it is decoded at any smaller distance.
func TestPropertyDeliveryByRange(t *testing.T) {
	f := func(dRaw uint16) bool {
		d := float64(dRaw%700) + 1
		eng := sim.NewEngine(1)
		ch := NewChannel(eng, DefaultConfig())
		r := &fakeRadio{}
		ch.AddNode(0, Position{X: 0}, &fakeRadio{})
		ch.AddNode(1, Position{X: d}, r)
		ch.Transmit(0, frame(0, 1))
		eng.Run(sim.Second)
		got := len(r.received) == 1
		want := d <= DefaultConfig().TxRange
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sensed counter always returns to zero after all
// transmissions finish, for random transmission schedules.
func TestPropertySenseBalanced(t *testing.T) {
	f := func(starts []uint16) bool {
		if len(starts) > 20 {
			starts = starts[:20]
		}
		eng := sim.NewEngine(1)
		ch := NewChannel(eng, DefaultConfig())
		n := 5
		for i := 0; i < n; i++ {
			ch.AddNode(pkt.NodeID(i), Position{X: float64(i) * 150}, &fakeRadio{})
		}
		for i, s := range starts {
			src := pkt.NodeID(i % n)
			at := sim.Time(s) * sim.Microsecond
			eng.ScheduleAt(at, func() {
				// A node may legitimately still be transmitting from
				// a previous schedule entry; skip those.
				defer func() { _ = recover() }()
				ch.Transmit(src, frame(src, (src+1)%pkt.NodeID(n)))
			})
		}
		eng.Run(10 * sim.Second)
		for i := 0; i < n; i++ {
			if ch.Busy(pkt.NodeID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}
