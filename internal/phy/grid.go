// Spatial hash grid over node positions. Building the neighbor index (and
// mesh's random-disk connectivity search) needs "all nodes within r of p"
// queries; a uniform grid with cell size r answers them from the 3×3 cell
// neighborhood, turning an O(N²) all-pairs pass into O(N·degree) for any
// spatially bounded deployment.
package phy

import "math"

// SpatialGrid is a uniform spatial hash over a fixed slice of positions.
// Cells are square with side equal to the query radius, so every point
// within that radius of a probe lies in the probe's 3×3 cell
// neighborhood. Within a cell, indices are stored ascending; Near
// therefore returns candidates that are sorted per cell but not
// globally — callers that need ascending order (the repository's
// determinism convention for broadcast iteration) sort the result.
type SpatialGrid struct {
	cell       float64
	minX, minY float64
	cols, rows int
	cells      [][]int32
}

// maxGridCellsPerAxis bounds grid memory when the deployment extent is
// huge relative to the query radius; past the cap, cells simply get
// coarser (queries stay correct, just less selective).
const maxGridCellsPerAxis = 1024

// NewSpatialGrid builds a grid over pos for queries of the given radius.
// A non-positive or non-finite radius yields a single cell holding every
// point (correct, no pruning).
func NewSpatialGrid(pos []Position, radius float64) *SpatialGrid {
	g := &SpatialGrid{cell: radius, cols: 1, rows: 1}
	if len(pos) == 0 {
		g.cells = make([][]int32, 1)
		return g
	}
	minX, minY := pos[0].X, pos[0].Y
	maxX, maxY := minX, minY
	for _, p := range pos[1:] {
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	if radius > 0 && !math.IsInf(radius, 1) {
		g.cols = gridAxisCells(maxX-minX, radius)
		g.rows = gridAxisCells(maxY-minY, radius)
		// Honour the cap by coarsening the cells, never by dropping area.
		g.cell = math.Max(radius, math.Max((maxX-minX)/float64(g.cols), (maxY-minY)/float64(g.rows))+1e-9)
	}
	g.cells = make([][]int32, g.cols*g.rows)
	for i, p := range pos {
		c := g.cellIndex(p)
		g.cells[c] = append(g.cells[c], int32(i))
	}
	return g
}

// gridAxisCells sizes one axis: enough cells of side `cell` to cover the
// extent, at least 1, at most maxGridCellsPerAxis.
func gridAxisCells(extent, cell float64) int {
	n := int(extent/cell) + 1
	if n < 1 {
		n = 1
	}
	if n > maxGridCellsPerAxis {
		n = maxGridCellsPerAxis
	}
	return n
}

// cellIndex maps a position to its cell, clamping onto the grid so
// probes outside the built extent still resolve.
func (g *SpatialGrid) cellIndex(p Position) int {
	cx := g.axisCell(p.X - g.minX)
	cy := g.axisCell(p.Y - g.minY)
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

func (g *SpatialGrid) axisCell(d float64) int {
	if d <= 0 || g.cell <= 0 {
		return 0
	}
	return int(d / g.cell)
}

// Move re-buckets index i from its cell at `from` to its cell at `to`,
// keeping cell contents ascending. Clamping makes the grid closed under
// movement: a point that drifts outside the built extent lands in the
// nearest edge cell, and because cellIndex is monotone and 1-Lipschitz
// in cell units per axis, any probe within the query radius of the true
// position still finds it in its 3×3 neighborhood. Cells only get less
// selective (never incorrect) as points leave the original extent.
func (g *SpatialGrid) Move(i int32, from, to Position) {
	a, b := g.cellIndex(from), g.cellIndex(to)
	if a == b {
		return
	}
	ca := g.cells[a]
	k := lowerBound32(ca, i)
	if k >= len(ca) || ca[k] != i {
		panic("phy: SpatialGrid.Move of unbucketed index")
	}
	copy(ca[k:], ca[k+1:])
	g.cells[a] = ca[:len(ca)-1]
	cb := append(g.cells[b], 0)
	k = lowerBound32(cb[:len(cb)-1], i)
	copy(cb[k+1:], cb[k:])
	cb[k] = i
	g.cells[b] = cb
}

// lowerBound32 returns the first index in the ascending slice s whose
// value is >= v (len(s) when none is).
func lowerBound32(s []int32, v int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Near appends to dst the indices of every stored position in the 3×3
// cell neighborhood of p — a superset of the positions within the query
// radius of p — and returns the extended slice. dst is reused across
// calls to keep the build loop allocation-free after warmup.
func (g *SpatialGrid) Near(p Position, dst []int32) []int32 {
	cx := g.axisCell(p.X - g.minX)
	cy := g.axisCell(p.Y - g.minY)
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	for dy := -1; dy <= 1; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= g.cols {
				continue
			}
			dst = append(dst, g.cells[y*g.cols+x]...)
		}
	}
	return dst
}
