// MoveNode correctness: incremental index patches must be
// indistinguishable from a from-scratch rebuild (VerifyIndex is the
// oracle), mid-flight movers must keep carrier-sense accounting
// balanced, and the steady-state move path must not allocate.
package phy

import (
	"math"
	"math/rand"
	"testing"

	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// TestMoveNodeIncrementalMatchesRebuild drives hundreds of random moves
// (including out-of-extent drifts) interleaved with link-state toggles
// and live traffic, verifying the patched index against the from-scratch
// oracle after every step.
func TestMoveNodeIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pos := diskPositions(60, 3)
	eng := sim.NewEngine(1)
	ch := NewChannel(eng, DefaultConfig())
	sts := make([]*Station, len(pos))
	for i, p := range pos {
		sts[i] = ch.AddNode(pkt.NodeID(i), p, nil)
	}
	// Build the index with a first transmission.
	f := ch.Pool().Frame()
	f.Type = pkt.FrameData
	f.TxSrc, f.TxDst = 0, 1
	ch.TransmitFrom(sts[0], f)
	for eng.RunStep() {
	}

	extent := 100 * math.Sqrt(60)
	for step := 0; step < 400; step++ {
		id := pkt.NodeID(rng.Intn(len(pos)))
		switch rng.Intn(10) {
		case 0: // long-haul jump, may leave the built grid extent
			ch.MoveNode(id, Position{
				X: (rng.Float64()*4 - 2) * extent,
				Y: (rng.Float64()*4 - 2) * extent,
			})
		case 1: // link-state churn interleaved with movement
			b := pkt.NodeID(rng.Intn(len(pos)))
			if b != id {
				ch.SetLinkDown(id, b, rng.Intn(2) == 0)
				ch.SetLinkLoss(b, id, rng.Float64())
			}
		case 2: // a flight between moves keeps event state live
			src := sts[rng.Intn(len(sts))]
			fr := ch.Pool().Frame()
			fr.Type = pkt.FrameData
			fr.TxSrc = src.id
			fr.TxDst = pkt.NodeID(rng.Intn(len(pos)))
			ch.TransmitFrom(src, fr)
			for eng.RunStep() {
			}
		default: // local wander, the common mobility step
			p := ch.Position(id)
			ch.MoveNode(id, Position{
				X: p.X + rng.NormFloat64()*80,
				Y: p.Y + rng.NormFloat64()*80,
			})
		}
		if err := ch.VerifyIndex(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestMoveNodeBeforeIndexBuilds exercises the pre-index path: moves
// before the first transmission just adopt positions, and the eventual
// build sees the final geometry.
func TestMoveNodeBeforeIndexBuilds(t *testing.T) {
	eng, ch, radios := setup(t, Position{}, Position{X: 200}, Position{X: 1500})
	if !ch.MoveNode(2, Position{X: 400}) {
		t.Fatal("move into decode range should report membership change")
	}
	if ch.MoveNode(2, Position{X: 390}) {
		t.Fatal("move within decode range should not report membership change")
	}
	ch.Transmit(1, frame(1, 2))
	eng.Run(sim.Second)
	if err := ch.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
	if len(radios[2].received) != 1 {
		t.Fatalf("moved node should decode the frame, got %d", len(radios[2].received))
	}
}

// TestMoveReceiverOutMidFlight pins the mid-flight rules: a receiver
// that drifts beyond carrier-sense range of the transmitter mid-frame
// loses the reception silently, its carrier goes idle immediately, and
// the transmission's completion leaves the sense accounting balanced.
func TestMoveReceiverOutMidFlight(t *testing.T) {
	eng, ch, radios := setup(t, Position{}, Position{X: 200})
	ch.Transmit(0, frame(0, 1))
	eng.Run(sim.Millisecond) // mid-flight (1028-byte frame ≈ 8.4 ms)
	if !ch.Busy(1) {
		t.Fatal("receiver should sense the flight before moving")
	}
	ch.MoveNode(1, Position{X: 800}) // beyond CSRange(550) of the transmitter
	if ch.Busy(1) {
		t.Fatal("receiver beyond CS range must sense idle")
	}
	eng.Run(sim.Second)
	if len(radios[1].received) != 0 {
		t.Fatal("aborted reception must not deliver")
	}
	if got := radios[1].busy; len(got) != 2 || got[0] != true || got[1] != false {
		t.Fatalf("carrier transitions = %v, want [true false]", got)
	}
	if ch.Busy(0) || ch.Busy(1) {
		t.Fatal("sense counts must be balanced after the flight")
	}
	if err := ch.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
}

// TestMoveReceiverWithinRangeMidFlight: movement that keeps the
// transmitter within CS range preserves the lock and the delivery.
func TestMoveReceiverWithinRangeMidFlight(t *testing.T) {
	eng, ch, radios := setup(t, Position{}, Position{X: 200})
	ch.Transmit(0, frame(0, 1))
	eng.Run(sim.Millisecond)
	ch.MoveNode(1, Position{X: 240})
	eng.Run(sim.Second)
	if len(radios[1].received) != 1 {
		t.Fatalf("reception should survive an in-range move, got %d deliveries", len(radios[1].received))
	}
	if ch.Busy(0) || ch.Busy(1) {
		t.Fatal("sense counts must be balanced after the flight")
	}
}

// TestMoveIntoFlightNoLock: a node that moves into range of an ongoing
// transmission senses it (carrier busy) but never locks on — the
// preamble was missed — so nothing is delivered and accounting stays
// balanced when the flight ends.
func TestMoveIntoFlightNoLock(t *testing.T) {
	eng, ch, radios := setup(t, Position{}, Position{X: 2000})
	ch.Transmit(0, frame(0, 1))
	eng.Run(sim.Millisecond)
	ch.MoveNode(1, Position{X: 200})
	if !ch.Busy(1) {
		t.Fatal("mover inside CS range must sense the flight")
	}
	eng.Run(sim.Second)
	if len(radios[1].received) != 0 {
		t.Fatal("a mover must not acquire a lock mid-flight")
	}
	if got := radios[1].busy; len(got) != 2 || got[0] != true || got[1] != false {
		t.Fatalf("carrier transitions = %v, want [true false]", got)
	}
	if ch.Busy(0) || ch.Busy(1) {
		t.Fatal("sense counts must be balanced after the flight")
	}
}

// TestMoveWhileTransmittingPanics pins the contract callers gate on via
// Transmitting.
func TestMoveWhileTransmittingPanics(t *testing.T) {
	eng, ch, _ := setup(t, Position{}, Position{X: 200})
	ch.Transmit(0, frame(0, 1))
	if !ch.Transmitting(0) {
		t.Fatal("node 0 should be transmitting")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MoveNode of a transmitting station must panic")
		}
	}()
	ch.MoveNode(0, Position{X: 50})
	_ = eng
}

// TestMoveNodeSteadyStateAllocs pins the zero-alloc steady state of the
// incremental move path once list capacities have warmed up.
func TestMoveNodeSteadyStateAllocs(t *testing.T) {
	ch, _, a, b := moveBench(200)
	if allocs := testing.AllocsPerRun(100, func() {
		ch.MoveNode(7, a)
		ch.MoveNode(7, b)
	}); allocs != 0 {
		t.Fatalf("steady-state MoveNode allocates %.1f allocs/op, want 0", allocs)
	}
}

// moveBench builds an indexed n-node disk channel and returns it with
// the mover's two oscillation endpoints (≈120 m apart, crossing decode
// and CS boundaries of several neighbors), pre-warmed so the move path
// is in steady state.
func moveBench(n int) (ch *Channel, eng *sim.Engine, a, b Position) {
	pos := diskPositions(n, 1)
	eng = sim.NewEngine(1)
	ch = NewChannel(eng, DefaultConfig())
	sts := make([]*Station, len(pos))
	for i, p := range pos {
		sts[i] = ch.AddNode(pkt.NodeID(i), p, nil)
	}
	f := ch.Pool().Frame()
	f.Type = pkt.FrameData
	f.TxSrc, f.TxDst = 0, 1
	ch.TransmitFrom(sts[0], f)
	for eng.RunStep() {
	}
	a = pos[7]
	b = Position{X: a.X + 120, Y: a.Y + 40}
	for i := 0; i < 4; i++ { // warm owned-list capacities along the path
		ch.MoveNode(7, b)
		ch.MoveNode(7, a)
	}
	return ch, eng, a, b
}

// BenchmarkMoveNode compares the incremental patch against the full
// index rebuild it replaces, at the 200-node disk scale: one position
// oscillation per op. The incremental path must be several times faster
// and allocation-free in steady state.
func BenchmarkMoveNode(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		ch, _, p1, p2 := moveBench(200)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				ch.MoveNode(7, p2)
			} else {
				ch.MoveNode(7, p1)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		ch, _, p1, p2 := moveBench(200)
		st := ch.station(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				st.pos = p2
			} else {
				st.pos = p1
			}
			ch.indexed = false
			ch.buildIndex()
		}
	})
}
