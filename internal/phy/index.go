// The PHY neighbor index: precomputed per-station neighbor lists that
// turn every Transmit/finish broadcast from an O(N) all-stations walk
// with per-pair math.Hypot/math.Pow and map lookups into an O(degree)
// walk over flat, cache-resident link records.
//
// Geometry changes only through explicit position updates (phy.MoveNode,
// driven by the mobility subsystem), so distances, received powers, and
// the in-CS-range/in-Tx-range predicates are computed once, when the
// first transmission freezes the topology, and thereafter patched
// incrementally per move (move.go) instead of rebuilt. The other mutable
// per-link state — erasure probability and severed flags, which the
// dynamics subsystem toggles mid-run — is folded into the same records
// and patched in place by SetLinkLoss/SetLinkDown, so the hot path never
// consults the loss/down maps.
//
// Correctness bound: a neighbor list must contain every station one
// transmission can observably affect. Carrier sense and receiver locking
// reach CSRange. Interference reaches farther: a station locked onto a
// frame received at signal power S is corrupted by an interferer of
// power p when S < CaptureRatio·p; the weakest lockable signal is
// power(CSRange), so corruption is impossible beyond
//
//	CSRange · max(1, CaptureRatio)^(1/PathLossExp)
//
// which is the neighbor-list radius (≈978 m for the default 550 m /
// 10 dB / d⁻⁴ model). Stations beyond it are provably untouched by the
// event, so skipping them is behaviour-preserving — the indexed walk
// visits the exact subsequence of the old all-stations id-ordered loop
// that had any effect, in the same order, and therefore consumes the
// engine's RNG stream identically (the byte-identity pin the golden
// campaign tests enforce).
package phy

import (
	"math"
	"slices"

	"ezflow/internal/pkt"
)

// link is the cached record of one directed neighbor pair: the constant
// geometry (received power, range predicates) plus the mutable dynamics
// state (severed flag, erasure probability) of the link from the owning
// station to the station at slot. It is deliberately pointer-free — the
// whole index is backed by shared arenas the garbage collector never has
// to scan; the rare transitions that need the neighbor's radio resolve
// it through Channel.order.
type link struct {
	slot  int32 // the neighbor's dense slot; neighbor lists are sorted by it
	inCS  bool  // within carrier-sense range
	inTx  bool  // within decode range
	down  bool  // severed by dynamics (SetLinkDown)
	power float64
	loss  float64 // erasure probability (SetLinkLoss)
}

// interferenceRange is the neighbor-list radius: the distance beyond
// which a transmission can neither be sensed nor corrupt any reception
// (see the package comment for the derivation). The tiny relative margin
// guards the float boundary of the closed-form inversion; a degenerate
// path-loss exponent (<= 0) makes received power distance-independent,
// so every station interferes with every other and the index degrades to
// full lists.
func (c Config) interferenceRange() float64 {
	if c.PathLossExp <= 0 {
		return math.Inf(1)
	}
	cr := c.CaptureRatio
	if cr < 1 {
		cr = 1
	}
	return c.CSRange * math.Pow(cr, 1/c.PathLossExp) * (1 + 1e-9)
}

// buildIndex assigns dense slots in id order and computes every
// station's neighbor list via a spatial hash, O(N·degree) for spatially
// bounded deployments. Called lazily by the first transmission after a
// topology change; it reads the loss/down maps so records are coherent
// with mutations applied before the freeze. Dense per-slot event state
// (sensed counts, busy flags, locked receptions) is migrated from the
// previous slot assignment, so a rebuild between flights is transparent.
func (c *Channel) buildIndex() {
	n := len(c.order)
	r := c.cfg.interferenceRange()
	pos := make([]Position, n)
	sensed := make([]int32, n)
	busy := make([]bool, n)
	rx := make([]reception, n)
	for i, st := range c.order {
		if st.slot >= 0 && int(st.slot) < len(c.sensed) {
			sensed[i] = c.sensed[st.slot]
			busy[i] = c.busyTx[st.slot]
			rx[i] = c.rx[st.slot]
		}
		st.slot = int32(i)
		pos[i] = st.pos
	}
	c.sensed, c.busyTx, c.rx = sensed, busy, rx

	g := NewSpatialGrid(pos, r)
	c.grid = g
	cand := c.scratch
	// All per-station lists are appended into three shared arenas and
	// sub-sliced afterwards (the arenas may reallocate while growing):
	// one allocation each instead of three per station, contiguous
	// neighbor records, and — links being pointer-free — nothing for the
	// garbage collector to scan or write-barrier.
	links := c.linkArena[:0]
	keys := c.slotArena[:0]
	cs := c.csArena[:0]
	bounds := make([][3]int32, n+1)
	for i, st := range c.order {
		bounds[i] = [3]int32{int32(len(links)), int32(len(keys)), int32(len(cs))}
		cand = g.Near(pos[i], cand[:0])
		// Neighbor lists are walked in place of the old all-stations
		// id-ordered loop, so they must be ascending by slot (== id).
		slices.Sort(cand)
		start := len(links)
		for _, j := range cand {
			if int(j) == i {
				continue
			}
			d := st.pos.Dist(c.order[j].pos)
			if d > r {
				continue
			}
			key := linkKey{st.id, c.order[j].id}
			inCS := d <= c.cfg.CSRange
			if inCS {
				cs = append(cs, int32(len(links)-start))
			}
			links = append(links, link{
				slot:  j,
				inCS:  inCS,
				inTx:  d <= c.cfg.TxRange,
				down:  c.down[key],
				power: c.cfg.power(d),
				loss:  c.loss[key],
			})
			keys = append(keys, j)
		}
	}
	bounds[n] = [3]int32{int32(len(links)), int32(len(keys)), int32(len(cs))}
	c.linkArena, c.slotArena, c.csArena = links, keys, cs
	for i, st := range c.order {
		lo, hi := bounds[i], bounds[i+1]
		st.nbrs = links[lo[0]:hi[0]:hi[0]]
		st.nbrSlots = keys[lo[1]:hi[1]:hi[1]]
		st.csNbrs = cs[lo[2]:hi[2]:hi[2]]
		st.owned = false
	}
	c.scratch = cand
	c.indexed = true
}

// neighbor returns the cached link record toward the station at the
// given dense slot, or nil when it is beyond interference range. A
// binary search over the flat slot-key array — no hashing, no
// allocation, and the keys for a ~100-neighbor list fit in a handful of
// cache lines.
func (s *Station) neighbor(slot int32) *link {
	keys := s.nbrSlots
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < slot {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == slot {
		return &s.nbrs[lo]
	}
	return nil
}

// cachedLink returns the mutable record of the directed link a->b, or
// nil when the index is not built or the pair is beyond interference
// range (in which case no cached state exists to patch — the rebuild
// folds the maps back in).
func (c *Channel) cachedLink(a, b pkt.NodeID) *link {
	if !c.indexed {
		return nil
	}
	sa, sb := c.station(a), c.station(b)
	if sa == nil || sb == nil {
		return nil
	}
	return sa.neighbor(sb.slot)
}

// station resolves a node id to its Station, or nil if unregistered.
func (c *Channel) station(id pkt.NodeID) *Station {
	if slot, ok := c.idx.Slot(id); ok {
		return c.order[slot]
	}
	return nil
}
