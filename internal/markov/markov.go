// Package markov implements the discrete-time model of §6 of the paper:
// a K-hop chain whose state is the relay buffer vector b⃗ and the
// contention-window vector cw⃗, evolving as a random walk on the positive
// orthant of Z^(K-1). Each time slot one transmission pattern z⃗ occurs,
// drawn according to the current region (which buffers are empty) and the
// contention windows; buffers then update as
// b_i(n+1) = b_i(n) + z_{i-1}(n) - z_i(n), and EZ-Flow updates cw⃗ through
// the threshold function f of Eq. (2).
//
// For K = 4 the transmission-pattern distribution is the paper's Table 4
// over the eight regions A–H of Z³; for general K the same construction is
// generated programmatically from the 2-hop interference model: a node may
// transmit when its buffer is non-empty, it wins the contention among the
// non-silenced contenders with probability proportional to the product of
// the other contenders' windows (i.e. probability ∝ 1/cw_i), and
// transmissions whose 2-hop neighbourhoods do not overlap proceed in
// parallel; hidden-terminal collisions corrupt overlapping receptions.
package markov

import (
	"fmt"
	"math"
)

// Walk is the random-walk model of a K-hop chain. Node 0 is the saturated
// source (b0 = ∞), node K the sink (bK = 0 always); relay buffers are
// b[1..K-1].
type Walk struct {
	K  int   // number of hops
	B  []int // buffer occupancy; index 0 unused conceptually (source ∞)
	CW []int // contention windows of nodes 0..K-1

	// EZ-Flow dynamics parameters (Eq. 2).
	BMin, BMax   float64
	MinCW, MaxCW int
	EZEnabled    bool

	rng func() float64

	// Steps counts slots simulated.
	Steps uint64
}

// Config holds the walk's parameters.
type Config struct {
	K         int
	InitCW    int
	BMin      float64
	BMax      float64
	MinCW     int
	MaxCW     int
	EZEnabled bool
}

// DefaultConfig mirrors the paper's analysis setting for a 4-hop chain.
func DefaultConfig() Config {
	return Config{
		K:         4,
		InitCW:    1 << 5,
		BMin:      0.05, // any value < 1 makes "buffer empty" the signal
		BMax:      20,
		MinCW:     1 << 4,
		MaxCW:     1 << 15,
		EZEnabled: true,
	}
}

// NewWalk builds a walk. rng must return uniform floats in [0,1).
func NewWalk(cfg Config, rng func() float64) *Walk {
	if cfg.K < 2 {
		panic("markov: need at least 2 hops")
	}
	if cfg.InitCW <= 0 {
		cfg.InitCW = 32
	}
	w := &Walk{
		K:    cfg.K,
		B:    make([]int, cfg.K), // B[1..K-1] are relay buffers; B[0] ignored (∞)
		CW:   make([]int, cfg.K),
		BMin: cfg.BMin, BMax: cfg.BMax,
		MinCW: cfg.MinCW, MaxCW: cfg.MaxCW,
		EZEnabled: cfg.EZEnabled,
		rng:       rng,
	}
	for i := range w.CW {
		w.CW[i] = cfg.InitCW
	}
	return w
}

// Region classifies the buffer state of a 4-hop walk into the regions A–H
// of Figure 12: three booleans (b1>0, b2>0, b3>0) in the order
// A=(0,0,0), B=(1,0,0), C=(0,1,0), D=(0,0,1),
// E=(1,1,0), F=(1,0,1), G=(0,1,1), H=(1,1,1).
func (w *Walk) Region() string {
	if w.K != 4 {
		return ""
	}
	b1, b2, b3 := w.B[1] > 0, w.B[2] > 0, w.B[3] > 0
	switch {
	case !b1 && !b2 && !b3:
		return "A"
	case b1 && !b2 && !b3:
		return "B"
	case !b1 && b2 && !b3:
		return "C"
	case !b1 && !b2 && b3:
		return "D"
	case b1 && b2 && !b3:
		return "E"
	case b1 && !b2 && b3:
		return "F"
	case !b1 && b2 && b3:
		return "G"
	default:
		return "H"
	}
}

// Pattern is a link-activation vector z⃗ with its probability.
type Pattern struct {
	Z []int
	P float64
}

// hasBacklog reports whether node i has a packet to send (source always).
func (w *Walk) hasBacklog(i int) bool {
	if i == 0 {
		return true
	}
	return w.B[i] > 0
}

// Patterns enumerates the possible transmission patterns of the current
// state with their probabilities. The construction reproduces Table 4
// exactly for K=4 (verified against the closed forms in tests) and
// generalises it for other K. The rules, decoded from Table 4 and from the
// model of [9] the paper builds on, are:
//
//  1. Contenders = nodes with backlog (the source always has backlog).
//  2. Backoff race: among the not-yet-silenced contenders, node i is the
//     next to start transmitting with probability proportional to
//     Π_{j≠i} cw_j (i.e. ∝ 1/cw_i) — the cw-product formula visible in
//     every row of Table 4.
//  3. Carrier sense reaches one hop on the chain: when i starts
//     transmitting, contenders adjacent to i (|Δ| = 1) freeze; contenders
//     two or more hops away are hidden from it and keep contending, so
//     every maximal set of mutually-hidden winners transmits in the same
//     slot.
//  4. Success (z_i = 1): the transmission on link i (i → i+1) is received
//     iff no other simultaneous transmitter is within one hop of the
//     receiver i+1. On a chain the only such transmitter that can occur is
//     i+2 (i+1 is frozen by i itself), so z_i = 1 iff i transmits and i+2
//     does not — the hidden-terminal collision of the paper's Figure 12
//     world.
func (w *Walk) Patterns() []Pattern {
	var contenders []int
	for i := 0; i < w.K; i++ {
		if w.hasBacklog(i) {
			contenders = append(contenders, i)
		}
	}
	out := make(map[string]*Pattern)
	emit := func(selected []int, p float64) {
		tx := make(map[int]bool, len(selected))
		for _, s := range selected {
			tx[s] = true
		}
		z := make([]int, w.K)
		for _, s := range selected {
			if !tx[s+2] {
				z[s] = 1
			}
		}
		key := fmt.Sprint(z)
		if e, ok := out[key]; ok {
			e.P += p
		} else {
			out[key] = &Pattern{Z: z, P: p}
		}
	}
	var rec func(selected []int, remaining []int, p float64)
	rec = func(selected, remaining []int, p float64) {
		if len(remaining) == 0 {
			emit(selected, p)
			return
		}
		// Probability each remaining contender wins the next access:
		// ∝ Π_{j≠i} cw_j over the remaining set.
		total := 0.0
		weights := make([]float64, len(remaining))
		for idx, i := range remaining {
			prod := 1.0
			for _, j := range remaining {
				if j != i {
					prod *= float64(w.CW[j])
				}
			}
			weights[idx] = prod
			total += prod
		}
		for idx, i := range remaining {
			pi := p * weights[idx] / total
			// i transmits; its one-hop neighbours freeze; everyone
			// else keeps contending (hidden from i).
			var rest []int
			for _, j := range remaining {
				if j == i || j == i-1 || j == i+1 {
					continue
				}
				rest = append(rest, j)
			}
			rec(append(append([]int(nil), selected...), i), rest, pi)
		}
	}
	rec(nil, contenders, 1)

	pats := make([]Pattern, 0, len(out))
	for _, p := range out {
		pats = append(pats, *p)
	}
	sortPatterns(pats)
	return pats
}

func sortPatterns(ps []Pattern) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j].Z, ps[j-1].Z); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func less(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] > b[i] // [1,0,..] sorts before [0,1,..]
		}
	}
	return false
}

// Step advances the walk one slot: draw a pattern, apply the buffer
// recursion of Eq. (3) and, if enabled, the EZ-Flow update of Eq. (2).
func (w *Walk) Step() {
	pats := w.Patterns()
	r := w.rng()
	var z []int
	acc := 0.0
	for _, p := range pats {
		acc += p.P
		if r < acc {
			z = p.Z
			break
		}
	}
	if z == nil && len(pats) > 0 {
		z = pats[len(pats)-1].Z
	}
	// Buffers: b_i += z_{i-1} - z_i for relays 1..K-1.
	for i := w.K - 1; i >= 1; i-- {
		w.B[i] += z[i-1] - z[i]
		if w.B[i] < 0 {
			w.B[i] = 0 // cannot happen if patterns respect backlog
		}
	}
	if w.EZEnabled {
		for i := 0; i < w.K-1; i++ {
			w.CW[i] = w.updateCW(w.CW[i], float64(w.B[i+1]))
		}
	}
	w.Steps++
}

// updateCW is f(cw_i, b_{i+1}) of Eq. (2).
func (w *Walk) updateCW(cw int, succ float64) int {
	switch {
	case succ > w.BMax:
		if next := cw * 2; next <= w.MaxCW {
			return next
		}
		return w.MaxCW
	case succ < w.BMin:
		if next := cw / 2; next >= w.MinCW {
			return next
		}
		return w.MinCW
	default:
		return cw
	}
}

// TotalBacklog is the Lyapunov function h(b⃗) = Σ_{i=1}^{K-1} b_i.
func (w *Walk) TotalBacklog() int {
	t := 0
	for i := 1; i < w.K; i++ {
		t += w.B[i]
	}
	return t
}

// Drift estimates E[h(b(n+1)) − h(b(n)) | b(n)] exactly from the pattern
// distribution of the current state: each pattern changes h by
// z_0 − z_{K-1} (packets enter at link 0, leave at link K-1).
func (w *Walk) Drift() float64 {
	d := 0.0
	for _, p := range w.Patterns() {
		d += p.P * float64(p.Z[0]-p.Z[w.K-1])
	}
	return d
}

// RunStats summarises a trajectory.
type RunStats struct {
	Steps       uint64
	MaxBacklog  int
	MeanBacklog float64
	FinalCW     []int
	// RegionVisits counts visits per region (4-hop only).
	RegionVisits map[string]uint64
}

// Run advances n steps and returns trajectory statistics.
func (w *Walk) Run(n int) RunStats {
	st := RunStats{RegionVisits: make(map[string]uint64)}
	var sum float64
	for i := 0; i < n; i++ {
		if w.K == 4 {
			st.RegionVisits[w.Region()]++
		}
		w.Step()
		h := w.TotalBacklog()
		sum += float64(h)
		if h > st.MaxBacklog {
			st.MaxBacklog = h
		}
	}
	st.Steps = uint64(n)
	st.MeanBacklog = sum / float64(n)
	st.FinalCW = append([]int(nil), w.CW...)
	return st
}

// Table4 returns the exact pattern distribution for a 4-hop walk in the
// given region with the given contention windows, using the closed-form
// expressions of the paper's Table 4. Used by tests to validate the
// generic Patterns() construction.
func Table4(region string, cw []int) []Pattern {
	if len(cw) < 4 {
		panic("markov: Table4 needs cw0..cw3")
	}
	c := func(i int) float64 { return float64(cw[i]) }
	// sumProd(is...) = Σ_{l∈is} Π_{j∈is, j≠l} cw_j
	sumProd := func(is ...int) float64 {
		t := 0.0
		for _, l := range is {
			p := 1.0
			for _, j := range is {
				if j != l {
					p *= c(j)
				}
			}
			t += p
		}
		return t
	}
	mk := func(z []int, p float64) Pattern { return Pattern{Z: z, P: p} }
	switch region {
	case "A":
		return []Pattern{mk([]int{1, 0, 0, 0}, 1)}
	case "B":
		s := c(0) + c(1)
		return []Pattern{
			mk([]int{1, 0, 0, 0}, c(1)/s),
			mk([]int{0, 1, 0, 0}, c(0)/s),
		}
	case "C":
		return []Pattern{mk([]int{0, 0, 1, 0}, 1)}
	case "D":
		return []Pattern{mk([]int{1, 0, 0, 1}, 1)}
	case "E":
		s := sumProd(0, 1, 2)
		return []Pattern{
			mk([]int{0, 1, 0, 0}, c(0)*c(2)/s),
			mk([]int{0, 0, 1, 0}, 1-c(0)*c(2)/s),
		}
	case "F":
		// Contenders {0,1,3}. Rows of Table 4:
		// [0,0,0,1] = cw0·cw3/S + cw0·cw1/S · cw0/(cw0+cw1)
		// [1,0,0,1] = cw1·cw3/S + cw0·cw1/S · cw1/(cw0+cw1)
		s := sumProd(0, 1, 3)
		p3first := c(0) * c(1) / s // node 3 wins the first access
		return []Pattern{
			mk([]int{0, 0, 0, 1}, c(0)*c(3)/s+p3first*c(0)/(c(0)+c(1))),
			mk([]int{1, 0, 0, 1}, c(1)*c(3)/s+p3first*c(1)/(c(0)+c(1))),
		}
	case "G":
		// Contenders {0,2,3}. Rows of Table 4:
		// [0,0,1,0] = cw0·cw3/S + cw2·cw3/S · cw3/(cw2+cw3)
		// [1,0,0,1] = cw0·cw2/S + cw2·cw3/S · cw2/(cw2+cw3)
		s := sumProd(0, 2, 3)
		p0first := c(2) * c(3) / s // node 0 wins the first access
		return []Pattern{
			mk([]int{0, 0, 1, 0}, c(0)*c(3)/s+p0first*c(3)/(c(2)+c(3))),
			mk([]int{1, 0, 0, 1}, c(0)*c(2)/s+p0first*c(2)/(c(2)+c(3))),
		}
	case "H":
		// Contenders {0,1,2,3}. Rows of Table 4:
		// [0,0,1,0] = cw0cw1cw3/S + cw1cw2cw3/S · cw3/(cw2+cw3)
		// [0,0,0,1] = cw0cw2cw3/S + cw0cw1cw2/S · cw0/(cw0+cw1)
		// [1,0,0,1] = cw1cw2cw3/S · cw2/(cw2+cw3)
		//           + cw0cw1cw2/S · cw1/(cw0+cw1)
		s := sumProd(0, 1, 2, 3)
		p3first := c(0) * c(1) * c(2) / s // node 3 wins first
		p2first := c(0) * c(1) * c(3) / s // node 2 wins first
		p1first := c(0) * c(2) * c(3) / s // node 1 wins first
		p0first := c(1) * c(2) * c(3) / s // node 0 wins first
		return []Pattern{
			mk([]int{0, 0, 1, 0}, p2first+p0first*c(3)/(c(2)+c(3))),
			mk([]int{0, 0, 0, 1}, p1first+p3first*c(0)/(c(0)+c(1))),
			mk([]int{1, 0, 0, 1}, p0first*c(2)/(c(2)+c(3))+p3first*c(1)/(c(0)+c(1))),
		}
	}
	return nil
}

// LyapunovCertificate checks condition (6) of Foster's theorem numerically:
// for every state b⃗ outside S = {b_i < bound} with entries up to probe, it
// verifies that the expected k-step drift of h is ≤ −eps for some k ≤ kMax
// (the paper uses region-dependent k between 1 and 25). It returns an error
// listing any violating state.
type LyapunovCertificate struct {
	Checked    int
	MaxDriftK1 float64
}

// CheckDrift evaluates the one-step expected drift of h over a grid of
// 4-hop states with the given contention windows and reports the maximum
// drift found in each region. A stabilising cw⃗ yields negative drift in
// every region that has all three relays' service active.
func CheckDrift(cw []int, probe int) map[string]float64 {
	out := make(map[string]float64)
	w := NewWalk(Config{K: 4, InitCW: 32, EZEnabled: false, MinCW: 16, MaxCW: 1 << 15, BMax: 20, BMin: 0.05}, func() float64 { return 0 })
	copy(w.CW, cw)
	for b1 := 0; b1 <= probe; b1++ {
		for b2 := 0; b2 <= probe; b2++ {
			for b3 := 0; b3 <= probe; b3++ {
				w.B[1], w.B[2], w.B[3] = b1, b2, b3
				r := w.Region()
				d := w.Drift()
				if cur, ok := out[r]; !ok || d > cur {
					out[r] = d
				}
			}
		}
	}
	return out
}

// FosterK is the number of steps k(b⃗) the paper's proof of Theorem 1 uses
// per region to establish the negative Lyapunov drift of condition (6):
// one step suffices in F and H, while region B (only the first relay
// backlogged, served almost never by a high-cw source) needs 25.
var FosterK = map[string]int{
	"B": 25, "C": 4, "D": 2, "E": 2, "F": 1, "G": 3, "H": 1,
}

// DriftK estimates the k-step expected Lyapunov drift
// E[h(b(n+k)) − h(b(n)) | b(n)] by Monte Carlo with reps independent
// trajectories from the walk's current state (contention windows included).
// The walk itself is not advanced.
func (w *Walk) DriftK(k, reps int, rng func() float64) float64 {
	h0 := w.TotalBacklog()
	var sum float64
	for r := 0; r < reps; r++ {
		c := w.clone(rng)
		for s := 0; s < k; s++ {
			c.Step()
		}
		sum += float64(c.TotalBacklog() - h0)
	}
	return sum / float64(reps)
}

// clone copies the walk's state, substituting the given random source.
func (w *Walk) clone(rng func() float64) *Walk {
	c := *w
	c.B = append([]int(nil), w.B...)
	c.CW = append([]int(nil), w.CW...)
	c.rng = rng
	return &c
}

// Describe prints a human-readable summary of the pattern distribution.
func Describe(ps []Pattern) string {
	s := ""
	for _, p := range ps {
		s += fmt.Sprintf("  z=%v p=%.4f\n", p.Z, p.P)
	}
	return s
}

// ProbSum returns the total probability mass of a pattern set (should be 1).
func ProbSum(ps []Pattern) float64 {
	t := 0.0
	for _, p := range ps {
		t += p.P
	}
	return t
}

// Validate confirms a pattern set is a probability distribution.
func Validate(ps []Pattern) error {
	if s := ProbSum(ps); math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("markov: pattern probabilities sum to %v", s)
	}
	for _, p := range ps {
		if p.P < -1e-12 {
			return fmt.Errorf("markov: negative probability %v", p.P)
		}
	}
	return nil
}
