package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newWalk4(ez bool) *Walk {
	cfg := DefaultConfig()
	cfg.EZEnabled = ez
	rng := rand.New(rand.NewSource(1))
	return NewWalk(cfg, rng.Float64)
}

func TestRegionClassification(t *testing.T) {
	w := newWalk4(false)
	cases := []struct {
		b1, b2, b3 int
		want       string
	}{
		{0, 0, 0, "A"}, {1, 0, 0, "B"}, {0, 1, 0, "C"}, {0, 0, 1, "D"},
		{1, 1, 0, "E"}, {1, 0, 1, "F"}, {0, 1, 1, "G"}, {1, 1, 1, "H"},
		{5, 0, 9, "F"}, {3, 3, 3, "H"},
	}
	for _, c := range cases {
		w.B[1], w.B[2], w.B[3] = c.b1, c.b2, c.b3
		if got := w.Region(); got != c.want {
			t.Errorf("region(%d,%d,%d) = %s, want %s", c.b1, c.b2, c.b3, got, c.want)
		}
	}
}

// regionState returns a representative buffer state for each region.
func regionState(r string) [3]int {
	switch r {
	case "A":
		return [3]int{0, 0, 0}
	case "B":
		return [3]int{2, 0, 0}
	case "C":
		return [3]int{0, 2, 0}
	case "D":
		return [3]int{0, 0, 2}
	case "E":
		return [3]int{2, 2, 0}
	case "F":
		return [3]int{2, 0, 2}
	case "G":
		return [3]int{0, 2, 2}
	default:
		return [3]int{2, 2, 2}
	}
}

// TestPatternsMatchTable4 is the key validation of the analysis module:
// the generic recursive construction must reproduce the closed-form
// distribution of the paper's Table 4 in every region, for several
// contention-window vectors including asymmetric ones.
func TestPatternsMatchTable4(t *testing.T) {
	cwVectors := [][]int{
		{32, 32, 32, 32},
		{128, 16, 16, 16},
		{2048, 16, 32, 64},
		{16, 1024, 16, 512},
	}
	regions := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	for _, cw := range cwVectors {
		for _, r := range regions {
			w := newWalk4(false)
			copy(w.CW, cw)
			st := regionState(r)
			w.B[1], w.B[2], w.B[3] = st[0], st[1], st[2]
			got := w.Patterns()
			want := Table4(r, cw)
			if err := Validate(got); err != nil {
				t.Fatalf("cw=%v region %s: %v", cw, r, err)
			}
			if err := Validate(want); err != nil {
				t.Fatalf("Table4 cw=%v region %s: %v", cw, r, err)
			}
			if len(got) != len(want) {
				t.Fatalf("cw=%v region %s: %d patterns, Table 4 has %d\ngot:\n%swant:\n%s",
					cw, r, len(got), len(want), Describe(got), Describe(want))
			}
			wantByZ := make(map[string]float64, len(want))
			for _, p := range want {
				wantByZ[zKey(p.Z)] = p.P
			}
			for _, p := range got {
				wp, ok := wantByZ[zKey(p.Z)]
				if !ok {
					t.Fatalf("cw=%v region %s: pattern z=%v not in Table 4",
						cw, r, p.Z)
				}
				if math.Abs(p.P-wp) > 1e-12 {
					t.Fatalf("cw=%v region %s z=%v: p=%v, Table 4 says %v",
						cw, r, p.Z, p.P, wp)
				}
			}
		}
	}
}

func zKey(z []int) string {
	s := make([]byte, len(z))
	for i, v := range z {
		s[i] = byte('0' + v)
	}
	return string(s)
}

func TestStepConservesNonNegativity(t *testing.T) {
	w := newWalk4(true)
	for i := 0; i < 100000; i++ {
		w.Step()
		for j := 1; j < w.K; j++ {
			if w.B[j] < 0 {
				t.Fatalf("negative buffer at step %d: %v", i, w.B)
			}
		}
	}
	if w.Steps != 100000 {
		t.Fatal("step counter")
	}
}

func TestFixedCW4HopUnstable(t *testing.T) {
	// Theorem 2 of [9]: with equal fixed contention windows the 4-hop
	// chain is unstable — b1 drifts to infinity.
	w := newWalk4(false)
	st := w.Run(200000)
	if st.MaxBacklog < 500 {
		t.Fatalf("fixed-cw walk looks stable (max backlog %d); expected unbounded growth", st.MaxBacklog)
	}
}

func TestEZFlow4HopStable(t *testing.T) {
	// Theorem 1 of the paper: EZ-Flow keeps the queues almost surely
	// finite. Over a long trajectory the backlog must stay bounded well
	// below what the unstable walk reaches.
	w := newWalk4(true)
	st := w.Run(200000)
	if st.MaxBacklog >= 500 {
		t.Fatalf("EZ-Flow walk unstable: max backlog %d", st.MaxBacklog)
	}
	if st.MeanBacklog > 2*float64(DefaultConfig().BMax)+10 {
		t.Fatalf("EZ-Flow mean backlog %v too high", st.MeanBacklog)
	}
	// The source's window must have been pushed up relative to relays.
	if st.FinalCW[0] < st.FinalCW[2] {
		t.Fatalf("source cw %d below relay cw %d", st.FinalCW[0], st.FinalCW[2])
	}
}

func TestEZFlowStableForLongerChains(t *testing.T) {
	// The paper extends Theorem 1 to any K >= 4.
	for _, k := range []int{5, 6, 8} {
		cfg := DefaultConfig()
		cfg.K = k
		rng := rand.New(rand.NewSource(int64(k)))
		w := NewWalk(cfg, rng.Float64)
		st := w.Run(150000)
		if st.MaxBacklog >= 800 {
			t.Fatalf("K=%d: EZ-Flow walk unstable (max backlog %d)", k, st.MaxBacklog)
		}
	}
}

func TestDriftNegativeUnderStabilizingCW(t *testing.T) {
	// With the penalty-style vector cw = [2^11, 16, 16, 16] (what EZ-Flow
	// converges to, §5.2), the one-step Lyapunov drift must be negative in
	// the regions the proof handles with k=1 — F and H.
	drift := CheckDrift([]int{1 << 11, 16, 16, 16}, 3)
	if drift["H"] >= 0 {
		t.Fatalf("drift in H = %v, want negative", drift["H"])
	}
	if drift["F"] >= 0 {
		t.Fatalf("drift in F = %v, want negative", drift["F"])
	}
	// Region A (everything empty) necessarily has positive drift: the
	// saturated source injects.
	if drift["A"] <= 0 {
		t.Fatalf("drift in A = %v, want positive", drift["A"])
	}
}

func TestFosterConditionPerRegion(t *testing.T) {
	// Numerical check of condition (6) of Foster's theorem with the
	// region-dependent k of the paper's proof: from a representative
	// state of every region outside S, the k(region)-step expected drift
	// of h must be negative under the stabilising window vector.
	rng := rand.New(rand.NewSource(23))
	for region, k := range FosterK {
		w := newWalk4(false)
		copy(w.CW, []int{1 << 11, 16, 16, 16})
		st := regionState(region)
		w.B[1], w.B[2], w.B[3] = st[0], st[1], st[2]
		d := w.DriftK(k, 20000, rng.Float64)
		if d >= 0 {
			t.Errorf("region %s: %d-step drift %v, want negative", region, k, d)
		}
	}
}

func TestDriftPositiveUnderEqualCW(t *testing.T) {
	// With equal windows the walk gains mass in expectation in at least
	// one interior region — the instability of [9].
	drift := CheckDrift([]int{32, 32, 32, 32}, 3)
	pos := false
	for _, r := range []string{"B", "E", "F", "H"} {
		if drift[r] > 0 {
			pos = true
		}
	}
	if !pos {
		t.Fatalf("no positive drift region under equal cw: %v", drift)
	}
}

func TestRegionVisitsRecorded(t *testing.T) {
	w := newWalk4(true)
	st := w.Run(10000)
	total := uint64(0)
	for _, v := range st.RegionVisits {
		total += v
	}
	if total != 10000 {
		t.Fatalf("region visits sum to %d, want 10000", total)
	}
}

func TestUpdateCWBounds(t *testing.T) {
	w := newWalk4(true)
	if got := w.updateCW(DefaultConfig().MaxCW, 1e9); got != DefaultConfig().MaxCW {
		t.Fatal("cw exceeded MaxCW")
	}
	if got := w.updateCW(DefaultConfig().MinCW, 0); got != DefaultConfig().MinCW {
		t.Fatal("cw fell below MinCW")
	}
	if got := w.updateCW(64, 10); got != 64 {
		t.Fatal("cw changed inside the hysteresis band")
	}
}

func TestNewWalkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=1 walk did not panic")
		}
	}()
	NewWalk(Config{K: 1}, func() float64 { return 0 })
}

// Property: pattern probabilities always form a distribution, whatever the
// buffer state and contention windows.
func TestPropertyPatternsAreDistribution(t *testing.T) {
	f := func(b1, b2, b3 uint8, c0, c1, c2, c3 uint8) bool {
		w := newWalk4(false)
		w.B[1], w.B[2], w.B[3] = int(b1%10), int(b2%10), int(b3%10)
		w.CW[0] = 16 << (c0 % 8)
		w.CW[1] = 16 << (c1 % 8)
		w.CW[2] = 16 << (c2 % 8)
		w.CW[3] = 16 << (c3 % 8)
		ps := w.Patterns()
		if Validate(ps) != nil {
			return false
		}
		// No pattern may serve an empty queue.
		for _, p := range ps {
			for i := 1; i < 4; i++ {
				if p.Z[i] == 1 && w.B[i] == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Drift always lies in [-1, 1] (one packet in, one out, per slot).
func TestPropertyDriftBounded(t *testing.T) {
	f := func(b1, b2, b3 uint8) bool {
		w := newWalk4(false)
		w.B[1], w.B[2], w.B[3] = int(b1%20), int(b2%20), int(b3%20)
		d := w.Drift()
		return d >= -1-1e-12 && d <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedCWUnstableForLongerChains(t *testing.T) {
	// [9] generalised: for K >= 4 the fixed-equal-window chain
	// accumulates far more backlog than the EZ-Flow-controlled one on the
	// same horizon. (The divergence rate shrinks with K — longer chains
	// pipeline more transmissions in parallel — so the check is relative
	// to the controlled walk rather than an absolute bound.)
	for _, k := range []int{5, 6} {
		run := func(ez bool) RunStats {
			cfg := DefaultConfig()
			cfg.K = k
			cfg.EZEnabled = ez
			rng := rand.New(rand.NewSource(int64(k) * 7))
			return NewWalk(cfg, rng.Float64).Run(150000)
		}
		fixed, ezst := run(false), run(true)
		if fixed.MaxBacklog < 3*ezst.MaxBacklog {
			t.Errorf("K=%d: fixed max %d not clearly above EZ-flow max %d",
				k, fixed.MaxBacklog, ezst.MaxBacklog)
		}
		if fixed.MeanBacklog < 2*ezst.MeanBacklog {
			t.Errorf("K=%d: fixed mean %.1f not clearly above EZ-flow mean %.1f",
				k, fixed.MeanBacklog, ezst.MeanBacklog)
		}
	}
}

// Property: in every pattern of every K, successful links are pairwise at
// least 3 hops apart — the 2-hop interference model of §6.1 (z_i = 1
// requires all of i's 2-hop vicinity silent).
func TestPropertySuccessSpacing(t *testing.T) {
	f := func(kRaw, b1, b2, b3, b4, b5 uint8) bool {
		k := 4 + int(kRaw%5) // K in 4..8
		cfg := DefaultConfig()
		cfg.K = k
		cfg.EZEnabled = false
		w := NewWalk(cfg, func() float64 { return 0 })
		bs := []uint8{b1, b2, b3, b4, b5}
		for i := 1; i < k && i-1 < len(bs); i++ {
			w.B[i] = int(bs[i-1] % 4)
		}
		for _, p := range w.Patterns() {
			var idx []int
			for i, z := range p.Z {
				if z == 1 {
					idx = append(idx, i)
				}
			}
			for a := 0; a < len(idx); a++ {
				for b := a + 1; b < len(idx); b++ {
					if idx[b]-idx[a] < 3 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Fatal(err)
	}
}

func TestDriftKZeroSteps(t *testing.T) {
	w := newWalk4(false)
	w.B[1] = 3
	if d := w.DriftK(0, 100, func() float64 { return 0 }); d != 0 {
		t.Fatalf("0-step drift = %v, want 0", d)
	}
	// DriftK must not mutate the walk.
	w2 := newWalk4(false)
	w2.B[1], w2.B[2], w2.B[3] = 2, 2, 2
	before := append([]int(nil), w2.B...)
	w2.DriftK(5, 50, rand.New(rand.NewSource(1)).Float64)
	for i := range before {
		if w2.B[i] != before[i] {
			t.Fatal("DriftK mutated the walk state")
		}
	}
}
