// Package ratectl implements the routing-layer variant of EZ-Flow sketched
// in the paper's conclusion (§7): in dense deployments where per-successor
// MAC queues run out, "multiple queues could be implemented at the routing
// layer ... the BOE would remain unchanged; and the CAA would control the
// scheduling rate at which packets belonging to different routing queues
// are delivered to the MAC layer, instead of directly modifying the MAC
// contention window".
//
// A Pacer sits between a routing-layer queue and a MAC transmit queue and
// releases packets at a controlled rate. RateSetter adapts that rate with
// the same multiplicative-increase / multiplicative-decrease discipline the
// CAA applies to CWmin: since channel access probability is roughly
// inversely proportional to CWmin, doubling cw maps to halving the release
// rate, so the ratectl actuator can be driven by an unmodified CAA through
// the CWAdapter bridge.
package ratectl

import (
	"ezflow/internal/mac"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// Pacer releases packets from an unbounded routing-layer queue into a
// bounded MAC queue at a controlled rate.
type Pacer struct {
	eng       *sim.Engine
	out       *mac.Queue
	rate      float64 // packets per second released toward the MAC
	buf       []*pkt.Packet
	cap       int
	tick      sim.Timer
	releaseFn func() // bound once so rescheduling does not allocate

	// Stats
	Enqueued uint64
	Released uint64
	Dropped  uint64
}

// DefaultRoutingQueueCap bounds the routing-layer queue. It is larger than
// the MAC buffer: the routing layer is where §7 expects buffering to move.
const DefaultRoutingQueueCap = 200

// NewPacer creates a pacer feeding out at initially rate packets/second.
func NewPacer(eng *sim.Engine, out *mac.Queue, rate float64) *Pacer {
	if rate <= 0 {
		rate = 1
	}
	p := &Pacer{eng: eng, out: out, rate: rate, cap: DefaultRoutingQueueCap}
	p.releaseFn = p.release
	return p
}

// Rate reports the current release rate in packets/second.
func (p *Pacer) Rate() float64 { return p.rate }

// SetRate changes the release rate.
func (p *Pacer) SetRate(r float64) {
	if r <= 0 {
		r = 0.001
	}
	p.rate = r
}

// Len reports the routing-layer backlog.
func (p *Pacer) Len() int { return len(p.buf) }

// Enqueue accepts a packet into the routing-layer queue (taking a
// reference, like a MAC queue). It reports false on overflow.
func (p *Pacer) Enqueue(pk *pkt.Packet) bool {
	if len(p.buf) >= p.cap {
		p.Dropped++
		return false
	}
	pk.Retain()
	p.buf = append(p.buf, pk)
	p.Enqueued++
	if !p.tick.Pending() {
		p.schedule()
	}
	return true
}

func (p *Pacer) schedule() {
	gap := sim.Time(float64(sim.Second) / p.rate)
	p.tick = p.eng.Schedule(gap, p.releaseFn)
}

func (p *Pacer) release() {
	if len(p.buf) == 0 {
		return
	}
	// Only release when the MAC queue has room: the MAC buffer is kept
	// shallow so that the contention window stays the sole MAC-level
	// control, as §7 prescribes.
	if p.out.Len() < p.mACRoom() {
		pk := p.buf[0]
		copy(p.buf, p.buf[1:])
		p.buf[len(p.buf)-1] = nil
		p.buf = p.buf[:len(p.buf)-1]
		p.out.Enqueue(pk)
		pk.Release() // hand the pacer's reference over to the MAC queue
		p.Released++
	}
	if len(p.buf) > 0 {
		p.schedule()
	}
}

// mACRoom is how full the pacer lets the MAC queue get before holding
// packets back at the routing layer.
func (p *Pacer) mACRoom() int { return 5 }

// CWAdapter lets an unmodified CAA drive a Pacer: it satisfies
// ezflow.CWSetter by mapping the contention window to a release rate,
// rate = RefRate * RefCW / cw, so the CAA's multiplicative updates on cw
// become multiplicative updates on the pacing rate.
type CWAdapter struct {
	Pacer   *Pacer
	RefCW   int     // the cw that corresponds to RefRate
	RefRate float64 // packets/second at RefCW
	cw      int
}

// NewCWAdapter builds an adapter with the given reference point.
func NewCWAdapter(p *Pacer, refCW int, refRate float64) *CWAdapter {
	a := &CWAdapter{Pacer: p, RefCW: refCW, RefRate: refRate, cw: refCW}
	a.apply()
	return a
}

// CWmin implements the CAA's control-surface interface.
func (a *CWAdapter) CWmin() int { return a.cw }

// SetCWmin implements the CAA's control-surface interface, translating the
// window into a pacing rate.
func (a *CWAdapter) SetCWmin(cw int) {
	if cw < 1 {
		cw = 1
	}
	a.cw = cw
	a.apply()
}

func (a *CWAdapter) apply() {
	a.Pacer.SetRate(a.RefRate * float64(a.RefCW) / float64(a.cw))
}
