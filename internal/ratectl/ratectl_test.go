package ratectl

import (
	"testing"

	ez "ezflow/internal/ezflow"
	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

func newLink(t *testing.T) (*sim.Engine, *mac.MAC, *mac.MAC) {
	t.Helper()
	eng := sim.NewEngine(1)
	ch := phy.NewChannel(eng, phy.DefaultConfig())
	a := mac.New(eng, ch, 0, phy.Position{X: 0}, mac.DefaultConfig())
	b := mac.New(eng, ch, 1, phy.Position{X: 200}, mac.DefaultConfig())
	return eng, a, b
}

func TestPacerRate(t *testing.T) {
	eng, a, b := newLink(t)
	delivered := 0
	b.OnDeliver(func(*pkt.Packet, pkt.NodeID) { delivered++ })
	p := NewPacer(eng, a.NewQueue(1), 10) // 10 pkt/s
	for i := uint64(1); i <= 100; i++ {
		p.Enqueue(pkt.NewPacket(1, i, 0, 1, 1000, 0))
	}
	eng.Run(5 * sim.Second)
	// 5 s at 10 pkt/s: about 50 released (release ticks start one gap in).
	if p.Released < 45 || p.Released > 52 {
		t.Fatalf("released %d in 5 s at 10 pkt/s", p.Released)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if p.Len()+int(p.Released) != 100 {
		t.Fatalf("conservation: len=%d released=%d", p.Len(), p.Released)
	}
}

func TestPacerOverflow(t *testing.T) {
	eng, a, _ := newLink(t)
	p := NewPacer(eng, a.NewQueue(1), 1)
	ok := 0
	for i := uint64(1); i <= uint64(DefaultRoutingQueueCap)+50; i++ {
		if p.Enqueue(pkt.NewPacket(1, i, 0, 1, 1000, 0)) {
			ok++
		}
	}
	if ok != DefaultRoutingQueueCap {
		t.Fatalf("accepted %d, want %d", ok, DefaultRoutingQueueCap)
	}
	if p.Dropped != 50 {
		t.Fatalf("dropped %d, want 50", p.Dropped)
	}
}

func TestPacerHoldsMACQueueShallow(t *testing.T) {
	eng, a, _ := newLink(t)
	q := a.NewQueue(1)
	// Very high release rate: the pacer must still keep the MAC queue at
	// its room limit rather than dumping the whole backlog.
	p := NewPacer(eng, q, 1e6)
	for i := uint64(1); i <= 100; i++ {
		p.Enqueue(pkt.NewPacket(1, i, 0, 1, 1000, 0))
	}
	eng.Run(50 * sim.Millisecond)
	if q.Len() > 6 {
		t.Fatalf("MAC queue depth %d; pacer should keep it shallow", q.Len())
	}
}

func TestSetRateBounds(t *testing.T) {
	eng, a, _ := newLink(t)
	p := NewPacer(eng, a.NewQueue(1), 10)
	p.SetRate(-5)
	if p.Rate() <= 0 {
		t.Fatal("rate must stay positive")
	}
	if NewPacer(eng, a.NewQueue(1), 0).Rate() <= 0 {
		t.Fatal("constructor rate floor")
	}
}

func TestCWAdapterMapsWindowToRate(t *testing.T) {
	eng, a, _ := newLink(t)
	p := NewPacer(eng, a.NewQueue(1), 100)
	ad := NewCWAdapter(p, 32, 100)
	if ad.CWmin() != 32 || p.Rate() != 100 {
		t.Fatalf("reference point: cw=%d rate=%v", ad.CWmin(), p.Rate())
	}
	ad.SetCWmin(64) // doubling cw halves the rate
	if p.Rate() != 50 {
		t.Fatalf("rate after doubling cw: %v, want 50", p.Rate())
	}
	ad.SetCWmin(16) // halving below reference doubles it
	if p.Rate() != 200 {
		t.Fatalf("rate after halving cw: %v, want 200", p.Rate())
	}
	ad.SetCWmin(0)
	if ad.CWmin() != 1 {
		t.Fatal("cw floor")
	}
}

// TestCAADrivesPacer wires a real CAA to the rate-control actuator through
// the adapter and checks the §7 variant stabilises a 4-hop chain: the
// source's pacing slows down, and the first relay's MAC buffer stays far
// below the plain-802.11 saturation.
func TestCAADrivesPacer(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mesh.Chain(eng, 4, phy.DefaultConfig(), mac.DefaultConfig())

	// Replace the source's direct injection with a paced path: traffic
	// goes into the pacer; the pacer feeds the MAC source queue.
	srcQueue := m.Node(0).SourceQueue(1)
	pacer := NewPacer(eng, srcQueue, 50)
	adapter := NewCWAdapter(pacer, 32, 50)
	caa := ez.NewCAA(ez.DefaultCAAConfig(), adapter, eng.Now)
	boe := ez.NewBOE(1, eng.Now, caa.OnSample)
	m.Node(0).MAC.AddTxNotify(func(f *pkt.Frame) {
		if f.TxDst == 1 && f.Payload != nil {
			boe.RecordSent(f.Payload.Checksum16())
		}
	})
	m.Node(0).MAC.AddTap(func(f *pkt.Frame, _ pkt.CaptureInfo) { boe.OnSniff(f) })

	// Saturating generator into the pacer.
	seq := uint64(0)
	var gen func()
	gen = func() {
		seq++
		pacer.Enqueue(pkt.NewPacket(1, seq, 0, 4, 1028, eng.Now()))
		eng.Schedule(4*sim.Millisecond, gen)
	}
	eng.Schedule(0, gen)

	eng.Run(600 * sim.Second)

	if boe.Estimates == 0 {
		t.Fatal("BOE produced no estimates in the ratectl wiring")
	}
	// The loop must have actuated at least once (the steady state is an
	// oscillation around the supportable rate, not a fixed point).
	actuated := false
	for _, d := range caa.Decisions {
		if d.Changed {
			actuated = true
			break
		}
	}
	if !actuated {
		t.Fatal("CAA never adjusted the pacing rate")
	}
	// §7's promise: congestion moves out of the MAC buffers. The relay
	// stays nearly empty while the backlog is held at the routing layer.
	if d := m.Node(1).RelayDepth(); d > 40 {
		t.Fatalf("ratectl variant left N1 with %d queued", d)
	}
	if pacer.Len() < 50 {
		t.Fatalf("routing-layer queue holds only %d packets; backlog should sit there", pacer.Len())
	}
	if pacer.Released == 0 {
		t.Fatal("pacer released nothing")
	}
}
