package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record(sim.Time(i), KindEnqueue, CauseNone, 1, 2, 1, uint64(i))
	}
	if fr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", fr.Total())
	}
	if fr.Overwritten() != 6 {
		t.Fatalf("Overwritten = %d, want 6", fr.Overwritten())
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	// Oldest-first: the ring holds the last 4 of 10 records.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Fatalf("Events[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(1, KindEnqueue, CauseNone, 1, 2, 1, 0)
	fr.Record(2, KindTxAttempt, CauseNone, 1, 2, 1, 0)
	if fr.Total() != 2 || fr.Overwritten() != 0 {
		t.Fatalf("Total/Overwritten = %d/%d, want 2/0", fr.Total(), fr.Overwritten())
	}
	evs := fr.Events()
	if len(evs) != 2 || evs[0].Kind != KindEnqueue || evs[1].Kind != KindTxAttempt {
		t.Fatalf("partial ring Events wrong: %+v", evs)
	}
	if NewFlightRecorder(0) == nil {
		t.Fatal("size <= 0 must fall back to the default capacity")
	}
}

func TestFlightFilter(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.Record(1, KindEnqueue, CauseNone, 1, 2, 1, 0) // flow 1, nodes 1->2
	fr.Record(2, KindEnqueue, CauseNone, 3, 4, 2, 0) // flow 2, nodes 3->4
	fr.Record(3, KindDeliver, CauseNone, 4, 1, 1, 1) // flow 1, at 4 from 1

	count := func(f Filter) int {
		var b bytes.Buffer
		n, err := fr.WriteJSONL(&b, f)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Count(b.String(), "\n"); got != n {
			t.Fatalf("WriteJSONL reported %d lines, wrote %d", n, got)
		}
		return n
	}
	if got := count(Filter{}); got != 3 {
		t.Fatalf("zero filter kept %d, want all 3", got)
	}
	if got := count(Filter{MatchFlow: true, Flow: 1}); got != 2 {
		t.Fatalf("flow filter kept %d, want 2", got)
	}
	// Node filter matches either side of an event.
	if got := count(Filter{MatchNode: true, Node: 4}); got != 2 {
		t.Fatalf("node filter kept %d, want 2", got)
	}
	if got := count(Filter{MatchFlow: true, Flow: 1, MatchNode: true, Node: 3}); got != 0 {
		t.Fatalf("conjunction kept %d, want 0", got)
	}
}

func TestWriteJSONLFormat(t *testing.T) {
	fr := NewFlightRecorder(4)
	fr.Record(sim.FromSeconds(1.25), KindDrop, CauseRetryExceeded, 2, pkt.Broadcast, 7, 42)
	var b bytes.Buffer
	if _, err := fr.WriteJSONL(&b, Filter{}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSuffix(b.String(), "\n")
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, line)
	}
	want := map[string]any{
		"t": 1.25, "kind": "drop", "cause": "retry-exceeded",
		"node": "N2", "peer": "bcast", "flow": float64(7), "seq": float64(42),
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("field %q = %v, want %v (line %s)", k, got[k], w, line)
		}
	}
}

func TestKindCauseStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindEnqueue: "enqueue", KindTxAttempt: "tx-attempt", KindRetry: "retry",
		KindDequeue: "dequeue", KindDrop: "drop", KindDeliver: "deliver",
		Kind(250): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	causes := map[Cause]string{
		CauseNone: "", CauseAcked: "acked", CauseQueueOverflow: "queue-overflow",
		CauseRetryExceeded: "retry-exceeded", CauseHalted: "halted",
		Cause(250): "unknown",
	}
	for c, want := range causes {
		if c.String() != want {
			t.Errorf("Cause(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
