package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ezflow/internal/sim"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Counter.Value = %d, want 5", got)
	}
	cv := r.CounterVec("fam", []string{"x", "y", "z"})
	cv.Inc(1)
	cv.Add(2, 7)
	if cv.Len() != 3 || cv.Value(0) != 0 || cv.Value(1) != 1 || cv.Value(2) != 7 {
		t.Fatalf("CounterVec slots = [%d %d %d] (len %d), want [0 1 7] len 3",
			cv.Value(0), cv.Value(1), cv.Value(2), cv.Len())
	}
}

func TestNilSafety(t *testing.T) {
	// Every increment/read path must be a no-op on nil receivers: this is
	// the disabled-observability contract the hot paths rely on.
	var r *Registry
	c := r.Counter("x")
	cv := r.CounterVec("y", []string{"a"})
	h := r.Histogram("z", []float64{1})
	r.Gauge("g", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	cv.Inc(0)
	cv.Add(0, 3)
	h.Observe(0.5)
	var fr *FlightRecorder
	fr.Record(0, KindEnqueue, CauseNone, 1, 2, 1, 0)
	if c != nil || cv != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if c.Value() != 0 || cv.Value(0) != 0 || cv.Len() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if fr.Total() != 0 || fr.Overwritten() != 0 || fr.Events() != nil {
		t.Fatal("nil recorder must read as empty")
	}
	if s := (*Registry)(nil).Snapshot(0); s != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var s *Snapshot
	if _, ok := s.Get("x"); ok {
		t.Fatal("nil snapshot Get must miss")
	}
	if s.Sum("x") != 0 {
		t.Fatal("nil snapshot Sum must be 0")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"counter":   func(r *Registry) { r.Counter("dup") },
		"vec":       func(r *Registry) { r.CounterVec("vec", []string{"a", "a"}) },
		"gauge":     func(r *Registry) { r.Gauge("dup", func() float64 { return 0 }) },
		"histogram": func(r *Registry) { r.Histogram("dup", []float64{1}) },
	}
	for name, reg := range cases {
		t.Run(name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter("dup")
			defer func() {
				if recover() == nil {
					t.Fatalf("%s reusing a name must panic", name)
				}
			}()
			reg(r)
		})
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", []float64{1, 10})
	for _, x := range []float64{0.5, 1, 1.5, 10, 11, 100} {
		h.Observe(x)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 124 {
		t.Fatalf("Sum = %g, want 124", h.Sum())
	}
	s := r.Snapshot(0)
	// Bounds are inclusive upper edges; _le_ series is cumulative.
	for name, want := range map[string]float64{
		"d_count": 6, "d_sum": 124, "d_le_1": 2, "d_le_10": 4,
	} {
		if got, ok := s.Get(name); !ok || got != want {
			t.Errorf("%s = %g (found %v), want %g", name, got, ok, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds must panic")
		}
	}()
	r.Histogram("bad", []float64{2, 1})
}

func TestSnapshotOrderingAndLookup(t *testing.T) {
	// Register deliberately out of name order, across all four metric
	// types; the snapshot must come out sorted regardless.
	r := NewRegistry()
	r.Gauge("z.gauge", func() float64 { return 9 })
	r.Counter("m.count").Add(3)
	r.CounterVec("a.vec", []string{"n2", "n1"}).Inc(0)
	r.Histogram("q.hist", []float64{5}).Observe(2)
	s := r.Snapshot(sim.FromSeconds(1.5))
	if s.AtSec != 1.5 {
		t.Fatalf("AtSec = %g, want 1.5", s.AtSec)
	}
	for i := 1; i < len(s.Metrics); i++ {
		if s.Metrics[i-1].Name >= s.Metrics[i].Name {
			t.Fatalf("metrics not strictly sorted: %q before %q",
				s.Metrics[i-1].Name, s.Metrics[i].Name)
		}
	}
	if v, ok := s.Get("a.vec.n2"); !ok || v != 1 {
		t.Fatalf("Get(a.vec.n2) = %g, %v; want 1, true", v, ok)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get(absent) must miss")
	}
	if got := s.Sum("a.vec."); got != 1 {
		t.Fatalf("Sum(a.vec.) = %g, want 1", got)
	}

	// Two registries built in different orders serialize identically.
	r2 := NewRegistry()
	r2.Histogram("q.hist", []float64{5}).Observe(2)
	r2.CounterVec("a.vec", []string{"n2", "n1"}).Inc(0)
	r2.Counter("m.count").Add(3)
	r2.Gauge("z.gauge", func() float64 { return 9 })
	b1, _ := json.Marshal(s)
	b2, _ := json.Marshal(r2.Snapshot(sim.FromSeconds(1.5)))
	if !bytes.Equal(b1, b2) {
		t.Fatalf("registration order leaked into snapshot bytes:\n%s\n%s", b1, b2)
	}
}

func TestSnapshotWriters(t *testing.T) {
	r := NewRegistry()
	r.Counter("one").Inc()
	s := r.Snapshot(sim.Second)
	var jb, tb bytes.Buffer
	if err := s.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jb.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if err := s.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "one 1\n") {
		t.Fatalf("WriteText output missing metric line:\n%s", tb.String())
	}
}
