package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServer(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	// Before any publish: index works, metrics is 503, progress is empty.
	if code, body := get(t, base+"/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code %d body %q", code, body)
	}
	if code, _ := get(t, base+"/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("metrics before publish: code %d, want 503", code)
	}
	if code, body := get(t, base+"/progress"); code != http.StatusOK || strings.TrimSpace(body) != "{}" {
		t.Fatalf("progress before publish: code %d body %q", code, body)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: code %d, want 404", code)
	}

	// Publish a snapshot and progress; both round-trip through HTTP.
	r := NewRegistry()
	r.Counter("served.count").Add(12)
	s.PublishSnapshot(r.Snapshot(0))
	s.PublishProgress(Progress{Done: 2, Total: 5, SimSeconds: 30, HorizonSeconds: 600})

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics body not a snapshot: %v\n%s", err, body)
	}
	if v, ok := snap.Get("served.count"); !ok || v != 12 {
		t.Fatalf("served snapshot: served.count = %g, %v; want 12, true", v, ok)
	}

	code, body = get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("progress: code %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if p != (Progress{Done: 2, Total: 5, SimSeconds: 30, HorizonSeconds: 600}) {
		t.Fatalf("progress round-trip: %+v", p)
	}

	// pprof is mounted on the private mux.
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: code %d", code)
	}

	// Nil-safe publishing (the disabled-observability path).
	var nilServer *Server
	nilServer.PublishSnapshot(nil)
	nilServer.PublishProgress(Progress{})
	s.PublishSnapshot(nil) // must not clobber the published snapshot
	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Fatal("publishing nil must not clear the last snapshot")
	}
}
