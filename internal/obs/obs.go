// Package obs is the observability layer of the simulator: a zero-alloc
// metrics registry (counters, dense-slot counter families, probe gauges,
// fixed-bucket histograms) snapshot-able at any simulation time into a
// deterministic ordered document, a ring-buffered packet flight recorder
// that captures every lifecycle event of every packet (enqueue, dequeue,
// tx-attempt, retry, drop, deliver — with cause codes), and a live HTTP
// introspection server exposing snapshots, run progress and net/http/pprof.
//
// Two invariants govern the package and every call site that uses it:
//
//   - Disabled observability costs ~zero. Every hot-path hook is either a
//     nil-guarded method call on a nil receiver or an explicit `!= nil`
//     branch; no hook allocates, ever (bench_test.go pins this at
//     0 allocs/op, gated by `make bench`).
//
//   - Enabled observability never perturbs simulation output. Counters and
//     the flight recorder only write to observability-owned storage; gauges
//     are read-only probes evaluated at snapshot time on the simulation
//     goroutine; nothing consumes engine randomness or reorders existing
//     events. The campaign layer pins this with byte-identical golden
//     output, observability on vs off, at several worker counts.
//
// The package sits below every simulator layer: it imports only
// internal/sim and internal/pkt, so phy and mac can hold obs handles while
// all cross-layer metric registration happens in the root ezflow package
// (Scenario.EnableObs), where every layer is in scope.
package obs

// Config selects which observability pillars a scenario enables.
// The zero value disables everything.
type Config struct {
	// Metrics enables the metric registry: the full catalog of engine,
	// pool, PHY, MAC, queue, controller and flow metrics is registered at
	// EnableObs time and snapshotted into Result.Obs at the end of the run.
	Metrics bool
	// FlightRecorder, when positive, enables the packet flight recorder
	// with a ring of that many events (most recent kept; see
	// DefaultFlightRecorderSize for a typical value).
	FlightRecorder int
}

// Set bundles the observability state attached to one scenario. Fields are
// nil for pillars the Config left disabled.
type Set struct {
	// Reg is the scenario's metric registry (nil when Config.Metrics was
	// false).
	Reg *Registry
	// Flight is the scenario's packet flight recorder (nil when
	// Config.FlightRecorder was zero).
	Flight *FlightRecorder
}
