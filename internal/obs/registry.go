// The metric registry: named counters, dense-slot counter families,
// probe-backed gauges and fixed-bucket histograms. Registration allocates;
// the increment paths do not, and every increment method is safe on a nil
// receiver so disabled observability costs one predictable branch.
package obs

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing metric. The zero-cost contract:
// Inc/Add on a nil *Counter are no-ops, so hot paths hold a possibly-nil
// pointer and call unconditionally (or guard with != nil where the call
// sits inside a loop worth saving the call for).
type Counter struct {
	name string
	v    uint64
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value reports the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// CounterVec is a dense-slot family of counters sharing one name prefix —
// the pkt.NodeIndex pattern applied to metrics. The caller addresses
// members by a small integer slot (a PHY station slot, a node index), so
// the hot-path increment is a bounds-checked array write: no map lookup,
// no hashing, no allocation. Snapshot emits one metric per slot, named
// "<prefix>.<label>".
type CounterVec struct {
	prefix string
	labels []string
	v      []uint64
}

// Inc increments slot's counter by one. No-op on a nil receiver.
func (cv *CounterVec) Inc(slot int) {
	if cv != nil {
		cv.v[slot]++
	}
}

// Add increments slot's counter by n. No-op on a nil receiver.
func (cv *CounterVec) Add(slot int, n uint64) {
	if cv != nil {
		cv.v[slot] += n
	}
}

// Value reports slot's count (0 on a nil receiver).
func (cv *CounterVec) Value(slot int) uint64 {
	if cv == nil {
		return 0
	}
	return cv.v[slot]
}

// Len reports the number of slots (0 on a nil receiver).
func (cv *CounterVec) Len() int {
	if cv == nil {
		return 0
	}
	return len(cv.v)
}

// gauge is a read-only probe evaluated at snapshot time on the simulation
// goroutine. Gauges are how the registry observes state owned by other
// layers (heap depth, pool stats, queue depths) without those layers
// importing obs.
type gauge struct {
	name  string
	probe func() float64
}

// Histogram accumulates observations into fixed buckets chosen at
// registration. Observe is allocation-free; a nil receiver observes
// nothing. Bounds are inclusive upper edges in ascending order; one
// overflow bucket catches everything beyond the last bound.
type Histogram struct {
	name   string
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	sum    float64
	n      uint64
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += x
	h.n++
}

// Count reports the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum reports the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry holds one scenario's metrics. It is not safe for concurrent
// use: registration and every increment happen on the simulation
// goroutine, exactly like the rest of a scenario's state. Live servers
// never touch a Registry — they read immutable Snapshots published
// through an atomic pointer.
type Registry struct {
	counters []*Counter
	vecs     []*CounterVec
	gauges   []gauge
	hists    []*Histogram
	names    map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// reserve claims a metric name, panicking on duplicates: two layers
// silently sharing a name would make the snapshot lie about both.
func (r *Registry) reserve(name string) {
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = true
}

// Counter registers and returns a named counter. A nil registry returns a
// nil counter, whose methods are no-ops — callers can thread the result
// into hot paths without caring whether metrics are enabled.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.reserve(name)
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// CounterVec registers a dense-slot counter family: one counter per
// label, addressed by the label's index. Snapshot names each member
// "<prefix>.<label>". A nil registry returns nil (all methods no-ops).
func (r *Registry) CounterVec(prefix string, labels []string) *CounterVec {
	if r == nil {
		return nil
	}
	for _, l := range labels {
		r.reserve(prefix + "." + l)
	}
	cv := &CounterVec{
		prefix: prefix,
		labels: append([]string(nil), labels...),
		v:      make([]uint64, len(labels)),
	}
	r.vecs = append(r.vecs, cv)
	return cv
}

// Gauge registers a probe evaluated at snapshot time. The probe runs on
// the simulation goroutine and must only read state. No-op on a nil
// registry.
func (r *Registry) Gauge(name string, probe func() float64) {
	if r == nil {
		return
	}
	r.reserve(name)
	r.gauges = append(r.gauges, gauge{name: name, probe: probe})
}

// Histogram registers a fixed-bucket histogram with the given ascending
// inclusive upper bounds. A nil registry returns nil (Observe no-ops).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	r.reserve(name)
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists = append(r.hists, h)
	return h
}
