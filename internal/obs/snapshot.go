// Snapshots: the immutable, deterministically ordered export format of a
// Registry. A snapshot is taken on the simulation goroutine (so probes
// read a consistent world) and is never mutated afterwards, which is what
// lets the live server hand it to HTTP readers through an atomic pointer.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ezflow/internal/sim"
)

// Metric is one named value of a snapshot.
type Metric struct {
	// Name is the metric's registered name (for CounterVec members,
	// "<prefix>.<label>"; for histograms, the derived _count/_sum/
	// _le_<bound> series).
	Name string `json:"name"`
	// Value is the metric's value at snapshot time. Counters are exact up
	// to 2^53; simulation runs stay far below that.
	Value float64 `json:"value"`
}

// Snapshot is the state of every registered metric at one instant of
// simulation time. Metrics are sorted by name, so two snapshots of
// identical state marshal byte-identically regardless of registration
// order or worker interleaving — the determinism contract campaign-level
// tests pin.
type Snapshot struct {
	// AtSec is the simulation time of the snapshot in seconds.
	AtSec float64 `json:"at_sec"`
	// Metrics lists every metric, ascending by name.
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures every registered metric at simulation time at.
// Safe on a nil registry (returns nil).
func (r *Registry) Snapshot(at sim.Time) *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{AtSec: at.Seconds()}
	for _, c := range r.counters {
		s.Metrics = append(s.Metrics, Metric{Name: c.name, Value: float64(c.v)})
	}
	for _, cv := range r.vecs {
		for i, l := range cv.labels {
			s.Metrics = append(s.Metrics, Metric{Name: cv.prefix + "." + l, Value: float64(cv.v[i])})
		}
	}
	for _, g := range r.gauges {
		s.Metrics = append(s.Metrics, Metric{Name: g.name, Value: g.probe()})
	}
	for _, h := range r.hists {
		s.Metrics = append(s.Metrics, Metric{Name: h.name + "_count", Value: float64(h.n)})
		s.Metrics = append(s.Metrics, Metric{Name: h.name + "_sum", Value: h.sum})
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			s.Metrics = append(s.Metrics, Metric{
				Name:  h.name + "_le_" + strconv.FormatFloat(b, 'g', -1, 64),
				Value: float64(cum),
			})
		}
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s
}

// Get reports the value of the named metric and whether it exists.
func (s *Snapshot) Get(name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i].Value, true
	}
	return 0, false
}

// Sum adds up every metric whose name starts with prefix — the way to
// aggregate a CounterVec family ("phy.collisions.") back into one number.
func (s *Snapshot) Sum(prefix string) float64 {
	if s == nil {
		return 0
	}
	var sum float64
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= prefix })
	for ; i < len(s.Metrics) && len(s.Metrics[i].Name) >= len(prefix) &&
		s.Metrics[i].Name[:len(prefix)] == prefix; i++ {
		sum += s.Metrics[i].Value
	}
	return sum
}

// WriteJSON marshals the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as sorted "name value" lines for quick
// terminal inspection.
func (s *Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# snapshot at %.3fs (%d metrics)\n", s.AtSec, len(s.Metrics)); err != nil {
		return err
	}
	for _, m := range s.Metrics {
		if _, err := fmt.Fprintf(w, "%s %g\n", m.Name, m.Value); err != nil {
			return err
		}
	}
	return nil
}
