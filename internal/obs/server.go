// The live introspection endpoint: a small HTTP server exposing the
// latest metrics snapshot, run progress, and net/http/pprof. The server
// never touches simulation state — the simulation goroutine publishes
// immutable Snapshot/Progress values through atomic pointers and HTTP
// handlers only ever read the latest published value, so serving is
// race-free and cannot perturb a run. This is the seed of the roadmap's
// campaign-service (ezserve) API.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Progress is a point-in-time description of how far a run (or a
// campaign of runs) has got. Zero fields are omitted from the JSON, so
// single-run and campaign progress share the type.
type Progress struct {
	// Done and Total count completed vs scheduled runs (campaigns).
	Done  int64 `json:"done,omitempty"`
	Total int64 `json:"total,omitempty"`
	// SimSeconds and HorizonSeconds report a single run's virtual clock
	// against its configured duration.
	SimSeconds     float64 `json:"sim_seconds,omitempty"`
	HorizonSeconds float64 `json:"horizon_seconds,omitempty"`
}

// Server serves live introspection over HTTP: GET /metrics (latest
// snapshot, JSON), GET /progress (latest Progress, JSON), and the
// standard /debug/pprof/* profiling endpoints on a private mux (the
// server never touches http.DefaultServeMux). Publish* may be called
// from any goroutine; handlers only load the atomically published
// values.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	snap atomic.Pointer[Snapshot]
	prog atomic.Pointer[Progress]
}

// NewServer listens on addr (host:port; ":0" picks a free port) and
// starts serving in a background goroutine. Close shuts it down.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr reports the server's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// PublishSnapshot makes snap the value /metrics serves. The snapshot
// must not be mutated after publishing.
func (s *Server) PublishSnapshot(snap *Snapshot) {
	if s == nil || snap == nil {
		return
	}
	s.snap.Store(snap)
}

// PublishProgress makes p the value /progress serves.
func (s *Server) PublishProgress(p Progress) {
	if s == nil {
		return
	}
	s.prog.Store(&p)
}

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "ezflow observability endpoint\n\n"+
		"  /metrics       latest metrics snapshot (JSON)\n"+
		"  /progress      run/campaign progress (JSON)\n"+
		"  /debug/pprof/  Go profiling endpoints\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	snap.WriteJSON(w) //nolint:errcheck // client disconnects are not actionable
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	p := s.prog.Load()
	if p == nil {
		p = &Progress{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p) //nolint:errcheck // client disconnects are not actionable
}
