// Shared pprof plumbing for the CLIs: ezsim, ezcampaign and ezbench all
// accept -cpuprofile/-memprofile, and all three route through
// StartProfiles so the file handling and GC ordering live in one place.
package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling to cpuPath (when non-empty) and
// returns a stop function that ends the CPU profile and writes an
// allocation profile to memPath (when non-empty). Either path may be
// empty; the returned stop is never nil and is safe to call exactly once.
//
// The allocation profile is written after a forced GC, because pprof
// allocation records reflect state as of the last completed GC cycle.
// Callers should validate their inputs before calling StartProfiles:
// an os.Exit on a later error skips stop and leaves a truncated CPU
// profile behind.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		// Materialise outstanding allocation records first.
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", memPath, err)
		}
		return f.Close()
	}, nil
}
