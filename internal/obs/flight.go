// The packet flight recorder: a fixed-size ring of structured
// packet-lifecycle events (enqueue → dequeue → tx-attempt → retry → drop
// or deliver, each with a cause code). Recording is a single array write —
// no allocation, no formatting — so it can sit on the MAC hot path; the
// ring overwrites its oldest entries, so a recorder holds the last N
// events of a run however long the run is. Dumps are JSONL, filterable by
// flow and node, so one packet's life through a link flap can be replayed
// after the fact.
package obs

import (
	"fmt"
	"io"

	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// DefaultFlightRecorderSize is the ring capacity used when a positive
// size is not given: 64k events (~3 MB) covers several seconds of a
// saturated run.
const DefaultFlightRecorderSize = 1 << 16

// Kind classifies a packet-lifecycle event.
type Kind uint8

// The packet-lifecycle event kinds, in the order a delivered packet
// experiences them.
const (
	// KindEnqueue marks a packet accepted into a transmit queue.
	KindEnqueue Kind = iota
	// KindTxAttempt marks the first transmission attempt of a queue-head
	// packet.
	KindTxAttempt
	// KindRetry marks a re-transmission attempt after a missing ACK.
	KindRetry
	// KindDequeue marks a packet leaving its queue acknowledged.
	KindDequeue
	// KindDrop marks a packet discarded; the Cause says why.
	KindDrop
	// KindDeliver marks a packet reaching its final destination.
	KindDeliver
)

// String names the kind for dumps.
func (k Kind) String() string {
	switch k {
	case KindEnqueue:
		return "enqueue"
	case KindTxAttempt:
		return "tx-attempt"
	case KindRetry:
		return "retry"
	case KindDequeue:
		return "dequeue"
	case KindDrop:
		return "drop"
	case KindDeliver:
		return "deliver"
	default:
		return "unknown"
	}
}

// Cause qualifies an event (chiefly drops and dequeues).
type Cause uint8

// The event cause codes.
const (
	// CauseNone marks events that need no qualification.
	CauseNone Cause = iota
	// CauseAcked marks a dequeue triggered by a received ACK.
	CauseAcked
	// CauseQueueOverflow marks a drop at a full transmit queue.
	CauseQueueOverflow
	// CauseRetryExceeded marks a drop at the MAC retry limit.
	CauseRetryExceeded
	// CauseHalted marks a drop from flushing a halted node's queues.
	CauseHalted
)

// String names the cause for dumps.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return ""
	case CauseAcked:
		return "acked"
	case CauseQueueOverflow:
		return "queue-overflow"
	case CauseRetryExceeded:
		return "retry-exceeded"
	case CauseHalted:
		return "halted"
	default:
		return "unknown"
	}
}

// PacketEvent is one recorded lifecycle event. Node is where the event
// happened; Peer is the MAC next hop for queue/transmit events and the
// packet's source for deliveries.
type PacketEvent struct {
	// At is the simulation time of the event.
	At sim.Time
	// Kind classifies the event.
	Kind Kind
	// Cause qualifies it (CauseNone when self-explanatory).
	Cause Cause
	// Node is the node the event happened at.
	Node pkt.NodeID
	// Peer is the next hop (queue and transmit events) or the packet
	// source (deliveries).
	Peer pkt.NodeID
	// Flow is the packet's flow id.
	Flow pkt.FlowID
	// Seq is the packet's per-flow sequence number.
	Seq uint64
}

// FlightRecorder is a ring buffer of PacketEvents. Record overwrites the
// oldest entry once the ring is full and is safe (a no-op) on a nil
// receiver, so every instrumented layer holds a possibly-nil recorder.
// Like the Registry it is owned by one scenario's simulation goroutine.
type FlightRecorder struct {
	buf   []PacketEvent
	next  int    // ring write position
	total uint64 // events ever recorded
}

// NewFlightRecorder creates a recorder holding size events
// (DefaultFlightRecorderSize when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRecorderSize
	}
	return &FlightRecorder{buf: make([]PacketEvent, 0, size)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. No-op on a nil receiver; allocation-free always.
func (fr *FlightRecorder) Record(at sim.Time, k Kind, cause Cause, node, peer pkt.NodeID, flow pkt.FlowID, seq uint64) {
	if fr == nil {
		return
	}
	ev := PacketEvent{At: at, Kind: k, Cause: cause, Node: node, Peer: peer, Flow: flow, Seq: seq}
	if len(fr.buf) < cap(fr.buf) {
		fr.buf = append(fr.buf, ev)
	} else {
		fr.buf[fr.next] = ev
		fr.next++
		if fr.next == len(fr.buf) {
			fr.next = 0
		}
	}
	fr.total++
}

// Total reports how many events were ever recorded (including ones the
// ring has since overwritten). 0 on a nil receiver.
func (fr *FlightRecorder) Total() uint64 {
	if fr == nil {
		return 0
	}
	return fr.total
}

// Overwritten reports how many recorded events the ring no longer holds.
func (fr *FlightRecorder) Overwritten() uint64 {
	if fr == nil {
		return 0
	}
	return fr.total - uint64(len(fr.buf))
}

// Events returns the retained events oldest-first (a copy; the recorder
// may keep recording).
func (fr *FlightRecorder) Events() []PacketEvent {
	if fr == nil || len(fr.buf) == 0 {
		return nil
	}
	out := make([]PacketEvent, 0, len(fr.buf))
	if len(fr.buf) == cap(fr.buf) {
		out = append(out, fr.buf[fr.next:]...)
		out = append(out, fr.buf[:fr.next]...)
		return out
	}
	return append(out, fr.buf...)
}

// Filter selects a subset of recorded events for dumping. The zero value
// matches everything; set MatchFlow/MatchNode to narrow. A node filter
// keeps events the node participates in on either side (as the event's
// node or its peer).
type Filter struct {
	// MatchFlow restricts to one flow when true.
	MatchFlow bool
	// Flow is the flow to keep when MatchFlow is set.
	Flow pkt.FlowID
	// MatchNode restricts to one node's events when true.
	MatchNode bool
	// Node is the node to keep when MatchNode is set.
	Node pkt.NodeID
}

// keep reports whether the filter retains ev.
func (f Filter) keep(ev *PacketEvent) bool {
	if f.MatchFlow && ev.Flow != f.Flow {
		return false
	}
	if f.MatchNode && ev.Node != f.Node && ev.Peer != f.Node {
		return false
	}
	return true
}

// WriteJSONL dumps the retained events oldest-first as one JSON object
// per line, keeping only events the filter matches. It returns the
// number of lines written. The hand-rolled formatting keeps the output
// stable (fixed key order, %.9f timestamps align to the engine's
// nanosecond clock).
func (fr *FlightRecorder) WriteJSONL(w io.Writer, f Filter) (int, error) {
	n := 0
	for _, ev := range fr.Events() {
		ev := ev
		if !f.keep(&ev) {
			continue
		}
		_, err := fmt.Fprintf(w,
			`{"t":%.9f,"kind":%q,"cause":%q,"node":%q,"peer":%q,"flow":%d,"seq":%d}`+"\n",
			ev.At.Seconds(), ev.Kind.String(), ev.Cause.String(),
			ev.Node.String(), ev.Peer.String(), ev.Flow, ev.Seq)
		if err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
