package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ { // a little work so the profiles are non-trivial
		_ = make([]byte, 64)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartProfilesDisabled(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if stop == nil {
		t.Fatal("stop must never be nil")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("unwritable cpu path must error")
	}
}
