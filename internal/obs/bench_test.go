package obs

import (
	"testing"
)

// The BenchmarkObs* benchmarks pin the observability cost model in
// BENCH_PR6.json: enabled instruments are allocation-free on the hot
// path, and the disabled (nil-receiver) hooks are close to free. make
// bench gates the alloc columns at zero.

func BenchmarkObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench.count")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterVecInc(b *testing.B) {
	cv := NewRegistry().CounterVec("bench.vec", []string{"a", "b", "c", "d"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cv.Inc(i & 3)
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist", []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&127) * 0.1)
	}
}

func BenchmarkObsFlightRecord(b *testing.B) {
	fr := NewFlightRecorder(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr.Record(1, KindTxAttempt, CauseNone, 1, 2, 1, uint64(i))
	}
}

// BenchmarkObsDisabledHooks measures the whole disabled path at once —
// every instrument nil, exactly what an unobserved scenario's MAC/PHY
// hot loops pay per event.
func BenchmarkObsDisabledHooks(b *testing.B) {
	var (
		c  *Counter
		cv *CounterVec
		h  *Histogram
		fr *FlightRecorder
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		cv.Inc(0)
		h.Observe(1)
		fr.Record(1, KindTxAttempt, CauseNone, 1, 2, 1, uint64(i))
	}
}

// TestDisabledHooksDoNotAllocate is the same pin as the benchmark but
// enforced in the ordinary test suite, so a regression fails go test,
// not just make bench.
func TestDisabledHooksDoNotAllocate(t *testing.T) {
	var (
		c  *Counter
		cv *CounterVec
		h  *Histogram
		fr *FlightRecorder
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		cv.Inc(0)
		h.Observe(1)
		fr.Record(1, KindTxAttempt, CauseNone, 1, 2, 1, 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled hooks allocate %g allocs/op, want 0", allocs)
	}
}

// TestEnabledHooksDoNotAllocate pins the enabled steady state too: once
// registered, increments and ring records never allocate.
func TestEnabledHooksDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc.count")
	cv := r.CounterVec("alloc.vec", []string{"a", "b"})
	h := r.Histogram("alloc.hist", []float64{1, 10})
	fr := NewFlightRecorder(64)
	for i := 0; i < 128; i++ { // fill the ring so Record overwrites
		fr.Record(1, KindEnqueue, CauseNone, 1, 2, 1, uint64(i))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		cv.Inc(1)
		h.Observe(5)
		fr.Record(1, KindTxAttempt, CauseNone, 1, 2, 1, 0)
	})
	if allocs != 0 {
		t.Fatalf("enabled hooks allocate %g allocs/op, want 0", allocs)
	}
}
