// Package buildinfo provides the version string the cmd binaries print
// for -version: a repository release number plus, when the binary was
// built from a version-controlled checkout, the VCS revision and its
// dirty flag from the Go build info.
package buildinfo

import (
	"runtime/debug"
	"strings"
)

// Release is the repository's hand-maintained version, bumped when the
// public surface changes.
const Release = "0.3.0"

// String returns the full human-readable version, e.g.
// "0.3.0 (go1.24.0, rev 1a2b3c4d)".
func String() string {
	var b strings.Builder
	b.WriteString(Release)
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b.String()
	}
	b.WriteString(" (")
	b.WriteString(bi.GoVersion)
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		b.WriteString(", rev ")
		b.WriteString(rev)
		b.WriteString(dirty)
	}
	b.WriteString(")")
	return b.String()
}
