// Package plot renders time series as ASCII charts, so the command-line
// tools can draw the paper's figures (buffer evolution, throughput, delay,
// contention-window staircases) directly in a terminal without any
// plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"

	"ezflow/internal/sim"
	"ezflow/internal/stats"
)

// Options controls chart geometry.
type Options struct {
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 16)
	YLabel string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

// markers are assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Chart renders one or more series over a shared time axis. Series are
// downsampled by bucketing points per column and averaging within the
// bucket, which preserves the shapes of the paper's figures.
func Chart(title string, opts Options, series ...*stats.Series) string {
	opts = opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	nonEmpty := 0
	for _, s := range series {
		if s != nil && s.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}

	// Shared ranges.
	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMin, vMax := 0.0, math.Inf(-1) // y axis anchored at zero
	for _, s := range series {
		if s == nil {
			continue
		}
		for _, p := range s.Points {
			ts := p.T.Seconds()
			if ts < tMin {
				tMin = ts
			}
			if ts > tMax {
				tMax = ts
			}
			if p.V > vMax {
				vMax = p.V
			}
			if p.V < vMin {
				vMin = p.V
			}
		}
	}
	if vMax <= vMin {
		vMax = vMin + 1
	}
	if tMax <= tMin {
		tMax = tMin + 1
	}

	// Rasterise.
	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		if s == nil || s.Len() == 0 {
			continue
		}
		mark := markers[si%len(markers)]
		colSum := make([]float64, opts.Width)
		colN := make([]int, opts.Width)
		for _, p := range s.Points {
			c := int((p.T.Seconds() - tMin) / (tMax - tMin) * float64(opts.Width-1))
			colSum[c] += p.V
			colN[c]++
		}
		for c := 0; c < opts.Width; c++ {
			if colN[c] == 0 {
				continue
			}
			v := colSum[c] / float64(colN[c])
			r := int((v - vMin) / (vMax - vMin) * float64(opts.Height-1))
			row := opts.Height - 1 - r
			grid[row][c] = mark
		}
	}

	// Emit with a y-axis.
	for r := 0; r < opts.Height; r++ {
		frac := float64(opts.Height-1-r) / float64(opts.Height-1)
		val := vMin + frac*(vMax-vMin)
		fmt.Fprintf(&b, "%9.1f |%s\n", val, string(grid[r]))
	}
	fmt.Fprintf(&b, "%9s +%s\n", "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%9s  %-*.1f%*.1f s\n", "", opts.Width/2, tMin, opts.Width-opts.Width/2, tMax)
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%9s  y: %s", "", opts.YLabel)
		for si, s := range series {
			if s == nil {
				continue
			}
			fmt.Fprintf(&b, "   %c %s", markers[si%len(markers)], s.Name)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CWStaircase renders a contention-window trace as a log2 staircase, the
// form of the paper's Figures 8 and 11.
func CWStaircase(title string, opts Options, traces map[string][]CWPoint) string {
	series := make([]*stats.Series, 0, len(traces))
	names := make([]string, 0, len(traces))
	for name := range traces {
		names = append(names, name)
	}
	// Sorted for deterministic rendering.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		s := &stats.Series{Name: name}
		for _, p := range traces[name] {
			s.Add(p.At, math.Log2(float64(p.CW)))
		}
		series = append(series, s)
	}
	if opts.YLabel == "" {
		opts.YLabel = "log2(cw)"
	}
	return Chart(title, opts, series...)
}

// CWPoint mirrors a contention-window sample.
type CWPoint struct {
	At sim.Time
	CW int
}
