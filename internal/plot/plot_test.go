package plot

import (
	"strings"
	"testing"

	"ezflow/internal/sim"
	"ezflow/internal/stats"
)

func ramp(name string, n int, slope float64) *stats.Series {
	s := &stats.Series{Name: name}
	for i := 0; i < n; i++ {
		s.Add(sim.Time(i)*sim.Second, float64(i)*slope)
	}
	return s
}

func TestChartBasics(t *testing.T) {
	out := Chart("buffer evolution", Options{Width: 40, Height: 8, YLabel: "pkts"},
		ramp("N1", 100, 0.5))
	if !strings.Contains(out, "buffer evolution") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "pkts") || !strings.Contains(out, "N1") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data markers rendered")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + time labels + legend.
	if len(lines) != 1+8+1+1+1 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestChartMultipleSeries(t *testing.T) {
	out := Chart("two", Options{Width: 30, Height: 6},
		ramp("a", 50, 1), ramp("b", 50, 0.2))
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("markers for both series missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", Options{}, &stats.Series{}, nil)
	if !strings.Contains(out, "no data") {
		t.Fatal("empty chart not flagged")
	}
}

func TestChartFlatSeries(t *testing.T) {
	s := &stats.Series{Name: "flat"}
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i)*sim.Second, 5)
	}
	out := Chart("flat", Options{Width: 20, Height: 5}, s)
	if !strings.Contains(out, "*") {
		t.Fatal("flat series rendered nothing")
	}
}

func TestChartSinglePoint(t *testing.T) {
	s := &stats.Series{Name: "pt"}
	s.Add(sim.Second, 3)
	out := Chart("point", Options{Width: 10, Height: 4}, s)
	if !strings.Contains(out, "*") {
		t.Fatal("single point not rendered")
	}
}

func TestCWStaircase(t *testing.T) {
	traces := map[string][]CWPoint{
		"N0->N1": {{0, 32}, {100 * sim.Second, 64}, {200 * sim.Second, 128}},
		"N1->N2": {{0, 32}},
	}
	out := CWStaircase("cw", Options{Width: 30, Height: 6}, traces)
	if !strings.Contains(out, "log2(cw)") {
		t.Fatal("missing y label")
	}
	if !strings.Contains(out, "N0->N1") || !strings.Contains(out, "N1->N2") {
		t.Fatal("missing trace names")
	}
}

func TestChartDeterministic(t *testing.T) {
	traces := map[string][]CWPoint{
		"b": {{0, 32}}, "a": {{0, 64}}, "c": {{0, 16}},
	}
	x := CWStaircase("t", Options{}, traces)
	for i := 0; i < 5; i++ {
		if CWStaircase("t", Options{}, traces) != x {
			t.Fatal("staircase rendering not deterministic")
		}
	}
}
