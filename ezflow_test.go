package ezflow

import (
	"testing"

	"ezflow/internal/mesh"
	"ezflow/internal/sim"
)

func quickCfg(mode Mode, dur Time) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.Duration = dur
	return cfg
}

func TestChainRunProducesResults(t *testing.T) {
	sc := NewChain(4, quickCfg(Mode80211, 120*Second),
		FlowSpec{Flow: 1, RateBps: 2e6})
	res := sc.Run()
	fr := res.Flows[1]
	if fr == nil || fr.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	if fr.MeanThroughputKbps <= 0 || fr.MeanDelaySec <= 0 {
		t.Fatalf("degenerate stats: %+v", fr)
	}
	if fr.P95DelaySec < fr.MeanDelaySec/10 || fr.MaxDelaySec < fr.P95DelaySec {
		t.Fatalf("delay percentiles inconsistent: mean=%v p95=%v max=%v",
			fr.MeanDelaySec, fr.P95DelaySec, fr.MaxDelaySec)
	}
	if len(res.QueueTraces) != 5 {
		t.Fatalf("queue traces for %d nodes, want 5", len(res.QueueTraces))
	}
	if res.AggKbps != fr.MeanThroughputKbps {
		t.Fatal("aggregate mismatch for single flow")
	}
	if res.Fairness != 1 {
		t.Fatalf("single-flow fairness = %v, want 1", res.Fairness)
	}
}

func TestRunTwicePanics(t *testing.T) {
	sc := NewChain(2, quickCfg(Mode80211, 30*Second), FlowSpec{Flow: 1, RateBps: 1e5})
	sc.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	sc.Run()
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *Result {
		return NewChain(4, quickCfg(ModeEZFlow, 120*Second),
			FlowSpec{Flow: 1, RateBps: 2e6}).Run()
	}
	a, b := run(), run()
	if a.Flows[1].Delivered != b.Flows[1].Delivered {
		t.Fatalf("same seed diverged: %d vs %d packets",
			a.Flows[1].Delivered, b.Flows[1].Delivered)
	}
	if a.Flows[1].MeanThroughputKbps != b.Flows[1].MeanThroughputKbps {
		t.Fatal("same seed, different throughput")
	}
	cfg := quickCfg(ModeEZFlow, 120*Second)
	cfg.Seed = 99
	c := NewChain(4, cfg, FlowSpec{Flow: 1, RateBps: 2e6}).Run()
	if c.Flows[1].Delivered == a.Flows[1].Delivered {
		t.Log("different seeds matched exactly; suspicious but not impossible")
	}
}

func TestEZFlowStabilizesChain(t *testing.T) {
	plain := NewChain(5, quickCfg(Mode80211, 300*Second),
		FlowSpec{Flow: 1, RateBps: 2e6}).Run()
	ezr := NewChain(5, quickCfg(ModeEZFlow, 300*Second),
		FlowSpec{Flow: 1, RateBps: 2e6}).Run()
	if ezr.MeanQueue[1] >= plain.MeanQueue[1] {
		t.Fatalf("EZ-flow did not reduce N1 backlog: %.1f -> %.1f",
			plain.MeanQueue[1], ezr.MeanQueue[1])
	}
	if ezr.Flows[1].MeanDelaySec >= plain.Flows[1].MeanDelaySec {
		t.Fatalf("EZ-flow did not reduce delay: %.2f -> %.2f",
			plain.Flows[1].MeanDelaySec, ezr.Flows[1].MeanDelaySec)
	}
	if len(ezr.CWTraces) == 0 || len(ezr.FinalCW) == 0 {
		t.Fatal("EZ-flow run missing cw traces")
	}
}

func TestPenaltyMode(t *testing.T) {
	cfg := quickCfg(ModePenalty, 300*Second)
	cfg.PenaltyQ = 1.0 / 64
	cfg.PenaltyRelayCW = 16
	res := NewChain(4, cfg, FlowSpec{Flow: 1, RateBps: 2e6}).Run()
	plain := NewChain(4, quickCfg(Mode80211, 300*Second),
		FlowSpec{Flow: 1, RateBps: 2e6}).Run()
	if res.MeanQueue[1] >= plain.MeanQueue[1] {
		t.Fatalf("penalty scheme did not reduce backlog: %.1f vs %.1f",
			res.MeanQueue[1], plain.MeanQueue[1])
	}
}

func TestDiffQMode(t *testing.T) {
	res := NewChain(4, quickCfg(ModeDiffQ, 120*Second),
		FlowSpec{Flow: 1, RateBps: 2e6}).Run()
	if res.OverheadBytes == 0 {
		t.Fatal("DiffQ mode reported no message-passing overhead")
	}
	if res.Flows[1].Delivered == 0 {
		t.Fatal("DiffQ mode delivered nothing")
	}
}

func TestEZFlowZeroOverhead(t *testing.T) {
	res := NewChain(4, quickCfg(ModeEZFlow, 60*Second),
		FlowSpec{Flow: 1, RateBps: 2e6}).Run()
	if res.OverheadBytes != 0 {
		t.Fatalf("EZ-flow reported %d overhead bytes; it must be zero (no message passing)",
			res.OverheadBytes)
	}
}

func TestFlowSchedules(t *testing.T) {
	sc := NewChain(3, quickCfg(Mode80211, 120*Second),
		FlowSpec{Flow: 1, RateBps: 1e5, Start: 30 * Second, Stop: 60 * Second})
	res := sc.Run()
	before := res.Flows[1].Throughput.Window(0, 25*Second)
	during := res.Flows[1].Throughput.Window(35*Second, 55*Second)
	if before.Mean() != 0 {
		t.Fatalf("traffic before the start time: %.1f kb/s", before.Mean())
	}
	if during.Mean() <= 0 {
		t.Fatal("no traffic during the active window")
	}
}

func TestWindowHelpers(t *testing.T) {
	sc := NewChain(3, quickCfg(Mode80211, 120*Second),
		FlowSpec{Flow: 1, RateBps: 2e6})
	res := sc.Run()
	m, s := res.FlowWindowKbps(1, 0, 120*Second)
	if m <= 0 || s < 0 {
		t.Fatalf("window stats: %v ± %v", m, s)
	}
	if d := res.FlowWindowDelay(1, 0, 120*Second); d <= 0 {
		t.Fatalf("window delay: %v", d)
	}
	if fi := res.FairnessWindow(0, 120*Second, 1); fi != 1 {
		t.Fatalf("single-flow window FI = %v", fi)
	}
	if m, _ := res.FlowWindowKbps(42, 0, Second); m != 0 {
		t.Fatal("unknown flow window not zero")
	}
	if d := res.FlowWindowDelay(42, 0, Second); d != 0 {
		t.Fatal("unknown flow delay not zero")
	}
}

func TestCustomScenarioBuilder(t *testing.T) {
	cfg := quickCfg(Mode80211, 60*Second)
	sc := NewScenario(cfg, func(eng *sim.Engine) *mesh.Mesh {
		m := mesh.New(eng, cfg.PHY, cfg.MAC)
		m.AddNode(0, Position{X: 0})
		m.AddNode(1, Position{X: 200})
		m.AddNode(2, Position{X: 400})
		m.SetRoute(7, []NodeID{0, 1, 2})
		return m
	}, FlowSpec{Flow: 7, RateBps: 5e5})
	res := sc.Run()
	if res.Flows[7].Delivered == 0 {
		t.Fatal("custom scenario delivered nothing")
	}
}

func TestPoissonFlow(t *testing.T) {
	sc := NewChain(2, quickCfg(Mode80211, 120*Second),
		FlowSpec{Flow: 1, RateBps: 1e5, Poisson: true})
	res := sc.Run()
	if res.Flows[1].Delivered == 0 {
		t.Fatal("poisson flow delivered nothing")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Mode80211: "802.11", ModeEZFlow: "EZ-flow",
		ModePenalty: "penalty-q", ModeDiffQ: "DiffQ", Mode(99): "unknown",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q", int(m), m.String())
		}
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.PHY.TxRange != 250 || cfg.PHY.CSRange != 550 {
		t.Error("phy defaults")
	}
	if cfg.MAC.QueueCap != 50 {
		t.Error("mac queue default")
	}
	if cfg.EZ.CAA.BMin != 0.05 || cfg.EZ.CAA.BMax != 20 {
		t.Error("CAA thresholds")
	}
}

// TestAdaptsToLinkDegradation covers the §2.2 requirement that EZ-Flow
// adapts to environment changes: halfway through the run the second link
// of the chain degrades sharply (a new bottleneck appears), and EZ-Flow
// must re-adapt so that the relay feeding it does not stay saturated.
func TestAdaptsToLinkDegradation(t *testing.T) {
	run := func(mode Mode) *Result {
		cfg := quickCfg(mode, 900*Second)
		sc := NewChain(4, cfg, FlowSpec{Flow: 1, RateBps: 2e6})
		// Degrade l1 (N1->N2) at t = 300 s.
		sc.Eng.Schedule(300*Second, func() {
			sc.Mesh.Ch.SetLinkLoss(1, 2, 0.45)
		})
		return sc.Run()
	}
	plain := run(Mode80211)
	with := run(ModeEZFlow)
	// After the change, N1 feeds a much slower link. Compare its mean
	// backlog over the post-change window.
	window := func(r *Result) float64 {
		return r.QueueTraces[1].Window(500*Second, 900*Second).Mean()
	}
	pq, wq := window(plain), window(with)
	if wq >= pq {
		t.Fatalf("EZ-flow did not re-adapt to the degraded link: N1 backlog %.1f vs %.1f",
			wq, pq)
	}
	// And the source must have been throttled harder than before the
	// degradation (cw above the pre-change steady value of 64).
	if cw := with.FinalCW["N0->N1"]; cw < 64 {
		t.Fatalf("source cw %d after degradation; expected a stronger penalty", cw)
	}
}

// TestTreeScenarioAPI exercises the public NewTree constructor.
func TestTreeScenarioAPI(t *testing.T) {
	cfg := quickCfg(ModeEZFlow, 120*Second)
	sc := NewTree(2, 2, cfg)
	if len(sc.Mesh.Flows()) != 4 {
		t.Fatalf("tree flows = %d, want 4", len(sc.Mesh.Flows()))
	}
	res := sc.Run()
	if res.AggKbps <= 0 {
		t.Fatal("tree delivered nothing")
	}
	if len(sc.Deployment.Controllers) == 0 {
		t.Fatal("no controllers on the tree")
	}
}
