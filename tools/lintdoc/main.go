// Command lintdoc enforces the repository's godoc conventions without
// external dependencies (the CI image is offline): every package must
// carry a package-level doc comment, and every exported symbol of the
// public root package (ezflow) and of every internal/... package must
// have a doc comment. It exits non-zero with a file:line report when
// either rule is violated.
//
// Usage (from the module root):
//
//	go run ./tools/lintdoc
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strict reports whether a package directory's exported symbols must all
// be documented (not just the package clause): the public API at the root
// and every internal package. Exported names inside internal/ are the
// contract between the repository's layers; undocumented ones rot first.
func strict(dir string) bool {
	return dir == "." || dir == "internal" || strings.HasPrefix(dir, "internal/")
}

func main() {
	dirs := map[string][]string{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		dirs[dir] = append(dirs[dir], path)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintdoc: %v\n", err)
		os.Exit(2)
	}

	var problems []string
	names := make([]string, 0, len(dirs))
	for dir := range dirs {
		names = append(names, dir)
	}
	sort.Strings(names)
	for _, dir := range names {
		problems = append(problems, checkDir(dir, dirs[dir])...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "lintdoc: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns its violations.
func checkDir(dir string, files []string) []string {
	fset := token.NewFileSet()
	var problems []string
	hasPkgDoc := false
	sort.Strings(files)
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: parse error: %v", path, err))
			continue
		}
		if f.Doc != nil {
			hasPkgDoc = true
		}
		if strict(dir) {
			problems = append(problems, checkExported(fset, f)...)
		}
	}
	if !hasPkgDoc {
		problems = append(problems, fmt.Sprintf("%s: package has no package-level doc comment", dir))
	}
	return problems
}

// checkExported reports every exported top-level symbol of f that lacks a
// doc comment (on the declaration or, in grouped declarations, on the
// individual spec).
func checkExported(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	undocumented := func(pos token.Pos, kind, name string) {
		problems = append(problems,
			fmt.Sprintf("%s: exported %s %s has no doc comment", fset.Position(pos), kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && exportedReceiver(d) && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				undocumented(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						undocumented(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if d.Doc != nil || s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							undocumented(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether a function is free-standing or a
// method on an exported type (methods on unexported types are internal
// even when their own name is exported).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}
