// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so benchmark runs can be archived as CI
// artifacts (BENCH_PR2.json) and diffed across PRs without parsing the
// text format downstream.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | go run ./tools/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in JSON form. Metrics holds every
// "value unit" pair: ns/op, B/op, allocs/op, and custom ReportMetric
// units such as kbps.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the top-level JSON document.
type Output struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var out Output
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			// Strip the -8 GOMAXPROCS suffix for stable names.
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
