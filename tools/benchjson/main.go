// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so benchmark runs can be archived as CI
// artifacts (BENCH_PR3.json) and diffed across PRs without parsing the
// text format downstream.
//
// With -baseline it additionally acts as the repository's performance
// regression gate: every benchmark present in the baseline document is
// compared against the fresh run, and the command exits non-zero when
// ns/op or allocs/op regressed by more than -tolerance (relative). A
// zero-alloc baseline is pinned exactly: any allocation at all fails,
// which is what guards the simulator's hot path.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | go run ./tools/benchjson
//	go run ./tools/benchjson -baseline BENCH_PR2.json -tolerance 0.25 \
//	    < bench.out > BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in JSON form. Metrics holds every
// "value unit" pair: ns/op, B/op, allocs/op, and custom ReportMetric
// units such as kbps.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the top-level JSON document.
type Output struct {
	Benchmarks []Result `json:"benchmarks"`
}

// gatedMetrics are the metrics the -baseline gate checks; for both,
// larger is worse.
var gatedMetrics = []string{"ns/op", "allocs/op"}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to gate against (empty = convert only)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed relative regression per gated metric")
	flag.Parse()

	out := parseBench(os.Stdin)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var base Output
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	regressions := compare(base, out, *tolerance)
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "benchjson: REGRESSION "+r)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% vs %s\n",
			len(regressions), *tolerance*100, *baseline)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regression beyond %.0f%% vs %s (%d benchmarks gated)\n",
		*tolerance*100, *baseline, len(base.Benchmarks))
}

// parseBench reads `go test -bench` text into an Output.
func parseBench(in *os.File) Output {
	var out Output
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			// Strip the -8 GOMAXPROCS suffix for stable names.
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	return out
}

// compare gates cur against base and returns one line per regression.
// Benchmarks missing from the fresh run count as regressions too — a
// silently deleted benchmark must not silently delete its guarantee.
func compare(base, cur Output, tol float64) []string {
	byName := map[string]Result{}
	for _, b := range cur.Benchmarks {
		byName[b.Name] = b
	}
	var out []string
	for _, b := range base.Benchmarks {
		c, ok := byName[b.Name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline but not in this run", b.Name))
			continue
		}
		for _, m := range gatedMetrics {
			old, okOld := b.Metrics[m]
			cv, okNew := c.Metrics[m]
			if !okOld {
				continue
			}
			if !okNew {
				out = append(out, fmt.Sprintf("%s %s: metric missing from this run", b.Name, m))
				continue
			}
			if old == 0 {
				if cv > 0 {
					out = append(out, fmt.Sprintf("%s %s: %.0f vs pinned 0", b.Name, m, cv))
				}
				continue
			}
			if cv > old*(1+tol) {
				out = append(out, fmt.Sprintf("%s %s: %.1f vs %.1f (+%.0f%%)",
					b.Name, m, cv, old, (cv/old-1)*100))
			}
		}
	}
	return out
}
