// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so benchmark runs can be archived as CI
// artifacts (BENCH_PR3.json) and diffed across PRs without parsing the
// text format downstream.
//
// With -baseline it additionally acts as the repository's performance
// regression gate: every benchmark present in the baseline document is
// compared against the fresh run, and the command exits non-zero when
// ns/op or allocs/op regressed by more than the allowed relative
// tolerance. allocs/op is deterministic across hosts and uses the
// strict -tolerance; ns/op depends on the machine the baseline was
// recorded on, so -ns-tolerance (defaulting to -tolerance) lets CI
// grant wall-clock a wider band without loosening the allocation
// budget. A zero-alloc baseline is pinned exactly: any allocation at
// all fails, which is what guards the simulator's hot path.
//
// With -compare old.json new.json it instead prints a speedup table
// between two archived runs — ns/op and allocs/op side by side with the
// improvement factor — which is what PR descriptions and the CI bench
// job summary embed.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | go run ./tools/benchjson
//	go run ./tools/benchjson -baseline BENCH_PR2.json -tolerance 0.25 \
//	    < bench.out > BENCH_PR3.json
//	go run ./tools/benchjson -compare BENCH_PR3.json BENCH_PR4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in JSON form. Metrics holds every
// "value unit" pair: ns/op, B/op, allocs/op, and custom ReportMetric
// units such as kbps.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the top-level JSON document.
type Output struct {
	Benchmarks []Result `json:"benchmarks"`
}

// gatedMetrics are the metrics the -baseline gate checks; for both,
// larger is worse.
var gatedMetrics = []string{"ns/op", "allocs/op"}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to gate against (empty = convert only)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed relative regression per gated metric")
	nsTolerance := flag.Float64("ns-tolerance", -1, "allowed relative ns/op regression; ns/op is host-sensitive, so gates across machines may need a wider band than allocs/op (default: -tolerance)")
	compareMode := flag.Bool("compare", false, "compare two archived JSON documents (args: old.json new.json) and print a speedup table")
	flag.Parse()

	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		old, err := loadOutput(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		cur, err := loadOutput(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		printSpeedups(os.Stdout, flag.Arg(0), flag.Arg(1), old, cur)
		return
	}

	out := parseBench(os.Stdin)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}

	base, err := loadOutput(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *nsTolerance < 0 {
		*nsTolerance = *tolerance
	}
	regressions := compare(base, out, map[string]float64{
		"ns/op":     *nsTolerance,
		"allocs/op": *tolerance,
	})
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "benchjson: REGRESSION "+r)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond tolerance vs %s\n",
			len(regressions), *baseline)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regression beyond tolerance vs %s (%d benchmarks gated)\n",
		*baseline, len(base.Benchmarks))
}

// loadOutput reads and parses an archived benchmark JSON document.
func loadOutput(path string) (Output, error) {
	var out Output
	data, err := os.ReadFile(path)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return out, fmt.Errorf("parsing %s: %v", path, err)
	}
	return out, nil
}

// printSpeedups renders the -compare table: every benchmark present in
// both documents with its old/new ns/op and allocs/op and the speedup
// factor (old/new; >1 is an improvement). Benchmarks present on only one
// side are listed below the table so a comparison never hides a missing
// guarantee.
func printSpeedups(w *os.File, oldName, newName string, old, cur Output) {
	byName := map[string]Result{}
	for _, b := range cur.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Fprintf(w, "%-34s %14s %14s %8s %12s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs")
	var onlyOld, onlyNew []string
	seen := map[string]bool{}
	for _, b := range old.Benchmarks {
		c, ok := byName[b.Name]
		if !ok {
			onlyOld = append(onlyOld, b.Name)
			continue
		}
		seen[b.Name] = true
		oldNS, newNS := b.Metrics["ns/op"], c.Metrics["ns/op"]
		speed := "n/a"
		if oldNS > 0 && newNS > 0 {
			speed = fmt.Sprintf("%.2fx", oldNS/newNS)
		}
		fmt.Fprintf(w, "%-34s %14.1f %14.1f %8s %12.0f %12.0f\n",
			b.Name, oldNS, newNS, speed, b.Metrics["allocs/op"], c.Metrics["allocs/op"])
	}
	for _, c := range cur.Benchmarks {
		if !seen[c.Name] {
			onlyNew = append(onlyNew, c.Name)
		}
	}
	for _, n := range onlyOld {
		fmt.Fprintf(w, "%-34s only in %s\n", n, oldName)
	}
	for _, n := range onlyNew {
		fmt.Fprintf(w, "%-34s only in %s (new)\n", n, newName)
	}
}

// parseBench reads `go test -bench` text into an Output.
func parseBench(in *os.File) Output {
	var out Output
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			// Strip the -8 GOMAXPROCS suffix for stable names.
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	return out
}

// compare gates cur against base with a per-metric relative tolerance
// and returns one line per regression. Benchmarks missing from the
// fresh run count as regressions too — a silently deleted benchmark
// must not silently delete its guarantee.
func compare(base, cur Output, tol map[string]float64) []string {
	byName := map[string]Result{}
	for _, b := range cur.Benchmarks {
		byName[b.Name] = b
	}
	var out []string
	for _, b := range base.Benchmarks {
		c, ok := byName[b.Name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline but not in this run", b.Name))
			continue
		}
		for _, m := range gatedMetrics {
			old, okOld := b.Metrics[m]
			cv, okNew := c.Metrics[m]
			if !okOld {
				continue
			}
			if !okNew {
				out = append(out, fmt.Sprintf("%s %s: metric missing from this run", b.Name, m))
				continue
			}
			if old == 0 {
				if cv > 0 {
					out = append(out, fmt.Sprintf("%s %s: %.0f vs pinned 0", b.Name, m, cv))
				}
				continue
			}
			if cv > old*(1+tol[m]) {
				out = append(out, fmt.Sprintf("%s %s: %.1f vs %.1f (+%.0f%%, tolerance %.0f%%)",
					b.Name, m, cv, old, (cv/old-1)*100, tol[m]*100))
			}
		}
	}
	return out
}
