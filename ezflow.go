// Package ezflow is the public API of the EZ-Flow reproduction: a
// discrete-event IEEE 802.11 wireless-mesh simulator with the EZ-Flow
// hop-by-hop flow-control mechanism of Aziz, Starobinski, Thiran and
// El Fawal (CoNEXT 2009), the baselines it is compared against, and the
// workloads of the paper's evaluation.
//
// A Scenario bundles a topology, a set of flows with activity schedules, a
// control mode (plain 802.11, EZ-Flow, static penalty, or DiffQ-style
// message passing), and the instrumentation the paper reports: per-flow
// throughput and delay series, relay queue traces, contention-window
// traces, and Jain's fairness index. Topology constructors cover the
// paper's networks (chains, the 9-router testbed, the merge and crossing
// scenarios, §7 trees) plus generated ones — NewGrid lattices and
// NewRandom seeded random-disk deployments with validated connectivity.
//
// Quickstart:
//
//	cfg := ezflow.DefaultConfig()
//	cfg.Mode = ezflow.ModeEZFlow
//	sc := ezflow.NewChain(4, cfg,
//		ezflow.FlowSpec{Flow: 1, RateBps: 2e6, Stop: cfg.Duration})
//	res := sc.Run()
//	fmt.Println(res.Flows[1].MeanThroughputKbps)
//
// Scenarios are single-threaded and deterministic, but independent: each
// owns its engine and its packet/frame pool, so many can run concurrently.
// internal/campaign builds on that to fan parameter sweeps with multi-seed
// replications out across worker pools and aggregate them with confidence
// intervals (see cmd/ezcampaign, and cmd/ezbench's -parallel flag). The
// forwarding hot path is allocation-free in steady state (pooled events,
// packets and frames); BenchmarkChainRun guards the budget.
package ezflow

import (
	"fmt"
	"sort"
	"strings"

	"ezflow/internal/baseline"
	"ezflow/internal/ctl"
	"ezflow/internal/dynamics"
	ez "ezflow/internal/ezflow"
	"ezflow/internal/mac"
	"ezflow/internal/mesh"
	"ezflow/internal/mobility"
	"ezflow/internal/obs"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/routing"
	"ezflow/internal/sim"
	"ezflow/internal/stats"
	"ezflow/internal/trace"
	"ezflow/internal/traffic"
)

// Re-exported identifier types so callers rarely need the internal
// packages.
type (
	// NodeID identifies a mesh node.
	NodeID = pkt.NodeID
	// FlowID identifies an end-to-end flow.
	FlowID = pkt.FlowID
	// Time is virtual simulation time in nanoseconds.
	Time = sim.Time
	// Position is a node location in metres.
	Position = phy.Position
)

// Second is one simulated second.
const Second = sim.Second

// DefaultDuration is the paper's standard 600-second horizon — the run
// length every layer (Config, scenario files, campaigns) falls back to
// when none is configured.
const DefaultDuration = 600 * Second

// Mode selects the flow-control mechanism under test.
type Mode int

const (
	// Mode80211 is plain IEEE 802.11 with no controller (the baseline).
	Mode80211 Mode = iota
	// ModeEZFlow deploys the paper's BOE+CAA controller at every relay.
	ModeEZFlow
	// ModePenalty applies the static penalty scheme of [9] with factor Q.
	ModePenalty
	// ModeDiffQ deploys the DiffQ-style differential-backlog controller,
	// which piggybacks queue sizes on data frames (message passing).
	ModeDiffQ
)

// String returns the paper's display name for the mode.
func (m Mode) String() string {
	switch m {
	case Mode80211:
		return "802.11"
	case ModeEZFlow:
		return "EZ-flow"
	case ModePenalty:
		return "penalty-q"
	case ModeDiffQ:
		return "DiffQ"
	default:
		return "unknown"
	}
}

// ControllerName maps the legacy mode to its controller-registry name
// (empty for plain 802.11, which deploys no controller). The Mode values
// are kept as thin wrappers over the registry: setting cfg.Mode without
// cfg.Controller deploys exactly the controller this reports.
func (m Mode) ControllerName() string {
	switch m {
	case ModeEZFlow:
		return "ezflow"
	case ModePenalty:
		return "penalty"
	case ModeDiffQ:
		return "diffq"
	default:
		return ""
	}
}

// Controllers returns the names of every registered congestion
// controller, sorted — the values Config.Controller, scenario files, the
// campaign "controller" axis and the ezsim -controller flag accept. CLI
// usage strings enumerate this instead of hand-maintained lists.
func Controllers() []string { return ctl.Names() }

// ControllerUsage renders one "name — summary" line per registered
// controller for CLI help text.
func ControllerUsage() string { return ctl.Usage() }

// Routings returns the names of every registered routing strategy, sorted
// — the values Config.Routing, scenario files, the campaign "routing"
// axis and the ezsim -routing flag accept (see internal/routing).
func Routings() []string { return routing.Names() }

// RoutingUsage renders one "name — summary" line per registered routing
// strategy for CLI help text.
func RoutingUsage() string { return routing.Usage() }

// Mobilities returns the names of every registered mobility model,
// sorted — the values Config.Mobility selects by name, scenario files,
// the campaign "mobility" axis and the ezsim -mobility flag accept (see
// internal/mobility). The off spellings ("", "off", "static") are
// accepted everywhere in addition to these.
func Mobilities() []string { return mobility.Names() }

// MobilityUsage renders one "name — summary" line per mobility model
// (including the off default) for CLI help text.
func MobilityUsage() string { return mobility.Usage() }

// Config parameterises a scenario run.
type Config struct {
	Seed     int64
	Duration Time
	Mode     Mode

	// Controller selects a congestion controller from the internal/ctl
	// registry by name (see Controllers()), overriding Mode's controller
	// when non-empty. Empty derives the controller from Mode, so existing
	// Mode-based configurations behave exactly as before. Unknown names
	// panic at scenario wiring — the CLI and scenario layers validate
	// before building.
	Controller string
	// Ctl tunes the registry controllers (backpressure/feedback/staticcap
	// parameters). Zero values select each family's defaults; the EZ and
	// penalty fields are overridden by the top-level EZ/PenaltyQ/
	// PenaltyRelayCW settings below, which remain the source of truth.
	Ctl ctl.Options

	// Routing selects a routing strategy from the internal/routing
	// registry by name (see Routings()). Empty or "bfs" keeps the default
	// minimum-hop behaviour, byte-identical to configurations that predate
	// the registry: builder-installed routes stay exactly as constructed
	// and only dynamics route repair runs the strategy. Any other name
	// ("etx", "kshortest") additionally recomputes every installed route
	// at wiring, so link-quality and multipath strategies take effect
	// before traffic starts. Unknown names panic at scenario wiring — the
	// CLI and scenario layers validate before building.
	Routing string

	// PHY/MAC parameters; zero values select the paper's defaults
	// (802.11b at 1 Mb/s, 250/550 m ranges, CWmin 32, 50-packet queues).
	PHY phy.Config
	MAC mac.Config

	// EZ holds EZ-Flow options (thresholds, window, sniff loss).
	EZ ez.Options
	// PenaltyQ is the throttling factor of ModePenalty (0 < q <= 1).
	PenaltyQ float64
	// PenaltyRelayCW is the relay contention window of ModePenalty.
	PenaltyRelayCW int

	// Dynamics, when non-nil, is a timed perturbation script (link flaps,
	// node churn, channel degradation, traffic steps) injected into the
	// run by the network-dynamics subsystem; see internal/dynamics. When
	// at least one fault event fires, the Result carries stability
	// metrics (recovery time, queue excursion, fairness trajectory).
	Dynamics *dynamics.Script
	// RecoveryTolerance is the fraction x within which a flow's post-fault
	// throughput must return to its pre-fault mean to count as recovered
	// (default 0.2, i.e. back to 80%).
	RecoveryTolerance float64

	// Mobility, when non-nil and naming a model, attaches the
	// position-update engine of internal/mobility: stations move on the
	// simulation clock, the PHY neighbor index is re-patched
	// incrementally (phy.MoveNode), and route maintenance is delegated
	// to the active routing strategy whenever decode-range link
	// membership changes — through dynamics repair when a script is
	// attached, the same reroute-all path otherwise. Zero-value fields
	// inherit the run: Seed from Config.Seed, UntilSec from Duration,
	// and a nil Fixed list pins the gateway (node 0). A nil Mobility (or
	// an off model name) attaches nothing and schedules nothing, so
	// static runs are byte-identical to configurations without the field.
	Mobility *mobility.Config
	// Workload, when non-nil, expands a gateway-scale client flow
	// population (see WorkloadSpec) at wiring, in addition to the
	// explicitly passed flows.
	Workload *WorkloadSpec

	// Obs, when non-nil, enables the observability layer (metric
	// registry, packet flight recorder; see internal/obs) at wiring.
	// Observability never perturbs a run: results are byte-identical with
	// it on or off. Library callers can instead call Scenario.EnableObs
	// on a built scenario.
	Obs *obs.Config

	// PacketBytes is the network packet size (default 1028).
	PacketBytes int
	// Bin is the width of throughput bins (default 10 s).
	Bin Time
	// QueueSample is the period of queue-occupancy sampling (default 1 s).
	QueueSample Time
	// WarmupSkip excludes an initial interval from summary statistics.
	WarmupSkip Time
}

// DefaultConfig returns the paper's simulation settings.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Duration:    DefaultDuration,
		Mode:        Mode80211,
		PHY:         phy.DefaultConfig(),
		MAC:         mac.DefaultConfig(),
		EZ:          ez.DefaultOptions(),
		PenaltyQ:    1.0 / 128,
		PacketBytes: pkt.DefaultPayloadBytes,
		Bin:         10 * Second,
		QueueSample: 1 * Second,
	}
}

// FlowSpec describes one flow's traffic: CBR at RateBps from Start to Stop
// (Stop = 0 means the whole run). Poisson selects Poisson arrivals instead
// of CBR.
type FlowSpec struct {
	Flow    FlowID
	RateBps float64
	Bytes   int
	Start   Time
	Stop    Time
	Poisson bool
}

// Scenario is a fully wired experiment ready to run.
type Scenario struct {
	Cfg     Config
	Eng     *sim.Engine
	Mesh    *mesh.Mesh
	Sources map[FlowID]*traffic.Source
	Meters  map[FlowID]*stats.FlowMeter
	// QueueTraces samples each relay's forwarded-traffic backlog,
	// batching samples through preallocated rings.
	QueueTraces map[NodeID]*trace.Recorder
	// Ctl is the deployed congestion controller, non-nil whenever the
	// scenario runs one (any mode or controller name except plain 802.11).
	Ctl ctl.Instance
	// Deployment is non-nil when the ezflow controller is deployed
	// (ModeEZFlow or Controller "ezflow").
	Deployment *ez.Deployment
	// DiffQ is non-nil when the diffq controller is deployed.
	DiffQ *baseline.DiffQDeployment
	// Dyn is the perturbation engine, non-nil once a dynamics script is
	// attached (Config.Dynamics or AddDynamics).
	Dyn *dynamics.Engine
	// Mob is the mobility engine, non-nil when Config.Mobility selects a
	// model; its Stats land in the Result.
	Mob *mobility.Engine
	// Obs is the attached observability state, non-nil once enabled
	// (Config.Obs or EnableObs); see internal/obs.
	Obs *obs.Set

	specs []FlowSpec
	ran   bool
}

// NewScenario wires a scenario around a caller-built mesh. The builder
// receives the engine and must return the mesh with routes installed.
func NewScenario(cfg Config, build func(*sim.Engine) *mesh.Mesh, flows ...FlowSpec) *Scenario {
	fillDefaults(&cfg)
	eng := sim.NewEngine(cfg.Seed)
	m := build(eng)
	return wire(cfg, eng, m, flows)
}

func fillDefaults(cfg *Config) {
	if cfg.Duration <= 0 {
		cfg.Duration = DefaultDuration
	}
	if cfg.PHY.BitRate == 0 {
		cfg.PHY = phy.DefaultConfig()
	}
	if cfg.MAC.CWmin == 0 {
		def := mac.DefaultConfig()
		def.HardwareCWCap = cfg.MAC.HardwareCWCap
		def.UseRTSCTS = cfg.MAC.UseRTSCTS
		cfg.MAC = def
	}
	if cfg.EZ.CAA.Window == 0 {
		cfg.EZ.CAA = ez.DefaultCAAConfig()
	}
	if cfg.PacketBytes <= 0 {
		cfg.PacketBytes = pkt.DefaultPayloadBytes
	}
	if cfg.Bin <= 0 {
		cfg.Bin = 10 * Second
	}
	if cfg.QueueSample <= 0 {
		cfg.QueueSample = 1 * Second
	}
	if cfg.PenaltyQ <= 0 || cfg.PenaltyQ > 1 {
		cfg.PenaltyQ = 1.0 / 128
	}
	if cfg.PenaltyRelayCW <= 0 {
		cfg.PenaltyRelayCW = 16
	}
	if cfg.RecoveryTolerance <= 0 || cfg.RecoveryTolerance >= 1 {
		cfg.RecoveryTolerance = 0.2
	}
}

// controllerName resolves which registry controller the config deploys:
// the explicit Controller field, or the legacy Mode's wrapper name.
func (c *Config) controllerName() string {
	if c.Controller != "" {
		return c.Controller
	}
	return c.Mode.ControllerName()
}

// ctlOptions assembles the registry options, keeping the top-level EZ and
// penalty fields authoritative over Config.Ctl's copies.
func (c *Config) ctlOptions() ctl.Options {
	opts := c.Ctl
	opts.EZ = c.EZ
	opts.Penalty.Q = c.PenaltyQ
	opts.Penalty.RelayCW = c.PenaltyRelayCW
	ctl.FillDefaults(&opts)
	return opts
}

// NewChain builds a linear K-hop scenario (flow 1 runs end to end).
func NewChain(hops int, cfg Config, flows ...FlowSpec) *Scenario {
	fillDefaults(&cfg)
	eng := sim.NewEngine(cfg.Seed)
	m := mesh.Chain(eng, hops, cfg.PHY, cfg.MAC)
	return wire(cfg, eng, m, flows)
}

// NewTestbed builds the 9-router deployment of the paper's Figure 3, with
// the calibrated per-link losses of Table 1.
func NewTestbed(cfg Config, flows ...FlowSpec) *Scenario {
	fillDefaults(&cfg)
	eng := sim.NewEngine(cfg.Seed)
	m := mesh.Testbed(eng, cfg.PHY, cfg.MAC)
	return wire(cfg, eng, m, flows)
}

// NewScenario1 builds the 2-flow merge topology of Figure 5.
func NewScenario1(cfg Config, flows ...FlowSpec) *Scenario {
	fillDefaults(&cfg)
	eng := sim.NewEngine(cfg.Seed)
	m := mesh.Scenario1(eng, cfg.PHY, cfg.MAC)
	return wire(cfg, eng, m, flows)
}

// NewScenario2 builds the 3-flow topology of Figure 9.
func NewScenario2(cfg Config, flows ...FlowSpec) *Scenario {
	fillDefaults(&cfg)
	eng := sim.NewEngine(cfg.Seed)
	m := mesh.Scenario2(eng, cfg.PHY, cfg.MAC)
	return wire(cfg, eng, m, flows)
}

// NewTree builds the §7 downlink tree: a gateway fanning out to
// branching^depth leaves, one flow per leaf (flow ids 1..#leaves), with
// one per-successor MAC queue at every interior node (the 802.11e-style
// multi-queue deployment the paper's conclusion proposes). If no flows
// are passed, a saturating CBR flow per leaf is created sharing the
// gateway's capacity.
func NewTree(branching, depth int, cfg Config, flows ...FlowSpec) *Scenario {
	fillDefaults(&cfg)
	eng := sim.NewEngine(cfg.Seed)
	m := mesh.Tree(eng, branching, depth, cfg.PHY, cfg.MAC)
	if len(flows) == 0 {
		leaves := mesh.TreeLeaves(branching, depth)
		for f := 1; f <= leaves; f++ {
			flows = append(flows, FlowSpec{Flow: FlowID(f), RateBps: 2e6 / float64(leaves)})
		}
	}
	return wire(cfg, eng, m, flows)
}

// NewGrid builds a w×h lattice scenario: gateway N0 at the origin, flow 1
// from the far corner and (in 2-D grids) flow 2 from the bottom-right
// corner, both routed to the gateway (see mesh.Grid for the geometry).
// With no explicit flows, every installed route gets a saturating 2 Mb/s
// CBR source.
func NewGrid(w, h int, cfg Config, flows ...FlowSpec) *Scenario {
	fillDefaults(&cfg)
	eng := sim.NewEngine(cfg.Seed)
	m := mesh.Grid(eng, w, h, cfg.PHY, cfg.MAC)
	return wire(cfg, eng, m, defaultFlows(m, flows))
}

// NewRandom builds an n-node random-disk scenario: gateway at the disk
// centre, nodes placed uniformly from cfg.Seed (connectivity-validated,
// resampled until the range graph is connected), and flow 1 from the
// farthest node to the gateway along a deterministic shortest-hop path.
// radius <= 0 selects mesh.DefaultDiskRadius(n). The same (n, radius,
// cfg.Seed) always yields the identical topology.
func NewRandom(n int, radius float64, cfg Config, flows ...FlowSpec) *Scenario {
	return NewRandomLossy(n, radius, 0, cfg, flows...)
}

// NewRandomLossy builds the same scenario as NewRandom over a disk with
// an edge-of-range loss model: every link of length d beyond half the
// transmission range erases with probability ramping quadratically up to
// edgeLoss at the range limit (mesh.ApplyEdgeLoss), the heterogeneous
// link quality real deployments measure. edgeLoss 0 is exactly NewRandom.
// Pair it with Config.Routing "etx" to let link-quality routing route
// around the marginal links the default minimum-hop path happily crosses.
func NewRandomLossy(n int, radius, edgeLoss float64, cfg Config, flows ...FlowSpec) *Scenario {
	fillDefaults(&cfg)
	eng := sim.NewEngine(cfg.Seed)
	m := mesh.RandomDiskLossy(eng, n, radius, cfg.Seed, edgeLoss, cfg.PHY, cfg.MAC)
	return wire(cfg, eng, m, defaultFlows(m, flows))
}

// defaultFlows returns the given flows, or a saturating 2 Mb/s CBR spec
// per installed route when none were passed.
func defaultFlows(m *mesh.Mesh, flows []FlowSpec) []FlowSpec {
	if len(flows) > 0 {
		return flows
	}
	for _, f := range m.Flows() {
		flows = append(flows, FlowSpec{Flow: f, RateBps: 2e6})
	}
	return flows
}

func wire(cfg Config, eng *sim.Engine, m *mesh.Mesh, flows []FlowSpec) *Scenario {
	// Routing strategy, resolved through the internal/routing registry
	// before anything observes the mesh (controller deployments and
	// dynamics read the installed routes). The default ("" or "bfs") keeps
	// the builder-installed minimum-hop routes untouched — byte-identical
	// to the pre-registry simulator — and only drives later route repair;
	// any other strategy recomputes every route now, against the
	// calibrated link losses, so it shapes the run from t=0.
	if name := cfg.Routing; name != "" {
		info, ok := routing.ByName(name)
		if !ok {
			panic(fmt.Sprintf("ezflow: unknown routing strategy %q (registered: %s)",
				name, strings.Join(routing.Names(), ", ")))
		}
		m.SetStrategy(info.New(routing.DefaultOptions()))
		if !routing.IsDefault(name) {
			if err := m.RecomputeRoutes(); err != nil {
				panic(fmt.Sprintf("ezflow: %v", err))
			}
		}
	}

	// Gateway-scale workload expansion: extra client flows routed through
	// the strategy resolved above, with activity schedules drawn from a
	// dedicated seed-derived RNG (see workload.go). Before metering so the
	// population is metered like any explicit flow.
	var wlSched map[FlowID][]traffic.Segment
	if cfg.Workload != nil {
		var err error
		flows, wlSched, err = expandWorkload(&cfg, m, flows)
		if err != nil {
			panic(fmt.Sprintf("ezflow: %v", err))
		}
	}

	sc := &Scenario{
		Cfg:         cfg,
		Eng:         eng,
		Mesh:        m,
		Sources:     make(map[FlowID]*traffic.Source),
		Meters:      make(map[FlowID]*stats.FlowMeter),
		QueueTraces: make(map[NodeID]*trace.Recorder),
		specs:       flows,
	}

	// Metering: one FlowMeter per flow, fed by the mesh sink.
	for _, fs := range flows {
		sc.Meters[fs.Flow] = stats.NewFlowMeter(cfg.Bin)
	}
	m.AddSink(func(p *pkt.Packet, at sim.Time) {
		if mt := sc.Meters[p.Flow]; mt != nil {
			mt.OnDeliver(at, p.Created, p.Bytes)
		}
	})

	// Sources with schedules.
	for _, fs := range flows {
		bytes := fs.Bytes
		if bytes <= 0 {
			bytes = cfg.PacketBytes
		}
		var src *traffic.Source
		if fs.Poisson {
			src = traffic.NewPoisson(m, fs.Flow, fs.RateBps, bytes)
		} else {
			src = traffic.NewCBR(m, fs.Flow, fs.RateBps, bytes)
		}
		if segs, ok := wlSched[fs.Flow]; ok {
			src.ApplySchedule(segs)
		} else {
			src.StartAt(fs.Start)
			stop := fs.Stop
			if stop <= 0 {
				stop = cfg.Duration
			}
			src.StopAt(stop)
		}
		sc.Sources[fs.Flow] = src
	}

	// Controller deployment, resolved through the internal/ctl registry:
	// Config.Controller wins, the legacy Mode otherwise.
	if name := cfg.controllerName(); name != "" {
		info, ok := ctl.ByName(name)
		if !ok {
			panic(fmt.Sprintf("ezflow: unknown controller %q (registered: %s)",
				name, strings.Join(ctl.Names(), ", ")))
		}
		sc.Ctl = info.Deploy(m, cfg.ctlOptions())
		if e, ok := sc.Ctl.(ctl.EZInstance); ok {
			sc.Deployment = e.EZ()
		}
		if d, ok := sc.Ctl.(ctl.DiffQInstance); ok {
			sc.DiffQ = d.DiffQ()
		}
	}

	// Queue traces at every node that relays for some flow.
	for _, n := range m.Nodes() {
		nn := n
		sc.QueueTraces[n.ID] = trace.NewRecorder(eng,
			fmt.Sprintf("queue-%v", n.ID), cfg.QueueSample,
			func() float64 { return float64(nn.MAC.TotalQueued()) })
	}

	// Perturbation timeline, scheduled up front so the run stays a pure
	// function of (scenario, seed).
	if cfg.Dynamics != nil && len(cfg.Dynamics.Events) > 0 {
		if err := sc.AddDynamics(cfg.Dynamics); err != nil {
			panic(fmt.Sprintf("ezflow: %v", err))
		}
	}

	// Mobility, attached after dynamics so the repair hook can see the
	// perturbation engine. A nil config or off model attaches nothing —
	// zero events, zero RNG reads — keeping static runs byte-identical.
	if cfg.Mobility != nil && !mobility.IsOff(cfg.Mobility.Model) {
		mcfg := *cfg.Mobility
		if mcfg.Seed == 0 {
			mcfg.Seed = cfg.Seed
		}
		if mcfg.UntilSec <= 0 {
			mcfg.UntilSec = cfg.Duration.Seconds()
		}
		if mcfg.Fixed == nil {
			// The gateway is mains-powered street furniture, not a
			// commuter: pinned unless the caller says otherwise (an empty
			// non-nil list pins nothing).
			mcfg.Fixed = []NodeID{0}
		}
		mob, err := mobility.Attach(m, mcfg)
		if err != nil {
			panic(fmt.Sprintf("ezflow: %v", err))
		}
		mob.Repair = sc.repairRoutes
		sc.Mob = mob
	}

	// Observability, when the config asks for it (never perturbs the run;
	// see EnableObs).
	if cfg.Obs != nil {
		sc.EnableObs(*cfg.Obs)
	}
	return sc
}

// repairRoutes is the mobility engine's route-maintenance hook: the
// same delegation to the active routing strategy that dynamics repair
// performs. With a perturbation engine attached it IS dynamics repair
// (RerouteAll honours scripted link/node failures and re-extends the
// controller through OnReroute); without one it reroutes every flow
// over current transmission-range connectivity and re-extends the
// controller itself, so queues created by a route change come under
// control exactly as after a scripted fault.
func (sc *Scenario) repairRoutes() {
	if sc.Dyn != nil {
		sc.Dyn.RerouteAll()
		return
	}
	m := sc.Mesh
	usable := func(a, b NodeID) bool {
		return !m.Node(a).MAC.Down() && !m.Node(b).MAC.Down() &&
			!m.Ch.LinkDown(a, b) && m.Ch.InTxRange(a, b)
	}
	for _, f := range m.Flows() {
		m.RerouteFlow(f, usable)
	}
	if sc.Ctl != nil {
		sc.Ctl.Extend(m)
	}
}

// AddDynamics attaches a perturbation script to a wired scenario, or
// appends further events if one is already attached. It must be called
// before Run; event times are absolute simulation times. In ModeEZFlow
// the deployment is re-extended after every route repair so queues that
// repair creates come under control.
func (sc *Scenario) AddDynamics(script *dynamics.Script) error {
	if sc.ran {
		panic("ezflow: AddDynamics after Run")
	}
	if sc.Dyn != nil {
		return sc.Dyn.Append(script)
	}
	dyn, err := dynamics.Attach(sc.Mesh, sc.Sources, script)
	if err != nil {
		return err
	}
	sc.Dyn = dyn
	// Route repair creates fresh queues (and can promote fresh relays);
	// the controller re-asserts itself over them through its instance's
	// Extend (a no-op for DiffQ, whose per-frame remap already walks every
	// queue).
	if sc.Ctl != nil {
		c, m := sc.Ctl, sc.Mesh
		dyn.OnReroute = func() { c.Extend(m) }
	}
	return nil
}

// FlowResult summarises one flow.
type FlowResult struct {
	Flow               FlowID
	Delivered          uint64
	MeanThroughputKbps float64
	StdThroughputKbps  float64
	MeanDelaySec       float64
	MaxDelaySec        float64
	P95DelaySec        float64
	Throughput         *stats.Series
	Delay              *stats.Series
}

// Result is the outcome of a scenario run.
type Result struct {
	Cfg      Config
	Flows    map[FlowID]*FlowResult
	Fairness float64 // Jain index over per-flow mean throughputs
	AggKbps  float64 // cumulative mean throughput
	// QueueTraces maps node -> sampled total MAC backlog series.
	QueueTraces map[NodeID]*stats.Series
	// MeanQueue maps node -> time-average backlog.
	MeanQueue map[NodeID]float64
	// CWTraces maps "node->succ" -> contention window trace points
	// (EZ-Flow mode only).
	CWTraces map[string][]ez.CWPoint
	// FinalCW maps "node->succ" -> cw at the end of the run.
	FinalCW map[string]int
	// Overhead reports extra control bytes put on the air: 0 for EZ-Flow
	// and plain 802.11 (message-free), positive for the explicit-signalling
	// controllers (diffq, backpressure, feedback).
	OverheadBytes uint64
	// Stability carries the fault-recovery metrics; non-nil only when a
	// dynamics script fired at least one fault event during the run.
	Stability *StabilityResult
	// DynamicsLog lists every applied perturbation in execution order
	// (empty without a dynamics script).
	DynamicsLog []dynamics.Applied
	// MobilityStats counts what the mobility engine did (ticks, moves,
	// deferrals, repairs); non-nil only when a mobility model ran.
	MobilityStats *mobility.Stats
	// Obs is the final metrics snapshot, non-nil only when the scenario
	// ran with metrics enabled (Config.Obs or EnableObs).
	Obs *obs.Snapshot
}

// Run executes the scenario until cfg.Duration and summarises. It can only
// be called once per scenario.
func (sc *Scenario) Run() *Result {
	if sc.ran {
		panic("ezflow: scenario already run")
	}
	sc.ran = true
	sc.Eng.Run(sc.Cfg.Duration)
	now := sc.Eng.Now()

	res := &Result{
		Cfg:         sc.Cfg,
		Flows:       make(map[FlowID]*FlowResult),
		QueueTraces: make(map[NodeID]*stats.Series),
		MeanQueue:   make(map[NodeID]float64),
		CWTraces:    make(map[string][]ez.CWPoint),
		FinalCW:     make(map[string]int),
	}

	var thr []float64
	var flowIDs []FlowID
	for f := range sc.Meters {
		flowIDs = append(flowIDs, f)
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, f := range flowIDs {
		mt := sc.Meters[f]
		mt.Close(now)
		w := mt.Throughput.Window(sc.Cfg.WarmupSkip, now)
		dl := mt.Delay.Window(sc.Cfg.WarmupSkip, now)
		fr := &FlowResult{
			Flow:               f,
			Delivered:          mt.Delivered,
			MeanThroughputKbps: w.Mean(),
			StdThroughputKbps:  w.Std(),
			MeanDelaySec:       dl.Mean(),
			MaxDelaySec:        dl.Max(),
			P95DelaySec:        dl.Percentile(95),
			Throughput:         &mt.Throughput,
			Delay:              &mt.Delay,
		}
		res.Flows[f] = fr
		thr = append(thr, fr.MeanThroughputKbps)
		res.AggKbps += fr.MeanThroughputKbps
	}
	res.Fairness = stats.JainIndex(thr)

	for id, s := range sc.QueueTraces {
		s.Stop()
		res.QueueTraces[id] = &s.Series
		res.MeanQueue[id] = s.Series.Mean()
	}
	if sc.Deployment != nil {
		for _, c := range sc.Deployment.Controllers {
			key := fmt.Sprintf("%v->%v", c.Node, c.Successor)
			res.CWTraces[key] = c.CWTrace
			res.FinalCW[key] = c.Queue.CWmin()
		}
	}
	if sc.Ctl != nil {
		res.OverheadBytes = sc.Ctl.OverheadBytes()
	}
	if sc.Dyn != nil {
		res.DynamicsLog = sc.Dyn.Log
		res.Stability = computeStability(sc, res)
	}
	if sc.Mob != nil {
		st := sc.Mob.Stats
		res.MobilityStats = &st
	}
	if sc.Obs != nil && sc.Obs.Reg != nil {
		res.Obs = sc.Obs.Reg.Snapshot(now)
	}
	return res
}

// FlowWindowKbps reports a flow's mean and std throughput within [from,to),
// used for the per-period tables of the paper (Tables 2 and 3).
func (r *Result) FlowWindowKbps(f FlowID, from, to Time) (mean, std float64) {
	fr := r.Flows[f]
	if fr == nil {
		return 0, 0
	}
	w := fr.Throughput.Window(from, to)
	return w.Mean(), w.Std()
}

// FlowWindowDelay reports a flow's mean end-to-end delay within [from,to).
func (r *Result) FlowWindowDelay(f FlowID, from, to Time) float64 {
	fr := r.Flows[f]
	if fr == nil {
		return 0
	}
	return fr.Delay.Window(from, to).Mean()
}

// FairnessWindow computes Jain's index over the flows' mean throughputs
// within [from,to), restricted to the listed flows.
func (r *Result) FairnessWindow(from, to Time, flows ...FlowID) float64 {
	var thr []float64
	for _, f := range flows {
		m, _ := r.FlowWindowKbps(f, from, to)
		thr = append(thr, m)
	}
	return stats.JainIndex(thr)
}
