package ezflow

import (
	"sort"

	"ezflow/internal/stats"
)

// StabilityResult quantifies how a run recovered from mid-run
// perturbations — the metrics the dynamics subsystem adds on top of the
// paper's steady-state evaluation. All windows are measured against the
// first fault instant: recovery time deliberately includes the outage
// itself, so a 30-second flap can never "recover" in under 30 seconds.
type StabilityResult struct {
	// FaultAt is when the first fault event fired.
	FaultAt Time
	// Tolerance is the recovery threshold fraction x (a flow has
	// recovered once its throughput is back within x of pre-fault).
	Tolerance float64
	// PreFaultKbps is each flow's mean throughput over
	// [WarmupSkip, FaultAt).
	PreFaultKbps map[FlowID]float64
	// RecoverySec maps each flow to the seconds from FaultAt until its
	// binned throughput first returned to >= (1-x)·pre-fault and held for
	// the following bin; negative means it never recovered in the run.
	// Flows with no pre-fault traffic (they arrived with or after the
	// fault) have no baseline to recover to and are omitted.
	RecoverySec map[FlowID]float64
	// Recovered reports whether every flow with pre-fault traffic
	// recovered.
	Recovered bool
	// MaxRecoverySec is the slowest flow's recovery time (0 when no flow
	// needed to recover, meaningless when !Recovered).
	MaxRecoverySec float64
	// MaxQueueExcursion is the largest sampled MAC backlog at any relay
	// (a node interior to some route) from FaultAt onward — the "how far
	// did buffers blow out" number. Source nodes are excluded: a
	// saturating source keeps its own queue pinned at the cap by design,
	// which says nothing about network stability.
	MaxQueueExcursion float64
	// TailMaxQueuePkts is the largest relay backlog sampled in the final
	// third of the run — the divergence check. A controller that
	// restabilised after the perturbation has drained its buffers by
	// then; a turbulent one keeps hitting the buffer cap.
	TailMaxQueuePkts float64
	// FairnessTrajectory is Jain's index across flows per throughput bin
	// over the whole run, showing fairness collapse and repair around the
	// fault.
	FairnessTrajectory *stats.Series
}

// computeStability derives the recovery metrics after a dynamics-enabled
// run; it returns nil when no fault event fired.
func computeStability(sc *Scenario, res *Result) *StabilityResult {
	faults := sc.Dyn.FaultTimes
	if len(faults) == 0 {
		return nil
	}
	fault := faults[0]
	st := &StabilityResult{
		FaultAt:      fault,
		Tolerance:    sc.Cfg.RecoveryTolerance,
		PreFaultKbps: make(map[FlowID]float64, len(res.Flows)),
		RecoverySec:  make(map[FlowID]float64, len(res.Flows)),
		Recovered:    true,
	}
	for f, fr := range res.Flows {
		pre := fr.Throughput.Window(sc.Cfg.WarmupSkip, fault).Mean()
		if pre <= 0 {
			// The fault predates the end of the warmup window; fall back
			// to everything before the fault so an early fault still
			// gets a baseline instead of being reported as "recovered".
			pre = fr.Throughput.Window(0, fault).Mean()
		}
		st.PreFaultKbps[f] = pre
		if pre <= 0 {
			// No pre-fault traffic (the flow arrived with or after the
			// fault): there is no baseline to recover to, so the flow is
			// left out of RecoverySec rather than faking a 0 s recovery.
			continue
		}
		rec := recoveryTime(fr.Throughput.Points, fault, (1-st.Tolerance)*pre)
		st.RecoverySec[f] = rec
		if rec < 0 {
			st.Recovered = false
		} else if rec > st.MaxRecoverySec {
			st.MaxRecoverySec = rec
		}
	}
	// Every node that relayed at any point of the run counts: a relay
	// the BFS repair routed around is exactly the one holding the fault
	// backlog, so the post-run routes alone would miss it.
	relays := sc.Dyn.RelaysSeen()
	tail := sc.Cfg.Duration / 3 * 2
	for id, s := range res.QueueTraces {
		if !relays[id] {
			continue
		}
		for _, p := range s.Points {
			if p.T >= fault && p.V > st.MaxQueueExcursion {
				st.MaxQueueExcursion = p.V
			}
			if p.T >= tail && p.V > st.TailMaxQueuePkts {
				st.TailMaxQueuePkts = p.V
			}
		}
	}
	st.FairnessTrajectory = fairnessTrajectory(res)
	return st
}

// recoveryTime scans a flow's throughput bins (each stamped with its bin
// end) for the first bin after the fault at or above the threshold that
// the following bin sustains — one good bin alone is a blip, not
// recovery; the run's final bin counts on its own. It returns the seconds
// from fault to that bin's end, or -1 if the flow never recovered.
func recoveryTime(pts []stats.Point, fault Time, threshold float64) float64 {
	for i, p := range pts {
		if p.T <= fault || p.V < threshold {
			continue
		}
		if i+1 < len(pts) && pts[i+1].V < threshold {
			continue
		}
		return (p.T - fault).Seconds()
	}
	return -1
}

// fairnessTrajectory computes Jain's index across all flows for every
// throughput bin. Flow meters share one bin grid (bins start at t=0 and
// empty bins are emitted as zeros), so bins align by index.
func fairnessTrajectory(res *Result) *stats.Series {
	flows := make([]FlowID, 0, len(res.Flows))
	for f := range res.Flows {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	if len(flows) == 0 {
		return &stats.Series{Name: "fairness"}
	}
	n := len(res.Flows[flows[0]].Throughput.Points)
	for _, f := range flows[1:] {
		if l := len(res.Flows[f].Throughput.Points); l < n {
			n = l
		}
	}
	out := &stats.Series{Name: "fairness"}
	vals := make([]float64, len(flows))
	for i := 0; i < n; i++ {
		for j, f := range flows {
			vals[j] = res.Flows[f].Throughput.Points[i].V
		}
		out.Add(res.Flows[flows[0]].Throughput.Points[i].T, stats.JainIndex(vals))
	}
	return out
}
