// Observability wiring: EnableObs attaches the internal/obs layer to a
// wired scenario — the full metric catalog over every simulator layer
// (engine, pool, PHY, MAC queues, controller, flows), the per-station PHY
// counter families, and the packet flight recorder. Everything registered
// here either reads existing state (gauges, evaluated at snapshot time)
// or writes exclusively into observability-owned storage (counters, the
// recorder ring), so an observed run is byte-identical to an unobserved
// one; internal/campaign pins that with golden output at several worker
// counts.
package ezflow

import (
	"fmt"

	"ezflow/internal/obs"
	"ezflow/internal/phy"
	"ezflow/internal/pkt"
	"ezflow/internal/sim"
)

// delayBucketsSec are the end-to-end delay histogram bounds (seconds):
// roughly logarithmic from one MAC exchange to queue-divergence scales.
var delayBucketsSec = []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}

// EnableObs attaches the observability layer to a wired scenario and
// returns its Set (idempotent: a second call returns the first Set). It
// may be called any time between wiring and Run — metric gauges read
// state lazily at snapshot time, so nothing is lost by attaching late.
// Config.Obs does this automatically at wiring for library users; the
// CLIs call it to honour their -obs/-flightrec flags.
func (sc *Scenario) EnableObs(ocfg obs.Config) *obs.Set {
	if sc.ran {
		panic("ezflow: EnableObs after Run")
	}
	if sc.Obs != nil {
		return sc.Obs
	}
	set := &obs.Set{}
	if ocfg.Metrics {
		set.Reg = obs.NewRegistry()
		sc.registerMetrics(set.Reg)
	}
	if ocfg.FlightRecorder > 0 {
		set.Flight = obs.NewFlightRecorder(ocfg.FlightRecorder)
		for _, n := range sc.Mesh.Nodes() {
			n.MAC.SetRecorder(set.Flight)
		}
		fl := set.Flight
		sc.Mesh.AddSink(func(p *pkt.Packet, at sim.Time) {
			fl.Record(at, obs.KindDeliver, obs.CauseNone, p.Dst, p.Src, p.Flow, p.Seq)
		})
	}
	sc.Obs = set
	return set
}

// registerMetrics builds the scenario's metric catalog (see
// docs/ARCHITECTURE.md, "Observability layer", for the full listing).
// All cross-layer registration happens here — obs itself imports only
// sim and pkt, so no lower layer ever imports a higher one.
func (sc *Scenario) registerMetrics(reg *obs.Registry) {
	eng, m := sc.Eng, sc.Mesh

	// Engine: event churn and heap depth.
	reg.Gauge("sim.events_scheduled", func() float64 { return float64(eng.Scheduled()) })
	reg.Gauge("sim.events_fired", func() float64 { return float64(eng.Fired()) })
	reg.Gauge("sim.events_cancelled", func() float64 { return float64(eng.Cancelled()) })
	reg.Gauge("sim.heap_depth", func() float64 { return float64(eng.Pending()) })

	// Packet/frame pool: hit/miss rates of the allocation-free hot path.
	pool := m.Pool()
	reg.Gauge("pool.packet_new", func() float64 { return float64(pool.Stats.PacketNews) })
	reg.Gauge("pool.packet_reuse", func() float64 { return float64(pool.Stats.PacketReuses) })
	reg.Gauge("pool.frame_new", func() float64 { return float64(pool.Stats.FrameNews) })
	reg.Gauge("pool.frame_reuse", func() float64 { return float64(pool.Stats.FrameReuses) })

	// Channel aggregates plus the per-station (dense-slot) families.
	ch := m.Ch
	reg.Gauge("phy.transmissions", func() float64 { return float64(ch.Stats.Transmissions) })
	reg.Gauge("phy.decoded", func() float64 { return float64(ch.Stats.Decoded) })
	reg.Gauge("phy.collisions", func() float64 { return float64(ch.Stats.Collisions) })
	reg.Gauge("phy.captures", func() float64 { return float64(ch.Stats.Captures) })
	reg.Gauge("phy.erasures", func() float64 { return float64(ch.Stats.Erasures) })

	// Routing repair health: how many RerouteFlow calls found no usable
	// path and left a broken route in place (the flow stalls until
	// connectivity returns). Non-zero here is the signature of a
	// partitioned network, surfaced without a debugger.
	reg.Gauge("mesh.reroute_failures", func() float64 { return float64(m.RerouteFailures()) })
	ids := ch.NodeIDs()
	labels := make([]string, len(ids))
	for i, id := range ids {
		labels[i] = id.String()
	}
	ch.SetCounters(phy.Counters{
		Tx:         reg.CounterVec("phy.tx", labels),
		Collisions: reg.CounterVec("phy.collision", labels),
		Captures:   reg.CounterVec("phy.capture", labels),
		Erasures:   reg.CounterVec("phy.erasure", labels),
	})

	// Per-node MAC and per-queue (per-link) metrics. Queues created after
	// this point (route repair, controller control queues) are not in the
	// catalog — snapshots cover the wired topology.
	for _, n := range m.Nodes() {
		mc := n.MAC
		p := fmt.Sprintf("mac.%v.", n.ID)
		reg.Gauge(p+"tx_data", func() float64 { return float64(mc.TxData) })
		reg.Gauge(p+"tx_retries", func() float64 { return float64(mc.TxRetries) })
		reg.Gauge(p+"tx_acked", func() float64 { return float64(mc.TxAcked) })
		reg.Gauge(p+"tx_failed", func() float64 { return float64(mc.TxFailed) })
		reg.Gauge(p+"rx_data", func() float64 { return float64(mc.RxData) })
		reg.Gauge(p+"rx_dup", func() float64 { return float64(mc.RxDup) })
		reg.Gauge(p+"queued", func() float64 { return float64(mc.TotalQueued()) })
		for qi, q := range mc.Queues() {
			q := q
			qp := fmt.Sprintf("%sq%d_to_%v.", p, qi, q.NextHop())
			reg.Gauge(qp+"depth", func() float64 { return float64(q.Len()) })
			reg.Gauge(qp+"enqueued", func() float64 { return float64(q.Enqueued) })
			reg.Gauge(qp+"dequeued", func() float64 { return float64(q.Dequeued) })
			reg.Gauge(qp+"peak_depth", func() float64 { return float64(q.PeakDepth) })
			reg.Gauge(qp+"retries", func() float64 { return float64(q.Retries) })
			reg.Gauge(qp+"dropped_overflow", func() float64 { return float64(q.DroppedOverflow) })
			reg.Gauge(qp+"dropped_retry", func() float64 { return float64(q.DroppedRetry) })
			reg.Gauge(qp+"dropped_flush", func() float64 { return float64(q.DroppedFlush) })
			reg.Gauge(qp+"cw", func() float64 { return float64(q.CWmin()) })
			reg.Gauge(qp+"cw_changes", func() float64 { return float64(q.CWChanges) })
		}
	}

	// Controller: explicit-signalling cost (0 for the message-free
	// families). Window changes are the per-queue cw_changes above —
	// every controller family ends at Queue.SetCWmin.
	if c := sc.Ctl; c != nil {
		reg.Gauge("ctl.overhead_bytes", func() float64 { return float64(c.OverheadBytes()) })
	}

	// Flows: delivered counts (gauges over the meters) and an end-to-end
	// delay histogram fed by its own mesh sink.
	type flowObs struct {
		flow FlowID
		hist *obs.Histogram
	}
	var fobs []flowObs
	for _, fs := range sc.specs {
		fp := fmt.Sprintf("flow.F%d.", fs.Flow)
		mt := sc.Meters[fs.Flow]
		reg.Gauge(fp+"delivered_pkts", func() float64 { return float64(mt.Delivered) })
		fobs = append(fobs, flowObs{fs.Flow, reg.Histogram(fp+"delay_sec", delayBucketsSec)})
	}
	if len(fobs) > 0 {
		hists := make(map[FlowID]*obs.Histogram, len(fobs))
		for _, fo := range fobs {
			hists[fo.flow] = fo.hist
		}
		sc.Mesh.AddSink(func(p *pkt.Packet, at sim.Time) {
			if h := hists[p.Flow]; h != nil {
				h.Observe((at - p.Created).Seconds())
			}
		})
	}
}
