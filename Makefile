# Development entry points. CI (.github/workflows/ci.yml) runs the same
# targets, so `make check bench` locally reproduces a full CI pass.

GO ?= go

.PHONY: check test lint bench bench-all clean

# check is the tier-1 gate: format, vet, doc lint, build, race tests.
check: lint
	test -z "$$($(GO)fmt -l .)" || { $(GO)fmt -l .; exit 1; }
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

test:
	$(GO) test ./...

# lint enforces the godoc conventions (package docs everywhere, exported
# symbol docs in the public ezflow package).
lint:
	$(GO) run ./tools/lintdoc

# bench runs the hot-path benchmarks guarding the simulator core and
# archives them as BENCH_PR2.json (uploaded as a CI artifact, committed
# when the recorded trajectory changes).
bench:
	$(GO) test -bench='^BenchmarkChainRun|^BenchmarkEngineThroughput' -benchmem \
	    -run='^$$' -benchtime=20x . | tee /tmp/bench.out
	$(GO) test -bench='^BenchmarkEngine' -benchmem -run='^$$' -benchtime=1s \
	    ./internal/sim | tee -a /tmp/bench.out
	$(GO) run ./tools/benchjson < /tmp/bench.out > BENCH_PR2.json
	@echo wrote BENCH_PR2.json

# bench-all additionally regenerates every figure/table benchmark of the
# paper (slow).
bench-all:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

clean:
	rm -f /tmp/bench.out
