# Development entry points. CI (.github/workflows/ci.yml) runs the same
# targets, so `make check bench` locally reproduces a full CI pass.

GO ?= go

# Experiment and output directory for `make profile`.
EXP ?= scale
PROFILE_DIR ?= profiles

.PHONY: check test lint staticcheck fuzz bench bench-all profile clean

# check is the tier-1 gate: format, vet, doc lint, staticcheck, build,
# race tests.
check: lint staticcheck
	test -z "$$($(GO)fmt -l .)" || { $(GO)fmt -l .; exit 1; }
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

test:
	$(GO) test ./...

# fuzz is a short smoke over the hostile-input decoders: the scenario
# JSON loader, the shard worker frame protocol (plus the chaos-spec
# grammar), and the mobility trace-file parser. Ten seconds each is
# enough to catch decode panics in CI; crank FUZZTIME for a real soak.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/scenario
	$(GO) test -run='^$$' -fuzz='^FuzzWorkerFrames$$' -fuzztime=$(FUZZTIME) ./internal/campaign
	$(GO) test -run='^$$' -fuzz='^FuzzParseChaos$$' -fuzztime=$(FUZZTIME) ./internal/campaign
	$(GO) test -run='^$$' -fuzz='^FuzzParseMobilityTrace$$' -fuzztime=$(FUZZTIME) ./internal/mobility

# lint enforces the godoc conventions (package docs everywhere, exported
# symbol docs in the public ezflow package and all internal packages).
lint:
	$(GO) run ./tools/lintdoc

# staticcheck runs honnef.co/go/tools when installed (CI installs it;
# offline dev containers may not have it, so it degrades to a notice).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# bench runs the hot-path benchmarks guarding the simulator core — the
# end-to-end chain and large-topology scenarios, the event-queue
# micro-benchmarks, the PHY transmission path, the controller hot hooks
# (OnOverhear/OnDequeue, pinned at zero allocs), the observability
# instruments (counter/vec/histogram/flight-record increments plus the
# disabled nil-receiver hooks, all pinned at zero allocs), the
# routing strategies (pure route-computation cost per registry entry
# plus the lossy-disk rerun per strategy), the fabric cache
# (key derivation and a store Put+Get round trip — the fixed overhead
# a cache hit pays to skip a simulation), and the mobility path (a
# single incremental phy.MoveNode re-index, pinned at zero steady-state
# allocs, plus a full 200-node waypoint disk run) — gates them against
# the committed baseline (BENCH_PR8.json; >25% allocs/op regression
# fails, zero-alloc pins fail on any alloc, ns/op gets a wider 2x band
# because the archived baseline was recorded on a different host),
# archives the fresh run as BENCH_PR10.json (uploaded as a CI artifact,
# committed when the recorded trajectory changes), and prints the
# speedup table.
bench:
	$(GO) test -bench='^BenchmarkChainRun|^BenchmarkEngineThroughput|^BenchmarkGrid100Run$$|^BenchmarkRandomDisk200Run$$|^BenchmarkDiskScaling$$|^BenchmarkRouting|^BenchmarkDiskScalingRouting$$|^BenchmarkWaypointDisk200$$' \
	    -benchmem -run='^$$' -benchtime=20x . | tee /tmp/bench.out
	$(GO) test -bench='^BenchmarkEngine' -benchmem -run='^$$' -benchtime=1s \
	    ./internal/sim | tee -a /tmp/bench.out
	$(GO) test -bench='^BenchmarkChannelTransmit|^BenchmarkMoveNode$$' -benchmem -run='^$$' -benchtime=1s \
	    ./internal/phy | tee -a /tmp/bench.out
	$(GO) test -bench='^BenchmarkCtl' -benchmem -run='^$$' -benchtime=1s \
	    ./internal/ctl | tee -a /tmp/bench.out
	$(GO) test -bench='^BenchmarkObs' -benchmem -run='^$$' -benchtime=1s \
	    ./internal/obs | tee -a /tmp/bench.out
	$(GO) test -bench='^BenchmarkCacheKey$$|^BenchmarkStoreRoundTrip$$' -benchmem -run='^$$' -benchtime=1s \
	    ./internal/fabric | tee -a /tmp/bench.out
	$(GO) run ./tools/benchjson -baseline BENCH_PR8.json -tolerance 0.25 -ns-tolerance 1.0 \
	    < /tmp/bench.out > BENCH_PR10.json
	@echo wrote BENCH_PR10.json
	$(GO) run ./tools/benchjson -compare BENCH_PR8.json BENCH_PR10.json

# bench-all additionally regenerates every figure/table benchmark of the
# paper (slow).
bench-all:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# profile writes CPU and allocation pprof profiles of one ezbench
# experiment (default: the large-topology scale sweep). Inspect with
#
#	go tool pprof -top $(PROFILE_DIR)/cpu.pprof
#
# Override the experiment with `make profile EXP=scenario1`.
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) run ./cmd/ezbench -exp $(EXP) \
	    -cpuprofile $(PROFILE_DIR)/cpu.pprof -memprofile $(PROFILE_DIR)/mem.pprof
	@echo wrote $(PROFILE_DIR)/cpu.pprof and $(PROFILE_DIR)/mem.pprof

clean:
	rm -f /tmp/bench.out
	rm -rf $(PROFILE_DIR)
