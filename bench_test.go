// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of EZ-Flow's design choices. Each benchmark
// runs the corresponding experiment once per iteration and records the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports (shape, not absolute
// testbed numbers). The -short durations inside each experiment are
// governed by benchScale.
package ezflow_test

import (
	"testing"

	root "ezflow"
	"ezflow/internal/exp"
)

// benchScale keeps individual benchmark iterations in the seconds range
// while preserving the steady-state shapes.
const benchScale = 0.08

func benchOpts(i int) exp.Options {
	return exp.Options{Seed: int64(i + 1), Scale: benchScale}
}

// BenchmarkFig1BufferEvolution regenerates Figure 1: 3-hop stable vs
// 4-hop turbulent buffer evolution under plain 802.11.
func BenchmarkFig1BufferEvolution(b *testing.B) {
	var last *exp.Fig1Result
	for i := 0; i < b.N; i++ {
		last = exp.Fig1(benchOpts(i))
	}
	b.ReportMetric(last.MeanQueue[3][1], "q1-3hop-pkts")
	b.ReportMetric(last.MeanQueue[4][1], "q1-4hop-pkts")
	b.ReportMetric(last.ThroughputKbps[3], "thr-3hop-kbps")
	b.ReportMetric(last.ThroughputKbps[4], "thr-4hop-kbps")
}

// BenchmarkTable1LinkCapacities regenerates Table 1: the per-link
// capacities of the testbed's flow F1, with l2 the bottleneck.
func BenchmarkTable1LinkCapacities(b *testing.B) {
	var last *exp.Table1Result
	for i := 0; i < b.N; i++ {
		last = exp.Table1(benchOpts(i))
	}
	for i, v := range last.MeanKbps {
		b.ReportMetric(v, "l"+string(rune('0'+i))+"-kbps")
	}
}

// BenchmarkFig4TestbedBuffers regenerates Figure 4: buffer occupancy of
// the testbed relays with and without EZ-Flow (hardware cap 2^10).
func BenchmarkFig4TestbedBuffers(b *testing.B) {
	var last *exp.Fig4Table2Result
	for i := 0; i < b.N; i++ {
		last = exp.Fig4Table2(benchOpts(i))
	}
	plain := last.Get(exp.F2Alone, root.Mode80211)
	with := last.Get(exp.F2Alone, root.ModeEZFlow)
	b.ReportMetric(plain.MeanQueue[4], "N4-80211-pkts")
	b.ReportMetric(with.MeanQueue[4], "N4-ezflow-pkts")
}

// BenchmarkTable2TestbedThroughput regenerates Table 2: throughput and
// fairness of the testbed workloads with and without EZ-Flow.
func BenchmarkTable2TestbedThroughput(b *testing.B) {
	var last *exp.Fig4Table2Result
	for i := 0; i < b.N; i++ {
		last = exp.Fig4Table2(benchOpts(i))
	}
	b.ReportMetric(last.Get(exp.F1Alone, root.Mode80211).FlowKbps[1], "F1-80211-kbps")
	b.ReportMetric(last.Get(exp.F1Alone, root.ModeEZFlow).FlowKbps[1], "F1-ezflow-kbps")
	b.ReportMetric(last.Get(exp.ParkingLot, root.Mode80211).Fairness, "FI-80211")
	b.ReportMetric(last.Get(exp.ParkingLot, root.ModeEZFlow).Fairness, "FI-ezflow")
}

// BenchmarkFig6Scenario1Throughput regenerates Figure 6: per-period
// throughput of the two merging flows.
func BenchmarkFig6Scenario1Throughput(b *testing.B) {
	var last *exp.ScenarioResult
	for i := 0; i < b.N; i++ {
		last = exp.Scenario1(benchOpts(i))
	}
	b.ReportMetric(last.Stats[root.Mode80211]["F1-alone-1"][1].MeanKbps, "F1-80211-kbps")
	b.ReportMetric(last.Stats[root.ModeEZFlow]["F1-alone-1"][1].MeanKbps, "F1-ezflow-kbps")
	b.ReportMetric(last.CumulativeKbps(root.Mode80211, "F1+F2"), "both-80211-kbps")
	b.ReportMetric(last.CumulativeKbps(root.ModeEZFlow, "F1+F2"), "both-ezflow-kbps")
}

// BenchmarkFig7Scenario1Delay regenerates Figure 7: end-to-end delay of
// the merging flows with and without EZ-Flow.
func BenchmarkFig7Scenario1Delay(b *testing.B) {
	var last *exp.ScenarioResult
	for i := 0; i < b.N; i++ {
		last = exp.Scenario1(benchOpts(i))
	}
	b.ReportMetric(last.MeanDelay(root.Mode80211, "F1+F2"), "delay-80211-s")
	b.ReportMetric(last.MeanDelay(root.ModeEZFlow, "F1+F2"), "delay-ezflow-s")
}

// BenchmarkFig8Scenario1CW regenerates Figure 8: the contention-window
// adaptation traces — sources penalised, trunk relays at the minimum.
func BenchmarkFig8Scenario1CW(b *testing.B) {
	var last *exp.ScenarioResult
	for i := 0; i < b.N; i++ {
		last = exp.Scenario1(benchOpts(i))
	}
	b.ReportMetric(float64(last.FinalCW["N12->N10"]), "cw-source")
	b.ReportMetric(float64(last.FinalCW["N2->N1"]), "cw-relay")
	b.ReportMetric(float64(len(last.CWTraces)), "traced-queues")
}

// BenchmarkTable3Scenario2 regenerates Table 3: per-period throughput and
// fairness of the three-flow hidden-node scenario.
func BenchmarkTable3Scenario2(b *testing.B) {
	var last *exp.ScenarioResult
	for i := 0; i < b.N; i++ {
		last = exp.Scenario2(benchOpts(i))
	}
	b.ReportMetric(last.Stats[root.Mode80211]["F1+F2"][2].MeanKbps, "F2-80211-kbps")
	b.ReportMetric(last.Stats[root.ModeEZFlow]["F1+F2"][2].MeanKbps, "F2-ezflow-kbps")
	b.ReportMetric(last.Fairness[root.Mode80211]["F1+F2+F3"], "FI3-80211")
	b.ReportMetric(last.Fairness[root.ModeEZFlow]["F1+F2+F3"], "FI3-ezflow")
}

// BenchmarkFig10Scenario2Delay regenerates Figure 10: the delay series of
// the three flows.
func BenchmarkFig10Scenario2Delay(b *testing.B) {
	var last *exp.ScenarioResult
	for i := 0; i < b.N; i++ {
		last = exp.Scenario2(benchOpts(i))
	}
	b.ReportMetric(last.Stats[root.Mode80211]["F1+F2"][2].MeanDelaySec, "F2delay-80211-s")
	b.ReportMetric(last.Stats[root.ModeEZFlow]["F1+F2"][2].MeanDelaySec, "F2delay-ezflow-s")
}

// BenchmarkFig11Scenario2CW regenerates Figure 11: the contention windows
// of the first two nodes of each flow, with the hidden source throttled.
func BenchmarkFig11Scenario2CW(b *testing.B) {
	var last *exp.ScenarioResult
	for i := 0; i < b.N; i++ {
		last = exp.Scenario2(benchOpts(i))
	}
	b.ReportMetric(float64(last.FinalCW["N0->N1"]), "cw-N0")
	b.ReportMetric(float64(last.FinalCW["N10->N11"]), "cw-N10-hidden")
	b.ReportMetric(float64(last.FinalCW["N19->N20"]), "cw-N19")
}

// BenchmarkTheorem1Stability regenerates the §6 analysis: the random walk
// of Figure 12 / Table 4 with fixed windows (unstable) and with EZ-Flow
// (stable), plus the Foster drift certificate behind Theorem 1.
func BenchmarkTheorem1Stability(b *testing.B) {
	var last *exp.Theorem1Result
	for i := 0; i < b.N; i++ {
		last = exp.Theorem1(benchOpts(i))
	}
	b.ReportMetric(last.FixedMax, "fixed-max-backlog")
	b.ReportMetric(last.EZMax, "ezflow-max-backlog")
	b.ReportMetric(last.DriftByRegion["H"], "foster-drift-H")
	b.ReportMetric(last.DriftByRegion["B"], "foster-drift-B")
}

// BenchmarkHopSweep extends Figure 1 across chain lengths 2..7.
func BenchmarkHopSweep(b *testing.B) {
	var last *exp.HopSweepResult
	for i := 0; i < b.N; i++ {
		last = exp.HopSweep(benchOpts(i))
	}
	for _, hops := range last.Hops {
		b.ReportMetric(last.Throughput[root.Mode80211][hops],
			"thr"+string(rune('0'+hops))+"-80211-kbps")
	}
	b.ReportMetric(last.FirstRelayQueue[root.Mode80211][6], "q1-6hop-80211")
	b.ReportMetric(last.FirstRelayQueue[root.ModeEZFlow][6], "q1-6hop-ezflow")
}

// BenchmarkTreeDownlink exercises the §7 per-successor-queue extension.
func BenchmarkTreeDownlink(b *testing.B) {
	var last *exp.TreeResult
	for i := 0; i < b.N; i++ {
		last = exp.TreeDownlink(benchOpts(i), 3, 2)
	}
	b.ReportMetric(last.AggKbps[root.Mode80211], "agg-80211-kbps")
	b.ReportMetric(last.AggKbps[root.ModeEZFlow], "agg-ezflow-kbps")
	b.ReportMetric(last.Fairness[root.ModeEZFlow], "FI-ezflow")
}

// BenchmarkRTSCTS quantifies §5.1's case for disabling the handshake.
func BenchmarkRTSCTS(b *testing.B) {
	var last *exp.RTSCTSResult
	for i := 0; i < b.N; i++ {
		last = exp.RTSCTS(benchOpts(i))
	}
	b.ReportMetric(last.ThroughputKbps[false], "off-kbps")
	b.ReportMetric(last.ThroughputKbps[true], "on-kbps")
}

// BenchmarkBidirectional exercises the §2.3 TCP-like workload.
func BenchmarkBidirectional(b *testing.B) {
	var last *exp.BidirectionalResult
	for i := 0; i < b.N; i++ {
		last = exp.Bidirectional(benchOpts(i))
	}
	b.ReportMetric(float64(last.Delivered["802.11"]), "pkts-80211")
	b.ReportMetric(float64(last.Delivered["EZ-flow"]), "pkts-ezflow")
	b.ReportMetric(last.RelayQ["EZ-flow"], "q1-ezflow")
}
