// Command ezbench regenerates every table and figure of the paper's
// evaluation in one run and prints each as a report: Figure 1, Table 1,
// Figure 4 + Table 2, Scenario 1 (Figures 6-8), Scenario 2 (Figures 10-11 +
// Table 3), and the §6 Theorem 1 random-walk analysis — plus the
// extension experiments (hopsweep, tree, rtscts, bidir, the
// fault-injection stability experiment, the large-topology scale sweep,
// the congestion-controller head-to-head `-exp controllers`, the
// routing-strategy cross product on lossy disks `-exp routing`, and the
// mobility head-to-head on moving meshes with client workloads
// `-exp mobility`; see docs/PAPER_MAP.md).
//
// Usage:
//
//	ezbench                    # all experiments at 1/4 paper durations
//	ezbench -scale 1           # full paper durations (slow)
//	ezbench -exp fig1,table1   # a subset
//	ezbench -parallel 8        # fan each experiment's runs over 8 workers
//	ezbench -exp scale -cpuprofile cpu.pprof -memprofile mem.pprof
//	                           # profile an experiment (see `make profile`)
//	ezbench -exp controllers,routing -cache
//	                           # warm the fabric result store (internal/fabric);
//	                           # the rerun replays every cell from cache and
//	                           # prints `cache: X hit / Y miss`
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"ezflow"
	"ezflow/internal/buildinfo"
	"ezflow/internal/exp"
	"ezflow/internal/fabric"
	"ezflow/internal/obs"
)

// experimentNames renders the registered experiment list for the -exp
// usage string, so help text can never drift from the table above.
func experimentNames() string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return strings.Join(names, ",")
}

var experiments = []struct {
	name string
	run  func(exp.Options) *exp.Report
}{
	{"fig1", func(o exp.Options) *exp.Report { return &exp.Fig1(o).Report }},
	{"table1", func(o exp.Options) *exp.Report { return &exp.Table1(o).Report }},
	{"fig4", func(o exp.Options) *exp.Report { return &exp.Fig4Table2(o).Report }},
	{"scenario1", func(o exp.Options) *exp.Report { return &exp.Scenario1(o).Report }},
	{"scenario2", func(o exp.Options) *exp.Report { return &exp.Scenario2(o).Report }},
	{"theorem1", func(o exp.Options) *exp.Report { return &exp.Theorem1(o).Report }},
	{"hopsweep", func(o exp.Options) *exp.Report { return &exp.HopSweep(o).Report }},
	{"tree", func(o exp.Options) *exp.Report { return &exp.TreeDownlink(o, 3, 2).Report }},
	{"rtscts", func(o exp.Options) *exp.Report { return &exp.RTSCTS(o).Report }},
	{"bidir", func(o exp.Options) *exp.Report { return &exp.Bidirectional(o).Report }},
	{"stability", func(o exp.Options) *exp.Report { return &exp.Stability(o).Report }},
	{"scale", func(o exp.Options) *exp.Report { return &exp.Scale(o).Report }},
	{"controllers", func(o exp.Options) *exp.Report { return &exp.Controllers(o).Report }},
	{"routing", func(o exp.Options) *exp.Report { return &exp.Routing(o).Report }},
	{"mobility", func(o exp.Options) *exp.Report { return &exp.Mobility(o).Report }},
}

// aliases lets users name experiments by the figure/table they regenerate.
var aliases = map[string]string{
	"table2": "fig4", "fig6": "scenario1", "fig7": "scenario1",
	"fig8": "scenario1", "fig10": "scenario2", "fig11": "scenario2",
	"table3": "scenario2", "fig12": "theorem1", "table4": "theorem1",
}

func main() {
	var (
		seed       = flag.Int64("seed", 1, "random seed")
		scale      = flag.Float64("scale", 0.25, "duration scale (1 = paper durations)")
		which      = flag.String("exp", "", "comma-separated subset ("+experimentNames()+" or figure/table aliases); controllers runs the congestion-controller head-to-head over the registry ("+strings.Join(ezflow.Controllers(), "|")+")")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "max scenario runs in flight per experiment (results are identical for any value)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU pprof profile of the selected experiments to this file")
		memprofile = flag.String("memprofile", "", "write an allocation pprof profile (after the run) to this file")
		cache      = flag.Bool("cache", false, "consult and fill the content-addressed result store at -cache-dir (used by the controllers and routing head-to-heads)")
		cacheDir   = flag.String("cache-dir", "fabric-cache", "fabric store directory, shared with ezcampaign -cache (setting it implies -cache)")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("ezbench " + buildinfo.String())
		return
	}
	useCache := *cache
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "cache-dir" {
			useCache = true
		}
	})

	// Resolve and validate the experiment selection before any profiling
	// starts: exiting on a typo'd name must not leave a truncated
	// cpu.pprof behind (os.Exit skips the deferred StopCPUProfile).
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	want := map[string]bool{}
	if *which != "" {
		for _, w := range strings.Split(*which, ",") {
			w = strings.TrimSpace(strings.ToLower(w))
			if a, ok := aliases[w]; ok {
				w = a
			}
			if !known[w] {
				fmt.Fprintf(os.Stderr, "ezbench: no experiment matched %q\n", w)
				os.Exit(1)
			}
			want[w] = true
		}
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ezbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "ezbench: %v\n", err)
		}
	}()

	o := exp.Options{Seed: *seed, Scale: *scale, Parallel: *parallel}
	var store *fabric.Store
	if useCache {
		store, err = fabric.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ezbench: %v\n", err)
			os.Exit(1)
		}
		o.Cache = store
	}
	for _, e := range experiments {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		fmt.Print(e.run(o).String())
		fmt.Println()
	}
	if store != nil {
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hit / %d miss\n", st.Hits, st.Misses)
	}
}
