// Observability flags for ezsim: the live introspection endpoint (-obs),
// the packet flight recorder (-flightrec*), metrics snapshot export
// (-metrics) and CPU/heap profiles (-cpuprofile/-memprofile). All of it
// is off by default and none of it changes a run's results — the
// campaign goldens pin that byte-for-byte.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ezflow"
	"ezflow/internal/obs"
)

// obsOpts holds the observability flag values for one invocation.
type obsOpts struct {
	flightPath string
	flightSize int
	flightFlow int
	flightNode string
	addr       string
	holdSec    float64
	periodSec  float64
	metrics    string
	cpuProfile string
	memProfile string
}

// registerFlags declares the observability flags on the default FlagSet.
func (o *obsOpts) registerFlags() {
	flag.StringVar(&o.flightPath, "flightrec", "", "dump the packet flight record (JSONL) to this file (\"-\" = stdout)")
	flag.IntVar(&o.flightSize, "flightrec-size", obs.DefaultFlightRecorderSize, "flight-recorder ring capacity in events (keeps the last N)")
	flag.IntVar(&o.flightFlow, "flightrec-flow", 0, "restrict the flight dump to this flow id (0 = all flows)")
	flag.StringVar(&o.flightNode, "flightrec-node", "", "restrict the flight dump to events touching this node, e.g. N3 (\"\" = all nodes)")
	flag.StringVar(&o.addr, "obs", "", "serve live metrics, progress and pprof at this address, e.g. 127.0.0.1:8080")
	flag.Float64Var(&o.holdSec, "obs-hold", 0, "keep the -obs endpoint up this many wall-clock seconds after the run")
	flag.Float64Var(&o.periodSec, "obs-period", 1, "publish a fresh snapshot to -obs every this many simulated seconds")
	flag.StringVar(&o.metrics, "metrics", "", "write the final metrics snapshot (JSON) to this file (\"-\" = stdout)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a post-run heap profile to this file")
}

// active reports whether any flag asked for observability.
func (o *obsOpts) active() bool {
	return o.flightPath != "" || o.addr != "" || o.metrics != ""
}

// config translates the flags into an obs.Config.
func (o *obsOpts) config() obs.Config {
	var c obs.Config
	if o.addr != "" || o.metrics != "" {
		c.Metrics = true
	}
	if o.flightPath != "" {
		c.FlightRecorder = o.flightSize
	}
	return c
}

// filter builds the flight-dump filter from the flags.
func (o *obsOpts) filter() obs.Filter {
	var f obs.Filter
	if o.flightFlow != 0 {
		f.MatchFlow = true
		f.Flow = ezflow.FlowID(o.flightFlow)
	}
	if o.flightNode != "" {
		id, err := strconv.Atoi(strings.TrimPrefix(strings.ToUpper(o.flightNode), "N"))
		if err != nil {
			fatalf("-flightrec-node %q is not a node id (want N3 or 3)", o.flightNode)
		}
		f.MatchNode = true
		f.Node = ezflow.NodeID(id)
	}
	return f
}

// run executes the scenario with whatever observability the flags asked
// for, writing dumps and holding the endpoint afterwards. With no
// observability flags it is exactly sc.Run().
func (o *obsOpts) run(sc *ezflow.Scenario) *ezflow.Result {
	filter := o.filter() // validate before starting anything
	stopProfiles, err := obs.StartProfiles(o.cpuProfile, o.memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	var set *obs.Set
	if o.active() {
		set = sc.EnableObs(o.config())
	}
	var srv *obs.Server
	if o.addr != "" {
		srv, err = obs.NewServer(o.addr)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "ezsim: observability endpoint at http://%s\n", srv.Addr())
		o.publishPeriodically(sc, set, srv)
	}

	res := sc.Run()
	if err := stopProfiles(); err != nil {
		fatalf("writing profiles: %v", err)
	}

	if o.flightPath != "" {
		o.dumpFlight(set, filter)
	}
	if o.metrics != "" {
		o.dumpMetrics(res)
	}
	if srv != nil {
		srv.PublishSnapshot(res.Obs)
		srv.PublishProgress(obs.Progress{
			SimSeconds:     sc.Eng.Now().Seconds(),
			HorizonSeconds: sc.Cfg.Duration.Seconds(),
		})
		if o.holdSec > 0 {
			fmt.Fprintf(os.Stderr, "ezsim: holding http://%s for %gs\n", srv.Addr(), o.holdSec)
			time.Sleep(time.Duration(o.holdSec * float64(time.Second)))
		}
		srv.Close() //nolint:errcheck // exiting anyway
	}
	return res
}

// publishPeriodically schedules a recurring simulation event that
// publishes a fresh snapshot and progress to the live server. The event
// only reads state and draws no randomness, so it cannot change the
// run's results (extra events renumber the engine's internal sequence
// but preserve relative order).
func (o *obsOpts) publishPeriodically(sc *ezflow.Scenario, set *obs.Set, srv *obs.Server) {
	period := ezflow.Time(o.periodSec * float64(ezflow.Second))
	if period <= 0 {
		return
	}
	horizon := sc.Cfg.Duration
	var tick func()
	tick = func() {
		srv.PublishSnapshot(set.Reg.Snapshot(sc.Eng.Now()))
		srv.PublishProgress(obs.Progress{
			SimSeconds:     sc.Eng.Now().Seconds(),
			HorizonSeconds: horizon.Seconds(),
		})
		if sc.Eng.Now() < horizon {
			sc.Eng.ScheduleFunc(period, tick)
		}
	}
	sc.Eng.ScheduleFunc(period, tick)
}

// dumpFlight writes the filtered flight record as JSONL.
func (o *obsOpts) dumpFlight(set *obs.Set, f obs.Filter) {
	w := os.Stdout
	if o.flightPath != "-" {
		var err error
		w, err = os.Create(o.flightPath)
		if err != nil {
			fatalf("%v", err)
		}
	}
	n, err := set.Flight.WriteJSONL(w, f)
	if err == nil && o.flightPath != "-" {
		err = w.Close()
	}
	if err != nil {
		fatalf("writing flight record: %v", err)
	}
	if o.flightPath != "-" {
		fmt.Fprintf(os.Stderr, "ezsim: %d flight events written to %s (%d recorded, %d overwritten)\n",
			n, o.flightPath, set.Flight.Total(), set.Flight.Overwritten())
	}
}

// dumpMetrics writes the run's final snapshot as JSON.
func (o *obsOpts) dumpMetrics(res *ezflow.Result) {
	w := os.Stdout
	if o.metrics != "-" {
		var err error
		w, err = os.Create(o.metrics)
		if err != nil {
			fatalf("%v", err)
		}
	}
	err := res.Obs.WriteJSON(w)
	if err == nil && o.metrics != "-" {
		err = w.Close()
	}
	if err != nil {
		fatalf("writing metrics: %v", err)
	}
}
